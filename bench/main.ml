(* The evaluation harness: regenerates every quantitative result of the
   paper (Figures 4-7, the §VI-A speed numbers, the §VI-E warm-up case
   study), plus the design-choice ablations called out in DESIGN.md.

   Figures are printed as labelled rows/series (with ASCII renderings of the
   paper's stacked-bar charts); EXPERIMENTS.md records the paper-vs-measured
   comparison.  The §VI-A speed table is measured with Bechamel. *)

module Registry = Darco_workloads.Registry
module Table = Darco_util.Table
module SM = Darco_util.Stats_math

type bench_stats = { name : string; suite : Registry.suite; stats : Darco.Stats.t }

(* Machine-readable record of every run this process performed, dumped to
   BENCH_results.json at exit; a divergence anywhere fails the harness. *)
type recorded = {
  r_label : string;
  r_suite : Registry.suite;
  r_stats : Darco.Stats.t;
  r_diverged : (int * string list) option;
}

let recorded : recorded list ref = ref []

(* Sampling-error summary of the §VI-E study (when it ran), so the JSON
   carries the IPC point estimates together with their confidence
   intervals rather than bare numbers. *)
let sampling_summary : Darco_obs.Jsonx.t option ref = ref None

let run_benchmark ?(cfg = Darco.Config.default) ?(timing = false) ?max_insns ?label
    (e : Registry.entry) =
  let ctl = Darco.Controller.create ~cfg ~seed:42 (e.build ()) in
  let pipe =
    if timing then begin
      let p = Darco_timing.Pipeline.create Darco_timing.Tconfig.default in
      Darco_timing.Pipeline.attach p (Darco.Controller.bus ctl);
      Some p
    end
    else None
  in
  let diverged =
    match Darco.Controller.run ?max_insns ctl with
    | `Done | `Limit -> None
    | `Diverged d ->
      Printf.printf "!! %s diverged at %d: %s\n" e.name d.at_retired
        (String.concat "; " d.details);
      Some (d.at_retired, d.details)
  in
  let stats = Darco.Controller.stats ctl in
  recorded :=
    {
      r_label = Option.value label ~default:e.name;
      r_suite = e.suite;
      r_stats = stats;
      r_diverged = diverged;
    }
    :: !recorded;
  ({ name = e.name; suite = e.suite; stats }, pipe)

let run_benchmark_stats ?cfg ?label e = fst (run_benchmark ?cfg ?label e)

(* One fixed-size slice of a chunked run: enough to put an error bar on the
   table columns that used to be bare end-of-run point estimates. *)
type chunk = {
  c_ipc : float;
  c_tol : float;  (* TOL share of the chunk's host stream, percent *)
  c_report : Darco_power.Model.report option;
}

(* Like [run_benchmark], but pausing every [chunk] guest instructions (up
   to [nchunks] times, or until the workload completes) to difference the
   live counters — per-chunk IPC, TOL share and power report.  The chunk
   lists feed mean ± 95% CI columns; the recorded end-of-run entry is the
   same as the plain runner's. *)
let run_benchmark_chunked ?(cfg = Darco.Config.default) ?(timing = false)
    ~chunk ~nchunks ?label (e : Registry.entry) =
  let ctl = Darco.Controller.create ~cfg ~seed:42 (e.build ()) in
  let pipe =
    if timing then begin
      let p = Darco_timing.Pipeline.create Darco_timing.Tconfig.default in
      Darco_timing.Pipeline.attach p (Darco.Controller.bus ctl);
      Some p
    end
    else None
  in
  let stats = Darco.Controller.stats ctl in
  let chunks = ref [] in
  let diverged = ref None in
  let prev_guest = ref 0 in
  let prev_ov = ref 0 in
  let prev_app = ref 0 in
  let prev_insns = ref 0 in
  let prev_cycles = ref 0 in
  let prev_ev =
    ref
      (Option.map
         (fun p -> Darco_timing.Pipeline.events_copy (Darco_timing.Pipeline.events p))
         pipe)
  in
  (try
     for k = 1 to nchunks do
       let finished =
         match Darco.Controller.run ~max_insns:(k * chunk) ctl with
         | `Limit -> false
         | `Done -> true
         | `Diverged d ->
           Printf.printf "!! %s diverged at %d: %s\n" e.name d.at_retired
             (String.concat "; " d.details);
           diverged := Some (d.at_retired, d.details);
           raise Exit
       in
       let guest = Darco.Stats.guest_total stats in
       let ov = Darco.Stats.total_overhead stats in
       let app = Darco.Stats.host_app_total stats in
       let host_d = ov - !prev_ov + (app - !prev_app) in
       let tol =
         if host_d = 0 then 0.0 else 100. *. float_of_int (ov - !prev_ov) /. float_of_int host_d
       in
       let ipc, report =
         match pipe with
         | None -> (0.0, None)
         | Some p ->
           let di = Darco_timing.Pipeline.instructions p - !prev_insns in
           let dc = Darco_timing.Pipeline.cycles p - !prev_cycles in
           prev_insns := Darco_timing.Pipeline.instructions p;
           prev_cycles := Darco_timing.Pipeline.cycles p;
           let now = Darco_timing.Pipeline.events p in
           let delta = Darco_timing.Pipeline.events_diff now (Option.get !prev_ev) in
           prev_ev := Some (Darco_timing.Pipeline.events_copy now);
           ( (if dc = 0 then 0.0 else float_of_int di /. float_of_int dc),
             Some (Darco_power.Model.evaluate delta) )
       in
       (* a zero-length tail chunk (workload already done) carries no signal *)
       if guest > !prev_guest then
         chunks := { c_ipc = ipc; c_tol = tol; c_report = report } :: !chunks;
       prev_guest := guest;
       prev_ov := ov;
       prev_app := app;
       if finished then raise Exit
     done
   with Exit -> ());
  recorded :=
    {
      r_label = Option.value label ~default:e.name;
      r_suite = e.suite;
      r_stats = stats;
      r_diverged = !diverged;
    }
    :: !recorded;
  ({ name = e.name; suite = e.suite; stats }, List.rev !chunks)

(* "12.3 ± 0.4" for a per-chunk metric (CI half-width is 0 under 2 chunks). *)
let pm fmt xs = Printf.sprintf "%s ± %s"
    (Printf.sprintf fmt (SM.mean xs))
    (Printf.sprintf fmt (SM.ci95_halfwidth xs))

let suite_results = lazy (List.map run_benchmark_stats Registry.all)

let labels results = List.map (fun r -> r.name) results

let with_averages (results : bench_stats list) (metric : bench_stats -> float) =
  let per_suite s =
    SM.mean
      (List.filter_map
         (fun r -> if r.suite = s then Some (metric r) else None)
         results)
  in
  ( List.map metric results,
    [
      ("SPECINT2006", per_suite Registry.Specint);
      ("SPECFP2006", per_suite Registry.Specfp);
      ("Physicsbench", per_suite Registry.Physicsbench);
    ] )

(* --- Figure 4: dynamic guest instruction distribution in IM/BBM/SBM --- *)

let fig4 () =
  let results = Lazy.force suite_results in
  print_endline "=== Figure 4: dynamic x86 instruction distribution (IM/BBM/SBM) ===";
  let series =
    [
      ( "IM",
        Array.of_list
          (List.map (fun r -> let im, _, _ = Darco.Stats.mode_fractions r.stats in im) results) );
      ( "BBM",
        Array.of_list
          (List.map (fun r -> let _, bbm, _ = Darco.Stats.mode_fractions r.stats in bbm) results) );
      ( "SBM",
        Array.of_list
          (List.map (fun r -> let _, _, sbm = Darco.Stats.mode_fractions r.stats in sbm) results) );
    ]
  in
  print_string (Table.stacked_bars ~labels:(labels results) ~series);
  let _, averages =
    with_averages results (fun r ->
        let _, _, sbm = Darco.Stats.mode_fractions r.stats in
        100. *. sbm)
  in
  List.iter (fun (s, v) -> Printf.printf "  %s average SBM share: %.1f%%\n" s v) averages;
  print_endline "  (paper: 88% / 96% / 75%)\n"

(* --- Figure 5: host instructions per guest instruction in SBM --- *)

let fig5 () =
  let results = Lazy.force suite_results in
  print_endline "=== Figure 5: host instructions per x86 instruction in SBM ===";
  let values, averages =
    with_averages results (fun r -> Darco.Stats.emulation_cost_sbm r.stats)
  in
  print_string
    (Table.bar_chart ~labels:(labels results) ~values:(Array.of_list values)
       ~unit:"host/guest");
  List.iter (fun (s, v) -> Printf.printf "  %s average: %.2f\n" s v) averages;
  print_endline "  (paper: 4.0 / 2.6 / 3.1)\n"

(* --- Figure 6: TOL overhead vs application instructions --- *)

let fig6 () =
  let results = Lazy.force suite_results in
  print_endline "=== Figure 6: host dynamic instruction distribution (TOL vs app) ===";
  let series =
    [
      ( "TOL overhead",
        Array.of_list
          (List.map (fun r -> float_of_int (Darco.Stats.total_overhead r.stats)) results) );
      ( "application",
        Array.of_list
          (List.map (fun r -> float_of_int (Darco.Stats.host_app_total r.stats)) results)
      );
    ]
  in
  print_string (Table.stacked_bars ~labels:(labels results) ~series);
  let _, averages =
    with_averages results (fun r -> 100. *. Darco.Stats.overhead_fraction r.stats)
  in
  List.iter (fun (s, v) -> Printf.printf "  %s average TOL share: %.1f%%\n" s v) averages;
  print_endline "  (paper: 16% / 13% / 41%)\n"

(* --- Figure 7: TOL overhead breakdown --- *)

let fig7 () =
  let results = Lazy.force suite_results in
  print_endline "=== Figure 7: dynamic TOL overhead distribution ===";
  let cats =
    [
      ("interpreter", Darco.Stats.Ov_interp);
      ("BB translator", Darco.Stats.Ov_bb_translate);
      ("SB translator", Darco.Stats.Ov_sb_translate);
      ("prologue", Darco.Stats.Ov_prologue);
      ("chaining", Darco.Stats.Ov_chaining);
      ("code $ lookup", Darco.Stats.Ov_cc_lookup);
      ("others", Darco.Stats.Ov_other);
    ]
  in
  let series =
    List.map
      (fun (name, ov) ->
        ( name,
          Array.of_list
            (List.map
               (fun r -> float_of_int (Darco.Stats.overhead_of r.stats ov))
               results) ))
      cats
  in
  print_string (Table.stacked_bars ~labels:(labels results) ~series);
  let header = "suite" :: List.map fst cats in
  let rows =
    List.map
      (fun suite ->
        let members = List.filter (fun r -> r.suite = suite) results in
        let share ov =
          SM.mean
            (List.map
               (fun r ->
                 SM.percent
                   (float_of_int (Darco.Stats.overhead_of r.stats ov))
                   (float_of_int (Darco.Stats.total_overhead r.stats)))
               members)
        in
        Registry.suite_name suite
        :: List.map (fun (_, ov) -> Printf.sprintf "%.1f%%" (share ov)) cats)
      [ Registry.Specint; Registry.Specfp; Registry.Physicsbench ]
  in
  print_endline (Table.render ~header rows);
  print_endline
    "  (paper: interpretation + BB-translation dominate Physicsbench; SB\n\
    \   translator overhead comparatively small everywhere)\n"

(* --- §VI-A: DARCO speed, measured with Bechamel --- *)

let speed_workload = lazy ((Registry.find "429.mcf").build ())

let bechamel_speed () =
  let open Bechamel in
  let open Toolkit in
  let insns = 150_000 in
  let mk name timing =
    Test.make ~name
      (Staged.stage (fun () ->
           let ctl = Darco.Controller.create ~seed:42 (Lazy.force speed_workload) in
           if timing then begin
             let p = Darco_timing.Pipeline.create Darco_timing.Tconfig.default in
             Darco_timing.Pipeline.attach p (Darco.Controller.bus ctl)
           end;
           ignore (Darco.Controller.run ~max_insns:insns ctl);
           Darco.Controller.stats ctl))
  in
  (* the profiler's cost relative to "functional": what one bus sink adds
     to the no-sink fast path (which stays sink-free and unchanged) *)
  let mk_profiled name =
    Test.make ~name
      (Staged.stage (fun () ->
           let bus = Darco_obs.Bus.create () in
           ignore (Darco_obs.Prof.attach bus);
           let ctl =
             Darco.Controller.create ~bus ~seed:42 (Lazy.force speed_workload)
           in
           ignore (Darco.Controller.run ~max_insns:insns ctl);
           Darco.Controller.stats ctl))
  in
  let test =
    Test.make_grouped ~name:"darco-speed"
      [ mk "functional" false; mk "with-timing" true; mk_profiled "with-profiler" ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~stabilize:false () in
  let raw = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  let ns_per_run name =
    let tbl = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
    let ols_result = Hashtbl.find tbl ("darco-speed/" ^ name) in
    match Analyze.OLS.estimates ols_result with
    | Some [ est ] -> est
    | Some _ | None -> nan
  in
  Printf.printf "Bechamel (429.mcf, %d guest insns per run):\n" insns;
  List.iter
    (fun name ->
      let ns = ns_per_run name in
      Printf.printf "  %-12s %8.1f ms/run -> %.2f guest MIPS\n" name (ns /. 1e6)
        (float_of_int insns /. (ns /. 1e9) /. 1e6))
    [ "functional"; "with-timing"; "with-profiler" ]

let speed () =
  print_endline "=== Section VI-A: DARCO speed ===";
  let s =
    Darco_studies.Speed.measure ~insns:400_000 (Lazy.force speed_workload) ~seed:42
  in
  Format.printf "%a@." Darco_studies.Speed.pp s;
  print_endline
    "  (paper, on 2017 hardware: guest 3.4 MIPS emulated / 370 KIPS timed;\n\
    \   host 20 MIPS emulated / 2 MIPS timed)";
  bechamel_speed ();
  print_newline ()

(* --- execution engines: the reference walker vs direct-threaded chains --- *)

let engines_summary : Darco_obs.Jsonx.t option ref = ref None

(* A synthetic hot-region set: straight-line loop bodies modeled on the
   suite's hot loops, pushed through the real translation pipeline
   (translate -> optimize -> schedule -> regalloc -> codegen) and then
   self-chained, so one engine invocation executes translated code until
   its fuel runs out.  The measurement is pure region execution — the only
   thing Exec's engine choice changes. *)
let engines () =
  print_endline "=== Execution engines: eval walker vs direct-threaded ===";
  let open Darco_guest in
  let open Isa in
  let data_base = 0x3000 in
  let mem_at disp : Isa.mem = { base = Some EBX; index = None; disp } in
  (* Bodies are register-dominated, like real hot superblocks after loop
     unrolling, redundant-load elimination and CSE have done their job: long
     dependence chains of ALU/FP work with a memory access at either end. *)
  let unroll k body = List.concat (List.init k (fun _ -> body)) in
  let int_chase : Isa.insn list =
    Mov (Reg EAX, Mem (mem_at 0))
    :: unroll 8
         [
           Alu (Add, Reg EAX, Imm 3);
           Alu (Xor, Reg ECX, Reg EAX);
           Alu (Add, Reg EDX, Reg EAX);
           Inc (Reg ESI);
           Alu (Sub, Reg EDI, Imm 1);
           Alu (And, Reg EAX, Imm 0xFFFF);
           Lea (EDX, mem_at 4);
           Alu (Add, Reg ECX, Reg EDX);
           Shift (Shr, Reg ECX, Imm 2);
           Alu (Xor, Reg EDX, Reg ESI);
           Alu (Add, Reg EAX, Reg ECX);
           Alu (Or, Reg ESI, Imm 1);
           Alu (Sub, Reg EAX, Reg EDX);
         ]
    @ [
        Cmp (Reg ESI, Reg EDI);
        Setcc (NE, ECX);
        Alu (Add, Reg EDI, Reg ECX);
        Mov (Mem (mem_at 128), Reg EAX);
      ]
  in
  let fp_stream : Isa.insn list =
    Fld (F0, mem_at 512)
    :: unroll 8
         [
           Fbin (Fmul, F0, F1);
           Fbin (Fadd, F2, F0);
           Fbin (Fmul, F3, F2);
           Fbin (Fadd, F4, F3);
           Fbin (Fsub, F1, F4);
           Fbin (Fmul, F2, F1);
           Fbin (Fadd, F3, F2);
           Fmov (F5, F3);
           Fbin (Fadd, F5, F0);
         ]
    @ [ Inc (Reg ESI); Alu (Add, Reg EAX, Imm 1); Fst (mem_at 536, F5) ]
  in
  let alu_mix : Isa.insn list =
    unroll 6
      [
        Mov (Reg EAX, Imm 0x1234);
        Shift (Shl, Reg EAX, Imm 3);
        Alu (Or, Reg EAX, Imm 7);
        Imul2 (ECX, Reg EAX);
        Test (Reg EAX, Reg EAX);
        Setcc (NE, EDX);
        Alu (Adc, Reg EDI, Imm 0);
        Not (Reg EDX);
        Dec (Reg ECX);
        Shift (Sar, Reg ECX, Imm 1);
        Alu (Xor, Reg EAX, Reg ECX);
        Alu (Add, Reg ESI, Reg EAX);
        Shift (Rol, Reg ESI, Imm 5);
        Alu (Sub, Reg EDX, Reg ESI);
        Cmov (NE, EDI, Reg EDX);
        Alu (Add, Reg EAX, Reg EDI);
      ]
  in
  let cfg = Darco.Config.default in
  let lower id insns : Darco_host.Code.region =
    let ctx = Darco.Translate.create ~entry_pc:0x1000 in
    List.iter (fun i -> Darco.Translate.translate_insn ctx i ~pc:0x1000 ~len:1) insns;
    Darco.Translate.emit_exit ctx (Darco.Ir.Xdirect 0x1000);
    let region = Darco.Translate.finalize ctx ~mode:`Super ~prof:None in
    let region = Darco.Sched.run cfg (Darco.Opt.run cfg region) in
    let alloc = Darco.Regalloc.allocate region in
    let code, _ =
      Darco.Codegen.lower cfg region ~alloc
        ~spill_base:(Loader.tol_base + 0x1000) ~ibtc_base:Loader.tol_base
    in
    let hw : Darco_host.Code.region =
      {
        id;
        entry_pc = 0x1000;
        mode = `Super;
        base = 0xC0000000 + (id * 0x10000);
        code;
        incoming = [];
        invalidated = false;
      }
    in
    (* self-chain the exit: the region is its own hot successor *)
    Array.iter
      (function Darco_host.Code.Exit e -> e.chain <- Some hw | _ -> ())
      code;
    hw
  in
  let named = [ ("int-chase", int_chase); ("fp-stream", fp_stream); ("alu-mix", alu_mix) ] in
  let regions = List.mapi (fun i (_, insns) -> lower i insns) named in
  let fresh_machine () =
    let mem = Memory.create `Auto_zero in
    let cpu = Cpu.create () in
    Cpu.set cpu EBX data_base;
    Cpu.set cpu EBP (data_base + 512);
    Cpu.set cpu ESP Loader.stack_top;
    for i = 0 to 255 do
      Memory.write32 mem (data_base + (4 * i)) (i * 2654435761)
    done;
    let m = Darco_host.Machine.create mem in
    Darco_host.Machine.copy_guest_in m cpu;
    m
  in
  let resolve _ = None in
  let fuel = 120_000 in
  let get =
    let tbl = Hashtbl.create 8 in
    fun (r : Darco_host.Code.region) ->
      match Hashtbl.find_opt tbl r.id with
      | Some c -> c
      | None ->
        let c = Darco.Threaded.compile r in
        Hashtbl.add tbl r.id c;
        c
  in
  let run_eval m r = Darco_host.Emulator.run m ~resolve ~fuel r in
  let run_threaded m r = Darco.Threaded.run m ~resolve ~get ~fuel r in
  (* both engines must agree exactly before anything is timed *)
  List.iter
    (fun r ->
      let ma = fresh_machine () and mb = fresh_machine () in
      let ra = run_eval ma r and rb = run_threaded mb r in
      let open Darco_host.Emulator in
      assert (ra.stop = rb.stop);
      assert (ra.host_retired = rb.host_retired);
      assert (ra.guest_super = rb.guest_super && ra.guest_bb = rb.guest_bb);
      assert (ra.chains_followed = rb.chains_followed);
      assert (ra.wasted_host = rb.wasted_host);
      let ca = Cpu.create () and cb = Cpu.create () in
      Darco_host.Machine.copy_guest_out ma ca;
      Darco_host.Machine.copy_guest_out mb cb;
      assert (Cpu.equal ca cb))
    regions;
  let open Bechamel in
  let open Toolkit in
  let mk name runner =
    Test.make ~name
      (Staged.stage
         (let m = fresh_machine () in
          fun () -> List.iter (fun r -> ignore (runner m r)) regions))
  in
  let test =
    Test.make_grouped ~name:"engines"
      [ mk "eval" run_eval; mk "threaded" run_threaded ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  (* Earlier sections leave a large, fragmented major heap behind; compact
     and let bechamel stabilize so the engine comparison measures dispatch,
     not inherited GC debt. *)
  Gc.compact ();
  let bcfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 3.0) ~stabilize:true () in
  let raw = Benchmark.all bcfg instances test in
  let results =
    Analyze.merge ols instances
      (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  let ns_per_run name =
    let tbl = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
    match Analyze.OLS.estimates (Hashtbl.find tbl ("engines/" ^ name)) with
    | Some [ est ] -> est
    | Some _ | None -> nan
  in
  let eval_ns = ns_per_run "eval" in
  let thr_ns = ns_per_run "threaded" in
  let speedup = eval_ns /. thr_ns in
  let total_host = fuel * List.length regions in
  Printf.printf "hot-region set (%s), %d host insns per run:\n"
    (String.concat ", " (List.map fst named))
    total_host;
  Printf.printf "  %-10s %8.2f ms/run  %6.1f host MIPS\n" "eval" (eval_ns /. 1e6)
    (float_of_int total_host /. (eval_ns /. 1e9) /. 1e6);
  Printf.printf "  %-10s %8.2f ms/run  %6.1f host MIPS  (speedup %.2fx)\n"
    "threaded" (thr_ns /. 1e6)
    (float_of_int total_host /. (thr_ns /. 1e9) /. 1e6)
    speedup;
  let open Darco_obs in
  engines_summary :=
    Some
      (Jsonx.Obj
         [
           ("workloads", Jsonx.List (List.map (fun (n, _) -> Jsonx.String n) named));
           ("fuel_per_region", Jsonx.Int fuel);
           ("eval_ns_per_run", Jsonx.Float eval_ns);
           ("threaded_ns_per_run", Jsonx.Float thr_ns);
           ("speedup", Jsonx.Float speedup);
         ]);
  print_newline ()

(* --- §VI-E: warm-up methodology case study --- *)

let warmup () =
  print_endline "=== Section VI-E: warm-up simulation methodology ===";
  let program = (Registry.find "462.libquantum").build ~scale:5 () in
  let report =
    Darco_studies.Warmup.run_study ~program ~seed:42
      ~sample_offsets:[ 700_000; 1_300_000; 1_900_000 ]
      ~window:25_000 ()
  in
  Format.printf "%a@." Darco_studies.Warmup.pp_report report;
  let open Darco_obs in
  let ipcs = List.map (fun (s : Darco_studies.Warmup.sample_result) -> s.ipc_sampled) report.samples in
  sampling_summary :=
    Some
      (Jsonx.Obj
         [
           ("benchmark", Jsonx.String "462.libquantum");
           ("window", Jsonx.Int 25_000);
           ("ipc_mean", Jsonx.Float report.ipc_sampled_mean);
           ("ipc_stddev", Jsonx.Float (SM.sample_stddev ipcs));
           ("ipc_ci95", Jsonx.Float report.ipc_sampled_ci95);
           ("ipc_full_mean", Jsonx.Float report.ipc_full_mean);
           ("ipc_full_ci95", Jsonx.Float report.ipc_full_ci95);
           ("avg_error", Jsonx.Float report.avg_error);
           ( "samples",
             Jsonx.List
               (List.map
                  (fun (s : Darco_studies.Warmup.sample_result) ->
                    Jsonx.Obj
                      [
                        ("offset", Jsonx.Int s.offset);
                        ("ipc", Jsonx.Float s.ipc_sampled);
                        ("ipc_full", Jsonx.Float s.ipc_full);
                        ("error", Jsonx.Float s.error);
                      ])
                  report.samples) );
         ]);
  print_endline "  (paper: ~65x simulation-cost reduction at 0.75% average error)\n"

(* --- hot regions: the bus-fed profiler over a real workload --- *)

let profile_summary : Darco_obs.Jsonx.t option ref = ref None

let profile () =
  print_endline "=== Hot regions: bus-fed profiler (429.mcf) ===";
  let e = Registry.find "429.mcf" in
  let bus = Darco_obs.Bus.create () in
  let prof = Darco_obs.Prof.attach bus in
  let ctl = Darco.Controller.create ~bus ~seed:42 (e.build ()) in
  (match Darco.Controller.run ~max_insns:400_000 ctl with
  | `Done | `Limit -> ()
  | `Diverged d ->
    Printf.printf "!! 429.mcf diverged at %d under profiling\n" d.at_retired;
    exit 1);
  let stats = Darco.Controller.stats ctl in
  (* the headline property: attribution is exact, not approximate *)
  (match Darco_obs.Prof.reconciles prof stats with
  | Ok () -> ()
  | Error m ->
    Printf.printf "!! profiler does not reconcile with Stats.t: %s\n" m;
    exit 1);
  Format.printf "%a@." (Darco_obs.Prof.pp_table ~n:10) prof;
  profile_summary := Some (Darco_obs.Prof.to_json ~n:10 prof);
  print_endline "  (attribution reconciles exactly with the run's Stats.t)\n"

(* --- multicore runtime: fork pool vs domain pool on one shared image --- *)

module Sampling = Darco_sampling

let parallel_summary : Darco_obs.Jsonx.t option ref = ref None

(* Canonical rendering of a sweep's results: what the CI cmp gate
   compares across backends, reproduced here so the bench can assert the
   fork and domain pools agree byte for byte before timing them. *)
let render_results (results : Sampling.Sweep.result list) =
  let open Darco_obs in
  Jsonx.to_string
    (Jsonx.List
       (List.map
          (fun (r : Sampling.Sweep.result) ->
            Jsonx.Obj
              [
                ("label", Jsonx.String r.label);
                ( "outcome",
                  match r.outcome with
                  | Sampling.Sweep.Ok j -> j
                  | Sampling.Sweep.Failed m -> Jsonx.String ("FAILED: " ^ m) );
              ])
          results))

(* Phase order is load-bearing: once a process has created ANY domain the
   OCaml 5 runtime refuses Unix.fork forever, so everything fork-based
   (the fork-pool Bechamel run, the fork-pool RSS child) must finish
   before the first domain spawns (the RSS sampler, the domain pool). *)
let parallel () =
  print_endline
    "=== Multicore runtime: fork pool vs domain pool (462.libquantum) ===";
  let e = Registry.find "462.libquantum" in
  let program = e.build ~scale:5 () in
  let store = Sampling.Store.create () in
  let window = 10_000 and warmup = 5_000 and jobs = 4 in
  let offsets = List.init 8 (fun i -> 50_000 + (i * 15_000)) in
  let horizon = List.fold_left (fun acc o -> max acc (o + window)) 0 offsets in
  (* interval past the horizon: every window resolves to the checkpoint
     at instruction 0, i.e. ONE image shared by all eight units *)
  let checkpoints =
    Sampling.Driver.functional_checkpoints ~seed:42 ~interval:(horizon + 1)
      ~horizon program
  in
  let works =
    List.map
      (fun off ->
        Sampling.Work.of_window_stored ~store ~checkpoints
          ~label:(Printf.sprintf "%s@%d" e.name off)
          ~offset:off ~window ~warmup)
      offsets
  in
  Printf.printf "%d windows sharing %d checkpoint image(s), %d jobs\n%!"
    (List.length works) (Sampling.Store.count store) jobs;
  let bech name backend =
    let open Bechamel in
    let open Toolkit in
    let test =
      Test.make_grouped ~name:"parallel"
        [
          Test.make ~name
            (Staged.stage (fun () -> Sampling.Sweep.run backend works));
        ]
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:8 ~quota:(Time.second 3.0) ~stabilize:false () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.merge ols instances
        (List.map (fun i -> Analyze.all ols i raw) instances)
    in
    let tbl = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
    match Analyze.OLS.estimates (Hashtbl.find tbl ("parallel/" ^ name)) with
    | Some [ est ] -> est
    | Some _ | None -> nan
  in
  (* wall + peak tree RSS of one sweep on [backend], measured from
     outside: the sweep runs in a forked child whose process tree (the
     child plus any workers it forks) this process samples.  The same
     yardstick for both backends — each child starts from the same
     parent image, and PSS divides pages the child still shares with us. *)
  let measure name backend =
    let path = Filename.temp_file "darco_parbench" ".out" in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      let t0 = Unix.gettimeofday () in
      let results = Sampling.Sweep.run backend works in
      let wall = Unix.gettimeofday () -. t0 in
      let oc = open_out_bin path in
      output_string oc (Printf.sprintf "%.6f\n" wall);
      output_string oc (render_results results);
      close_out oc;
      Unix._exit 0
    | pid ->
      let peak = ref 0 in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          (match Darco_util.Rss.tree_rss_kb pid with
          | Some kb when kb > !peak -> peak := kb
          | _ -> ());
          Unix.sleepf 0.01;
          wait ()
        | _, Unix.WEXITED 0 -> ()
        | _, status ->
          Printf.printf "!! %s measurement child failed (%s)\n" name
            (match status with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s);
          exit 1
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ();
      let ic = open_in_bin path in
      let wall = float_of_string (input_line ic) in
      let rendered =
        really_input_string ic (in_channel_length ic - pos_in ic)
      in
      close_in ic;
      Sys.remove path;
      (wall, (if !peak = 0 then None else Some !peak), rendered)
  in
  (* 1. fork pool under Bechamel (must run while fork is still legal) *)
  let fork_ns = bech "fork" (Sampling.Sweep.Backend.local ~store ~jobs ()) in
  (* 2. one measured sweep per backend; the domains child spawns its
     domains in the child only, so this process can still fork *)
  let fork_wall, fork_peak, fork_rendered =
    measure "fork" (Sampling.Sweep.Backend.local ~store ~jobs ())
  in
  let domains_wall, domains_peak, domains_rendered =
    measure "domains" (Sampling.Sweep.Backend.domains ~store ~jobs ())
  in
  (* 3. domain pool under Bechamel — the process's first domains, and
     the point past which Unix.fork is gone for good *)
  let domains_ns = bech "domains" (Sampling.Sweep.Backend.domains ~store ~jobs ()) in
  let identical = String.equal fork_rendered domains_rendered in
  if not identical then begin
    Printf.printf
      "!! fork and domains backends disagree on the sweep's result JSON\n";
    exit 1
  end;
  let pp_kb = function None -> "n/a" | Some kb -> Printf.sprintf "%d kB" kb in
  Printf.printf "  %-8s %8.2f ms/sweep (OLS)  wall %.2fs  peak tree RSS %s\n"
    "fork" (fork_ns /. 1e6) fork_wall (pp_kb fork_peak);
  Printf.printf "  %-8s %8.2f ms/sweep (OLS)  wall %.2fs  peak tree RSS %s\n"
    "domains" (domains_ns /. 1e6) domains_wall (pp_kb domains_peak);
  print_endline "  (result JSON byte-identical across both pools)\n";
  let open Darco_obs in
  let side ns wall peak =
    Jsonx.Obj
      [
        ("ns_per_sweep", Jsonx.Float ns);
        ("wall_s", Jsonx.Float wall);
        ( "peak_rss_kb",
          match peak with None -> Jsonx.Null | Some kb -> Jsonx.Int kb );
      ]
  in
  parallel_summary :=
    Some
      (Jsonx.Obj
         [
           ("benchmark", Jsonx.String "462.libquantum");
           ("units", Jsonx.Int (List.length works));
           ("jobs", Jsonx.Int jobs);
           ("shared_images", Jsonx.Int (Sampling.Store.count store));
           ("identical_json", Jsonx.Bool identical);
           ("fork", side fork_ns fork_wall fork_peak);
           ("domains", side domains_ns domains_wall domains_peak);
         ])

(* --- adaptive sampling: variance-driven early exit vs fixed stride --- *)

let adaptive_summary : Darco_obs.Jsonx.t option ref = ref None

(* The planner's headline claim, measured on a real workload: an
   adaptive sweep meets its CI95 target from a strict subset of the
   fixed-stride window set, and its document is byte-identical whichever
   backend runs the rounds.  Both are gates — the bench fails if the
   savings fall under 30% or the backends disagree. *)
let adaptive () =
  print_endline
    "=== Adaptive sampling: variance-driven early exit (462.libquantum) ===";
  let e = Registry.find "462.libquantum" in
  let program = e.build ~scale:5 () in
  let store = Sampling.Store.create () in
  let window = 10_000 and warmup = 5_000 and ci_target = 0.02 in
  let offsets = List.init 24 (fun i -> 150_000 + (i * 75_000)) in
  let horizon = List.fold_left (fun acc o -> max acc (o + window)) 0 offsets in
  let checkpoints =
    Sampling.Driver.functional_checkpoints ~seed:42 ~interval:100_000 ~horizon
      program
  in
  let mk off =
    Sampling.Work.of_window_stored ~store ~checkpoints
      ~label:(Printf.sprintf "%s@%d" e.name off)
      ~offset:off ~window ~warmup
  in
  let doc rows plan =
    Darco_obs.Jsonx.to_string
      (Sampling.Report.sweep_json ~benchmark:e.name ~seed:42 ~interval:100_000
         ~window ~warmup ?plan rows)
        .Sampling.Report.doc
  in
  (* the yardstick: the exhaustive fixed-stride sweep *)
  let fixed_results =
    Sampling.Sweep.run (Sampling.Sweep.Backend.serial ~store ()) (List.map mk offsets)
  in
  let fixed_doc = doc (List.combine offsets fixed_results) None in
  (* the adaptive sweep, once per backend *)
  let ix = Sampling.Driver.index_of checkpoints in
  let phase_of off =
    Sampling.Snapshot.guest_eip
      (Sampling.Driver.nearest_ix ix off).Sampling.Driver.snapshot
  in
  let sweep backend =
    let plan =
      Sampling.Plan.create
        { Sampling.Plan.default with Sampling.Plan.ci_target; round_size = 6 }
        ~candidates:offsets ~phase_of
    in
    let recorded = ref 0 in
    let pairs =
      Sampling.Sweep.run_stream backend ~next:(fun _ completed ->
          let fresh = List.filteri (fun i _ -> i >= !recorded) completed in
          recorded := List.length completed;
          Sampling.Plan.record plan
            (List.filter_map
               (fun ((w : Sampling.Work.t), (r : Sampling.Sweep.result)) ->
                 match r.Sampling.Sweep.outcome with
                 | Sampling.Sweep.Ok json -> (
                   match Darco_obs.Jsonx.member "ipc" json with
                   | Some (Darco_obs.Jsonx.Float f) ->
                     Some (w.Sampling.Work.offset, f)
                   | _ -> None)
                 | Sampling.Sweep.Failed _ -> None)
               fresh);
          List.map mk (Sampling.Plan.next plan))
    in
    let summary =
      {
        Sampling.Report.plan_name = "adaptive";
        windows_used = List.length pairs;
        ci_target;
        ci_target_met = Sampling.Plan.ci_target_met plan;
        rounds = Sampling.Plan.rounds plan;
      }
    in
    ( doc
        (List.map
           (fun ((w : Sampling.Work.t), r) -> (w.Sampling.Work.offset, r))
           pairs)
        (Some summary),
      plan )
  in
  let serial_doc, plan = sweep (Sampling.Sweep.Backend.serial ~store ()) in
  let fork_doc, _ = sweep (Sampling.Sweep.Backend.local ~store ~jobs:4 ()) in
  let identical = String.equal serial_doc fork_doc in
  if not identical then begin
    Printf.printf
      "!! adaptive sweep documents differ between serial and fork backends\n";
    exit 1
  end;
  let used = Sampling.Plan.completed plan in
  let total = List.length offsets in
  let savings = 1.0 -. (float_of_int used /. float_of_int total) in
  if not (Sampling.Plan.ci_target_met plan) then begin
    Printf.printf "!! adaptive sweep never met its CI95 target\n";
    exit 1
  end;
  if savings < 0.30 then begin
    Printf.printf "!! adaptive sweep saved only %.0f%% of the windows\n"
      (100.0 *. savings);
    exit 1
  end;
  Printf.printf
    "  fixed    %3d windows\n  adaptive %3d windows in %d round(s)  (%.0f%% \
     fewer, ci95/mean %.4f <= %.2f)\n"
    total used
    (Sampling.Plan.rounds plan)
    (100.0 *. savings)
    (Sampling.Plan.ci95 plan /. Sampling.Plan.mean plan)
    ci_target;
  print_endline "  (adaptive document byte-identical across both backends)\n";
  let open Darco_obs in
  adaptive_summary :=
    Some
      (Jsonx.Obj
         [
           ("benchmark", Jsonx.String e.name);
           ("candidates", Jsonx.Int total);
           ("fixed_windows", Jsonx.Int total);
           ("adaptive_windows", Jsonx.Int used);
           ("rounds", Jsonx.Int (Sampling.Plan.rounds plan));
           ("savings_fraction", Jsonx.Float savings);
           ("ci_target", Jsonx.Float ci_target);
           ("ci_target_met", Jsonx.Bool (Sampling.Plan.ci_target_met plan));
           ("identical_json", Jsonx.Bool identical);
           ("fixed_doc_bytes", Jsonx.Int (String.length fixed_doc));
         ])

(* --- ablations: the design choices DESIGN.md calls out --- *)

let ablation_features () =
  print_endline "=== Ablation: TOL feature toggles (458.sjeng + 435.gromacs) ===";
  let variants =
    [
      ("baseline", Darco.Config.default);
      ("no asserts", { Darco.Config.default with use_asserts = false });
      ("no mem-speculation", { Darco.Config.default with use_mem_speculation = false });
      ("no scheduling", { Darco.Config.default with opt_schedule = false });
      ( "no optimizer",
        {
          Darco.Config.default with
          opt_const_fold = false;
          opt_copy_prop = false;
          opt_cse = false;
          opt_dce = false;
          opt_rle = false;
        } );
      ("no chaining", { Darco.Config.default with use_chaining = false });
      ("no IBTC", { Darco.Config.default with use_ibtc = false });
      ("no unrolling", { Darco.Config.default with unroll_factor = 1 });
    ]
  in
  List.iter
    (fun bench ->
      let e = Registry.find bench in
      Printf.printf "-- %s (5 x 50k-insn chunks, mean ± 95%% CI) --\n" e.name;
      let header =
        [ "variant"; "emul-cost"; "host-app"; "TOL%"; "SBM%"; "IPC"; "EPI nJ" ]
      in
      let rows =
        List.map
          (fun (name, cfg) ->
            let r, chunks =
              run_benchmark_chunked ~cfg ~timing:true ~chunk:50_000 ~nchunks:5
                ~label:(e.name ^ "/" ^ name) e
            in
            let _, _, sbm = Darco.Stats.mode_fractions r.stats in
            let epi =
              (Darco_power.Model.summarize
                 (List.filter_map (fun c -> c.c_report) chunks))
                .Darco_power.Model.epi
            in
            [
              name;
              Printf.sprintf "%.2f" (Darco.Stats.emulation_cost_sbm r.stats);
              string_of_int (Darco.Stats.host_app_total r.stats);
              pm "%.1f" (List.map (fun c -> c.c_tol) chunks);
              Printf.sprintf "%.1f" (100. *. sbm);
              pm "%.3f" (List.map (fun c -> c.c_ipc) chunks);
              Printf.sprintf "%.3f ± %.3f" epi.Darco_power.Model.s_mean
                epi.Darco_power.Model.s_ci95;
            ])
          variants
      in
      print_endline (Table.render ~header rows))
    [ "458.sjeng"; "435.gromacs" ];
  print_newline ()

let ablation_thresholds () =
  print_endline "=== Ablation: promotion thresholds vs startup delay (401.bzip2) ===";
  let e = Registry.find "401.bzip2" in
  let header = [ "bb/sb thresholds"; "startup-insns"; "TOL%"; "SBM%" ] in
  let rows =
    List.map
      (fun (bb, sb) ->
        let cfg = { Darco.Config.default with bb_threshold = bb; sb_threshold = sb } in
        let r, chunks =
          run_benchmark_chunked ~cfg ~chunk:50_000 ~nchunks:100
            ~label:(Printf.sprintf "%s/bb%d-sb%d" e.name bb sb) e
        in
        let _, _, sbm = Darco.Stats.mode_fractions r.stats in
        [
          Printf.sprintf "%d / %d" bb sb;
          (match r.stats.startup_insns with Some n -> string_of_int n | None -> "-");
          pm "%.1f" (List.map (fun c -> c.c_tol) chunks);
          Printf.sprintf "%.1f" (100. *. sbm);
        ])
      [ (2, 8); (4, 32); (8, 64); (16, 128); (32, 512) ]
  in
  print_endline (Table.render ~header rows);
  print_newline ()

(* --- the campaign service's artifact library: per-operation costs --- *)

let library_summary : Darco_obs.Jsonx.t option ref = ref None

let library () =
  print_endline "=== Artifact library: window store and lookup costs ===";
  let module Library = Darco_serve.Library in
  let dir = Filename.temp_file "darco_libbench" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
  @@ fun () ->
  let lib = Library.create ~dir () in
  (* a representative window result: the JSON one detailed window emits *)
  let json =
    "{\"offset\":130000,\"window\":25000,\"warmup\":30000,\"insns\":25000,"
    ^ "\"cycles\":16123,\"ipc\":1.5507230000000001,\"watts\":0.91,"
    ^ "\"epi_nj\":0.58699999999999997}"
  in
  let key i =
    {
      Library.bench = "462.libquantum";
      cfg = Sampling.Store.digest "bench config";
      snap = Sampling.Store.digest (Printf.sprintf "snapshot %d" (i mod 4));
      offset = 50_000 + (i * 1_000);
      window = 10_000;
      warmup = 5_000;
    }
  in
  let seeded = 64 in
  for i = 0 to seeded - 1 do
    Library.put_window lib (key i) json
  done;
  let bench_ns name f =
    let open Bechamel in
    let open Toolkit in
    let test =
      Test.make_grouped ~name:"library" [ Test.make ~name (Staged.stage f) ]
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:8 ~quota:(Time.second 1.0) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.merge ols instances
        (List.map (fun i -> Analyze.all ols i raw) instances)
    in
    let tbl = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
    match Analyze.OLS.estimates (Hashtbl.find tbl ("library/" ^ name)) with
    | Some [ est ] -> est
    | Some _ | None -> nan
  in
  let n = ref seeded in
  let store_ns =
    bench_ns "store" (fun () ->
        Library.put_window lib (key !n) json;
        incr n)
  in
  let warm_ns = bench_ns "warm lookup" (fun () -> Library.find_window lib (key 0)) in
  (* a cold lookup pays the open + CRC + digest re-verification a fresh
     server process pays on its first hit after a restart *)
  let cold_ns =
    bench_ns "cold lookup" (fun () ->
        Library.find_window (Library.create ~dir ()) (key 0))
  in
  Printf.printf "  %-12s %10.2f us/op\n" "store" (store_ns /. 1e3);
  Printf.printf "  %-12s %10.2f us/op\n" "warm lookup" (warm_ns /. 1e3);
  Printf.printf "  %-12s %10.2f us/op (verified read)\n\n" "cold lookup"
    (cold_ns /. 1e3);
  let open Darco_obs in
  library_summary :=
    Some
      (Jsonx.Obj
         [
           ("window_bytes", Jsonx.Int (String.length json));
           ("store_ns", Jsonx.Float store_ns);
           ("warm_lookup_ns", Jsonx.Float warm_ns);
           ("cold_lookup_ns", Jsonx.Float cold_ns);
         ])

(* --- telemetry: the cost of being observed ------------------------------ *)

let telemetry_summary : Darco_obs.Jsonx.t option ref = ref None

let telemetry () =
  print_endline "=== Telemetry: registry update and scrape costs ===";
  let open Darco_obs in
  let bench_ns name f =
    let open Bechamel in
    let open Toolkit in
    let test =
      Test.make_grouped ~name:"telemetry" [ Test.make ~name (Staged.stage f) ]
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:8 ~quota:(Time.second 1.0) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.merge ols instances
        (List.map (fun i -> Analyze.all ols i raw) instances)
    in
    let tbl = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
    match Analyze.OLS.estimates (Hashtbl.find tbl ("telemetry/" ^ name)) with
    | Some [ est ] -> est
    | Some _ | None -> nan
  in
  let reg = Registry.create () in
  let c = Registry.counter reg "bench_total" in
  let g = Registry.gauge reg "bench_depth" in
  let h = Registry.hist reg "bench_bytes" in
  let inc_ns = bench_ns "counter inc" (fun () -> Registry.inc c 1) in
  let set_ns = bench_ns "gauge set" (fun () -> Registry.set g 7) in
  let obs_ns = bench_ns "hist observe" (fun () -> Registry.observe h 512) in
  (* the do-nothing path every un-observed run takes: an event offered to
     a bus nobody listens to *)
  let quiet = Bus.create () in
  let ev = Event.Chain_made { pc = 0x400 } in
  let silent_ns = bench_ns "silent emit" (fun () -> Bus.emit quiet ~at:1 ev) in
  (* the full observed path: event -> bus -> registry fold *)
  let observed = Bus.create () in
  let obs_reg = Registry.attach observed in
  let emit_ns = bench_ns "registry emit" (fun () -> Bus.emit observed ~at:1 ev) in
  let snap_ns = bench_ns "snapshot" (fun () -> Registry.snapshot obs_reg) in
  Printf.printf "  %-14s %8.1f ns/op\n" "counter inc" inc_ns;
  Printf.printf "  %-14s %8.1f ns/op\n" "gauge set" set_ns;
  Printf.printf "  %-14s %8.1f ns/op\n" "hist observe" obs_ns;
  Printf.printf "  %-14s %8.1f ns/op (bus with no sinks)\n" "silent emit"
    silent_ns;
  Printf.printf "  %-14s %8.1f ns/op (bus -> registry fold)\n" "registry emit"
    emit_ns;
  Printf.printf "  %-14s %8.1f ns/op (point-in-time scrape)\n\n" "snapshot"
    snap_ns;
  telemetry_summary :=
    Some
      (Jsonx.Obj
         [
           ("counter_inc_ns", Jsonx.Float inc_ns);
           ("gauge_set_ns", Jsonx.Float set_ns);
           ("hist_observe_ns", Jsonx.Float obs_ns);
           ("silent_emit_ns", Jsonx.Float silent_ns);
           ("registry_emit_ns", Jsonx.Float emit_ns);
           ("snapshot_ns", Jsonx.Float snap_ns);
         ])

let all () =
  fig4 ();
  fig5 ();
  fig6 ();
  fig7 ();
  speed ();
  engines ();
  warmup ();
  profile ();
  ablation_features ();
  ablation_thresholds ();
  library ();
  adaptive ();
  telemetry ();
  (* last: the first Domain.spawn forbids Unix.fork for the rest of the
     process, and earlier sections must stay free to fork *)
  parallel ()

(* Machine-readable companion to the ASCII figures: one entry per run,
   including the full metrics snapshot and any divergence detail. *)
let write_results path =
  let open Darco_obs in
  let entry r =
    Jsonx.Obj
      [
        ("name", Jsonx.String r.r_label);
        ("suite", Jsonx.String (Darco_workloads.Registry.suite_name r.r_suite));
        ( "diverged",
          match r.r_diverged with
          | None -> Jsonx.Null
          | Some (at, details) ->
            Jsonx.Obj
              [
                ("at", Jsonx.Int at);
                ("details", Jsonx.List (List.map (fun d -> Jsonx.String d) details));
              ] );
        ("metrics", Metrics.to_json r.r_stats);
      ]
  in
  let doc =
    Jsonx.Obj
      [
        ("runs", Jsonx.List (List.rev_map entry !recorded));
        ( "sampling",
          match !sampling_summary with Some j -> j | None -> Jsonx.Null );
        ( "engines",
          match !engines_summary with Some j -> j | None -> Jsonx.Null );
        ( "hot_regions",
          match !profile_summary with Some j -> j | None -> Jsonx.Null );
        ( "parallel",
          match !parallel_summary with Some j -> j | None -> Jsonx.Null );
        ( "artifact_library",
          match !library_summary with Some j -> j | None -> Jsonx.Null );
        ( "adaptive",
          match !adaptive_summary with Some j -> j | None -> Jsonx.Null );
        ( "telemetry",
          match !telemetry_summary with Some j -> j | None -> Jsonx.Null );
      ]
  in
  let oc = open_out path in
  output_string oc (Jsonx.to_string doc);
  output_char oc '\n';
  close_out oc

let () =
  (match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> all ()
  | _ :: args ->
    List.iter
      (function
        | "fig4" -> fig4 ()
        | "fig5" -> fig5 ()
        | "fig6" -> fig6 ()
        | "fig7" -> fig7 ()
        | "speed" -> speed ()
        | "engines" -> engines ()
        | "warmup" -> warmup ()
        | "profile" -> profile ()
        | "ablation" ->
          ablation_features ();
          ablation_thresholds ()
        | "library" -> library ()
        | "adaptive" -> adaptive ()
        | "telemetry" -> telemetry ()
        | "parallel" -> parallel ()
        | other -> Printf.printf "unknown target %s\n" other)
      args
  | [] -> ());
  write_results "BENCH_results.json";
  let diverged = List.filter (fun r -> r.r_diverged <> None) !recorded in
  Printf.printf "BENCH_results.json: %d runs, %d diverged\n" (List.length !recorded)
    (List.length diverged);
  if diverged <> [] then begin
    List.iter (fun r -> Printf.printf "  diverged: %s\n" r.r_label) diverged;
    exit 1
  end
