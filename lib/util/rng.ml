type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let state t = t.state
let of_state s = { state = s }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  assert (bound > 0);
  (* mask into OCaml's non-negative int range *)
  let r = Int64.to_int (int64 t) land max_int in
  r mod bound

let in_range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L
let chance t p = float t < p
let choose t a = a.(int t (Array.length a))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  assert (total > 0.0);
  let target = float t *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted: empty"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w >= target then x else pick (acc +. w) rest
  in
  pick 0.0 choices

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
