let self_pid () = Unix.getpid ()

let read_whole path =
  (* /proc files report size 0; read incrementally *)
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 1024 in
        let rec go () =
          match input ic chunk 0 1024 with
          | 0 -> Some (Buffer.contents buf)
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          | exception Sys_error _ -> None
        in
        go ())

(* "VmRSS:     1234 kB"-style lines of status/smaps_rollup *)
let field_kb key text =
  let prefix = key ^ ":" in
  let rec scan lines =
    match lines with
    | [] -> None
    | line :: tl ->
      if String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then
        let rest = String.sub line (String.length prefix)
                     (String.length line - String.length prefix) in
        let digits = String.to_seq rest
                     |> Seq.filter (function '0' .. '9' -> true | _ -> false)
                     |> String.of_seq in
        int_of_string_opt digits
      else scan tl
  in
  scan (String.split_on_char '\n' text)

let status_kb pid key =
  Option.bind (read_whole (Printf.sprintf "/proc/%d/status" pid)) (field_kb key)

let pss_kb pid =
  Option.bind
    (read_whole (Printf.sprintf "/proc/%d/smaps_rollup" pid))
    (field_kb "Pss")

let rss_kb pid =
  match pss_kb pid with Some _ as s -> s | None -> status_kb pid "VmRSS"

let peak_kb pid = status_kb pid "VmHWM"

let ppid_of pid =
  Option.bind (read_whole (Printf.sprintf "/proc/%d/status" pid))
    (field_kb "PPid")

let descendants root =
  let pids =
    match Sys.readdir "/proc" with
    | exception Sys_error _ -> [||]
    | entries -> entries
  in
  let parent = Hashtbl.create 64 in
  Array.iter
    (fun name ->
      match int_of_string_opt name with
      | None -> ()
      | Some pid -> (
        match ppid_of pid with
        | Some pp -> Hashtbl.replace parent pid pp
        | None -> ()))
    pids;
  let rec is_descendant pid =
    match Hashtbl.find_opt parent pid with
    | Some pp -> pp = root || (pp <> 0 && pp <> pid && is_descendant pp)
    | None -> false
  in
  Hashtbl.fold
    (fun pid _ acc ->
      if pid <> root && is_descendant pid then pid :: acc else acc)
    parent []

let tree_rss_kb root =
  List.fold_left
    (fun acc pid ->
      match rss_kb pid with
      | None -> acc
      | Some kb -> Some (kb + Option.value ~default:0 acc))
    None
    (root :: descendants root)

let sample_during ?(interval_s = 0.02) f =
  let me = self_pid () in
  let peak = Atomic.make 0 in
  let stop = Atomic.make false in
  let observe () =
    match tree_rss_kb me with
    | None -> ()
    | Some kb ->
      let rec bump () =
        let cur = Atomic.get peak in
        if kb > cur && not (Atomic.compare_and_set peak cur kb) then bump ()
      in
      bump ()
  in
  observe ();
  let sampler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          observe ();
          Unix.sleepf interval_s
        done)
  in
  let finish () =
    Atomic.set stop true;
    Domain.join sampler;
    observe ()
  in
  let result =
    try f ()
    with e ->
      finish ();
      raise e
  in
  finish ();
  let p = Atomic.get peak in
  (result, if p = 0 then None else Some p)
