(** Small statistics toolbox used by benches, the warm-up heuristic and the
    reporting code. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val sample_stddev : float list -> float
(** Bessel-corrected (n-1) standard deviation — the estimator sampling
    error bars want; 0 on lists shorter than 2. *)

val ci95_halfwidth : float list -> float
(** Half-width of the normal-approximation 95% confidence interval on the
    mean, [1.96 * sample_stddev / sqrt n] (SMARTS-style sampling error);
    0 on lists shorter than 2. *)

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole], 0 when [whole = 0]. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length series.  Returns 0
    when either series has no variance. *)

val relative_error : float -> float -> float
(** [relative_error measured reference] as a fraction of [reference]
    (absolute value); 0 when [reference = 0]. *)

val histogram_distance : float array -> float array -> float
(** Total-variation-style distance between two distributions given as
    same-length non-negative weight vectors (each is normalised first).
    Range [\[0, 1\]]. *)
