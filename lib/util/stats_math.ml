let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let sample_stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let n = float_of_int (List.length xs) in
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. (n -. 1.0))

let ci95_halfwidth xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ -> 1.96 *. sample_stddev xs /. sqrt (float_of_int (List.length xs))

let percent part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

let correlation xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys);
  if n = 0 then 0.0
  else begin
    let mx = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
    let my = Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)
  end

let relative_error measured reference =
  if reference = 0.0 then 0.0 else abs_float ((measured -. reference) /. reference)

let histogram_distance a b =
  let n = Array.length a in
  assert (n = Array.length b);
  let sum v = Array.fold_left ( +. ) 0.0 v in
  let sa = sum a and sb = sum b in
  if sa = 0.0 || sb = 0.0 then if sa = sb then 0.0 else 1.0
  else begin
    let d = ref 0.0 in
    for i = 0 to n - 1 do
      d := !d +. abs_float ((a.(i) /. sa) -. (b.(i) /. sb))
    done;
    !d /. 2.0
  end
