(* Bumped when a release-worthy capability lands; reported in STAT and
   HLTH frames so stale daemons and clients are diagnosable. *)
let string = "0.10.0"
