(** Resident-set measurement from [/proc] — how much physical memory a
    run (and the worker processes it forks) actually holds.

    Sizes are in kilobytes, as the kernel reports them.  Every reader
    returns [None] where [/proc] is absent or unreadable (non-Linux,
    hardened mounts), so callers degrade to "not measured" rather than
    failing the run.

    The per-process readers prefer {b PSS} (proportional set size, from
    [smaps_rollup]) over VmRSS when summing a process {e tree}: PSS
    divides each shared physical page among its mappers, so N forked
    children copy-on-write-sharing one checkpoint image count the image
    once — exactly the sharing the {!Darco_sampling.Store.Shared} tier
    and the domains backends exist to create.  Plain VmRSS would charge
    the image N times and overstate the fork backend's footprint. *)

val self_pid : unit -> int

val rss_kb : int -> int option
(** The process's current resident set: PSS when [smaps_rollup] is
    readable, VmRSS otherwise. *)

val peak_kb : int -> int option
(** The process's high-water resident mark ([VmHWM]); not
    sharing-adjusted (the kernel keeps no PSS high-water mark). *)

val descendants : int -> int list
(** Live descendant pids of [pid] (children, grandchildren, ...), by
    scanning [/proc] for [PPid] chains.  Racy by nature: processes may
    appear or die mid-scan; callers sample repeatedly. *)

val tree_rss_kb : int -> int option
(** Current resident total of [pid] plus all its live descendants
    (PSS-preferred, see above).  [None] only when nothing was readable. *)

val sample_during : ?interval_s:float -> (unit -> 'a) -> 'a * int option
(** [sample_during f] runs [f ()] while a background domain polls
    {!tree_rss_kb} on this process every [interval_s] (default 0.02)
    seconds, and returns [f]'s result with the peak total observed.
    The first sample is taken before [f] starts and one more after it
    finishes, so short-lived allocations between polls still bound the
    result from both ends. *)
