(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the repository (workload generation, property
    tests, sampling) goes through this module so that every run is exactly
    reproducible from a seed.  The generator is SplitMix64, which has a
    trivially splittable state and excellent statistical quality for
    simulation purposes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val state : t -> int64
(** The raw SplitMix64 state word (for checkpointing). *)

val of_state : int64 -> t
(** Rebuild a generator from a {!state} word; the stream continues exactly
    where the captured generator left off. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted : t -> (float * 'a) list -> 'a
(** [weighted t choices] picks proportionally to the (positive) weights.
    The list must be non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
