val string : string
(** The build version this tree identifies as, e.g. ["0.10.0"].  Carried
    in STAT responses and health documents so a client can tell which
    build a long-running daemon is. *)
