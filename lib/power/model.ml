type coefficients = {
  pj_int_op : float;
  pj_mul_op : float;
  pj_fp_op : float;
  pj_regfile_read : float;
  pj_regfile_write : float;
  pj_il1_access : float;
  pj_dl1_access : float;
  pj_l2_access : float;
  pj_mem_access : float;
  pj_btb_access : float;
  pj_fetch_decode : float;
  leakage_watts : float;
  clock_ghz : float;
}

let default_coefficients =
  {
    pj_int_op = 0.6;
    pj_mul_op = 2.8;
    pj_fp_op = 3.5;
    pj_regfile_read = 0.15;
    pj_regfile_write = 0.2;
    pj_il1_access = 3.0;
    pj_dl1_access = 3.4;
    pj_l2_access = 18.0;
    pj_mem_access = 240.0;
    pj_btb_access = 0.8;
    pj_fetch_decode = 1.1;
    leakage_watts = 0.12;
    clock_ghz = 1.0;
  }

type report = {
  dynamic_joules : float;
  leakage_joules : float;
  total_joules : float;
  seconds : float;
  avg_watts : float;
  epi_nj : float;
}

let evaluate ?(coeffs = default_coefficients) (e : Darco_timing.Pipeline.events) =
  let pj = 1e-12 in
  let f = float_of_int in
  let dynamic =
    pj
    *. (coeffs.pj_int_op *. f e.e_int_ops
       +. (coeffs.pj_mul_op *. f e.e_mul_ops)
       +. (coeffs.pj_fp_op *. f e.e_fp_ops)
       +. (coeffs.pj_regfile_read *. f e.e_regfile_reads)
       +. (coeffs.pj_regfile_write *. f e.e_regfile_writes)
       +. (coeffs.pj_il1_access *. f e.e_il1.accesses)
       +. (coeffs.pj_dl1_access *. f e.e_dl1.accesses)
       +. (coeffs.pj_l2_access *. f e.e_l2.accesses)
       +. (coeffs.pj_mem_access *. f e.e_l2.misses)
       +. (coeffs.pj_btb_access *. f e.e_btb)
       +. (coeffs.pj_fetch_decode *. f e.e_insns))
  in
  let seconds = f e.e_cycles /. (coeffs.clock_ghz *. 1e9) in
  let leakage = coeffs.leakage_watts *. seconds in
  let total = dynamic +. leakage in
  {
    dynamic_joules = dynamic;
    leakage_joules = leakage;
    total_joules = total;
    seconds;
    avg_watts = (if seconds = 0.0 then 0.0 else total /. seconds);
    epi_nj = (if e.e_insns = 0 then 0.0 else total /. float_of_int e.e_insns *. 1e9);
  }

let perf_per_watt (e : Darco_timing.Pipeline.events) r =
  if r.total_joules = 0.0 then 0.0
  else float_of_int e.e_insns /. 1e6 /. r.seconds /. r.avg_watts

type stat = { s_mean : float; s_stddev : float; s_ci95 : float }

type summary = {
  n : int;
  energy_j : stat;
  watts : stat;
  epi : stat;
}

let stat_of xs =
  let module S = Darco_util.Stats_math in
  { s_mean = S.mean xs; s_stddev = S.sample_stddev xs; s_ci95 = S.ci95_halfwidth xs }

let summarize reports =
  {
    n = List.length reports;
    energy_j = stat_of (List.map (fun r -> r.total_joules) reports);
    watts = stat_of (List.map (fun r -> r.avg_watts) reports);
    epi = stat_of (List.map (fun r -> r.epi_nj) reports);
  }

let pp_stat ppf s =
  Format.fprintf ppf "%.4g ± %.2g (σ %.2g)" s.s_mean s.s_ci95 s.s_stddev

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>power over %d windows:@ energy %a J@ avg power %a W@ EPI %a nJ@]"
    s.n pp_stat s.energy_j pp_stat s.watts pp_stat s.epi

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>energy: %.3e J dynamic + %.3e J leakage = %.3e J@ \
     time %.3e s, avg power %.3f W, EPI %.2f nJ@]"
    r.dynamic_joules r.leakage_joules r.total_joules r.seconds r.avg_watts r.epi_nj
