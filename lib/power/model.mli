(** A McPAT-style analytical power/energy model.

    Event-driven like McPAT: the timing simulator's event counts are
    combined with per-structure dynamic energy coefficients plus a leakage
    power floor.  Coefficients are order-of-magnitude values for a ~1 GHz
    low-power in-order core in a planar bulk node; absolute numbers are not
    meant to match any silicon, but relative comparisons between
    configurations (the paper's use of McPAT) are meaningful. *)

type coefficients = {
  pj_int_op : float;
  pj_mul_op : float;
  pj_fp_op : float;
  pj_regfile_read : float;
  pj_regfile_write : float;
  pj_il1_access : float;
  pj_dl1_access : float;
  pj_l2_access : float;
  pj_mem_access : float;
  pj_btb_access : float;
  pj_fetch_decode : float;   (** per instruction through the front end *)
  leakage_watts : float;
  clock_ghz : float;
}

val default_coefficients : coefficients

type report = {
  dynamic_joules : float;
  leakage_joules : float;
  total_joules : float;
  seconds : float;
  avg_watts : float;
  epi_nj : float;            (** energy per instruction, nanojoules *)
}

val evaluate : ?coeffs:coefficients -> Darco_timing.Pipeline.events -> report

val perf_per_watt : Darco_timing.Pipeline.events -> report -> float
(** MIPS per watt for the measured run. *)

val pp_report : Format.formatter -> report -> unit

(** A point estimate with its dispersion — mean, Bessel-corrected standard
    deviation and normal-approximation 95% CI half-width, the same error-bar
    treatment the sampling layer applies to IPC. *)
type stat = { s_mean : float; s_stddev : float; s_ci95 : float }

type summary = {
  n : int;            (** number of reports aggregated *)
  energy_j : stat;    (** total energy per window, joules *)
  watts : stat;       (** average power per window *)
  epi : stat;         (** energy per instruction, nanojoules *)
}

val summarize : report list -> summary
(** Aggregate per-window power reports into mean/stddev/95%-CI statistics.
    All [stat] fields are 0 on lists shorter than 2, matching
    [Darco_util.Stats_math]. *)

val pp_summary : Format.formatter -> summary -> unit
