open Darco_guest

type t = {
  r : int array;
  f : float array;
  mem : Memory.t;
  sbuf : (int, int) Hashtbl.t;          (* byte address -> latest byte value *)
  mutable aliases : (int * int) list;   (* (addr, len) of speculative loads *)
  mutable ckpt_r : int array;
  mutable ckpt_f : float array;
}

exception Alias_violation

let create mem =
  {
    r = Array.make 64 0;
    f = Array.make 32 0.0;
    mem;
    (* Commits drain the buffer every region, so it stays small; a small
       bucket array keeps the per-commit iteration and reset cheap. *)
    sbuf = Hashtbl.create 16;
    aliases = [];
    ckpt_r = Array.make 64 0;
    ckpt_f = Array.make 32 0.0;
  }

let get t r = if r = 0 then 0 else t.r.(r)
let set t r v = if r <> 0 then t.r.(r) <- Semantics.mask32 v

let checkpoint t =
  Array.blit t.r 0 t.ckpt_r 0 64;
  Array.blit t.f 0 t.ckpt_f 0 32;
  Hashtbl.reset t.sbuf;
  t.aliases <- []

let rollback t =
  Array.blit t.ckpt_r 0 t.r 0 64;
  Array.blit t.ckpt_f 0 t.f 0 32;
  Hashtbl.reset t.sbuf;
  t.aliases <- []

let commit t =
  if Hashtbl.length t.sbuf <> 0 then begin
    (* Probe first: a page fault must leave memory untouched.  Committed
       stores span a handful of pages at most, so a small list beats a
       hash table for the probe set. *)
    let probed = ref [] in
    Hashtbl.iter
      (fun addr _ ->
        let p = Memory.page_index addr in
        if not (List.mem p !probed) then begin
          ignore (Memory.read8 t.mem addr);
          probed := p :: !probed
        end)
      t.sbuf;
    Hashtbl.iter (fun addr v -> Memory.write8 t.mem addr v) t.sbuf;
    Hashtbl.reset t.sbuf
  end;
  t.aliases <- []

let in_flight_stores t = Hashtbl.length t.sbuf

let load_byte t addr =
  match Hashtbl.find_opt t.sbuf addr with
  | Some v -> v
  | None -> Memory.read8 t.mem addr

let raw_load t (w : Isa.width) addr =
  (* With no stores in flight there is nothing to forward, so the load can
     go straight to memory in one access. *)
  if Hashtbl.length t.sbuf = 0 then Memory.read t.mem w addr
  else
    match w with
    | W8 -> load_byte t addr
    | W16 -> load_byte t addr lor (load_byte t (addr + 1) lsl 8)
    | W32 ->
      load_byte t addr
      lor (load_byte t (addr + 1) lsl 8)
      lor (load_byte t (addr + 2) lsl 16)
      lor (load_byte t (addr + 3) lsl 24)

let load t w ~signed addr =
  let v = raw_load t w addr in
  if signed then Semantics.sign_extend w v else v

let load_spec t w ~signed addr =
  let v = load t w ~signed addr in
  t.aliases <- (addr, Isa.width_bytes w) :: t.aliases;
  v

let overlaps a la b lb = a < b + lb && b < a + la

let store t (w : Isa.width) addr v =
  let len = Isa.width_bytes w in
  if List.exists (fun (a, l) -> overlaps a l addr len) t.aliases then
    raise Alias_violation;
  for i = 0 to len - 1 do
    Hashtbl.replace t.sbuf (addr + i) ((v lsr (8 * i)) land 0xFF)
  done

let load_f64 t addr =
  let lo = Int64.of_int (raw_load t W32 addr) in
  let hi = Int64.of_int (raw_load t W32 (addr + 4)) in
  Int64.float_of_bits (Int64.logor (Int64.shift_left hi 32) lo)

let store_f64 t addr x =
  let bits = Int64.bits_of_float x in
  store t W32 addr (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  store t W32 (addr + 4) (Int64.to_int (Int64.shift_right_logical bits 32))

let copy_guest_in t (cpu : Cpu.t) =
  Array.iter (fun gr -> set t (Regs.guest gr) (Cpu.get cpu gr)) Isa.all_regs;
  set t Regs.flags cpu.flags;
  Array.iter (fun gf -> t.f.(Regs.guest_f gf) <- Cpu.getf cpu gf) Isa.all_fregs

let copy_guest_out t (cpu : Cpu.t) =
  Array.iter (fun gr -> Cpu.set cpu gr (get t (Regs.guest gr))) Isa.all_regs;
  cpu.flags <- get t Regs.flags land Flags.mask;
  Array.iter (fun gf -> Cpu.setf cpu gf t.f.(Regs.guest_f gf)) Isa.all_fregs
