(** The [darco top] screen: fetch a serve daemon's live telemetry and
    render it as text.  Split from the CLI so the e2e test can drive the
    exact rendering a user sees. *)

type view = {
  metrics : Darco_obs.Registry.snapshot;
  health : Darco_obs.Jsonx.t;
}

val fetch :
  ?timeout:float -> Darco_dispatch.addr -> (view, string) result
(** One METR + one HLTH round trip (needs a v5 server), parsed. *)

val render : view -> string
(** Header (version/uptime), per-campaign progress table (with planner
    CI state), per-worker health table and the library hit-rate line. *)
