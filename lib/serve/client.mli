(** Client side of the campaign service: what [darco submit], [darco
    status] and [darco fetch] run.

    Every call opens one connection, handshakes at protocol version 4
    (failing cleanly against an older server), performs its conversation
    and closes.  Errors — connection refused, version mismatch, server
    [Fail] frames, timeouts — come back as [Error text], never as an
    exception. *)

type stats = { done_ : int; total : int; hits : int; dispatched : int }
(** The counters of a [Status] frame: [done_] of [total] windows
    settled, [hits] served without dispatching, [dispatched] put on the
    worker fleet. *)

type info = { uptime_s : int; version : string }
(** The v5 tail of a [Status] reply: how long the daemon has been up and
    which build it is.  Both stay default ([0], [""]) against a pre-v5
    server — a stale daemon is diagnosable by exactly that. *)

val submit :
  ?timeout:float ->
  ?on_status:(stats -> unit) ->
  ?on_artifact:(key:string -> json:string -> unit) ->
  Darco_dispatch.addr ->
  Campaign.t ->
  (stats * string, string) result
(** Submit the campaign and block until it finishes, returning the final
    counters and the sweep's JSON document text — byte-identical to what
    [darco sample --json] writes for the same parameters.  [on_status]
    sees every progress frame, [on_artifact] every finished window
    ([json = ""] marks a failed one).  [timeout] (default 3600s) bounds
    the whole conversation. *)

val status :
  ?timeout:float ->
  Darco_dispatch.addr ->
  (string * stats * info, string) result
(** Service-wide counters: the server's state string, as {!stats} the
    completed/total submissions and cumulative hit/dispatch counts, and
    the daemon's {!info}. *)

val scrape : ?timeout:float -> Darco_dispatch.addr -> (string, string) result
(** One METR round trip (needs a v5 server): the daemon's live registry
    snapshot as JSON text ({!Darco_obs.Registry.of_json} parses it;
    {!Darco_obs.Registry.exposition} renders it byte-identically to the
    server's [--metrics-file] dump). *)

val health : ?timeout:float -> Darco_dispatch.addr -> (string, string) result
(** One HLTH round trip (needs a v5 server): the liveness/readiness
    document — uptime, version, per-worker keepalive state, queue
    depths, per-campaign progress with planner CI state, library
    hit-rate — as JSON text. *)

val fetch :
  ?timeout:float ->
  Darco_dispatch.addr ->
  Campaign.t ->
  offset:int ->
  (string option, string) result
(** Look one window of the campaign up in the server's artifact library
    without submitting anything: [Ok (Some json)] on a hit, [Ok None]
    when the library has no such window (or no checkpoint set for the
    campaign). *)
