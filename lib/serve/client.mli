(** Client side of the campaign service: what [darco submit], [darco
    status] and [darco fetch] run.

    Every call opens one connection, handshakes at protocol version 4
    (failing cleanly against an older server), performs its conversation
    and closes.  Errors — connection refused, version mismatch, server
    [Fail] frames, timeouts — come back as [Error text], never as an
    exception. *)

type stats = { done_ : int; total : int; hits : int; dispatched : int }
(** The counters of a [Status] frame: [done_] of [total] windows
    settled, [hits] served without dispatching, [dispatched] put on the
    worker fleet. *)

val submit :
  ?timeout:float ->
  ?on_status:(stats -> unit) ->
  ?on_artifact:(key:string -> json:string -> unit) ->
  Darco_dispatch.addr ->
  Campaign.t ->
  (stats * string, string) result
(** Submit the campaign and block until it finishes, returning the final
    counters and the sweep's JSON document text — byte-identical to what
    [darco sample --json] writes for the same parameters.  [on_status]
    sees every progress frame, [on_artifact] every finished window
    ([json = ""] marks a failed one).  [timeout] (default 3600s) bounds
    the whole conversation. *)

val status :
  ?timeout:float -> Darco_dispatch.addr -> (string * stats, string) result
(** Service-wide counters: the server's state string and, as {!stats},
    completed/total submissions and cumulative hit/dispatch counts. *)

val fetch :
  ?timeout:float ->
  Darco_dispatch.addr ->
  Campaign.t ->
  offset:int ->
  (string option, string) result
(** Look one window of the campaign up in the server's artifact library
    without submitting anything: [Ok (Some json)] on a hit, [Ok None]
    when the library has no such window (or no checkpoint set for the
    campaign). *)
