(** The campaign service's crash-safe on-disk artifact library.

    The library persists the two artifact kinds a sweep produces, both
    content-addressed so sharing across campaigns and across server
    restarts is a lookup, never a guess:

    - {b window results}: the JSON text of one finished measurement
      window, keyed by (benchmark, config digest, snapshot digest,
      offset, window, warmup) — see {!key}.  A resubmitted sweep finds
      every window here and dispatches nothing; the stored text is
      returned verbatim, so the reassembled sweep document is
      byte-identical to the first run's.
    - {b checkpoint sets}: the functional snapshots of one fast-forward,
      as an index file mapping instruction counts to digests in the
      embedded checkpoint {!Darco_sampling.Store}.  A new campaign whose
      {!Campaign.ckpt_digest} matches restores these instead of
      re-running the functional fast-forward.

    Files are written whole to a temporary name and renamed into place,
    and carry the DSNP framing discipline (magic, length, CRC-32) plus a
    content digest — so a torn write, bit flip or mismatched key on a
    cold read surfaces as {!Darco_sampling.Buf.Corrupt} (or a clean
    miss), never as a wrong result. *)

type t

(** The identity of one window result.  [snap] is the digest of the
    encoded snapshot the window starts from ({!Darco_sampling.Store.digest}),
    [cfg] is {!Campaign.config_digest} — together with the offset they
    pin the window's bytes completely. *)
type key = {
  bench : string;
  cfg : string;
  snap : string;
  offset : int;
  window : int;
  warmup : int;
}

val render : key -> string
(** Human form used in bus events and client frames:
    ["bench@offset/snap-prefix"]. *)

val key_id : key -> string
(** The key's content address (also the artifact's file name stem);
    what the server's in-flight table is keyed by. *)

val create :
  ?bus:Darco_obs.Bus.t -> ?max_bytes:int -> dir:string -> unit -> t
(** Open (creating if missing) the library rooted at [dir].  Window
    artifacts and checkpoint indexes live directly under [dir]; the
    checkpoint bytes live in an embedded store spilling to [dir/ckpt],
    with [max_bytes] as its LRU byte budget (evictions emit
    [Store_evict] on [bus]).  A checkpoint set whose snapshots were
    evicted is treated as absent — the next campaign fast-forwards and
    re-stores it. *)

val store : t -> Darco_sampling.Store.t
(** The embedded checkpoint store (for backends and pinning). *)

val find_window : t -> key -> string option
(** The stored JSON text for the key, or [None].  Cold reads re-verify
    framing, CRC, the embedded key and the content digest; corruption
    raises {!Darco_sampling.Buf.Corrupt}. *)

val put_window : t -> key -> string -> unit
(** Persist one window's JSON text (write-then-rename; idempotent). *)

val find_checkpoints :
  t -> bench:string -> ckpt:string -> (int * string) list option
(** The checkpoint set stored under {!Campaign.ckpt_digest} [ckpt]:
    [(at, snapshot bytes)] pairs in ascending [at] order, every entry
    re-verified against its digest.  [None] when the index is absent or
    any referenced snapshot has been evicted from the store. *)

val put_checkpoints :
  t -> bench:string -> ckpt:string -> (int * string) list -> unit
(** Persist a checkpoint index of [(at, store digest)] pairs.  The
    snapshot bytes themselves must already be in {!store}. *)
