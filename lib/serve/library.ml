module B = Darco_sampling.Buf
module Store = Darco_sampling.Store

type t = {
  dir : string;
  store : Store.t;
  (* warm cache of window texts already read (or written) this process;
     key id -> JSON text.  Purely an I/O saver: the disk copy is the
     truth and is fully re-verified whenever this table misses. *)
  windows : (string, string) Hashtbl.t;
}

type key = {
  bench : string;
  cfg : string;
  snap : string;
  offset : int;
  window : int;
  warmup : int;
}

let render k =
  let prefix =
    if String.length k.snap >= 8 then String.sub k.snap 0 8 else k.snap
  in
  Printf.sprintf "%s@%d/%s" k.bench k.offset prefix

let key_string k =
  Printf.sprintf "dart1|%s|%s|%s|%d|%d|%d" k.bench k.cfg k.snap k.offset
    k.window k.warmup

let key_id k = Store.digest (key_string k)

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let create ?bus ?max_bytes ~dir () =
  ensure_dir dir;
  let store =
    Store.create ?bus ~dir:(Filename.concat dir "ckpt") ?max_bytes ()
  in
  { dir; store; windows = Hashtbl.create 64 }

let store t = t.store

(* --- framed artifact files --------------------------------------------- *)

(* Same container discipline as DSNP: [tag4 | payload length (i64 LE) |
   CRC-32 (i64 LE) | payload], written whole to a temporary name and
   renamed into place so a crash mid-write leaves either the old file or
   none — never a torn one. *)

let header_bytes = 4 + 8 + 8

let write_framed path tag payload =
  let w = B.writer () in
  B.tag4 w tag;
  B.int w (String.length payload);
  B.int w (B.crc32 payload);
  B.raw w payload;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (B.contents w));
  Sys.rename tmp path

let read_framed path tag =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.length s < header_bytes then
    B.corrupt (Printf.sprintf "%s: truncated artifact" (Filename.basename path));
  let r = B.reader s in
  let t = B.read_tag4 r in
  if t <> tag then
    B.corrupt
      (Printf.sprintf "%s: bad artifact magic %S" (Filename.basename path) t);
  let len = B.read_int r in
  let crc = B.read_int r in
  if len <> String.length s - header_bytes then
    B.corrupt
      (Printf.sprintf "%s: artifact length mismatch" (Filename.basename path));
  let payload = B.read_raw r len in
  if B.crc32 payload <> crc then
    B.corrupt
      (Printf.sprintf "%s: artifact checksum mismatch" (Filename.basename path));
  payload

(* --- window results ---------------------------------------------------- *)

let window_version = 1
let window_path t id = Filename.concat t.dir (id ^ ".dart")

let put_window t k json =
  let id = key_id k in
  let w = B.writer () in
  B.int w window_version;
  B.str w k.bench;
  B.str w k.cfg;
  B.str w k.snap;
  B.int w k.offset;
  B.int w k.window;
  B.int w k.warmup;
  B.str w (Store.digest json);
  B.str w json;
  write_framed (window_path t id) "DART" (B.contents w);
  Hashtbl.replace t.windows id json

let find_window t k =
  let id = key_id k in
  match Hashtbl.find_opt t.windows id with
  | Some json -> Some json
  | None ->
    let path = window_path t id in
    if not (Sys.file_exists path) then None
    else begin
      let r = B.reader (read_framed path "DART") in
      let v = B.read_int r in
      if v <> window_version then
        B.corrupt (Printf.sprintf "%s: unsupported window artifact version %d"
                     (Filename.basename path) v);
      let bench = B.read_str r in
      let cfg = B.read_str r in
      let snap = B.read_str r in
      let offset = B.read_int r in
      let window = B.read_int r in
      let warmup = B.read_int r in
      let json_digest = B.read_str r in
      let json = B.read_str r in
      B.expect_end r;
      (* the file name is a digest of the key; a mismatch means the file
         was renamed or the library tampered with — refuse, don't serve a
         wrong window under a right name *)
      if
        bench <> k.bench || cfg <> k.cfg || snap <> k.snap
        || offset <> k.offset || window <> k.window || warmup <> k.warmup
      then
        B.corrupt
          (Printf.sprintf "%s: window artifact does not match its key"
             (Filename.basename path));
      if Store.digest json <> json_digest then
        B.corrupt
          (Printf.sprintf "%s: window artifact content digest mismatch"
             (Filename.basename path));
      Hashtbl.replace t.windows id json;
      Some json
    end

(* --- checkpoint sets --------------------------------------------------- *)

let ckpt_version = 1

let ckpt_path t ~bench ~ckpt =
  ignore bench;
  Filename.concat t.dir ("ckpts_" ^ ckpt ^ ".dcki")

let put_checkpoints t ~bench ~ckpt entries =
  let w = B.writer () in
  B.int w ckpt_version;
  B.str w bench;
  B.str w ckpt;
  B.list w
    (fun w (at, digest) ->
      B.int w at;
      B.str w digest)
    entries;
  write_framed (ckpt_path t ~bench ~ckpt) "DCKI" (B.contents w)

let find_checkpoints t ~bench ~ckpt =
  let path = ckpt_path t ~bench ~ckpt in
  if not (Sys.file_exists path) then None
  else begin
    let r = B.reader (read_framed path "DCKI") in
    let v = B.read_int r in
    if v <> ckpt_version then
      B.corrupt (Printf.sprintf "%s: unsupported checkpoint index version %d"
                   (Filename.basename path) v);
    let f_bench = B.read_str r in
    let f_ckpt = B.read_str r in
    let entries =
      B.read_list r (fun r ->
          let at = B.read_int r in
          let digest = B.read_str r in
          (at, digest))
    in
    B.expect_end r;
    if f_bench <> bench || f_ckpt <> ckpt then
      B.corrupt
        (Printf.sprintf "%s: checkpoint index does not match its key"
           (Filename.basename path));
    (* every snapshot must still resolve: the store may have evicted some
       under its byte budget, and a partial checkpoint set is useless —
       the sweep would silently pick farther-away checkpoints and change
       its warm-up.  Absent any entry, report the whole set missing. *)
    let rec resolve acc = function
      | [] -> Some (List.rev acc)
      | (at, digest) :: tl -> (
        match Store.find t.store digest with
        | Some bytes -> resolve ((at, bytes) :: acc) tl
        | None -> None)
    in
    resolve [] entries
  end
