module B = Darco_sampling.Buf
module Store = Darco_sampling.Store

type t = {
  bench : string;
  scale : int;
  seed : int;
  input : string option;
  interval : int;
  horizon : int;
  offsets : int list;
  window : int;
  warmup : int;
  ci_target : float option;
}

let magic = "DCAM"
let version = 1
let version_plan = 2

(* Mirrors the flag normalization in [darco sample]: offsets sorted and
   deduplicated, horizon stretched so the last window fits under it. *)
let normalize t =
  let offsets = List.sort_uniq compare t.offsets in
  let horizon =
    List.fold_left (fun acc o -> max acc (o + t.window)) t.horizon offsets
  in
  { t with offsets; horizon }

let to_string t =
  let w = B.writer () in
  B.tag4 w magic;
  (* a campaign with no confidence target still encodes as version 1, so
     every pre-planner frame, golden test and on-the-wire digest keeps
     its exact bytes; only a planned campaign pays the version bump *)
  B.int w (match t.ci_target with None -> version | Some _ -> version_plan);
  B.str w t.bench;
  B.int w t.scale;
  B.int w t.seed;
  B.option w B.str t.input;
  B.int w t.interval;
  B.int w t.horizon;
  B.list w B.int t.offsets;
  B.int w t.window;
  B.int w t.warmup;
  (match t.ci_target with None -> () | Some c -> B.f64 w c);
  B.contents w

let of_string s =
  let r = B.reader s in
  let tag = B.read_tag4 r in
  if tag <> magic then B.corrupt (Printf.sprintf "campaign: bad magic %S" tag);
  let v = B.read_int r in
  if v <> version && v <> version_plan then
    B.corrupt (Printf.sprintf "campaign: unsupported version %d" v);
  let bench = B.read_str r in
  let scale = B.read_int r in
  let seed = B.read_int r in
  let input = B.read_option r B.read_str in
  let interval = B.read_int r in
  let horizon = B.read_int r in
  let offsets = B.read_list r B.read_int in
  let window = B.read_int r in
  let warmup = B.read_int r in
  let ci_target = if v >= version_plan then Some (B.read_f64 r) else None in
  B.expect_end r;
  if scale < 1 then B.corrupt "campaign: scale < 1";
  if interval <= 0 then B.corrupt "campaign: interval <= 0";
  if window <= 0 then B.corrupt "campaign: window <= 0";
  if warmup < 0 then B.corrupt "campaign: warmup < 0";
  (match ci_target with
  | Some c when not (c > 0.0) -> B.corrupt "campaign: ci_target <= 0"
  | _ -> ());
  { bench; scale; seed; input; interval; horizon; offsets; window; warmup;
    ci_target }

(* The digest inputs are rendered, not binary-encoded: a one-line canonical
   string is greppable in a trace and trivially stable.  '|' cannot appear
   in the numeric fields and the input is length-prefixed, so the rendering
   is injective. *)
let input_part = function
  | None -> "-"
  | Some s -> Printf.sprintf "%d:%s" (String.length s) s

let config_digest t =
  Store.digest
    (Printf.sprintf "dcfg1|%s|%d|%d|%s|%d|%d" t.bench t.scale t.seed
       (input_part t.input) t.window t.warmup)

let ckpt_digest t =
  Store.digest
    (Printf.sprintf "dckp1|%s|%d|%d|%s|%d|%d" t.bench t.scale t.seed
       (input_part t.input) t.interval t.horizon)

let describe t =
  Printf.sprintf "%s seed %d, %d windows of %d%s" t.bench t.seed
    (List.length t.offsets) t.window
    (match t.ci_target with
    | None -> ""
    | Some c -> Printf.sprintf ", ci target %g" c)
