module Jsonx = Darco_obs.Jsonx
module Reg = Darco_obs.Registry
module Table = Darco_util.Table

type view = { metrics : Reg.snapshot; health : Jsonx.t }

let fetch ?timeout addr =
  match Client.scrape ?timeout addr with
  | Error _ as e -> e
  | Ok mjson -> (
    match Client.health ?timeout addr with
    | Error _ as e -> e
    | Ok hjson -> (
      match (Jsonx.parse mjson, Jsonx.parse hjson) with
      | exception Jsonx.Parse_error msg -> Error ("unparseable telemetry: " ^ msg)
      | mdoc, health -> (
        match Reg.of_json mdoc with
        | Error _ as e -> e
        | Ok metrics -> Ok { metrics; health })))

let geti ?(default = 0) k j =
  Option.value ~default (Option.bind (Jsonx.member k j) Jsonx.to_int)

let gets ?(default = "") k j =
  Option.value ~default (Option.bind (Jsonx.member k j) Jsonx.to_str)

let getf ?(default = 0.0) k j =
  match Jsonx.member k j with
  | Some (Jsonx.Float f) -> f
  | Some (Jsonx.Int i) -> float_of_int i
  | _ -> default

let getl k j = match Jsonx.member k j with Some (Jsonx.List l) -> l | _ -> []

let counter_value snap name =
  Option.value ~default:0 (List.assoc_opt name snap.Reg.counters)

(* One screenful: a header line, the campaign table, the worker table and
   a library line — everything the acceptance criteria ask a mid-campaign
   [darco top --once] to show. *)
let render { metrics; health } =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  let uptime = geti "uptime_s" health in
  add "darco serve %s  protocol v%d  up %dh%02dm%02ds\n"
    (gets ~default:"?" "version" health)
    (geti "protocol" health) (uptime / 3600)
    (uptime mod 3600 / 60) (uptime mod 60);
  add "submissions: %d active, %d completed of %d  clients: %d  pending windows: %d\n"
    (List.length (getl "campaigns" health))
    (geti "completed" health) (geti "submitted" health)
    (geti "clients" health)
    (geti "windows_pending" health);
  let lib = Option.value ~default:Jsonx.Null (Jsonx.member "library" health) in
  add "library: %.0f%% hit-rate (%d hits / %d dispatched), %d checkpoints, %d bytes spilled\n"
    (100.0 *. getf "hit_rate" lib)
    (geti "hits_total" lib) (geti "dispatched_total" lib)
    (geti "checkpoints" lib)
    (geti "spilled_bytes" lib);
  (match getl "campaigns" health with
  | [] -> add "\nno active campaigns\n"
  | cs ->
    let rows =
      List.map
        (fun c ->
          let plan =
            match Jsonx.member "plan" c with
            | Some p ->
              Printf.sprintf "ci %.4f/%.4f r%d" (getf "ci95" p)
                (getf "ci_target" p) (geti "rounds" p)
            | None -> "-"
          in
          [
            string_of_int (geti "seq" c);
            gets "benchmark" c;
            gets "client" c;
            Printf.sprintf "%d/%d" (geti "done" c) (geti "total" c);
            string_of_int (geti "hits" c);
            string_of_int (geti "dispatched" c);
            string_of_int (geti "in_flight" c);
            string_of_int (geti "queued" c);
            plan;
          ])
        cs
    in
    add "\n%s"
      (Table.render
         ~header:
           [
             "sub"; "benchmark"; "client"; "done"; "hits"; "disp"; "infl";
             "queue"; "plan";
           ]
         rows));
  (match getl "workers" health with
  | [] -> add "\nno remote workers (local backend)\n"
  | ws ->
    let rows =
      List.map
        (fun w ->
          [
            gets "addr" w;
            gets "state" w;
            string_of_int (geti "in_flight" w);
            gets "reason" w;
          ])
        ws
    in
    add "\n%s" (Table.render ~header:[ "worker"; "state"; "infl"; "reason" ] rows));
  add "\nevents: %d  straggler: %d%%\n"
    (counter_value metrics "events_total")
    (Option.value ~default:0
       (List.assoc_opt "straggler_ratio_pct" metrics.Reg.gauges));
  Buffer.contents b
