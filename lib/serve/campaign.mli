(** A campaign: one sweep specification, as submitted to [darco serve].

    The record carries everything a sweep needs — which benchmark, the
    deterministic input, the checkpointing parameters and the measurement
    windows — so a server can reproduce the sweep bit-for-bit with no
    other context.  The binary encoding ([DCAM]) rides inside the wire
    protocol's [Submit] frame and is framed with the same discipline as
    every other Darco container: a malformed spec surfaces as
    {!Darco_sampling.Buf.Corrupt}, never as a crash or a silently
    different sweep.  A campaign without a confidence target encodes as
    version 1 — byte-identical to every pre-planner frame — and one with
    [ci_target] as version 2, which appends the target after the
    version-1 fields. *)

type t = {
  bench : string;  (** registry name (resolved via {!Darco_workloads.Registry.find}) *)
  scale : int;  (** hot-phase iteration multiplier *)
  seed : int;  (** deterministic input seed *)
  input : string option;  (** bytes fed to the guest's standard input *)
  interval : int;  (** guest instructions between functional checkpoints *)
  horizon : int;  (** span of guest execution covered by checkpoints *)
  offsets : int list;  (** measurement window start offsets *)
  window : int;  (** detailed window length *)
  warmup : int;  (** detailed warm-up before each window *)
  ci_target : float option;
      (** adaptive early exit: stop admitting rounds once the IPC CI95
          half-width is within this fraction of the mean.  [None] (the
          only spelling version-1 frames can express) sweeps every
          offset.  Must be positive when present. *)
}

val normalize : t -> t
(** Sort and deduplicate [offsets] and stretch [horizon] to cover the
    last window — exactly the normalization [darco sample] applies to
    its flags, so a spec and the equivalent command line describe the
    same sweep.  Digests below are only meaningful on normalized specs;
    the server normalizes every submission on admission. *)

val to_string : t -> string

val of_string : string -> t
(** Raises {!Darco_sampling.Buf.Corrupt} on bad magic, version, framing
    or trailing bytes. *)

val config_digest : t -> string
(** Content address of everything that determines one {e window result}
    besides the starting snapshot and the offset: benchmark, scale, seed,
    input, window, warmup.  Two sweeps agreeing on this digest (and on a
    window's snapshot digest and offset) get byte-identical window JSON —
    whatever their checkpoint interval or horizon — which is what lets
    the artifact library share results across campaigns.  [ci_target] is
    deliberately excluded: an adaptive campaign's windows are a subset of
    the exhaustive campaign's, so both must hit the same library
    entries. *)

val ckpt_digest : t -> string
(** Content address of the checkpoint set the sweep fast-forwards
    through: benchmark, scale, seed, input, interval, horizon.  A
    campaign whose digest matches a library entry restores the stored
    snapshots instead of re-running the functional fast-forward. *)

val describe : t -> string
(** One human line, e.g. ["429.mcf seed 42, 3 windows of 25000"]. *)
