module Bus = Darco_obs.Bus
module Event = Darco_obs.Event
module Clock = Darco_obs.Clock
module Span = Darco_obs.Span
module Jsonx = Darco_obs.Jsonx
module B = Darco_sampling.Buf
module Store = Darco_sampling.Store
module Sweep = Darco_sampling.Sweep
module Work = Darco_sampling.Work
module Driver = Darco_sampling.Driver
module Snapshot = Darco_sampling.Snapshot
module Report = Darco_sampling.Report
module Plan = Darco_sampling.Plan
module Wire = Darco_dispatch.Wire
module Registry = Darco_workloads.Registry
module Reg = Darco_obs.Registry
module Version = Darco_util.Version

let emit bus ev = Option.iter (fun b -> Bus.emit b ~at:(Clock.ticks ()) ev) bus

let span bus sp =
  match bus with Some b when Bus.active b -> Span.emit b sp | _ -> ()

(* Correlation ids for per-submission spans sit above both unit indices
   (sweep "running" spans) and the dispatcher's per-worker range. *)
let span_corr_base = 2_000_000

type client = {
  c_fd : Unix.file_descr;
  c_peer : string;
  c_ver : int;
  mutable c_alive : bool;
}

(* Per-worker liveness for the HLTH document, folded from bus events
   (the dispatcher emits Worker_up/Worker_lost/Dispatch_inflight). *)
type whealth = {
  mutable wh_state : string;
  mutable wh_inflight : int;
  mutable wh_reason : string;
}

type slot =
  | Waiting
  | Settled of Sweep.outcome
  | Skipped  (** adaptive early exit: never measured, excluded from the doc *)

type submission = {
  sb_seq : int;  (** server-side sequence number (events, spans, logs) *)
  sb_id : int;  (** the client's submission handle, echoed in every frame *)
  sb_client : client;
  sb_spec : Campaign.t;  (** normalized, benchmark name resolved *)
  sb_offsets : int array;
  sb_works : Work.t array;
  sb_keys : Library.key array;
  sb_slots : slot array;
  sb_todo : int Queue.t;  (** slot indices awaiting a dispatch round *)
  mutable sb_done : int;
  mutable sb_hits : int;
  mutable sb_dispatched : int;
  mutable sb_plan : Darco_sampling.Plan.t option;
      (** present when the campaign carries a [ci_target]: the planner
          admits windows round by round and stops the sweep early *)
  mutable sb_inflight : int;  (** windows registered on a pend, unsettled *)
  mutable sb_skipped : int;
}

(* One work unit not yet settled, shared by every submission wanting its
   window: the submission that created it dispatches; later arrivals
   attach as waiters and dispatch nothing. *)
type pend = {
  p_key : Library.key;
  p_work : Work.t;
  mutable p_waiters : (submission * int) list;
}

let checkpoint_set_key bench ckd = Printf.sprintf "ckpts:%s/%s" bench ckd

let serve ?bus ?(quiet = false) ?(workers = []) ?(jobs = 4) ?(credit = 4)
    ?(dispatch_timeout = 60.0) ?(dispatch_retries = 2) ?keepalive_idle
    ?keepalive_misses ?max_bytes ?max_submissions ?metrics_file
    ?(metrics_interval = 5.0) ?ready ~library ~host ~port () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let credit = max 1 credit in
  let started = Unix.gettimeofday () in
  let uptime_s () = int_of_float (Unix.gettimeofday () -. started) in
  (* The registry needs an event stream even when the caller brought no
     bus; the daemon's own events are low-rate, so feeding a private bus
     costs nothing measurable and sweep JSON never depends on it. *)
  let ibus = match bus with Some b -> b | None -> Bus.create () in
  let bus = Some ibus in
  let reg = Reg.attach ibus in
  let worker_health : (string, whealth) Hashtbl.t = Hashtbl.create 8 in
  Bus.attach ibus ~name:"serve-health" (fun ~at:_ ev ->
      let wh worker =
        match Hashtbl.find_opt worker_health worker with
        | Some w -> w
        | None ->
          let w = { wh_state = "up"; wh_inflight = 0; wh_reason = "" } in
          Hashtbl.replace worker_health worker w;
          w
      in
      match ev with
      | Event.Worker_up { worker } ->
        let w = wh worker in
        w.wh_state <- "up";
        w.wh_reason <- ""
      | Event.Worker_lost { worker; reason } ->
        let w = wh worker in
        w.wh_state <- "lost";
        w.wh_reason <- reason;
        w.wh_inflight <- 0
      | Event.Dispatch_inflight { worker; in_flight } ->
        (wh worker).wh_inflight <- in_flight
      | _ -> ());
  let log fmt =
    Printf.ksprintf
      (fun s ->
        if not quiet then begin
          print_string s;
          print_newline ();
          flush stdout
        end)
      fmt
  in
  let lib = Library.create ?bus ?max_bytes ~dir:library () in
  let store = Library.store lib in
  let backend =
    match workers with
    | [] -> Sweep.Backend.local ?bus ~store ~jobs ()
    | ws ->
      Darco_dispatch.remote ?bus ~fallback_jobs:jobs ~store ?keepalive_idle
        ?keepalive_misses ~timeout:dispatch_timeout ~retries:dispatch_retries
        ws
  in
  (* --- service state --------------------------------------------------- *)
  let clients = ref [] in
  let subs = ref [] in (* active submissions, oldest first (fair share) *)
  let pending : (string, pend) Hashtbl.t = Hashtbl.create 64 in
  let next_seq = ref 0 in
  let submitted = ref 0 in
  let completed = ref 0 in
  let hits_total = ref 0 in
  let dispatched_total = ref 0 in
  (* Scheduling-state gauges, recomputed at each quiescent instant (a
     scrape, a dump).  These are direct service gauges — unlike the
     event-fed counters they describe queue state that only the
     scheduler knows (DESIGN.md §7). *)
  let g_unsettled = Reg.gauge reg "serve_windows_unsettled"
  and g_active = Reg.gauge reg "serve_campaigns_active"
  and g_queue = Reg.gauge reg "serve_queue_depth"
  and g_pending = Reg.gauge reg "serve_windows_pending"
  and g_clients = Reg.gauge reg "serve_clients_connected"
  and g_uptime = Reg.gauge reg "serve_uptime_seconds" in
  let update_service_gauges () =
    let unsettled =
      List.fold_left
        (fun acc s -> acc + (Array.length s.sb_slots - s.sb_done - s.sb_skipped))
        0 !subs
    and queue =
      List.fold_left (fun acc s -> acc + Queue.length s.sb_todo) 0 !subs
    in
    Reg.set g_unsettled unsettled;
    Reg.set g_active (List.length !subs);
    Reg.set g_queue queue;
    Reg.set g_pending (Hashtbl.length pending);
    Reg.set g_clients (List.length !clients);
    Reg.set g_uptime (uptime_s ())
  in
  let metrics_text () =
    update_service_gauges ();
    Reg.exposition (Reg.snapshot reg)
  in
  (* write-then-rename, the Library.write_framed discipline: a scraper
     never reads a torn exposition *)
  let dump_metrics path =
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (metrics_text ());
    close_out oc;
    Sys.rename tmp path
  in
  let next_dump = ref 0.0 in
  let send_to c msg =
    if c.c_alive then
      try Wire.send ~deadline:(Unix.gettimeofday () +. 30.0) c.c_fd msg
      with Wire.Closed | Wire.Timeout | Unix.Unix_error _ -> c.c_alive <- false
  in
  (* v5 clients learn the daemon's uptime and build from every STAT; to
     older clients the fields stay default so the frame bytes are
     exactly the v4 encoding *)
  let status_extra c =
    if c.c_ver >= 5 then (uptime_s (), Version.string) else (0, "")
  in
  let outcome_of_text text =
    match Jsonx.parse text with
    | json -> Sweep.Ok json
    | exception Jsonx.Parse_error msg ->
      Sweep.Failed ("library artifact unreadable: " ^ msg)
  in
  let ipc_of_outcome = function
    | Sweep.Failed _ -> None
    | Sweep.Ok json -> (
      match Jsonx.member "ipc" json with
      | Some (Jsonx.Float f) -> Some f
      | Some (Jsonx.Int i) -> Some (float_of_int i)
      | _ -> None)
  in
  let finalize sub =
    let spec = sub.sb_spec in
    let rows = ref [] in
    Array.iteri
      (fun i s ->
        let row outcome =
          rows :=
            ( sub.sb_offsets.(i),
              { Sweep.label = sub.sb_works.(i).Work.label; outcome } )
            :: !rows
        in
        match s with
        | Settled o -> row o
        | Skipped -> ()
        | Waiting ->
          (* unreachable for a planned submission (every slot is settled
             or skipped before finalize); for an exhaustive one it keeps
             the historical "not run" rendering *)
          if Option.is_none sub.sb_plan then row (Sweep.Failed "not run"))
      sub.sb_slots;
    let rows = List.rev !rows in
    let plan_summary =
      Option.map
        (fun pl ->
          {
            Report.plan_name = "adaptive";
            windows_used = sub.sb_done;
            ci_target = Option.value ~default:0.0 spec.Campaign.ci_target;
            ci_target_met = Plan.ci_target_met pl;
            rounds = Plan.rounds pl;
          })
        sub.sb_plan
    in
    let rep =
      Report.sweep_json ~benchmark:spec.Campaign.bench
        ~seed:spec.Campaign.seed ~interval:spec.Campaign.interval
        ~window:spec.Campaign.window ~warmup:spec.Campaign.warmup
        ?plan:plan_summary rows
    in
    let uptime_s, version = status_extra sub.sb_client in
    send_to sub.sb_client
      (Wire.Status
         {
           id = sub.sb_id;
           state = "done";
           done_ = sub.sb_done;
           total = Array.length sub.sb_slots;
           hits = sub.sb_hits;
           dispatched = sub.sb_dispatched;
           uptime_s;
           version;
         });
    send_to sub.sb_client
      (Wire.Done { id = sub.sb_id; json = Jsonx.to_string rep.Report.doc });
    span bus
      (Span.end_ ~ok:(not rep.Report.failed) ~span:"submission"
         ~corr:(span_corr_base + sub.sb_seq) ~host:"serve" ());
    incr completed;
    subs := List.filter (fun s -> s != sub) !subs;
    log "submission #%d (%s): %d windows, %d hits, %d dispatched" sub.sb_seq
      (Campaign.describe spec) (Array.length sub.sb_slots) sub.sb_hits
      sub.sb_dispatched
  in
  let maybe_finalize sub =
    if sub.sb_done + sub.sb_skipped = Array.length sub.sb_slots then
      finalize sub
  in
  let settle_slot ?(inflight = false) sub i outcome =
    match sub.sb_slots.(i) with
    | Settled _ | Skipped -> ()
    | Waiting ->
      sub.sb_slots.(i) <- Settled outcome;
      sub.sb_done <- sub.sb_done + 1;
      if inflight then sub.sb_inflight <- sub.sb_inflight - 1;
      (* a planned submission folds every measurement — admission hit or
         dispatched window — into its planner's running CI *)
      Option.iter
        (fun pl ->
          match ipc_of_outcome outcome with
          | Some ipc -> Plan.record pl [ (sub.sb_offsets.(i), ipc) ]
          | None -> ())
        sub.sb_plan;
      maybe_finalize sub
  in
  (* Early exit for a planned submission: every unmeasured window is
     skipped and its pend registrations dropped.  A queued pend that
     other submissions still wait on is re-homed onto one of them (the
     dispatch responsibility travels with the queue entry), so nobody
     waits on a round this submission will never run. *)
  let cancel sub =
    Queue.iter
      (fun i ->
        match Hashtbl.find_opt pending (Library.key_id sub.sb_keys.(i)) with
        | Some p -> (
          match List.filter (fun (s, _) -> s != sub) p.p_waiters with
          | (osub, oi) :: _ -> Queue.push oi osub.sb_todo
          | [] -> ())
        | None -> ())
      sub.sb_todo;
    Queue.clear sub.sb_todo;
    Array.iteri
      (fun i s ->
        match s with
        | Settled _ | Skipped -> ()
        | Waiting ->
          let kid = Library.key_id sub.sb_keys.(i) in
          (match Hashtbl.find_opt pending kid with
          | Some p -> (
            p.p_waiters <- List.filter (fun (s, _) -> s != sub) p.p_waiters;
            match p.p_waiters with
            | [] -> Hashtbl.remove pending kid
            | _ -> ())
          | None -> ());
          sub.sb_slots.(i) <- Skipped;
          sub.sb_skipped <- sub.sb_skipped + 1)
      sub.sb_slots;
    maybe_finalize sub
  in
  (* The sweep's checkpoint set: restored from the library when a prior
     campaign stored it (skipping the functional fast-forward entirely),
     regenerated — and stored for the next campaign — otherwise. *)
  let obtain_checkpoints (spec : Campaign.t) (entry : Registry.entry) ckd =
    let bench = spec.Campaign.bench in
    let fast_forward () =
      let program = entry.Registry.build ~scale:spec.Campaign.scale () in
      let cps =
        Driver.functional_checkpoints ?input:spec.Campaign.input
          ~seed:spec.Campaign.seed ~interval:spec.Campaign.interval
          ~horizon:spec.Campaign.horizon program
      in
      let total = ref 0 in
      let entries =
        List.map
          (fun (c : Driver.checkpoint) ->
            let bytes = Snapshot.to_string c.Driver.snapshot in
            total := !total + String.length bytes;
            (c.Driver.at, Store.add store bytes))
          cps
      in
      Library.put_checkpoints lib ~bench ~ckpt:ckd entries;
      emit bus
        (Event.Artifact_store
           { key = checkpoint_set_key bench ckd; bytes = !total });
      cps
    in
    match Library.find_checkpoints lib ~bench ~ckpt:ckd with
    | Some pairs ->
      emit bus (Event.Artifact_hit { key = checkpoint_set_key bench ckd });
      log "restored %d checkpoints for %s from the library" (List.length pairs)
        bench;
      List.map
        (fun (at, bytes) -> { Driver.at; snapshot = Snapshot.of_string bytes })
        pairs
    | None -> fast_forward ()
    | exception B.Corrupt msg ->
      log "checkpoint index for %s unreadable (%s); regenerating" bench msg;
      fast_forward ()
  in
  let admit c id sweep_str =
    match
      let spec0 = Campaign.of_string sweep_str in
      (spec0, Registry.find spec0.Campaign.bench)
    with
    | exception B.Corrupt msg ->
      send_to c (Wire.Fail { id; reason = "bad campaign: " ^ msg })
    | exception Not_found ->
      send_to c (Wire.Fail { id; reason = "unknown benchmark" })
    | spec0, entry ->
      let spec =
        Campaign.normalize { spec0 with Campaign.bench = entry.Registry.name }
      in
      if spec.Campaign.offsets = [] then
        send_to c (Wire.Fail { id; reason = "campaign has no sample offsets" })
      else begin
        let seq = !next_seq in
        incr next_seq;
        incr submitted;
        let offsets = Array.of_list spec.Campaign.offsets in
        let n = Array.length offsets in
        emit bus
          (Event.Submit
             {
               client = c.c_peer;
               submission = seq;
               benchmark = spec.Campaign.bench;
               units = n;
             });
        span bus
          (Span.begin_ ~detail:(Campaign.describe spec) ~span:"submission"
             ~corr:(span_corr_base + seq) ~host:"serve" ());
        log "submission #%d from %s: %s" seq c.c_peer (Campaign.describe spec);
        let cfg = Campaign.config_digest spec in
        let ckd = Campaign.ckpt_digest spec in
        let checkpoints = obtain_checkpoints spec entry ckd in
        let works =
          Array.map
            (fun off ->
              Work.of_window_stored ~store ~checkpoints
                ~label:(Printf.sprintf "%s@%d" spec.Campaign.bench off)
                ~offset:off ~window:spec.Campaign.window
                ~warmup:spec.Campaign.warmup)
            offsets
        in
        let keys =
          Array.init n (fun i ->
              {
                Library.bench = spec.Campaign.bench;
                cfg;
                snap =
                  (match Work.digest works.(i) with
                  | Some d -> d
                  | None -> assert false (* of_window_stored is always Stored *));
                offset = offsets.(i);
                window = spec.Campaign.window;
                warmup = spec.Campaign.warmup;
              })
        in
        let planned = Option.is_some spec.Campaign.ci_target in
        let sub =
          {
            sb_seq = seq;
            sb_id = id;
            sb_client = c;
            sb_spec = spec;
            sb_offsets = offsets;
            sb_works = works;
            sb_keys = keys;
            sb_slots = Array.make n Waiting;
            sb_todo = Queue.create ();
            sb_done = 0;
            sb_hits = 0;
            sb_dispatched = 0;
            sb_plan = None;
            sb_inflight = 0;
            sb_skipped = 0;
          }
        in
        subs := !subs @ [ sub ];
        (* classify every window first — the admission Status must carry
           the full hit/dispatch split before any settlement can finish
           the submission.  A planned submission leaves its misses as
           [`Cand]idates: the planner — not admission — decides which of
           them to dispatch, round by round. *)
        let actions =
          Array.init n (fun i ->
              let k = keys.(i) in
              match
                try Library.find_window lib k with B.Corrupt _ -> None
              with
              | Some text -> `Hit text
              | None -> (
                let kid = Library.key_id k in
                match Hashtbl.find_opt pending kid with
                | Some p ->
                  p.p_waiters <- (sub, i) :: p.p_waiters;
                  if planned then sub.sb_inflight <- sub.sb_inflight + 1;
                  `Join
                | None ->
                  if planned then `Cand
                  else begin
                    Hashtbl.replace pending kid
                      { p_key = k; p_work = works.(i); p_waiters = [ (sub, i) ] };
                    Queue.push i sub.sb_todo;
                    `New
                  end))
        in
        Array.iter
          (function
            | `Hit _ | `Join ->
              sub.sb_hits <- sub.sb_hits + 1;
              incr hits_total
            | `New ->
              sub.sb_dispatched <- sub.sb_dispatched + 1;
              incr dispatched_total
            | `Cand -> ())
          actions;
        (match spec.Campaign.ci_target with
        | None -> ()
        | Some ci ->
          let candidates = ref [] in
          Array.iteri
            (fun i a -> if a = `Cand then candidates := offsets.(i) :: !candidates)
            actions;
          (* the stratum of a window is the program phase — the guest PC —
             at its nearest checkpoint, exactly the CLI planner's marker *)
          let ix = Driver.index_of checkpoints in
          let phase_of off =
            Snapshot.guest_eip (Driver.nearest_ix ix off).Driver.snapshot
          in
          sub.sb_plan <-
            Some
              (Plan.create ?bus
                 {
                   Plan.default with
                   Plan.kind = Plan.Adaptive;
                   ci_target = ci;
                   round_size = credit;
                 }
                 ~candidates:(List.rev !candidates) ~phase_of));
        let uptime_s, version = status_extra c in
        send_to c
          (Wire.Status
             {
               id;
               state = "running";
               done_ = 0;
               total = n;
               hits = sub.sb_hits;
               dispatched = sub.sb_dispatched;
               uptime_s;
               version;
             });
        Array.iteri
          (fun i action ->
            match action with
            | `Hit text ->
              emit bus (Event.Artifact_hit { key = Library.render keys.(i) });
              send_to c
                (Wire.Artifact
                   { id; key = Library.render keys.(i); json = text });
              settle_slot sub i (outcome_of_text text)
            | `Join | `New | `Cand -> ())
          actions
      end
  in
  let handle_status c id =
    let uptime_s, version = status_extra c in
    if id = -1 then
      send_to c
        (Wire.Status
           {
             id = -1;
             state = "serving";
             done_ = !completed;
             total = !submitted;
             hits = !hits_total;
             dispatched = !dispatched_total;
             uptime_s;
             version;
           })
    else
      match
        List.find_opt (fun s -> s.sb_id = id && s.sb_client == c) !subs
      with
      | Some s ->
        send_to c
          (Wire.Status
             {
               id;
               state = "running";
               done_ = s.sb_done;
               total = Array.length s.sb_slots;
               hits = s.sb_hits;
               dispatched = s.sb_dispatched;
               uptime_s;
               version;
             })
      | None ->
        send_to c
          (Wire.Status
             { id; state = "unknown"; done_ = 0; total = 0; hits = 0;
               dispatched = 0; uptime_s; version })
  in
  (* A fetch resolves one window from the library without submitting: it
     needs the campaign's checkpoint set (to know which snapshot the
     window starts from) but never runs anything. *)
  let handle_fetch c offset spec_str =
    match
      let spec0 = Campaign.of_string spec_str in
      let entry = Registry.find spec0.Campaign.bench in
      Campaign.normalize { spec0 with Campaign.bench = entry.Registry.name }
    with
    | exception B.Corrupt msg ->
      send_to c (Wire.Fail { id = offset; reason = "bad campaign: " ^ msg })
    | exception Not_found ->
      send_to c (Wire.Fail { id = offset; reason = "unknown benchmark" })
    | spec -> (
      let miss key =
        send_to c (Wire.Artifact { id = offset; key; json = "" })
      in
      let ckd = Campaign.ckpt_digest spec in
      match
        try Library.find_checkpoints lib ~bench:spec.Campaign.bench ~ckpt:ckd
        with B.Corrupt _ -> None
      with
      | None -> miss ""
      | Some pairs -> (
        (* latest checkpoint at or before the warm-up start — the same
           choice Work.of_window makes when building the unit *)
        let target = max 0 (offset - spec.Campaign.warmup) in
        match
          List.fold_left
            (fun acc (at, bytes) -> if at <= target then Some bytes else acc)
            None pairs
        with
        | None -> miss ""
        | Some bytes -> (
          let k =
            {
              Library.bench = spec.Campaign.bench;
              cfg = Campaign.config_digest spec;
              snap = Store.digest bytes;
              offset;
              window = spec.Campaign.window;
              warmup = spec.Campaign.warmup;
            }
          in
          match try Library.find_window lib k with B.Corrupt _ -> None with
          | Some text ->
            emit bus (Event.Artifact_hit { key = Library.render k });
            send_to c
              (Wire.Artifact { id = offset; key = Library.render k; json = text })
          | None -> miss (Library.render k))))
  in
  (* The HLTH document: everything `darco top` renders.  Worker rows and
     campaign rows are sorted so the document is a deterministic
     function of service state. *)
  let health_json () =
    let workers_json =
      Hashtbl.fold
        (fun addr wh acc ->
          ( addr,
            Jsonx.Obj
              [
                ("addr", Jsonx.String addr);
                ("state", Jsonx.String wh.wh_state);
                ("in_flight", Jsonx.Int wh.wh_inflight);
                ("reason", Jsonx.String wh.wh_reason);
              ] )
          :: acc)
        worker_health []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map snd
    in
    let campaigns =
      List.map
        (fun sub ->
          Jsonx.Obj
            ([
               ("seq", Jsonx.Int sub.sb_seq);
               ("id", Jsonx.Int sub.sb_id);
               ("client", Jsonx.String sub.sb_client.c_peer);
               ("benchmark", Jsonx.String sub.sb_spec.Campaign.bench);
               ("done", Jsonx.Int sub.sb_done);
               ("total", Jsonx.Int (Array.length sub.sb_slots));
               ("hits", Jsonx.Int sub.sb_hits);
               ("dispatched", Jsonx.Int sub.sb_dispatched);
               ("skipped", Jsonx.Int sub.sb_skipped);
               ("in_flight", Jsonx.Int sub.sb_inflight);
               ("queued", Jsonx.Int (Queue.length sub.sb_todo));
             ]
            @
            match sub.sb_plan with
            | None -> []
            | Some pl ->
              [
                ( "plan",
                  Jsonx.Obj
                    [
                      ("rounds", Jsonx.Int (Plan.rounds pl));
                      ("completed", Jsonx.Int (Plan.completed pl));
                      ("mean", Jsonx.Float (Plan.mean pl));
                      ("ci95", Jsonx.Float (Plan.ci95 pl));
                      ( "ci_target",
                        Jsonx.Float
                          (Option.value ~default:0.0
                             sub.sb_spec.Campaign.ci_target) );
                      ("ci_target_met", Jsonx.Bool (Plan.ci_target_met pl));
                    ] );
              ]))
        !subs
    in
    let hits = !hits_total and disp = !dispatched_total in
    let hit_rate =
      if hits + disp = 0 then 0.0
      else float_of_int hits /. float_of_int (hits + disp)
    in
    Jsonx.Obj
      [
        ("state", Jsonx.String "serving");
        ("version", Jsonx.String Version.string);
        ("protocol", Jsonx.Int Wire.protocol_version);
        ("uptime_s", Jsonx.Int (uptime_s ()));
        ("submitted", Jsonx.Int !submitted);
        ("completed", Jsonx.Int !completed);
        ("clients", Jsonx.Int (List.length !clients));
        ("windows_pending", Jsonx.Int (Hashtbl.length pending));
        ( "library",
          Jsonx.Obj
            [
              ("hits_total", Jsonx.Int hits);
              ("dispatched_total", Jsonx.Int disp);
              ("hit_rate", Jsonx.Float hit_rate);
              ("checkpoints", Jsonx.Int (Store.count store));
              ("spilled_bytes", Jsonx.Int (Store.spilled_bytes store));
            ] );
        ("workers", Jsonx.List workers_json);
        ("campaigns", Jsonx.List campaigns);
      ]
  in
  let needs_v5 c what id =
    send_to c
      (Wire.Fail
         {
           id;
           reason =
             Printf.sprintf "%s needs protocol v5; negotiated v%d" what c.c_ver;
         })
  in
  let handle_client c =
    match Wire.recv ~deadline:(Unix.gettimeofday () +. 10.0) c.c_fd with
    | exception (Wire.Closed | Wire.Timeout) -> c.c_alive <- false
    | exception B.Corrupt _ -> c.c_alive <- false
    | exception Unix.Unix_error _ -> c.c_alive <- false
    | Wire.Submit { id; sweep } ->
      if c.c_ver >= 4 then admit c id sweep
      else
        send_to c
          (Wire.Fail
             {
               id;
               reason =
                 Printf.sprintf "submissions need protocol v4; negotiated v%d"
                   c.c_ver;
             })
    | Wire.Status { id; _ } -> handle_status c id
    | Wire.Artifact { id; key; json = _ } -> handle_fetch c id key
    | Wire.Metrics _ ->
      if c.c_ver >= 5 then
        send_to c
          (Wire.Metrics
             {
               json =
                 (update_service_gauges ();
                  Jsonx.to_string (Reg.to_json (Reg.snapshot reg)));
             })
      else needs_v5 c "METR scrapes" (-1)
    | Wire.Health _ ->
      if c.c_ver >= 5 then
        send_to c (Wire.Health { json = Jsonx.to_string (health_json ()) })
      else needs_v5 c "HLTH probes" (-1)
    | Wire.Ping -> send_to c Wire.Pong
    | Wire.Pong -> ()
    | Wire.Hello _ | Wire.Work _ | Wire.Result _ | Wire.Fail _ | Wire.Need _
    | Wire.Ckpt _ | Wire.Done _ ->
      send_to c (Wire.Fail { id = -1; reason = "protocol violation" });
      c.c_alive <- false
  in
  (* --- fair-share scheduling ------------------------------------------- *)
  (* One round: up to [credit] units from every active submission, oldest
     first, run through the backend as a single sweep.  Work lands in the
     library before waiters are notified, so a crash between the two
     loses nothing a resubmission could not recover. *)
  let gather () =
    let batch = ref [] in
    List.iter
      (fun sub ->
        let took = ref 0 in
        while !took < credit && not (Queue.is_empty sub.sb_todo) do
          let i = Queue.pop sub.sb_todo in
          match Hashtbl.find_opt pending (Library.key_id sub.sb_keys.(i)) with
          | Some p ->
            batch := (Library.key_id sub.sb_keys.(i), p) :: !batch;
            incr took
          | None -> ()
        done;
        if !took > 0 then
          emit bus (Event.Admit { submission = sub.sb_seq; units = !took; credit }))
      !subs;
    List.rev !batch
  in
  let round () =
    match gather () with
    | [] -> ()
    | batch ->
      (* the round's checkpoints may not be evicted while units referencing
         them are in flight *)
      let digests =
        List.sort_uniq compare
          (List.filter_map (fun (_, p) -> Work.digest p.p_work) batch)
      in
      List.iter (Store.pin store) digests;
      let results =
        Fun.protect
          ~finally:(fun () -> List.iter (Store.unpin store) digests)
          (fun () -> Sweep.run backend (List.map (fun (_, p) -> p.p_work) batch))
      in
      List.iter2
        (fun (kid, p) (r : Sweep.result) ->
          Hashtbl.remove pending kid;
          let text =
            match r.Sweep.outcome with
            | Sweep.Ok json ->
              let s = Jsonx.to_string json in
              Library.put_window lib p.p_key s;
              emit bus
                (Event.Artifact_store
                   { key = Library.render p.p_key; bytes = String.length s });
              s
            | Sweep.Failed _ -> ""
          in
          List.iter
            (fun (sub, i) ->
              send_to sub.sb_client
                (Wire.Artifact
                   { id = sub.sb_id; key = Library.render p.p_key; json = text });
              settle_slot ~inflight:true sub i r.Sweep.outcome)
            (List.rev p.p_waiters))
        batch results
  in
  (* Planned submissions advance between dispatch rounds: once a
     submission has nothing in flight, its planner either picks the next
     round's windows (queuing the ones nobody else is already running)
     or stops, skipping everything unmeasured. *)
  let plan_step () =
    List.iter
      (fun sub ->
        match sub.sb_plan with
        | None -> ()
        | Some pl ->
          if sub.sb_inflight = 0 && Queue.is_empty sub.sb_todo then begin
            match Plan.next pl with
            | [] -> cancel sub
            | chosen ->
              List.iter
                (fun off ->
                  let slot = ref (-1) in
                  Array.iteri
                    (fun i o -> if o = off then slot := i)
                    sub.sb_offsets;
                  let i = !slot in
                  match sub.sb_slots.(i) with
                  | Settled _ | Skipped -> ()
                  | Waiting ->
                    let k = sub.sb_keys.(i) in
                    let kid = Library.key_id k in
                    (match Hashtbl.find_opt pending kid with
                    | Some p -> p.p_waiters <- (sub, i) :: p.p_waiters
                    | None ->
                      Hashtbl.replace pending kid
                        {
                          p_key = k;
                          p_work = sub.sb_works.(i);
                          p_waiters = [ (sub, i) ];
                        };
                      Queue.push i sub.sb_todo;
                      sub.sb_dispatched <- sub.sb_dispatched + 1;
                      incr dispatched_total);
                    sub.sb_inflight <- sub.sb_inflight + 1)
                chosen
          end)
      !subs
  in
  (* --- accept loop ----------------------------------------------------- *)
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock
    (Unix.ADDR_INET (Darco_dispatch.Worker.resolve host, port));
  Unix.listen lsock 16;
  Option.iter (fun f -> f (Unix.getsockname lsock)) ready;
  log "serving on %s:%d (library %s, backend %s)" host port library
    backend.Sweep.Backend.name;
  let accept_client () =
    match Unix.accept lsock with
    | exception Unix.Unix_error _ -> ()
    | fd, peer_addr -> (
      let peer =
        match peer_addr with
        | Unix.ADDR_INET (a, p) ->
          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX p -> p
      in
      match
        Unix.set_nonblock fd;
        let deadline = Unix.gettimeofday () +. 10.0 in
        match Wire.recv ~deadline fd with
        | Wire.Hello { version; slots = _ } when version >= Wire.min_version
          ->
          let v = min version Wire.protocol_version in
          Wire.send ~deadline fd (Wire.Hello { version = v; slots = 0 });
          v
        | Wire.Hello { version; _ } ->
          Wire.send ~deadline fd
            (Wire.Fail
               {
                 id = -1;
                 reason =
                   Printf.sprintf "protocol version %d too old (need >= %d)"
                     version Wire.min_version;
               });
          raise Exit
        | _ -> raise Exit
      with
      | exception _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | v ->
        clients := { c_fd = fd; c_peer = peer; c_ver = v; c_alive = true }
                   :: !clients;
        log "client %s connected (protocol v%d)" peer v)
  in
  let continue () =
    match max_submissions with Some m -> !completed < m | None -> true
  in
  let have_work () =
    List.exists (fun s -> not (Queue.is_empty s.sb_todo)) !subs
  in
  Fun.protect
    ~finally:(fun () ->
      (* a final dump so short-lived (--max-submissions) daemons leave a
         complete document behind *)
      (match metrics_file with
      | Some path -> ( try dump_metrics path with Sys_error _ -> ())
      | None -> ());
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      List.iter
        (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
        !clients)
  @@ fun () ->
  while continue () do
    let cfds =
      List.filter_map (fun c -> if c.c_alive then Some c.c_fd else None)
        !clients
    in
    let rd, _, _ =
      try Unix.select (lsock :: cfds) [] [] 0.25
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem lsock rd then accept_client ();
    List.iter
      (fun c -> if c.c_alive && List.mem c.c_fd rd then handle_client c)
      !clients;
    clients :=
      List.filter
        (fun c ->
          if not c.c_alive then
            (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
          c.c_alive)
        !clients;
    (match metrics_file with
    | Some path when Unix.gettimeofday () >= !next_dump ->
      (* the select tick paces this; write-then-rename keeps it atomic *)
      next_dump := Unix.gettimeofday () +. metrics_interval;
      (try dump_metrics path with Sys_error _ -> ())
    | _ -> ());
    plan_step ();
    if have_work () then round ()
  done
