(** The [darco serve] daemon: a persistent, multi-tenant campaign service.

    One server accepts concurrent sweep submissions from many clients
    over the CRC-framed wire protocol (version 5), schedules their work
    onto the worker fleet through the ordinary dispatcher core — with
    deadlines, retries and stealing intact — and persists every result
    in a crash-safe artifact {!Library} keyed by content, so the service
    gets faster the longer it runs:

    - a {b resubmitted sweep} finds all of its windows in the library,
      dispatches zero units and returns the byte-identical JSON document;
    - a {b new sweep over a seen configuration} restores the library's
      checkpoint set instead of re-running the functional fast-forward;
    - {b concurrent submissions of overlapping work} share in-flight
      units: the second submitter attaches as a waiter and dispatches
      nothing.

    Admission is {b fair-share}: each scheduling round takes up to
    [credit] units from every active submission in round-robin order, so
    a ten-thousand-window campaign cannot starve a three-window one.
    Every decision is observable — [Submit], [Admit], [Artifact_hit] and
    [Artifact_store] events on [bus], plus a ["submission"] span per
    campaign on host ["serve"] — through the ordinary trace machinery.

    A client that disconnects mid-sweep does not cancel its submission:
    the work completes and lands in the library, where the resubmission
    will find it.

    The daemon is live-inspectable (wire v5): a
    {!Darco_obs.Registry} attached to the bus folds every event into
    named counters/gauges/histograms, scraped with [METR] (snapshot
    JSON) and summarized by [HLTH] (uptime, build version, per-worker
    keepalive state, queue depths, per-campaign progress with planner CI
    state, library hit-rate).  [metrics_file] additionally dumps the
    Prometheus-style exposition text every [metrics_interval] seconds
    (default 5) with an atomic write-then-rename.  Telemetry is a
    separate document: sweep/sample JSON stays byte-identical whether or
    not any of it is enabled. *)

val serve :
  ?bus:Darco_obs.Bus.t ->
  ?quiet:bool ->
  ?workers:Darco_dispatch.addr list ->
  ?jobs:int ->
  ?credit:int ->
  ?dispatch_timeout:float ->
  ?dispatch_retries:int ->
  ?keepalive_idle:float ->
  ?keepalive_misses:int ->
  ?max_bytes:int ->
  ?max_submissions:int ->
  ?metrics_file:string ->
  ?metrics_interval:float ->
  ?ready:(Unix.sockaddr -> unit) ->
  library:string ->
  host:string ->
  port:int ->
  unit ->
  unit
(** Run the service on [host:port] with its artifact library rooted at
    [library].  With [workers] the sweep backend is the distributed
    dispatcher (timeout/retries/keepalive as in {!Darco_dispatch.remote});
    without, units fork locally with [jobs] (default 4) concurrent
    children.  [credit] (default 4) is the per-submission units-per-round
    fair-share allowance; [max_bytes] bounds the library's checkpoint
    store (LRU eviction).  [ready] is called with the bound address once
    the listener is up.  With [max_submissions] the server returns
    normally after completing that many submissions — the clean-shutdown
    path used by tests and CI; otherwise it serves forever. *)
