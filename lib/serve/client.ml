module B = Darco_sampling.Buf
module Wire = Darco_dispatch.Wire

type stats = { done_ : int; total : int; hits : int; dispatched : int }
type info = { uptime_s : int; version : string }

let zero_stats = { done_ = 0; total = 0; hits = 0; dispatched = 0 }

(* Open, handshake (the server must speak at least [need], default v4),
   run [f], close.  Every failure mode becomes an [Error text]. *)
let with_server ?(need = 4) ~deadline (addr : Darco_dispatch.addr) f =
  match Darco_dispatch.Worker.resolve addr.host with
  | exception Invalid_argument msg -> Error msg
  | inet -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    match
      Unix.connect fd (Unix.ADDR_INET (inet, addr.port));
      Unix.set_nonblock fd;
      Wire.send ~deadline fd
        (Wire.Hello { version = Wire.protocol_version; slots = 0 });
      Wire.recv ~deadline fd
    with
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "%s:%d: %s" addr.host addr.port (Unix.error_message e))
    | exception Wire.Closed -> Error "server closed the connection"
    | exception Wire.Timeout -> Error "timed out talking to the server"
    | exception B.Corrupt msg -> Error ("corrupt frame: " ^ msg)
    | Wire.Hello { version; _ } when version >= need -> (
      match f fd with
      | r -> r
      | exception Wire.Closed -> Error "server closed the connection"
      | exception Wire.Timeout -> Error "timed out talking to the server"
      | exception B.Corrupt msg -> Error ("corrupt frame: " ^ msg)
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
    | Wire.Hello { version; _ } ->
      Error
        (Printf.sprintf
           "server speaks protocol v%d; this conversation needs v%d" version
           need)
    | Wire.Fail { reason; _ } -> Error reason
    | _ -> Error "unexpected handshake reply")

let submit ?(timeout = 3600.0) ?on_status ?on_artifact addr spec =
  let deadline = Unix.gettimeofday () +. timeout in
  with_server ~deadline addr @@ fun fd ->
  Wire.send ~deadline fd
    (Wire.Submit { id = 1; sweep = Campaign.to_string spec });
  let stats = ref zero_stats in
  let rec loop () =
    match Wire.recv ~deadline fd with
    | Wire.Status { id = 1; state = _; done_; total; hits; dispatched; _ } ->
      stats := { done_; total; hits; dispatched };
      Option.iter (fun f -> f !stats) on_status;
      loop ()
    | Wire.Artifact { id = 1; key; json } ->
      Option.iter (fun f -> f ~key ~json) on_artifact;
      loop ()
    | Wire.Done { id = 1; json } -> Ok (!stats, json)
    | Wire.Fail { reason; _ } -> Error reason
    | Wire.Ping ->
      Wire.send ~deadline fd Wire.Pong;
      loop ()
    | _ -> Error "unexpected frame from server"
  in
  loop ()

let status ?(timeout = 30.0) addr =
  let deadline = Unix.gettimeofday () +. timeout in
  with_server ~deadline addr @@ fun fd ->
  Wire.send ~deadline fd
    (Wire.Status
       {
         id = -1;
         state = "";
         done_ = 0;
         total = 0;
         hits = 0;
         dispatched = 0;
         uptime_s = 0;
         version = "";
       });
  match Wire.recv ~deadline fd with
  | Wire.Status { id = -1; state; done_; total; hits; dispatched; uptime_s;
                  version } ->
    Ok (state, { done_; total; hits; dispatched }, { uptime_s; version })
  | Wire.Fail { reason; _ } -> Error reason
  | _ -> Error "unexpected frame from server"

(* v5 telemetry: one round trip each; the reply carries one JSON string. *)
let scrape ?(timeout = 30.0) addr =
  let deadline = Unix.gettimeofday () +. timeout in
  with_server ~need:5 ~deadline addr @@ fun fd ->
  Wire.send ~deadline fd (Wire.Metrics { json = "" });
  match Wire.recv ~deadline fd with
  | Wire.Metrics { json } -> Ok json
  | Wire.Fail { reason; _ } -> Error reason
  | _ -> Error "unexpected frame from server"

let health ?(timeout = 30.0) addr =
  let deadline = Unix.gettimeofday () +. timeout in
  with_server ~need:5 ~deadline addr @@ fun fd ->
  Wire.send ~deadline fd (Wire.Health { json = "" });
  match Wire.recv ~deadline fd with
  | Wire.Health { json } -> Ok json
  | Wire.Fail { reason; _ } -> Error reason
  | _ -> Error "unexpected frame from server"

let fetch ?(timeout = 60.0) addr spec ~offset =
  let deadline = Unix.gettimeofday () +. timeout in
  with_server ~deadline addr @@ fun fd ->
  Wire.send ~deadline fd
    (Wire.Artifact { id = offset; key = Campaign.to_string spec; json = "" });
  match Wire.recv ~deadline fd with
  | Wire.Artifact { id; json; _ } when id = offset ->
    Ok (if json = "" then None else Some json)
  | Wire.Fail { reason; _ } -> Error reason
  | _ -> Error "unexpected frame from server"
