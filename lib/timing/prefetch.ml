type stats = { mutable issued : int; mutable triggered : int }

type entry = {
  mutable tag : int;
  mutable last_addr : int;
  mutable stride : int;
  mutable confidence : int;
}

type t = {
  table : entry array;
  mask : int;
  into : Cache.t;
  degree : int;
  enabled : bool;
  stats : stats;
}

let create (cfg : Tconfig.t) ~into =
  {
    table =
      Array.init cfg.prefetch_table (fun _ ->
          { tag = -1; last_addr = 0; stride = 0; confidence = 0 });
    mask = cfg.prefetch_table - 1;
    into;
    degree = cfg.prefetch_degree;
    enabled = cfg.prefetch;
    stats = { issued = 0; triggered = 0 };
  }

let observe t ~pc ~addr =
  if t.enabled then begin
    let e = t.table.((pc lsr 2) land t.mask) in
    if e.tag <> pc then begin
      e.tag <- pc;
      e.last_addr <- addr;
      e.stride <- 0;
      e.confidence <- 0
    end
    else begin
      let stride = addr - e.last_addr in
      if stride <> 0 && stride = e.stride then e.confidence <- min 4 (e.confidence + 1)
      else e.confidence <- 0;
      e.stride <- stride;
      e.last_addr <- addr;
      if e.confidence >= 2 then begin
        t.stats.triggered <- t.stats.triggered + 1;
        for k = 1 to t.degree do
          let target = addr + (k * stride) in
          if target >= 0 then begin
            t.stats.issued <- t.stats.issued + 1;
            Cache.prefetch t.into target
          end
        done
      end
    end
  end

let stats t = t.stats

type persisted = {
  p_table : (int * int * int * int) array;  (* (tag, last_addr, stride, confidence) *)
  p_issued : int;
  p_triggered : int;
}

let persist t =
  {
    p_table =
      Array.map (fun e -> (e.tag, e.last_addr, e.stride, e.confidence)) t.table;
    p_issued = t.stats.issued;
    p_triggered = t.stats.triggered;
  }

let apply t p =
  if Array.length p.p_table <> Array.length t.table then
    invalid_arg "Prefetch.apply: persisted table size mismatch";
  Array.iteri
    (fun i (tag, last_addr, stride, confidence) ->
      let e = t.table.(i) in
      e.tag <- tag;
      e.last_addr <- last_addr;
      e.stride <- stride;
      e.confidence <- confidence)
    p.p_table;
  t.stats.issued <- p.p_issued;
  t.stats.triggered <- p.p_triggered
