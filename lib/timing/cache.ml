type stats = {
  mutable accesses : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable prefetch_fills : int;
}

type line = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable lru : int }

type t = {
  name : string;
  geom : Tconfig.cache_geom;
  sets : line array array;
  parent : int -> is_write:bool -> int;
  stats : stats;
  mutable tick : int;
  line_bits : int;
  set_bits : int;
  set_mask : int;
}

let log2 n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create ~name (geom : Tconfig.cache_geom) ~parent =
  {
    name;
    geom;
    sets =
      Array.init geom.sets (fun _ ->
          Array.init geom.ways (fun _ -> { tag = 0; valid = false; dirty = false; lru = 0 }));
    parent;
    stats = { accesses = 0; misses = 0; writebacks = 0; prefetch_fills = 0 };
    tick = 0;
    line_bits = log2 geom.line;
    set_bits = log2 geom.sets;
    set_mask = geom.sets - 1;
  }

let locate t addr =
  let block = addr lsr t.line_bits in
  let set = t.sets.(block land t.set_mask) in
  let tag = block lsr t.set_bits in
  (set, tag)

let find_way set tag =
  let n = Array.length set in
  let rec go i = if i >= n then None else if set.(i).valid && set.(i).tag = tag then Some set.(i) else go (i + 1) in
  go 0

let victim set =
  Array.fold_left (fun best l -> if l.lru < best.lru then l else best) set.(0) set

let fill t set tag ~dirty =
  let l = victim set in
  if l.valid && l.dirty then begin
    t.stats.writebacks <- t.stats.writebacks + 1;
    (* Dirty evictions write back to the parent; the latency is off the
       load's critical path and is not charged. *)
    ignore (t.parent 0 ~is_write:true)
  end;
  l.valid <- true;
  l.dirty <- dirty;
  l.tag <- tag;
  t.tick <- t.tick + 1;
  l.lru <- t.tick

let access t addr ~is_write =
  t.stats.accesses <- t.stats.accesses + 1;
  let set, tag = locate t addr in
  match find_way set tag with
  | Some l ->
    t.tick <- t.tick + 1;
    l.lru <- t.tick;
    if is_write then l.dirty <- true;
    t.geom.latency
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    let below = t.parent addr ~is_write:false in
    fill t set tag ~dirty:is_write;
    t.geom.latency + below

let prefetch t addr =
  let set, tag = locate t addr in
  match find_way set tag with
  | Some _ -> ()
  | None ->
    t.stats.prefetch_fills <- t.stats.prefetch_fills + 1;
    ignore (t.parent addr ~is_write:false);
    fill t set tag ~dirty:false

let contains t addr =
  let set, tag = locate t addr in
  find_way set tag <> None

let stats t = t.stats
let name t = t.name

type persisted = {
  p_lines : (int * bool * bool * int) array array;  (* (tag, valid, dirty, lru) *)
  p_tick : int;
  p_accesses : int;
  p_misses : int;
  p_writebacks : int;
  p_prefetch_fills : int;
}

let persist t =
  {
    p_lines =
      Array.map (Array.map (fun l -> (l.tag, l.valid, l.dirty, l.lru))) t.sets;
    p_tick = t.tick;
    p_accesses = t.stats.accesses;
    p_misses = t.stats.misses;
    p_writebacks = t.stats.writebacks;
    p_prefetch_fills = t.stats.prefetch_fills;
  }

let apply t p =
  if
    Array.length p.p_lines <> Array.length t.sets
    || (Array.length t.sets > 0 && Array.length p.p_lines.(0) <> Array.length t.sets.(0))
  then invalid_arg (t.name ^ ": persisted cache geometry mismatch");
  Array.iteri
    (fun si ways ->
      Array.iteri
        (fun wi (tag, valid, dirty, lru) ->
          let l = t.sets.(si).(wi) in
          l.tag <- tag;
          l.valid <- valid;
          l.dirty <- dirty;
          l.lru <- lru)
        ways)
    p.p_lines;
  t.tick <- p.p_tick;
  t.stats.accesses <- p.p_accesses;
  t.stats.misses <- p.p_misses;
  t.stats.writebacks <- p.p_writebacks;
  t.stats.prefetch_fills <- p.p_prefetch_fills

let miss_rate t =
  if t.stats.accesses = 0 then 0.0
  else float_of_int t.stats.misses /. float_of_int t.stats.accesses
