open Darco_host

(** The in-order superscalar timing model: decoupled front-end (I-TLB,
    I-cache, BTB + gshare, decode pipe) and back-end (in-order scoreboarded
    issue, simple/complex/vector units, memory ports, D-TLB + 2-level data
    cache with a stride prefetcher), separated by an instruction queue.

    Trace-driven: feed it the retired host instruction stream via {!step},
    or subscribe it to a run's observability bus with {!attach}. *)

type t

type summary = {
  instructions : int;
  cycles : int;
  ipc : float;
  branch_accuracy : float;
  il1_miss_rate : float;
  dl1_miss_rate : float;
  l2_miss_rate : float;
  itlb_miss_rate : float;
  dtlb_miss_rate : float;
  mispredicts : int;
  prefetches : int;
}

(** Event counts consumed by the power model. *)
type events = {
  e_cycles : int;
  e_insns : int;
  e_int_ops : int;
  e_mul_ops : int;
  e_fp_ops : int;
  e_mem_reads : int;
  e_mem_writes : int;
  e_branches : int;
  e_il1 : Cache.stats;
  e_dl1 : Cache.stats;
  e_l2 : Cache.stats;
  e_btb : int;
  e_regfile_reads : int;
  e_regfile_writes : int;
}

val create : Tconfig.t -> t
val step : t -> Emulator.retire_info -> unit

val attach : t -> Darco_obs.Bus.t -> unit
(** Subscribe {!step} to the bus's retired-instruction stream (attach
    before the run starts). *)

val observe_latencies : t -> Darco_obs.Hist.t
(** Install (or return the already-installed) load-latency histogram: from
    this call on, every load's total memory latency (D-TLB walk plus data
    cache chain, in cycles) is added to the returned histogram.  Off by
    default — the un-observed path costs one pointer test per load.  The
    histogram is not part of {!persisted}; a {!restore}d pipeline starts
    with observation off. *)

val cycles : t -> int
val instructions : t -> int
val summary : t -> summary
val events : t -> events
val pp_summary : Format.formatter -> summary -> unit

val events_copy : events -> events
(** Deep copy (the cache-stats records inside {!events} alias the live,
    mutating counters) — take one before a measurement interval. *)

val events_diff : events -> events -> events
(** [events_diff after before]: the activity of the interval between two
    snapshots, field by field.  Feed the result to the power model to cost
    a measurement window rather than a whole run. *)

(** Complete microarchitectural state of a pipeline, as plain data.  Used by
    the snapshot codec to carry warmed caches, TLBs, predictor and prefetcher
    state across a checkpoint/restore boundary. *)
type persisted = {
  p_cfg : Tconfig.t;
  p_l2 : Cache.persisted;
  p_il1 : Cache.persisted;
  p_dl1 : Cache.persisted;
  p_l2tlb : Tlb.persisted;
  p_itlb : Tlb.persisted;
  p_dtlb : Tlb.persisted;
  p_pf : Prefetch.persisted;
  p_bp : Predictor.persisted;
  p_int_ready : int array;
  p_fp_ready : int array;
  p_simple_free : int array;
  p_complex_free : int array;
  p_vector_free : int array;
  p_rport_free : int array;
  p_wport_free : int array;
  p_iq_ring : int array * int;
  p_inflight_ring : int array * int;
  p_fetch_cycle : int;
  p_fetch_count : int;
  p_last_fetch_line : int;
  p_redirect_at : int;
  p_last_issue : int;
  p_issued_in_cycle : int;
  p_horizon : int;
  p_insns : int;
  p_int_ops : int;
  p_mul_ops : int;
  p_fp_ops : int;
  p_mem_reads : int;
  p_mem_writes : int;
  p_branches : int;
  p_rf_reads : int;
  p_rf_writes : int;
}

val persist : t -> persisted

val restore : persisted -> t
(** Build a pipeline whose observable behaviour continues exactly where
    [persist] left off.  Raises [Invalid_argument] if the persisted arrays
    do not match the geometry implied by [p_cfg]. *)
