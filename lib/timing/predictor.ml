type stats = {
  mutable branches : int;
  mutable mispredicts : int;
  mutable btb_misses : int;
}

type t = {
  pht : int array;         (* 2-bit saturating counters *)
  mutable ghr : int;
  ghr_mask : int;
  btb_tag : int array;
  btb_target : int array;
  btb_mask : int;
  stats : stats;
}

let create (cfg : Tconfig.t) =
  let pht_size = 1 lsl cfg.gshare_bits in
  {
    pht = Array.make pht_size 2 (* weakly taken *);
    ghr = 0;
    ghr_mask = pht_size - 1;
    btb_tag = Array.make cfg.btb_entries (-1);
    btb_target = Array.make cfg.btb_entries 0;
    btb_mask = cfg.btb_entries - 1;
    stats = { branches = 0; mispredicts = 0; btb_misses = 0 };
  }

let pht_index t pc = (pc lsr 2) lxor t.ghr land t.ghr_mask
let btb_index t pc = (pc lsr 2) land t.btb_mask

let predict t ~pc =
  let taken = t.pht.(pht_index t pc) >= 2 in
  let i = btb_index t pc in
  let target = if t.btb_tag.(i) = pc then Some t.btb_target.(i) else None in
  (taken, target)

let update t ~pc ~taken ~target =
  let i = pht_index t pc in
  t.pht.(i) <- (if taken then min 3 (t.pht.(i) + 1) else max 0 (t.pht.(i) - 1));
  t.ghr <- ((t.ghr lsl 1) lor if taken then 1 else 0) land t.ghr_mask;
  if taken then begin
    let bi = btb_index t pc in
    t.btb_tag.(bi) <- pc;
    t.btb_target.(bi) <- target
  end

let observe t ~pc ~taken ~target =
  t.stats.branches <- t.stats.branches + 1;
  let pred_taken, pred_target = predict t ~pc in
  let outcome =
    if pred_taken <> taken then `Mispredict
    else if taken then
      match pred_target with
      | Some tg when tg = target -> `Correct
      | Some _ | None ->
        t.stats.btb_misses <- t.stats.btb_misses + 1;
        `Mispredict
    else `Correct
  in
  if outcome = `Mispredict then t.stats.mispredicts <- t.stats.mispredicts + 1;
  update t ~pc ~taken ~target;
  outcome

let stats t = t.stats

type persisted = {
  p_pht : int array;
  p_ghr : int;
  p_btb_tag : int array;
  p_btb_target : int array;
  p_branches : int;
  p_mispredicts : int;
  p_btb_misses : int;
}

let persist t =
  {
    p_pht = Array.copy t.pht;
    p_ghr = t.ghr;
    p_btb_tag = Array.copy t.btb_tag;
    p_btb_target = Array.copy t.btb_target;
    p_branches = t.stats.branches;
    p_mispredicts = t.stats.mispredicts;
    p_btb_misses = t.stats.btb_misses;
  }

let apply t p =
  if
    Array.length p.p_pht <> Array.length t.pht
    || Array.length p.p_btb_tag <> Array.length t.btb_tag
  then invalid_arg "Predictor.apply: persisted predictor geometry mismatch";
  Array.blit p.p_pht 0 t.pht 0 (Array.length t.pht);
  Array.blit p.p_btb_tag 0 t.btb_tag 0 (Array.length t.btb_tag);
  Array.blit p.p_btb_target 0 t.btb_target 0 (Array.length t.btb_target);
  t.ghr <- p.p_ghr;
  t.stats.branches <- p.p_branches;
  t.stats.mispredicts <- p.p_mispredicts;
  t.stats.btb_misses <- p.p_btb_misses

let accuracy t =
  if t.stats.branches = 0 then 1.0
  else 1.0 -. (float_of_int t.stats.mispredicts /. float_of_int t.stats.branches)
