(** PC-indexed stride data prefetcher.  When a load PC shows a stable
    stride, the next [degree] strided lines are filled into the data
    cache. *)

type t

type stats = { mutable issued : int; mutable triggered : int }

val create : Tconfig.t -> into:Cache.t -> t
val observe : t -> pc:int -> addr:int -> unit
val stats : t -> stats

type persisted = {
  p_table : (int * int * int * int) array;
      (** (tag, last_addr, stride, confidence) per entry *)
  p_issued : int;
  p_triggered : int;
}

val persist : t -> persisted

val apply : t -> persisted -> unit
(** Overwrite a freshly-created prefetcher of the same table size.  Raises
    [Invalid_argument] on a size mismatch. *)
