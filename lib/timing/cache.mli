(** Set-associative write-back, write-allocate cache with LRU replacement.
    Levels are linked by a [parent] access function; the innermost parent is
    main memory (fixed latency). *)

type t

type stats = {
  mutable accesses : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable prefetch_fills : int;
}

val create :
  name:string -> Tconfig.cache_geom -> parent:(int -> is_write:bool -> int) -> t

val access : t -> int -> is_write:bool -> int
(** [access t addr ~is_write] returns the total latency (own + recursive
    miss latency) and updates contents/stats. *)

val prefetch : t -> int -> unit
(** Fill the line without charging latency or demand-access stats (fills go
    through the parent silently). *)

val contains : t -> int -> bool
val stats : t -> stats
val name : t -> string
val miss_rate : t -> float

type persisted = {
  p_lines : (int * bool * bool * int) array array;
      (** per set, per way: (tag, valid, dirty, lru) *)
  p_tick : int;
  p_accesses : int;
  p_misses : int;
  p_writebacks : int;
  p_prefetch_fills : int;
}
(** Cache contents and statistics as plain data (the microarchitectural
    warm state a snapshot may carry). *)

val persist : t -> persisted

val apply : t -> persisted -> unit
(** Overwrite a freshly-created cache of the same geometry with persisted
    contents.  Raises [Invalid_argument] on a geometry mismatch. *)
