open Darco_host

type summary = {
  instructions : int;
  cycles : int;
  ipc : float;
  branch_accuracy : float;
  il1_miss_rate : float;
  dl1_miss_rate : float;
  l2_miss_rate : float;
  itlb_miss_rate : float;
  dtlb_miss_rate : float;
  mispredicts : int;
  prefetches : int;
}

type events = {
  e_cycles : int;
  e_insns : int;
  e_int_ops : int;
  e_mul_ops : int;
  e_fp_ops : int;
  e_mem_reads : int;
  e_mem_writes : int;
  e_branches : int;
  e_il1 : Cache.stats;
  e_dl1 : Cache.stats;
  e_l2 : Cache.stats;
  e_btb : int;
  e_regfile_reads : int;
  e_regfile_writes : int;
}

(* Ring buffer of recent cycles, for the IQ-occupancy and physical-register
   in-flight caps. *)
type ring = { buf : int array; mutable n : int }

let ring_make size = { buf = Array.make (max 1 size) 0; n = 0 }

let ring_push r v =
  r.buf.(r.n mod Array.length r.buf) <- v;
  r.n <- r.n + 1

(* Cycle at which the element [cap] positions back completes (0 when the
   window is not yet full). *)
let ring_cap r =
  if r.n < Array.length r.buf then 0 else r.buf.(r.n mod Array.length r.buf)

type t = {
  cfg : Tconfig.t;
  (* memory hierarchy *)
  l2 : Cache.t;
  il1 : Cache.t;
  dl1 : Cache.t;
  l2tlb : Tlb.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  pf : Prefetch.t;
  bp : Predictor.t;
  (* scoreboard *)
  int_ready : int array;
  fp_ready : int array;
  simple_free : int array;
  complex_free : int array;
  vector_free : int array;
  rport_free : int array;
  wport_free : int array;
  iq_ring : ring;
  inflight_ring : ring;
  (* front-end state *)
  mutable fetch_cycle : int;
  mutable fetch_count : int;
  mutable last_fetch_line : int;
  mutable redirect_at : int;
  (* back-end state *)
  mutable last_issue : int;
  mutable issued_in_cycle : int;
  mutable horizon : int;   (* latest completion cycle *)
  (* counters *)
  mutable insns : int;
  mutable int_ops : int;
  mutable mul_ops : int;
  mutable fp_ops : int;
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable branches : int;
  mutable rf_reads : int;
  mutable rf_writes : int;
  (* optional load-latency distribution (total dTLB + dL1 chain per load);
     [None] costs one pointer test per load and is never persisted — a
     restored pipeline starts with observation off *)
  mutable lat_hist : Darco_obs.Hist.t option;
}

let create (cfg : Tconfig.t) =
  let memory _addr ~is_write:_ = cfg.mem_latency in
  let l2 = Cache.create ~name:"L2" cfg.l2 ~parent:memory in
  let l2_parent addr ~is_write = Cache.access l2 addr ~is_write in
  let il1 = Cache.create ~name:"IL1" cfg.il1 ~parent:l2_parent in
  let dl1 = Cache.create ~name:"DL1" cfg.dl1 ~parent:l2_parent in
  let l2tlb = Tlb.second_level cfg in
  {
    cfg;
    l2;
    il1;
    dl1;
    l2tlb;
    itlb = Tlb.create cfg.itlb ~parent:(fun vpn -> Tlb.access l2tlb (vpn lsl 12));
    dtlb = Tlb.create cfg.dtlb ~parent:(fun vpn -> Tlb.access l2tlb (vpn lsl 12));
    pf = Prefetch.create cfg ~into:dl1;
    bp = Predictor.create cfg;
    int_ready = Array.make 64 0;
    fp_ready = Array.make 32 0;
    simple_free = Array.make (max 1 cfg.n_simple) 0;
    complex_free = Array.make (max 1 cfg.n_complex) 0;
    vector_free = Array.make (max 1 cfg.n_vector) 0;
    rport_free = Array.make (max 1 cfg.mem_read_ports) 0;
    wport_free = Array.make (max 1 cfg.mem_write_ports) 0;
    iq_ring = ring_make cfg.iq_size;
    inflight_ring = ring_make cfg.phys_regs;
    fetch_cycle = 0;
    fetch_count = 0;
    last_fetch_line = -1;
    redirect_at = 0;
    last_issue = 0;
    issued_in_cycle = 0;
    horizon = 0;
    insns = 0;
    int_ops = 0;
    mul_ops = 0;
    fp_ops = 0;
    mem_reads = 0;
    mem_writes = 0;
    branches = 0;
    rf_reads = 0;
    rf_writes = 0;
    lat_hist = None;
  }

(* The vector class exists for the SIMD-extension configuration; the
   current host ISA routes nothing to it. *)
type cls = Simple | Complex | Vector | Mem_read | Mem_write [@@warning "-37"]

(* (unit class, result latency, unit occupancy, stream weight) *)
let classify (cfg : Tconfig.t) (insn : Code.insn) =
  match insn with
  | Code.Bin ((Mul | Mulhu | Mulhs), _, _, _) ->
    (Complex, cfg.complex_mul_latency, 1, 1)
  | Code.Fbin (Fdiv, _, _, _) -> (Complex, cfg.fp_div_latency, cfg.fp_div_latency, 1)
  | Code.Fbin (_, _, _, _) -> (Complex, cfg.fp_latency, 1, 1)
  | Code.Fun (Fsqrt, _, _) -> (Complex, cfg.fp_div_latency + 3, cfg.fp_div_latency, 1)
  | Code.Fun (_, _, _) | Code.Fmov _ | Code.Fli _ -> (Complex, 1, 1, 1)
  | Code.Fcmp _ | Code.Cvtif _ | Code.Cvtfi _ -> (Complex, 2, 1, 1)
  | Code.Callrt_f (fn, _, _) ->
    let c = Code.rt_cost fn in
    (Complex, c, c, c)
  | Code.Callrt_div { signed; _ } ->
    let c = Code.rt_cost (if signed then Rt_divs else Rt_divu) in
    (Complex, c, c, c)
  | Code.Load _ | Code.Sload _ | Code.Fload _ -> (Mem_read, 0, 1, 1)
  | Code.Store _ | Code.Fstore _ -> (Mem_write, 1, 1, 1)
  | Code.Nop | Code.Li _ | Code.Bin _ | Code.Bini _ | Code.Mkfl _ | Code.Isel _
  | Code.B _ | Code.J _ | Code.Jr _ | Code.Assert _ | Code.Chk | Code.Commit _
  | Code.Exit _ ->
    (Simple, 1, 1, 1)

let acquire_unit free_cycles at occupancy =
  let best = ref 0 in
  Array.iteri (fun i c -> if c < free_cycles.(!best) then best := i else ignore c) free_cycles;
  let start = max at free_cycles.(!best) in
  free_cycles.(!best) <- start + occupancy;
  start

let line_of (cfg : Tconfig.t) pc = pc / cfg.il1.line

let step t (ri : Emulator.retire_info) =
  let cfg = t.cfg in
  (* ---- front end ---- *)
  if t.redirect_at > t.fetch_cycle then begin
    t.fetch_cycle <- t.redirect_at;
    t.fetch_count <- 0;
    t.last_fetch_line <- -1
  end;
  if t.fetch_count >= cfg.fetch_width then begin
    t.fetch_cycle <- t.fetch_cycle + 1;
    t.fetch_count <- 0
  end;
  let line = line_of cfg ri.host_pc in
  if line <> t.last_fetch_line then begin
    t.last_fetch_line <- line;
    let tlb_extra = Tlb.access t.itlb ri.host_pc in
    let ic = Cache.access t.il1 ri.host_pc ~is_write:false in
    (* only the portion beyond a first-cycle hit stalls fetch *)
    t.fetch_cycle <- t.fetch_cycle + tlb_extra + (ic - cfg.il1.latency)
  end;
  (* instruction-queue backpressure *)
  t.fetch_cycle <- max t.fetch_cycle (ring_cap t.iq_ring);
  t.fetch_count <- t.fetch_count + 1;
  let at_decode = t.fetch_cycle + cfg.decode_depth in
  (* ---- issue ---- *)
  let cls, latency, occupancy, weight = classify cfg ri.insn in
  let src_ready =
    List.fold_left
      (fun acc r -> max acc t.int_ready.(r))
      0 (Code.uses ri.insn)
  in
  let src_ready =
    List.fold_left (fun acc r -> max acc t.fp_ready.(r)) src_ready (Code.fuses ri.insn)
  in
  let in_order_at =
    if t.issued_in_cycle >= cfg.issue_width then t.last_issue + 1 else t.last_issue
  in
  let earliest =
    max (max at_decode src_ready) (max in_order_at (ring_cap t.inflight_ring))
  in
  let units =
    match cls with
    | Simple -> t.simple_free
    | Complex -> t.complex_free
    | Vector -> t.vector_free
    | Mem_read -> t.rport_free
    | Mem_write -> t.wport_free
  in
  let issue = acquire_unit units earliest occupancy in
  if issue > t.last_issue then begin
    t.last_issue <- issue;
    t.issued_in_cycle <- 1
  end
  else t.issued_in_cycle <- t.issued_in_cycle + 1;
  (* ---- execute ---- *)
  let result_latency =
    match ri.mem_access with
    | Some (addr, `Load) ->
      t.mem_reads <- t.mem_reads + 1;
      let tlb_extra = Tlb.access t.dtlb addr in
      let lat = Cache.access t.dl1 addr ~is_write:false in
      Prefetch.observe t.pf ~pc:ri.host_pc ~addr;
      (match t.lat_hist with
      | None -> ()
      | Some h -> Darco_obs.Hist.add h (tlb_extra + lat));
      tlb_extra + lat
    | Some (addr, `Store) ->
      t.mem_writes <- t.mem_writes + 1;
      let tlb_extra = Tlb.access t.dtlb addr in
      let lat = Cache.access t.dl1 addr ~is_write:true in
      ignore lat;
      tlb_extra + 1
    | None -> latency
  in
  let done_at = issue + max 1 result_latency in
  List.iter (fun r -> t.int_ready.(r) <- done_at) (Code.defs ri.insn);
  List.iter (fun r -> t.fp_ready.(r) <- done_at) (Code.fdefs ri.insn);
  t.rf_reads <- t.rf_reads + List.length (Code.uses ri.insn) + List.length (Code.fuses ri.insn);
  t.rf_writes <- t.rf_writes + List.length (Code.defs ri.insn) + List.length (Code.fdefs ri.insn);
  (* ---- control ---- *)
  (match ri.branch with
  | Some (taken, target) ->
    t.branches <- t.branches + 1;
    let resolve = issue + 1 in
    (match Predictor.observe t.bp ~pc:ri.host_pc ~taken ~target with
    | `Correct -> ()
    | `Mispredict -> t.redirect_at <- max t.redirect_at (resolve + cfg.mispredict_penalty))
  | None -> ());
  (* ---- bookkeeping ---- *)
  ring_push t.iq_ring issue;
  ring_push t.inflight_ring done_at;
  t.horizon <- max t.horizon done_at;
  t.insns <- t.insns + weight;
  (match cls with
  | Simple -> t.int_ops <- t.int_ops + 1
  | Complex -> (
    match ri.insn with
    | Code.Bin _ -> t.mul_ops <- t.mul_ops + 1
    | _ -> t.fp_ops <- t.fp_ops + 1)
  | Vector | Mem_read | Mem_write -> ())

let cycles t = max t.horizon t.last_issue
let instructions t = t.insns

let summary t =
  let c = cycles t in
  {
    instructions = t.insns;
    cycles = c;
    ipc = (if c = 0 then 0.0 else float_of_int t.insns /. float_of_int c);
    branch_accuracy = Predictor.accuracy t.bp;
    il1_miss_rate = Cache.miss_rate t.il1;
    dl1_miss_rate = Cache.miss_rate t.dl1;
    l2_miss_rate = Cache.miss_rate t.l2;
    itlb_miss_rate = Tlb.miss_rate t.itlb;
    dtlb_miss_rate = Tlb.miss_rate t.dtlb;
    mispredicts = (Predictor.stats t.bp).mispredicts;
    prefetches = (Prefetch.stats t.pf).issued;
  }

let events t =
  {
    e_cycles = cycles t;
    e_insns = t.insns;
    e_int_ops = t.int_ops;
    e_mul_ops = t.mul_ops;
    e_fp_ops = t.fp_ops;
    e_mem_reads = t.mem_reads;
    e_mem_writes = t.mem_writes;
    e_branches = t.branches;
    e_il1 = Cache.stats t.il1;
    e_dl1 = Cache.stats t.dl1;
    e_l2 = Cache.stats t.l2;
    e_btb = t.branches;
    e_regfile_reads = t.rf_reads;
    e_regfile_writes = t.rf_writes;
  }

let copy_cache_stats (s : Cache.stats) = { s with Cache.accesses = s.accesses }

let events_copy e =
  {
    e with
    e_il1 = copy_cache_stats e.e_il1;
    e_dl1 = copy_cache_stats e.e_dl1;
    e_l2 = copy_cache_stats e.e_l2;
  }

let diff_cache_stats (a : Cache.stats) (b : Cache.stats) =
  {
    Cache.accesses = a.accesses - b.accesses;
    misses = a.misses - b.misses;
    writebacks = a.writebacks - b.writebacks;
    prefetch_fills = a.prefetch_fills - b.prefetch_fills;
  }

let events_diff after before =
  {
    e_cycles = after.e_cycles - before.e_cycles;
    e_insns = after.e_insns - before.e_insns;
    e_int_ops = after.e_int_ops - before.e_int_ops;
    e_mul_ops = after.e_mul_ops - before.e_mul_ops;
    e_fp_ops = after.e_fp_ops - before.e_fp_ops;
    e_mem_reads = after.e_mem_reads - before.e_mem_reads;
    e_mem_writes = after.e_mem_writes - before.e_mem_writes;
    e_branches = after.e_branches - before.e_branches;
    e_il1 = diff_cache_stats after.e_il1 before.e_il1;
    e_dl1 = diff_cache_stats after.e_dl1 before.e_dl1;
    e_l2 = diff_cache_stats after.e_l2 before.e_l2;
    e_btb = after.e_btb - before.e_btb;
    e_regfile_reads = after.e_regfile_reads - before.e_regfile_reads;
    e_regfile_writes = after.e_regfile_writes - before.e_regfile_writes;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>insns %d, cycles %d, IPC %.3f@ branch accuracy %.2f%% (%d mispredicts)@ \
     IL1 miss %.2f%%, DL1 miss %.2f%%, L2 miss %.2f%%@ \
     ITLB miss %.3f%%, DTLB miss %.3f%%, prefetches %d@]"
    s.instructions s.cycles s.ipc
    (100. *. s.branch_accuracy)
    s.mispredicts (100. *. s.il1_miss_rate) (100. *. s.dl1_miss_rate)
    (100. *. s.l2_miss_rate)
    (100. *. s.itlb_miss_rate)
    (100. *. s.dtlb_miss_rate)
    s.prefetches

let attach t bus = Darco_obs.Bus.on_retire bus (step t)

let observe_latencies t =
  match t.lat_hist with
  | Some h -> h
  | None ->
    let h = Darco_obs.Hist.create () in
    t.lat_hist <- Some h;
    h

(* --- snapshot support ---------------------------------------------------- *)

type persisted = {
  p_cfg : Tconfig.t;
  p_l2 : Cache.persisted;
  p_il1 : Cache.persisted;
  p_dl1 : Cache.persisted;
  p_l2tlb : Tlb.persisted;
  p_itlb : Tlb.persisted;
  p_dtlb : Tlb.persisted;
  p_pf : Prefetch.persisted;
  p_bp : Predictor.persisted;
  p_int_ready : int array;
  p_fp_ready : int array;
  p_simple_free : int array;
  p_complex_free : int array;
  p_vector_free : int array;
  p_rport_free : int array;
  p_wport_free : int array;
  p_iq_ring : int array * int;
  p_inflight_ring : int array * int;
  p_fetch_cycle : int;
  p_fetch_count : int;
  p_last_fetch_line : int;
  p_redirect_at : int;
  p_last_issue : int;
  p_issued_in_cycle : int;
  p_horizon : int;
  p_insns : int;
  p_int_ops : int;
  p_mul_ops : int;
  p_fp_ops : int;
  p_mem_reads : int;
  p_mem_writes : int;
  p_branches : int;
  p_rf_reads : int;
  p_rf_writes : int;
}

let persist t =
  {
    p_cfg = t.cfg;
    p_l2 = Cache.persist t.l2;
    p_il1 = Cache.persist t.il1;
    p_dl1 = Cache.persist t.dl1;
    p_l2tlb = Tlb.persist t.l2tlb;
    p_itlb = Tlb.persist t.itlb;
    p_dtlb = Tlb.persist t.dtlb;
    p_pf = Prefetch.persist t.pf;
    p_bp = Predictor.persist t.bp;
    p_int_ready = Array.copy t.int_ready;
    p_fp_ready = Array.copy t.fp_ready;
    p_simple_free = Array.copy t.simple_free;
    p_complex_free = Array.copy t.complex_free;
    p_vector_free = Array.copy t.vector_free;
    p_rport_free = Array.copy t.rport_free;
    p_wport_free = Array.copy t.wport_free;
    p_iq_ring = (Array.copy t.iq_ring.buf, t.iq_ring.n);
    p_inflight_ring = (Array.copy t.inflight_ring.buf, t.inflight_ring.n);
    p_fetch_cycle = t.fetch_cycle;
    p_fetch_count = t.fetch_count;
    p_last_fetch_line = t.last_fetch_line;
    p_redirect_at = t.redirect_at;
    p_last_issue = t.last_issue;
    p_issued_in_cycle = t.issued_in_cycle;
    p_horizon = t.horizon;
    p_insns = t.insns;
    p_int_ops = t.int_ops;
    p_mul_ops = t.mul_ops;
    p_fp_ops = t.fp_ops;
    p_mem_reads = t.mem_reads;
    p_mem_writes = t.mem_writes;
    p_branches = t.branches;
    p_rf_reads = t.rf_reads;
    p_rf_writes = t.rf_writes;
  }

let blit_same name src dst =
  if Array.length src <> Array.length dst then
    invalid_arg ("Pipeline.restore: " ^ name ^ " size mismatch");
  Array.blit src 0 dst 0 (Array.length dst)

let restore p =
  let t = create p.p_cfg in
  Cache.apply t.l2 p.p_l2;
  Cache.apply t.il1 p.p_il1;
  Cache.apply t.dl1 p.p_dl1;
  Tlb.apply t.l2tlb p.p_l2tlb;
  Tlb.apply t.itlb p.p_itlb;
  Tlb.apply t.dtlb p.p_dtlb;
  Prefetch.apply t.pf p.p_pf;
  Predictor.apply t.bp p.p_bp;
  blit_same "int_ready" p.p_int_ready t.int_ready;
  blit_same "fp_ready" p.p_fp_ready t.fp_ready;
  blit_same "simple_free" p.p_simple_free t.simple_free;
  blit_same "complex_free" p.p_complex_free t.complex_free;
  blit_same "vector_free" p.p_vector_free t.vector_free;
  blit_same "rport_free" p.p_rport_free t.rport_free;
  blit_same "wport_free" p.p_wport_free t.wport_free;
  let ring_apply name r (buf, n) =
    blit_same name buf r.buf;
    r.n <- n
  in
  ring_apply "iq_ring" t.iq_ring p.p_iq_ring;
  ring_apply "inflight_ring" t.inflight_ring p.p_inflight_ring;
  t.fetch_cycle <- p.p_fetch_cycle;
  t.fetch_count <- p.p_fetch_count;
  t.last_fetch_line <- p.p_last_fetch_line;
  t.redirect_at <- p.p_redirect_at;
  t.last_issue <- p.p_last_issue;
  t.issued_in_cycle <- p.p_issued_in_cycle;
  t.horizon <- p.p_horizon;
  t.insns <- p.p_insns;
  t.int_ops <- p.p_int_ops;
  t.mul_ops <- p.p_mul_ops;
  t.fp_ops <- p.p_fp_ops;
  t.mem_reads <- p.p_mem_reads;
  t.mem_writes <- p.p_mem_writes;
  t.branches <- p.p_branches;
  t.rf_reads <- p.p_rf_reads;
  t.rf_writes <- p.p_rf_writes;
  t
