type stats = { mutable accesses : int; mutable misses : int }

type entry = { mutable vpn : int; mutable valid : bool; mutable lru : int }

type t = {
  entries : entry array;
  latency : int;
  parent : int -> int;
  stats : stats;
  mutable tick : int;
}

let page_bits = 12

let create (geom : Tconfig.tlb_geom) ~parent =
  {
    entries = Array.init geom.entries (fun _ -> { vpn = 0; valid = false; lru = 0 });
    latency = geom.latency;
    parent;
    stats = { accesses = 0; misses = 0 };
    tick = 0;
  }

let walker (cfg : Tconfig.t) _vpn = cfg.tlb_walk_latency

let access t addr =
  let vpn = addr lsr page_bits in
  t.stats.accesses <- t.stats.accesses + 1;
  t.tick <- t.tick + 1;
  let hit =
    Array.fold_left
      (fun acc e ->
        if e.valid && e.vpn = vpn then begin
          e.lru <- t.tick;
          true
        end
        else acc)
      false t.entries
  in
  if hit then t.latency
  else begin
    t.stats.misses <- t.stats.misses + 1;
    let below = t.parent vpn in
    let v =
      Array.fold_left (fun best e -> if e.lru < best.lru then e else best) t.entries.(0)
        t.entries
    in
    v.valid <- true;
    v.vpn <- vpn;
    v.lru <- t.tick;
    t.latency + below
  end

let second_level (cfg : Tconfig.t) =
  create cfg.l2tlb ~parent:(fun vpn -> walker cfg vpn)

let stats t = t.stats

type persisted = {
  p_entries : (int * bool * int) array;  (* (vpn, valid, lru) *)
  p_tick : int;
  p_accesses : int;
  p_misses : int;
}

let persist t =
  {
    p_entries = Array.map (fun e -> (e.vpn, e.valid, e.lru)) t.entries;
    p_tick = t.tick;
    p_accesses = t.stats.accesses;
    p_misses = t.stats.misses;
  }

let apply t p =
  if Array.length p.p_entries <> Array.length t.entries then
    invalid_arg "Tlb.apply: persisted TLB geometry mismatch";
  Array.iteri
    (fun i (vpn, valid, lru) ->
      let e = t.entries.(i) in
      e.vpn <- vpn;
      e.valid <- valid;
      e.lru <- lru)
    p.p_entries;
  t.tick <- p.p_tick;
  t.stats.accesses <- p.p_accesses;
  t.stats.misses <- p.p_misses

let miss_rate t =
  if t.stats.accesses = 0 then 0.0
  else float_of_int t.stats.misses /. float_of_int t.stats.accesses
