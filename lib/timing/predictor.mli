(** Branch direction prediction (gshare, 2-bit counters) and a tagged,
    direct-mapped branch target buffer — the paper's stated front-end. *)

type t

type stats = {
  mutable branches : int;
  mutable mispredicts : int;
  mutable btb_misses : int;
}

val create : Tconfig.t -> t

val predict : t -> pc:int -> bool * int option
(** [(predicted taken, BTB target if any)]. *)

val update : t -> pc:int -> taken:bool -> target:int -> unit

val observe : t -> pc:int -> taken:bool -> target:int -> [ `Correct | `Mispredict ]
(** Predict, compare against the actual outcome, update, and record stats.
    A taken branch with a wrong or missing BTB target counts as a
    misprediction (the front-end fetched the wrong path). *)

val stats : t -> stats
val accuracy : t -> float

type persisted = {
  p_pht : int array;
  p_ghr : int;
  p_btb_tag : int array;
  p_btb_target : int array;
  p_branches : int;
  p_mispredicts : int;
  p_btb_misses : int;
}

val persist : t -> persisted

val apply : t -> persisted -> unit
(** Overwrite a freshly-created predictor of the same geometry.  Raises
    [Invalid_argument] on a geometry mismatch. *)
