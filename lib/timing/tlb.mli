(** Fully-associative LRU translation look-aside buffer.  A first-level
    miss probes the shared second-level TLB; a miss there pays the page-walk
    latency. *)

type t

type stats = { mutable accesses : int; mutable misses : int }

val create : Tconfig.tlb_geom -> parent:(int -> int) -> t
(** [parent vpn] returns the extra latency of resolving a miss. *)

val walker : Tconfig.t -> int -> int
(** The terminal page-table walker: constant [tlb_walk_latency]. *)

val access : t -> int -> int
(** [access t addr] returns added translation latency (0 on a hit with zero
    [latency]). *)

val second_level : Tconfig.t -> t
(** Build the shared L2 TLB backed by the page walker. *)

val stats : t -> stats
val miss_rate : t -> float

type persisted = {
  p_entries : (int * bool * int) array;  (** (vpn, valid, lru) per entry *)
  p_tick : int;
  p_accesses : int;
  p_misses : int;
}

val persist : t -> persisted

val apply : t -> persisted -> unit
(** Overwrite a freshly-created TLB of the same size with persisted
    contents.  Raises [Invalid_argument] on a size mismatch. *)
