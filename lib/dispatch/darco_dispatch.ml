(* Library interface: the dispatcher API is the front door; the wire codec
   and the worker daemon are exposed for the CLI and the tests. *)

module Wire = Wire
module Worker = Worker
module Dispatch = Dispatch
include Dispatch
