(** Distributed sample dispatch (the [Remote] sweep backend).

    A dispatcher holds one TCP connection per worker daemon
    ({!Worker.serve}, [darco worker --listen HOST:PORT -j N]) and drives a
    sweep to completion in the presence of cluster reality:

    - each worker advertises its concurrency ([-j], the [slots] field of
      its {!Wire.Hello} reply) and the dispatcher keeps up to that many
      units {b multiplexed} in flight per connection, matching results to
      units by id;
    - version-2 work units carry a checkpoint {b digest}, not the bytes:
      a worker missing one asks once ({!Wire.Need}) and the dispatcher
      serves it from its content-addressed [store] ({!Wire.Ckpt}), so a
      sweep of many windows sharing a checkpoint ships the snapshot to
      each worker at most once.  Outbound frames drain through a
      {b per-worker outbox} of non-blocking writes, so a multi-megabyte
      checkpoint push to one worker {e overlaps} with result handling and
      dispatch to every other worker instead of stalling the loop;
    - every in-flight unit carries an absolute {b deadline} ([timeout]
      seconds from dispatch);
    - a worker whose connection refuses, closes, corrupts a frame or
      blows a deadline is {b lost}: its units are requeued with
      exponential backoff (0.2s doubling) and handed to other live
      workers, up to [retries] re-dispatches before a unit settles as
      [Failed];
    - once the queue is drained, an idle slot {b steals} the oldest
      in-flight unit from another worker (after a quarter of the timeout)
      by speculatively duplicating it; the first result to land settles
      the unit, every other copy is withdrawn, and late duplicates are
      ignored — execution is deterministic, so which copy wins cannot
      change the bytes;
    - a per-unit {!Wire.Fail} over a healthy connection is a
      deterministic failure and is {e not} retried — matching the [Local]
      backend's crash-containment semantics;
    - idle connections are {b probed}: once nothing has arrived from a
      worker for [keepalive_idle] seconds a {!Wire.Ping} goes out (and
      again each interval), and after [keepalive_misses] unanswered
      probes the worker is declared dead and its units reassigned —
      catching a frozen (e.g. SIGSTOPped) or unreachable worker long
      before the per-unit deadline would;
    - when no workers are reachable (at start or mid-run), the remaining
      units {b fall back} to the local fork backend, so a sweep always
      completes;
    - every step emits a typed event ([Worker_up], [Worker_lost],
      [Dispatch_sent], [Dispatch_done], [Dispatch_retry],
      [Dispatch_fallback], [Dispatch_inflight], [Ckpt_push], [Ckpt_hit],
      [Steal]) on [bus], so a cluster run is traceable end to end with
      the ordinary [--trace] machinery.

    Results return in input order and are bit-identical to the [Local]
    backend's: workers execute the same [Work.exec], and the JSON text
    round-trips exactly ([Jsonx] prints floats with [%.17g]). *)

type addr = { host : string; port : int }

val addr_to_string : addr -> string
val addr_of_string : string -> (addr, string) result
(** ["host:port"]; the port must be in [1, 65535]. *)

(** A backend choice as plain data — what the CLI's [--backend] flag
    parses to, resolved to an executable {!Darco_sampling.Sweep.Backend.t}
    by {!backend}. *)
type spec =
  | Serial
      (** in-process sequential execution
          ({!Darco_sampling.Sweep.Backend.serial}) — the determinism
          reference *)
  | Local of { jobs : int }  (** fork-per-unit on this machine *)
  | Domains of { jobs : int }
      (** a shared-memory OCaml domain pool on this machine
          ({!Darco_sampling.Sweep.Backend.domains}) *)
  | Remote of { workers : addr list; timeout : float; retries : int }

val spec_of_string :
  ?jobs:int -> ?timeout:float -> ?retries:int -> string -> (spec, string) result
(** Parse [serial], [local], [local:JOBS], [domains], [domains:JOBS] or
    [remote:HOST:PORT[,HOST:PORT...]].  [jobs] (default 4) fills in
    [local]'s and [domains]'s job count; [timeout] (default 60s) and
    [retries] (default 2) parameterize the remote spec. *)

val backend :
  ?bus:Darco_obs.Bus.t ->
  ?fallback_jobs:int ->
  ?store:Darco_sampling.Store.t ->
  spec ->
  Darco_sampling.Sweep.Backend.t

val remote :
  ?bus:Darco_obs.Bus.t ->
  ?fallback_jobs:int ->
  ?store:Darco_sampling.Store.t ->
  ?keepalive_idle:float ->
  ?keepalive_misses:int ->
  ?timeout:float ->
  ?retries:int ->
  addr list ->
  Darco_sampling.Sweep.Backend.t
(** The distributed backend described above.  [fallback_jobs] (default 4)
    bounds the local fork pool used when no workers are reachable;
    [store] resolves digest-addressed units — both the [Need] requests
    coming back from workers and the local fallback path.
    [keepalive_idle] (default 5s) and [keepalive_misses] (default 3)
    parameterize the idle-connection probing. *)
