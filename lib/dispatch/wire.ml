module B = Darco_sampling.Buf

exception Timeout
exception Closed

let protocol_version = 1

(* A work unit embeds a whole memory image; generous, but bounded so a
   corrupted length field cannot make us allocate the address space. *)
let max_frame = 1 lsl 28

type msg =
  | Hello of int
  | Ping
  | Pong
  | Work of string
  | Result of string
  | Fail of string

let tag_of = function
  | Hello _ -> "HELO"
  | Ping -> "PING"
  | Pong -> "PONG"
  | Work _ -> "WORK"
  | Result _ -> "RSLT"
  | Fail _ -> "FAIL"

let payload_of = function
  | Hello v ->
    let w = B.writer () in
    B.int w v;
    B.contents w
  | Ping | Pong -> ""
  | Work s | Result s | Fail s -> s

let encode msg =
  let payload = payload_of msg in
  let w = B.writer () in
  B.tag4 w (tag_of msg);
  B.int w (String.length payload);
  B.int w (B.crc32 payload);
  B.raw w payload;
  B.contents w

let is_closed_error = function
  | Unix.ECONNRESET | Unix.EPIPE | Unix.ECONNABORTED | Unix.ESHUTDOWN -> true
  | _ -> false

let send fd msg =
  let s = encode msg in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) when is_closed_error e -> raise Closed
  in
  go 0

let read_exact ?deadline fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Bytes.unsafe_to_string buf
    else begin
      (match deadline with
      | None -> ()
      | Some t ->
        let remaining = t -. Unix.gettimeofday () in
        if remaining <= 0.0 then raise Timeout;
        (match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> raise Timeout
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
      match Unix.read fd buf off (n - off) with
      | 0 -> raise Closed
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) when is_closed_error e -> raise Closed
    end
  in
  go 0

let header_bytes = 4 + 8 + 8 (* tag, payload length, payload CRC *)

let recv ?deadline fd =
  let r = B.reader (read_exact ?deadline fd header_bytes) in
  let tag = B.read_tag4 r in
  let len = B.read_int r in
  let crc = B.read_int r in
  if len < 0 || len > max_frame then
    B.corrupt (Printf.sprintf "frame length %d out of bounds" len);
  let payload = read_exact ?deadline fd len in
  if B.crc32 payload <> crc then B.corrupt "frame checksum mismatch";
  match tag with
  | "HELO" ->
    let r = B.reader payload in
    let v = B.read_int r in
    B.expect_end r;
    Hello v
  | "PING" -> if payload = "" then Ping else B.corrupt "PING carries a payload"
  | "PONG" -> if payload = "" then Pong else B.corrupt "PONG carries a payload"
  | "WORK" -> Work payload
  | "RSLT" -> Result payload
  | "FAIL" -> Fail payload
  | other -> B.corrupt (Printf.sprintf "unknown frame tag %S" other)
