module B = Darco_sampling.Buf
module Store = Darco_sampling.Store

exception Timeout
exception Closed

let protocol_version = 5
let min_version = 3

(* A checkpoint push carries a whole memory image; generous, but bounded so
   a corrupted length field cannot make us allocate the address space. *)
let max_frame = 1 lsl 28

type msg =
  | Hello of { version : int; slots : int }
  | Ping
  | Pong
  | Work of { id : int; unit_ : string }
  | Result of { id : int; text : string; spans : string }
  | Fail of { id : int; reason : string }
  | Need of { digest : string }
  | Ckpt of { digest : string; bytes : string }
  | Submit of { id : int; sweep : string }
  | Status of {
      id : int;
      state : string;
      done_ : int;
      total : int;
      hits : int;
      dispatched : int;
      uptime_s : int;
      version : string;
    }
  | Artifact of { id : int; key : string; json : string }
  | Done of { id : int; json : string }
  | Metrics of { json : string }
  | Health of { json : string }

let tag_of = function
  | Hello _ -> "HELO"
  | Ping -> "PING"
  | Pong -> "PONG"
  | Work _ -> "WORK"
  | Result _ -> "RSLT"
  | Fail _ -> "FAIL"
  | Need _ -> "NEED"
  | Ckpt _ -> "CKPT"
  | Submit _ -> "SUBM"
  | Status _ -> "STAT"
  | Artifact _ -> "ARTF"
  | Done _ -> "DONE"
  | Metrics _ -> "METR"
  | Health _ -> "HLTH"

let payload_of = function
  | Hello { version; slots } ->
    let w = B.writer () in
    B.int w version;
    B.int w slots;
    B.contents w
  | Ping | Pong -> ""
  | Work { id; unit_ = s } | Fail { id; reason = s } ->
    let w = B.writer () in
    B.int w id;
    B.str w s;
    B.contents w
  | Result { id; text; spans } ->
    let w = B.writer () in
    B.int w id;
    B.str w text;
    B.str w spans;
    B.contents w
  | Need { digest } ->
    let w = B.writer () in
    B.str w digest;
    B.contents w
  | Ckpt { digest; bytes } ->
    let w = B.writer () in
    B.str w digest;
    B.str w bytes;
    B.contents w
  | Submit { id; sweep = s } | Done { id; json = s } ->
    let w = B.writer () in
    B.int w id;
    B.str w s;
    B.contents w
  | Status { id; state; done_; total; hits; dispatched; uptime_s; version } ->
    let w = B.writer () in
    B.int w id;
    B.str w state;
    B.int w done_;
    B.int w total;
    B.int w hits;
    B.int w dispatched;
    (* v5 uptime/version ride as an optional tail so a default-valued
       Status encodes exactly as it did under v4 (golden fixtures) *)
    if uptime_s <> 0 || version <> "" then begin
      B.int w uptime_s;
      B.str w version
    end;
    B.contents w
  | Artifact { id; key; json } ->
    let w = B.writer () in
    B.int w id;
    B.str w key;
    B.str w json;
    B.contents w
  | Metrics { json } | Health { json } ->
    let w = B.writer () in
    B.str w json;
    B.contents w

let encode msg =
  let payload = payload_of msg in
  let w = B.writer () in
  B.tag4 w (tag_of msg);
  B.int w (String.length payload);
  B.int w (B.crc32 payload);
  B.raw w payload;
  B.contents w

let is_closed_error = function
  | Unix.ECONNRESET | Unix.EPIPE | Unix.ECONNABORTED | Unix.ESHUTDOWN -> true
  | _ -> false

(* Park until [fd] is ready for the wanted direction.  Without a deadline
   this waits indefinitely (EINTR restarts the wait); with one, running out
   of budget raises {!Timeout}. *)
let wait_fd ?deadline ~write fd =
  let rec go () =
    let remaining =
      match deadline with
      | None -> -1.0
      | Some t ->
        let r = t -. Unix.gettimeofday () in
        if r <= 0.0 then raise Timeout;
        r
    in
    let reads = if write then [] else [ fd ] in
    let writes = if write then [ fd ] else [] in
    match Unix.select reads writes [] remaining with
    | [], [], _ -> if deadline = None then go () else raise Timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let send ?deadline fd msg =
  let s = encode msg in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_fd ?deadline ~write:true fd;
        go off
      | exception Unix.Unix_error (e, _, _) when is_closed_error e -> raise Closed
  in
  go 0

let read_exact ?deadline fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Bytes.unsafe_to_string buf
    else begin
      if deadline <> None then wait_fd ?deadline ~write:false fd;
      match Unix.read fd buf off (n - off) with
      | 0 -> raise Closed
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_fd ?deadline ~write:false fd;
        go off
      | exception Unix.Unix_error (e, _, _) when is_closed_error e -> raise Closed
    end
  in
  go 0

let header_bytes = 4 + 8 + 8 (* tag, payload length, payload CRC *)

let recv ?deadline fd =
  let r = B.reader (read_exact ?deadline fd header_bytes) in
  let tag = B.read_tag4 r in
  let len = B.read_int r in
  let crc = B.read_int r in
  if len < 0 || len > max_frame then
    B.corrupt (Printf.sprintf "frame length %d out of bounds" len);
  let payload = read_exact ?deadline fd len in
  if B.crc32 payload <> crc then B.corrupt "frame checksum mismatch";
  match tag with
  | "HELO" ->
    let r = B.reader payload in
    let version = B.read_int r in
    let slots = B.read_int r in
    B.expect_end r;
    Hello { version; slots }
  | "PING" -> if payload = "" then Ping else B.corrupt "PING carries a payload"
  | "PONG" -> if payload = "" then Pong else B.corrupt "PONG carries a payload"
  | "WORK" ->
    let r = B.reader payload in
    let id = B.read_int r in
    let unit_ = B.read_str r in
    B.expect_end r;
    Work { id; unit_ }
  | "RSLT" ->
    let r = B.reader payload in
    let id = B.read_int r in
    let text = B.read_str r in
    let spans = B.read_str r in
    B.expect_end r;
    Result { id; text; spans }
  | "FAIL" ->
    let r = B.reader payload in
    let id = B.read_int r in
    let reason = B.read_str r in
    B.expect_end r;
    Fail { id; reason }
  | "NEED" ->
    let r = B.reader payload in
    let digest = B.read_str r in
    B.expect_end r;
    if not (Store.is_digest digest) then
      B.corrupt (Printf.sprintf "NEED carries malformed digest %S" digest);
    Need { digest }
  | "CKPT" ->
    let r = B.reader payload in
    let digest = B.read_str r in
    let bytes = B.read_str r in
    B.expect_end r;
    if not (Store.is_digest digest) then
      B.corrupt (Printf.sprintf "CKPT carries malformed digest %S" digest);
    if Store.digest bytes <> digest then
      B.corrupt "CKPT bytes do not match their digest";
    Ckpt { digest; bytes }
  | "SUBM" ->
    let r = B.reader payload in
    let id = B.read_int r in
    let sweep = B.read_str r in
    B.expect_end r;
    Submit { id; sweep }
  | "STAT" ->
    let r = B.reader payload in
    let id = B.read_int r in
    let state = B.read_str r in
    let done_ = B.read_int r in
    let total = B.read_int r in
    let hits = B.read_int r in
    let dispatched = B.read_int r in
    let uptime_s, version =
      if B.at_end r then (0, "")
      else
        let u = B.read_int r in
        let v = B.read_str r in
        (u, v)
    in
    B.expect_end r;
    Status { id; state; done_; total; hits; dispatched; uptime_s; version }
  | "ARTF" ->
    let r = B.reader payload in
    let id = B.read_int r in
    let key = B.read_str r in
    let json = B.read_str r in
    B.expect_end r;
    Artifact { id; key; json }
  | "DONE" ->
    let r = B.reader payload in
    let id = B.read_int r in
    let json = B.read_str r in
    B.expect_end r;
    Done { id; json }
  | "METR" ->
    let r = B.reader payload in
    let json = B.read_str r in
    B.expect_end r;
    Metrics { json }
  | "HLTH" ->
    let r = B.reader payload in
    let json = B.read_str r in
    B.expect_end r;
    Health { json }
  | other -> B.corrupt (Printf.sprintf "unknown frame tag %S" other)
