(** The sample-sweep worker daemon ([darco worker --listen HOST:PORT]).

    Accepts dispatcher connections and serves them sequentially: for each
    {!Wire.Work} frame it decodes the {!Darco_sampling.Work.t}, executes
    it, and answers with one {!Wire.Result} (JSON) or {!Wire.Fail}.  A
    unit that raises fails only itself; a malformed frame gets a [Fail]
    reply and drops that connection (the stream can no longer be trusted)
    while the daemon keeps accepting.  Never returns normally. *)

val resolve : string -> Unix.inet_addr
(** Dotted-quad or hostname to address.
    Raises [Invalid_argument] if unresolvable. *)

val serve :
  ?quiet:bool ->
  ?exec:(Darco_sampling.Work.t -> Darco_obs.Jsonx.t) ->
  ?ready:(Unix.sockaddr -> unit) ->
  host:string ->
  port:int ->
  unit ->
  unit
(** [serve ~host ~port ()] binds (SO_REUSEADDR), listens and serves
    forever.  [ready] is called with the bound address once listening
    (tests use [port:0] and read the kernel-assigned port here); [exec]
    overrides unit execution (default {!Darco_sampling.Work.exec});
    [quiet] silences the per-connection log lines. *)
