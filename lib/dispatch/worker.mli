(** The sample-sweep worker daemon ([darco worker --listen HOST:PORT]).

    Accepts dispatcher connections and serves each with a select loop
    that keeps up to [jobs] work units executing concurrently.  By
    default units run on a pool of OCaml domains sharing the daemon's
    checkpoint store — one resident image serves every slot, and an
    exception in a unit fails only that unit.  With [isolate] each unit
    instead runs in its own forked child reading a {!Store.Shared}
    (off-heap, copy-on-write-clean) image, so even a segfaulting or
    OOM-killed unit loses only itself — pay the fork for untrusted or
    crashy workloads, keep the domains for throughput.  Each
    {!Wire.Work} frame decodes to a
    {!Darco_sampling.Work.t} and is eventually answered by one
    {!Wire.Result} (JSON) or {!Wire.Fail} carrying the same unit id;
    replies may arrive out of order.

    Version-2 units reference their checkpoint by digest.  The daemon
    keeps a {!Darco_sampling.Store} (optionally spilled to [store_dir]):
    a unit whose digest is missing parks while a single {!Wire.Need} asks
    the dispatcher for the bytes, and the {!Wire.Ckpt} answer releases
    every unit waiting on that digest — one transfer per checkpoint per
    daemon, no matter how many windows share it, including across sweeps
    when [store_dir] persists.

    A malformed frame gets a connection-level [Fail] reply and drops that
    connection (the stream can no longer be trusted) while the daemon
    keeps accepting; children of a dropped connection are killed and
    reaped.  Never returns normally. *)

val resolve : string -> Unix.inet_addr
(** Dotted-quad or hostname to address.
    Raises [Invalid_argument] if unresolvable. *)

val serve :
  ?quiet:bool ->
  ?isolate:bool ->
  ?exec:(Darco_sampling.Work.t -> Darco_obs.Jsonx.t) ->
  ?ready:(Unix.sockaddr -> unit) ->
  ?jobs:int ->
  ?store_dir:string ->
  host:string ->
  port:int ->
  unit ->
  unit
(** [serve ~host ~port ()] binds (SO_REUSEADDR), listens and serves
    forever.  [ready] is called with the bound address once listening
    (tests use [port:0] and read the kernel-assigned port here); [exec]
    overrides unit execution (default [Work.exec] against the daemon's
    checkpoint store; with [isolate] it runs in the forked child,
    otherwise on a worker domain — so it must be domain-safe); [jobs]
    (default 1) is the concurrency advertised to the dispatcher in the
    [Hello] reply and the size of the domain pool; [isolate] (default
    false) trades the shared-memory domain pool for fork-per-unit crash
    containment; [store_dir] spills received checkpoints to disk so they
    survive daemon restarts; [quiet] silences the log lines. *)
