module B = Darco_sampling.Buf
module Work = Darco_sampling.Work
module Store = Darco_sampling.Store
module Dpool = Darco_sampling.Dpool
module Jsonx = Darco_obs.Jsonx
module Span = Darco_obs.Span

(* How units execute: on a shared pool of OCaml domains (the default —
   one store image serves every slot, completions arrive via the pool's
   wake fd), or each in a forked child ([--isolate] — a segfaulting or
   OOM-killed unit loses only itself).  The pool outlives connections;
   fork state is per-connection. *)
type engine = Fork | Pool of Jsonx.t Dpool.t

let log quiet fmt =
  Printf.ksprintf
    (fun s -> if not quiet then Printf.printf "[worker] %s\n%!" s)
    fmt

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      invalid_arg (Printf.sprintf "cannot resolve host %S" host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found ->
      invalid_arg (Printf.sprintf "cannot resolve host %S" host))

let write_whole path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type child = { c_id : int; c_path : string }

(* One connection: a select/waitpid loop multiplexing incoming frames with
   up to [jobs] forked unit executions.  Units whose checkpoint is missing
   from the store park until the dispatcher ships it ([Need] is sent once
   per digest, no matter how many units wait on it).  A malformed frame
   means the byte stream can no longer be trusted, so after a [Fail]
   courtesy reply the connection is dropped — the daemon itself lives on.
   A crashing unit (uncaught exception, fatal signal) fails only itself:
   it runs in its own child process, exactly like the local backend. *)
let serve_connection ~quiet ~ident ~engine ~exec ~jobs ~store fd =
  let runq = Queue.create () in
  let parked : (string, (int * Work.t) Queue.t) Hashtbl.t = Hashtbl.create 4 in
  let running : (int, child) Hashtbl.t = Hashtbl.create jobs in
  let closed = ref false in
  let send msg = try Wire.send fd msg with Wire.Closed -> closed := true in
  (* Per-unit span log (newest first): "queued" covers enqueue-to-fork —
     including any park waiting for a checkpoint push — and "running"
     covers the forked child's lifetime.  The log ships back inside the
     unit's [Result] frame so the dispatcher can merge this machine's
     timeline into its own trace. *)
  let spanlog : (int, Span.t list) Hashtbl.t = Hashtbl.create jobs in
  let log_span id sp =
    Hashtbl.replace spanlog id
      (sp :: Option.value ~default:[] (Hashtbl.find_opt spanlog id))
  in
  let take_spans id =
    let sps = Option.value ~default:[] (Hashtbl.find_opt spanlog id) in
    Hashtbl.remove spanlog id;
    Span.encode_list (List.rev sps)
  in
  let spawn (id, work) =
    log_span id (Span.end_ ~span:"queued" ~corr:id ~host:ident ());
    log_span id (Span.begin_ ~span:"running" ~corr:id ~host:ident ());
    match engine with
    | Pool pool -> Dpool.submit pool ~tag:id (fun () -> exec work)
    | Fork -> (
      let path = Filename.temp_file "darco_worker" ".json" in
      (* flush before forking so buffered output is not emitted twice *)
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
        let code =
          try
            write_whole path (Jsonx.to_string (exec work));
            0
          with e ->
            (try write_whole path (Printexc.to_string e) with _ -> ());
            3
        in
        Unix._exit code
      | pid -> Hashtbl.replace running pid { c_id = id; c_path = path })
  in
  let busy () =
    match engine with
    | Pool pool -> Dpool.pending pool
    | Fork -> Hashtbl.length running
  in
  let finish id msg =
    let ok = match msg with Wire.Result _ -> true | _ -> false in
    log_span id (Span.end_ ~ok ~span:"running" ~corr:id ~host:ident ());
    let msg =
      match msg with
      | Wire.Result { id; text; _ } ->
        Wire.Result { id; text; spans = take_spans id }
      | m ->
        (* [Fail] frames carry no span log; drop the unit's record *)
        Hashtbl.remove spanlog id;
        m
    in
    send msg
  in
  let reap_pool pool =
    let rec drain () =
      match Dpool.try_next pool with
      | None -> ()
      | Some (id, res) ->
        (match res with
        | Stdlib.Ok json ->
          finish id (Wire.Result { id; text = Jsonx.to_string json; spans = "" })
        | Stdlib.Error e ->
          finish id (Wire.Fail { id; reason = Printexc.to_string e }));
        drain ()
    in
    drain ()
  in
  let reap_forks () =
    let continue = ref true in
    while !continue && Hashtbl.length running > 0 do
      match Unix.waitpid [ Unix.WNOHANG ] (-1) with
      | 0, _ -> continue := false
      | pid, status -> (
        match Hashtbl.find_opt running pid with
        | None -> () (* not ours; nothing to report *)
        | Some c ->
          Hashtbl.remove running pid;
          let msg =
            match status with
            | Unix.WEXITED 0 -> (
              match read_whole c.c_path with
              | text -> Wire.Result { id = c.c_id; text; spans = "" }
              | exception Sys_error m ->
                Wire.Fail { id = c.c_id; reason = "result unreadable: " ^ m })
            | Unix.WEXITED 3 ->
              let reason =
                try read_whole c.c_path with Sys_error _ -> "unit failed"
              in
              Wire.Fail { id = c.c_id; reason }
            | Unix.WEXITED n ->
              Wire.Fail
                { id = c.c_id; reason = Printf.sprintf "unit exited with code %d" n }
            | Unix.WSIGNALED s ->
              Wire.Fail
                { id = c.c_id; reason = Printf.sprintf "unit killed by signal %d" s }
            | Unix.WSTOPPED s ->
              Wire.Fail
                { id = c.c_id; reason = Printf.sprintf "unit stopped by signal %d" s }
          in
          (try Sys.remove c.c_path with Sys_error _ -> ());
          finish c.c_id msg)
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let reap_ready () =
    match engine with Pool pool -> reap_pool pool | Fork -> reap_forks ()
  in
  let enqueue id (work : Work.t) =
    log_span id
      (Span.begin_ ~detail:work.Work.label ~span:"queued" ~corr:id ~host:ident ());
    match Work.digest work with
    | Some d when not (Store.mem store d) ->
      let q =
        match Hashtbl.find_opt parked d with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace parked d q;
          log quiet "missing checkpoint %s; requesting it" d;
          send (Wire.Need { digest = d });
          q
      in
      Queue.push (id, work) q
    | _ -> Queue.push (id, work) runq
  in
  let handle = function
    | Wire.Hello { version = v; slots = _ } when v >= Wire.min_version ->
      (* negotiate downward: speak the older of the two versions (the
         worker conversation is identical across the accepted range) *)
      send
        (Wire.Hello { version = min v Wire.protocol_version; slots = jobs })
    | Wire.Hello { version = v; _ } ->
      log quiet "rejecting protocol version %d (speaking %d)" v
        Wire.protocol_version;
      send
        (Wire.Fail
           {
             id = -1;
             reason =
               Printf.sprintf
                 "protocol version mismatch: worker speaks %d, got %d"
                 Wire.protocol_version v;
           });
      closed := true
    | Wire.Ping -> send Wire.Pong
    | Wire.Work { id; unit_ } -> (
      match Work.of_string unit_ with
      | work ->
        log quiet "unit %d: %s (offset %d, window %d, warmup %d)" id work.label
          work.offset work.window work.warmup;
        enqueue id work
      | exception B.Corrupt m ->
        log quiet "rejecting malformed work unit: %s" m;
        send (Wire.Fail { id; reason = "malformed work unit: " ^ m }))
    | Wire.Ckpt { digest; bytes } -> (
      ignore (Store.add store bytes);
      log quiet "checkpoint %s cached (%d bytes)" digest (String.length bytes);
      match Hashtbl.find_opt parked digest with
      | None -> ()
      | Some q ->
        Hashtbl.remove parked digest;
        Queue.transfer q runq)
    | Wire.Pong | Wire.Result _ | Wire.Fail _ | Wire.Need _ | Wire.Submit _
    | Wire.Status _ | Wire.Artifact _ | Wire.Done _ | Wire.Metrics _
    | Wire.Health _ ->
      send (Wire.Fail { id = -1; reason = "unexpected message; closing connection" });
      closed := true
  in
  while not !closed do
    while (not (Queue.is_empty runq)) && busy () < jobs do
      spawn (Queue.pop runq)
    done;
    (* the domain pool wakes us through its pipe, so its select blocks
       indefinitely; forked children have no fd, so poll while any run *)
    let extra_fds, timeout =
      match engine with
      | Pool pool -> ([ Dpool.wake_fd pool ], -1.0)
      | Fork -> ([], if Hashtbl.length running > 0 then 0.05 else -1.0)
    in
    let readable =
      match Unix.select (fd :: extra_fds) [] [] timeout with
      | r, _, _ -> List.mem fd r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if readable then begin
      match Wire.recv fd with
      | msg -> handle msg
      | exception Wire.Closed -> closed := true
      | exception B.Corrupt m ->
        log quiet "malformed frame (%s); dropping connection" m;
        (try Wire.send fd (Wire.Fail { id = -1; reason = "malformed frame: " ^ m })
         with Wire.Closed -> ());
        closed := true
    end;
    reap_ready ()
  done;
  (* the dispatcher is gone: in-flight units are orphans, reclaim them *)
  (match engine with
  | Fork ->
    Hashtbl.iter
      (fun pid _ -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      running;
    Hashtbl.iter
      (fun pid c ->
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        try Sys.remove c.c_path with Sys_error _ -> ())
      running
  | Pool pool ->
    (* domains cannot be killed: let in-flight units run out and discard
       their results, so the pool is clean for the next connection *)
    while Dpool.pending pool > 0 do
      ignore (Dpool.await pool)
    done);
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve ?(quiet = false) ?(isolate = false) ?exec ?ready ?(jobs = 1)
    ?store_dir ~host ~port () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let jobs = max 1 jobs in
  (* forked children never touch the image after exec starts, so give the
     isolating engine the off-heap tier: one physical copy feeds them all *)
  let tier = if isolate then Store.Shared else Store.Heap in
  let store = Store.create ?dir:store_dir ~tier () in
  let exec =
    match exec with Some f -> f | None -> fun w -> Work.exec ~store w
  in
  let engine = if isolate then Fork else Pool (Dpool.create ~jobs ()) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (resolve host, port));
  Unix.listen sock 16;
  Option.iter (fun f -> f (Unix.getsockname sock)) ready;
  (* span host identity: the bound address with the kernel-assigned port
     (the caller may have passed port 0) *)
  let ident =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> Printf.sprintf "worker:%s:%d" host p
    | _ -> Printf.sprintf "worker:%s:%d" host port
  in
  log quiet "listening on %s:%d (protocol v%d, %d %s slot%s%s)" host port
    Wire.protocol_version jobs
    (if isolate then "forked" else "domain")
    (if jobs = 1 then "" else "s")
    (match engine with
    | Pool p when Dpool.size p < jobs ->
      Printf.sprintf ", %d domain%s" (Dpool.size p)
        (if Dpool.size p = 1 then "" else "s")
    | Pool _ | Fork -> "");
  let rec accept_loop () =
    match Unix.accept sock with
    | fd, peer ->
      log quiet "connection from %s"
        (match peer with
        | Unix.ADDR_INET (a, p) ->
          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX p -> p);
      serve_connection ~quiet ~ident ~engine ~exec ~jobs ~store fd;
      accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ()
