module B = Darco_sampling.Buf
module Work = Darco_sampling.Work
module Jsonx = Darco_obs.Jsonx

let log quiet fmt =
  Printf.ksprintf
    (fun s -> if not quiet then Printf.printf "[worker] %s\n%!" s)
    fmt

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      invalid_arg (Printf.sprintf "cannot resolve host %S" host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found ->
      invalid_arg (Printf.sprintf "cannot resolve host %S" host))

(* One connection: answer frames until the peer goes away.  A malformed
   frame means the byte stream can no longer be trusted, so after a [Fail]
   courtesy reply the connection is dropped — the daemon itself lives on. *)
let serve_connection ~quiet ~exec fd =
  let rec loop () =
    match Wire.recv fd with
    | Wire.Hello v when v = Wire.protocol_version ->
      Wire.send fd (Wire.Hello Wire.protocol_version);
      loop ()
    | Wire.Hello v ->
      log quiet "rejecting protocol version %d (speaking %d)" v
        Wire.protocol_version;
      Wire.send fd
        (Wire.Fail
           (Printf.sprintf "protocol version mismatch: worker speaks %d, got %d"
              Wire.protocol_version v))
    | Wire.Ping ->
      Wire.send fd Wire.Pong;
      loop ()
    | Wire.Work encoded ->
      (match Work.of_string encoded with
      | work ->
        log quiet "executing %s (offset %d, window %d, warmup %d)" work.label
          work.offset work.window work.warmup;
        (match exec work with
        | json -> Wire.send fd (Wire.Result (Jsonx.to_string json))
        | exception e ->
          log quiet "unit %s failed: %s" work.label (Printexc.to_string e);
          Wire.send fd (Wire.Fail (Printexc.to_string e)))
      | exception B.Corrupt msg ->
        log quiet "rejecting malformed work unit: %s" msg;
        Wire.send fd (Wire.Fail ("malformed work unit: " ^ msg)));
      loop ()
    | Wire.Pong | Wire.Result _ | Wire.Fail _ ->
      Wire.send fd (Wire.Fail "unexpected message; closing connection")
    | exception Wire.Closed -> ()
    | exception B.Corrupt msg ->
      log quiet "malformed frame (%s); dropping connection" msg;
      (try Wire.send fd (Wire.Fail ("malformed frame: " ^ msg))
       with Wire.Closed -> ())
  in
  (try loop () with Wire.Closed -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve ?(quiet = false) ?(exec = Work.exec) ?ready ~host ~port () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (resolve host, port));
  Unix.listen sock 16;
  Option.iter (fun f -> f (Unix.getsockname sock)) ready;
  log quiet "listening on %s:%d (protocol v%d)" host port Wire.protocol_version;
  let rec accept_loop () =
    match Unix.accept sock with
    | fd, peer ->
      log quiet "connection from %s"
        (match peer with
        | Unix.ADDR_INET (a, p) ->
          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX p -> p);
      serve_connection ~quiet ~exec fd;
      accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ()
