module B = Darco_sampling.Buf
module Sweep = Darco_sampling.Sweep
module Work = Darco_sampling.Work
module Store = Darco_sampling.Store
module Jsonx = Darco_obs.Jsonx
module Bus = Darco_obs.Bus
module Event = Darco_obs.Event
module Clock = Darco_obs.Clock
module Span = Darco_obs.Span

type addr = { host : string; port : int }

let addr_to_string a = Printf.sprintf "%s:%d" a.host a.port

let addr_of_string s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "worker address %S is not HOST:PORT" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 && host <> "" -> Ok { host; port = p }
    | _ -> Error (Printf.sprintf "worker address %S is not HOST:PORT" s))

type spec =
  | Serial
  | Local of { jobs : int }
  | Domains of { jobs : int }
  | Remote of { workers : addr list; timeout : float; retries : int }

let spec_of_string ?(jobs = 4) ?(timeout = 60.0) ?(retries = 2) s =
  let prefix p =
    String.length s > String.length p
    && String.sub s 0 (String.length p) = p
  in
  if s = "serial" then Ok Serial
  else if s = "local" then Ok (Local { jobs })
  else if prefix "local:" then begin
    match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some j when j >= 1 -> Ok (Local { jobs = j })
    | _ -> Error (Printf.sprintf "bad backend %S: expected local:JOBS" s)
  end
  else if s = "domains" then Ok (Domains { jobs })
  else if prefix "domains:" then begin
    match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
    | Some j when j >= 1 -> Ok (Domains { jobs = j })
    | _ -> Error (Printf.sprintf "bad backend %S: expected domains:JOBS" s)
  end
  else if prefix "remote:" then begin
    let rest = String.sub s 7 (String.length s - 7) in
    let parts = String.split_on_char ',' rest in
    let rec collect acc = function
      | [] -> Ok (Remote { workers = List.rev acc; timeout; retries })
      | p :: tl -> (
        match addr_of_string (String.trim p) with
        | Ok a -> collect (a :: acc) tl
        | Error e -> Error e)
    in
    collect [] parts
  end
  else
    Error
      (Printf.sprintf
         "bad backend %S: expected serial, local:JOBS, domains:JOBS or \
          remote:HOST:PORT[,HOST:PORT...]"
         s)

(* --- the dispatcher ----------------------------------------------------- *)

(* Base delay before a unit bounced off a dead worker is eligible again;
   doubles per attempt (0.2s, 0.4s, 0.8s, ...). *)
let backoff_base = 0.2

(* A unit is only stolen (speculatively duplicated onto an idle worker)
   once it has been in flight for this fraction of the per-unit timeout —
   young units are almost certainly just still computing. *)
let steal_fraction = 0.25

type inflight = { if_attempt : int; if_deadline : float; if_sent_at : float }

(* One queued outbound frame: its exact wire bytes, how much has reached
   the kernel, and what to do once the last byte is written (or the
   connection dies first — [ob_done false]).  Frames flush opportunistically
   at enqueue and then whenever select reports the socket writable, so a
   multi-megabyte checkpoint push drains in the background while results
   keep being handled. *)
type obent = {
  ob_bytes : string;
  mutable ob_off : int;
  ob_done : bool -> unit;
}

type worker_state = {
  w_addr : string;
  (* position in the caller's worker list; used to derive a stable
     correlation id for per-worker spans (checkpoint pushes) that cannot
     collide with unit indices *)
  w_ix : int;
  mutable w_fd : Unix.file_descr option;
  w_slots : int;
  (* unit index -> its in-flight record; up to [w_slots] entries *)
  w_inflight : (int, inflight) Hashtbl.t;
  (* checkpoint digests this worker has been assigned or pushed — any
     later unit sharing one rides the worker's cached copy *)
  w_seen : (string, unit) Hashtbl.t;
  (* outbound frames not yet fully written; every post-handshake frame
     goes through here so two frames can never interleave *)
  w_outbox : obent Queue.t;
  (* keepalive probing: wall time of the last frame received, when the
     next PING may go out, and how many PINGs are outstanding without any
     intervening traffic (any received frame counts as life, not just
     PONG — a worker busy streaming results never gets probed) *)
  mutable w_last_recv : float;
  mutable w_next_ping : float;
  mutable w_pings : int;
}

(* Dispatch-lifecycle events are stamped with the strictly monotonic
   wall-clock microsecond tick — there is no retired-instruction clock
   across machines, and a wall stamp keeps a merged JSONL trace in
   real-time order. *)
let emit bus ev = Option.iter (fun b -> Bus.emit b ~at:(Clock.ticks ()) ev) bus

(* Span halves ride the same bus; skip the allocation when nobody listens
   (the bus-active contract of the core applies here too). *)
let span bus sp =
  Option.iter (fun b -> if Bus.active b then Span.emit b sp) bus

let dispatcher_host = "dispatcher"

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Non-blocking connect bounded by [timeout] seconds, then the Hello
   handshake bounded by the same budget.  The socket stays non-blocking:
   the wire layer parks in select on EAGAIN, so multiplexed traffic never
   stalls the whole dispatcher on one slow peer. *)
let connect_worker ~bus ~timeout ~ix (a : addr) =
  let name = addr_to_string a in
  let fail fd reason =
    Option.iter close_quietly fd;
    emit bus (Event.Worker_lost { worker = name; reason });
    None
  in
  match Worker.resolve a.host with
  | exception Invalid_argument m -> fail None m
  | inet -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    let sockaddr = Unix.ADDR_INET (inet, a.port) in
    let deadline = Unix.gettimeofday () +. timeout in
    let connected =
      match Unix.connect fd sockaddr with
      | () -> true
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
        -> (
        match Unix.select [] [ fd ] [] timeout with
        | _, [ _ ], _ -> Unix.getsockopt_error fd = None
        | _ -> false)
      | exception Unix.Unix_error _ -> false
    in
    if not connected then fail (Some fd) "connection refused or timed out"
    else begin
      match
        Wire.send ~deadline fd
          (Wire.Hello { version = Wire.protocol_version; slots = 0 });
        Wire.recv ~deadline fd
      with
      | Wire.Hello { version = v; slots }
        when v >= Wire.min_version && v <= Wire.protocol_version ->
        (* the worker already negotiated down to [min ours theirs]; any
           version in the accepted range speaks the same worker protocol *)
        emit bus (Event.Worker_up { worker = name });
        let now = Unix.gettimeofday () in
        Some
          {
            w_addr = name;
            w_ix = ix;
            w_fd = Some fd;
            w_slots = max 1 slots;
            w_inflight = Hashtbl.create 8;
            w_seen = Hashtbl.create 4;
            w_outbox = Queue.create ();
            w_last_recv = now;
            w_next_ping = now;
            w_pings = 0;
          }
      | Wire.Hello { version = v; _ } ->
        fail (Some fd)
          (Printf.sprintf "protocol version mismatch (worker speaks %d)" v)
      | Wire.Fail { reason; _ } -> fail (Some fd) reason
      | _ -> fail (Some fd) "unexpected handshake reply"
      | exception Wire.Timeout -> fail (Some fd) "handshake timed out"
      | exception Wire.Closed -> fail (Some fd) "connection closed during handshake"
      | exception B.Corrupt m -> fail (Some fd) ("malformed handshake: " ^ m)
    end)

(* A persistent dispatch session: worker connections made once, then any
   number of rounds of units run through them.  What persists between
   rounds is exactly what is expensive to rebuild — the TCP connections,
   each worker's [w_seen] checkpoint cache (a later round whose units
   share a digest with an earlier one rides the copies already pushed),
   and half-drained outbound frames.  Wire unit ids are offset by
   [se_base] so every round's ids are globally unique within the session:
   a stale frame from an earlier round (e.g. the loser of a steal race
   finishing late) can never alias a current unit. *)
type session = {
  se_bus : Bus.t option;
  se_store : Store.t option;
  se_fallback_jobs : int;
  se_keepalive_idle : float;
  se_keepalive_misses : int;
  se_timeout : float;
  se_retries : int;
  se_addrs : addr list;
  se_ws : worker_state list;
  mutable se_base : int;
}

let open_session ?bus ?(fallback_jobs = 4) ?store ?(keepalive_idle = 5.0)
    ?(keepalive_misses = 3) ?(timeout = 60.0) ?(retries = 2) workers =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let ws =
    List.filter_map
      (fun (ix, a) -> connect_worker ~bus ~timeout ~ix a)
      (List.mapi (fun ix a -> (ix, a)) workers)
  in
  {
    se_bus = bus;
    se_store = store;
    se_fallback_jobs = fallback_jobs;
    se_keepalive_idle = keepalive_idle;
    se_keepalive_misses = keepalive_misses;
    se_timeout = timeout;
    se_retries = retries;
    se_addrs = workers;
    se_ws = ws;
    se_base = 0;
  }

let close_session se =
  List.iter
    (fun w ->
      (* frames still queued (e.g. a push for a unit that was stolen and
         finished elsewhere) will never drain: fail their completions so
         their spans close *)
      Queue.iter (fun e -> e.ob_done false) w.w_outbox;
      Queue.clear w.w_outbox;
      Option.iter close_quietly w.w_fd;
      w.w_fd <- None)
    se.se_ws

let session_run se works =
  let bus = se.se_bus and store = se.se_store in
  let timeout = se.se_timeout and retries = se.se_retries in
  let fallback_jobs = se.se_fallback_jobs in
  let keepalive_idle = se.se_keepalive_idle in
  let keepalive_misses = se.se_keepalive_misses in
  let units = Array.of_list works in
  let n = Array.length units in
  let base = se.se_base in
  se.se_base <- base + n;
  let outcomes = Array.make n (Sweep.Failed "not dispatched") in
  let finished = Array.make n false in
  let done_count = ref 0 in
  let ws = se.se_ws in
  let live () = List.filter (fun w -> w.w_fd <> None) ws in
  (* Per-unit span state: which dispatcher-side span is currently open for
     unit [i].  "queued" covers arrival-to-dispatch (and backoff waits),
     "inflight" covers dispatch-to-settle on the primary holder; stolen
     duplicates do not reopen spans (the [Steal] instant marks them). *)
  let open_span = Array.make n `None in
  let close_span i ~ok =
    (match open_span.(i) with
    | `None -> ()
    | `Queued ->
      span bus (Span.end_ ~ok ~span:"queued" ~corr:i ~host:dispatcher_host ())
    | `Inflight ->
      span bus (Span.end_ ~ok ~span:"inflight" ~corr:i ~host:dispatcher_host ()));
    open_span.(i) <- `None
  in
  let open_queued i ~detail =
    span bus (Span.begin_ ~detail ~span:"queued" ~corr:i ~host:dispatcher_host ());
    open_span.(i) <- `Queued
  in
  Array.iteri (fun i (u : Work.t) -> open_queued i ~detail:u.Work.label) units;
  (* how many live workers currently hold unit [i] (can exceed 1 after a
     steal speculatively duplicated it) *)
  let copies i =
    List.length
      (List.filter (fun w -> w.w_fd <> None && Hashtbl.mem w.w_inflight i) ws)
  in
  let gauge w =
    emit bus
      (Event.Dispatch_inflight
         { worker = w.w_addr; in_flight = Hashtbl.length w.w_inflight })
  in
  (* Write as much queued output as the socket will take without blocking.
     Returns false when the connection proved dead (the caller loses the
     worker; never called on a healthy empty queue in that state). *)
  let flush_outbox w =
    match w.w_fd with
    | None -> true
    | Some fd ->
      let ok = ref true and progress = ref true in
      while !ok && !progress && not (Queue.is_empty w.w_outbox) do
        let e = Queue.peek w.w_outbox in
        let len = String.length e.ob_bytes in
        match Unix.write_substring fd e.ob_bytes e.ob_off (len - e.ob_off) with
        | k ->
          e.ob_off <- e.ob_off + k;
          if e.ob_off = len then begin
            ignore (Queue.pop w.w_outbox);
            e.ob_done true
          end
          else progress := false
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          progress := false
        | exception Unix.Unix_error _ -> ok := false
      done;
      !ok
  in
  let enqueue_frame w msg ~done_ =
    Queue.push
      { ob_bytes = Wire.encode msg; ob_off = 0; ob_done = done_ }
      w.w_outbox
  in
  let settle i outcome =
    if not finished.(i) then begin
      close_span i ~ok:(match outcome with Sweep.Ok _ -> true | _ -> false);
      outcomes.(i) <- outcome;
      finished.(i) <- true;
      incr done_count;
      (* withdraw every other copy so a late duplicate result is ignored *)
      List.iter
        (fun w ->
          if Hashtbl.mem w.w_inflight i then begin
            Hashtbl.remove w.w_inflight i;
            gauge w
          end)
        ws
    end
  in
  (* (unit index, attempt, earliest re-dispatch time), input order *)
  let pending = ref (List.init n (fun i -> (i, 0, 0.0))) in
  let requeue (i, attempt) reason =
    let label = units.(i).Work.label in
    if attempt >= retries then
      settle i
        (Sweep.Failed
           (Printf.sprintf "gave up after %d attempts (last: %s)" (attempt + 1)
              reason))
    else begin
      let delay = backoff_base *. (2.0 ** float_of_int attempt) in
      emit bus
        (Event.Dispatch_retry { unit_label = label; attempt = attempt + 1; delay });
      close_span i ~ok:false;
      open_queued i ~detail:label;
      pending := !pending @ [ (i, attempt + 1, Unix.gettimeofday () +. delay) ]
    end
  in
  let lose_worker w reason =
    emit bus (Event.Worker_lost { worker = w.w_addr; reason });
    Option.iter close_quietly w.w_fd;
    w.w_fd <- None;
    (* frames still queued will never arrive; let their completions fail *)
    Queue.iter (fun e -> e.ob_done false) w.w_outbox;
    Queue.clear w.w_outbox;
    let inflight = Hashtbl.fold (fun i inf acc -> (i, inf) :: acc) w.w_inflight [] in
    Hashtbl.reset w.w_inflight;
    (* a unit duplicated onto another live worker is still in flight there;
       only units with no surviving copy go back on the queue *)
    List.iter
      (fun (i, (inf : inflight)) ->
        if (not finished.(i)) && copies i = 0 then requeue (i, inf.if_attempt) reason)
      inflight
  in
  (* opportunistic flush; a hard write error costs the whole worker *)
  let kick w = if not (flush_outbox w) then lose_worker w "send failed" in
  (* Assign unit [i] to [w].  The frame goes through the outbox; the unit
     is in flight from the moment it is queued (its deadline covers a
     wedged socket), and a write failure loses the worker, whose table —
     stolen copies and all — requeues correctly. *)
  let send_unit w ~stolen i attempt =
    let u = units.(i) in
    let now = Unix.gettimeofday () in
    let enc = Work.to_string u in
    emit bus
      (Event.Dispatch_sent
         {
           unit_label = u.Work.label;
           worker = w.w_addr;
           attempt;
           bytes = String.length enc;
         });
    if not stolen then begin
      close_span i ~ok:true;
      span bus
        (Span.begin_
           ~detail:(Printf.sprintf "%s attempt %d" w.w_addr attempt)
           ~span:"inflight" ~corr:i ~host:dispatcher_host ());
      open_span.(i) <- `Inflight
    end;
    (match Work.digest u with
    | None -> ()
    | Some d ->
      if Hashtbl.mem w.w_seen d then
        emit bus (Event.Ckpt_hit { worker = w.w_addr; digest = d })
      else Hashtbl.replace w.w_seen d ());
    enqueue_frame w (Wire.Work { id = base + i; unit_ = enc }) ~done_:(fun _ -> ());
    Hashtbl.replace w.w_inflight i
      { if_attempt = attempt; if_deadline = now +. timeout; if_sent_at = now };
    gauge w;
    kick w
  in
  (* Worker span logs ride back inside [Result] frames; replay them on the
     bus with their original stamps so the merged trace carries both
     machines' timelines.  A malformed log is a telemetry defect, never a
     reason to reject the (CRC-verified, parseable) result itself. *)
  let replay_spans encoded =
    match bus with
    | Some b when Bus.active b -> (
      match Span.decode_list encoded with
      | sps -> List.iter (fun sp -> Span.emit b sp) sps
      | exception Jsonx.Parse_error _ -> ())
    | _ -> ()
  in
  let handle_msg w = function
    | Wire.Result { id; text; spans = spanlog } ->
      (* a result for a unit no longer in flight here is a late duplicate
         of something already settled (or withdrawn), or a stray from an
         earlier round of this session (negative after the base shift);
         drop it *)
      let id = id - base in
      if id >= 0 && id < n && Hashtbl.mem w.w_inflight id then begin
        match Jsonx.parse text with
        | json ->
          replay_spans spanlog;
          emit bus
            (Event.Dispatch_done
               { unit_label = units.(id).Work.label; worker = w.w_addr; ok = true });
          settle id (Sweep.Ok json)
        | exception Jsonx.Parse_error m ->
          (* the frame passed its CRC, so this is the worker misbehaving,
             not the network: drop it (the unit requeues from its table) *)
          lose_worker w ("unparseable result: " ^ m)
      end
    | Wire.Fail { id; reason } when id >= 0 ->
      let id = id - base in
      if id >= 0 && id < n && Hashtbl.mem w.w_inflight id then begin
        emit bus
          (Event.Dispatch_done
             { unit_label = units.(id).Work.label; worker = w.w_addr; ok = false });
        (* the unit itself failed over a healthy connection — execution is
           deterministic, so retrying (or waiting out a duplicate) would
           not help *)
        settle id (Sweep.Failed reason)
      end
    | Wire.Fail { reason; _ } -> lose_worker w ("worker reported: " ^ reason)
    | Wire.Need { digest } -> (
      match store with
      | None ->
        lose_worker w "worker requested a checkpoint but the dispatcher has no store"
      | Some s -> (
        match Store.find s digest with
        | Some bytes ->
          (* one span per push, on a per-worker correlation track well away
             from unit indices; the span closes when the last byte drains,
             so its width is the real transfer time overlapped with
             everything else the loop did meanwhile *)
          let corr = 1_000_000 + w.w_ix in
          span bus
            (Span.begin_ ~detail:digest ~span:"ckpt_push" ~corr
               ~host:dispatcher_host ());
          Hashtbl.replace w.w_seen digest ();
          enqueue_frame w
            (Wire.Ckpt { digest; bytes })
            ~done_:(fun ok ->
              span bus
                (Span.end_ ~ok ~span:"ckpt_push" ~corr ~host:dispatcher_host ());
              if ok then
                emit bus
                  (Event.Ckpt_push
                     { worker = w.w_addr; digest; bytes = String.length bytes }));
          kick w
        | None ->
          lose_worker w (Printf.sprintf "worker requested unknown checkpoint %s" digest)
        | exception B.Corrupt m -> lose_worker w ("checkpoint store: " ^ m)))
    | Wire.Pong -> () (* keepalive reply; receipt already reset the probe state *)
    | Wire.Hello _ | Wire.Ping | Wire.Work _ | Wire.Ckpt _ | Wire.Submit _
    | Wire.Status _ | Wire.Artifact _ | Wire.Done _ | Wire.Metrics _
    | Wire.Health _ ->
      lose_worker w "protocol violation"
  in
  let drain w fd =
    let deadline =
      Hashtbl.fold
        (fun _ (inf : inflight) acc -> min acc inf.if_deadline)
        w.w_inflight
        (Unix.gettimeofday () +. timeout)
    in
    match Wire.recv ~deadline fd with
    | msg ->
      (* any complete frame proves the worker alive *)
      w.w_last_recv <- Unix.gettimeofday ();
      w.w_pings <- 0;
      handle_msg w msg
    | exception Wire.Closed -> lose_worker w "connection closed"
    | exception Wire.Timeout -> lose_worker w "work unit timed out"
    | exception B.Corrupt m -> lose_worker w ("malformed frame: " ^ m)
  in
  (* Probe idle connections: a PING goes out once nothing has arrived for
     [keepalive_idle] seconds, repeating at that interval; after
     [keepalive_misses] unanswered probes the worker is declared dead and
     its units reassigned — much sooner than the per-unit deadline when a
     worker is SIGSTOPped or its host vanished. *)
  let keepalive_check now =
    List.iter
      (fun w ->
        if w.w_fd <> None && now -. w.w_last_recv >= keepalive_idle
           && now >= w.w_next_ping
        then begin
          if w.w_pings >= keepalive_misses then
            lose_worker w
              (Printf.sprintf "missed %d keepalive pongs" w.w_pings)
          else begin
            w.w_pings <- w.w_pings + 1;
            w.w_next_ping <- now +. keepalive_idle;
            enqueue_frame w Wire.Ping ~done_:(fun _ -> ());
            kick w
          end
        end)
      ws
  in
  (* Straggler gauge: age of the oldest in-flight unit over the median
     in-flight age, in percent, attributed to the worker holding it.
     Needs two units in flight to mean anything; emitted only when the
     rounded percentage moves so an idle fleet adds nothing to the
     trace. *)
  let last_straggler_pct = ref 0 in
  let straggler_check now =
    if (match bus with Some b -> Bus.active b | None -> false) then begin
      let ages = ref [] in
      List.iter
        (fun w ->
          if w.w_fd <> None then
            Hashtbl.iter
              (fun _ inf -> ages := (now -. inf.if_sent_at, w.w_addr) :: !ages)
              w.w_inflight)
        ws;
      let ages = List.sort (fun (a, _) (b, _) -> compare b a) !ages in
      match ages with
      | (slowest, worker) :: _ :: _ ->
        let n = List.length ages in
        let median, _ = List.nth ages (n / 2) in
        let pct =
          if median <= 1e-6 then 100
          else int_of_float (Float.round (100.0 *. slowest /. median))
        in
        if pct <> !last_straggler_pct then begin
          last_straggler_pct := pct;
          emit bus (Event.Straggler { worker; ratio_pct = pct })
        end
      | _ -> ()
    end
  in
  let fallback reason =
    emit bus (Event.Dispatch_fallback { reason });
    let todo =
      List.filter_map
        (fun (i, _, _) -> if finished.(i) then None else Some i)
        !pending
    in
    (* close the dispatcher-side spans before handing over: the local
       backend opens its own "running" spans for these units *)
    List.iter (fun i -> close_span i ~ok:true) todo;
    pending := [];
    let results =
      Sweep.run
        (Sweep.Backend.local ?bus ?store ~jobs:fallback_jobs ())
        (List.map (fun i -> units.(i)) todo)
    in
    List.iter2 (fun i (r : Sweep.result) -> settle i r.outcome) todo results
  in
  if live () = [] then
    fallback
      (Printf.sprintf "no reachable workers among [%s]"
         (String.concat ", " (List.map addr_to_string se.se_addrs)))
  else begin
    while !done_count < n do
      let now = Unix.gettimeofday () in
      (* hand eligible units to free slots, input order first *)
      List.iter
        (fun w ->
          let continue = ref true in
          while
            !continue && w.w_fd <> None
            && Hashtbl.length w.w_inflight < w.w_slots
          do
            let rec pick acc = function
              | [] -> None
              | (i, attempt, at) :: tl when at <= now && not finished.(i) ->
                pending := List.rev_append acc tl;
                Some (i, attempt)
              | u :: tl -> pick (u :: acc) tl
            in
            match pick [] !pending with
            | None -> continue := false
            | Some (i, attempt) -> send_unit w ~stolen:false i attempt
          done)
        ws;
      (* the queue is drained: idle slots steal (duplicate) the oldest
         singly-held in-flight unit from another worker — a fast worker
         finishes it while a slow or wedged one is still grinding, and
         whichever result lands first settles the unit *)
      let now = Unix.gettimeofday () in
      if not (List.exists (fun (i, _, _) -> not finished.(i)) !pending) then
        List.iter
          (fun thief ->
            if
              thief.w_fd <> None
              && Hashtbl.length thief.w_inflight < thief.w_slots
            then begin
              let best = ref None in
              List.iter
                (fun victim ->
                  if victim != thief && victim.w_fd <> None then
                    Hashtbl.iter
                      (fun i (inf : inflight) ->
                        if
                          (not finished.(i))
                          && copies i = 1
                          && now -. inf.if_sent_at >= steal_fraction *. timeout
                        then
                          match !best with
                          | Some (_, _, (b : inflight))
                            when b.if_sent_at <= inf.if_sent_at ->
                            ()
                          | _ -> best := Some (victim, i, inf))
                      victim.w_inflight)
                ws;
              match !best with
              | None -> ()
              | Some (victim, i, { if_attempt = attempt; _ }) ->
                emit bus
                  (Event.Steal
                     {
                       unit_label = units.(i).Work.label;
                       from_worker = victim.w_addr;
                       to_worker = thief.w_addr;
                     });
                send_unit thief ~stolen:true i attempt
            end)
          ws;
      if !done_count >= n then ()
      else if live () = [] then fallback "all workers lost"
      else begin
        let lv = live () in
        let now = Unix.gettimeofday () in
        (* earliest moment anything can change: an in-flight deadline
           expiring or a backed-off unit becoming eligible *)
        let next_wake =
          List.fold_left
            (fun acc w ->
              Hashtbl.fold
                (fun _ (inf : inflight) acc -> min acc inf.if_deadline)
                w.w_inflight acc)
            (now +. 0.25) lv
        in
        let next_wake =
          List.fold_left
            (fun acc (i, _, at) -> if finished.(i) then acc else min acc at)
            next_wake !pending
        in
        let fds = List.filter_map (fun w -> w.w_fd) lv in
        (* watch for writability only where output is actually queued *)
        let wfds =
          List.filter_map
            (fun w -> if Queue.is_empty w.w_outbox then None else w.w_fd)
            lv
        in
        let ready, writable =
          match Unix.select fds wfds [] (max 0.01 (next_wake -. now)) with
          | r, wr, _ -> (r, wr)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
        in
        List.iter
          (fun w ->
            match w.w_fd with
            | Some fd when List.memq fd writable -> kick w
            | _ -> ())
          lv;
        List.iter
          (fun w ->
            match w.w_fd with
            | Some fd when List.memq fd ready -> drain w fd
            | _ -> ())
          lv;
        let now = Unix.gettimeofday () in
        List.iter
          (fun w ->
            if w.w_fd <> None then begin
              let expired =
                Hashtbl.fold
                  (fun i (inf : inflight) acc ->
                    if inf.if_deadline <= now then Some i else acc)
                  w.w_inflight None
              in
              match expired with
              | Some i ->
                lose_worker w
                  (Printf.sprintf "unit %s timed out" units.(i).Work.label)
              | None -> ()
            end)
          ws;
        (* the select above wakes at least every 0.25s, which paces these
           probes (and the straggler gauge) without a dedicated timer *)
        let now = Unix.gettimeofday () in
        keepalive_check now;
        straggler_check now
      end
    done
  end;
  List.mapi
    (fun i (u : Work.t) -> { Sweep.label = u.Work.label; outcome = outcomes.(i) })
    (Array.to_list units)

(* The one-shot dispatch is a session of exactly one round ([se_base]
   stays 0, so the wire ids — and with them every span and trace record —
   are unchanged from the pre-session dispatcher). *)
let run_remote ?bus ?fallback_jobs ?store ?keepalive_idle ?keepalive_misses
    ~workers ~timeout ~retries works =
  let se =
    open_session ?bus ?fallback_jobs ?store ?keepalive_idle ?keepalive_misses
      ~timeout ~retries workers
  in
  Fun.protect
    ~finally:(fun () -> close_session se)
    (fun () -> session_run se works)

let remote ?bus ?fallback_jobs ?store ?keepalive_idle ?keepalive_misses
    ?(timeout = 60.0) ?(retries = 2) workers : Sweep.Backend.t =
  {
    Sweep.Backend.name =
      Printf.sprintf "remote:%s"
        (String.concat "," (List.map addr_to_string workers));
    dispatch =
      run_remote ?bus ?fallback_jobs ?store ?keepalive_idle ?keepalive_misses
        ~workers ~timeout ~retries;
    session =
      (fun () ->
        let se =
          open_session ?bus ?fallback_jobs ?store ?keepalive_idle
            ?keepalive_misses ~timeout ~retries workers
        in
        {
          Sweep.Backend.s_dispatch = (fun works -> session_run se works);
          s_close = (fun () -> close_session se);
        });
  }

let backend ?bus ?fallback_jobs ?store spec : Sweep.Backend.t =
  match spec with
  | Serial -> Sweep.Backend.serial ?bus ?store ()
  | Local { jobs } -> Sweep.Backend.local ?bus ?store ~jobs ()
  | Domains { jobs } -> Sweep.Backend.domains ?bus ?store ~jobs ()
  | Remote { workers; timeout; retries } ->
    remote ?bus ?fallback_jobs ?store ~timeout ~retries workers
