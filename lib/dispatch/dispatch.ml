module B = Darco_sampling.Buf
module Sweep = Darco_sampling.Sweep
module Work = Darco_sampling.Work
module Jsonx = Darco_obs.Jsonx
module Bus = Darco_obs.Bus
module Event = Darco_obs.Event

type addr = { host : string; port : int }

let addr_to_string a = Printf.sprintf "%s:%d" a.host a.port

let addr_of_string s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "worker address %S is not HOST:PORT" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 && host <> "" -> Ok { host; port = p }
    | _ -> Error (Printf.sprintf "worker address %S is not HOST:PORT" s))

type spec =
  | Local of { jobs : int }
  | Remote of { workers : addr list; timeout : float; retries : int }

let spec_of_string ?(jobs = 4) ?(timeout = 60.0) ?(retries = 2) s =
  let prefix p =
    String.length s > String.length p
    && String.sub s 0 (String.length p) = p
  in
  if s = "local" then Ok (Local { jobs })
  else if prefix "local:" then begin
    match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some j when j >= 1 -> Ok (Local { jobs = j })
    | _ -> Error (Printf.sprintf "bad backend %S: expected local:JOBS" s)
  end
  else if prefix "remote:" then begin
    let rest = String.sub s 7 (String.length s - 7) in
    let parts = String.split_on_char ',' rest in
    let rec collect acc = function
      | [] -> Ok (Remote { workers = List.rev acc; timeout; retries })
      | p :: tl -> (
        match addr_of_string (String.trim p) with
        | Ok a -> collect (a :: acc) tl
        | Error e -> Error e)
    in
    collect [] parts
  end
  else
    Error
      (Printf.sprintf
         "bad backend %S: expected local:JOBS or remote:HOST:PORT[,HOST:PORT...]"
         s)

(* --- the dispatcher ----------------------------------------------------- *)

(* Base delay before a unit bounced off a dead worker is eligible again;
   doubles per attempt (0.2s, 0.4s, 0.8s, ...). *)
let backoff_base = 0.2

type worker_state = {
  w_addr : string;
  mutable w_fd : Unix.file_descr option;
  (* unit index, attempt number, absolute per-unit deadline *)
  mutable w_busy : (int * int * float) option;
}

let emit bus ev = Option.iter (fun b -> Bus.emit b ~at:0 ev) bus

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Non-blocking connect bounded by [timeout] seconds, then the Hello
   handshake bounded by the same budget. *)
let connect_worker ~bus ~timeout (a : addr) =
  let name = addr_to_string a in
  let fail fd reason =
    Option.iter close_quietly fd;
    emit bus (Event.Worker_lost { worker = name; reason });
    None
  in
  match Worker.resolve a.host with
  | exception Invalid_argument m -> fail None m
  | inet -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    let sockaddr = Unix.ADDR_INET (inet, a.port) in
    let deadline = Unix.gettimeofday () +. timeout in
    let connected =
      match Unix.connect fd sockaddr with
      | () -> true
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
        -> (
        match Unix.select [] [ fd ] [] timeout with
        | _, [ _ ], _ -> Unix.getsockopt_error fd = None
        | _ -> false)
      | exception Unix.Unix_error _ -> false
    in
    if not connected then fail (Some fd) "connection refused or timed out"
    else begin
      Unix.clear_nonblock fd;
      match
        Wire.send fd (Wire.Hello Wire.protocol_version);
        Wire.recv ~deadline fd
      with
      | Wire.Hello v when v = Wire.protocol_version ->
        emit bus (Event.Worker_up { worker = name });
        Some { w_addr = name; w_fd = Some fd; w_busy = None }
      | Wire.Hello v ->
        fail (Some fd) (Printf.sprintf "protocol version mismatch (worker speaks %d)" v)
      | Wire.Fail m -> fail (Some fd) m
      | _ -> fail (Some fd) "unexpected handshake reply"
      | exception Wire.Timeout -> fail (Some fd) "handshake timed out"
      | exception Wire.Closed -> fail (Some fd) "connection closed during handshake"
      | exception B.Corrupt m -> fail (Some fd) ("malformed handshake: " ^ m)
    end)

let run_remote ?bus ?(fallback_jobs = 4) ~workers ~timeout ~retries works =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let units = Array.of_list works in
  let n = Array.length units in
  let outcomes = Array.make n (Sweep.Failed "not dispatched") in
  let finished = Array.make n false in
  let done_count = ref 0 in
  let settle i outcome =
    if not finished.(i) then begin
      outcomes.(i) <- outcome;
      finished.(i) <- true;
      incr done_count
    end
  in
  (* (unit index, attempt, earliest re-dispatch time), input order *)
  let pending = ref (List.init n (fun i -> (i, 0, 0.0))) in
  let requeue (i, attempt) reason =
    let label = units.(i).Work.label in
    if attempt >= retries then
      settle i
        (Sweep.Failed
           (Printf.sprintf "gave up after %d attempts (last: %s)" (attempt + 1)
              reason))
    else begin
      let delay = backoff_base *. (2.0 ** float_of_int attempt) in
      emit bus
        (Event.Dispatch_retry { unit_label = label; attempt = attempt + 1; delay });
      pending := !pending @ [ (i, attempt + 1, Unix.gettimeofday () +. delay) ]
    end
  in
  let lose_worker w reason =
    emit bus (Event.Worker_lost { worker = w.w_addr; reason });
    Option.iter close_quietly w.w_fd;
    w.w_fd <- None;
    match w.w_busy with
    | None -> ()
    | Some (i, attempt, _) ->
      w.w_busy <- None;
      requeue (i, attempt) reason
  in
  let ws = List.filter_map (connect_worker ~bus ~timeout) workers in
  let live () = List.filter (fun w -> w.w_fd <> None) ws in
  let fallback reason =
    emit bus (Event.Dispatch_fallback { reason });
    let todo =
      List.filter_map
        (fun (i, _, _) -> if finished.(i) then None else Some i)
        !pending
    in
    pending := [];
    let results =
      Sweep.run
        (Sweep.Backend.local ~jobs:fallback_jobs ())
        (List.map (fun i -> units.(i)) todo)
    in
    List.iter2 (fun i (r : Sweep.result) -> settle i r.outcome) todo results
  in
  if live () = [] then
    fallback
      (Printf.sprintf "no reachable workers among [%s]"
         (String.concat ", " (List.map addr_to_string workers)))
  else begin
    while !done_count < n do
      let now = Unix.gettimeofday () in
      (* hand eligible units to idle live workers, input order first *)
      List.iter
        (fun w ->
          if w.w_fd <> None && w.w_busy = None then begin
            let rec pick acc = function
              | [] -> None
              | (i, attempt, at) :: tl when at <= now && not finished.(i) ->
                pending := List.rev_append acc tl;
                Some (i, attempt)
              | u :: tl -> pick (u :: acc) tl
            in
            match pick [] !pending with
            | None -> ()
            | Some (i, attempt) -> (
              let fd = Option.get w.w_fd in
              emit bus
                (Event.Dispatch_sent
                   {
                     unit_label = units.(i).Work.label;
                     worker = w.w_addr;
                     attempt;
                   });
              match Wire.send fd (Wire.Work (Work.to_string units.(i))) with
              | () -> w.w_busy <- Some (i, attempt, now +. timeout)
              | exception (Wire.Closed | Unix.Unix_error _) ->
                (* lose_worker would double-requeue: the unit was never
                   marked busy, so requeue it directly *)
                emit bus
                  (Event.Worker_lost { worker = w.w_addr; reason = "send failed" });
                Option.iter close_quietly w.w_fd;
                w.w_fd <- None;
                requeue (i, attempt) "send failed")
          end)
        ws;
      if !done_count >= n then ()
      else if live () = [] then fallback "all workers lost"
      else begin
        let busy = List.filter (fun w -> w.w_busy <> None) (live ()) in
        (* earliest moment anything can change: a unit deadline expiring or
           a backed-off unit becoming eligible *)
        let next_wake =
          List.fold_left
            (fun acc w ->
              match w.w_busy with
              | Some (_, _, dl) -> min acc dl
              | None -> acc)
            (now +. 1.0) busy
        in
        let next_wake =
          List.fold_left
            (fun acc (i, _, at) -> if finished.(i) then acc else min acc at)
            next_wake !pending
        in
        if busy = [] then begin
          (* only backed-off units remain; sleep until one is eligible *)
          let pause = max 0.01 (min 0.5 (next_wake -. now)) in
          Unix.sleepf pause
        end
        else begin
          let fds = List.map (fun w -> Option.get w.w_fd) busy in
          let ready =
            match Unix.select fds [] [] (max 0.01 (next_wake -. now)) with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          List.iter
            (fun w ->
              match (w.w_fd, w.w_busy) with
              | Some fd, Some (i, attempt, dl) when List.memq fd ready -> (
                match Wire.recv ~deadline:dl fd with
                | Wire.Result text -> (
                  w.w_busy <- None;
                  match Jsonx.parse text with
                  | json ->
                    emit bus
                      (Event.Dispatch_done
                         {
                           unit_label = units.(i).Work.label;
                           worker = w.w_addr;
                           ok = true;
                         });
                    settle i (Sweep.Ok json)
                  | exception Jsonx.Parse_error m ->
                    (* the frame passed its CRC, so this is the worker
                       misbehaving, not the network: drop it and retry *)
                    w.w_busy <- Some (i, attempt, dl);
                    lose_worker w ("unparseable result: " ^ m))
                | Wire.Fail reason ->
                  (* the unit itself failed over a healthy connection —
                     deterministic, so retrying elsewhere would not help *)
                  w.w_busy <- None;
                  emit bus
                    (Event.Dispatch_done
                       {
                         unit_label = units.(i).Work.label;
                         worker = w.w_addr;
                         ok = false;
                       });
                  settle i (Sweep.Failed reason)
                | Wire.Hello _ | Wire.Ping | Wire.Pong | Wire.Work _ ->
                  lose_worker w "protocol violation"
                | exception Wire.Closed -> lose_worker w "connection closed mid-unit"
                | exception Wire.Timeout -> lose_worker w "work unit timed out"
                | exception B.Corrupt m -> lose_worker w ("malformed frame: " ^ m))
              | Some _, Some (_, _, dl) when dl <= Unix.gettimeofday () ->
                lose_worker w "work unit timed out"
              | _ -> ())
            busy
        end
      end
    done;
    List.iter (fun w -> Option.iter close_quietly w.w_fd) ws
  end;
  List.mapi
    (fun i (u : Work.t) -> { Sweep.label = u.Work.label; outcome = outcomes.(i) })
    (Array.to_list units)

let remote ?bus ?fallback_jobs ?(timeout = 60.0) ?(retries = 2) workers :
    Sweep.Backend.t =
  {
    Sweep.Backend.name =
      Printf.sprintf "remote:%s"
        (String.concat "," (List.map addr_to_string workers));
    dispatch = run_remote ?bus ?fallback_jobs ~workers ~timeout ~retries;
  }

let backend ?bus ?fallback_jobs spec : Sweep.Backend.t =
  match spec with
  | Local { jobs } -> Sweep.Backend.local ~jobs ()
  | Remote { workers; timeout; retries } ->
    remote ?bus ?fallback_jobs ~timeout ~retries workers
