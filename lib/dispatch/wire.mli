(** The dispatch wire protocol: length-prefixed, CRC-framed messages over a
    stream socket.

    Every frame is [tag4 | payload length (i64 LE) | CRC-32 of payload
    (i64 LE) | payload] — the same framing discipline as the DSNP snapshot
    container, so a bit flip, truncation or desynchronized stream surfaces
    as a clean {!Darco_sampling.Buf.Corrupt}, never a crash or a silently
    wrong sample.

    Protocol version 5.  The dispatcher opens a connection per worker and
    handshakes with [Hello]; the worker's [Hello] reply advertises how many
    units it can run concurrently ([slots], its [-j] value).  Work units
    are {b multiplexed}: each [Work] frame carries a dispatcher-chosen [id]
    and the worker may hold several in flight, answering each with one
    [Result] or [Fail] carrying the same [id] ([id = -1] marks a
    connection-level [Fail] that is about no particular unit).

    Version-2 work units reference their checkpoint by digest instead of
    embedding it; a worker missing the checkpoint asks once with [Need] and
    the dispatcher answers with one [Ckpt] carrying the bytes, which the
    worker caches for the rest of the sweep.  Version 3 adds a span log
    to every [Result]: the worker's {!Darco_obs.Span} records for the
    unit ({!Darco_obs.Span.encode_list}; may be empty), which the
    dispatcher merges into its own bus so one trace carries the
    cross-machine timeline.  [recv] verifies a [Ckpt]
    frame's bytes against its claimed digest, so a wrong or tampered
    checkpoint is rejected at the wire, before it can reach the store.

    Version 4 adds the campaign-service frames ([Submit]/[Status]/
    [Artifact]/[Done]) spoken between sweep clients and a [darco serve]
    daemon ({!Darco_serve}); the worker protocol is unchanged.  Versions
    negotiate downward: a server answers a peer's [Hello {version}] with
    [min version protocol_version] and speaks that, rejecting peers below
    {!min_version} with a connection-level [Fail] — so a v3 client
    against a v4 server (or the reverse) still completes the v3
    conversation.

    Version 5 adds live telemetry: [Metrics] (METR) scrapes the serve
    daemon's registry snapshot and [Health] (HLTH) its liveness/readiness
    document, both carrying one JSON string (a client sends the frame
    with [json = ""], the server replies with it filled).  [Status]
    replies additionally carry the daemon's uptime and build version as
    an optional payload tail: a default-valued ([uptime_s = 0],
    [version = ""]) Status encodes byte-identically to its v4 form, and
    a v4 Status decodes with the defaults — so the committed v4 golden
    fixtures still hold on both sides.

    [send]/[recv] are safe on non-blocking sockets: partial reads and
    writes and [EAGAIN]/[EWOULDBLOCK] park in [select] (bounded by
    [deadline] when given) and resume, so a multiplexing peer never busy
    loops or tears a frame. *)

exception Timeout
(** A [deadline] passed mid-frame. *)

exception Closed
(** Peer closed the connection (EOF, ECONNRESET, EPIPE). *)

val protocol_version : int

val min_version : int
(** Oldest peer version still accepted by handshakes (see negotiation
    above); peers advertising less are failed and disconnected. *)

val max_frame : int
(** Upper bound on accepted payload sizes; larger length fields are
    rejected as corrupt before any allocation. *)

type msg =
  | Hello of { version : int; slots : int }
      (** handshake; the worker's reply advertises its concurrency in
          [slots] (the dispatcher sends [slots = 0]) *)
  | Ping
  | Pong
  | Work of { id : int; unit_ : string }
      (** an encoded {!Darco_sampling.Work.t}, tagged with the
          dispatcher's unit id *)
  | Result of { id : int; text : string; spans : string }
      (** the unit's JSON result text, plus the worker's encoded span log
          for the unit ({!Darco_obs.Span.encode_list}; possibly empty) *)
  | Fail of { id : int; reason : string }
      (** unit [id] failed on the worker; [id = -1] means the connection
          itself is being failed (protocol error, version mismatch) *)
  | Need of { digest : string }
      (** worker-to-dispatcher: ship me this checkpoint (sent at most once
          per digest per connection) *)
  | Ckpt of { digest : string; bytes : string }
      (** dispatcher-to-worker: the checkpoint content for [digest] *)
  | Submit of { id : int; sweep : string }
      (** client-to-server (v4): run this encoded {!Darco_serve.Campaign}
          sweep; [id] is a client-chosen submission handle echoed in every
          reply about it *)
  | Status of {
      id : int;
      state : string;
      done_ : int;
      total : int;
      hits : int;
      dispatched : int;
      uptime_s : int;
      version : string;
    }
      (** server-to-client (v4): progress of submission [id] ([done_] of
          [total] windows, [hits] served without dispatching, [dispatched]
          work units this submission put on the fleet).  A client sends
          [Status {id = -1; _}] to ask for service-wide counters.  To v5
          clients the reply also carries the daemon's [uptime_s] and build
          [version] (both default — 0, [""] — in requests and in v4
          conversations). *)
  | Artifact of { id : int; key : string; json : string }
      (** server-to-client (v4): one finished window artifact of
          submission [id] ([json = ""] marks a failed window, or a fetch
          miss).  A client sends [Artifact {id = offset; key = <encoded
          campaign>; json = ""}] to fetch one window from the library
          without submitting. *)
  | Done of { id : int; json : string }
      (** server-to-client (v4): submission [id] finished; [json] is the
          complete sweep document, byte-identical to what [darco sample
          --json] writes for the same parameters *)
  | Metrics of { json : string }
      (** v5 scrape: the serve daemon's live registry snapshot
          ({!Darco_obs.Registry.to_json}); a client sends [json = ""] to
          ask, the server replies with it filled *)
  | Health of { json : string }
      (** v5 liveness/readiness: uptime, version, per-worker keepalive
          state, queue depths, in-flight campaigns with planner CI
          progress, and library occupancy/hit-rate; request/reply
          convention as [Metrics] *)

val encode : msg -> string
(** The frame's exact wire bytes.  For callers that keep their own write
    queue (the dispatcher's per-worker outbox): write the string with
    ordinary non-blocking [write]s, resuming at the recorded offset —
    never interleave bytes of two frames on one socket. *)

val send : ?deadline:float -> Unix.file_descr -> msg -> unit
(** Write one frame, handling short writes, [EINTR] and — on non-blocking
    sockets — [EAGAIN] (parks in [select] until writable).  Raises
    {!Closed} if the peer is gone, {!Timeout} if [deadline] passes while
    blocked. *)

val recv : ?deadline:float -> Unix.file_descr -> msg
(** Read one frame, handling partial reads and [EAGAIN] the same way.
    [deadline] is an absolute [Unix.gettimeofday] time applied to every
    blocking step; raises {!Timeout} when it passes, {!Closed} on EOF,
    {!Darco_sampling.Buf.Corrupt} on a malformed frame (including a [Ckpt]
    whose bytes do not hash to its claimed digest). *)
