(** The dispatch wire protocol: length-prefixed, CRC-framed messages over a
    stream socket.

    Every frame is [tag4 | payload length (i64 LE) | CRC-32 of payload
    (i64 LE) | payload] — the same framing discipline as the DSNP snapshot
    container, so a bit flip, truncation or desynchronized stream surfaces
    as a clean {!Darco_sampling.Buf.Corrupt}, never a crash or a silently
    wrong sample.

    The conversation is deliberately tiny.  The dispatcher opens a
    connection per worker and handshakes with [Hello protocol_version]
    (the worker echoes it); thereafter each work unit is one [Work]
    request answered by exactly one [Result] (JSON text) or [Fail]
    (human-readable reason).  [Ping]/[Pong] checks liveness between
    units. *)

exception Timeout
(** A [deadline] passed mid-frame. *)

exception Closed
(** Peer closed the connection (EOF, ECONNRESET, EPIPE). *)

val protocol_version : int

val max_frame : int
(** Upper bound on accepted payload sizes; larger length fields are
    rejected as corrupt before any allocation. *)

type msg =
  | Hello of int      (** protocol version handshake, echoed by the worker *)
  | Ping
  | Pong
  | Work of string    (** an encoded {!Darco_sampling.Work.t} *)
  | Result of string  (** the unit's JSON result text *)
  | Fail of string    (** the unit failed on the worker; reason *)

val send : Unix.file_descr -> msg -> unit
(** Write one frame, handling short writes and [EINTR].
    Raises {!Closed} if the peer is gone. *)

val recv : ?deadline:float -> Unix.file_descr -> msg
(** Read one frame.  [deadline] is an absolute [Unix.gettimeofday] time
    applied to every blocking step; raises {!Timeout} when it passes,
    {!Closed} on EOF, {!Darco_sampling.Buf.Corrupt} on a malformed
    frame. *)
