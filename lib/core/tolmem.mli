open Darco_guest

(** Allocator for the software layer's data that lives in the co-designed
    address space above {!Darco_guest.Loader.tol_base}: profiling counters,
    edge counters and the IBTC.  Translated code addresses this storage with
    ordinary loads/stores (so the timing simulator sees the accesses), while
    the TOL itself reads/writes it with privileged accessors.  State
    validation ignores this range. *)

type t

val create : Memory.t -> t
(** Pages are installed into the given (fault-policy) memory on demand. *)

val brk : t -> int
(** Current allocation break (for snapshots). *)

val restore : Memory.t -> brk:int -> t
(** Rebuild the allocator over an already-populated memory image; [brk]
    must come from {!brk} of the captured allocator so future allocations
    continue at the same addresses. *)

val alloc : t -> int -> int
(** [alloc t bytes] returns the address of a fresh zeroed block (4-byte
    aligned). *)

val read32 : t -> int -> int
val write32 : t -> int -> int -> unit
