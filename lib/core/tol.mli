open Darco_guest
open Darco_host

(** The Translation Optimization Layer runtime: the dispatch loop tying
    together the interpreter (IM), the basic-block translator (BBM), the
    superblock optimizer (SBM), the code cache and the host emulator.

    This is the software half of the co-designed component.  [run_slice]
    advances guest execution until an event only the controller can resolve
    (system call, page fault / data request, end of application) or a
    validation checkpoint.

    Observability: every lifecycle step (slice boundaries, translations,
    chain/IBTC activity, rollbacks, deopt rebuilds, page installs,
    syscalls) is published as a typed event on the bus passed to
    {!create}, and the retired host application stream flows to the bus's
    retire subscribers (the timing simulator attaches there).  With no
    sinks and no subscribers the bus costs nothing on the hot path. *)

type event =
  | Ev_syscall of int        (** EIP of the pending syscall instruction *)
  | Ev_halt
  | Ev_page_fault of int     (** data request for a page index *)
  | Ev_checkpoint            (** the guest-instruction slice budget elapsed *)

type t = {
  mutable cfg : Config.t;
      (** mutable so the warm-up methodology can downscale promotion
          thresholds mid-run *)
  stats : Stats.t;
  bus : Darco_obs.Bus.t;     (** the observability spine of this component *)
  cpu : Cpu.t;               (** emulated guest architectural state *)
  mem : Memory.t;            (** emulated guest memory (fault policy) *)
  machine : Machine.t;
  icache : Step.icache;
  profile : Profile.t;
  tolmem : Tolmem.t;
  codecache : Codecache.t;
  fails : (int, int) Hashtbl.t;
      (** speculation rollbacks per region id *)
  deopt : (int, bool * bool) Hashtbl.t;
      (** per-PC rebuild downgrades: (no asserts, no memory speculation) *)
}

val create : ?bus:Darco_obs.Bus.t -> Config.t -> Cpu.t -> t
(** [create cfg initial_state] — the initial architectural state comes from
    the controller (which received it from the x86 component).  Attach
    sinks to [bus] before calling to capture initialization events. *)

val retired : t -> int
(** Guest instructions retired by the co-designed component so far (the
    event timestamp clock). *)

val run_slice : t -> event

val interpret_one : t -> unit
(** Safety-net interpretation of the single instruction at EIP. *)

val service_complete_syscall : t -> Syscall.effect list -> len:int -> unit
(** Apply the effects of a syscall the x86 component executed, and advance
    EIP past the syscall instruction. *)

val install_page : t -> int -> Bytes.t -> unit
(** Satisfy a data request with a page image from the x86 component. *)
