open Darco_guest
module Bus = Darco_obs.Bus
module Event = Darco_obs.Event

let step_bb (bus : Bus.t) (cfg : Config.t) (stats : Stats.t) profile icache cpu mem =
  let entry = cpu.Cpu.eip in
  let costs = cfg.costs in
  (* Per-instruction work is batched per block so the hot loop touches the
     counters (and the bus) once, not per instruction. *)
  let insns = ref 0 in
  let profiled = ref false in
  let finish_bb () =
    ignore (Profile.note_interp profile entry);
    profiled := true
  in
  let apply () =
    let cost =
      (costs.interp_per_insn * !insns)
      + if !profiled then costs.interp_profile_bb else 0
    in
    stats.guest_im <- stats.guest_im + !insns;
    Stats.charge stats Ov_interp cost;
    if (!insns > 0 || !profiled) && Bus.active bus then
      Bus.emit bus
        ~at:(Stats.guest_total stats)
        (Event.Interp_block { pc = entry; insns = !insns; cost })
  in
  let rec loop () =
    let r = Step.step icache cpu mem in
    match r.control with
    | Trap_syscall -> `Syscall
    | Trap_halt ->
      incr insns;
      finish_bb ();
      `Halt
    | Next ->
      incr insns;
      loop ()
    | Cond_branch _ | Uncond _ | Indirect _ ->
      incr insns;
      finish_bb ();
      `Next
  in
  (* A page fault mid-block must still account the instructions that
     completed before it (the state stays consistent for the retry). *)
  let res = try loop () with e -> apply (); raise e in
  apply ();
  res

let step_one (bus : Bus.t) (cfg : Config.t) (stats : Stats.t) icache cpu mem =
  let pc = cpu.Cpu.eip in
  let r = Step.step icache cpu mem in
  (match r.control with
  | Trap_syscall | Trap_halt -> invalid_arg "Interp.step_one: trapping instruction"
  | Next | Cond_branch _ | Uncond _ | Indirect _ -> ());
  stats.guest_im <- stats.guest_im + 1;
  Stats.charge stats Ov_interp cfg.costs.interp_per_insn;
  if Bus.active bus then
    Bus.emit bus
      ~at:(Stats.guest_total stats)
      (Event.Interp_exec { pc; cost = cfg.costs.interp_per_insn })
