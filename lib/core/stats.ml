(* The statistics record moved into the observability library so the
   aggregator sink can rebuild it from the event stream; re-exported here
   so the rest of the system keeps addressing it as [Darco.Stats]. *)
include Darco_obs.Stats
