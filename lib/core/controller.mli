open Darco_guest

(** The controller: DARCO's main user interface.

    Owns both components — the authoritative x86 component (reference
    interpreter) and the co-designed component (TOL + host emulator) — and
    implements the three-phase execution flow of the paper: initialization
    (ships the initial architectural state to the co-designed component),
    execution, and synchronization on the three events (data request,
    system call, end of application).  It also validates the emulated
    architectural and memory state against the authoritative one. *)

type divergence = {
  at_retired : int;        (** guest instructions retired when detected *)
  details : string list;   (** human-readable state differences *)
}

type t = {
  cfg : Config.t;
  reference : Interp_ref.t;
  co : Tol.t;
  mutable divergence : divergence option;
  mutable validate_at_checkpoints : bool;
  mutable validate_memory : bool;
}

val create :
  ?cfg:Config.t -> ?bus:Darco_obs.Bus.t -> ?input:string -> seed:int -> Program.t -> t
(** [bus] is the observability spine of the co-designed component: attach
    event sinks (trace writer, aggregator) and retire subscribers (timing
    simulator) to it {e before} calling, so initialization events are
    captured too.  Defaults to a fresh bus with no sinks (zero overhead). *)

val create_at :
  ?cfg:Config.t ->
  ?bus:Darco_obs.Bus.t ->
  ?input:string ->
  seed:int ->
  Program.t ->
  start:int ->
  t
(** Like {!create}, but the x86 component first executes [start] guest
    instructions and the co-designed component is initialized from that
    architectural state — the fast-forward step of sampling-based
    simulation (the warm-up methodology study). *)

val of_reference : ?cfg:Config.t -> ?bus:Darco_obs.Bus.t -> Interp_ref.t -> t
(** Adopt an already-advanced x86 component (e.g. restored from a
    checkpoint, see [Darco_sampling]) and initialize a cold co-designed
    component from its architectural state.  [create_at ~start] is
    equivalent to booting a reference, running it to [start] and calling
    this. *)

val bus : t -> Darco_obs.Bus.t
(** The co-designed component's event bus. *)

val run : ?max_insns:int -> t -> [ `Done | `Diverged of divergence | `Limit ]
(** Drive the co-designed component to completion, servicing
    synchronization events.  [`Diverged] reports the first failed state
    validation (execution stops there). *)

val validate : t -> ?memory:bool -> unit -> divergence option
(** Synchronize the x86 component to the co-designed point and compare
    architectural state (and the co-designed memory image when
    [memory]). *)

val stats : t -> Stats.t
val output : t -> string
(** Guest program output (authoritative side). *)

val exit_code : t -> int option
