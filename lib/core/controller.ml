open Darco_guest
module Bus = Darco_obs.Bus
module Event = Darco_obs.Event

type divergence = { at_retired : int; details : string list }

type t = {
  cfg : Config.t;
  reference : Interp_ref.t;
  co : Tol.t;
  mutable divergence : divergence option;
  mutable validate_at_checkpoints : bool;
  mutable validate_memory : bool;
}

let of_reference ?(cfg = Config.default) ?bus (reference : Interp_ref.t) =
  let bus = match bus with Some b -> b | None -> Bus.create () in
  (* Initialization phase: the co-designed component receives the (possibly
     fast-forwarded) x86 architectural state; its memory starts empty and
     fills through data requests. *)
  let co = Tol.create ~bus cfg reference.cpu in
  (* Keep the retired-instruction clocks aligned for synchronization. *)
  co.stats.guest_im <- reference.retired;
  if reference.retired > 0 && Bus.active bus then
    Bus.emit bus ~at:reference.retired
      (Event.Clock_sync { retired = reference.retired });
  {
    cfg;
    reference;
    co;
    divergence = None;
    validate_at_checkpoints = false;
    validate_memory = false;
  }

let create_at ?cfg ?bus ?input ~seed program ~start =
  let reference = Interp_ref.boot ?input ~seed program in
  if start > 0 then Interp_ref.run_until reference start;
  of_reference ?cfg ?bus reference

let create ?cfg ?bus ?input ~seed program =
  create_at ?cfg ?bus ?input ~seed program ~start:0

let bus t = t.co.Tol.bus

let emit t ev =
  if Bus.active t.co.Tol.bus then
    Bus.emit t.co.Tol.bus ~at:(Tol.retired t.co) ev

let note_validation t kind =
  t.co.Tol.stats.validations <- t.co.Tol.stats.validations + 1;
  emit t (Event.Validation { kind })

let catch_up t = Interp_ref.run_until t.reference (Tol.retired t.co)

let compare_states t ~memory =
  let details = Cpu.diff t.reference.cpu t.co.cpu in
  let details =
    if not memory then details
    else
      List.fold_left
        (fun acc idx ->
          if Memory.page_base idx >= Loader.tol_base then acc
          else if Memory.equal_page t.reference.mem t.co.mem idx then acc
          else Printf.sprintf "memory page 0x%x differs" (Memory.page_base idx) :: acc)
        details
        (Memory.touched_pages t.co.mem)
  in
  match details with
  | [] -> None
  | _ -> Some { at_retired = Tol.retired t.co; details }

let validate t ?(memory = false) () =
  catch_up t;
  note_validation t Event.V_explicit;
  compare_states t ~memory

let stats t = t.co.stats
let output t = Interp_ref.output t.reference
let exit_code t = t.reference.exit_code

let ensure_co_pages t addr len =
  let first = Memory.page_index addr in
  let last = Memory.page_index (addr + max 0 (len - 1)) in
  for idx = first to last do
    if not (Memory.has_page t.co.mem idx) then
      Tol.install_page t.co idx (Memory.get_page t.reference.mem idx)
  done

let run ?(max_insns = max_int) t =
  let note_divergence d =
    t.divergence <- Some d;
    emit t (Event.Divergence { details = d.details });
    `Diverged d
  in
  let rec loop () =
    if Tol.retired t.co >= max_insns then `Limit
    else
      match Tol.run_slice t.co with
      | Tol.Ev_page_fault idx ->
        catch_up t;
        Tol.install_page t.co idx (Memory.get_page t.reference.mem idx);
        loop ()
      | Tol.Ev_syscall _pc -> begin
        catch_up t;
        match compare_states t ~memory:false with
        | Some d -> note_divergence d
        | None ->
          note_validation t Event.V_syscall;
          let effects = Interp_ref.service_syscall t.reference in
          List.iter
            (fun (e : Syscall.effect) ->
              match e with
              | Syscall.Mem_write (addr, data) ->
                ensure_co_pages t addr (Bytes.length data)
              | Syscall.Set_reg _ | Syscall.Exit _ -> ())
            effects;
          Tol.service_complete_syscall t.co effects ~len:1;
          loop ()
      end
      | Tol.Ev_halt -> begin
        catch_up t;
        note_validation t Event.V_halt;
        match compare_states t ~memory:true with
        | Some d -> note_divergence d
        | None ->
          emit t Event.Halt;
          `Done
      end
      | Tol.Ev_checkpoint ->
        if t.validate_at_checkpoints then begin
          catch_up t;
          note_validation t Event.V_checkpoint;
          match compare_states t ~memory:t.validate_memory with
          | Some d -> note_divergence d
          | None -> loop ()
        end
        else loop ()
  in
  loop ()
