open Darco_host
module Bus = Darco_obs.Bus
module Event = Darco_obs.Event

(* Host code addresses live in their own region of the address space,
   disjoint from guest data and TOL data. *)
let code_base = 0xC000_0000

type t = {
  tolmem : Tolmem.t;
  stats : Stats.t;
  bus : Bus.t;
  by_pc : (int, Code.region list) Hashtbl.t;
  by_base : (int, Code.region) Hashtbl.t;
  (* region id -> direct-threaded closure chain; compiled on first
     execution, dropped when the region dies *)
  tcode : (int, Threaded.compiled) Hashtbl.t;
  mutable next_id : int;
  mutable next_base : int;
  mutable total_insns : int;
  ibtc_base : int;
  ibtc_entries : int;
}

let create ?(bus = Bus.create ()) (cfg : Config.t) tolmem stats =
  let entries = 1 lsl cfg.ibtc_bits in
  {
    tolmem;
    stats;
    bus;
    by_pc = Hashtbl.create 256;
    by_base = Hashtbl.create 256;
    tcode = Hashtbl.create 256;
    next_id = 0;
    next_base = code_base;
    total_insns = 0;
    ibtc_base = Tolmem.alloc tolmem (8 * entries);
    ibtc_entries = entries;
  }

let ibtc_base t = t.ibtc_base

let ibtc_clear_entry t i =
  Tolmem.write32 t.tolmem (t.ibtc_base + (8 * i)) 0xFFFFFFFF;
  Tolmem.write32 t.tolmem (t.ibtc_base + (8 * i) + 4) 0

let flush t =
  let regions = Hashtbl.length t.by_base and host_insns = t.total_insns in
  Hashtbl.iter (fun _ (r : Code.region) -> r.invalidated <- true) t.by_base;
  Hashtbl.reset t.by_pc;
  Hashtbl.reset t.by_base;
  Hashtbl.reset t.tcode;
  t.total_insns <- 0;
  for i = 0 to t.ibtc_entries - 1 do
    ibtc_clear_entry t i
  done;
  t.stats.code_cache_flushes <- t.stats.code_cache_flushes + 1;
  if Bus.active t.bus then
    Bus.emit t.bus
      ~at:(Stats.guest_total t.stats)
      (Event.Cache_flush { regions; host_insns })

let register t (r : Code.region) =
  let existing = Option.value (Hashtbl.find_opt t.by_pc r.entry_pc) ~default:[] in
  Hashtbl.replace t.by_pc r.entry_pc (r :: existing);
  Hashtbl.replace t.by_base r.base r;
  t.total_insns <- t.total_insns + Array.length r.code

let insert t (cfg : Config.t) (rir : Regionir.t) =
  let alloc = Regalloc.allocate rir in
  let spill_base =
    if alloc.slot_count = 0 then 0 else Tolmem.alloc t.tolmem (8 * alloc.slot_count)
  in
  let code, _exits = Codegen.lower cfg rir ~alloc ~spill_base ~ibtc_base:t.ibtc_base in
  if t.total_insns + Array.length code > cfg.code_cache_capacity then flush t;
  let region =
    {
      Code.id = t.next_id;
      entry_pc = rir.entry_pc;
      mode = rir.mode;
      base = t.next_base;
      code;
      incoming = [];
      invalidated = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.next_base <- t.next_base + (4 * Array.length code);
  register t region;
  region

let find t ?(prefer_bb = false) pc =
  match Hashtbl.find_opt t.by_pc pc with
  | None -> None
  | Some regions -> (
    let alive = List.filter (fun (r : Code.region) -> not r.invalidated) regions in
    let pick mode = List.find_opt (fun (r : Code.region) -> r.mode = mode) alive in
    match if prefer_bb then pick `Bb else pick `Super with
    | Some r -> Some r
    | None -> ( match alive with r :: _ -> Some r | [] -> None))

let resolve_base t base = Hashtbl.find_opt t.by_base base

let compiled t (r : Code.region) =
  match Hashtbl.find_opt t.tcode r.id with
  | Some c -> c
  | None ->
    let c = Threaded.compile r in
    Hashtbl.replace t.tcode r.id c;
    c

let chain t (e : Code.exit_info) (target : Code.region) =
  e.chain <- Some target;
  target.incoming <- e :: target.incoming;
  t.stats.chains_made <- t.stats.chains_made + 1;
  if Bus.active t.bus then
    Bus.emit t.bus
      ~at:(Stats.guest_total t.stats)
      (Event.Chain_made { pc = target.entry_pc })

let ibtc_index t pc = pc land (t.ibtc_entries - 1)

let ibtc_fill t ~guest_pc (region : Code.region) =
  let addr = t.ibtc_base + (8 * ibtc_index t guest_pc) in
  Tolmem.write32 t.tolmem addr guest_pc;
  Tolmem.write32 t.tolmem (addr + 4) region.base;
  t.stats.ibtc_fills <- t.stats.ibtc_fills + 1;
  if Bus.active t.bus then
    Bus.emit t.bus
      ~at:(Stats.guest_total t.stats)
      (Event.Ibtc_fill { pc = guest_pc })

let invalidate t (r : Code.region) =
  r.invalidated <- true;
  Hashtbl.remove t.tcode r.id;
  List.iter (fun (e : Code.exit_info) -> e.chain <- None) r.incoming;
  r.incoming <- [];
  (match Hashtbl.find_opt t.by_pc r.entry_pc with
  | None -> ()
  | Some regions ->
    Hashtbl.replace t.by_pc r.entry_pc
      (List.filter (fun (x : Code.region) -> x.id <> r.id) regions));
  Hashtbl.remove t.by_base r.base;
  t.total_insns <- t.total_insns - Array.length r.code;
  (* Purge IBTC entries that point into the dead region. *)
  for i = 0 to t.ibtc_entries - 1 do
    let addr = t.ibtc_base + (8 * i) in
    if Tolmem.read32 t.tolmem (addr + 4) = r.base then ibtc_clear_entry t i
  done

let region_count t = Hashtbl.length t.by_base
let total_host_insns t = t.total_insns

(* --- snapshot support ---------------------------------------------------- *)

type persisted = {
  p_regions : Code.region list;
  p_by_pc : (int * int list) list;
  p_next_id : int;
  p_next_base : int;
  p_total_insns : int;
  p_ibtc_base : int;
  p_ibtc_entries : int;
}

let persist t =
  let regions =
    Hashtbl.fold (fun _ r acc -> r :: acc) t.by_base []
    |> List.sort (fun (a : Code.region) b -> compare a.id b.id)
  in
  let by_pc =
    Hashtbl.fold
      (fun pc rs acc -> (pc, List.map (fun (r : Code.region) -> r.id) rs) :: acc)
      t.by_pc []
    |> List.sort compare
  in
  {
    p_regions = regions;
    p_by_pc = by_pc;
    p_next_id = t.next_id;
    p_next_base = t.next_base;
    p_total_insns = t.total_insns;
    p_ibtc_base = t.ibtc_base;
    p_ibtc_entries = t.ibtc_entries;
  }

let unpersist ?(bus = Bus.create ()) tolmem stats p =
  let t =
    {
      tolmem;
      stats;
      bus;
      by_pc = Hashtbl.create 256;
      by_base = Hashtbl.create 256;
      (* Closure chains are process state, never snapshot state: a restored
         region recompiles on first execution under whatever engine the
         restoring process runs. *)
      tcode = Hashtbl.create 256;
      next_id = p.p_next_id;
      next_base = p.p_next_base;
      total_insns = p.p_total_insns;
      (* The IBTC table itself lives in TOL memory and travels with the
         memory image; only its address is re-attached here. *)
      ibtc_base = p.p_ibtc_base;
      ibtc_entries = p.p_ibtc_entries;
    }
  in
  let by_id = Hashtbl.create 256 in
  List.iter
    (fun (r : Code.region) ->
      Hashtbl.replace by_id r.id r;
      Hashtbl.replace t.by_base r.base r)
    p.p_regions;
  List.iter
    (fun (pc, ids) ->
      Hashtbl.replace t.by_pc pc (List.map (Hashtbl.find by_id) ids))
    p.p_by_pc;
  t
