open Darco_guest

type t = { mem : Memory.t; mutable brk : int }

let create mem = { mem; brk = Loader.tol_base }
let brk t = t.brk
let restore mem ~brk = { mem; brk }

let ensure_page t addr =
  let idx = Memory.page_index addr in
  if not (Memory.has_page t.mem idx) then
    Memory.install_page t.mem idx (Bytes.make Memory.page_size '\000')

let alloc t bytes =
  let addr = t.brk in
  t.brk <- t.brk + ((bytes + 3) land lnot 3);
  ensure_page t addr;
  ensure_page t (t.brk - 1);
  addr

let read32 t addr = Memory.read32 t.mem addr
let write32 t addr v = Memory.write32 t.mem addr v
