open Darco_guest
open Darco_host
module Bus = Darco_obs.Bus
module Event = Darco_obs.Event

type event =
  | Ev_syscall of int
  | Ev_halt
  | Ev_page_fault of int
  | Ev_checkpoint

type t = {
  mutable cfg : Config.t;
  stats : Stats.t;
  bus : Bus.t;
  cpu : Cpu.t;
  mem : Memory.t;
  machine : Machine.t;
  icache : Step.icache;
  profile : Profile.t;
  tolmem : Tolmem.t;
  codecache : Codecache.t;
  (* speculation-failure bookkeeping *)
  fails : (int, int) Hashtbl.t;                    (* region id -> rollbacks *)
  deopt : (int, bool * bool) Hashtbl.t;            (* pc -> (no_asserts, no_memspec) *)
}

let create ?(bus = Bus.create ()) cfg initial =
  let mem = Memory.create `Fault in
  let tolmem = Tolmem.create mem in
  let stats = Stats.create () in
  Stats.charge stats Ov_other cfg.Config.costs.init_once;
  if Bus.active bus then
    Bus.emit bus ~at:0 (Event.Init { cost = cfg.Config.costs.init_once });
  {
    cfg;
    stats;
    bus;
    cpu = Cpu.copy initial;
    mem;
    machine = Machine.create mem;
    icache = Step.icache_create ();
    profile = Profile.create tolmem;
    tolmem;
    codecache = Codecache.create ~bus cfg tolmem stats;
    fails = Hashtbl.create 64;
    deopt = Hashtbl.create 64;
  }

let retired t = Stats.guest_total t.stats

let charge t cat n = Stats.charge t.stats cat n

let emit t ev = Bus.emit t.bus ~at:(retired t) ev
let tracing t = Bus.active t.bus

let install_page t idx data =
  t.stats.page_requests <- t.stats.page_requests + 1;
  if tracing t then emit t (Event.Page_install { index = idx });
  Memory.install_page t.mem idx data

let interpret_one t = Interp.step_one t.bus t.cfg t.stats t.icache t.cpu t.mem

let service_complete_syscall t effects ~len =
  let eip = t.cpu.eip in
  t.stats.syscalls <- t.stats.syscalls + 1;
  List.iter
    (fun (e : Syscall.effect) ->
      match e with
      | Syscall.Set_reg (r, v) -> Cpu.set t.cpu r v
      | Syscall.Mem_write (addr, data) ->
        (* Pages were synchronized by the controller before replay. *)
        Memory.blit_bytes t.mem addr data
      | Syscall.Exit _ -> t.cpu.halted <- true)
    effects;
  t.cpu.eip <- Semantics.mask32 (t.cpu.eip + len);
  t.stats.guest_im <- t.stats.guest_im + 1;
  charge t Ov_other t.cfg.costs.dispatch_other;
  if tracing t then
    emit t (Event.Syscall { eip; cost = t.cfg.costs.dispatch_other })

(* --- translation management -------------------------------------------- *)

let deopt_flags t pc =
  Option.value (Hashtbl.find_opt t.deopt pc) ~default:(false, false)

let translate_bb t pc =
  let rir = Regiongen.translate_bb t.cfg t.profile t.icache t.mem pc in
  let cost =
    t.cfg.costs.bb_translate_base + (t.cfg.costs.bb_translate_per_insn * rir.guest_len)
  in
  charge t Ov_bb_translate cost;
  t.stats.bb_translations <- t.stats.bb_translations + 1;
  let region = Codecache.insert t.codecache t.cfg rir in
  if tracing t then
    emit t
      (Event.Bb_translated
         {
           pc;
           guest_len = rir.guest_len;
           host_len = Array.length region.code;
           cost;
         });
  region

let build_superblock t pc =
  let no_asserts, no_mem = deopt_flags t pc in
  let result =
    Regiongen.build_superblock t.cfg t.profile t.icache t.mem ~head_pc:pc
      ~use_asserts:(t.cfg.use_asserts && not no_asserts)
      ~use_mem_speculation:(t.cfg.use_mem_speculation && not no_mem)
  in
  let cost =
    t.cfg.costs.sb_translate_base
    + (t.cfg.costs.sb_translate_per_insn * result.region.guest_len)
  in
  charge t Ov_sb_translate cost;
  t.stats.sb_translations <- t.stats.sb_translations + 1;
  if result.unrolled then
    t.stats.unrolled_superblocks <- t.stats.unrolled_superblocks + 1;
  (* The BB translation of the head is superseded (the paper invalidates
     and frees it). *)
  (match Codecache.find t.codecache ~prefer_bb:true pc with
  | Some old when old.mode = `Bb -> Codecache.invalidate t.codecache old
  | Some _ | None -> ());
  let region = Codecache.insert t.codecache t.cfg result.region in
  if tracing t then
    emit t
      (Event.Sb_translated
         {
           pc;
           guest_len = result.region.guest_len;
           host_len = Array.length region.code;
           cost;
           unrolled = result.unrolled;
         });
  region

(* A speculation failure beyond the limit: retranslate less aggressively. *)
let handle_speculation_failure t kind (region : Code.region) =
  (match kind with
  | `Assert -> t.stats.assert_rollbacks <- t.stats.assert_rollbacks + 1
  | `Alias -> t.stats.alias_rollbacks <- t.stats.alias_rollbacks + 1);
  if tracing t then
    emit t
      (Event.Rollback
         {
           kind = (match kind with `Assert -> Event.Rb_assert | `Alias -> Event.Rb_alias);
           pc = region.entry_pc;
         });
  let count = 1 + Option.value (Hashtbl.find_opt t.fails region.id) ~default:0 in
  Hashtbl.replace t.fails region.id count;
  if count > t.cfg.assert_fail_limit then begin
    let pc = region.entry_pc in
    let no_asserts, no_mem = deopt_flags t pc in
    (match kind with
    | `Assert ->
      Hashtbl.replace t.deopt pc (true, no_mem);
      t.stats.sb_rebuilds_noassert <- t.stats.sb_rebuilds_noassert + 1
    | `Alias ->
      Hashtbl.replace t.deopt pc (no_asserts, true);
      t.stats.sb_rebuilds_nomem <- t.stats.sb_rebuilds_nomem + 1);
    if tracing t then
      emit t
        (Event.Deopt_rebuild
           {
             kind =
               (match kind with
               | `Assert -> Event.De_noassert
               | `Alias -> Event.De_nomem);
             pc;
           });
    Codecache.invalidate t.codecache region;
    ignore (build_superblock t pc)
  end

(* --- the dispatch loop -------------------------------------------------- *)

let account t ~pc (res : Emulator.result) =
  if t.stats.guest_sbm = 0 && res.guest_super > 0 then Stats.note_sbm_start t.stats;
  t.stats.guest_bbm <- t.stats.guest_bbm + res.guest_bb;
  t.stats.guest_sbm <- t.stats.guest_sbm + res.guest_super;
  t.stats.host_app_bbm <- t.stats.host_app_bbm + res.host_bb;
  t.stats.host_app_sbm <- t.stats.host_app_sbm + res.host_super;
  t.stats.chains_followed <- t.stats.chains_followed + res.chains_followed;
  t.stats.wasted_host <- t.stats.wasted_host + res.wasted_host;
  if tracing t then
    emit t
      (Event.Region_exec
         {
           pc;
           guest_bb = res.guest_bb;
           guest_sb = res.guest_super;
           host_bb = res.host_bb;
           host_sb = res.host_super;
           chains_followed = res.chains_followed;
           wasted_host = res.wasted_host;
         })

(* Per-iteration dispatch charges go to the stats immediately (unchanged
   behaviour) and accumulate per category so one batched [Slice_end] event
   carries them, keeping the dispatch loop off the bus. *)
let bump t acc cat n =
  Stats.charge t.stats cat n;
  acc.(Stats.overhead_index cat) <- acc.(Stats.overhead_index cat) + n

let try_chain t acc (e : Code.exit_info) target =
  if t.cfg.use_chaining then begin
    bump t acc Ov_chaining t.cfg.costs.chain_attempt;
    match Codecache.find t.codecache ~prefer_bb:e.prefer_bb target with
    | Some r -> Codecache.chain t.codecache e r
    | None -> ()
  end

let try_ibtc_fill t acc guest_pc =
  t.stats.ibtc_misses <- t.stats.ibtc_misses + 1;
  if tracing t then emit t (Event.Ibtc_miss { pc = guest_pc });
  if t.cfg.use_ibtc then
    match Codecache.find t.codecache guest_pc with
    | Some r ->
      bump t acc Ov_other t.cfg.costs.ibtc_fill;
      Codecache.ibtc_fill t.codecache ~guest_pc r
    | None -> ()

let stop_reason = function
  | Ev_syscall _ -> Event.St_syscall
  | Ev_halt -> Event.St_halt
  | Ev_page_fault _ -> Event.St_page_fault
  | Ev_checkpoint -> Event.St_checkpoint

let run_slice t =
  if tracing t then emit t Event.Slice_start;
  let acc = Array.make 7 0 in
  let slice_end = retired t + t.cfg.slice_fuel in
  let resolve base = Codecache.resolve_base t.codecache base in
  let rec loop () =
    if t.cpu.halted then Ev_halt
    else if retired t >= slice_end then Ev_checkpoint
    else begin
      let pc = t.cpu.eip in
      bump t acc Ov_other t.cfg.costs.dispatch_other;
      bump t acc Ov_cc_lookup t.cfg.costs.cc_lookup;
      match Codecache.find t.codecache pc with
      | Some region -> run_region region
      | None ->
        if
          Profile.interp_count t.profile pc >= t.cfg.bb_threshold
          && (Gbb.decode t.icache t.mem pc).insn_count > 0
        then begin
          ignore (translate_bb t pc);
          loop ()
        end
        else begin
          match Interp.step_bb t.bus t.cfg t.stats t.profile t.icache t.cpu t.mem with
          | `Next -> loop ()
          | `Syscall -> Ev_syscall t.cpu.eip
          | `Halt -> Ev_halt
        end
    end
  and run_region region =
    bump t acc Ov_prologue t.cfg.costs.prologue;
    Machine.copy_guest_in t.machine t.cpu;
    let fuel = (8 * (slice_end - retired t)) + 2_000 in
    let res =
      Exec.run_region ~engine:t.cfg.engine ~cache:t.codecache t.machine
        ~resolve ~fuel
        ?on_retire:(Bus.retire_hook t.bus)
        region
    in
    account t ~pc:region.entry_pc res;
    Machine.copy_guest_out t.machine t.cpu;
    match res.stop with
    | Stop_exit e -> begin
      match e.kind with
      | Exit_direct target ->
        t.cpu.eip <- target;
        try_chain t acc e target;
        loop ()
      | Exit_indirect reg ->
        let target = Machine.get t.machine reg in
        t.cpu.eip <- target;
        try_ibtc_fill t acc target;
        loop ()
      | Exit_syscall pc ->
        t.cpu.eip <- pc;
        Ev_syscall pc
      | Exit_interp pc ->
        t.cpu.eip <- pc;
        interpret_one t;
        loop ()
      | Exit_promote pc ->
        t.cpu.eip <- pc;
        ignore (build_superblock t pc);
        loop ()
      | Exit_halt ->
        t.cpu.halted <- true;
        Ev_halt
    end
    | Stop_indirect_miss gpc ->
      t.cpu.eip <- gpc;
      try_ibtc_fill t acc gpc;
      loop ()
    | Stop_rollback (kind, failed_region) -> begin
      t.cpu.eip <- failed_region.entry_pc;
      handle_speculation_failure t kind failed_region;
      (* Forward progress through the interpreter, as the paper requires
         after a speculation failure. *)
      match Interp.step_bb t.bus t.cfg t.stats t.profile t.icache t.cpu t.mem with
      | `Next -> loop ()
      | `Syscall -> Ev_syscall t.cpu.eip
      | `Halt -> Ev_halt
    end
    | Stop_fault (page, faulted_region) ->
      t.cpu.eip <- faulted_region.entry_pc;
      Ev_page_fault page
    | Stop_fuel gpc ->
      t.cpu.eip <- gpc;
      loop ()
  in
  let ev = try loop () with Memory.Page_fault p -> Ev_page_fault p in
  if tracing t then begin
    let overheads = ref [] in
    List.iter
      (fun cat ->
        let n = acc.(Stats.overhead_index cat) in
        if n > 0 then overheads := (cat, n) :: !overheads)
      Stats.all_overheads;
    emit t (Event.Slice_end { stop = stop_reason ev; overheads = !overheads })
  end;
  ev
