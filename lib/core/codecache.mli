open Darco_host

(** The translation code cache: region registry, host code-address
    allocation, chaining management, the IBTC (indirect branch translation
    cache, after Scott et al.) and capacity-triggered full flushes.
    Publishes [Chain_made], [Ibtc_fill] and [Cache_flush] events. *)

type t

val create : ?bus:Darco_obs.Bus.t -> Config.t -> Tolmem.t -> Stats.t -> t

val ibtc_base : t -> int
(** Address of the IBTC table in TOL memory (inline probe sequences use
    it). *)

val insert : t -> Config.t -> Regionir.t -> Code.region
(** Lower the region IR (register allocation + code generation), allocate
    host code space, and register the region.  May trigger a full flush
    first if capacity would be exceeded (the new region always survives). *)

val find : t -> ?prefer_bb:bool -> int -> Code.region option
(** Translation for a guest PC.  Superblocks shadow BB translations unless
    [prefer_bb]. *)

val resolve_base : t -> int -> Code.region option
(** Region whose host base address is the given value (for [Jr]). *)

val compiled : t -> Code.region -> Threaded.compiled
(** The region's direct-threaded closure chain, compiled on first request
    and memoized alongside the region; dropped on {!invalidate} and
    {!flush}.  Chains are process state: they are rebuilt (not restored)
    after {!unpersist}. *)

val chain : t -> Code.exit_info -> Code.region -> unit
val invalidate : t -> Code.region -> unit
(** Unlinks every chain into the region and purges its IBTC entries. *)

val ibtc_fill : t -> guest_pc:int -> Code.region -> unit
val flush : t -> unit
val region_count : t -> int
val total_host_insns : t -> int

type persisted = {
  p_regions : Code.region list;
      (** live regions, sorted by id; chain links and incoming lists are
          carried by the regions themselves *)
  p_by_pc : (int * int list) list;
      (** guest PC -> region ids, preserving lookup preference order *)
  p_next_id : int;
  p_next_base : int;
  p_total_insns : int;
  p_ibtc_base : int;
  p_ibtc_entries : int;
}
(** The code-cache registry as plain data, for snapshots.  Deterministic:
    persisting the same cache twice yields equal values. *)

val persist : t -> persisted

val unpersist : ?bus:Darco_obs.Bus.t -> Tolmem.t -> Stats.t -> persisted -> t
(** Rebuild the registry around restored regions.  Unlike {!create} this
    allocates nothing from TOL memory: the IBTC address comes from the
    persisted record (its contents travel with the memory image). *)
