open Darco_host

(** The translation code cache: region registry, host code-address
    allocation, chaining management, the IBTC (indirect branch translation
    cache, after Scott et al.) and capacity-triggered full flushes.
    Publishes [Chain_made], [Ibtc_fill] and [Cache_flush] events. *)

type t

val create : ?bus:Darco_obs.Bus.t -> Config.t -> Tolmem.t -> Stats.t -> t

val ibtc_base : t -> int
(** Address of the IBTC table in TOL memory (inline probe sequences use
    it). *)

val insert : t -> Config.t -> Regionir.t -> Code.region
(** Lower the region IR (register allocation + code generation), allocate
    host code space, and register the region.  May trigger a full flush
    first if capacity would be exceeded (the new region always survives). *)

val find : t -> ?prefer_bb:bool -> int -> Code.region option
(** Translation for a guest PC.  Superblocks shadow BB translations unless
    [prefer_bb]. *)

val resolve_base : t -> int -> Code.region option
(** Region whose host base address is the given value (for [Jr]). *)

val chain : t -> Code.exit_info -> Code.region -> unit
val invalidate : t -> Code.region -> unit
(** Unlinks every chain into the region and purges its IBTC entries. *)

val ibtc_fill : t -> guest_pc:int -> Code.region -> unit
val flush : t -> unit
val region_count : t -> int
val total_host_insns : t -> int
