open Darco_guest

(** The TOL interpreter (IM): executes guest instructions one by one on the
    emulated state, guarantees forward progress, profiles basic-block
    repetition, and charges its own execution to the interpreter-overhead
    category.  Publishes one [Interp_block] / [Interp_exec] event per call
    on the observability bus (batched, so the per-instruction hot loop does
    not touch the bus). *)

val step_bb :
  Darco_obs.Bus.t ->
  Config.t ->
  Stats.t ->
  Profile.t ->
  Step.icache ->
  Cpu.t ->
  Memory.t ->
  [ `Next | `Syscall | `Halt ]
(** Interpret one basic block starting at the current EIP.  [`Next]: a
    control transfer completed (EIP is the next block).  May raise
    {!Darco_guest.Memory.Page_fault} with consistent state. *)

val step_one :
  Darco_obs.Bus.t -> Config.t -> Stats.t -> Step.icache -> Cpu.t -> Memory.t -> unit
(** Interpret exactly one instruction (the safety-net path for
    interpreter-only instructions reached from translated code).  The
    instruction must not be a syscall/halt.  Emits [Interp_exec] — the
    interpreter-only analogue of [Region_exec] — so the dispatch is
    visible to the profiler as an execution. *)
