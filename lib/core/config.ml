type costs = {
  interp_per_insn : int;
  interp_profile_bb : int;
  bb_translate_base : int;
  bb_translate_per_insn : int;
  sb_translate_base : int;
  sb_translate_per_insn : int;
  prologue : int;
  cc_lookup : int;
  chain_attempt : int;
  ibtc_fill : int;
  dispatch_other : int;
  init_once : int;
}

type fault = No_fault | Opt_drop_store | Sched_break_dep

type engine = Eval | Threaded

type t = {
  bb_threshold : int;
  sb_threshold : int;
  sb_max_insns : int;
  sb_max_bbs : int;
  branch_bias : float;
  min_reach_prob : float;
  unroll_factor : int;
  assert_fail_limit : int;
  use_asserts : bool;
  use_mem_speculation : bool;
  opt_const_fold : bool;
  opt_copy_prop : bool;
  opt_cse : bool;
  opt_dce : bool;
  opt_rle : bool;
  opt_schedule : bool;
  use_chaining : bool;
  use_ibtc : bool;
  ibtc_bits : int;
  inject_fault : fault;
  slice_fuel : int;
  code_cache_capacity : int;
  engine : engine;
  costs : costs;
}

let default_costs = {
  interp_per_insn = 26;
  interp_profile_bb = 6;
  bb_translate_base = 140;
  bb_translate_per_insn = 30;
  sb_translate_base = 420;
  sb_translate_per_insn = 95;
  prologue = 12;
  cc_lookup = 14;
  chain_attempt = 10;
  ibtc_fill = 12;
  dispatch_other = 6;
  init_once = 5_000;
}

let default = {
  bb_threshold = 8;
  sb_threshold = 64;
  sb_max_insns = 200;
  sb_max_bbs = 16;
  branch_bias = 0.85;
  min_reach_prob = 0.45;
  unroll_factor = 4;
  assert_fail_limit = 4;
  use_asserts = true;
  use_mem_speculation = true;
  opt_const_fold = true;
  opt_copy_prop = true;
  opt_cse = true;
  opt_dce = true;
  opt_rle = true;
  opt_schedule = true;
  use_chaining = true;
  use_ibtc = true;
  ibtc_bits = 9;
  inject_fault = No_fault;
  slice_fuel = 200_000;
  code_cache_capacity = 2_000_000;
  engine = Threaded;
  costs = default_costs;
}

let quick = { default with bb_threshold = 2; sb_threshold = 6; slice_fuel = 20_000 }
