type t = {
  tolmem : Tolmem.t;
  interp : (int, int) Hashtbl.t;
  exec : (int, int) Hashtbl.t;         (* pc -> counter address *)
  edges : (int, int * int) Hashtbl.t;  (* pc -> (taken, fall) addresses *)
}

let create tolmem =
  { tolmem; interp = Hashtbl.create 256; exec = Hashtbl.create 256; edges = Hashtbl.create 256 }

let note_interp t pc =
  let c = 1 + Option.value (Hashtbl.find_opt t.interp pc) ~default:0 in
  Hashtbl.replace t.interp pc c;
  c

let interp_count t pc = Option.value (Hashtbl.find_opt t.interp pc) ~default:0

let exec_counter t pc =
  match Hashtbl.find_opt t.exec pc with
  | Some a -> a
  | None ->
    let a = Tolmem.alloc t.tolmem 4 in
    Hashtbl.replace t.exec pc a;
    a

let edge_counters t pc =
  match Hashtbl.find_opt t.edges pc with
  | Some pair -> pair
  | None ->
    let taken = Tolmem.alloc t.tolmem 4 in
    let fall = Tolmem.alloc t.tolmem 4 in
    Hashtbl.replace t.edges pc (taken, fall);
    (taken, fall)

let edge_counts t pc =
  match Hashtbl.find_opt t.edges pc with
  | None -> None
  | Some (ta, fa) -> Some (Tolmem.read32 t.tolmem ta, Tolmem.read32 t.tolmem fa)

let reset_exec_counter t pc =
  match Hashtbl.find_opt t.exec pc with
  | None -> ()
  | Some a -> Tolmem.write32 t.tolmem a 0

type persisted = {
  p_interp : (int * int) list;
  p_exec : (int * int) list;
  p_edges : (int * (int * int)) list;
}

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let persist t =
  {
    p_interp = sorted_bindings t.interp;
    p_exec = sorted_bindings t.exec;
    p_edges = sorted_bindings t.edges;
  }

let unpersist tolmem p =
  let t = create tolmem in
  List.iter (fun (pc, c) -> Hashtbl.replace t.interp pc c) p.p_interp;
  List.iter (fun (pc, a) -> Hashtbl.replace t.exec pc a) p.p_exec;
  List.iter (fun (pc, pair) -> Hashtbl.replace t.edges pc pair) p.p_edges;
  t

let histogram t =
  let tbl = Hashtbl.create 64 in
  Hashtbl.iter (fun pc c -> Hashtbl.replace tbl pc c) t.interp;
  Hashtbl.iter
    (fun pc addr ->
      let prev = Option.value (Hashtbl.find_opt tbl pc) ~default:0 in
      Hashtbl.replace tbl pc (prev + Tolmem.read32 t.tolmem addr))
    t.exec;
  Hashtbl.fold (fun pc c acc -> (pc, c) :: acc) tbl [] |> List.sort compare
