open Darco_guest
open Darco_host

(** The execution entry point for translated regions — the only public way
    to run one.

    Two engines produce bit-identical architectural state and identical
    bus event streams (DESIGN.md §13): [Eval], the reference walkers
    ([Emulator.run] for host code, the IR evaluator for region IR), and
    [Threaded], the direct-threaded closure chains compiled by
    {!Threaded}.  [Threaded] is the default; [Eval] remains the
    reference/fallback path the profiler, the timing pipeline and
    divergence checks use.

    The former [Ir_eval.run] entry point is no longer exported from the
    library surface; callers go through {!run}.  See DESIGN.md §13 for the
    deprecation note (mirroring the [Sweep.map] removal policy of §9). *)

type engine = Config.engine = Eval | Threaded

(** The canonical region-execution outcome (re-exported from
    {!Threaded}; identical to the reference evaluator's). *)
type outcome = Threaded.outcome =
  | Exited of Ir.exit_spec * int  (** resolved guest target PC *)
  | Assert_failed
  | Alias_failed
      (** a store overlapped a speculatively hoisted load (the alias
          protection table fired), exactly as the host hardware would *)

val engine_name : engine -> string
val engine_of_string : string -> engine option

val run : ?engine:engine -> Regionir.t -> Cpu.t -> Memory.t -> outcome
(** Evaluate a region in IR form against the given guest state (mutating
    it on successful exit, exactly like a checkpoint/commit execution).
    [engine] defaults to {!Config.default}'s. *)

val run_region :
  engine:engine ->
  cache:Codecache.t ->
  Machine.t ->
  resolve:(int -> Code.region option) ->
  fuel:int ->
  ?on_retire:(Emulator.retire_info -> unit) ->
  Code.region ->
  Emulator.result
(** Execute a translated host region out of the code cache — the dispatch
    loop's hot path.  Under [Threaded] the region's memoized closure chain
    runs ({!Codecache.compiled}); under [Eval], or whenever a retire hook
    is attached (the timing pipeline consumes a per-instruction stream
    only the walker produces), execution deopts to
    {!Darco_host.Emulator.run}.  Results are identical either way. *)
