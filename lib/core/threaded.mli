open Darco_guest
open Darco_host

(** Direct-threaded compilation of translated regions.

    Both evaluators in the system walk instruction arrays with a per-step
    constructor [match].  This module compiles a region once into a chain
    of OCaml closures — one per instruction or fused pattern, each ending
    in a tail call to its successor — so executing the region is a single
    indirect-call stream with zero dispatch matching.  Operand decisions
    (binop selection, comparison sense, FP operation, runtime-call weight)
    are resolved at compile time and captured in the closure.

    Two compilers live here (DESIGN.md §13):

    {ul
    {- The {e host-level} compiler over {!Darco_host.Code.region}, the form
       [Tol] actually dispatches.  {!run} is bit-for-bit equivalent to
       {!Darco_host.Emulator.run} without an [on_retire] hook: identical
       counters, stop reasons and exception windows.  When a retire hook is
       attached (the timing pipeline), execution deopts back to the walker
       — see [Exec].}
    {- The {e IR-level} compiler over {!Regionir.t}, mirroring the
       reference evaluator ([Ir_eval.run]) including its gated store
       buffer and alias-protection semantics.  This is what engine
       equivalence is property-tested against.}} *)

(** {1 Host-level engine} *)

type ctx
(** Per-execution state threaded through the closure chain. *)

type compiled = private {
  c_region : Code.region;
  c_limit : int;
      (** runaway step bound, [100 * code length + 10_000], matching the
          walker's malformed-region assertion *)
  c_entry : ctx -> unit;
}
(** A region compiled to a closure chain.  Compilation is pure with respect
    to machine state; the chain may be cached and reused (the code cache
    memoizes one per live region, dropped on invalidation/flush). *)

val compile : Code.region -> compiled

val run :
  Machine.t ->
  resolve:(int -> Code.region option) ->
  get:(Code.region -> compiled) ->
  ?fuel:int ->
  Code.region ->
  Emulator.result
(** [run m ~resolve ~get region] executes the compiled chain for [region],
    following chained exits and resolved indirect jumps through [get]
    (typically the code cache's memoized {!compile}).  Produces exactly the
    result {!Darco_host.Emulator.run} would: same stop, same counters, same
    rollback-on-failure state effects.  [fuel] bounds [host_retired]
    approximately, checked at region transfers. *)

(** {1 IR-level engine} *)

(** Identical to the reference evaluator's outcome; [Exec] re-exports this
    as the canonical outcome type. *)
type outcome =
  | Exited of Ir.exit_spec * int  (** resolved guest target PC *)
  | Assert_failed
  | Alias_failed

type ir_compiled

val compile_ir : Regionir.t -> ir_compiled

val run_compiled : ir_compiled -> Cpu.t -> Memory.t -> outcome
(** Fresh vreg/store-buffer state per call; the compiled chain is
    reusable. *)

val run_ir : Regionir.t -> Cpu.t -> Memory.t -> outcome
(** [compile_ir] + [run_compiled] in one step. *)
