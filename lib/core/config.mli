(** TOL configuration: promotion thresholds, superblock formation limits,
    feature toggles (the paper's plug-and-play requirement) and the
    host-instruction cost model for TOL's own execution.

    The cost model stands in for the fact that the original TOL is itself
    compiled to the host ISA; every software-layer activity charges a
    calibrated number of host instructions to the matching overhead
    category (see DESIGN.md §1). *)

type costs = {
  interp_per_insn : int;      (** decode+dispatch+execute of one guest insn *)
  interp_profile_bb : int;    (** repetition-counter update at a BB end *)
  bb_translate_base : int;
  bb_translate_per_insn : int;
  sb_translate_base : int;
  sb_translate_per_insn : int;
  prologue : int;             (** TOL <-> code-cache transition housekeeping *)
  cc_lookup : int;            (** code-cache hash lookup per dispatch *)
  chain_attempt : int;        (** patching one exit to a translated target *)
  ibtc_fill : int;            (** installing one IBTC entry after a miss *)
  dispatch_other : int;       (** TOL main-loop bookkeeping per iteration *)
  init_once : int;            (** TOL initialization *)
}

(** Deliberate translation bugs for exercising the debug toolchain
    (failure-injection testing): a miscompiling CSE pass that drops a
    superblock store, or a scheduler that breaks memory dependences without
    speculation protection. *)
type fault = No_fault | Opt_drop_store | Sched_break_dep

(** How translated regions execute.  [Threaded] (the default) runs the
    direct-threaded closure chains compiled by [Threaded]; [Eval] keeps the
    reference walker ([Emulator.run] / the IR evaluator) — the path the
    profiler and divergence checks use.  Both produce bit-identical
    architectural state and bus event streams; the engine is a pure
    execution-strategy choice and is deliberately {e not} part of the
    snapshot wire format (a snapshot restores under whatever engine the
    restoring process selects). *)
type engine = Eval | Threaded

type t = {
  (* promotion thresholds *)
  bb_threshold : int;      (** interpretations before a BB is translated *)
  sb_threshold : int;      (** BBM executions before superblock creation *)
  (* superblock formation *)
  sb_max_insns : int;
  sb_max_bbs : int;
  branch_bias : float;     (** edge probability needed to follow a branch *)
  min_reach_prob : float;  (** stop when the path probability drops below *)
  unroll_factor : int;     (** 0 or 1 disables loop unrolling *)
  assert_fail_limit : int; (** rollbacks before rebuilding without asserts *)
  (* optimizations (plug-and-play toggles) *)
  use_asserts : bool;
  use_mem_speculation : bool;
  opt_const_fold : bool;
  opt_copy_prop : bool;
  opt_cse : bool;
  opt_dce : bool;
  opt_rle : bool;          (** redundant-load elim + store forwarding *)
  opt_schedule : bool;
  use_chaining : bool;
  use_ibtc : bool;
  ibtc_bits : int;         (** log2 of IBTC entries *)
  (* execution management *)
  inject_fault : fault;
  slice_fuel : int;        (** guest insns per co-designed run slice *)
  code_cache_capacity : int;  (** host insns before a full flush *)
  engine : engine;         (** execution engine for translated regions *)
  costs : costs;
}

val default : t
val quick : t
(** Lower thresholds, for unit tests that want all modes exercised on tiny
    programs. *)
