open Darco_guest
open Darco_host
open Code

(* --- shared operator specialization ------------------------------------- *)

(* The walker evaluators pay a constructor [match] on every executed
   instruction; here the match runs once, at compile time, and yields the
   bare arithmetic closure. *)
let binop_fn (op : Code.binop) : int -> int -> int =
  match op with
  | Add -> fun a b -> Semantics.mask32 (a + b)
  | Sub -> fun a b -> Semantics.mask32 (a - b)
  | Mul ->
    fun a b ->
      let lo, _, _ = Semantics.mul_u a b in
      lo
  | Mulhu ->
    fun a b ->
      let _, hi, _ = Semantics.mul_u a b in
      hi
  | Mulhs ->
    fun a b ->
      let _, hi, _ = Semantics.mul_s a b in
      hi
  | And -> ( land )
  | Or -> ( lor )
  | Xor -> ( lxor )
  | Shl -> fun a b -> Semantics.mask32 (a lsl (b land 31))
  | Shr -> fun a b -> a lsr (b land 31)
  | Sar -> fun a b -> Semantics.mask32 (Semantics.signed a asr (b land 31))
  | Slt -> fun a b -> if Semantics.signed a < Semantics.signed b then 1 else 0
  | Sltu -> fun a b -> if a < b then 1 else 0
  | Seq -> fun a b -> if a = b then 1 else 0
  | Sne -> fun a b -> if a <> b then 1 else 0

let cmp_fn (c : Code.cmp) : int -> int -> bool =
  match c with
  | Beq -> ( = )
  | Bne -> ( <> )
  | Blt -> fun a b -> Semantics.signed a < Semantics.signed b
  | Bge -> fun a b -> Semantics.signed a >= Semantics.signed b
  | Bltu -> ( < )
  | Bgeu -> ( >= )

let fbin_fn (op : Code.fbinop) : Isa.fp_bin =
  match op with Fadd -> Fadd | Fsub -> Fsub | Fmul -> Fmul | Fdiv -> Fdiv

let fun_fn (op : Code.funop) : Isa.fp_un =
  match op with Fsqrt -> Fsqrt | Fabs -> Fabs | Fneg -> Fchs

(* ========================================================================= *)
(* Host-level engine: direct-threaded execution of [Code.region]s, the path
   [Tol.run_slice] dispatches through.  Bit-for-bit equivalent to
   [Emulator.run] without an [on_retire] hook: same counters, same stop
   reasons, same exception windows (an operation that faults does so before
   its retirement is counted, exactly like the walker).                      *)
(* ========================================================================= *)

exception Host_assert_failed

type ctx = {
  m : Machine.t;
  resolve : int -> Code.region option;
  get : Code.region -> compiled;
  fuel : int;
  mutable host_retired : int;
  mutable host_bb : int;
  mutable host_super : int;
  mutable guest_bb : int;
  mutable guest_super : int;
  mutable chains : int;
  mutable wasted : int;
  mutable since_commit : int;
  mutable region : Code.region;  (* for rollback/fault attribution *)
  mutable steps_here : int;
  mutable step_limit : int;
  mutable stop_ : Emulator.stop option;
}

and compiled = {
  c_region : Code.region;
  c_limit : int;  (* runaway bound: regions are acyclic by construction *)
  c_entry : ctx -> unit;
}

let bump_bb c w =
  c.host_retired <- c.host_retired + w;
  c.host_bb <- c.host_bb + w;
  c.since_commit <- c.since_commit + w

let bump_super c w =
  c.host_retired <- c.host_retired + w;
  c.host_super <- c.host_super + w;
  c.since_commit <- c.since_commit + w

let guard c =
  c.steps_here <- c.steps_here + 1;
  assert (c.steps_here <= c.step_limit)

(* Fuel is checked only at region transfers, before the chain counter moves
   (a fuel stop charges no chain) — the same order as [Emulator.run]. *)
let transfer c (r' : Code.region) =
  if c.host_retired >= c.fuel then c.stop_ <- Some (Emulator.Stop_fuel r'.entry_pc)
  else begin
    c.chains <- c.chains + 1;
    let comp = c.get r' in
    c.region <- r';
    c.steps_here <- 0;
    c.step_limit <- comp.c_limit;
    comp.c_entry c
  end

let compile (region : Code.region) : compiled =
  let code = region.code in
  let n = Array.length code in
  let bump = match region.mode with `Bb -> bump_bb | `Super -> bump_super in
  let commit_guest =
    match region.mode with
    | `Bb -> fun c k -> c.guest_bb <- c.guest_bb + k
    | `Super -> fun c k -> c.guest_super <- c.guest_super + k
  in
  (* Branch targets: a [Commit; Exit] pair may only fuse when the exit is
     not itself a jump target. *)
  let marks = Array.make (max n 1) false in
  Array.iter
    (function B (_, _, _, t) | J t -> marks.(t) <- true | _ -> ())
    code;
  (* Runs of non-faulting operations fuse into one closure: the step guard
     and the retirement counters are batched over the whole run.  No
     exception can fire inside such a run and control cannot leave it, so
     the intermediate counter values the walker would expose are
     unobservable — the state after the run is bit-identical.  Loads and
     stores (page faults, alias violations), Chk/Commit (they reset
     [since_commit] mid-stream) and control all end a fusion window. *)
  let bare (insn : Code.insn) : (Machine.t -> unit) option =
    match insn with
    | Nop -> Some (fun _ -> ())
    | Li (rd, v) -> Some (fun m -> Machine.set m rd v)
    | Bin (op, rd, ra, rb) ->
      let f = binop_fn op in
      Some (fun m -> Machine.set m rd (f (Machine.get m ra) (Machine.get m rb)))
    | Bini (op, rd, ra, imm) ->
      let f = binop_fn op in
      let imm = Semantics.mask32 imm in
      Some (fun m -> Machine.set m rd (f (Machine.get m ra) imm))
    | Fli (fd, v) -> Some (fun m -> m.Machine.f.(fd) <- v)
    | Fmov (fd, fs) ->
      Some
        (fun m ->
          let f = m.Machine.f in
          f.(fd) <- f.(fs))
    | Fbin (op, fd, fa, fb) ->
      let g = fbin_fn op in
      Some
        (fun m ->
          let f = m.Machine.f in
          f.(fd) <- Semantics.fp_bin g f.(fa) f.(fb))
    | Fun (op, fd, fa) ->
      let g = fun_fn op in
      Some
        (fun m ->
          let f = m.Machine.f in
          f.(fd) <- Semantics.fp_un g f.(fa))
    | Fcmp (rd, fa, fb) ->
      Some
        (fun m ->
          Machine.set m rd
            (Semantics.fcmp_flags m.Machine.f.(fa) m.Machine.f.(fb)))
    | Cvtif (fd, ra) ->
      Some (fun m -> m.Machine.f.(fd) <- Semantics.i2f (Machine.get m ra))
    | Cvtfi (rd, fa) ->
      Some (fun m -> Machine.set m rd (Semantics.f2i m.Machine.f.(fa)))
    | Mkfl (kind, rd, ra, rb, rc) ->
      Some
        (fun m ->
          Machine.set m rd
            (Flagcalc.compute kind ~a:(Machine.get m ra) ~b:(Machine.get m rb)
               ~c:(Machine.get m rc)))
    | Isel (rd, rc, ra, rb) ->
      Some
        (fun m ->
          Machine.set m rd
            (if Machine.get m rc <> 0 then Machine.get m ra
             else Machine.get m rb))
    | Callrt_f (fn, fd, fs) ->
      let g : Isa.fp_un =
        match fn with Rt_sin -> Fsin | Rt_cos -> Fcos | _ -> assert false
      in
      Some
        (fun m ->
          let f = m.Machine.f in
          f.(fd) <- Semantics.fp_un g f.(fs))
    | Callrt_div { signed; q; r = rr; hi; lo; d } ->
      let div = if signed then Semantics.div_s else Semantics.div_u in
      Some
        (fun m ->
          let qv, rv =
            div ~hi:(Machine.get m hi) ~lo:(Machine.get m lo) (Machine.get m d)
          in
          Machine.set m q qv;
          Machine.set m rr rv)
    | Load _ | Sload _ | Store _ | Fload _ | Fstore _ | B _ | J _ | Jr _
    | Assert _ | Chk | Commit _ | Exit _ ->
      None
  in
  let weight (insn : Code.insn) =
    match insn with
    | Callrt_f (fn, _, _) -> rt_cost fn
    | Callrt_div { signed; _ } -> rt_cost (if signed then Rt_divs else Rt_divu)
    | _ -> 1
  in
  let bares = Array.map bare code in
  (* run_end.(i): last index of the maximal fusable run starting at i *)
  let run_end = Array.make (max n 1) (-1) in
  for i = n - 1 downto 0 do
    if bares.(i) <> None then
      run_end.(i) <-
        (if i + 1 < n && bares.(i + 1) <> None && not marks.(i + 1) then
           run_end.(i + 1)
         else i)
  done;
  let steps : (ctx -> unit) array =
    Array.make (max n 1) (fun _ -> assert false)
  in
  (* Falling off the end of a region is malformed; the walker dies on the
     out-of-bounds fetch and so do we. *)
  let oob _ = raise (Invalid_argument "index out of bounds") in
  (* Built back to front so a fallthrough or forward branch captures its
     continuation closure directly; a (malformed) backward target falls back
     to an indirection through the array. *)
  let target t i = if t > i then steps.(t) else fun c -> steps.(t) c in
  let continuation i = if i + 1 < n then steps.(i + 1) else oob in
  let exit_step (e : Code.exit_info) c =
    bump c 1;
    match e.chain with
    | Some r' when not r'.invalidated -> transfer c r'
    | Some _ | None -> c.stop_ <- Some (Emulator.Stop_exit e)
  in
  for i = n - 1 downto 0 do
    let k = continuation i in
    steps.(i) <-
      (match code.(i) with
      | Nop ->
        fun c ->
          guard c;
          bump c 1;
          k c
      | Li (rd, v) ->
        fun c ->
          guard c;
          Machine.set c.m rd v;
          bump c 1;
          k c
      | Bin (op, rd, ra, rb) ->
        let f = binop_fn op in
        fun c ->
          guard c;
          let m = c.m in
          Machine.set m rd (f (Machine.get m ra) (Machine.get m rb));
          bump c 1;
          k c
      | Bini (op, rd, ra, imm) ->
        let f = binop_fn op in
        let imm = Semantics.mask32 imm in
        fun c ->
          guard c;
          let m = c.m in
          Machine.set m rd (f (Machine.get m ra) imm);
          bump c 1;
          k c
      | Load (w, signed, rd, ra, d) ->
        fun c ->
          guard c;
          let m = c.m in
          let addr = Semantics.mask32 (Machine.get m ra + d) in
          Machine.set m rd (Machine.load m w ~signed addr);
          bump c 1;
          k c
      | Sload (w, signed, rd, ra, d) ->
        fun c ->
          guard c;
          let m = c.m in
          let addr = Semantics.mask32 (Machine.get m ra + d) in
          Machine.set m rd (Machine.load_spec m w ~signed addr);
          bump c 1;
          k c
      | Store (w, rv, ra, d) ->
        fun c ->
          guard c;
          let m = c.m in
          let addr = Semantics.mask32 (Machine.get m ra + d) in
          Machine.store m w addr (Machine.get m rv);
          bump c 1;
          k c
      | Fli (fd, v) ->
        fun c ->
          guard c;
          c.m.f.(fd) <- v;
          bump c 1;
          k c
      | Fmov (fd, fs) ->
        fun c ->
          guard c;
          let f = c.m.f in
          f.(fd) <- f.(fs);
          bump c 1;
          k c
      | Fbin (op, fd, fa, fb) ->
        let g = fbin_fn op in
        fun c ->
          guard c;
          let f = c.m.f in
          f.(fd) <- Semantics.fp_bin g f.(fa) f.(fb);
          bump c 1;
          k c
      | Fun (op, fd, fa) ->
        let g = fun_fn op in
        fun c ->
          guard c;
          let f = c.m.f in
          f.(fd) <- Semantics.fp_un g f.(fa);
          bump c 1;
          k c
      | Fload (fd, ra, d) ->
        fun c ->
          guard c;
          let m = c.m in
          let addr = Semantics.mask32 (Machine.get m ra + d) in
          m.f.(fd) <- Machine.load_f64 m addr;
          bump c 1;
          k c
      | Fstore (fv, ra, d) ->
        fun c ->
          guard c;
          let m = c.m in
          let addr = Semantics.mask32 (Machine.get m ra + d) in
          Machine.store_f64 m addr m.f.(fv);
          bump c 1;
          k c
      | Fcmp (rd, fa, fb) ->
        fun c ->
          guard c;
          let m = c.m in
          Machine.set m rd (Semantics.fcmp_flags m.f.(fa) m.f.(fb));
          bump c 1;
          k c
      | Cvtif (fd, ra) ->
        fun c ->
          guard c;
          let m = c.m in
          m.f.(fd) <- Semantics.i2f (Machine.get m ra);
          bump c 1;
          k c
      | Cvtfi (rd, fa) ->
        fun c ->
          guard c;
          let m = c.m in
          Machine.set m rd (Semantics.f2i m.f.(fa));
          bump c 1;
          k c
      | Mkfl (kind, rd, ra, rb, rc) ->
        fun c ->
          guard c;
          let m = c.m in
          Machine.set m rd
            (Flagcalc.compute kind ~a:(Machine.get m ra) ~b:(Machine.get m rb)
               ~c:(Machine.get m rc));
          bump c 1;
          k c
      | Isel (rd, rc, ra, rb) ->
        fun c ->
          guard c;
          let m = c.m in
          Machine.set m rd
            (if Machine.get m rc <> 0 then Machine.get m ra else Machine.get m rb);
          bump c 1;
          k c
      | Callrt_f (fn, fd, fs) ->
        let g : Isa.fp_un =
          match fn with Rt_sin -> Fsin | Rt_cos -> Fcos | _ -> assert false
        in
        let w = rt_cost fn in
        fun c ->
          guard c;
          let f = c.m.f in
          f.(fd) <- Semantics.fp_un g f.(fs);
          bump c w;
          k c
      | Callrt_div { signed; q; r = rr; hi; lo; d } ->
        let w = rt_cost (if signed then Rt_divs else Rt_divu) in
        let div = if signed then Semantics.div_s else Semantics.div_u in
        fun c ->
          guard c;
          let m = c.m in
          let hi_v = Machine.get m hi
          and lo_v = Machine.get m lo
          and d_v = Machine.get m d in
          let qv, rv = div ~hi:hi_v ~lo:lo_v d_v in
          Machine.set m q qv;
          Machine.set m rr rv;
          bump c w;
          k c
      | B (cmp, ra, rb, t) ->
        let holds = cmp_fn cmp in
        let kt = target t i in
        fun c ->
          guard c;
          let m = c.m in
          let taken = holds (Machine.get m ra) (Machine.get m rb) in
          bump c 1;
          if taken then kt c else k c
      | J t ->
        let kt = target t i in
        fun c ->
          guard c;
          bump c 1;
          kt c
      | Jr (ra, rg) ->
        fun c ->
          guard c;
          let m = c.m in
          let tgt = Machine.get m ra in
          bump c 1;
          (match c.resolve tgt with
          | Some r' when not r'.invalidated -> transfer c r'
          | Some _ | None ->
            c.stop_ <- Some (Emulator.Stop_indirect_miss (Machine.get m rg)))
      | Assert (cmp, ra, rb) ->
        let holds = cmp_fn cmp in
        fun c ->
          guard c;
          bump c 1;
          let m = c.m in
          if holds (Machine.get m ra) (Machine.get m rb) then k c
          else raise Host_assert_failed
      | Chk ->
        fun c ->
          guard c;
          Machine.checkpoint c.m;
          c.since_commit <- 0;
          bump c 1;
          k c
      | Commit cnt -> (
        (* Fusion: a [Commit; Exit] pair — every region epilogue — runs as
           one closure when the exit is not itself a branch target. *)
        match if i + 1 < n && not marks.(i + 1) then code.(i + 1) else Nop with
        | Exit e ->
          fun c ->
            guard c;
            Machine.commit c.m;
            commit_guest c cnt;
            c.since_commit <- 0;
            bump c 1;
            guard c;
            exit_step e c
        | _ ->
          fun c ->
            guard c;
            Machine.commit c.m;
            commit_guest c cnt;
            c.since_commit <- 0;
            bump c 1;
            k c)
      | Exit e ->
        fun c ->
          guard c;
          exit_step e c);
    (* If [i] heads a fusable run of two or more ops, replace the per-op
       closure with one that batches guard + retirement over the run.  A
       run head is the first bareable op after a non-bareable one (or after
       a branch target); mid-run indices keep their individual closures so
       a (malformed) backward branch into the middle still behaves. *)
    let j = run_end.(i) in
    if j > i && (i = 0 || marks.(i) || bares.(i - 1) = None) then begin
      let len = j - i + 1 in
      let total = ref 0 in
      for x = i to j do
        total := !total + weight code.(x)
      done;
      let total = !total in
      let kj = if j + 1 < n then steps.(j + 1) else oob in
      let ops =
        Array.init len (fun x ->
            match bares.(i + x) with Some f -> f | None -> assert false)
      in
      steps.(i) <-
        (fun c ->
          c.steps_here <- c.steps_here + len;
          assert (c.steps_here <= c.step_limit);
          bump c total;
          let m = c.m in
          for x = 0 to len - 1 do
            (Array.unsafe_get ops x) m
          done;
          kj c)
    end
  done;
  {
    c_region = region;
    c_limit = (100 * n) + 10_000;
    c_entry = (if n = 0 then oob else steps.(0));
  }

let run m ~resolve ~get ?(fuel = max_int) entry_region =
  let comp = get entry_region in
  let c =
    {
      m;
      resolve;
      get;
      fuel;
      host_retired = 0;
      host_bb = 0;
      host_super = 0;
      guest_bb = 0;
      guest_super = 0;
      chains = 0;
      wasted = 0;
      since_commit = 0;
      region = entry_region;
      steps_here = 0;
      step_limit = comp.c_limit;
      stop_ = None;
    }
  in
  let finish stop =
    {
      Emulator.stop;
      host_retired = c.host_retired;
      host_bb = c.host_bb;
      host_super = c.host_super;
      guest_bb = c.guest_bb;
      guest_super = c.guest_super;
      chains_followed = c.chains;
      wasted_host = c.wasted;
    }
  in
  try
    comp.c_entry c;
    match c.stop_ with Some s -> finish s | None -> assert false
  with
  | Host_assert_failed ->
    c.wasted <- c.wasted + c.since_commit;
    Machine.rollback m;
    finish (Emulator.Stop_rollback (`Assert, c.region))
  | Machine.Alias_violation ->
    c.wasted <- c.wasted + c.since_commit;
    Machine.rollback m;
    finish (Emulator.Stop_rollback (`Alias, c.region))
  | Memory.Page_fault p ->
    c.wasted <- c.wasted + c.since_commit;
    Machine.rollback m;
    finish (Emulator.Stop_fault (p, c.region))

(* ========================================================================= *)
(* IR-level engine: direct-threaded execution of [Regionir.t], the
   pre-codegen form the reference evaluator walks.  Mirrors [Ir_eval.run]
   exactly: byte-level gated store buffer, alias-protection table,
   outcome-as-value asserts.                                                 *)
(* ========================================================================= *)

type outcome = Exited of Ir.exit_spec * int | Assert_failed | Alias_failed

exception Alias_hit

type ictx = {
  v : int array;
  f : float array;
  sbuf : (int, int) Hashtbl.t;  (* gated store buffer, byte level *)
  mutable aliases : (int * int) list;
  cpu : Cpu.t;
  mem : Memory.t;
  mutable iout : outcome;
}

type ir_compiled = { ir_nv : int; ir_nf : int; ir_entry : ictx -> unit }

let store_byte c addr value = Hashtbl.replace c.sbuf addr (value land 0xFF)

let load_byte c addr =
  match Hashtbl.find_opt c.sbuf addr with
  | Some b -> b
  | None -> Memory.read8 c.mem addr

let overlaps a la b lb = a < b + lb && b < a + la

let check_alias c addr len =
  if List.exists (fun (a, l) -> overlaps a l addr len) c.aliases then
    raise Alias_hit

let buf_store c w addr value =
  check_alias c addr (Isa.width_bytes w);
  for k = 0 to Isa.width_bytes w - 1 do
    store_byte c (addr + k) (value lsr (8 * k))
  done

let buf_load c w ~signed addr =
  let value = ref 0 in
  for k = Isa.width_bytes w - 1 downto 0 do
    value := (!value lsl 8) lor load_byte c (addr + k)
  done;
  if signed then Semantics.sign_extend w !value else !value

let buf_fstore c addr x =
  check_alias c addr 8;
  let bits = Int64.bits_of_float x in
  for k = 0 to 7 do
    store_byte c (addr + k) (Int64.to_int (Int64.shift_right_logical bits (8 * k)))
  done

let buf_fload c addr =
  let bits = ref 0L in
  for k = 7 downto 0 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (load_byte c (addr + k)))
  done;
  Int64.float_of_bits !bits

(* Guest-state puts have no failure modes and no internal control flow, so a
   maximal run of them (not crossing a branch-target boundary) fuses into a
   single closure with no step dispatch in between. *)
let put_family = function
  | Ir.Iput _ | Ir.Iputf _ | Ir.Iputfl _ -> true
  | _ -> false

let put_op (insn : Ir.t) : ictx -> unit =
  match insn with
  | Ir.Iput (gr, s) -> fun c -> Cpu.set c.cpu gr c.v.(s)
  | Ir.Iputf (gf, s) -> fun c -> Cpu.setf c.cpu gf c.f.(s)
  | Ir.Iputfl s -> fun c -> c.cpu.Cpu.flags <- c.v.(s) land Flags.mask
  | _ -> assert false

let compile_ir (r : Regionir.t) : ir_compiled =
  let body = r.body in
  let n = Array.length body in
  let max_reg acc l = List.fold_left max acc l in
  let nv =
    1 + Array.fold_left (fun acc i -> max_reg acc (Ir.defs i @ Ir.uses i)) 0 body
  in
  let nf =
    1 + Array.fold_left (fun acc i -> max_reg acc (Ir.fdefs i @ Ir.fuses i)) 0 body
  in
  let labels = Regionir.labels r in
  let steps : (ictx -> unit) array =
    Array.make (max n 1) (fun _ -> assert false)
  in
  let oob _ = raise (Invalid_argument "index out of bounds") in
  let target t i = if t > i then steps.(t) else fun c -> steps.(t) c in
  let continuation i = if i + 1 < n then steps.(i + 1) else oob in
  for i = n - 1 downto 0 do
    let k = continuation i in
    steps.(i) <-
      (match body.(i) with
      | Ir.Iget (d, gr) ->
        fun c ->
          c.v.(d) <- Cpu.get c.cpu gr;
          k c
      | (Ir.Iput _ | Ir.Iputf _ | Ir.Iputfl _) as insn ->
        (* collect the maximal fusable run starting here *)
        let rec span j acc =
          if j < n && put_family body.(j) && (j = i || not labels.(j)) then
            span (j + 1) (put_op body.(j) :: acc)
          else (j, List.rev acc)
        in
        let stop, ops = span (i + 1) [ put_op insn ] in
        let kk = if stop < n then steps.(stop) else oob in
        List.fold_right
          (fun op rest c ->
            op c;
            rest c)
          ops kk
      | Ir.Igetf (d, gf) ->
        fun c ->
          c.f.(d) <- Cpu.getf c.cpu gf;
          k c
      | Ir.Igetfl d ->
        fun c ->
          c.v.(d) <- c.cpu.Cpu.flags;
          k c
      | Ir.Ili (d, kv) ->
        let kv = Semantics.mask32 kv in
        fun c ->
          c.v.(d) <- kv;
          k c
      | Ir.Imov (d, s) ->
        fun c ->
          c.v.(d) <- c.v.(s);
          k c
      | Ir.Ibin (op, d, a, b) ->
        let f = binop_fn op in
        fun c ->
          c.v.(d) <- f c.v.(a) c.v.(b);
          k c
      | Ir.Ibini (op, d, a, kv) ->
        let f = binop_fn op in
        let kv = Semantics.mask32 kv in
        fun c ->
          c.v.(d) <- f c.v.(a) kv;
          k c
      | Ir.Imkfl (kind, d, a, b, cc) ->
        fun c ->
          c.v.(d) <- Flagcalc.compute kind ~a:c.v.(a) ~b:c.v.(b) ~c:c.v.(cc);
          k c
      | Ir.Iisel (d, cc, a, b) ->
        fun c ->
          c.v.(d) <- (if c.v.(cc) <> 0 then c.v.(a) else c.v.(b));
          k c
      | Ir.Iload (w, sg, d, a, off) ->
        fun c ->
          c.v.(d) <- buf_load c w ~signed:sg (Semantics.mask32 (c.v.(a) + off));
          k c
      | Ir.Isload (w, sg, d, a, off) ->
        let len = Isa.width_bytes w in
        fun c ->
          let addr = Semantics.mask32 (c.v.(a) + off) in
          c.v.(d) <- buf_load c w ~signed:sg addr;
          c.aliases <- (addr, len) :: c.aliases;
          k c
      | Ir.Istore (w, s, a, off) ->
        fun c ->
          buf_store c w (Semantics.mask32 (c.v.(a) + off)) c.v.(s);
          k c
      | Ir.Ifli (d, x) ->
        fun c ->
          c.f.(d) <- x;
          k c
      | Ir.Ifmov (d, s) ->
        fun c ->
          c.f.(d) <- c.f.(s);
          k c
      | Ir.Ifbin (op, d, a, b) ->
        let g = fbin_fn op in
        fun c ->
          c.f.(d) <- Semantics.fp_bin g c.f.(a) c.f.(b);
          k c
      | Ir.Ifun (op, d, a) ->
        let g = fun_fn op in
        fun c ->
          c.f.(d) <- Semantics.fp_un g c.f.(a);
          k c
      | Ir.Ifload (d, a, off) ->
        fun c ->
          c.f.(d) <- buf_fload c (Semantics.mask32 (c.v.(a) + off));
          k c
      | Ir.Ifstore (s, a, off) ->
        fun c ->
          buf_fstore c (Semantics.mask32 (c.v.(a) + off)) c.f.(s);
          k c
      | Ir.Ifcmp (d, a, b) ->
        fun c ->
          c.v.(d) <- Semantics.fcmp_flags c.f.(a) c.f.(b);
          k c
      | Ir.Icvtif (d, a) ->
        fun c ->
          c.f.(d) <- Semantics.i2f c.v.(a);
          k c
      | Ir.Icvtfi (d, a) ->
        fun c ->
          c.v.(d) <- Semantics.f2i c.f.(a);
          k c
      | Ir.Irt_f (fn, d, a) ->
        let g : Isa.fp_un =
          match fn with Rt_sin -> Fsin | Rt_cos -> Fcos | _ -> assert false
        in
        fun c ->
          c.f.(d) <- Semantics.fp_un g c.f.(a);
          k c
      | Ir.Irt_div { signed; q; r = rr; hi; lo; d } ->
        let div = if signed then Semantics.div_s else Semantics.div_u in
        fun c ->
          let qv, rv = div ~hi:c.v.(hi) ~lo:c.v.(lo) c.v.(d) in
          c.v.(q) <- qv;
          c.v.(rr) <- rv;
          k c
      | Ir.Ibr (cmp, a, b, t) ->
        let holds = cmp_fn cmp in
        let kt = target t i in
        fun c -> if holds c.v.(a) c.v.(b) then kt c else k c
      | Ir.Iassert (cmp, a, b) ->
        let holds = cmp_fn cmp in
        fun c -> if holds c.v.(a) c.v.(b) then k c else c.iout <- Assert_failed
      | Ir.Iexit spec ->
        fun c ->
          Hashtbl.iter (fun addr byte -> Memory.write8 c.mem addr byte) c.sbuf;
          let tgt =
            match spec.target with
            | Ir.Xdirect pc | Ir.Xsyscall pc | Ir.Xinterp pc -> pc
            | Ir.Xindirect s -> c.v.(s)
            | Ir.Xhalt -> -1
          in
          c.iout <- Exited (spec, tgt))
  done;
  { ir_nv = nv; ir_nf = nf; ir_entry = (if n = 0 then oob else steps.(0)) }

let run_compiled (comp : ir_compiled) cpu mem =
  let c =
    {
      v = Array.make comp.ir_nv 0;
      f = Array.make comp.ir_nf 0.0;
      sbuf = Hashtbl.create 16;
      aliases = [];
      cpu;
      mem;
      iout = Assert_failed;
    }
  in
  try
    comp.ir_entry c;
    c.iout
  with Alias_hit -> Alias_failed

let run_ir r cpu mem = run_compiled (compile_ir r) cpu mem
