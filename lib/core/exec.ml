open Darco_host

type engine = Config.engine = Eval | Threaded

type outcome = Threaded.outcome =
  | Exited of Ir.exit_spec * int
  | Assert_failed
  | Alias_failed

let engine_name = function Eval -> "eval" | Threaded -> "threaded"

let engine_of_string = function
  | "eval" -> Some Eval
  | "threaded" -> Some Threaded
  | _ -> None

let run ?(engine = Config.default.engine) r cpu mem =
  match engine with
  | Threaded -> Threaded.run_ir r cpu mem
  | Eval -> (
    match Ir_eval.run r cpu mem with
    | Ir_eval.Exited (spec, target) -> Exited (spec, target)
    | Ir_eval.Assert_failed -> Assert_failed
    | Ir_eval.Alias_failed -> Alias_failed)

let run_region ~engine ~cache m ~resolve ~fuel ?on_retire region =
  match (engine, on_retire) with
  | Threaded, None ->
    Threaded.run m ~resolve ~get:(Codecache.compiled cache) ~fuel region
  | Eval, _ | Threaded, Some _ ->
    (* The deopt back-edge: a retire hook (the timing pipeline) needs the
       per-instruction stream only the walker produces. *)
    Emulator.run m ~resolve ~fuel ?on_retire region
