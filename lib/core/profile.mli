(** Execution profiling.

    During interpretation (IM) the TOL keeps software repetition counters
    per basic block; once a block is translated (BBM), profiling moves into
    the generated code itself: an execution counter drives SBM promotion and
    per-exit edge counters record biased branch directions.  Those in-code
    counters live in TOL memory and are updated by real host stores, so
    their cost is part of the measured instruction stream. *)

type t

val create : Tolmem.t -> t

val note_interp : t -> int -> int
(** Count one interpreted execution of the BB at the given PC; returns the
    new count. *)

val interp_count : t -> int -> int

val exec_counter : t -> int -> int
(** TOL-memory address of the BB's execution counter (allocated on first
    request, at translation time). *)

val edge_counters : t -> int -> int * int
(** (taken, fallthrough) counter addresses for the BB's conditional
    terminator. *)

val edge_counts : t -> int -> (int * int) option
(** Current (taken, fallthrough) counts, if the BB has edge counters. *)

val reset_exec_counter : t -> int -> unit
(** Zero the in-code execution counter (used when a superblock rebuild
    demotes back to BBM). *)

val histogram : t -> (int * int) list
(** Per-BB total observed execution counts (interpreted + in-code BBM
    counter), the TOL profiler state the warm-up heuristic correlates. *)

type persisted = {
  p_interp : (int * int) list;       (** pc -> interpreted count *)
  p_exec : (int * int) list;         (** pc -> counter address *)
  p_edges : (int * (int * int)) list;(** pc -> (taken, fall) addresses *)
}
(** Profiler bookkeeping as plain data, sorted by PC (the counter {e
    values} live in TOL memory and travel with the memory image). *)

val persist : t -> persisted

val unpersist : Tolmem.t -> persisted -> t
(** Rebuild over a restored TOL-memory allocator; counter addresses are
    reattached, not reallocated. *)
