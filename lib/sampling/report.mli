(** Assembly of the canonical sweep-result document.

    [darco sample --json] and the campaign service ({!Darco_serve}) both
    report a sweep as one JSON object; CI [cmp]s those files across
    backends and the artifact library promises byte-identical output on
    a resubmitted sweep.  This module is the single producer of that
    document: field order, float formatting ({!Darco_obs.Jsonx}'s
    [%.17g]) and row shape live here and nowhere else. *)

(** Summary of the {!Plan} that chose a sweep's windows, recorded in
    the document so a reader can tell an adaptive early-exit sweep (and
    how far it ran) from a fixed exhaustive one. *)
type plan_summary = {
  plan_name : string;  (** ["fixed"] or ["adaptive"] *)
  windows_used : int;  (** windows actually dispatched/admitted *)
  ci_target : float;  (** requested relative CI95 target (0 = none) *)
  ci_target_met : bool;
  rounds : int;  (** planner rounds issued *)
}

type t = {
  doc : Darco_obs.Jsonx.t;  (** the complete sweep document *)
  ipc_mean : float;
  ipc_stddev : float;
  ipc_ci95 : float;
  n_ipc : int;  (** windows contributing an IPC (the [Ok] ones) *)
  watts_mean : float;
  watts_ci95 : float;
  epi_nj_mean : float;
  epi_nj_ci95 : float;
  energy_j_mean : float;
  energy_j_ci95 : float;
  n_power : int;  (** windows contributing power-model outputs *)
  avg_error : float option;
      (** mean relative IPC error vs the [full_ipcs] reference, when given *)
  failed : bool;  (** at least one window settled as [Failed] *)
}

val sweep_json :
  benchmark:string ->
  seed:int ->
  interval:int ->
  window:int ->
  warmup:int ->
  ?full_ipcs:(int * float) list ->
  ?plan:plan_summary ->
  (int * Sweep.result) list ->
  t
(** [sweep_json ~benchmark .. rows] builds the document from the sweep's
    [(offset, result)] rows, in row order.  [full_ipcs] optionally maps
    offsets to reference IPCs from uninterrupted detailed simulation
    ([--verify]); matching rows gain [ipc_full]/[error] fields and the
    document an [avg_error] field.  [plan] appends the planner summary
    fields ([plan], [windows_used], [ci_target], [ci_target_met],
    [rounds]); when omitted the document is byte-identical to the
    pre-planner format. *)
