(** Little-endian binary codec primitives for the snapshot format.

    A {!writer} appends; a {!reader} consumes a string with a cursor.  Every
    read validates bounds and tags and raises {!Corrupt} (never an
    out-of-bounds crash) on malformed input — corrupted snapshot files must
    fail cleanly. *)

exception Corrupt of string

type writer
type reader

val writer : unit -> writer
val contents : writer -> string
val reader : string -> reader
val reader_pos : reader -> int
val at_end : reader -> bool
val expect_end : reader -> unit
(** Raise {!Corrupt} if trailing bytes remain. *)

val corrupt : string -> 'a

(** {1 Scalars} *)

val u8 : writer -> int -> unit
val read_u8 : reader -> int

val int : writer -> int -> unit
(** Full OCaml [int], as a little-endian signed 64-bit value. *)

val read_int : reader -> int

val i64 : writer -> int64 -> unit
val read_i64 : reader -> int64

val f64 : writer -> float -> unit
(** Bit-exact (via [Int64.bits_of_float]). *)

val read_f64 : reader -> float

val bool : writer -> bool -> unit
val read_bool : reader -> bool

val str : writer -> string -> unit
(** Length-prefixed. *)

val read_str : reader -> string

val bytes : writer -> Bytes.t -> unit
val read_bytes : reader -> Bytes.t

val tag4 : writer -> string -> unit
(** Exactly four raw bytes (section tags). *)

val read_tag4 : reader -> string

val raw : writer -> string -> unit
(** Append bytes with no framing (section payloads, already self-framed). *)

val read_raw : reader -> int -> string

(** {1 Composites} *)

val option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val read_option : reader -> (reader -> 'a) -> 'a option

val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val read_list : reader -> (reader -> 'a) -> 'a list

val array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val read_array : reader -> (reader -> 'a) -> 'a array

val int_array : writer -> int array -> unit
val read_int_array : reader -> int array

val float_array : writer -> float array -> unit
val read_float_array : reader -> float array

(** {1 Integrity} *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3 polynomial) of the whole string, in [0, 2^32). *)
