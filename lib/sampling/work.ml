module B = Buf
module Jsonx = Darco_obs.Jsonx

type ckpt =
  | Inline of string
  | Stored of string

type t = {
  label : string;
  ckpt : ckpt;
  offset : int;
  window : int;
  warmup : int;
}

let magic = "DWRK"
let version = 2

let check_params ~window ~warmup who =
  if window <= 0 then invalid_arg (who ^ ": window <= 0");
  if warmup < 0 then invalid_arg (who ^ ": warmup < 0")

let pick_checkpoint ~checkpoints ~offset ~warmup =
  let start = max 0 (offset - warmup) in
  Driver.nearest checkpoints start

let of_window ~checkpoints ~label ~offset ~window ~warmup =
  check_params ~window ~warmup "Work.of_window";
  let ck = pick_checkpoint ~checkpoints ~offset ~warmup in
  {
    label;
    ckpt = Inline (Snapshot.to_string ck.Driver.snapshot);
    offset;
    window;
    warmup;
  }

let of_window_stored ~store ~checkpoints ~label ~offset ~window ~warmup =
  check_params ~window ~warmup "Work.of_window_stored";
  let ck = pick_checkpoint ~checkpoints ~offset ~warmup in
  let d = Store.add store (Snapshot.to_string ck.Driver.snapshot) in
  { label; ckpt = Stored d; offset; window; warmup }

let digest t = match t.ckpt with Inline _ -> None | Stored d -> Some d

(* The payload layout is shared between the two versions: label and window
   parameters, then either the embedded snapshot bytes (version 1 — the
   exact layout the original writer produced) or the checkpoint digest
   (version 2).  Per the compatibility policy, the version-1 arm is frozen:
   it is only ever joined by new arms, never edited. *)
let to_string t =
  let p = B.writer () in
  B.str p t.label;
  B.int p t.offset;
  B.int p t.window;
  B.int p t.warmup;
  let v =
    match t.ckpt with
    | Inline snapshot ->
      B.str p snapshot;
      1
    | Stored d ->
      B.str p d;
      version
  in
  let payload = B.contents p in
  let w = B.writer () in
  B.tag4 w magic;
  B.u8 w v;
  B.int w (String.length payload);
  B.int w (B.crc32 payload);
  B.raw w payload;
  B.contents w

let of_string s =
  let r = B.reader s in
  if B.read_tag4 r <> magic then B.corrupt "bad work-unit magic";
  let v = B.read_u8 r in
  if v <> 1 && v <> version then
    B.corrupt (Printf.sprintf "unsupported work-unit version %d" v);
  let len = B.read_int r in
  let crc = B.read_int r in
  let payload = B.read_raw r len in
  B.expect_end r;
  if B.crc32 payload <> crc then B.corrupt "work-unit checksum mismatch";
  let r = B.reader payload in
  let label = B.read_str r in
  let offset = B.read_int r in
  let window = B.read_int r in
  let warmup = B.read_int r in
  let ckpt =
    if v = 1 then Inline (B.read_str r)
    else begin
      let d = B.read_str r in
      if not (Store.is_digest d) then
        B.corrupt (Printf.sprintf "work unit carries malformed digest %S" d);
      Stored d
    end
  in
  B.expect_end r;
  if window <= 0 then B.corrupt "work unit has non-positive window";
  if warmup < 0 then B.corrupt "work unit has negative warmup";
  { label; ckpt; offset; window; warmup }

let snapshot_bytes ?store t =
  match t.ckpt with
  | Inline bytes -> bytes
  | Stored d -> (
    let found = Option.map (fun s -> Store.find s d) store in
    match found with
    | Some (Some bytes) -> bytes
    | Some None ->
      failwith (Printf.sprintf "checkpoint %s not in the store" d)
    | None ->
      failwith
        (Printf.sprintf
           "work unit %s references checkpoint %s but no store is available"
           t.label d))

let exec ?store t =
  let snap = Snapshot.of_string (snapshot_bytes ?store t) in
  let checkpoints = [ { Driver.at = Snapshot.retired snap; snapshot = snap } ] in
  Driver.window_json
    (Driver.detailed_window ~warmup:t.warmup ~checkpoints ~offset:t.offset
       ~window:t.window ())
