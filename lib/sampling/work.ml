module B = Buf
module Jsonx = Darco_obs.Jsonx

type t = {
  label : string;
  snapshot : string;
  offset : int;
  window : int;
  warmup : int;
}

let magic = "DWRK"
let version = 1

let of_window ~checkpoints ~label ~offset ~window ~warmup =
  if window <= 0 then invalid_arg "Work.of_window: window <= 0";
  if warmup < 0 then invalid_arg "Work.of_window: warmup < 0";
  let start = max 0 (offset - warmup) in
  let ck = Driver.nearest checkpoints start in
  { label; snapshot = Snapshot.to_string ck.Driver.snapshot; offset; window; warmup }

let to_string t =
  let p = B.writer () in
  B.str p t.label;
  B.int p t.offset;
  B.int p t.window;
  B.int p t.warmup;
  B.str p t.snapshot;
  let payload = B.contents p in
  let w = B.writer () in
  B.tag4 w magic;
  B.u8 w version;
  B.int w (String.length payload);
  B.int w (B.crc32 payload);
  B.raw w payload;
  B.contents w

let of_string s =
  let r = B.reader s in
  if B.read_tag4 r <> magic then B.corrupt "bad work-unit magic";
  (match B.read_u8 r with
  | v when v = version -> ()
  | v -> B.corrupt (Printf.sprintf "unsupported work-unit version %d" v));
  let len = B.read_int r in
  let crc = B.read_int r in
  let payload = B.read_raw r len in
  B.expect_end r;
  if B.crc32 payload <> crc then B.corrupt "work-unit checksum mismatch";
  let r = B.reader payload in
  let label = B.read_str r in
  let offset = B.read_int r in
  let window = B.read_int r in
  let warmup = B.read_int r in
  let snapshot = B.read_str r in
  B.expect_end r;
  if window <= 0 then B.corrupt "work unit has non-positive window";
  if warmup < 0 then B.corrupt "work unit has negative warmup";
  { label; snapshot; offset; window; warmup }

let exec t =
  let snap = Snapshot.of_string t.snapshot in
  let checkpoints = [ { Driver.at = Snapshot.retired snap; snapshot = snap } ] in
  Driver.window_json
    (Driver.detailed_window ~warmup:t.warmup ~checkpoints ~offset:t.offset
       ~window:t.window ())
