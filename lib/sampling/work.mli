(** A self-contained, portable sample work unit.

    One detailed measurement window, packaged so that {e any} process — a
    forked child on this machine or a worker daemon on another one — can
    execute it with no shared state beyond a checkpoint {!Store}.  The
    binary encoding is framed like the DSNP snapshot container (magic,
    version, length, CRC-32), so a corrupted unit is rejected with
    {!Buf.Corrupt}, never mis-executed.

    Two format versions exist, both decoded forever (the compatibility
    policy of DESIGN.md §9 applies to work frames too):

    - {b version 1} embeds the starting snapshot's encoded bytes in every
      unit ({!Inline}) — self-contained but O(snapshot) on the wire for
      every window;
    - {b version 2} carries only the snapshot's content digest
      ({!Stored}); executing parties resolve it through a {!Store}, so a
      sweep ships each distinct checkpoint once.

    The writer emits the version matching the payload: inline units encode
    as version-1 bytes (bit-compatible with the original writer, pinned by
    the golden fixture), digest units as version 2. *)

type ckpt =
  | Inline of string  (** encoded functional snapshot ({!Snapshot.to_string}) *)
  | Stored of string  (** {!Store.digest} of those bytes *)

type t = {
  label : string;     (** human-readable sample name, e.g. ["429.mcf@70000"] *)
  ckpt : ckpt;        (** the snapshot this window starts from *)
  offset : int;       (** where the measurement window begins *)
  window : int;       (** guest instructions to measure *)
  warmup : int;       (** detailed warm-up instructions before the window *)
}

val version : int
(** Current (newest) work-frame version: 2. *)

val of_window :
  checkpoints:Driver.checkpoint list ->
  label:string ->
  offset:int ->
  window:int ->
  warmup:int ->
  t
(** Package one sample with the snapshot {e embedded} ({!Inline}): pick
    the nearest checkpoint at or before [offset - warmup] and inline its
    encoded bytes.  Executing the unit is then bit-identical to
    [Driver.detailed_window] over the full checkpoint list. *)

val of_window_stored :
  store:Store.t ->
  checkpoints:Driver.checkpoint list ->
  label:string ->
  offset:int ->
  window:int ->
  warmup:int ->
  t
(** Same window selection, but the snapshot bytes go into [store] and the
    unit carries only their digest ({!Stored}).  Results are byte-identical
    to the inline form — the store resolves to the exact same bytes. *)

val digest : t -> string option
(** The checkpoint digest of a {!Stored} unit; [None] for {!Inline}. *)

val snapshot_bytes : ?store:Store.t -> t -> string
(** The unit's starting snapshot bytes: the inline payload, or the store
    lookup for a digest unit.  Raises [Failure] when a digest unit has no
    store or the store lacks the checkpoint. *)

val exec : ?store:Store.t -> t -> Darco_obs.Jsonx.t
(** Decode the starting snapshot and run the detailed window
    ([Driver.detailed_window] under default configs), returning
    [Driver.window_json] of the result.  Raises {!Buf.Corrupt} if the
    snapshot bytes are corrupt, [Failure] if a digest cannot be
    resolved (see {!snapshot_bytes}). *)

(** {1 Wire encoding} *)

val to_string : t -> string
val of_string : string -> t
(** Raises {!Buf.Corrupt} on bad magic, version, checksum or framing —
    including a version-2 frame whose digest is not 32 hex characters. *)
