(** A self-contained, portable sample work unit.

    One detailed measurement window, packaged so that {e any} process — a
    forked child on this machine or a worker daemon on another one — can
    execute it with no shared state: the encoded functional snapshot it
    starts from plus the window parameters.  The binary encoding is framed
    like the DSNP snapshot container (magic, version, length, CRC-32), so a
    corrupted unit is rejected with {!Buf.Corrupt}, never mis-executed. *)

type t = {
  label : string;     (** human-readable sample name, e.g. ["429.mcf@70000"] *)
  snapshot : string;  (** encoded functional snapshot ({!Snapshot.to_string}) *)
  offset : int;       (** where the measurement window begins *)
  window : int;       (** guest instructions to measure *)
  warmup : int;       (** detailed warm-up instructions before the window *)
}

val of_window :
  checkpoints:Driver.checkpoint list ->
  label:string ->
  offset:int ->
  window:int ->
  warmup:int ->
  t
(** Package one sample: pick the nearest checkpoint at or before
    [offset - warmup] and embed its encoded snapshot.  Executing the unit
    is then bit-identical to [Driver.detailed_window] over the full
    checkpoint list. *)

val exec : t -> Darco_obs.Jsonx.t
(** Decode the embedded snapshot and run the detailed window
    ([Driver.detailed_window] under default configs), returning
    [Driver.window_json] of the result.  Raises {!Buf.Corrupt} if the
    embedded snapshot is corrupt. *)

(** {1 Wire encoding} *)

val to_string : t -> string
val of_string : string -> t
(** Raises {!Buf.Corrupt} on bad magic, version, checksum or framing. *)
