type 'b t = {
  lock : Mutex.t;
  work_ready : Condition.t;
  done_ready : Condition.t;
  queue : (int * (unit -> 'b)) Queue.t;
  completions : (int * ('b, exn) result) Queue.t;
  mutable submitted : int;
  mutable delivered : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t array;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  njobs : int;
  nsize : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* One byte per completion.  The write end is non-blocking: a full pipe
   means the read end is already screaming "readable", which is all a
   wakeup has to guarantee. *)
let ring t =
  try ignore (Unix.write_substring t.wake_w "!" 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()

(* Drain every buffered wake byte.  Done BEFORE popping: a completion
   pushed after the drain rings again, so the fd is readable whenever a
   completion might be waiting — spurious wakeups possible, missed ones
   not. *)
let drain_all t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | n -> if n = 64 then go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work_ready t.lock
    done;
    if t.stopping then Mutex.unlock t.lock
    else begin
      let tag, thunk = Queue.pop t.queue in
      Mutex.unlock t.lock;
      let result = try Ok (thunk ()) with e -> Error e in
      locked t (fun () ->
          Queue.push (tag, result) t.completions;
          Condition.signal t.done_ready);
      ring t;
      loop ()
    end
  in
  loop ()

let create ~jobs () =
  if jobs < 1 then invalid_arg "Dpool.create: jobs must be >= 1";
  (* Never spawn more compute domains than the runtime recommends:
     domains share stop-the-world minor collections, so oversubscribing
     cores turns every minor GC into a scheduling stampede (measured 3x
     slower on a single-core host).  Forked workers have no such coupling
     — the kernel time-slices them fine — so only the domain pool clamps.
     The queue absorbs the difference; callers still get [jobs]-deep
     admission. *)
  let size = max 1 (min jobs (Domain.recommended_domain_count ())) in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_w;
  Unix.set_nonblock wake_r;
  let t =
    {
      lock = Mutex.create ();
      work_ready = Condition.create ();
      done_ready = Condition.create ();
      queue = Queue.create ();
      completions = Queue.create ();
      submitted = 0;
      delivered = 0;
      stopping = false;
      domains = [||];
      wake_r;
      wake_w;
      njobs = jobs;
      nsize = size;
    }
  in
  t.domains <- Array.init size (fun _ -> Domain.spawn (worker t));
  t

let jobs t = t.njobs
let size t = t.nsize

let submit t ~tag thunk =
  locked t (fun () ->
      if t.stopping then invalid_arg "Dpool.submit: pool is shut down";
      Queue.push (tag, thunk) t.queue;
      t.submitted <- t.submitted + 1;
      Condition.signal t.work_ready)

let pending t = locked t (fun () -> t.submitted - t.delivered)

let pop_locked t =
  match Queue.take_opt t.completions with
  | None -> None
  | Some c ->
    t.delivered <- t.delivered + 1;
    Some c

let try_next t =
  drain_all t;
  locked t (fun () -> pop_locked t)

let await t =
  drain_all t;
  locked t (fun () ->
      let rec wait () =
        match pop_locked t with
        | Some c -> c
        | None ->
          if t.delivered = t.submitted then
            invalid_arg "Dpool.await: nothing pending";
          Condition.wait t.done_ready t.lock;
          wait ()
      in
      wait ())

let wake_fd t = t.wake_r

let shutdown t =
  let doms =
    locked t (fun () ->
        if t.stopping then [||]
        else begin
          t.stopping <- true;
          Queue.clear t.queue;
          Condition.broadcast t.work_ready;
          let d = t.domains in
          t.domains <- [||];
          d
        end)
  in
  if Array.length doms > 0 then begin
    Array.iter Domain.join doms;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end
