open Darco_guest
open Darco_host
module B = Buf
module Stats = Darco_obs.Stats
module Jsonx = Darco_obs.Jsonx

type kind = Functional | Full

(* A snapshot holds already-encoded section payloads, so capturing is a deep
   copy: the live simulation can keep running without disturbing it. *)
type t = { snap_kind : kind; sections : (string * string) list }

let version = 1
let magic = "DSNP"
let guest_tag = "GUST"
let code_tag = "CODE"
let timing_tag = "TIMG"

let kind t = t.snap_kind

let section t tag =
  match List.assoc_opt tag t.sections with
  | Some payload -> payload
  | None -> B.corrupt (Printf.sprintf "snapshot has no %S section" tag)

(* --- small codecs -------------------------------------------------------- *)

let enum_w w to_int v = B.u8 w (to_int v)

let enum_r r of_int name =
  let n = B.read_u8 r in
  match of_int n with
  | Some v -> v
  | None -> B.corrupt (Printf.sprintf "invalid %s tag %d" name n)

let w_width w (x : Isa.width) =
  enum_w w (function Isa.W8 -> 0 | W16 -> 1 | W32 -> 2) x

let r_width r =
  enum_r r
    (function 0 -> Some Isa.W8 | 1 -> Some Isa.W16 | 2 -> Some Isa.W32 | _ -> None)
    "width"

let w_cpu w (c : Cpu.t) =
  B.int_array w c.regs;
  B.float_array w c.fregs;
  B.int w c.flags;
  B.int w c.eip;
  B.bool w c.halted

let r_cpu r : Cpu.t =
  let regs = B.read_int_array r in
  let fregs = B.read_float_array r in
  let flags = B.read_int r in
  let eip = B.read_int r in
  let halted = B.read_bool r in
  if Array.length regs <> 8 || Array.length fregs <> 8 then
    B.corrupt "guest register file has wrong size";
  { regs; fregs; flags; eip; halted }

let w_memory w mem =
  B.list w
    (fun w idx ->
      B.int w idx;
      B.bytes w (Memory.get_page mem idx))
    (Memory.touched_pages mem)

let r_memory r policy =
  let mem = Memory.create policy in
  let pages =
    B.read_list r (fun r ->
        let idx = B.read_int r in
        let data = B.read_bytes r in
        (idx, data))
  in
  List.iter
    (fun (idx, data) ->
      if Bytes.length data <> Memory.page_size then
        B.corrupt "memory page has wrong size";
      Memory.install_page mem idx data)
    pages;
  mem

let w_sys w (s : Syscall.persisted) =
  B.int w s.p_brk;
  B.int w s.p_time;
  B.int w s.p_input_pos;
  B.str w s.p_input;
  B.i64 w s.p_rng_state;
  B.str w s.p_output

let r_sys r : Syscall.persisted =
  let p_brk = B.read_int r in
  let p_time = B.read_int r in
  let p_input_pos = B.read_int r in
  let p_input = B.read_str r in
  let p_rng_state = B.read_i64 r in
  let p_output = B.read_str r in
  { p_brk; p_time; p_input_pos; p_input; p_rng_state; p_output }

(* --- configuration ------------------------------------------------------- *)

let w_costs w (c : Darco.Config.costs) =
  B.int w c.interp_per_insn;
  B.int w c.interp_profile_bb;
  B.int w c.bb_translate_base;
  B.int w c.bb_translate_per_insn;
  B.int w c.sb_translate_base;
  B.int w c.sb_translate_per_insn;
  B.int w c.prologue;
  B.int w c.cc_lookup;
  B.int w c.chain_attempt;
  B.int w c.ibtc_fill;
  B.int w c.dispatch_other;
  B.int w c.init_once

let r_costs r : Darco.Config.costs =
  let interp_per_insn = B.read_int r in
  let interp_profile_bb = B.read_int r in
  let bb_translate_base = B.read_int r in
  let bb_translate_per_insn = B.read_int r in
  let sb_translate_base = B.read_int r in
  let sb_translate_per_insn = B.read_int r in
  let prologue = B.read_int r in
  let cc_lookup = B.read_int r in
  let chain_attempt = B.read_int r in
  let ibtc_fill = B.read_int r in
  let dispatch_other = B.read_int r in
  let init_once = B.read_int r in
  {
    interp_per_insn;
    interp_profile_bb;
    bb_translate_base;
    bb_translate_per_insn;
    sb_translate_base;
    sb_translate_per_insn;
    prologue;
    cc_lookup;
    chain_attempt;
    ibtc_fill;
    dispatch_other;
    init_once;
  }

let w_config w (c : Darco.Config.t) =
  B.int w c.bb_threshold;
  B.int w c.sb_threshold;
  B.int w c.sb_max_insns;
  B.int w c.sb_max_bbs;
  B.f64 w c.branch_bias;
  B.f64 w c.min_reach_prob;
  B.int w c.unroll_factor;
  B.int w c.assert_fail_limit;
  B.bool w c.use_asserts;
  B.bool w c.use_mem_speculation;
  B.bool w c.opt_const_fold;
  B.bool w c.opt_copy_prop;
  B.bool w c.opt_cse;
  B.bool w c.opt_dce;
  B.bool w c.opt_rle;
  B.bool w c.opt_schedule;
  B.bool w c.use_chaining;
  B.bool w c.use_ibtc;
  B.int w c.ibtc_bits;
  enum_w w
    (function Darco.Config.No_fault -> 0 | Opt_drop_store -> 1 | Sched_break_dep -> 2)
    c.inject_fault;
  B.int w c.slice_fuel;
  B.int w c.code_cache_capacity;
  w_costs w c.costs

let r_config r : Darco.Config.t =
  let bb_threshold = B.read_int r in
  let sb_threshold = B.read_int r in
  let sb_max_insns = B.read_int r in
  let sb_max_bbs = B.read_int r in
  let branch_bias = B.read_f64 r in
  let min_reach_prob = B.read_f64 r in
  let unroll_factor = B.read_int r in
  let assert_fail_limit = B.read_int r in
  let use_asserts = B.read_bool r in
  let use_mem_speculation = B.read_bool r in
  let opt_const_fold = B.read_bool r in
  let opt_copy_prop = B.read_bool r in
  let opt_cse = B.read_bool r in
  let opt_dce = B.read_bool r in
  let opt_rle = B.read_bool r in
  let opt_schedule = B.read_bool r in
  let use_chaining = B.read_bool r in
  let use_ibtc = B.read_bool r in
  let ibtc_bits = B.read_int r in
  let inject_fault =
    enum_r r
      (function
        | 0 -> Some Darco.Config.No_fault
        | 1 -> Some Opt_drop_store
        | 2 -> Some Sched_break_dep
        | _ -> None)
      "fault"
  in
  let slice_fuel = B.read_int r in
  let code_cache_capacity = B.read_int r in
  let costs = r_costs r in
  {
    bb_threshold;
    sb_threshold;
    sb_max_insns;
    sb_max_bbs;
    branch_bias;
    min_reach_prob;
    unroll_factor;
    assert_fail_limit;
    use_asserts;
    use_mem_speculation;
    opt_const_fold;
    opt_copy_prop;
    opt_cse;
    opt_dce;
    opt_rle;
    opt_schedule;
    use_chaining;
    use_ibtc;
    ibtc_bits;
    inject_fault;
    slice_fuel;
    code_cache_capacity;
    (* Deliberately not on the wire (format stays v1): the engine is an
       execution-strategy choice of the restoring process, not simulated
       state — a snapshot taken under one engine resumes under another. *)
    engine = Darco.Config.default.engine;
    costs;
  }

(* --- statistics ---------------------------------------------------------- *)

let w_stats w (s : Stats.t) =
  B.int w s.guest_im;
  B.int w s.guest_bbm;
  B.int w s.guest_sbm;
  B.int w s.host_app_bbm;
  B.int w s.host_app_sbm;
  B.int_array w s.overhead;
  B.int w s.bb_translations;
  B.int w s.sb_translations;
  B.int w s.sb_rebuilds_noassert;
  B.int w s.sb_rebuilds_nomem;
  B.int w s.assert_rollbacks;
  B.int w s.alias_rollbacks;
  B.int w s.page_requests;
  B.int w s.syscalls;
  B.int w s.chains_made;
  B.int w s.chains_followed;
  B.int w s.ibtc_fills;
  B.int w s.ibtc_misses;
  B.int w s.code_cache_flushes;
  B.int w s.wasted_host;
  B.int w s.validations;
  B.option w B.int s.startup_insns;
  B.int w s.unrolled_superblocks

let r_stats r : Stats.t =
  let guest_im = B.read_int r in
  let guest_bbm = B.read_int r in
  let guest_sbm = B.read_int r in
  let host_app_bbm = B.read_int r in
  let host_app_sbm = B.read_int r in
  let overhead = B.read_int_array r in
  if Array.length overhead <> 7 then B.corrupt "overhead array has wrong size";
  let bb_translations = B.read_int r in
  let sb_translations = B.read_int r in
  let sb_rebuilds_noassert = B.read_int r in
  let sb_rebuilds_nomem = B.read_int r in
  let assert_rollbacks = B.read_int r in
  let alias_rollbacks = B.read_int r in
  let page_requests = B.read_int r in
  let syscalls = B.read_int r in
  let chains_made = B.read_int r in
  let chains_followed = B.read_int r in
  let ibtc_fills = B.read_int r in
  let ibtc_misses = B.read_int r in
  let code_cache_flushes = B.read_int r in
  let wasted_host = B.read_int r in
  let validations = B.read_int r in
  let startup_insns = B.read_option r B.read_int in
  let unrolled_superblocks = B.read_int r in
  {
    guest_im;
    guest_bbm;
    guest_sbm;
    host_app_bbm;
    host_app_sbm;
    overhead;
    bb_translations;
    sb_translations;
    sb_rebuilds_noassert;
    sb_rebuilds_nomem;
    assert_rollbacks;
    alias_rollbacks;
    page_requests;
    syscalls;
    chains_made;
    chains_followed;
    ibtc_fills;
    ibtc_misses;
    code_cache_flushes;
    wasted_host;
    validations;
    startup_insns;
    unrolled_superblocks;
  }

(* --- host code ----------------------------------------------------------- *)

let w_binop w (x : Code.binop) =
  enum_w w
    (function
      | Code.Add -> 0 | Sub -> 1 | Mul -> 2 | Mulhu -> 3 | Mulhs -> 4
      | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9 | Sar -> 10
      | Slt -> 11 | Sltu -> 12 | Seq -> 13 | Sne -> 14)
    x

let r_binop r =
  enum_r r
    (function
      | 0 -> Some Code.Add | 1 -> Some Code.Sub | 2 -> Some Code.Mul
      | 3 -> Some Code.Mulhu | 4 -> Some Code.Mulhs | 5 -> Some Code.And
      | 6 -> Some Code.Or | 7 -> Some Code.Xor | 8 -> Some Code.Shl
      | 9 -> Some Code.Shr | 10 -> Some Code.Sar | 11 -> Some Code.Slt
      | 12 -> Some Code.Sltu | 13 -> Some Code.Seq | 14 -> Some Code.Sne
      | _ -> None)
    "binop"

let w_cmp w (x : Code.cmp) =
  enum_w w
    (function
      | Code.Beq -> 0 | Bne -> 1 | Blt -> 2 | Bge -> 3 | Bltu -> 4 | Bgeu -> 5)
    x

let r_cmp r =
  enum_r r
    (function
      | 0 -> Some Code.Beq | 1 -> Some Code.Bne | 2 -> Some Code.Blt
      | 3 -> Some Code.Bge | 4 -> Some Code.Bltu | 5 -> Some Code.Bgeu
      | _ -> None)
    "cmp"

let w_fbinop w (x : Code.fbinop) =
  enum_w w (function Code.Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3) x

let r_fbinop r =
  enum_r r
    (function
      | 0 -> Some Code.Fadd | 1 -> Some Code.Fsub | 2 -> Some Code.Fmul
      | 3 -> Some Code.Fdiv | _ -> None)
    "fbinop"

let w_funop w (x : Code.funop) =
  enum_w w (function Code.Fsqrt -> 0 | Fabs -> 1 | Fneg -> 2) x

let r_funop r =
  enum_r r
    (function
      | 0 -> Some Code.Fsqrt | 1 -> Some Code.Fabs | 2 -> Some Code.Fneg
      | _ -> None)
    "funop"

let w_rt_fn w (x : Code.rt_fn) =
  enum_w w (function Code.Rt_sin -> 0 | Rt_cos -> 1 | Rt_divu -> 2 | Rt_divs -> 3) x

let r_rt_fn r =
  enum_r r
    (function
      | 0 -> Some Code.Rt_sin | 1 -> Some Code.Rt_cos | 2 -> Some Code.Rt_divu
      | 3 -> Some Code.Rt_divs | _ -> None)
    "rt_fn"

let w_flkind w (x : Code.flkind) =
  enum_w w
    (function
      | Code.Fl_add -> 0 | Fl_adc -> 1 | Fl_sub -> 2 | Fl_sbb -> 3
      | Fl_logic -> 4 | Fl_shl -> 5 | Fl_shr -> 6 | Fl_sar -> 7 | Fl_rol -> 8
      | Fl_ror -> 9 | Fl_inc -> 10 | Fl_dec -> 11 | Fl_neg -> 12
      | Fl_mulu -> 13 | Fl_muls -> 14)
    x

let r_flkind r =
  enum_r r
    (function
      | 0 -> Some Code.Fl_add | 1 -> Some Code.Fl_adc | 2 -> Some Code.Fl_sub
      | 3 -> Some Code.Fl_sbb | 4 -> Some Code.Fl_logic | 5 -> Some Code.Fl_shl
      | 6 -> Some Code.Fl_shr | 7 -> Some Code.Fl_sar | 8 -> Some Code.Fl_rol
      | 9 -> Some Code.Fl_ror | 10 -> Some Code.Fl_inc | 11 -> Some Code.Fl_dec
      | 12 -> Some Code.Fl_neg | 13 -> Some Code.Fl_mulu
      | 14 -> Some Code.Fl_muls | _ -> None)
    "flkind"

let w_exit_kind w (x : Code.exit_kind) =
  match x with
  | Code.Exit_direct pc -> B.u8 w 0; B.int w pc
  | Exit_indirect reg -> B.u8 w 1; B.int w reg
  | Exit_syscall pc -> B.u8 w 2; B.int w pc
  | Exit_interp pc -> B.u8 w 3; B.int w pc
  | Exit_promote pc -> B.u8 w 4; B.int w pc
  | Exit_halt -> B.u8 w 5

let r_exit_kind r : Code.exit_kind =
  match B.read_u8 r with
  | 0 -> Exit_direct (B.read_int r)
  | 1 -> Exit_indirect (B.read_int r)
  | 2 -> Exit_syscall (B.read_int r)
  | 3 -> Exit_interp (B.read_int r)
  | 4 -> Exit_promote (B.read_int r)
  | 5 -> Exit_halt
  | n -> B.corrupt (Printf.sprintf "invalid exit_kind tag %d" n)

(* Chain links are serialized as target-region ids; a second pass after all
   regions are decoded patches the [region option] pointers and rebuilds the
   [incoming] lists from the live exits. *)
let w_exit w (e : Code.exit_info) =
  B.int w e.exit_id;
  w_exit_kind w e.kind;
  B.int w e.guest_retired;
  B.option w B.int (Option.map (fun (tgt : Code.region) -> tgt.id) e.chain);
  B.bool w e.prefer_bb

type pending_exit = { exit_ : Code.exit_info; chain_id : int option }

let r_exit r pending : Code.exit_info =
  let exit_id = B.read_int r in
  let kind = r_exit_kind r in
  let guest_retired = B.read_int r in
  let chain_id = B.read_option r B.read_int in
  let prefer_bb = B.read_bool r in
  let e : Code.exit_info = { exit_id; kind; guest_retired; chain = None; prefer_bb } in
  pending := { exit_ = e; chain_id } :: !pending;
  e

let w_insn w (i : Code.insn) =
  match i with
  | Code.Nop -> B.u8 w 0
  | Li (rd, v) -> B.u8 w 1; B.int w rd; B.int w v
  | Bin (op, rd, ra, rb) -> B.u8 w 2; w_binop w op; B.int w rd; B.int w ra; B.int w rb
  | Bini (op, rd, ra, v) -> B.u8 w 3; w_binop w op; B.int w rd; B.int w ra; B.int w v
  | Load (wd, s, rd, ra, d) ->
    B.u8 w 4; w_width w wd; B.bool w s; B.int w rd; B.int w ra; B.int w d
  | Sload (wd, s, rd, ra, d) ->
    B.u8 w 5; w_width w wd; B.bool w s; B.int w rd; B.int w ra; B.int w d
  | Store (wd, rv, ra, d) -> B.u8 w 6; w_width w wd; B.int w rv; B.int w ra; B.int w d
  | Fli (fd, v) -> B.u8 w 7; B.int w fd; B.f64 w v
  | Fmov (fd, fs) -> B.u8 w 8; B.int w fd; B.int w fs
  | Fbin (op, fd, fa, fb) -> B.u8 w 9; w_fbinop w op; B.int w fd; B.int w fa; B.int w fb
  | Fun (op, fd, fa) -> B.u8 w 10; w_funop w op; B.int w fd; B.int w fa
  | Fload (fd, ra, d) -> B.u8 w 11; B.int w fd; B.int w ra; B.int w d
  | Fstore (fv, ra, d) -> B.u8 w 12; B.int w fv; B.int w ra; B.int w d
  | Fcmp (rd, fa, fb) -> B.u8 w 13; B.int w rd; B.int w fa; B.int w fb
  | Cvtif (fd, ra) -> B.u8 w 14; B.int w fd; B.int w ra
  | Cvtfi (rd, fa) -> B.u8 w 15; B.int w rd; B.int w fa
  | Mkfl (k, rd, a, b, c) ->
    B.u8 w 16; w_flkind w k; B.int w rd; B.int w a; B.int w b; B.int w c
  | Isel (rd, rc, ra, rb) -> B.u8 w 17; B.int w rd; B.int w rc; B.int w ra; B.int w rb
  | Callrt_f (fn, fd, fs) -> B.u8 w 18; w_rt_fn w fn; B.int w fd; B.int w fs
  | Callrt_div { signed; q; r; hi; lo; d } ->
    B.u8 w 19; B.bool w signed; B.int w q; B.int w r;
    B.int w hi; B.int w lo; B.int w d
  | B (c, ra, rb, t) -> B.u8 w 20; w_cmp w c; B.int w ra; B.int w rb; B.int w t
  | J t -> B.u8 w 21; B.int w t
  | Jr (ra, rg) -> B.u8 w 22; B.int w ra; B.int w rg
  | Assert (c, ra, rb) -> B.u8 w 23; w_cmp w c; B.int w ra; B.int w rb
  | Chk -> B.u8 w 24
  | Commit n -> B.u8 w 25; B.int w n
  | Exit e -> B.u8 w 26; w_exit w e

let r_insn r pending : Code.insn =
  match B.read_u8 r with
  | 0 -> Nop
  | 1 ->
    let rd = B.read_int r in
    Li (rd, B.read_int r)
  | 2 ->
    let op = r_binop r in
    let rd = B.read_int r in
    let ra = B.read_int r in
    Bin (op, rd, ra, B.read_int r)
  | 3 ->
    let op = r_binop r in
    let rd = B.read_int r in
    let ra = B.read_int r in
    Bini (op, rd, ra, B.read_int r)
  | 4 ->
    let wd = r_width r in
    let s = B.read_bool r in
    let rd = B.read_int r in
    let ra = B.read_int r in
    Load (wd, s, rd, ra, B.read_int r)
  | 5 ->
    let wd = r_width r in
    let s = B.read_bool r in
    let rd = B.read_int r in
    let ra = B.read_int r in
    Sload (wd, s, rd, ra, B.read_int r)
  | 6 ->
    let wd = r_width r in
    let rv = B.read_int r in
    let ra = B.read_int r in
    Store (wd, rv, ra, B.read_int r)
  | 7 ->
    let fd = B.read_int r in
    Fli (fd, B.read_f64 r)
  | 8 ->
    let fd = B.read_int r in
    Fmov (fd, B.read_int r)
  | 9 ->
    let op = r_fbinop r in
    let fd = B.read_int r in
    let fa = B.read_int r in
    Fbin (op, fd, fa, B.read_int r)
  | 10 ->
    let op = r_funop r in
    let fd = B.read_int r in
    Fun (op, fd, B.read_int r)
  | 11 ->
    let fd = B.read_int r in
    let ra = B.read_int r in
    Fload (fd, ra, B.read_int r)
  | 12 ->
    let fv = B.read_int r in
    let ra = B.read_int r in
    Fstore (fv, ra, B.read_int r)
  | 13 ->
    let rd = B.read_int r in
    let fa = B.read_int r in
    Fcmp (rd, fa, B.read_int r)
  | 14 ->
    let fd = B.read_int r in
    Cvtif (fd, B.read_int r)
  | 15 ->
    let rd = B.read_int r in
    Cvtfi (rd, B.read_int r)
  | 16 ->
    let k = r_flkind r in
    let rd = B.read_int r in
    let a = B.read_int r in
    let b = B.read_int r in
    Mkfl (k, rd, a, b, B.read_int r)
  | 17 ->
    let rd = B.read_int r in
    let rc = B.read_int r in
    let ra = B.read_int r in
    Isel (rd, rc, ra, B.read_int r)
  | 18 ->
    let fn = r_rt_fn r in
    let fd = B.read_int r in
    Callrt_f (fn, fd, B.read_int r)
  | 19 ->
    let signed = B.read_bool r in
    let q = B.read_int r in
    let rr = B.read_int r in
    let hi = B.read_int r in
    let lo = B.read_int r in
    Callrt_div { signed; q; r = rr; hi; lo; d = B.read_int r }
  | 20 ->
    let c = r_cmp r in
    let ra = B.read_int r in
    let rb = B.read_int r in
    B (c, ra, rb, B.read_int r)
  | 21 -> J (B.read_int r)
  | 22 ->
    let ra = B.read_int r in
    Jr (ra, B.read_int r)
  | 23 ->
    let c = r_cmp r in
    let ra = B.read_int r in
    Assert (c, ra, B.read_int r)
  | 24 -> Chk
  | 25 -> Commit (B.read_int r)
  | 26 -> Exit (r_exit r pending)
  | n -> B.corrupt (Printf.sprintf "invalid insn tag %d" n)

let w_region w (rg : Code.region) =
  B.int w rg.id;
  B.int w rg.entry_pc;
  enum_w w (function `Bb -> 0 | `Super -> 1) rg.mode;
  B.int w rg.base;
  B.bool w rg.invalidated;
  B.array w w_insn rg.code

let r_region r pending : Code.region =
  let id = B.read_int r in
  let entry_pc = B.read_int r in
  let mode =
    enum_r r (function 0 -> Some `Bb | 1 -> Some `Super | _ -> None) "region mode"
  in
  let base = B.read_int r in
  let invalidated = B.read_bool r in
  let code = B.read_array r (fun r -> r_insn r pending) in
  { id; entry_pc; mode; base; code; incoming = []; invalidated }

let w_codecache w (p : Darco.Codecache.persisted) =
  B.list w w_region p.p_regions;
  B.list w
    (fun w (pc, ids) ->
      B.int w pc;
      B.list w B.int ids)
    p.p_by_pc;
  B.int w p.p_next_id;
  B.int w p.p_next_base;
  B.int w p.p_total_insns;
  B.int w p.p_ibtc_base;
  B.int w p.p_ibtc_entries

let r_codecache r : Darco.Codecache.persisted =
  let pending = ref [] in
  let p_regions = B.read_list r (fun r -> r_region r pending) in
  let by_id = Hashtbl.create 64 in
  List.iter (fun (rg : Code.region) -> Hashtbl.replace by_id rg.id rg) p_regions;
  (* Patch chain pointers and rebuild incoming lists.  [pending] is in
     reverse decode order; reverse it so the rebuild is deterministic. *)
  List.iter
    (fun { exit_; chain_id } ->
      match chain_id with
      | None -> ()
      | Some id -> (
        match Hashtbl.find_opt by_id id with
        | None -> B.corrupt (Printf.sprintf "chain to unknown region %d" id)
        | Some target ->
          exit_.chain <- Some target;
          target.incoming <- exit_ :: target.incoming))
    (List.rev !pending);
  let p_by_pc =
    B.read_list r (fun r ->
        let pc = B.read_int r in
        let ids = B.read_list r B.read_int in
        List.iter
          (fun id ->
            if not (Hashtbl.mem by_id id) then
              B.corrupt (Printf.sprintf "pc index references unknown region %d" id))
          ids;
        (pc, ids))
  in
  let p_next_id = B.read_int r in
  let p_next_base = B.read_int r in
  let p_total_insns = B.read_int r in
  let p_ibtc_base = B.read_int r in
  let p_ibtc_entries = B.read_int r in
  {
    p_regions;
    p_by_pc;
    p_next_id;
    p_next_base;
    p_total_insns;
    p_ibtc_base;
    p_ibtc_entries;
  }

(* --- profiler / hashtable bookkeeping ------------------------------------ *)

let w_profile w (p : Darco.Profile.persisted) =
  B.list w
    (fun w (pc, n) ->
      B.int w pc;
      B.int w n)
    p.p_interp;
  B.list w
    (fun w (pc, addr) ->
      B.int w pc;
      B.int w addr)
    p.p_exec;
  B.list w
    (fun w (pc, (t, f)) ->
      B.int w pc;
      B.int w t;
      B.int w f)
    p.p_edges

let r_profile r : Darco.Profile.persisted =
  let pair r =
    let a = B.read_int r in
    (a, B.read_int r)
  in
  let p_interp = B.read_list r pair in
  let p_exec = B.read_list r pair in
  let p_edges =
    B.read_list r (fun r ->
        let pc = B.read_int r in
        let t = B.read_int r in
        (pc, (t, B.read_int r)))
  in
  { p_interp; p_exec; p_edges }

let sorted_tbl tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let tbl_of_list xs =
  let tbl = Hashtbl.create (max 16 (List.length xs)) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) xs;
  tbl

(* --- sections ------------------------------------------------------------ *)

let encode_guest (ir : Interp_ref.t) =
  let w = B.writer () in
  B.int w ir.retired;
  B.option w B.int ir.exit_code;
  w_cpu w ir.cpu;
  w_sys w (Syscall.persist ir.sys);
  w_memory w ir.mem;
  B.contents w

let decode_guest payload : Interp_ref.t =
  let r = B.reader payload in
  let retired = B.read_int r in
  let exit_code = B.read_option r B.read_int in
  let cpu = r_cpu r in
  let sys = Syscall.unpersist (r_sys r) in
  let mem = r_memory r `Auto_zero in
  B.expect_end r;
  { cpu; mem; sys; icache = Step.icache_create (); retired; exit_code; last_effects = [] }

let encode_code (ctl : Darco.Controller.t) =
  let w = B.writer () in
  w_config w ctl.cfg;
  B.bool w ctl.validate_at_checkpoints;
  B.bool w ctl.validate_memory;
  B.option w
    (fun w (d : Darco.Controller.divergence) ->
      B.int w d.at_retired;
      B.list w B.str d.details)
    ctl.divergence;
  let co = ctl.co in
  w_config w co.cfg;
  w_stats w co.stats;
  w_cpu w co.cpu;
  w_memory w co.mem;
  (* host machine: at a synchronization boundary the store buffer and alias
     table are empty, but serialize them anyway so capture never lies *)
  B.int_array w co.machine.r;
  B.float_array w co.machine.f;
  B.list w
    (fun w (a, v) ->
      B.int w a;
      B.int w v)
    (sorted_tbl co.machine.sbuf);
  B.list w
    (fun w (a, b) ->
      B.int w a;
      B.int w b)
    co.machine.aliases;
  B.int_array w co.machine.ckpt_r;
  B.float_array w co.machine.ckpt_f;
  B.int w (Darco.Tolmem.brk co.tolmem);
  w_profile w (Darco.Profile.persist co.profile);
  w_codecache w (Darco.Codecache.persist co.codecache);
  B.list w
    (fun w (id, n) ->
      B.int w id;
      B.int w n)
    (sorted_tbl co.fails);
  B.list w
    (fun w (pc, (na, nm)) ->
      B.int w pc;
      B.bool w na;
      B.bool w nm)
    (sorted_tbl co.deopt);
  B.contents w

let decode_code ?bus ~(reference : Interp_ref.t) payload : Darco.Controller.t =
  let bus = match bus with Some b -> b | None -> Darco_obs.Bus.create () in
  let r = B.reader payload in
  let cfg = r_config r in
  let validate_at_checkpoints = B.read_bool r in
  let validate_memory = B.read_bool r in
  let divergence =
    B.read_option r (fun r ->
        let at_retired = B.read_int r in
        let details = B.read_list r B.read_str in
        ({ at_retired; details } : Darco.Controller.divergence))
  in
  let co_cfg = r_config r in
  let stats = r_stats r in
  let cpu = r_cpu r in
  let mem = r_memory r `Fault in
  let mr = B.read_int_array r in
  let mf = B.read_float_array r in
  if Array.length mr <> 64 || Array.length mf <> 32 then
    B.corrupt "host register file has wrong size";
  let sbuf =
    tbl_of_list
      (B.read_list r (fun r ->
           let a = B.read_int r in
           (a, B.read_int r)))
  in
  let aliases =
    B.read_list r (fun r ->
        let a = B.read_int r in
        (a, B.read_int r))
  in
  let ckpt_r = B.read_int_array r in
  let ckpt_f = B.read_float_array r in
  let machine : Machine.t = { r = mr; f = mf; mem; sbuf; aliases; ckpt_r; ckpt_f } in
  let brk = B.read_int r in
  let tolmem = Darco.Tolmem.restore mem ~brk in
  let profile = Darco.Profile.unpersist tolmem (r_profile r) in
  let codecache = Darco.Codecache.unpersist ~bus tolmem stats (r_codecache r) in
  let fails =
    tbl_of_list
      (B.read_list r (fun r ->
           let id = B.read_int r in
           (id, B.read_int r)))
  in
  let deopt =
    tbl_of_list
      (B.read_list r (fun r ->
           let pc = B.read_int r in
           let na = B.read_bool r in
           (pc, (na, B.read_bool r))))
  in
  B.expect_end r;
  let co : Darco.Tol.t =
    {
      cfg = co_cfg;
      stats;
      bus;
      cpu;
      mem;
      machine;
      icache = Step.icache_create ();
      profile;
      tolmem;
      codecache;
      fails;
      deopt;
    }
  in
  { cfg; reference; co; divergence; validate_at_checkpoints; validate_memory }

(* --- timing section ------------------------------------------------------ *)

let w_geom w (g : Darco_timing.Tconfig.cache_geom) =
  B.int w g.sets;
  B.int w g.ways;
  B.int w g.line;
  B.int w g.latency

let r_geom r : Darco_timing.Tconfig.cache_geom =
  let sets = B.read_int r in
  let ways = B.read_int r in
  let line = B.read_int r in
  let latency = B.read_int r in
  { sets; ways; line; latency }

let w_tlb_geom w (g : Darco_timing.Tconfig.tlb_geom) =
  B.int w g.entries;
  B.int w g.latency

let r_tlb_geom r : Darco_timing.Tconfig.tlb_geom =
  let entries = B.read_int r in
  let latency = B.read_int r in
  { entries; latency }

let w_tconfig w (c : Darco_timing.Tconfig.t) =
  B.int w c.fetch_width;
  B.int w c.decode_depth;
  B.int w c.issue_width;
  B.int w c.iq_size;
  B.int w c.phys_regs;
  B.int w c.n_simple;
  B.int w c.n_complex;
  B.int w c.n_vector;
  B.int w c.mem_read_ports;
  B.int w c.mem_write_ports;
  B.int w c.complex_mul_latency;
  B.int w c.fp_latency;
  B.int w c.fp_div_latency;
  B.int w c.gshare_bits;
  B.int w c.btb_entries;
  B.int w c.mispredict_penalty;
  w_geom w c.il1;
  w_geom w c.dl1;
  w_geom w c.l2;
  w_tlb_geom w c.itlb;
  w_tlb_geom w c.dtlb;
  w_tlb_geom w c.l2tlb;
  B.int w c.tlb_walk_latency;
  B.int w c.mem_latency;
  B.bool w c.prefetch;
  B.int w c.prefetch_table;
  B.int w c.prefetch_degree;
  B.int w c.vector_length

let r_tconfig r : Darco_timing.Tconfig.t =
  let fetch_width = B.read_int r in
  let decode_depth = B.read_int r in
  let issue_width = B.read_int r in
  let iq_size = B.read_int r in
  let phys_regs = B.read_int r in
  let n_simple = B.read_int r in
  let n_complex = B.read_int r in
  let n_vector = B.read_int r in
  let mem_read_ports = B.read_int r in
  let mem_write_ports = B.read_int r in
  let complex_mul_latency = B.read_int r in
  let fp_latency = B.read_int r in
  let fp_div_latency = B.read_int r in
  let gshare_bits = B.read_int r in
  let btb_entries = B.read_int r in
  let mispredict_penalty = B.read_int r in
  let il1 = r_geom r in
  let dl1 = r_geom r in
  let l2 = r_geom r in
  let itlb = r_tlb_geom r in
  let dtlb = r_tlb_geom r in
  let l2tlb = r_tlb_geom r in
  let tlb_walk_latency = B.read_int r in
  let mem_latency = B.read_int r in
  let prefetch = B.read_bool r in
  let prefetch_table = B.read_int r in
  let prefetch_degree = B.read_int r in
  let vector_length = B.read_int r in
  {
    fetch_width;
    decode_depth;
    issue_width;
    iq_size;
    phys_regs;
    n_simple;
    n_complex;
    n_vector;
    mem_read_ports;
    mem_write_ports;
    complex_mul_latency;
    fp_latency;
    fp_div_latency;
    gshare_bits;
    btb_entries;
    mispredict_penalty;
    il1;
    dl1;
    l2;
    itlb;
    dtlb;
    l2tlb;
    tlb_walk_latency;
    mem_latency;
    prefetch;
    prefetch_table;
    prefetch_degree;
    vector_length;
  }

let w_cache w (p : Darco_timing.Cache.persisted) =
  B.array w
    (fun w set ->
      B.array w
        (fun w (tag, valid, dirty, lru) ->
          B.int w tag;
          B.bool w valid;
          B.bool w dirty;
          B.int w lru)
        set)
    p.p_lines;
  B.int w p.p_tick;
  B.int w p.p_accesses;
  B.int w p.p_misses;
  B.int w p.p_writebacks;
  B.int w p.p_prefetch_fills

let r_cache r : Darco_timing.Cache.persisted =
  let p_lines =
    B.read_array r (fun r ->
        B.read_array r (fun r ->
            let tag = B.read_int r in
            let valid = B.read_bool r in
            let dirty = B.read_bool r in
            (tag, valid, dirty, B.read_int r)))
  in
  let p_tick = B.read_int r in
  let p_accesses = B.read_int r in
  let p_misses = B.read_int r in
  let p_writebacks = B.read_int r in
  let p_prefetch_fills = B.read_int r in
  { p_lines; p_tick; p_accesses; p_misses; p_writebacks; p_prefetch_fills }

let w_tlb w (p : Darco_timing.Tlb.persisted) =
  B.array w
    (fun w (vpn, valid, lru) ->
      B.int w vpn;
      B.bool w valid;
      B.int w lru)
    p.p_entries;
  B.int w p.p_tick;
  B.int w p.p_accesses;
  B.int w p.p_misses

let r_tlb r : Darco_timing.Tlb.persisted =
  let p_entries =
    B.read_array r (fun r ->
        let vpn = B.read_int r in
        let valid = B.read_bool r in
        (vpn, valid, B.read_int r))
  in
  let p_tick = B.read_int r in
  let p_accesses = B.read_int r in
  let p_misses = B.read_int r in
  { p_entries; p_tick; p_accesses; p_misses }

let w_prefetch w (p : Darco_timing.Prefetch.persisted) =
  B.array w
    (fun w (tag, last_addr, stride, confidence) ->
      B.int w tag;
      B.int w last_addr;
      B.int w stride;
      B.int w confidence)
    p.p_table;
  B.int w p.p_issued;
  B.int w p.p_triggered

let r_prefetch r : Darco_timing.Prefetch.persisted =
  let p_table =
    B.read_array r (fun r ->
        let tag = B.read_int r in
        let last_addr = B.read_int r in
        let stride = B.read_int r in
        (tag, last_addr, stride, B.read_int r))
  in
  let p_issued = B.read_int r in
  let p_triggered = B.read_int r in
  { p_table; p_issued; p_triggered }

let w_predictor w (p : Darco_timing.Predictor.persisted) =
  B.int_array w p.p_pht;
  B.int w p.p_ghr;
  B.int_array w p.p_btb_tag;
  B.int_array w p.p_btb_target;
  B.int w p.p_branches;
  B.int w p.p_mispredicts;
  B.int w p.p_btb_misses

let r_predictor r : Darco_timing.Predictor.persisted =
  let p_pht = B.read_int_array r in
  let p_ghr = B.read_int r in
  let p_btb_tag = B.read_int_array r in
  let p_btb_target = B.read_int_array r in
  let p_branches = B.read_int r in
  let p_mispredicts = B.read_int r in
  let p_btb_misses = B.read_int r in
  { p_pht; p_ghr; p_btb_tag; p_btb_target; p_branches; p_mispredicts; p_btb_misses }

let w_ring w (buf, n) =
  B.int_array w buf;
  B.int w n

let r_ring r =
  let buf = B.read_int_array r in
  (buf, B.read_int r)

let encode_timing pipeline =
  let p = Darco_timing.Pipeline.persist pipeline in
  let w = B.writer () in
  w_tconfig w p.p_cfg;
  w_cache w p.p_l2;
  w_cache w p.p_il1;
  w_cache w p.p_dl1;
  w_tlb w p.p_l2tlb;
  w_tlb w p.p_itlb;
  w_tlb w p.p_dtlb;
  w_prefetch w p.p_pf;
  w_predictor w p.p_bp;
  B.int_array w p.p_int_ready;
  B.int_array w p.p_fp_ready;
  B.int_array w p.p_simple_free;
  B.int_array w p.p_complex_free;
  B.int_array w p.p_vector_free;
  B.int_array w p.p_rport_free;
  B.int_array w p.p_wport_free;
  w_ring w p.p_iq_ring;
  w_ring w p.p_inflight_ring;
  B.int w p.p_fetch_cycle;
  B.int w p.p_fetch_count;
  B.int w p.p_last_fetch_line;
  B.int w p.p_redirect_at;
  B.int w p.p_last_issue;
  B.int w p.p_issued_in_cycle;
  B.int w p.p_horizon;
  B.int w p.p_insns;
  B.int w p.p_int_ops;
  B.int w p.p_mul_ops;
  B.int w p.p_fp_ops;
  B.int w p.p_mem_reads;
  B.int w p.p_mem_writes;
  B.int w p.p_branches;
  B.int w p.p_rf_reads;
  B.int w p.p_rf_writes;
  B.contents w

let decode_timing payload =
  let r = B.reader payload in
  let p_cfg = r_tconfig r in
  let p_l2 = r_cache r in
  let p_il1 = r_cache r in
  let p_dl1 = r_cache r in
  let p_l2tlb = r_tlb r in
  let p_itlb = r_tlb r in
  let p_dtlb = r_tlb r in
  let p_pf = r_prefetch r in
  let p_bp = r_predictor r in
  let p_int_ready = B.read_int_array r in
  let p_fp_ready = B.read_int_array r in
  let p_simple_free = B.read_int_array r in
  let p_complex_free = B.read_int_array r in
  let p_vector_free = B.read_int_array r in
  let p_rport_free = B.read_int_array r in
  let p_wport_free = B.read_int_array r in
  let p_iq_ring = r_ring r in
  let p_inflight_ring = r_ring r in
  let p_fetch_cycle = B.read_int r in
  let p_fetch_count = B.read_int r in
  let p_last_fetch_line = B.read_int r in
  let p_redirect_at = B.read_int r in
  let p_last_issue = B.read_int r in
  let p_issued_in_cycle = B.read_int r in
  let p_horizon = B.read_int r in
  let p_insns = B.read_int r in
  let p_int_ops = B.read_int r in
  let p_mul_ops = B.read_int r in
  let p_fp_ops = B.read_int r in
  let p_mem_reads = B.read_int r in
  let p_mem_writes = B.read_int r in
  let p_branches = B.read_int r in
  let p_rf_reads = B.read_int r in
  let p_rf_writes = B.read_int r in
  B.expect_end r;
  let p : Darco_timing.Pipeline.persisted =
    {
      p_cfg;
      p_l2;
      p_il1;
      p_dl1;
      p_l2tlb;
      p_itlb;
      p_dtlb;
      p_pf;
      p_bp;
      p_int_ready;
      p_fp_ready;
      p_simple_free;
      p_complex_free;
      p_vector_free;
      p_rport_free;
      p_wport_free;
      p_iq_ring;
      p_inflight_ring;
      p_fetch_cycle;
      p_fetch_count;
      p_last_fetch_line;
      p_redirect_at;
      p_last_issue;
      p_issued_in_cycle;
      p_horizon;
      p_insns;
      p_int_ops;
      p_mul_ops;
      p_fp_ops;
      p_mem_reads;
      p_mem_writes;
      p_branches;
      p_rf_reads;
      p_rf_writes;
    }
  in
  try Darco_timing.Pipeline.restore p
  with Invalid_argument msg -> B.corrupt msg

(* --- public API ---------------------------------------------------------- *)

let capture_reference ir =
  { snap_kind = Functional; sections = [ (guest_tag, encode_guest ir) ] }

let capture ?pipeline (ctl : Darco.Controller.t) =
  (* The x86 component may lag the co-designed one between synchronization
     events; advance it to the shared clock first — the exact catch-up the
     controller would perform at the next event anyway.  This makes
     [retired] meaningful and keeps the two components' state aligned in
     the snapshot. *)
  Interp_ref.run_until ctl.reference (Darco.Tol.retired ctl.co);
  let sections =
    [ (guest_tag, encode_guest ctl.reference); (code_tag, encode_code ctl) ]
  in
  let sections =
    match pipeline with
    | None -> sections
    | Some p -> sections @ [ (timing_tag, encode_timing p) ]
  in
  { snap_kind = Full; sections }

let retired t =
  let r = B.reader (section t guest_tag) in
  B.read_int r

let guest_eip t =
  (* prefix decode of the guest section: retired count, exit code, then the
     CPU record whose [eip] we want — no need to materialize memory *)
  let r = B.reader (section t guest_tag) in
  ignore (B.read_int r);
  ignore (B.read_option r B.read_int);
  let cpu = r_cpu r in
  cpu.Cpu.eip

let restore_reference t = decode_guest (section t guest_tag)

let restore ?bus t =
  let reference = restore_reference t in
  match t.snap_kind with
  | Functional -> Darco.Controller.of_reference ?bus reference
  | Full -> decode_code ?bus ~reference (section t code_tag)

let restore_pipeline t =
  match List.assoc_opt timing_tag t.sections with
  | None -> None
  | Some payload -> Some (decode_timing payload)

let to_string t =
  let w = B.writer () in
  B.tag4 w magic;
  B.u8 w version;
  B.u8 w (match t.snap_kind with Functional -> 0 | Full -> 1);
  B.u8 w (List.length t.sections);
  List.iter
    (fun (tag, payload) ->
      B.tag4 w tag;
      B.int w (String.length payload);
      B.int w (B.crc32 payload);
      B.raw w payload)
    t.sections;
  B.contents w

let of_string s =
  let r = B.reader s in
  if B.read_tag4 r <> magic then B.corrupt "bad snapshot magic";
  let v = B.read_u8 r in
  if v <> version then B.corrupt (Printf.sprintf "unsupported snapshot version %d" v);
  let snap_kind =
    match B.read_u8 r with
    | 0 -> Functional
    | 1 -> Full
    | n -> B.corrupt (Printf.sprintf "invalid snapshot kind %d" n)
  in
  let nsections = B.read_u8 r in
  let sections =
    List.init nsections (fun _ ->
        let tag = B.read_tag4 r in
        let len = B.read_int r in
        let crc = B.read_int r in
        let payload = B.read_raw r len in
        if B.crc32 payload <> crc then
          B.corrupt (Printf.sprintf "section %S fails its checksum" tag);
        (tag, payload))
  in
  B.expect_end r;
  let t = { snap_kind; sections } in
  (* Validate framing invariants eagerly. *)
  (match snap_kind with
  | Functional -> ignore (section t guest_tag)
  | Full ->
    ignore (section t guest_tag);
    ignore (section t code_tag));
  t

let write_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> B.corrupt msg
  | exception End_of_file -> B.corrupt "unexpected end of file"

let manifest t =
  Jsonx.Obj
    [
      ("version", Jsonx.Int version);
      ( "kind",
        Jsonx.String (match t.snap_kind with Functional -> "functional" | Full -> "full")
      );
      ("retired", Jsonx.Int (retired t));
      ( "sections",
        Jsonx.List
          (List.map
             (fun (tag, payload) ->
               Jsonx.Obj
                 [
                   ("tag", Jsonx.String tag);
                   ("bytes", Jsonx.Int (String.length payload));
                   ("crc32", Jsonx.Int (B.crc32 payload));
                 ])
             t.sections) );
    ]

let memory_hash mem =
  let buf = Buffer.create 4096 in
  List.iter
    (fun idx ->
      Buffer.add_string buf (string_of_int idx);
      Buffer.add_bytes buf (Memory.get_page mem idx))
    (Memory.touched_pages mem);
  Digest.to_hex (Digest.string (Buffer.contents buf))
