(* A checkpoint is identified by the digest of its encoded (DSNP) bytes,
   so equal snapshots share one entry no matter how many windows start from
   them.  The store is an in-memory table with an optional on-disk spill
   directory (one file per digest); disk reads are re-verified against the
   digest, so a tampered or bit-rotted cache entry is refused, never
   restored.

   Two residency tiers:
   - Heap: entries are ordinary strings.  Cheapest lookups; fine for a
     single-domain process and for the domains pool, where every domain
     reads the same string by reference.
   - Shared: entries live in Bigarrays outside the OCaml heap.  The GC
     neither moves nor marks them, so after a fork the image's pages stay
     copy-on-write-clean in every child no matter how hard the child's GC
     works — N forked units really do read ONE physical copy.  Cold reads
     from the spill directory are mmap'd, so separate worker processes on
     one machine share the page cache mapping too.

   All table operations are serialized by a per-store mutex, so any mix of
   domains may put/get concurrently.  Disk I/O happens outside the lock;
   a duplicate cold read loses nothing but the redundant read. *)

let digest bytes = Digest.to_hex (Digest.string bytes)

let is_digest s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

type tier = Heap | Shared

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type image = In_heap of string | Off_heap of bigstring

type t = {
  table : (string, image) Hashtbl.t;
  dir : string option;
  tier : tier;
  lock : Mutex.t;
}

let create ?dir ?(tier = Heap) () =
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Unix.mkdir d 0o755)
    dir;
  { table = Hashtbl.create 16; dir; tier; lock = Mutex.create () }

let tier t = t.tier

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let of_bigstring (ba : bigstring) =
  String.init (Bigarray.Array1.dim ba) (fun i -> ba.{i})

let to_bigstring s : bigstring =
  let n = String.length s in
  let ba = Bigarray.(Array1.create char c_layout n) in
  for i = 0 to n - 1 do
    ba.{i} <- s.[i]
  done;
  ba

let string_of_image = function
  | In_heap s -> s
  | Off_heap ba -> of_bigstring ba

let image_of_string tier s =
  match tier with Heap -> In_heap s | Shared -> Off_heap (to_bigstring s)

let path_of dir d = Filename.concat dir (d ^ ".dsnp")

let write_whole path s =
  (* write-then-rename so a crashed writer never leaves a short file that
     would fail digest verification on every later read *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s);
  Sys.rename tmp path

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Map the spill file read-only.  The mapping is shared machine-wide
   through the page cache: ten worker processes cold-reading the same
   digest fault in one set of physical pages. *)
let map_whole path : bigstring =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Bigarray.array1_of_genarray
        (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |]))

let add t bytes =
  let d = digest bytes in
  let fresh =
    locked t (fun () ->
        if Hashtbl.mem t.table d then false
        else begin
          Hashtbl.replace t.table d (image_of_string t.tier bytes);
          true
        end)
  in
  if fresh then
    Option.iter
      (fun dir ->
        let path = path_of dir d in
        if not (Sys.file_exists path) then write_whole path bytes)
      t.dir;
  d

let find t d =
  match locked t (fun () -> Hashtbl.find_opt t.table d) with
  | Some img -> Some (string_of_image img)
  | None -> (
    match t.dir with
    | None -> None
    | Some dir -> (
      let path = path_of dir d in
      let cold =
        match t.tier with
        | Shared -> (
          match map_whole path with
          | exception Unix.Unix_error _ -> None
          | ba -> Some (Off_heap ba))
        | Heap -> (
          match read_whole path with
          | exception Sys_error _ -> None
          | bytes -> Some (In_heap bytes))
      in
      match cold with
      | None -> None
      | Some img ->
        let bytes = string_of_image img in
        if digest bytes <> d then
          Buf.corrupt
            (Printf.sprintf "checkpoint cache entry %s does not match its digest"
               d);
        (* a concurrent cold read of the same digest may have raced us
           here; either image has the right content, last write wins *)
        locked t (fun () -> Hashtbl.replace t.table d img);
        Some bytes))

let mem t d = find t d <> None
let count t = locked t (fun () -> Hashtbl.length t.table)
