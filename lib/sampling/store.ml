(* A checkpoint is identified by the digest of its encoded (DSNP) bytes,
   so equal snapshots share one entry no matter how many windows start from
   them.  The store is an in-memory table with an optional on-disk spill
   directory (one file per digest); disk reads are re-verified against the
   digest, so a tampered or bit-rotted cache entry is refused, never
   restored. *)

let digest bytes = Digest.to_hex (Digest.string bytes)

let is_digest s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

type t = {
  table : (string, string) Hashtbl.t;
  dir : string option;
}

let create ?dir () =
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Unix.mkdir d 0o755)
    dir;
  { table = Hashtbl.create 16; dir }

let path_of dir d = Filename.concat dir (d ^ ".dsnp")

let write_whole path s =
  (* write-then-rename so a crashed writer never leaves a short file that
     would fail digest verification on every later read *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s);
  Sys.rename tmp path

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let add t bytes =
  let d = digest bytes in
  if not (Hashtbl.mem t.table d) then begin
    Hashtbl.replace t.table d bytes;
    Option.iter
      (fun dir ->
        let path = path_of dir d in
        if not (Sys.file_exists path) then write_whole path bytes)
      t.dir
  end;
  d

let find t d =
  match Hashtbl.find_opt t.table d with
  | Some _ as hit -> hit
  | None -> (
    match t.dir with
    | None -> None
    | Some dir -> (
      let path = path_of dir d in
      match read_whole path with
      | exception Sys_error _ -> None
      | bytes ->
        if digest bytes <> d then
          Buf.corrupt
            (Printf.sprintf "checkpoint cache entry %s does not match its digest"
               d);
        Hashtbl.replace t.table d bytes;
        Some bytes))

let mem t d = find t d <> None
let count t = Hashtbl.length t.table
