(* A checkpoint is identified by the digest of its encoded (DSNP) bytes,
   so equal snapshots share one entry no matter how many windows start from
   them.  The store is an in-memory table with an optional on-disk spill
   directory (one file per digest); disk reads are re-verified against the
   digest, so a tampered or bit-rotted cache entry is refused, never
   restored.

   Two residency tiers:
   - Heap: entries are ordinary strings.  Cheapest lookups; fine for a
     single-domain process and for the domains pool, where every domain
     reads the same string by reference.
   - Shared: entries live in Bigarrays outside the OCaml heap.  The GC
     neither moves nor marks them, so after a fork the image's pages stay
     copy-on-write-clean in every child no matter how hard the child's GC
     works — N forked units really do read ONE physical copy.  Cold reads
     from the spill directory are mmap'd, so separate worker processes on
     one machine share the page cache mapping too.

   All table operations are serialized by a per-store mutex, so any mix of
   domains may put/get concurrently.  Disk I/O happens outside the lock;
   a duplicate cold read loses nothing but the redundant read. *)

let digest bytes = Digest.to_hex (Digest.string bytes)

let is_digest s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

type tier = Heap | Shared

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type image = In_heap of string | Off_heap of bigstring

(* Spill-tier accounting for the byte-budget LRU policy: one record per
   on-disk entry.  [m_use] is a store-local logical clock tick (bumped on
   every add/find touching the entry); [m_pins] protects in-flight entries
   from eviction. *)
type meta = { mutable m_bytes : int; mutable m_use : int; mutable m_pins : int }

type t = {
  table : (string, image) Hashtbl.t;
  dir : string option;
  tier : tier;
  lock : Mutex.t;
  (* byte budget for the spill directory (None = unbounded, the
     pre-existing behaviour); enforcement state below is only meaningful
     when both [dir] and [max_bytes] are set *)
  max_bytes : int option;
  bus : Darco_obs.Bus.t option;
  meta : (string, meta) Hashtbl.t;
  mutable clock : int;
  mutable disk_bytes : int;
}

let path_of dir d = Filename.concat dir (d ^ ".dsnp")

let create ?bus ?dir ?(tier = Heap) ?max_bytes () =
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Unix.mkdir d 0o755)
    dir;
  let t =
    {
      table = Hashtbl.create 16;
      dir;
      tier;
      lock = Mutex.create ();
      max_bytes;
      bus;
      meta = Hashtbl.create 16;
      clock = 0;
      disk_bytes = 0;
    }
  in
  (* Seed the accounting from whatever a previous process left in the
     spill directory, oldest mtime first, so recency survives restarts
     well enough for LRU to keep making sense. *)
  (match dir with
  | None -> ()
  | Some d ->
    Sys.readdir d
    |> Array.to_list
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".dsnp" then begin
             let dg = Filename.chop_suffix f ".dsnp" in
             if is_digest dg then
               match Unix.stat (Filename.concat d f) with
               | st -> Some (dg, st.Unix.st_size, st.Unix.st_mtime)
               | exception Unix.Unix_error _ -> None
             else None
           end
           else None)
    |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
    |> List.iter (fun (dg, size, _) ->
           t.clock <- t.clock + 1;
           Hashtbl.replace t.meta dg
             { m_bytes = size; m_use = t.clock; m_pins = 0 };
           t.disk_bytes <- t.disk_bytes + size));
  t

let tier t = t.tier

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let of_bigstring (ba : bigstring) =
  String.init (Bigarray.Array1.dim ba) (fun i -> ba.{i})

let to_bigstring s : bigstring =
  let n = String.length s in
  let ba = Bigarray.(Array1.create char c_layout n) in
  for i = 0 to n - 1 do
    ba.{i} <- s.[i]
  done;
  ba

let string_of_image = function
  | In_heap s -> s
  | Off_heap ba -> of_bigstring ba

let image_of_string tier s =
  match tier with Heap -> In_heap s | Shared -> Off_heap (to_bigstring s)

(* Call under the lock.  Records (or refreshes) the spill accounting for
   [d] and marks it most recently used. *)
let touch_spilled t d bytes =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.meta d with
  | Some m ->
    t.disk_bytes <- t.disk_bytes + bytes - m.m_bytes;
    m.m_bytes <- bytes;
    m.m_use <- t.clock
  | None ->
    Hashtbl.replace t.meta d { m_bytes = bytes; m_use = t.clock; m_pins = 0 };
    t.disk_bytes <- t.disk_bytes + bytes

let pin t d =
  locked t (fun () ->
      match Hashtbl.find_opt t.meta d with
      | Some m -> m.m_pins <- m.m_pins + 1
      | None ->
        (* not spilled (or not yet): a pin must still stick so the entry
           cannot be evicted between its spill and its use *)
        Hashtbl.replace t.meta d { m_bytes = 0; m_use = 0; m_pins = 1 })

let unpin t d =
  locked t (fun () ->
      match Hashtbl.find_opt t.meta d with
      | Some m -> m.m_pins <- max 0 (m.m_pins - 1)
      | None -> ())

(* Evict least-recently-used unpinned spill entries (never [keep], the
   entry that triggered enforcement) until the directory fits the budget
   or nothing evictable remains — then over-budget is tolerated rather
   than dropping pinned or just-written content. *)
let enforce_budget t ~keep =
  match (t.dir, t.max_bytes) with
  | Some dir, Some budget ->
    let evicted =
      locked t (fun () ->
          let out = ref [] in
          let continue = ref true in
          while !continue && t.disk_bytes > budget do
            let victim =
              Hashtbl.fold
                (fun d (m : meta) acc ->
                  if d = keep || m.m_pins > 0 || m.m_bytes = 0 then acc
                  else
                    match acc with
                    | Some (_, (b : meta)) when b.m_use <= m.m_use -> acc
                    | _ -> Some (d, m))
                t.meta None
            in
            match victim with
            | None -> continue := false
            | Some (d, m) ->
              Hashtbl.remove t.table d;
              Hashtbl.remove t.meta d;
              t.disk_bytes <- t.disk_bytes - m.m_bytes;
              out := (d, m.m_bytes) :: !out
          done;
          List.rev !out)
    in
    List.iter
      (fun (d, bytes) ->
        (try Sys.remove (path_of dir d) with Sys_error _ -> ());
        Option.iter
          (fun b ->
            Darco_obs.Bus.emit b ~at:(Darco_obs.Clock.ticks ())
              (Darco_obs.Event.Store_evict { digest = d; bytes }))
          t.bus)
      evicted
  | _ -> ()

let write_whole path s =
  (* write-then-rename so a crashed writer never leaves a short file that
     would fail digest verification on every later read *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s);
  Sys.rename tmp path

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Map the spill file read-only.  The mapping is shared machine-wide
   through the page cache: ten worker processes cold-reading the same
   digest fault in one set of physical pages. *)
let map_whole path : bigstring =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Bigarray.array1_of_genarray
        (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |]))

let add t bytes =
  let d = digest bytes in
  let fresh =
    locked t (fun () ->
        if Hashtbl.mem t.table d then false
        else begin
          Hashtbl.replace t.table d (image_of_string t.tier bytes);
          true
        end)
  in
  (match t.dir with
  | None -> ()
  | Some dir ->
    let path = path_of dir d in
    if fresh && not (Sys.file_exists path) then write_whole path bytes;
    locked t (fun () -> touch_spilled t d (String.length bytes));
    enforce_budget t ~keep:d);
  d

let find t d =
  match locked t (fun () -> Hashtbl.find_opt t.table d) with
  | Some img ->
    if t.dir <> None then
      locked t (fun () ->
          if Hashtbl.mem t.meta d then
            touch_spilled t d (String.length (string_of_image img)));
    Some (string_of_image img)
  | None -> (
    match t.dir with
    | None -> None
    | Some dir -> (
      let path = path_of dir d in
      let cold =
        match t.tier with
        | Shared -> (
          match map_whole path with
          | exception Unix.Unix_error _ -> None
          | ba -> Some (Off_heap ba))
        | Heap -> (
          match read_whole path with
          | exception Sys_error _ -> None
          | bytes -> Some (In_heap bytes))
      in
      match cold with
      | None -> None
      | Some img ->
        let bytes = string_of_image img in
        if digest bytes <> d then
          Buf.corrupt
            (Printf.sprintf "checkpoint cache entry %s does not match its digest"
               d);
        (* a concurrent cold read of the same digest may have raced us
           here; either image has the right content, last write wins *)
        locked t (fun () ->
            Hashtbl.replace t.table d img;
            touch_spilled t d (String.length bytes));
        Some bytes))

let mem t d = find t d <> None
let count t = locked t (fun () -> Hashtbl.length t.table)
let spilled_bytes t = locked t (fun () -> t.disk_bytes)
