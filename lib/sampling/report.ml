(* The sweep document: everything [darco sample --json] writes, assembled
   in one place so every producer of a sweep result — the CLI and the
   campaign service — emits byte-identical JSON for the same windows.
   Byte identity is what CI's cmp checks and the artifact library's
   resubmit-hit guarantee rest on, so the field order and float
   formatting here are part of the observable contract. *)

module Jsonx = Darco_obs.Jsonx
module SM = Darco_util.Stats_math

type plan_summary = {
  plan_name : string;
  windows_used : int;
  ci_target : float;
  ci_target_met : bool;
  rounds : int;
}

type t = {
  doc : Jsonx.t;
  ipc_mean : float;
  ipc_stddev : float;
  ipc_ci95 : float;
  n_ipc : int;
  watts_mean : float;
  watts_ci95 : float;
  epi_nj_mean : float;
  epi_nj_ci95 : float;
  energy_j_mean : float;
  energy_j_ci95 : float;
  n_power : int;
  avg_error : float option;
  failed : bool;
}

let json_num j =
  match j with
  | Some (Jsonx.Float f) -> Some f
  | Some (Jsonx.Int i) -> Some (float_of_int i)
  | _ -> None

let sweep_json ~benchmark ~seed ~interval ~window ~warmup
    ?(full_ipcs = []) ?plan (rows : (int * Sweep.result) list) =
  let errors = ref [] in
  let ipcs = ref [] in
  let powers = ref [] in
  let sample_rows =
    List.map
      (fun (off, (r : Sweep.result)) ->
        match r.outcome with
        | Sweep.Failed reason ->
          Jsonx.Obj
            [
              ("label", Jsonx.String r.label);
              ("ok", Jsonx.Bool false);
              ("reason", Jsonx.String reason);
            ]
        | Sweep.Ok json ->
          let ipc =
            Option.value ~default:0.0 (json_num (Jsonx.member "ipc" json))
          in
          ipcs := ipc :: !ipcs;
          (match
             ( json_num (Jsonx.member "energy_j" json),
               json_num (Jsonx.member "avg_watts" json),
               json_num (Jsonx.member "epi_nj" json) )
           with
          | Some e, Some w, Some epi -> powers := (e, w, epi) :: !powers
          | _ -> ());
          let extra =
            match List.assoc_opt off full_ipcs with
            | None -> []
            | Some full ->
              let err = SM.relative_error ipc full in
              errors := err :: !errors;
              [
                ("ipc_full", Jsonx.Float full);
                ("error", Jsonx.Float err);
              ]
          in
          Jsonx.Obj
            ([
               ("label", Jsonx.String r.label);
               ("ok", Jsonx.Bool true);
               ("result", json);
             ]
            @ extra))
      rows
  in
  let ipcs = List.rev !ipcs in
  let ipc_mean = SM.mean ipcs in
  let ipc_stddev = SM.sample_stddev ipcs in
  let ipc_ci95 = SM.ci95_halfwidth ipcs in
  let powers = List.rev !powers in
  let pstat xs = (SM.mean xs, SM.ci95_halfwidth xs) in
  let watts_mean, watts_ci95 = pstat (List.map (fun (_, w, _) -> w) powers) in
  let epi_mean, epi_ci95 = pstat (List.map (fun (_, _, e) -> e) powers) in
  let energy_mean, energy_ci95 = pstat (List.map (fun (e, _, _) -> e) powers) in
  let avg_error =
    match !errors with [] -> None | es -> Some (SM.mean es)
  in
  let failed =
    List.exists
      (fun (_, (r : Sweep.result)) ->
        match r.outcome with Sweep.Failed _ -> true | Sweep.Ok _ -> false)
      rows
  in
  let doc =
    Jsonx.Obj
      ([
         ("benchmark", Jsonx.String benchmark);
         ("seed", Jsonx.Int seed);
         ("interval", Jsonx.Int interval);
         ("window", Jsonx.Int window);
         ("warmup", Jsonx.Int warmup);
         ("ipc_mean", Jsonx.Float ipc_mean);
         ("ipc_stddev", Jsonx.Float ipc_stddev);
         ("ipc_ci95", Jsonx.Float ipc_ci95);
         ("watts_mean", Jsonx.Float watts_mean);
         ("watts_ci95", Jsonx.Float watts_ci95);
         ("epi_nj_mean", Jsonx.Float epi_mean);
         ("epi_nj_ci95", Jsonx.Float epi_ci95);
         ("energy_j_mean", Jsonx.Float energy_mean);
         ("energy_j_ci95", Jsonx.Float energy_ci95);
         ("samples", Jsonx.List sample_rows);
       ]
      (* no histograms or wall-clock data here: this document is the
         sweep's scientific result and must be byte-identical whichever
         backend — or serving process — ran it *)
      @ (match avg_error with
        | None -> []
        | Some e -> [ ("avg_error", Jsonx.Float e) ])
      @
      (* appended only for planned sweeps, so every pre-planner document —
         and the fixed one-shot path run without a plan — keeps its exact
         bytes *)
      match plan with
      | None -> []
      | Some p ->
        [
          ("plan", Jsonx.String p.plan_name);
          ("windows_used", Jsonx.Int p.windows_used);
          ("ci_target", Jsonx.Float p.ci_target);
          ("ci_target_met", Jsonx.Bool p.ci_target_met);
          ("rounds", Jsonx.Int p.rounds);
        ])
  in
  {
    doc;
    ipc_mean;
    ipc_stddev;
    ipc_ci95;
    n_ipc = List.length ipcs;
    watts_mean;
    watts_ci95;
    epi_nj_mean = epi_mean;
    epi_nj_ci95 = epi_ci95;
    energy_j_mean = energy_mean;
    energy_j_ci95 = energy_ci95;
    n_power = List.length powers;
    avg_error;
    failed;
  }
