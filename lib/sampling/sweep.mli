(** Multi-process sample sweep.

    Each work item runs in a forked worker process; a worker that crashes
    (uncaught exception, fatal signal, OOM kill) loses only its own sample —
    the parent records a per-sample failure and keeps going.  Results come
    back as JSON through per-worker temp files. *)

type outcome =
  | Ok of Darco_obs.Jsonx.t
  | Failed of string  (** human-readable reason: exception, signal, bad exit *)

type result = { label : string; outcome : outcome }

val map :
  ?jobs:int -> label:('a -> string) -> ('a -> Darco_obs.Jsonx.t) -> 'a list -> result list
(** [map ~label f items] evaluates [f] on every item, at most [jobs]
    (default 4) workers at a time, and returns results in input order.
    [f] runs in the child only; no state it mutates is visible to the
    parent. *)
