(** Backend-agnostic sample sweeps.

    A sweep evaluates a list of {!Work.t} units and returns one {!result}
    per unit, in input order.  {e How} the units execute is the backend's
    business: {!Backend.local} forks one worker process per unit on this
    machine (a crashing worker — uncaught exception, fatal signal, OOM
    kill — loses only its own sample); {!Backend.domains} runs units on a
    pool of OCaml domains sharing the parent's memory — one checkpoint
    image serves every unit, no fork, no serialization; [Darco_dispatch]
    ships units to worker daemons over TCP.  Drivers are written once
    against {!run} and pick a backend at the edge.  All three produce
    byte-identical result JSON for the same units. *)

type outcome =
  | Ok of Darco_obs.Jsonx.t
  | Failed of string  (** human-readable reason: exception, signal, bad exit *)

type result = { label : string; outcome : outcome }

(** A sweep execution backend, as a first-class record.  [dispatch] must
    return results in input order, one per unit, and must contain worker
    failures as per-unit [Failed] outcomes rather than raising. *)
module Backend : sig
  (** An open, round-capable instance of a backend.  [s_dispatch] has the
      same contract as [dispatch] and may be called repeatedly; state
      worth keeping between rounds (a warm domain pool, remote worker
      connections and their checkpoint caches) persists until
      [s_close].  Obtained via the backend's [session] field; {!run_stream}
      manages the open/close bracket for you. *)
  type nonrec session = {
    s_dispatch : Work.t list -> result list;
    s_close : unit -> unit;
  }

  type nonrec t = {
    name : string;  (** e.g. ["local:4"], ["remote:host:9090"] — for logs *)
    dispatch : Work.t list -> result list;
    session : unit -> session;
        (** open a session for round-based dispatch.  For stateless
            backends this is just [dispatch] per round; the domains
            backend keeps one pool of domains warm across rounds, and the
            remote backend keeps its worker connections (and the
            checkpoint images already pushed to each worker) alive, so a
            late-injected round rides the caches the earlier rounds
            populated. *)
  }

  val of_exec :
    ?bus:Darco_obs.Bus.t ->
    ?jobs:int -> name:string -> (Work.t -> Darco_obs.Jsonx.t) -> t
  (** A fork-pool backend running an arbitrary unit-execution function —
      the building block behind {!local}, exposed so tests can substitute
      instrumented executors without re-implementing the pool.  When [bus]
      is given and active, the pool emits a ["running"]
      {!Darco_obs.Span} pair per unit (host ["local"], correlated by unit
      index) — the same timeline shape a remote worker ships back. *)

  val local : ?bus:Darco_obs.Bus.t -> ?store:Store.t -> ?jobs:int -> unit -> t
  (** Fork-per-unit execution on this machine, at most [jobs] (default 4)
      concurrent workers.  Each unit runs [Work.exec ?store] in a child
      process; no state the child mutates is visible to the parent.
      [store] resolves version-2 (digest-addressed) units; [bus] as in
      {!of_exec}. *)

  val serial : ?bus:Darco_obs.Bus.t -> ?store:Store.t -> unit -> t
  (** In-process, strictly sequential execution — no fork, no domains.
      The reference backend for determinism checks (and the only choice
      after this process has spawned a domain, which forbids fork): its
      results, span timeline and failure rendering match the pools
      exactly, one unit at a time. *)

  val domains : ?bus:Darco_obs.Bus.t -> ?store:Store.t -> ?jobs:int -> unit -> t
  (** Shared-memory execution on a pool of [jobs] (default 4) OCaml
      domains.  Units sharing a digest-addressed checkpoint read the
      {e same} store entry — no per-unit copy, no fork — so an N-way
      sweep's footprint is one image plus per-unit working state.  An
      exception in a unit is contained as its [Failed] outcome, rendered
      exactly as the fork pool renders a child exception; a unit that
      {e segfaults or exhausts memory takes the process down}, so prefer
      {!local} (fork isolation) for untrusted or crashy workloads.  Span
      timeline and result JSON are byte-identical to {!local}'s.  [bus]
      sinks run only on the calling domain. *)
end

val run : Backend.t -> Work.t list -> result list
(** [run backend works] evaluates every unit via the backend and returns
    results in input order.

    The deprecated [Sweep.map] shim (the pre-backend fork-only entry
    point) was removed after two releases of deprecation; build
    {!Work.t} units and use [run] with {!Backend.local}.  See DESIGN.md
    §9 for the compatibility policy that governed the removal. *)

val run_stream :
  Backend.t ->
  next:(int -> (Work.t * result) list -> Work.t list) ->
  (Work.t * result) list
(** Round-based (streaming) dispatch: the incremental twin of {!run}
    for callers — the adaptive-sampling planner — that decide the next
    units {e from} the completed ones.  [next round completed] is called
    with the 0-based round number and every (unit, result) pair finished
    so far, in dispatch order; the units it returns are dispatched as
    one round on a single backend session (see {!Backend.session}), and
    an empty list ends the stream.  Returns all pairs in dispatch
    order.  [run backend works] is exactly
    [run_stream backend ~next:(fun r _ -> if r = 0 then works else [])]
    modulo session reuse. *)
