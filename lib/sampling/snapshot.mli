open Darco_guest

(** Versioned, checksummed snapshots of the complete co-designed state.

    A snapshot serializes everything needed to continue a run bit-identically:
    the authoritative x86 component (guest CPU, memory image, OS-layer state),
    the co-designed component's software state (TOL configuration, profiler
    counters, code-cache contents including chain links, speculation
    bookkeeping, statistics), and optionally the microarchitectural state of a
    timing pipeline (cache/TLB/predictor/prefetcher contents).

    The binary format is sectioned: a fixed header (magic, version, kind)
    followed by tagged sections, each carrying its own length and CRC-32.  A
    corrupted or truncated file raises {!Buf.Corrupt} — never a crash.

    Two kinds exist, mirroring the two uses in sampling-based simulation:
    - [Functional] captures only the x86 component.  Cheap, used for the
      fast-forward checkpoints of the sampling driver; restoring one
      initializes a {e cold} co-designed component ({!restore} behaves like
      [Controller.of_reference]).
    - [Full] additionally captures the co-designed component (and optionally
      timing state), so {!restore} continues the exact run: same retired
      instruction stream, same final statistics. *)

type kind = Functional | Full

type t

val version : int
(** Current format version; {!of_string} rejects other versions. *)

val capture : ?pipeline:Darco_timing.Pipeline.t -> Darco.Controller.t -> t
(** Capture a [Full] snapshot.  Call only at a synchronization boundary
    (before [Controller.run], or after it returned) — mid-slice speculative
    state is not captured.  The snapshot owns its encoded state: continuing
    the run afterwards does not disturb it. *)

val capture_reference : Interp_ref.t -> t
(** Capture a [Functional] snapshot of the x86 component alone. *)

val kind : t -> kind
val retired : t -> int
(** Retired guest instructions at capture time. *)

val guest_eip : t -> int
(** Guest program counter at capture time, decoded from the snapshot's
    guest-section prefix without materializing memory.  Cheap enough to
    call per checkpoint: the adaptive-sampling planner uses it as the
    phase marker of the region a checkpoint sits in (the same guest-PC
    keying {!Darco_obs.Prof} uses for hot regions). *)

(** {1 Encoding} *)

val to_string : t -> string
val of_string : string -> t
(** Raises {!Buf.Corrupt} on bad magic, version, checksum or framing. *)

val write_file : string -> t -> unit
val read_file : string -> t
(** Raises {!Buf.Corrupt} (also on I/O errors reading the file). *)

(** {1 Restoring} *)

val restore_reference : t -> Interp_ref.t
(** Rebuild the x86 component; works for both kinds. *)

val restore : ?bus:Darco_obs.Bus.t -> t -> Darco.Controller.t
(** Rebuild a controller.  For a [Full] snapshot the co-designed component
    resumes exactly where it was captured; for a [Functional] one it is
    initialized cold from the reference state ([Controller.of_reference]).
    The bus is not part of a snapshot — attach sinks to [bus] before
    calling. *)

val restore_pipeline : t -> Darco_timing.Pipeline.t option
(** The warmed timing pipeline, when one was captured. *)

(** {1 Introspection} *)

val manifest : t -> Darco_obs.Jsonx.t
(** Kind, version, retired count and per-section sizes/checksums. *)

val memory_hash : Memory.t -> string
(** Hex digest of the materialized memory image (test/verification aid). *)
