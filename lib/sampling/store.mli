(** A content-addressed checkpoint store.

    Work units (version 2) no longer embed their starting snapshot; they
    carry the {e digest} of its encoded bytes and every executing party —
    the local fork pool, the dispatcher, a worker daemon — resolves the
    digest through a store.  A sweep of W windows sharing one checkpoint
    therefore holds (and ships) the snapshot bytes once, not W times.

    The store itself is format-agnostic: it maps [digest bytes] to
    [bytes].  An optional directory persists entries across daemon
    restarts ([darco worker --store DIR]); entries read back from disk are
    re-verified against their digest and refused ({!Buf.Corrupt}) on
    mismatch, inheriting the snapshot container's corruption discipline.

    Every operation is domain-safe: the table is guarded by a per-store
    mutex (I/O happens outside it), so a domain pool may put/get/spill
    concurrently.  The {!tier} chooses where resident images live:

    - {!Heap} (default): ordinary strings; all readers in one process
      share each image by reference.
    - {!Shared}: images live in Bigarrays off the OCaml heap.  The GC
      never marks or moves them, so forked children keep the image's
      pages copy-on-write-clean — an N-way fork sweep reads one physical
      copy — and cold reads mmap the spill file, sharing pages across
      worker processes on the machine. *)

type t

(** Residency of in-memory images; see the module preamble. *)
type tier = Heap | Shared

val digest : string -> string
(** Content address of a byte string: 32 lowercase hex characters
    (MD5 via [Digest]).  Stable across processes and machines. *)

val is_digest : string -> bool
(** Shape check used by frame decoders: 32 chars, [0-9a-f]. *)

val create :
  ?bus:Darco_obs.Bus.t -> ?dir:string -> ?tier:tier -> ?max_bytes:int -> unit -> t
(** An empty store.  With [dir], entries are also written to (and looked
    up in) [dir/<digest>.dsnp]; the directory is created if missing.
    [tier] defaults to {!Heap}.

    [max_bytes] puts a byte budget on the spill directory (it has no
    effect without [dir]): after every add, least-recently-used unpinned
    entries are evicted — file and in-memory image both — until the
    directory fits, each eviction emitting [Store_evict] on [bus].  The
    entry just added is never the victim, and when only pinned entries
    remain the store runs over budget rather than dropping them.  A
    cold read of an evicted digest is a plain miss ([find] returns
    [None]).  Pre-existing spill files are picked up (oldest mtime =
    least recent) so the budget holds across restarts. *)

val tier : t -> tier

val pin : t -> string -> unit
(** Exempt the digest from LRU eviction (e.g. while units referencing it
    are in flight).  Pins nest: each [pin] needs one {!unpin}.  Pinning
    a digest not yet in the store sticks — it protects the entry from
    the moment it is added. *)

val unpin : t -> string -> unit

val spilled_bytes : t -> int
(** Bytes currently accounted to the spill directory (0 without [dir]). *)

val add : t -> string -> string
(** [add t bytes] stores [bytes] under its digest and returns the digest.
    Idempotent; re-adding existing content costs one hash. *)

val find : t -> string -> string option
(** Look the digest up in memory, then on disk.  Raises {!Buf.Corrupt} if
    a disk entry's content does not hash back to its name. *)

val mem : t -> string -> bool
val count : t -> int
(** Distinct checkpoints currently resident in memory. *)
