(** A content-addressed checkpoint store.

    Work units (version 2) no longer embed their starting snapshot; they
    carry the {e digest} of its encoded bytes and every executing party —
    the local fork pool, the dispatcher, a worker daemon — resolves the
    digest through a store.  A sweep of W windows sharing one checkpoint
    therefore holds (and ships) the snapshot bytes once, not W times.

    The store itself is format-agnostic: it maps [digest bytes] to
    [bytes].  An optional directory persists entries across daemon
    restarts ([darco worker --store DIR]); entries read back from disk are
    re-verified against their digest and refused ({!Buf.Corrupt}) on
    mismatch, inheriting the snapshot container's corruption discipline. *)

type t

val digest : string -> string
(** Content address of a byte string: 32 lowercase hex characters
    (MD5 via [Digest]).  Stable across processes and machines. *)

val is_digest : string -> bool
(** Shape check used by frame decoders: 32 chars, [0-9a-f]. *)

val create : ?dir:string -> unit -> t
(** An empty store.  With [dir], entries are also written to (and looked
    up in) [dir/<digest>.dsnp]; the directory is created if missing. *)

val add : t -> string -> string
(** [add t bytes] stores [bytes] under its digest and returns the digest.
    Idempotent; re-adding existing content costs one hash. *)

val find : t -> string -> string option
(** Look the digest up in memory, then on disk.  Raises {!Buf.Corrupt} if
    a disk entry's content does not hash back to its name. *)

val mem : t -> string -> bool
val count : t -> int
(** Distinct checkpoints currently resident in memory. *)
