module Bus = Darco_obs.Bus
module Event = Darco_obs.Event
module Clock = Darco_obs.Clock
module Rng = Darco_util.Rng
module Sm = Darco_util.Stats_math

type kind = Fixed | Adaptive

type config = {
  kind : kind;
  ci_target : float;
  max_windows : int;
  round_size : int;
  seed : int;
}

let default =
  { kind = Adaptive; ci_target = 0.02; max_windows = 0; round_size = 4; seed = 42 }

type stop = Ci_target | Budget | Exhausted

let stop_reason = function
  | Ci_target -> "ci_target"
  | Budget -> "budget"
  | Exhausted -> "exhausted"

type stratum = {
  st_phase : int;
  st_population : int;  (* candidates originally in the stratum *)
  mutable st_remaining : int list;  (* unchosen offsets, ascending *)
  mutable st_ipcs : float list;  (* completed, oldest first *)
}

type t = {
  cfg : config;
  bus : Bus.t option;
  rng : Rng.t;
  strata : stratum array;  (* sorted by st_phase, ascending *)
  phase_of : int -> int;
  mutable t_ipcs : float list;  (* all completed, in record order *)
  mutable t_completed : int;
  mutable t_rounds : int;
  mutable t_stop : stop option;
}

let emit t ev =
  match t.bus with
  | Some b when Bus.active b -> Bus.emit b ~at:(Clock.ticks ()) ev
  | _ -> ()

let create ?bus cfg ~candidates ~phase_of =
  let cfg = { cfg with round_size = max 1 cfg.round_size } in
  let candidates = List.sort_uniq compare candidates in
  let by_phase = Hashtbl.create 16 in
  List.iter
    (fun off ->
      let ph = phase_of off in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_phase ph) in
      Hashtbl.replace by_phase ph (off :: prev))
    candidates;
  let strata =
    Hashtbl.fold
      (fun ph offs acc ->
        let offs = List.rev offs (* ascending again *) in
        { st_phase = ph; st_population = List.length offs; st_remaining = offs;
          st_ipcs = [] }
        :: acc)
      by_phase []
    |> List.sort (fun a b -> compare a.st_phase b.st_phase)
    |> Array.of_list
  in
  {
    cfg;
    bus;
    rng = Rng.create cfg.seed;
    strata;
    phase_of;
    t_ipcs = [];
    t_completed = 0;
    t_rounds = 0;
    t_stop = None;
  }

let completed t = t.t_completed
let rounds t = t.t_rounds
let stopped t = t.t_stop

let candidates_left t =
  Array.fold_left (fun acc st -> acc + List.length st.st_remaining) 0 t.strata

let mean t = Sm.mean t.t_ipcs
let ci95 t = Sm.ci95_halfwidth t.t_ipcs

let ci_target_met t =
  t.cfg.ci_target > 0.0 && t.t_completed >= 2
  &&
  let m = mean t in
  m > 0.0 && ci95 t <= t.cfg.ci_target *. m

let stratum_of t off =
  let ph = t.phase_of off in
  let found = ref None in
  Array.iter (fun st -> if st.st_phase = ph then found := Some st) t.strata;
  !found

let predict t off =
  match stratum_of t off with
  | Some st when st.st_ipcs <> [] -> Sm.mean st.st_ipcs
  | _ -> mean t

let record t results =
  (* sort by offset so folding order — and with it every float
     accumulation downstream — is independent of which backend finished
     which unit first *)
  let results = List.sort (fun (a, _) (b, _) -> compare a b) results in
  List.iter
    (fun (off, ipc) ->
      (match stratum_of t off with
      | Some st -> st.st_ipcs <- st.st_ipcs @ [ ipc ]
      | None -> ());
      t.t_ipcs <- t.t_ipcs @ [ ipc ];
      t.t_completed <- t.t_completed + 1)
    results

(* Remove and return the [j]-th remaining offset of a stratum. *)
let take_nth st j =
  let off = List.nth st.st_remaining j in
  st.st_remaining <- List.filteri (fun k _ -> k <> j) st.st_remaining;
  off

(* Marginal value of giving stratum [i] one more window this round:
   Neyman-style population x sigma weight, discounted by the samples it
   already has (recorded plus picked this round).  Unexplored strata
   borrow the global sigma (or 1.0 while nothing is measured) so they
   get bootstrapped; a measured-steady stratum scores 0 and is left
   alone until everything else is exhausted. *)
let score t picks i st =
  match st.st_remaining with
  | [] -> neg_infinity
  | _ ->
    let n_s = List.length st.st_ipcs + picks.(i) in
    let sigma =
      if List.length st.st_ipcs >= 2 then Sm.sample_stddev st.st_ipcs
      else
        let g = Sm.sample_stddev t.t_ipcs in
        if g > 0.0 then g else 1.0
    in
    float_of_int st.st_population *. sigma /. float_of_int (n_s + 1)

let choose_adaptive t k =
  let picks = Array.make (Array.length t.strata) 0 in
  let chosen = ref [] in
  (try
     for _ = 1 to k do
       (* best-scoring stratum; ties resolve to the lowest phase because
          strata are sorted ascending and > is strict *)
       let best = ref (-1) and best_score = ref neg_infinity in
       Array.iteri
         (fun i st ->
           let s = score t picks i st in
           if s > !best_score then begin
             best := i;
             best_score := s
           end)
         t.strata;
       if !best < 0 || !best_score = neg_infinity then raise Exit;
       let st = t.strata.(!best) in
       let off = take_nth st (Rng.int t.rng (List.length st.st_remaining)) in
       picks.(!best) <- picks.(!best) + 1;
       chosen := off :: !chosen
     done
   with Exit -> ());
  List.rev !chosen

let choose_fixed t k =
  (* all strata merged, ascending offsets: the one-shot sweep's order *)
  let all =
    Array.fold_left (fun acc st -> acc @ st.st_remaining) [] t.strata
    |> List.sort compare
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let chosen = take k all in
  List.iter
    (fun off ->
      match stratum_of t off with
      | Some st -> st.st_remaining <- List.filter (fun o -> o <> off) st.st_remaining
      | None -> ())
    chosen;
  chosen

let stop t reason =
  t.t_stop <- Some reason;
  emit t
    (Event.Plan_stop
       {
         reason = stop_reason reason;
         windows = t.t_completed;
         mean = mean t;
         ci95 = ci95 t;
       });
  []

let next t =
  match t.t_stop with
  | Some _ -> []
  | None ->
    if ci_target_met t then stop t Ci_target
    else if t.cfg.max_windows > 0 && t.t_completed >= t.cfg.max_windows then
      stop t Budget
    else if candidates_left t = 0 then stop t Exhausted
    else begin
      let k = t.cfg.round_size in
      let k =
        if t.cfg.max_windows > 0 then min k (t.cfg.max_windows - t.t_completed)
        else k
      in
      let k = min k (candidates_left t) in
      let chosen =
        match t.cfg.kind with
        | Fixed -> choose_fixed t k
        | Adaptive -> choose_adaptive t k
      in
      if t.cfg.kind = Adaptive then
        List.iter
          (fun off ->
            emit t
              (Event.Plan_predict
                 { offset = off; phase = t.phase_of off; ipc = predict t off }))
          chosen;
      emit t
        (Event.Plan_round
           {
             round = t.t_rounds;
             chosen = List.length chosen;
             completed = t.t_completed;
             mean = mean t;
             ci95 = ci95 t;
           });
      t.t_rounds <- t.t_rounds + 1;
      chosen
    end
