open Darco_guest

(** The sampled-simulation driver (paper §VI-E).

    Functional fast-forwarding drops cheap [Functional] checkpoints every N
    guest instructions; detailed measurement windows then start from the
    nearest checkpoint instead of re-simulating from the beginning, so the
    cost of a sample no longer grows with its offset. *)

type checkpoint = { at : int; snapshot : Snapshot.t }

val functional_checkpoints :
  ?input:string ->
  seed:int ->
  interval:int ->
  horizon:int ->
  Program.t ->
  checkpoint list
(** Boot the x86 component and run it functionally to [horizon] guest
    instructions (or the guest's halt, whichever is first), capturing a
    checkpoint at instruction 0 and then every [interval] instructions.
    Sorted by [at], ascending. *)

type index
(** Checkpoints sorted by [at] into an array, so repeated nearest-checkpoint
    queries (one per window the adaptive planner considers) cost
    O(log n) instead of the O(n) fold each [nearest] call pays. *)

val index_of : checkpoint list -> index
(** Sort the checkpoints into a query index.  Stable on [at]: among
    equal-offset checkpoints the earliest in list order wins, matching
    [nearest].  Raises [Invalid_argument] on an empty list. *)

val nearest_ix : index -> int -> checkpoint
(** Binary search for the latest checkpoint at or before the target
    instruction count (the earliest checkpoint when none qualifies) —
    the same answer [nearest] gives on the list the index was built
    from. *)

val nearest : checkpoint list -> int -> checkpoint
(** The latest checkpoint at or before the target instruction count.
    Raises [Invalid_argument] on an empty list. *)

val reference_at : checkpoint list -> int -> Interp_ref.t
(** An x86 component advanced to exactly the target count: restore the
    nearest checkpoint, then interpret the remainder.  Bit-identical to
    booting fresh and running to the target. *)

val controller_at :
  ?cfg:Darco.Config.t ->
  ?bus:Darco_obs.Bus.t ->
  checkpoint list ->
  start:int ->
  Darco.Controller.t
(** A controller whose co-designed component initializes cold at [start] —
    the drop-in replacement for [Controller.create_at ~start] that costs
    O(interval) instead of O(start). *)

type window_result = {
  w_offset : int;          (** where the measurement window began *)
  w_window : int;          (** guest instructions measured *)
  w_warmup : int;          (** detailed warm-up instructions before it *)
  w_from_checkpoint : int; (** the checkpoint the run started from *)
  w_instructions : int;    (** host instructions retired in the window *)
  w_cycles : int;          (** cycles spent in the window *)
  w_ipc : float;
  w_power : Darco_power.Model.report;
      (** the power model evaluated over the window's pipeline activity
          alone (warm-up excluded), so sweeps can aggregate energy/power
          with the same stddev/CI treatment as IPC *)
  w_detail_us : int;
      (** wall-clock microseconds the detailed run took (restore + warm-up
          + window).  In-process only: excluded from {!window_json} so the
          result document stays a deterministic function of the window —
          sweep latency is observed through span durations instead *)
}

val detailed_window :
  ?cfg:Darco.Config.t ->
  ?tcfg:Darco_timing.Tconfig.t ->
  ?warmup:int ->
  checkpoints:checkpoint list ->
  offset:int ->
  window:int ->
  unit ->
  window_result
(** One detailed sample: restore near [offset - warmup], run the co-designed
    component with an attached timing pipeline through the warm-up, then
    measure IPC over [window] guest instructions. *)

val window_json : window_result -> Darco_obs.Jsonx.t
(** Flat JSON of the result, including the power fields ([energy_j],
    [avg_watts], [epi_nj]).  Deterministic: [w_detail_us] is excluded. *)
