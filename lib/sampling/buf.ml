exception Corrupt of string

let corrupt msg = raise (Corrupt msg)

type writer = Buffer.t
type reader = { data : string; mutable pos : int }

let writer () = Buffer.create 4096
let contents w = Buffer.contents w
let reader data = { data; pos = 0 }
let reader_pos r = r.pos
let at_end r = r.pos = String.length r.data
let expect_end r = if not (at_end r) then corrupt "trailing bytes"

let need r n =
  if n < 0 || r.pos + n > String.length r.data then
    corrupt
      (Printf.sprintf "truncated input (need %d bytes at offset %d of %d)" n
         r.pos (String.length r.data))

let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

let read_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let i64 w v = Buffer.add_int64_le w v

let read_i64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let int w v = i64 w (Int64.of_int v)

let read_int r =
  let v = read_i64 r in
  let n = Int64.to_int v in
  if Int64.of_int n <> v then corrupt "integer out of native int range";
  n

let f64 w v = i64 w (Int64.bits_of_float v)
let read_f64 r = Int64.float_of_bits (read_i64 r)

let bool w v = u8 w (if v then 1 else 0)

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt (Printf.sprintf "invalid boolean byte %d" n)

let str w s =
  int w (String.length s);
  Buffer.add_string w s

let read_str r =
  let n = read_int r in
  if n < 0 then corrupt "negative string length";
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let bytes w b = str w (Bytes.to_string b)
let read_bytes r = Bytes.of_string (read_str r)

let tag4 w s =
  if String.length s <> 4 then invalid_arg "Buf.tag4: tag must be 4 bytes";
  Buffer.add_string w s

let read_tag4 r =
  need r 4;
  let s = String.sub r.data r.pos 4 in
  r.pos <- r.pos + 4;
  s

let raw w s = Buffer.add_string w s

let read_raw r n =
  if n < 0 then corrupt "negative raw length";
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let option w f = function
  | None -> u8 w 0
  | Some v ->
    u8 w 1;
    f w v

let read_option r f =
  match read_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | n -> corrupt (Printf.sprintf "invalid option byte %d" n)

let list w f xs =
  int w (List.length xs);
  List.iter (f w) xs

let read_list r f =
  let n = read_int r in
  if n < 0 then corrupt "negative list length";
  (* Bound sanity: every element consumes at least one byte in practice;
     reject counts that cannot possibly fit the remaining input. *)
  if n > String.length r.data - r.pos then corrupt "list length exceeds input";
  List.init n (fun _ -> f r)

let array w f xs =
  int w (Array.length xs);
  Array.iter (f w) xs

let read_array r f =
  let n = read_int r in
  if n < 0 then corrupt "negative array length";
  if n > String.length r.data - r.pos then corrupt "array length exceeds input";
  Array.init n (fun _ -> f r)

let int_array w xs = array w int xs
let read_int_array r = read_array r read_int
let float_array w xs = array w f64 xs
let read_float_array r = read_array r read_f64

(* CRC-32, reflected polynomial 0xEDB88320 (IEEE 802.3), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF
