open Darco_guest
module Pipeline = Darco_timing.Pipeline
module Jsonx = Darco_obs.Jsonx

type checkpoint = { at : int; snapshot : Snapshot.t }

let functional_checkpoints ?input ~seed ~interval ~horizon program =
  if interval <= 0 then invalid_arg "Driver.functional_checkpoints: interval <= 0";
  let ir = Interp_ref.boot ?input ~seed program in
  let acc = ref [ { at = 0; snapshot = Snapshot.capture_reference ir } ] in
  let continue = ref true in
  while !continue do
    let next = ir.retired + interval in
    if next > horizon || ir.cpu.halted then continue := false
    else begin
      Interp_ref.run_until ir next;
      acc := { at = ir.retired; snapshot = Snapshot.capture_reference ir } :: !acc;
      (* the guest may halt before reaching [next]; the checkpoint at the
         halt point is still useful, but there is nothing beyond it *)
      if ir.retired < next then continue := false
    end
  done;
  List.rev !acc

type index = checkpoint array

let index_of checkpoints =
  if checkpoints = [] then invalid_arg "Driver.index_of: no checkpoints";
  let a = Array.of_list checkpoints in
  (* stable on [at], so among equal-offset checkpoints the earliest in
     list order wins — the same tie-break the fold this replaced had *)
  let keyed = Array.mapi (fun i ck -> (ck.at, i, ck)) a in
  Array.sort (fun (x, i, _) (y, j, _) ->
      match compare x y with 0 -> compare i j | c -> c)
    keyed;
  Array.map (fun (_, _, ck) -> ck) keyed

let nearest_ix ix target =
  let n = Array.length ix in
  if n = 0 then invalid_arg "Driver.nearest_ix: empty index";
  if ix.(0).at > target then
    (* no checkpoint at or before the target: settle for the earliest *)
    ix.(0)
  else begin
    (* rightmost entry with [at <= target] ... *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = !lo + ((!hi - !lo + 1) / 2) in
      if ix.(mid).at <= target then lo := mid else hi := mid - 1
    done;
    (* ... backed up to the first of an equal-[at] run *)
    let i = ref !lo in
    while !i > 0 && ix.(!i - 1).at = ix.(!i).at do
      decr i
    done;
    ix.(!i)
  end

let nearest checkpoints target =
  if checkpoints = [] then invalid_arg "Driver.nearest: no checkpoints";
  nearest_ix (index_of checkpoints) target

let reference_at checkpoints target =
  let ck = nearest checkpoints target in
  let ir = Snapshot.restore_reference ck.snapshot in
  if target > ir.retired then Interp_ref.run_until ir target;
  ir

let controller_at ?cfg ?bus checkpoints ~start =
  Darco.Controller.of_reference ?cfg ?bus (reference_at checkpoints start)

type window_result = {
  w_offset : int;
  w_window : int;
  w_warmup : int;
  w_from_checkpoint : int;
  w_instructions : int;
  w_cycles : int;
  w_ipc : float;
  w_power : Darco_power.Model.report;
  w_detail_us : int;
}

let detailed_window ?(cfg = Darco.Config.default)
    ?(tcfg = Darco_timing.Tconfig.default) ?(warmup = 30_000) ~checkpoints ~offset
    ~window () =
  (* The controller stops at slice boundaries; coarse slices would swallow
     the whole measurement window in one step.  Clamp the slice fuel so the
     warm-up/window edges land (nearly) where requested. *)
  let cfg = { cfg with Darco.Config.slice_fuel = min cfg.Darco.Config.slice_fuel 2_000 } in
  let start = max 0 (offset - warmup) in
  let from = (nearest checkpoints start).at in
  let t0 = Darco_obs.Clock.ticks () in
  let bus = Darco_obs.Bus.create () in
  let pipe = Pipeline.create tcfg in
  Pipeline.attach pipe bus;
  let ctl = controller_at ~cfg ~bus checkpoints ~start in
  ignore (Darco.Controller.run ~max_insns:offset ctl);
  let before = Pipeline.events_copy (Pipeline.events pipe) in
  ignore (Darco.Controller.run ~max_insns:(offset + window) ctl);
  let delta = Pipeline.events_diff (Pipeline.events pipe) before in
  let di = delta.Pipeline.e_insns and dc = delta.Pipeline.e_cycles in
  let detail_us = Darco_obs.Clock.ticks () - t0 in
  {
    w_offset = offset;
    w_window = window;
    w_warmup = offset - start;
    w_from_checkpoint = from;
    w_instructions = di;
    w_cycles = dc;
    w_ipc = (if dc = 0 then 0.0 else float_of_int di /. float_of_int dc);
    w_power = Darco_power.Model.evaluate delta;
    w_detail_us = detail_us;
  }

let window_json r =
  Jsonx.Obj
    [
      ("offset", Jsonx.Int r.w_offset);
      ("window", Jsonx.Int r.w_window);
      ("warmup", Jsonx.Int r.w_warmup);
      ("from_checkpoint", Jsonx.Int r.w_from_checkpoint);
      ("instructions", Jsonx.Int r.w_instructions);
      ("cycles", Jsonx.Int r.w_cycles);
      ("ipc", Jsonx.Float r.w_ipc);
      ("energy_j", Jsonx.Float r.w_power.Darco_power.Model.total_joules);
      ("avg_watts", Jsonx.Float r.w_power.Darco_power.Model.avg_watts);
      ("epi_nj", Jsonx.Float r.w_power.Darco_power.Model.epi_nj);
      (* w_detail_us is deliberately absent: the result document must be a
         pure function of the window, identical wherever it was computed —
         that determinism is what lets the sweep tests compare local and
         remote backends byte for byte.  Wall-clock cost travels on the
         observability side instead, as "running" span durations. *)
    ]
