(** Round-based, variance-driven window planning (adaptive sampling).

    The one-shot pipeline picked every measurement window up front
    (fixed-stride offsets) and dispatched them all; the planner closes
    the loop instead.  Windows run in {e rounds}: after each round the
    completed IPCs are folded into per-stratum variance — a stratum is
    the hot-region phase a window's nearest checkpoint sits in
    ({!Snapshot.guest_eip}) — and the next round's windows are chosen
    where the remaining uncertainty is, until the benchmark's CI95
    target is met, the window budget is exhausted, or no candidate
    offsets remain.

    {b Determinism.}  Rounds are the determinism barrier: backends
    complete a round's units in nondeterministic order, but the planner
    only sees results through {!record}, which sorts them by offset
    before folding.  Every planner decision is a pure function of the
    seeded RNG state and the sorted completed set, with ties broken by
    total order (stratum phase ascending, offset ascending) — so an
    adaptive sweep chooses the same windows, in the same dispatch
    order, whichever backend runs it, and the sweep JSON stays
    byte-identical across serial/fork/domains/remote.

    {b Predictor.}  A cheap analytic per-region IPC predictor rides
    along: the sample mean of each stratum's completed windows, falling
    back to the global mean while a stratum is unexplored.  It prices
    the windows the planner considers ({!predict}, emitted as
    [Plan_predict] events) without costing a single extra simulation. *)

type kind =
  | Fixed
      (** degenerate plan: all candidate offsets in ascending order,
          no early exit — the planner-shaped spelling of the existing
          one-shot sweep *)
  | Adaptive  (** variance-driven rounds with early exit *)

type config = {
  kind : kind;
  ci_target : float;
      (** stop once the CI95 half-width of the mean IPC is within this
          {e fraction} of the mean (e.g. [0.02] = ±2%).  [<= 0.] never
          stops on confidence *)
  max_windows : int;  (** total window budget; [<= 0] = unlimited *)
  round_size : int;  (** windows dispatched per round (min 1) *)
  seed : int;  (** planner RNG seed (within-stratum offset choice) *)
}

val default : config
(** [Adaptive], [ci_target = 0.02], unlimited budget, [round_size = 4],
    [seed = 42]. *)

type stop =
  | Ci_target  (** converged: the CI95 target is met *)
  | Budget  (** [max_windows] exhausted *)
  | Exhausted  (** no candidate offsets left *)

val stop_reason : stop -> string
(** Stable machine-readable name: ["ci_target"], ["budget"],
    ["exhausted"] — the [reason] field of [Plan_stop]. *)

type t

val create :
  ?bus:Darco_obs.Bus.t -> config -> candidates:int list -> phase_of:(int -> int) -> t
(** A planner over the candidate window offsets.  [phase_of] maps an
    offset to its stratum id — callers pass the guest PC of the nearest
    functional checkpoint ({!Driver.nearest_ix} + {!Snapshot.guest_eip}),
    which is backend-independent.  Duplicate candidates are dropped.
    When [bus] is given and active the planner emits [Plan_round],
    [Plan_predict] and [Plan_stop] events as it decides. *)

val record : t -> (int * float) list -> unit
(** Fold one completed round of [(offset, ipc)] measurements.  Order
    does not matter — results are sorted by offset before folding, so
    the planner state after a round is independent of completion
    order.  Results admitted from an artifact library {e before} any
    dispatch are recorded the same way and count toward the CI. *)

val next : t -> int list
(** Choose the next round's window offsets, highest-value first (the
    dispatch-priority order).  Returns [[]] once the planner has
    stopped — check {!stopped} for why.  Calling [next] again after a
    stop keeps returning [[]]. *)

val stopped : t -> stop option
val completed : t -> int  (** windows recorded so far *)

val rounds : t -> int  (** rounds issued so far *)

val candidates_left : t -> int
val mean : t -> float  (** running mean IPC over completed windows *)

val ci95 : t -> float  (** CI95 half-width of {!mean} (0 under 2 samples) *)

val ci_target_met : t -> bool
val predict : t -> int -> float
(** Predicted IPC for a candidate offset: its stratum's sample mean,
    else the global mean, else [0.]. *)
