module Jsonx = Darco_obs.Jsonx
module Bus = Darco_obs.Bus
module Span = Darco_obs.Span

type outcome = Ok of Jsonx.t | Failed of string
type result = { label : string; outcome : outcome }

let write_whole path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exit codes used by workers: 0 = the temp file holds the JSON result,
   3 = the temp file holds an error description. *)
let run_child f item path =
  match
    try write_whole path (Jsonx.to_string (f item)); 0
    with e -> (try write_whole path (Printexc.to_string e) with _ -> ()); 3
  with
  | code -> Unix._exit code
  | exception _ -> Unix._exit 3

let collect path status =
  match status with
  | Unix.WEXITED 0 -> (
    match Jsonx.parse (read_whole path) with
    | json -> Ok json
    | exception Jsonx.Parse_error msg -> Failed ("worker result unreadable: " ^ msg)
    | exception Sys_error msg -> Failed ("worker result unreadable: " ^ msg))
  | Unix.WEXITED 3 ->
    let reason = try read_whole path with Sys_error _ -> "" in
    Failed (if reason = "" then "worker failed" else "worker failed: " ^ reason)
  | Unix.WEXITED n -> Failed (Printf.sprintf "worker exited with code %d" n)
  | Unix.WSIGNALED s -> Failed (Printf.sprintf "worker killed by signal %d" s)
  | Unix.WSTOPPED s -> Failed (Printf.sprintf "worker stopped by signal %d" s)

(* The fork-per-item pool behind the [Local] backend (and the deprecated
   generic [map]). *)
let pool_map ?bus ?(jobs = 4) ~label f items =
  let jobs = max 1 jobs in
  let items = Array.of_list items in
  let n = Array.length items in
  let outcomes = Array.make n (Failed "not run") in
  let pending = Hashtbl.create jobs in (* pid -> (index, temp path) *)
  (* one "running" span per item on the [local] track, correlated by item
     index — the same shape a worker daemon ships back over the wire, so
     local and remote sweeps produce the same timeline *)
  let span sp =
    match bus with
    | Some b when Bus.active b -> Span.emit b sp
    | _ -> ()
  in
  (* wait(2) is interruptible: a SIGCHLD-adjacent signal landing between
     forks surfaced as EINTR and tore the whole sweep down. Retry; only
     an actual reap (or a real error) may end the call. *)
  let rec wait_nointr () =
    try Unix.wait ()
    with Unix.Unix_error (EINTR, _, _) -> wait_nointr ()
  in
  let reap_one () =
    let pid, status = wait_nointr () in
    match Hashtbl.find_opt pending pid with
    | None -> () (* not ours; nothing to record *)
    | Some (idx, path) ->
      Hashtbl.remove pending pid;
      outcomes.(idx) <- collect path status;
      (let ok = match outcomes.(idx) with Ok _ -> true | Failed _ -> false in
       span (Span.end_ ~ok ~span:"running" ~corr:idx ~host:"local" ()));
      (try Sys.remove path with Sys_error _ -> ())
  in
  Array.iteri
    (fun idx item ->
      while Hashtbl.length pending >= jobs do
        reap_one ()
      done;
      let path = Filename.temp_file "darco_sweep" ".json" in
      span
        (Span.begin_ ~detail:(label item) ~span:"running" ~corr:idx
           ~host:"local" ());
      (* flush before forking so buffered output is not emitted twice *)
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 -> run_child f item path
      | pid -> Hashtbl.replace pending pid (idx, path))
    items;
  while Hashtbl.length pending > 0 do
    reap_one ()
  done;
  List.mapi
    (fun idx item -> { label = label item; outcome = outcomes.(idx) })
    (Array.to_list items)

(* The domain-pool twin of [pool_map]: same span timeline (begin on
   submit, end on completion, host "local", corr = unit index), same
   at-most-[jobs]-in-flight pacing, same failure rendering — so a sweep
   produces byte-identical JSON whichever pool ran it.  All bus emission
   happens on the calling domain; worker domains only run [f].  The pool
   is a parameter so a round-based session reuses one set of domains
   across rounds instead of respawning them per round. *)
let domains_map_on pool ?bus ~jobs ~label f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let outcomes = Array.make n (Failed "not run") in
  let span sp =
    match bus with
    | Some b when Bus.active b -> Span.emit b sp
    | _ -> ()
  in
  let next = ref 0 in
  let submit_one () =
    let idx = !next in
    incr next;
    let item = items.(idx) in
    span
      (Span.begin_ ~detail:(label item) ~span:"running" ~corr:idx
         ~host:"local" ());
    Dpool.submit pool ~tag:idx (fun () -> f item)
  in
  while !next < n && Dpool.pending pool < jobs do
    submit_one ()
  done;
  while Dpool.pending pool > 0 do
    let idx, res = Dpool.await pool in
    outcomes.(idx) <-
      (match res with
      | Stdlib.Ok json -> Ok json
      | Stdlib.Error e -> Failed ("worker failed: " ^ Printexc.to_string e));
    (let ok = match outcomes.(idx) with Ok _ -> true | Failed _ -> false in
     span (Span.end_ ~ok ~span:"running" ~corr:idx ~host:"local" ()));
    if !next < n then submit_one ()
  done;
  List.mapi
    (fun idx item -> { label = label item; outcome = outcomes.(idx) })
    (Array.to_list items)

let domains_map ?bus ?(jobs = 4) ~label f items =
  let jobs = max 1 jobs in
  let pool = Dpool.create ~jobs () in
  Fun.protect
    ~finally:(fun () -> Dpool.shutdown pool)
    (fun () -> domains_map_on pool ?bus ~jobs ~label f items)

module Backend = struct
  type nonrec session = {
    s_dispatch : Work.t list -> result list;
    s_close : unit -> unit;
  }

  type nonrec t = {
    name : string;
    dispatch : Work.t list -> result list;
    session : unit -> session;
  }

  (* backends without cross-round state: a session is just the one-shot
     dispatch, round after round *)
  let oneshot dispatch () = { s_dispatch = dispatch; s_close = (fun () -> ()) }

  let of_exec ?bus ?(jobs = 4) ~name exec =
    let dispatch works =
      pool_map ?bus ~jobs ~label:(fun (w : Work.t) -> w.Work.label) exec works
    in
    { name; dispatch; session = oneshot dispatch }

  let local ?bus ?store ?(jobs = 4) () =
    of_exec ?bus ~jobs
      ~name:(Printf.sprintf "local:%d" (max 1 jobs))
      (Work.exec ?store)

  let serial ?bus ?store () =
    let exec = Work.exec ?store in
    let span sp =
      match bus with
      | Some b when Bus.active b -> Span.emit b sp
      | _ -> ()
    in
    let dispatch works =
      List.mapi
        (fun idx (w : Work.t) ->
          span
            (Span.begin_ ~detail:w.Work.label ~span:"running" ~corr:idx
               ~host:"local" ());
          let outcome =
            match exec w with
            | json -> Ok json
            | exception e -> Failed ("worker failed: " ^ Printexc.to_string e)
          in
          (let ok = match outcome with Ok _ -> true | Failed _ -> false in
           span (Span.end_ ~ok ~span:"running" ~corr:idx ~host:"local" ()));
          { label = w.Work.label; outcome })
        works
    in
    { name = "serial"; dispatch; session = oneshot dispatch }

  let domains ?bus ?store ?(jobs = 4) () =
    let jobs = max 1 jobs in
    let label (w : Work.t) = w.Work.label in
    let exec = Work.exec ?store in
    {
      name = Printf.sprintf "domains:%d" jobs;
      dispatch = (fun works -> domains_map ?bus ~jobs ~label exec works);
      session =
        (fun () ->
          let pool = Dpool.create ~jobs () in
          {
            s_dispatch =
              (fun works -> domains_map_on pool ?bus ~jobs ~label exec works);
            s_close = (fun () -> Dpool.shutdown pool);
          });
    }
end

let run (b : Backend.t) works = b.dispatch works

let run_stream (b : Backend.t) ~next =
  let s = b.Backend.session () in
  Fun.protect
    ~finally:(fun () -> s.Backend.s_close ())
    (fun () ->
      (* completed (work, result) pairs, newest batch first *)
      let completed = ref [] in
      let round = ref 0 in
      let continue = ref true in
      while !continue do
        match next !round (List.rev !completed) with
        | [] -> continue := false
        | works ->
          let results = s.Backend.s_dispatch works in
          completed := List.rev_append (List.combine works results) !completed;
          incr round
      done;
      List.rev !completed)
