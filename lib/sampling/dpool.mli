(** A fixed pool of worker domains draining one thunk queue.

    The pool is the shared-memory counterpart of the fork pool in
    {!Sweep}: submit tagged thunks, collect [(tag, result)] completions
    in finish order.  Thunks run on worker domains, so everything they
    close over must be domain-safe (per-unit state, or shared structures
    with their own locking such as {!Store.t}).  A raising thunk reports
    [Error exn] for its tag; it never kills the worker domain.

    Completions can be consumed three ways:

    - {!await}: block until one is ready (the sweep backend's loop);
    - {!try_next}: poll without blocking;
    - {!wake_fd}: a pipe read-end that becomes readable whenever
      completions are pending, for [select]-based event loops (the worker
      daemon).  Wakeups may be spurious (call {!try_next} until [None];
      it drains the pipe itself) but are never missed. *)

type 'b t

val create : jobs:int -> unit -> 'b t
(** Spawn worker domains for [jobs]-deep admission (raises
    [Invalid_argument] when [jobs < 1]).  The number of domains actually
    spawned is clamped to [Domain.recommended_domain_count ()]: domains
    share stop-the-world minor collections, so running more of them than
    there are cores makes every minor GC a cross-domain stall instead of
    a speedup.  Excess submissions simply queue. *)

val jobs : 'b t -> int
(** The requested [jobs] — the admission depth, not the domain count. *)

val size : 'b t -> int
(** Worker domains actually spawned ([<= jobs], see {!create}). *)

val submit : 'b t -> tag:int -> (unit -> 'b) -> unit
(** Enqueue one unit of work.  Tags are the caller's correlation ids and
    are returned verbatim; they need not be distinct. *)

val pending : 'b t -> int
(** Submitted units whose completions have not been consumed yet. *)

val try_next : 'b t -> (int * ('b, exn) result) option
(** Pop a completion if one is ready; never blocks. *)

val await : 'b t -> int * ('b, exn) result
(** Block until a completion is ready and pop it.  Raises
    [Invalid_argument] when {!pending} is [0] (it would block forever). *)

val wake_fd : 'b t -> Unix.file_descr
(** Readable whenever a completion may be pending.  Owned by the pool —
    select on it, read from it to drain, never close it. *)

val shutdown : 'b t -> unit
(** Stop the pool: each worker finishes the thunk it is running, queued
    thunks not yet started are discarded, domains are joined and the wake
    pipe is closed.  Pop any completions you still want with {!try_next}
    {e before} calling.  Idempotent. *)
