(** The mini operating-system interface (the guest's system-call layer).

    In the original infrastructure system calls are executed only by the
    full-system x86 component; the controller then forwards the resulting
    architectural/memory changes to the co-designed component.  We keep that
    protocol: {!execute} runs a system call against the authoritative state
    and returns the list of {!effect}s, which the controller replays onto the
    emulated state.

    All inputs (read, time, getrandom) are deterministic functions of the
    seed so that differential validation is exact.

    Call numbers (in EAX, Linux-i386 flavoured):
    - 1  exit    (EBX = status)
    - 3  read    (EBX = fd, ECX = buf, EDX = len) -> EAX = bytes read
    - 4  write   (EBX = fd, ECX = buf, EDX = len) -> EAX = bytes written
    - 13 time    () -> EAX = deterministic seconds counter
    - 45 brk     (EBX = new break or 0) -> EAX = current break
    - 97 getrand () -> EAX = deterministic 32-bit pseudo-random value *)

type t

type effect =
  | Set_reg of Isa.reg * int
  | Mem_write of int * Bytes.t  (** absolute address, raw bytes *)
  | Exit of int                 (** guest requested termination *)

val create : ?input:string -> seed:int -> brk:int -> unit -> t

type persisted = {
  p_brk : int;
  p_time : int;
  p_input_pos : int;
  p_input : string;
  p_rng_state : int64;
  p_output : string;
}
(** The complete OS-layer state as plain data, for snapshots.  Captures the
    program break, the deterministic clock, the input cursor, the RNG state
    and everything written so far, so a restored run continues (and outputs)
    exactly as the original would have. *)

val persist : t -> persisted
val unpersist : persisted -> t

val execute : t -> Cpu.t -> Memory.t -> effect list
(** Run the system call selected by the authoritative [Cpu.t]/[Memory.t]
    state, mutate that state, and return the effects to replay.  EIP is not
    advanced (the caller advances past the syscall instruction on both
    components). *)

val output : t -> string
(** Everything the guest wrote to any fd. *)
