type t = { pages : (int, bytes) Hashtbl.t; policy : [ `Auto_zero | `Fault ] }

exception Page_fault of int

let page_size = 4096
let page_bits = 12
let create policy = { pages = Hashtbl.create 64; policy }
let page_index addr = addr lsr page_bits
let page_base idx = idx lsl page_bits

let get_page t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
    (match t.policy with
    | `Fault -> raise (Page_fault idx)
    | `Auto_zero ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace t.pages idx p;
      p)

let read8 t addr =
  let p = get_page t (page_index addr) in
  Char.code (Bytes.unsafe_get p (addr land (page_size - 1)))

let write8 t addr v =
  let p = get_page t (page_index addr) in
  Bytes.unsafe_set p (addr land (page_size - 1)) (Char.unsafe_chr (v land 0xFF))

(* Multi-byte accesses that stay within one page take a single page lookup;
   page-crossing ones fall back to the byte loop so the fault order (lowest
   byte's page first) is unchanged. *)
let read (t : t) (w : Isa.width) addr =
  match w with
  | W8 -> read8 t addr
  | W16 ->
    let off = addr land (page_size - 1) in
    if off <= page_size - 2 then begin
      let p = get_page t (page_index addr) in
      Char.code (Bytes.unsafe_get p off)
      lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
    end
    else read8 t addr lor (read8 t (addr + 1) lsl 8)
  | W32 ->
    let off = addr land (page_size - 1) in
    if off <= page_size - 4 then begin
      let p = get_page t (page_index addr) in
      Int32.to_int (Bytes.get_int32_le p off) land 0xFFFFFFFF
    end
    else
      read8 t addr
      lor (read8 t (addr + 1) lsl 8)
      lor (read8 t (addr + 2) lsl 16)
      lor (read8 t (addr + 3) lsl 24)

let write (t : t) (w : Isa.width) addr v =
  match w with
  | W8 -> write8 t addr v
  | W16 ->
    let off = addr land (page_size - 1) in
    if off <= page_size - 2 then begin
      let p = get_page t (page_index addr) in
      Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xFF));
      Bytes.unsafe_set p (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))
    end
    else begin
      write8 t addr v;
      write8 t (addr + 1) (v lsr 8)
    end
  | W32 ->
    let off = addr land (page_size - 1) in
    if off <= page_size - 4 then begin
      let p = get_page t (page_index addr) in
      Bytes.set_int32_le p off (Int32.of_int v)
    end
    else begin
      write8 t addr v;
      write8 t (addr + 1) (v lsr 8);
      write8 t (addr + 2) (v lsr 16);
      write8 t (addr + 3) (v lsr 24)
    end

let read32 t addr = read t W32 addr
let write32 t addr v = write t W32 addr v

let read_f64 t addr =
  let lo = Int64.of_int (read32 t addr) in
  let hi = Int64.of_int (read32 t (addr + 4)) in
  Int64.float_of_bits (Int64.logor (Int64.shift_left hi 32) lo)

let write_f64 t addr x =
  let bits = Int64.bits_of_float x in
  write32 t addr (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  write32 t (addr + 4) (Int64.to_int (Int64.shift_right_logical bits 32))

let has_page t idx = Hashtbl.mem t.pages idx

let install_page t idx data =
  assert (Bytes.length data = page_size);
  let p = Bytes.make page_size '\000' in
  Bytes.blit data 0 p 0 page_size;
  Hashtbl.replace t.pages idx p

let touched_pages t =
  Hashtbl.fold (fun idx _ acc -> idx :: acc) t.pages [] |> List.sort compare

let blit_bytes t addr b =
  for i = 0 to Bytes.length b - 1 do
    write8 t (addr + i) (Char.code (Bytes.get b i))
  done

let zero_page = Bytes.make page_size '\000'

let equal_page a b idx =
  let pa = Option.value (Hashtbl.find_opt a.pages idx) ~default:zero_page in
  let pb = Option.value (Hashtbl.find_opt b.pages idx) ~default:zero_page in
  Bytes.equal pa pb
