type t = {
  mutable brk : int;
  mutable time : int;
  mutable input_pos : int;
  input : string;
  rng : Darco_util.Rng.t;
  out : Buffer.t;
}

type effect =
  | Set_reg of Isa.reg * int
  | Mem_write of int * Bytes.t
  | Exit of int

let create ?(input = "") ~seed ~brk () =
  {
    brk;
    time = 946684800 (* fixed epoch for determinism *);
    input_pos = 0;
    input;
    rng = Darco_util.Rng.create seed;
    out = Buffer.create 256;
  }

type persisted = {
  p_brk : int;
  p_time : int;
  p_input_pos : int;
  p_input : string;
  p_rng_state : int64;
  p_output : string;
}

let persist t =
  {
    p_brk = t.brk;
    p_time = t.time;
    p_input_pos = t.input_pos;
    p_input = t.input;
    p_rng_state = Darco_util.Rng.state t.rng;
    p_output = Buffer.contents t.out;
  }

let unpersist p =
  let out = Buffer.create (max 256 (String.length p.p_output)) in
  Buffer.add_string out p.p_output;
  {
    brk = p.p_brk;
    time = p.p_time;
    input_pos = p.p_input_pos;
    input = p.p_input;
    rng = Darco_util.Rng.of_state p.p_rng_state;
    out;
  }

let set_eax cpu v =
  Cpu.set cpu Isa.EAX v;
  Set_reg (Isa.EAX, Semantics.mask32 v)

let execute t cpu mem =
  let num = Cpu.get cpu Isa.EAX in
  let arg1 = Cpu.get cpu Isa.EBX in
  let arg2 = Cpu.get cpu Isa.ECX in
  let arg3 = Cpu.get cpu Isa.EDX in
  match num with
  | 1 ->
    cpu.halted <- true;
    [ Exit arg1 ]
  | 3 ->
    let len = min arg3 (String.length t.input - t.input_pos) in
    let len = max 0 len in
    let data = Bytes.of_string (String.sub t.input t.input_pos len) in
    t.input_pos <- t.input_pos + len;
    Memory.blit_bytes mem arg2 data;
    let e = set_eax cpu len in
    if len > 0 then [ Mem_write (arg2, data); e ] else [ e ]
  | 4 ->
    let b = Bytes.create arg3 in
    for i = 0 to arg3 - 1 do
      Bytes.set b i (Char.chr (Memory.read8 mem (arg2 + i)))
    done;
    Buffer.add_bytes t.out b;
    [ set_eax cpu arg3 ]
  | 13 ->
    t.time <- t.time + 1;
    [ set_eax cpu t.time ]
  | 45 ->
    if arg1 <> 0 then t.brk <- arg1;
    [ set_eax cpu t.brk ]
  | 97 ->
    let v = Semantics.mask32 (Int64.to_int (Darco_util.Rng.int64 t.rng)) in
    [ set_eax cpu v ]
  | _ ->
    (* Unknown syscall: fail deterministically with -1 in EAX. *)
    [ set_eax cpu 0xFFFFFFFF ]

let output t = Buffer.contents t.out
