open Darco_guest

(** The warm-up simulation methodology of §VI-E.

    Sampling-based simulation needs the software layer's state (profiler
    counters, code cache) warmed up in addition to the microarchitectural
    state, and a faithful warm-up would need to be orders of magnitude
    longer than for a conventional processor.  The paper's technique
    downscales the promotion thresholds during the warm-up phase and
    restores them for measurement; an off-line heuristic picks the
    (scaling factor, warm-up length) pair whose basic-block execution-
    frequency distribution best correlates with the authoritative run's.

    [run_study] reproduces the experiment: for each sample it measures the
    window IPC under full detailed simulation (the authoritative result)
    and under sampled simulation with the heuristically chosen warm-up
    configuration, reporting the per-sample error and the wall-clock
    simulation-cost reduction. *)

type candidate = { scale_factor : int; warmup_insns : int }

type sample_result = {
  offset : int;
  chosen : candidate;
  correlation : float;
  ipc_full : float;
  ipc_sampled : float;
  error : float;
}

type report = {
  samples : sample_result list;
  avg_error : float;
  baseline_error : float;
      (** error of the conventional long-warm-up baseline *)
  ipc_sampled_mean : float;
      (** mean sampled IPC across the windows — report it with
          {!field-ipc_sampled_ci95} so the point estimate carries its
          sampling error *)
  ipc_sampled_ci95 : float;
      (** 95% confidence half-width over the sample windows
          ([Stats_math.ci95_halfwidth], SMARTS-style) *)
  ipc_full_mean : float;   (** same, for the authoritative windows *)
  ipc_full_ci95 : float;
  speedup : float;
      (** baseline (long, unscaled warm-up) time / scaled-warm-up time — the
          paper's "simulation cost reduced 65x" metric *)
  t_full : float;      (** detailed simulation of the whole span, for context *)
  t_baseline : float;
  t_sampled : float;
}

val default_candidates : candidate list

val run_study :
  ?cfg:Darco.Config.t ->
  ?tcfg:Darco_timing.Tconfig.t ->
  ?candidates:candidate list ->
  ?baseline_warmup:int ->
  ?checkpoint_interval:int ->
  program:Program.t ->
  seed:int ->
  sample_offsets:int list ->
  window:int ->
  unit ->
  report
(** Every fast-forward (baseline and per-candidate) starts from the nearest
    functional checkpoint, dropped every [checkpoint_interval] guest
    instructions (default 100k) in a single pass up front — so a sample's
    cost depends on its warm-up length, not its offset. *)

val pp_report : Format.formatter -> report -> unit
