type t = {
  guest_mips_emulated : float;
  guest_mips_timing : float;
  host_mips_emulated : float;
  host_mips_timing : float;
}

let run_once ?cfg ~timing ~insns program ~seed =
  let ctl = Darco.Controller.create ?cfg ~seed program in
  if timing then begin
    let pipe = Darco_timing.Pipeline.create Darco_timing.Tconfig.default in
    Darco_timing.Pipeline.attach pipe (Darco.Controller.bus ctl)
  end;
  let t0 = Unix.gettimeofday () in
  ignore (Darco.Controller.run ~max_insns:insns ctl);
  let dt = Unix.gettimeofday () -. t0 in
  let st = Darco.Controller.stats ctl in
  (float_of_int (Darco.Stats.guest_total st) /. dt, float_of_int (Darco.Stats.host_total st) /. dt)

let measure ?cfg ?(insns = 400_000) program ~seed =
  let g_emu, h_emu = run_once ?cfg ~timing:false ~insns program ~seed in
  let g_tim, h_tim = run_once ?cfg ~timing:true ~insns program ~seed in
  {
    guest_mips_emulated = g_emu /. 1e6;
    guest_mips_timing = g_tim /. 1e6;
    host_mips_emulated = h_emu /. 1e6;
    host_mips_timing = h_tim /. 1e6;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>guest ISA: %.2f MIPS emulated, %.0f KIPS with timing@ \
     host ISA:  %.2f MIPS emulated, %.2f MIPS with timing@]"
    t.guest_mips_emulated
    (1000. *. t.guest_mips_timing)
    t.host_mips_emulated t.host_mips_timing
