module Pipeline = Darco_timing.Pipeline

type candidate = { scale_factor : int; warmup_insns : int }

type sample_result = {
  offset : int;
  chosen : candidate;
  correlation : float;
  ipc_full : float;
  ipc_sampled : float;
  error : float;
}

type report = {
  samples : sample_result list;
  avg_error : float;
  baseline_error : float;
  ipc_sampled_mean : float;
  ipc_sampled_ci95 : float;
  ipc_full_mean : float;
  ipc_full_ci95 : float;
  speedup : float;
  t_full : float;
  t_baseline : float;
  t_sampled : float;
}

let default_candidates =
  [
    { scale_factor = 4; warmup_insns = 60_000 };
    { scale_factor = 8; warmup_insns = 30_000 };
    { scale_factor = 16; warmup_insns = 15_000 };
    { scale_factor = 32; warmup_insns = 8_000 };
  ]

(* Correlate log-scaled execution-frequency distributions (log keeps the
   hottest blocks from drowning the signal). *)
let correlate hist_a hist_b =
  let pcs = Hashtbl.create 64 in
  List.iter (fun (pc, _) -> Hashtbl.replace pcs pc ()) hist_a;
  List.iter (fun (pc, _) -> Hashtbl.replace pcs pc ()) hist_b;
  let lookup hist =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (pc, c) -> Hashtbl.replace tbl pc c) hist;
    fun pc -> log (1.0 +. float_of_int (Option.value (Hashtbl.find_opt tbl pc) ~default:0))
  in
  let la = lookup hist_a and lb = lookup hist_b in
  let pcs = Hashtbl.fold (fun pc () acc -> pc :: acc) pcs [] in
  let va = Array.of_list (List.map la pcs) in
  let vb = Array.of_list (List.map lb pcs) in
  Darco_util.Stats_math.correlation va vb

let scaled (cfg : Darco.Config.t) k =
  {
    cfg with
    bb_threshold = max 1 (cfg.bb_threshold / k);
    sb_threshold = max 2 (cfg.sb_threshold / k);
  }

let ipc_of (before_i, before_c) (after_i, after_c) =
  let di = after_i - before_i and dc = after_c - before_c in
  if dc = 0 then 0.0 else float_of_int di /. float_of_int dc

let run_study ?(cfg = Darco.Config.default) ?(tcfg = Darco_timing.Tconfig.default)
    ?(candidates = default_candidates) ?(baseline_warmup = 600_000)
    ?(checkpoint_interval = 100_000) ~program ~seed ~sample_offsets ~window () =
  let cfg = { cfg with slice_fuel = 2_000 } in
  let horizon = List.fold_left max 0 sample_offsets + window in
  (* One functional fast-forward pass drops checkpoints every
     [checkpoint_interval] guest instructions; every sample below then
     starts from the nearest checkpoint, so per-sample cost no longer grows
     with the sample's offset. *)
  let checkpoints =
    Darco_sampling.Driver.functional_checkpoints ~seed
      ~interval:checkpoint_interval ~horizon program
  in
  (* --- authoritative: detailed simulation from the start --- *)
  let t0 = Unix.gettimeofday () in
  let full = Darco.Controller.create ~cfg ~seed program in
  let pipe = Pipeline.create tcfg in
  Pipeline.attach pipe (Darco.Controller.bus full);
  let full_results =
    List.map
      (fun offset ->
        ignore (Darco.Controller.run ~max_insns:offset full);
        let before = (Pipeline.instructions pipe, Pipeline.cycles pipe) in
        let hist = Darco.Profile.histogram full.co.profile in
        ignore (Darco.Controller.run ~max_insns:(offset + window) full);
        let after = (Pipeline.instructions pipe, Pipeline.cycles pipe) in
        (offset, hist, ipc_of before after))
      (List.sort compare sample_offsets)
  in
  ignore (Darco.Controller.run ~max_insns:horizon full);
  let t_full = Unix.gettimeofday () -. t0 in
  (* --- baseline: the conventional methodology — unscaled thresholds with
     a warm-up several orders of magnitude longer (detailed throughout) --- *)
  (* Sampling methodologies restore the fast-forward point from a
     checkpoint, so only warm-up + measurement count as simulation cost. *)
  let t_baseline = ref 0.0 in
  let baseline_errors =
    List.map
      (fun (offset, _, ipc_full) ->
        let start = max 0 (offset - baseline_warmup) in
        let ctl = Darco_sampling.Driver.controller_at ~cfg checkpoints ~start in
        let t_b0 = Unix.gettimeofday () in
        let wpipe = Pipeline.create tcfg in
        Pipeline.attach wpipe (Darco.Controller.bus ctl);
        ignore (Darco.Controller.run ~max_insns:offset ctl);
        let before = (Pipeline.instructions wpipe, Pipeline.cycles wpipe) in
        ignore (Darco.Controller.run ~max_insns:(offset + window) ctl);
        let after = (Pipeline.instructions wpipe, Pipeline.cycles wpipe) in
        t_baseline := !t_baseline +. (Unix.gettimeofday () -. t_b0);
        Darco_util.Stats_math.relative_error (ipc_of before after) ipc_full)
      full_results
  in
  let t_baseline = !t_baseline in
  (* --- sampled: fast-forward + scaled warm-up + detailed window.
     All candidates are evaluated (the paper's heuristic is off-line, so
     only the chosen configuration's run counts as simulation cost). --- *)
  let t_chosen_total = ref 0.0 in
  let samples =
    List.map
      (fun (offset, auth_hist, ipc_full) ->
        let evaluated =
          List.map
            (fun cand ->
              let start = max 0 (offset - cand.warmup_insns) in
              let ctl =
                Darco_sampling.Driver.controller_at
                  ~cfg:(scaled cfg cand.scale_factor) checkpoints ~start
              in
              let tc0 = Unix.gettimeofday () in
              (* warming the microarchitectural state alongside TOL state *)
              let wpipe = Pipeline.create tcfg in
              Pipeline.attach wpipe (Darco.Controller.bus ctl);
              ignore (Darco.Controller.run ~max_insns:offset ctl);
              let corr =
                correlate auth_hist (Darco.Profile.histogram ctl.co.profile)
              in
              (* restore the original thresholds and measure in detail *)
              ctl.co.cfg <- cfg;
              let before = (Pipeline.instructions wpipe, Pipeline.cycles wpipe) in
              ignore (Darco.Controller.run ~max_insns:(offset + window) ctl);
              let after = (Pipeline.instructions wpipe, Pipeline.cycles wpipe) in
              let dt = Unix.gettimeofday () -. tc0 in
              (cand, corr, ipc_of before after, dt))
            candidates
        in
        let best_cand, best_corr, ipc_sampled, t_best =
          List.fold_left
            (fun (bc, bcorr, bipc, bt) (c, corr, ipc, dt) ->
              if corr > bcorr then (c, corr, ipc, dt) else (bc, bcorr, bipc, bt))
            (match evaluated with e :: _ -> e | [] -> invalid_arg "no candidates")
            evaluated
        in
        t_chosen_total := !t_chosen_total +. t_best;
        {
          offset;
          chosen = best_cand;
          correlation = best_corr;
          ipc_full;
          ipc_sampled;
          error = Darco_util.Stats_math.relative_error ipc_sampled ipc_full;
        })
      full_results
  in
  let t_sampled = !t_chosen_total in
  let sampled_ipcs = List.map (fun s -> s.ipc_sampled) samples in
  let full_ipcs = List.map (fun s -> s.ipc_full) samples in
  {
    samples;
    avg_error = Darco_util.Stats_math.mean (List.map (fun s -> s.error) samples);
    baseline_error = Darco_util.Stats_math.mean baseline_errors;
    ipc_sampled_mean = Darco_util.Stats_math.mean sampled_ipcs;
    ipc_sampled_ci95 = Darco_util.Stats_math.ci95_halfwidth sampled_ipcs;
    ipc_full_mean = Darco_util.Stats_math.mean full_ipcs;
    ipc_full_ci95 = Darco_util.Stats_math.ci95_halfwidth full_ipcs;
    speedup = (if t_sampled > 0.0 then t_baseline /. t_sampled else 0.0);
    t_full;
    t_baseline;
    t_sampled;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf
        "sample @%d: scale %dx, warm-up %d insns (corr %.3f): IPC %.3f vs %.3f \
         (error %.2f%%)@ "
        s.offset s.chosen.scale_factor s.chosen.warmup_insns s.correlation
        s.ipc_sampled s.ipc_full (100. *. s.error))
    r.samples;
  Format.fprintf ppf
    "sampled IPC %.3f ± %.3f (95%% CI over %d windows; authoritative %.3f ± %.3f)@ \
     average error %.2f%% (long-warm-up baseline: %.2f%%)@ \
     simulation cost reduced %.1fx vs the conventional long warm-up@ \
     (%.2fs full detailed, %.2fs long-warm-up sampling, %.2fs scaled sampling)@]"
    r.ipc_sampled_mean r.ipc_sampled_ci95
    (List.length r.samples)
    r.ipc_full_mean r.ipc_full_ci95
    (100. *. r.avg_error)
    (100. *. r.baseline_error)
    r.speedup r.t_full r.t_baseline r.t_sampled
