(** The in-memory aggregator sink: folds the event stream back into a
    {!Stats.t}.  On a run whose bus was created before the controller
    (so initialization events are captured), the aggregate equals the
    core's own statistics field-by-field — the invariant
    [test/test_obs.ml] pins down. *)

val apply : Stats.t -> at:int -> Event.t -> unit
(** Fold one event into the aggregate. *)

val attach : Bus.t -> Stats.t
(** Attach a fresh aggregate to the bus and return it (it fills as the
    run emits). *)
