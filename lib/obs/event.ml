type rollback_kind = Rb_assert | Rb_alias
type deopt_kind = De_noassert | De_nomem
type stop_reason = St_syscall | St_halt | St_page_fault | St_checkpoint
type validation_kind = V_syscall | V_halt | V_checkpoint | V_explicit

type t =
  | Init of { cost : int }
  | Clock_sync of { retired : int }
  | Slice_start
  | Slice_end of { stop : stop_reason; overheads : (Stats.overhead * int) list }
  | Interp_block of { pc : int; insns : int; cost : int }
  | Interp_step of { pc : int; cost : int }
  | Interp_exec of { pc : int; cost : int }
  | Bb_translated of { pc : int; guest_len : int; host_len : int; cost : int }
  | Sb_translated of {
      pc : int;
      guest_len : int;
      host_len : int;
      cost : int;
      unrolled : bool;
    }
  | Region_exec of {
      pc : int;
      guest_bb : int;
      guest_sb : int;
      host_bb : int;
      host_sb : int;
      chains_followed : int;
      wasted_host : int;
    }
  | Chain_made of { pc : int }
  | Ibtc_miss of { pc : int }
  | Ibtc_fill of { pc : int }
  | Rollback of { kind : rollback_kind; pc : int }
  | Deopt_rebuild of { kind : deopt_kind; pc : int }
  | Cache_flush of { regions : int; host_insns : int }
  | Page_install of { index : int }
  | Syscall of { eip : int; cost : int }
  | Validation of { kind : validation_kind }
  | Divergence of { details : string list }
  | Halt
  | Worker_up of { worker : string }
  | Worker_lost of { worker : string; reason : string }
  | Dispatch_sent of {
      unit_label : string;
      worker : string;
      attempt : int;
      bytes : int;
    }
  | Dispatch_done of { unit_label : string; worker : string; ok : bool }
  | Dispatch_retry of { unit_label : string; attempt : int; delay : float }
  | Dispatch_fallback of { reason : string }
  | Ckpt_push of { worker : string; digest : string; bytes : int }
  | Ckpt_hit of { worker : string; digest : string }
  | Steal of { unit_label : string; from_worker : string; to_worker : string }
  | Dispatch_inflight of { worker : string; in_flight : int }
  | Span_begin of {
      span : string;
      corr : int;
      host : string;
      wall_us : int;
      seq : int;
      detail : string;
    }
  | Span_end of {
      span : string;
      corr : int;
      host : string;
      wall_us : int;
      seq : int;
      ok : bool;
    }
  | Submit of { client : string; submission : int; benchmark : string; units : int }
  | Admit of { submission : int; units : int; credit : int }
  | Artifact_hit of { key : string }
  | Artifact_store of { key : string; bytes : int }
  | Store_evict of { digest : string; bytes : int }
  | Plan_round of {
      round : int;
      chosen : int;
      completed : int;
      mean : float;
      ci95 : float;
    }
  | Plan_predict of { offset : int; phase : int; ipc : float }
  | Plan_stop of { reason : string; windows : int; mean : float; ci95 : float }
  | Straggler of { worker : string; ratio_pct : int }

let rollback_name = function Rb_assert -> "assert" | Rb_alias -> "alias"
let deopt_name = function De_noassert -> "noassert" | De_nomem -> "nomem"

let stop_name = function
  | St_syscall -> "syscall"
  | St_halt -> "halt"
  | St_page_fault -> "page_fault"
  | St_checkpoint -> "checkpoint"

let validation_name = function
  | V_syscall -> "syscall"
  | V_halt -> "halt"
  | V_checkpoint -> "checkpoint"
  | V_explicit -> "explicit"

let name = function
  | Init _ -> "init"
  | Clock_sync _ -> "clock_sync"
  | Slice_start -> "slice_start"
  | Slice_end _ -> "slice_end"
  | Interp_block _ -> "interp_block"
  | Interp_step _ -> "interp_step"
  | Interp_exec _ -> "interp_exec"
  | Bb_translated _ -> "bb_translated"
  | Sb_translated _ -> "sb_translated"
  | Region_exec _ -> "region_exec"
  | Chain_made _ -> "chain_made"
  | Ibtc_miss _ -> "ibtc_miss"
  | Ibtc_fill _ -> "ibtc_fill"
  | Rollback _ -> "rollback"
  | Deopt_rebuild _ -> "deopt_rebuild"
  | Cache_flush _ -> "cache_flush"
  | Page_install _ -> "page_install"
  | Syscall _ -> "syscall"
  | Validation _ -> "validation"
  | Divergence _ -> "divergence"
  | Halt -> "halt"
  | Worker_up _ -> "worker_up"
  | Worker_lost _ -> "worker_lost"
  | Dispatch_sent _ -> "dispatch_sent"
  | Dispatch_done _ -> "dispatch_done"
  | Dispatch_retry _ -> "dispatch_retry"
  | Dispatch_fallback _ -> "dispatch_fallback"
  | Ckpt_push _ -> "ckpt_push"
  | Ckpt_hit _ -> "ckpt_hit"
  | Steal _ -> "steal"
  | Dispatch_inflight _ -> "dispatch_inflight"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Submit _ -> "submit"
  | Admit _ -> "admit"
  | Artifact_hit _ -> "artifact_hit"
  | Artifact_store _ -> "artifact_store"
  | Store_evict _ -> "store_evict"
  | Plan_round _ -> "plan_round"
  | Plan_predict _ -> "plan_predict"
  | Plan_stop _ -> "plan_stop"
  | Straggler _ -> "straggler"

let fields ev : (string * Jsonx.t) list =
  match ev with
  | Init { cost } -> [ ("cost", Jsonx.Int cost) ]
  | Clock_sync { retired } -> [ ("retired", Jsonx.Int retired) ]
  | Slice_start | Halt -> []
  | Slice_end { stop; overheads } ->
    [
      ("stop", Jsonx.String (stop_name stop));
      ( "overheads",
        Jsonx.Obj
          (List.map
             (fun (cat, n) -> (Stats.overhead_name cat, Jsonx.Int n))
             overheads) );
    ]
  | Interp_block { pc; insns; cost } ->
    [ ("pc", Jsonx.Int pc); ("insns", Jsonx.Int insns); ("cost", Jsonx.Int cost) ]
  | Interp_step { pc; cost } | Interp_exec { pc; cost } ->
    [ ("pc", Jsonx.Int pc); ("cost", Jsonx.Int cost) ]
  | Bb_translated { pc; guest_len; host_len; cost } ->
    [
      ("pc", Jsonx.Int pc);
      ("guest_len", Jsonx.Int guest_len);
      ("host_len", Jsonx.Int host_len);
      ("cost", Jsonx.Int cost);
    ]
  | Sb_translated { pc; guest_len; host_len; cost; unrolled } ->
    [
      ("pc", Jsonx.Int pc);
      ("guest_len", Jsonx.Int guest_len);
      ("host_len", Jsonx.Int host_len);
      ("cost", Jsonx.Int cost);
      ("unrolled", Jsonx.Bool unrolled);
    ]
  | Region_exec
      { pc; guest_bb; guest_sb; host_bb; host_sb; chains_followed; wasted_host }
    ->
    [
      ("pc", Jsonx.Int pc);
      ("guest_bb", Jsonx.Int guest_bb);
      ("guest_sb", Jsonx.Int guest_sb);
      ("host_bb", Jsonx.Int host_bb);
      ("host_sb", Jsonx.Int host_sb);
      ("chains_followed", Jsonx.Int chains_followed);
      ("wasted_host", Jsonx.Int wasted_host);
    ]
  | Chain_made { pc } | Ibtc_miss { pc } | Ibtc_fill { pc } ->
    [ ("pc", Jsonx.Int pc) ]
  | Rollback { kind; pc } ->
    [ ("kind", Jsonx.String (rollback_name kind)); ("pc", Jsonx.Int pc) ]
  | Deopt_rebuild { kind; pc } ->
    [ ("kind", Jsonx.String (deopt_name kind)); ("pc", Jsonx.Int pc) ]
  | Cache_flush { regions; host_insns } ->
    [ ("regions", Jsonx.Int regions); ("host_insns", Jsonx.Int host_insns) ]
  | Page_install { index } -> [ ("page", Jsonx.Int index) ]
  | Syscall { eip; cost } -> [ ("eip", Jsonx.Int eip); ("cost", Jsonx.Int cost) ]
  | Validation { kind } -> [ ("kind", Jsonx.String (validation_name kind)) ]
  | Divergence { details } ->
    [ ("details", Jsonx.List (List.map (fun d -> Jsonx.String d) details)) ]
  | Worker_up { worker } -> [ ("worker", Jsonx.String worker) ]
  | Worker_lost { worker; reason } ->
    [ ("worker", Jsonx.String worker); ("reason", Jsonx.String reason) ]
  | Dispatch_sent { unit_label; worker; attempt; bytes } ->
    [
      ("unit", Jsonx.String unit_label);
      ("worker", Jsonx.String worker);
      ("attempt", Jsonx.Int attempt);
      ("bytes", Jsonx.Int bytes);
    ]
  | Dispatch_done { unit_label; worker; ok } ->
    [
      ("unit", Jsonx.String unit_label);
      ("worker", Jsonx.String worker);
      ("ok", Jsonx.Bool ok);
    ]
  | Dispatch_retry { unit_label; attempt; delay } ->
    [
      ("unit", Jsonx.String unit_label);
      ("attempt", Jsonx.Int attempt);
      ("delay", Jsonx.Float delay);
    ]
  | Dispatch_fallback { reason } -> [ ("reason", Jsonx.String reason) ]
  | Ckpt_push { worker; digest; bytes } ->
    [
      ("worker", Jsonx.String worker);
      ("digest", Jsonx.String digest);
      ("bytes", Jsonx.Int bytes);
    ]
  | Ckpt_hit { worker; digest } ->
    [ ("worker", Jsonx.String worker); ("digest", Jsonx.String digest) ]
  | Steal { unit_label; from_worker; to_worker } ->
    [
      ("unit", Jsonx.String unit_label);
      ("from", Jsonx.String from_worker);
      ("to", Jsonx.String to_worker);
    ]
  | Dispatch_inflight { worker; in_flight } ->
    [ ("worker", Jsonx.String worker); ("in_flight", Jsonx.Int in_flight) ]
  | Span_begin { span; corr; host; wall_us; seq; detail } ->
    [
      ("span", Jsonx.String span);
      ("corr", Jsonx.Int corr);
      ("host", Jsonx.String host);
      ("wall_us", Jsonx.Int wall_us);
      ("seq", Jsonx.Int seq);
      ("detail", Jsonx.String detail);
    ]
  | Span_end { span; corr; host; wall_us; seq; ok } ->
    [
      ("span", Jsonx.String span);
      ("corr", Jsonx.Int corr);
      ("host", Jsonx.String host);
      ("wall_us", Jsonx.Int wall_us);
      ("seq", Jsonx.Int seq);
      ("ok", Jsonx.Bool ok);
    ]
  | Submit { client; submission; benchmark; units } ->
    [
      ("client", Jsonx.String client);
      ("submission", Jsonx.Int submission);
      ("benchmark", Jsonx.String benchmark);
      ("units", Jsonx.Int units);
    ]
  | Admit { submission; units; credit } ->
    [
      ("submission", Jsonx.Int submission);
      ("units", Jsonx.Int units);
      ("credit", Jsonx.Int credit);
    ]
  | Artifact_hit { key } -> [ ("key", Jsonx.String key) ]
  | Artifact_store { key; bytes } ->
    [ ("key", Jsonx.String key); ("bytes", Jsonx.Int bytes) ]
  | Store_evict { digest; bytes } ->
    [ ("digest", Jsonx.String digest); ("bytes", Jsonx.Int bytes) ]
  | Plan_round { round; chosen; completed; mean; ci95 } ->
    [
      ("round", Jsonx.Int round);
      ("chosen", Jsonx.Int chosen);
      ("completed", Jsonx.Int completed);
      ("mean", Jsonx.Float mean);
      ("ci95", Jsonx.Float ci95);
    ]
  | Plan_predict { offset; phase; ipc } ->
    [
      ("offset", Jsonx.Int offset);
      ("phase", Jsonx.Int phase);
      ("ipc", Jsonx.Float ipc);
    ]
  | Plan_stop { reason; windows; mean; ci95 } ->
    [
      ("reason", Jsonx.String reason);
      ("windows", Jsonx.Int windows);
      ("mean", Jsonx.Float mean);
      ("ci95", Jsonx.Float ci95);
    ]
  | Straggler { worker; ratio_pct } ->
    [ ("worker", Jsonx.String worker); ("ratio_pct", Jsonx.Int ratio_pct) ]

let to_json ~at ev =
  Jsonx.Obj (("at", Jsonx.Int at) :: ("ev", Jsonx.String (name ev)) :: fields ev)
