(** Log-bucketed histograms for the telemetry layer.

    Values land in power-of-two buckets (bucket [i] holds [v] with
    [2^(i-1) <= v < 2^i], bucket 0 holds [v <= 0]), so a histogram over
    any non-negative quantity — microseconds, bytes, cycles — costs one
    64-slot int array and an [O(log v)] add, with no configuration.
    Percentiles are estimated as the inclusive upper bound of the bucket
    containing the requested rank (exact min/max/mean/sum are tracked
    separately). *)

type t

val create : unit -> t
val add : t -> int -> unit

val count : t -> int
val sum : t -> int
val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
(** 0 when empty. *)

val mean : t -> float
(** 0.0 when empty. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0, 1]: the upper bound of the bucket
    holding the value of rank [ceil (p * count)]; 0 when empty. *)

val to_json : t -> Jsonx.t
(** [{"count", "sum", "min", "max", "mean", "p50", "p90", "p99",
    "buckets": [{"le": <inclusive upper bound>, "n": <count>} ...]}],
    non-empty buckets only. *)

val pp : Format.formatter -> t -> unit
(** One line: count, min/mean/max and the p50/p90/p99 estimates. *)
