(** The JSONL trace sink: one JSON object per event, one event per line,
    [{"at": <retired-insn clock>, "ev": <name>, ...}]. *)

val attach : Bus.t -> out_channel -> unit
(** Stream events to the channel.  The caller owns the channel and must
    close (or flush) it after the run. *)

val attach_file : Bus.t -> string -> out_channel
(** Open [path], attach, and return the channel for the caller to close. *)
