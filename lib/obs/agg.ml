let apply (s : Stats.t) ~at:_ (ev : Event.t) =
  match ev with
  | Init { cost } -> Stats.charge s Ov_other cost
  | Clock_sync { retired } -> s.guest_im <- s.guest_im + retired
  | Slice_start | Divergence _ | Halt -> ()
  (* dispatch infrastructure events carry no simulated-machine counters *)
  | Worker_up _ | Worker_lost _ | Dispatch_sent _ | Dispatch_done _
  | Dispatch_retry _ | Dispatch_fallback _ | Ckpt_push _ | Ckpt_hit _
  | Steal _ | Dispatch_inflight _ | Span_begin _ | Span_end _
  | Submit _ | Admit _ | Artifact_hit _ | Artifact_store _ | Store_evict _
  | Plan_round _ | Plan_predict _ | Plan_stop _ | Straggler _ -> ()
  | Slice_end { overheads; _ } ->
    List.iter (fun (cat, n) -> Stats.charge s cat n) overheads
  | Interp_block { insns; cost; _ } ->
    s.guest_im <- s.guest_im + insns;
    Stats.charge s Ov_interp cost
  | Interp_step { cost; _ } | Interp_exec { cost; _ } ->
    s.guest_im <- s.guest_im + 1;
    Stats.charge s Ov_interp cost
  | Bb_translated { cost; _ } ->
    s.bb_translations <- s.bb_translations + 1;
    Stats.charge s Ov_bb_translate cost
  | Sb_translated { cost; unrolled; _ } ->
    s.sb_translations <- s.sb_translations + 1;
    if unrolled then s.unrolled_superblocks <- s.unrolled_superblocks + 1;
    Stats.charge s Ov_sb_translate cost
  | Region_exec
      { guest_bb; guest_sb; host_bb; host_sb; chains_followed; wasted_host; _ }
    ->
    (* mirror Tol.account: the startup mark is taken before this region's
       retirement is added *)
    if s.guest_sbm = 0 && guest_sb > 0 then Stats.note_sbm_start s;
    s.guest_bbm <- s.guest_bbm + guest_bb;
    s.guest_sbm <- s.guest_sbm + guest_sb;
    s.host_app_bbm <- s.host_app_bbm + host_bb;
    s.host_app_sbm <- s.host_app_sbm + host_sb;
    s.chains_followed <- s.chains_followed + chains_followed;
    s.wasted_host <- s.wasted_host + wasted_host
  | Chain_made _ -> s.chains_made <- s.chains_made + 1
  | Ibtc_miss _ -> s.ibtc_misses <- s.ibtc_misses + 1
  | Ibtc_fill _ -> s.ibtc_fills <- s.ibtc_fills + 1
  | Rollback { kind = Rb_assert; _ } -> s.assert_rollbacks <- s.assert_rollbacks + 1
  | Rollback { kind = Rb_alias; _ } -> s.alias_rollbacks <- s.alias_rollbacks + 1
  | Deopt_rebuild { kind = De_noassert; _ } ->
    s.sb_rebuilds_noassert <- s.sb_rebuilds_noassert + 1
  | Deopt_rebuild { kind = De_nomem; _ } ->
    s.sb_rebuilds_nomem <- s.sb_rebuilds_nomem + 1
  | Cache_flush _ -> s.code_cache_flushes <- s.code_cache_flushes + 1
  | Page_install _ -> s.page_requests <- s.page_requests + 1
  | Syscall { cost; _ } ->
    s.syscalls <- s.syscalls + 1;
    s.guest_im <- s.guest_im + 1;
    Stats.charge s Ov_other cost
  | Validation _ -> s.validations <- s.validations + 1

let attach bus =
  let s = Stats.create () in
  Bus.attach bus ~name:"aggregator" (apply s);
  s
