type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing ----------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

type cursor = { s : string; mutable i : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.i))
let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.i >= String.length c.s then fail c "unterminated string";
    let ch = c.s.[c.i] in
    c.i <- c.i + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' -> begin
      if c.i >= String.length c.s then fail c "unterminated escape";
      let e = c.s.[c.i] in
      c.i <- c.i + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'u' ->
        if c.i + 4 > String.length c.s then fail c "bad \\u escape";
        let code = int_of_string ("0x" ^ String.sub c.s c.i 4) in
        c.i <- c.i + 4;
        (* ASCII range only; non-ASCII code points round-trip as '?' *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else Buffer.add_char buf '?'
      | _ -> fail c "bad escape");
      go ()
    end
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.i in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.i < String.length c.s && is_num_char c.s.[c.i] do
    c.i <- c.i + 1
  done;
  let text = String.sub c.s start (c.i - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.i <- c.i + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.i <- c.i + 1;
          items (v :: acc)
        | Some ']' ->
          c.i <- c.i + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.i <- c.i + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.i <- c.i + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          c.i <- c.i + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some _ -> parse_number c

let parse s =
  let c = { s; i = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.i <> String.length s then fail c "trailing garbage";
  v

(* --- accessors ---------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
