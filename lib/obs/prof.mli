(** The hot-region profiler: a bus-fed aggregator attributing the run's
    cost to guest PCs / translated regions.

    Every event that moves a {!Stats.t} counter carries (or implies) a
    guest PC; the profiler buckets by it:

    - retired guest instructions: [Interp_block]/[Interp_step] at the
      interpreted PC, [Region_exec] at the region's entry PC, [Syscall]
      at its EIP;
    - retired host application instructions and wasted (rolled-back)
      host work: [Region_exec];
    - TOL overhead cycles: interpretation and translation costs at their
      PC; [Init], [Clock_sync] fast-forwards and the batched per-slice
      dispatch overheads of [Slice_end] go to the {e unattributed} bucket
      (they belong to the loop, not to any one region);
    - rollback / deopt-rebuild counts and translation counts at their PC.

    Attribution is {b exact}: summed over all regions plus the
    unattributed bucket, every column reconciles with the corresponding
    {!Stats.t} total ({!reconciles} checks this, and the test suite
    enforces it per workload). *)

type t

(** One guest region's attributed totals. *)
type region = {
  r_pc : int;  (** region entry PC; [-1] for the unattributed bucket *)
  mutable r_guest : int;  (** retired guest instructions *)
  mutable r_host : int;  (** retired host application instructions *)
  mutable r_wasted : int;  (** host work discarded by rollbacks *)
  mutable r_overhead : int;  (** TOL overhead cycles *)
  mutable r_execs : int;  (** host-emulator entries at this region *)
  mutable r_translations : int;  (** BB + SB translations of this PC *)
  mutable r_rollbacks : int;
  mutable r_deopts : int;
}

val create : unit -> t
val attach : Bus.t -> t
val apply : t -> at:int -> Event.t -> unit
(** Fold one event (what {!attach}'s sink does). *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds every region of [src] (and its unattributed
    bucket) into [into], summing each column — the combine half of the
    per-domain accumulate/merge pattern (see {!Stats.merge}).  After
    merging each domain's private profiler into one aggregate,
    {!reconciles} against the equally-merged {!Stats.t} still holds.
    [src] is left untouched. *)

val regions : t -> region list
(** Every touched region, unordered, including the unattributed bucket. *)

val top : t -> n:int -> region list
(** The [n] hottest regions by [r_host + r_overhead] (host-side cost),
    unattributed bucket included, hottest first. *)

val reconciles : t -> Stats.t -> (unit, string) result
(** [Ok ()] iff every attributed column sums exactly to the corresponding
    {!Stats.t} total; [Error] names the first mismatching column. *)

val pp_table : ?n:int -> Format.formatter -> t -> unit
(** A top-N text table ([n] defaults to 10). *)

val to_json : ?n:int -> t -> Jsonx.t
(** [{"regions": [...], "totals": {...}}]; [n] bounds the region list
    (default: all), hottest first. *)
