type t = {
  cap : int;
  path : string;
  ats : int array;
  evs : Event.t option array;
  mutable next : int;  (* slot the next event lands in *)
  mutable filled : int;  (* events currently held, <= cap *)
  mutable dumped : bool;
}

let contents t =
  let acc = ref [] in
  for i = 0 to t.filled - 1 do
    let slot = (t.next - 1 - i + (2 * t.cap)) mod t.cap in
    match t.evs.(slot) with
    | Some ev -> acc := (t.ats.(slot), ev) :: !acc
    | None -> ()
  done;
  !acc

let dump t =
  let oc = open_out t.path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun (at, ev) ->
          output_string oc (Jsonx.to_string (Event.to_json ~at ev));
          output_char oc '\n')
        (contents t));
  t.dumped <- true

let push t ~at ev =
  t.ats.(t.next) <- at;
  t.evs.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod t.cap;
  if t.filled < t.cap then t.filled <- t.filled + 1

let record t ~at ev =
  push t ~at ev;
  match ev with
  | Event.Divergence _ | Event.Dispatch_done { ok = false; _ } -> dump t
  | _ -> ()

let attach bus ~capacity ~path =
  if capacity < 1 then invalid_arg "Recorder.attach: capacity < 1";
  let t =
    {
      cap = capacity;
      path;
      ats = Array.make capacity 0;
      evs = Array.make capacity None;
      next = 0;
      filled = 0;
      dumped = false;
    }
  in
  Bus.attach bus ~name:"flight-recorder" (record t);
  t

let dumped t = t.dumped
