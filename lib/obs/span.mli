(** Spans: named wall-clock intervals with correlation ids, the unit of
    the cross-machine timeline.

    A span is one half of a [B]/[E] pair: the dispatcher and the worker
    daemons open and close spans around each stage of a work unit's life
    (queued, inflight, running, ckpt_push), stamping each half with
    {!Clock.stamp} where it happens.  Workers accumulate their spans per
    unit and ship the log back inside the [RSLT] frame; the dispatcher
    re-emits them on its bus {e with the original stamps}, so one trace
    carries the merged timeline of every machine that touched the sweep.

    [corr] correlates the two halves (and becomes the Chrome-trace thread
    id); [host] names the machine-level track (the Chrome-trace process).
    On a given [(host, corr)] pair spans must nest properly — the begin/
    end pairs this library emits are sequential per unit, which trivially
    satisfies that. *)

type phase = B | E

type t = {
  span : string;  (** stage name: "queued", "inflight", "running", ... *)
  corr : int;
  host : string;
  phase : phase;
  wall_us : int;
  seq : int;
  ok : bool;  (** meaningful on [E] halves only; [true] on [B] *)
  detail : string;  (** free-form annotation; meaningful on [B] halves *)
}

val begin_ : ?detail:string -> span:string -> corr:int -> host:string -> unit -> t
(** A [B] half stamped now. *)

val end_ : ?ok:bool -> span:string -> corr:int -> host:string -> unit -> t
(** An [E] half stamped now ([ok] defaults to [true]). *)

val to_event : t -> Event.t
val of_event : Event.t -> t option
(** [Some] exactly on [Span_begin]/[Span_end] events. *)

val emit : Bus.t -> t -> unit
(** Publish as its event with [~at = wall_us]. *)

val encode_list : t list -> string
(** Compact JSON text (a list of event objects) — the representation
    shipped inside [RSLT] frames. *)

val decode_list : string -> t list
(** Inverse of {!encode_list}; raises {!Jsonx.Parse_error} on malformed
    input (including structurally valid JSON that is not a span list). *)
