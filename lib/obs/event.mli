(** The typed simulation-lifecycle event vocabulary.

    Core simulation events carry, at emission time, the
    retired-guest-instruction clock as their timestamp (the [~at]
    argument of {!Bus.emit}); dispatch-lifecycle and span events carry
    the strictly monotonic wall-clock microsecond stamp of {!Clock}
    instead (see below).  The taxonomy is complete with respect to
    {!Stats.t}: replaying a run's event stream through {!Agg} reproduces
    every counter exactly. *)

type rollback_kind = Rb_assert | Rb_alias
type deopt_kind = De_noassert | De_nomem

(** Why a co-designed execution slice returned to the controller. *)
type stop_reason = St_syscall | St_halt | St_page_fault | St_checkpoint

type validation_kind = V_syscall | V_halt | V_checkpoint | V_explicit

type t =
  | Init of { cost : int }  (** TOL initialization (charged to [Ov_other]) *)
  | Clock_sync of { retired : int }
      (** controller fast-forward: the co-designed clock starts at [retired] *)
  | Slice_start
  | Slice_end of { stop : stop_reason; overheads : (Stats.overhead * int) list }
      (** end of a dispatch slice; [overheads] batches the per-iteration
          dispatch/lookup/prologue/chaining/IBTC charges of the slice *)
  | Interp_block of { pc : int; insns : int; cost : int }
      (** one basic block interpreted in IM *)
  | Interp_step of { pc : int; cost : int }
      (** single-instruction safety-net interpretation (legacy; kept so
          recorded traces keep replaying — see {!Interp_exec}) *)
  | Interp_exec of { pc : int; cost : int }
      (** one dispatch through the [interpret_one] safety net (an
          [Exit_interp] region exit): the interpreter-only analogue of
          {!Region_exec}, so the profiler can count the dispatch as an
          execution rather than losing it *)
  | Bb_translated of { pc : int; guest_len : int; host_len : int; cost : int }
  | Sb_translated of {
      pc : int;
      guest_len : int;
      host_len : int;
      cost : int;
      unrolled : bool;
    }
  | Region_exec of {
      pc : int;
      guest_bb : int;
      guest_sb : int;
      host_bb : int;
      host_sb : int;
      chains_followed : int;
      wasted_host : int;
    }
      (** one host-emulator run entered at the translation of guest [pc]:
          retirement counts by mode *)
  | Chain_made of { pc : int }  (** exit patched to the translation of [pc] *)
  | Ibtc_miss of { pc : int }
  | Ibtc_fill of { pc : int }
  | Rollback of { kind : rollback_kind; pc : int }
  | Deopt_rebuild of { kind : deopt_kind; pc : int }
      (** speculation-failure limit hit: superblock rebuilt less aggressively *)
  | Cache_flush of { regions : int; host_insns : int }
      (** capacity flush; contents at the moment of the flush *)
  | Page_install of { index : int }  (** data request serviced *)
  | Syscall of { eip : int; cost : int }
  | Validation of { kind : validation_kind }
  | Divergence of { details : string list }
  | Halt
  (** Distributed-dispatch lifecycle ([Darco_dispatch]).  These events
      describe the sweep infrastructure, not the simulated machine; there
      is no meaningful retired-instruction clock across machines, so they
      are emitted with [at = Clock.ticks ()] — strictly monotonic
      wall-clock microseconds, preserving real-time order in a merged
      JSONL trace — and touch no {!Stats.t} counter. *)
  | Worker_up of { worker : string }  (** handshake with [worker] succeeded *)
  | Worker_lost of { worker : string; reason : string }
      (** connection refused/closed/timed out; the worker gets no more units *)
  | Dispatch_sent of {
      unit_label : string;
      worker : string;
      attempt : int;
      bytes : int;
    }  (** [bytes] is the size of the encoded work-unit frame payload *)
  | Dispatch_done of { unit_label : string; worker : string; ok : bool }
      (** a worker answered: a result ([ok]) or a per-unit failure *)
  | Dispatch_retry of { unit_label : string; attempt : int; delay : float }
      (** the unit's worker died mid-flight; requeued after [delay] seconds *)
  | Dispatch_fallback of { reason : string }
      (** no live workers; remaining units run on the local fork backend *)
  | Ckpt_push of { worker : string; digest : string; bytes : int }
      (** the worker asked for checkpoint [digest] ([NEED]) and the
          dispatcher shipped it ([CKPT], [bytes] snapshot bytes) *)
  | Ckpt_hit of { worker : string; digest : string }
      (** a unit needing [digest] was handed to a worker already holding
          it — the snapshot bytes were {e not} re-transferred *)
  | Steal of { unit_label : string; from_worker : string; to_worker : string }
      (** an idle worker speculatively duplicated a unit still in flight
          on a slower worker; the first result wins *)
  | Dispatch_inflight of { worker : string; in_flight : int }
      (** gauge: units currently in flight on [worker] (after a change) *)
  | Span_begin of {
      span : string;
      corr : int;
      host : string;
      wall_us : int;
      seq : int;
      detail : string;
    }
      (** a named interval opened on [host]: [corr] correlates the
          matching {!Span_end} (and is the Chrome-trace thread id);
          [wall_us]/[seq] are the {!Clock.stamp} taken where the span
          actually happened, preserved verbatim when a worker's span log
          is re-emitted by the dispatcher.  See {!Span}. *)
  | Span_end of {
      span : string;
      corr : int;
      host : string;
      wall_us : int;
      seq : int;
      ok : bool;
    }
  (** Campaign-service lifecycle ([Darco_serve]) and store-eviction
      events.  Like the dispatch events above they are wall-clock
      stamped ([at = Clock.ticks ()]) and touch no {!Stats.t}
      counter. *)
  | Submit of { client : string; submission : int; benchmark : string; units : int }
      (** a client submitted a sweep: [submission] is the server-assigned
          sequence number, [units] the number of requested windows *)
  | Admit of { submission : int; units : int; credit : int }
      (** fair-share admission: [units] work units of [submission]
          admitted into a dispatch round under a per-round [credit] cap *)
  | Artifact_hit of { key : string }
      (** a requested artifact (window result, or a ["ckpts:"]-prefixed
          checkpoint set) was served from the library — no work dispatched *)
  | Artifact_store of { key : string; bytes : int }
      (** a freshly computed artifact was persisted into the library *)
  | Store_evict of { digest : string; bytes : int }
      (** the byte-budget LRU policy of {!Darco_sampling.Store} dropped a
          spilled checkpoint ([bytes] on disk) to fit [max_bytes] *)
  | Plan_round of {
      round : int;
      chosen : int;
      completed : int;
      mean : float;
      ci95 : float;
    }
      (** Adaptive-sampling planner lifecycle ([Darco_sampling.Plan]):
          the planner opened dispatch round [round] with [chosen] windows
          selected this round, [completed] windows folded in so far, and
          the running IPC [mean]/[ci95] half-width those are based on.
          Like the other infrastructure events the three [Plan_*]
          constructors are wall-clock stamped ([at = Clock.ticks ()]) and
          touch no {!Stats.t} counter; together they make a sweep
          timeline show {e why} each window was chosen, not just when it
          ran. *)
  | Plan_predict of { offset : int; phase : int; ipc : float }
      (** the per-region predictor's IPC estimate for the window at
          [offset] (stratum [phase] — the hot-region guest PC its
          checkpoint sits in), emitted when the window is chosen *)
  | Plan_stop of { reason : string; windows : int; mean : float; ci95 : float }
      (** the planner stopped the benchmark: [reason] is ["ci_target"]
          (converged), ["budget"] ([--max-windows] exhausted) or
          ["exhausted"] (no candidate offsets left) *)
  | Straggler of { worker : string; ratio_pct : int }
      (** the dispatcher's straggler gauge: [worker] holds the oldest
          in-flight unit and [ratio_pct] is its age over the median
          in-flight age, in percent (100 = perfectly balanced).  Emitted
          only when the rounded percentage changes, so traces stay
          compact; requires at least two units in flight. *)

val name : t -> string
(** Stable machine-readable event name (the ["ev"] field of the trace). *)

val to_json : at:int -> t -> Jsonx.t
(** One flat JSON object: [{"at": <clock>, "ev": <name>, ...fields}]. *)
