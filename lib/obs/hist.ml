(* 63 buckets cover every non-negative OCaml int: bucket 0 is v <= 0 and
   bucket i >= 1 is 2^(i-1) <= v < 2^i (upper bound 2^i - 1 inclusive). *)
let buckets = 63

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make buckets 0; count = 0; sum = 0; min_v = 0; max_v = 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      v := !v lsr 1;
      incr i
    done;
    min !i (buckets - 1)
  end

(* inclusive upper bound of bucket [i] *)
let upper i = if i = 0 then 0 else (1 lsl i) - 1

let add t v =
  if t.count = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1

let count t = t.count
let sum t = t.sum
let min_value t = t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let percentile t p =
  if t.count = 0 then 0
  else begin
    let rank =
      max 1 (int_of_float (ceil (p *. float_of_int t.count)))
    in
    let rank = min rank t.count in
    let acc = ref 0 and found = ref 0 in
    (try
       for i = 0 to buckets - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    (* the estimate never exceeds the observed maximum *)
    min (upper !found) t.max_v
  end

let to_json t =
  let bs = ref [] in
  for i = buckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      bs :=
        Jsonx.Obj [ ("le", Jsonx.Int (upper i)); ("n", Jsonx.Int t.counts.(i)) ]
        :: !bs
  done;
  Jsonx.Obj
    [
      ("count", Jsonx.Int t.count);
      ("sum", Jsonx.Int t.sum);
      ("min", Jsonx.Int t.min_v);
      ("max", Jsonx.Int t.max_v);
      ("mean", Jsonx.Float (mean t));
      ("p50", Jsonx.Int (percentile t 0.50));
      ("p90", Jsonx.Int (percentile t 0.90));
      ("p99", Jsonx.Int (percentile t 0.99));
      ("buckets", Jsonx.List !bs);
    ]

let pp fmt t =
  Format.fprintf fmt "n=%d min=%d mean=%.1f max=%d p50<=%d p90<=%d p99<=%d"
    t.count t.min_v (mean t) t.max_v (percentile t 0.50) (percentile t 0.90)
    (percentile t 0.99)
