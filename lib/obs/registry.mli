(** Live metrics registry: named counters, gauges and {!Hist}-backed
    histograms with O(1) domain-safe updates.

    Registration mirrors {!Bus}: creating or looking up a metric takes a
    mutex, but the cell handed back is updated lock-free — counters and
    gauges are a single [Atomic.t] and {!inc}/{!set} cost one atomic
    RMW/store from any domain.  Histogram observation takes a
    per-histogram mutex ({!Hist.t} is plain mutable state) and is still
    O(1).

    Metric names are exposition identities.  A name is either a bare
    family ([dispatch_sent_total]) or a family plus one Prometheus-style
    label set ([dispatch_inflight{worker="127.0.0.1:9481"}]); the family
    must match [[a-zA-Z_][a-zA-Z0-9_]*] and a family keeps one kind for
    its whole life ([Invalid_argument] otherwise).  Histograms take bare
    families only.

    The registry is a {e separate document} from sweep results: sample
    and sweep JSON stay byte-deterministic whether or not a registry is
    attached (DESIGN.md §7). *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-register; the same name always returns the same cell. *)

val gauge : t -> string -> gauge
val hist : t -> string -> histogram

val inc : counter -> int -> unit
(** One [Atomic.fetch_and_add]; domain-safe, O(1). *)

val set : gauge -> int -> unit
val observe : histogram -> int -> unit
val counter_value : counter -> int
val gauge_value : gauge -> int

(** {1 Snapshots and exposition} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name *)
  hists : (string * Jsonx.t) list;  (** name -> {!Hist.to_json}, sorted *)
}

val snapshot : t -> snapshot
(** Point-in-time view (registration mutex held while reading). *)

val to_json : snapshot -> Jsonx.t
(** [{"counters":{..},"gauges":{..},"hists":{..}}] — the METR payload. *)

val of_json : Jsonx.t -> (snapshot, string) result
(** Inverse of {!to_json} (used by [darco scrape]/[darco top]). *)

val exposition : snapshot -> string
(** Deterministic Prometheus-style text: families sorted alphabetically,
    one [# TYPE darco_<family> <kind>] line per family, histogram series
    as cumulative [_bucket{le=..}]/[_sum]/[_count].  A function of the
    snapshot alone, so a client-side render of a scraped snapshot is
    byte-identical to the server's [--metrics-file] dump. *)

(** {1 Bus fold} *)

val apply : t -> at:int -> Event.t -> unit
(** Fold one event into the registry ([Agg.apply] for metrics): machine
    events feed counters that reconcile exactly with {!Stats.t}
    ({!reconciles}), infrastructure events feed service counters, the
    per-worker [dispatch_inflight{worker=..}] gauges, the
    [straggler_ratio_pct] gauge and the byte-size histograms.  The match
    is total: adding an {!Event.t} constructor forces a decision here.
    Partially apply ([let f = apply t in ...]) to reuse the registered
    cells across events. *)

val attach : Bus.t -> t
(** [Agg.attach]-style: create a registry and subscribe {!apply} as a
    bus sink named ["registry"], so the registry is exactly
    reconstructible from the event stream. *)

val reconciles : t -> Stats.t -> (unit, string) result
(** Check the event-fed machine counters against an independently
    aggregated {!Stats.t} from the same bus ([Prof.reconciles] for the
    registry); [Error] names the first counter that disagrees. *)
