(** The JSON metrics snapshot exporter: every {!Stats.t} counter plus
    the derived figure metrics (mode fractions, SBM emulation cost,
    overhead fraction and per-category breakdown), grouped by subsystem. *)

val to_json : Stats.t -> Jsonx.t
val to_string : Stats.t -> string

val write_file : string -> Stats.t -> unit
(** Write the snapshot (one line of JSON) to [path]. *)
