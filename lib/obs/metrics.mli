(** The JSON metrics snapshot exporter: every {!Stats.t} counter plus
    the derived figure metrics (mode fractions, SBM emulation cost,
    overhead fraction and per-category breakdown), grouped by subsystem.

    [hists] folds named {!Hist} distributions into the snapshot under a
    ["hists"] section (absent when the list is empty, keeping historical
    snapshots byte-stable). *)

val hists_json : (string * Hist.t) list -> Jsonx.t
(** One object, each histogram under its name ({!Hist.to_json}). *)

val to_json : ?hists:(string * Hist.t) list -> Stats.t -> Jsonx.t
val to_string : ?hists:(string * Hist.t) list -> Stats.t -> string

val write_file : ?hists:(string * Hist.t) list -> string -> Stats.t -> unit
(** Write the snapshot (one line of JSON) to [path]; the channel is
    closed even if rendering raises. *)
