type phase = B | E

type t = {
  span : string;
  corr : int;
  host : string;
  phase : phase;
  wall_us : int;
  seq : int;
  ok : bool;
  detail : string;
}

let begin_ ?(detail = "") ~span ~corr ~host () =
  let st = Clock.stamp () in
  {
    span;
    corr;
    host;
    phase = B;
    wall_us = st.Clock.s_wall_us;
    seq = st.Clock.s_seq;
    ok = true;
    detail;
  }

let end_ ?(ok = true) ~span ~corr ~host () =
  let st = Clock.stamp () in
  {
    span;
    corr;
    host;
    phase = E;
    wall_us = st.Clock.s_wall_us;
    seq = st.Clock.s_seq;
    ok;
    detail = "";
  }

let to_event t =
  match t.phase with
  | B ->
    Event.Span_begin
      {
        span = t.span;
        corr = t.corr;
        host = t.host;
        wall_us = t.wall_us;
        seq = t.seq;
        detail = t.detail;
      }
  | E ->
    Event.Span_end
      {
        span = t.span;
        corr = t.corr;
        host = t.host;
        wall_us = t.wall_us;
        seq = t.seq;
        ok = t.ok;
      }

let of_event = function
  | Event.Span_begin { span; corr; host; wall_us; seq; detail } ->
    Some { span; corr; host; phase = B; wall_us; seq; ok = true; detail }
  | Event.Span_end { span; corr; host; wall_us; seq; ok } ->
    Some { span; corr; host; phase = E; wall_us; seq; ok; detail = "" }
  | _ -> None

let emit bus t = Bus.emit bus ~at:t.wall_us (to_event t)

let to_json t = Event.to_json ~at:t.wall_us (to_event t)

let bad msg = raise (Jsonx.Parse_error msg)

let field name j =
  match Jsonx.member name j with
  | Some v -> v
  | None -> bad (Printf.sprintf "span record lacks %S" name)

let int_field name j =
  match Jsonx.to_int (field name j) with
  | Some n -> n
  | None -> bad (Printf.sprintf "span field %S is not an int" name)

let str_field name j =
  match Jsonx.to_str (field name j) with
  | Some s -> s
  | None -> bad (Printf.sprintf "span field %S is not a string" name)

let of_json j =
  let base phase =
    {
      span = str_field "span" j;
      corr = int_field "corr" j;
      host = str_field "host" j;
      phase;
      wall_us = int_field "wall_us" j;
      seq = int_field "seq" j;
      ok = true;
      detail = "";
    }
  in
  match str_field "ev" j with
  | "span_begin" -> { (base B) with detail = str_field "detail" j }
  | "span_end" ->
    let ok =
      match field "ok" j with
      | Jsonx.Bool b -> b
      | _ -> bad "span field \"ok\" is not a bool"
    in
    { (base E) with ok }
  | other -> bad (Printf.sprintf "not a span record: ev = %S" other)

let encode_list ts = Jsonx.to_string (Jsonx.List (List.map to_json ts))

let decode_list s =
  match Jsonx.parse s with
  | Jsonx.List js -> List.map of_json js
  | _ -> bad "span log is not a list"
