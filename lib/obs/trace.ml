let sink oc ~at ev =
  output_string oc (Jsonx.to_string (Event.to_json ~at ev));
  output_char oc '\n'

let attach bus oc = Bus.attach bus ~name:"trace" (sink oc)

let attach_file bus path =
  let oc = open_out path in
  attach bus oc;
  oc
