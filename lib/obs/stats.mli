(** Execution statistics of one co-designed run: everything needed to
    regenerate the paper's Figures 4-7 plus startup and speculation
    counters.

    This module is the in-memory aggregate view of the observability
    layer: the core mutates an instance directly on its hot paths, and
    {!Agg} can rebuild an identical instance purely from the {!Event.t}
    stream published on a {!Bus.t}. *)

(** The seven TOL-overhead categories of Figure 7. *)
type overhead =
  | Ov_interp        (** interpretation of guest code *)
  | Ov_bb_translate
  | Ov_sb_translate
  | Ov_prologue
  | Ov_chaining
  | Ov_cc_lookup
  | Ov_other

val overhead_index : overhead -> int
(** Position of the category in the [overhead] array (0..6). *)

val all_overheads : overhead list
(** The categories, in {!overhead_index} order. *)

val overhead_name : overhead -> string
(** Stable machine-readable category name (used by the JSON exports). *)

type t = {
  (* guest dynamic instruction distribution (Figure 4) *)
  mutable guest_im : int;
  mutable guest_bbm : int;
  mutable guest_sbm : int;
  (* host application stream, split by producing mode (Figure 5) *)
  mutable host_app_bbm : int;
  mutable host_app_sbm : int;
  (* TOL overhead, by category (Figures 6 and 7) *)
  overhead : int array;
  (* events *)
  mutable bb_translations : int;
  mutable sb_translations : int;
  mutable sb_rebuilds_noassert : int;
  mutable sb_rebuilds_nomem : int;
  mutable assert_rollbacks : int;
  mutable alias_rollbacks : int;
  mutable page_requests : int;
  mutable syscalls : int;
  mutable chains_made : int;
  mutable chains_followed : int;
  mutable ibtc_fills : int;
  mutable ibtc_misses : int;
  mutable code_cache_flushes : int;
  mutable wasted_host : int;
  mutable validations : int;
  (* startup: guest insns retired before the first SBM execution *)
  mutable startup_insns : int option;
  mutable unrolled_superblocks : int;
}

val create : unit -> t
val charge : t -> overhead -> int -> unit
val overhead_of : t -> overhead -> int
val total_overhead : t -> int
val guest_total : t -> int
val host_app_total : t -> int
val host_total : t -> int
(** Application stream + TOL overhead: the full host dynamic stream of
    Figure 6. *)

val note_sbm_start : t -> unit
(** Record the startup delay the first time SBM code retires. *)

val mode_fractions : t -> float * float * float
(** (IM, BBM, SBM) shares of the guest dynamic stream. *)

val emulation_cost_sbm : t -> float
(** Host instructions per guest instruction in SBM (Figure 5). *)

val overhead_fraction : t -> float
(** TOL share of the host dynamic stream (Figure 6). *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds every counter of [src] into [into] — the
    combine half of the per-domain accumulate/merge pattern: give each
    domain a private [t], fold its events there without synchronization,
    then merge the private instances into one aggregate afterwards.
    Commutative and associative in [src] for every additive counter;
    [startup_insns] (a "first time anywhere" mark) takes the earliest of
    the two.  [src] is left untouched. *)

val equal : t -> t -> bool
(** Field-by-field equality of every counter. *)

val pp_summary : Format.formatter -> t -> unit
