(** Chrome [trace_event] export of the span timeline.

    A {!t} is a bus sink collecting {!Event.Span_begin}/{!Event.Span_end}
    pairs plus the instant-worthy dispatch markers ([Worker_up],
    [Worker_lost], [Steal], [Ckpt_push], [Ckpt_hit], [Dispatch_retry],
    [Dispatch_fallback]).  {!to_json} renders the standard
    [{"traceEvents": [...]}] document — loadable in Perfetto /
    [chrome://tracing]:

    - each span [host] becomes a process ([pid], named by a
      [process_name] metadata record; the dispatcher is pid 1);
    - each [corr] becomes a thread ([tid]) within its host, so a work
      unit's dispatcher-side and worker-side spans sit on parallel
      tracks sharing the unit id;
    - [ts] is the span's wall-clock stamp, rebased so the earliest
      event is 0; within a process, microsecond ties order by the
      process-local sequence number, keeping [B]/[E] properly nested.

    {!validate} checks a rendered (or externally loaded) document
    against the schema the tests and CI enforce: well-formed JSON, a
    [traceEvents] list, name/ph/ts/pid/tid on every non-metadata record,
    and every [B] matched by its [E] in LIFO order per [(pid, tid)]. *)

type t

val create : unit -> t
val attach : Bus.t -> t
val record : t -> at:int -> Event.t -> unit
(** Fold one event (what {!attach}'s sink does). *)

val to_json : t -> Jsonx.t
val write_file : t -> string -> unit

val validate : Jsonx.t -> (unit, string) result
val validate_file : string -> (unit, string) result
(** {!validate} after reading and parsing [path]; I/O and parse errors
    report as [Error]. *)
