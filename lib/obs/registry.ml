type counter = int Atomic.t
type gauge = int Atomic.t
type histogram = { hm : Mutex.t; hh : Hist.t }
type cell = C of counter | G of gauge | H of histogram

type t = {
  lock : Mutex.t;
  cells : (string, cell) Hashtbl.t;
  kinds : (string, string) Hashtbl.t; (* family -> exposition kind *)
}

let create () =
  {
    lock = Mutex.create ();
    cells = Hashtbl.create 64;
    kinds = Hashtbl.create 64;
  }

let family name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

let valid_family f =
  String.length f > 0
  && (match f.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       f

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Get-or-register under the registry mutex; the hot path never comes
   back here — callers hold the returned cell. *)
let register t name kind make unwrap =
  let fam = family name in
  if not (valid_family fam) then
    invalid_arg (Printf.sprintf "Registry: bad metric name %S" name);
  if kind = "histogram" && fam <> name then
    invalid_arg (Printf.sprintf "Registry: histogram %S cannot take labels" name);
  locked t (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some cell -> (
        match unwrap cell with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Registry: %S is already a %s" name
               (Option.value ~default:"metric" (Hashtbl.find_opt t.kinds fam))))
      | None ->
        (match Hashtbl.find_opt t.kinds fam with
        | Some k when k <> kind ->
          invalid_arg
            (Printf.sprintf "Registry: family %S is already a %s" fam k)
        | _ -> ());
        Hashtbl.replace t.kinds fam kind;
        let cell, v = make () in
        Hashtbl.replace t.cells name cell;
        v)

let counter t name =
  register t name "counter"
    (fun () ->
      let a = Atomic.make 0 in
      (C a, a))
    (function C a -> Some a | _ -> None)

let gauge t name =
  register t name "gauge"
    (fun () ->
      let a = Atomic.make 0 in
      (G a, a))
    (function G a -> Some a | _ -> None)

let hist t name =
  register t name "histogram"
    (fun () ->
      let h = { hm = Mutex.create (); hh = Hist.create () } in
      (H h, h))
    (function H h -> Some h | _ -> None)

let inc c n = ignore (Atomic.fetch_and_add c n : int)
let set g v = Atomic.set g v

let observe h v =
  Mutex.lock h.hm;
  Hist.add h.hh v;
  Mutex.unlock h.hm

let counter_value c = Atomic.get c
let gauge_value g = Atomic.get g

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * Jsonx.t) list;
}

let snapshot t =
  locked t (fun () ->
      let cs = ref [] and gs = ref [] and hs = ref [] in
      Hashtbl.iter
        (fun name cell ->
          match cell with
          | C a -> cs := (name, Atomic.get a) :: !cs
          | G a -> gs := (name, Atomic.get a) :: !gs
          | H h ->
            Mutex.lock h.hm;
            let j = Hist.to_json h.hh in
            Mutex.unlock h.hm;
            hs := (name, j) :: !hs)
        t.cells;
      let sort l = List.sort (fun (a, _) (b, _) -> compare a b) l in
      { counters = sort !cs; gauges = sort !gs; hists = sort !hs })

let to_json s =
  let sec l = Jsonx.Obj l in
  Jsonx.Obj
    [
      ("counters", sec (List.map (fun (n, v) -> (n, Jsonx.Int v)) s.counters));
      ("gauges", sec (List.map (fun (n, v) -> (n, Jsonx.Int v)) s.gauges));
      ("hists", sec s.hists);
    ]

let of_json j =
  let section name =
    match Jsonx.member name j with
    | Some (Jsonx.Obj kvs) -> Ok kvs
    | None -> Ok []
    | Some _ -> Error (Printf.sprintf "registry snapshot: %S is not an object" name)
  in
  let ints name =
    match section name with
    | Error _ as e -> e
    | Ok kvs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, Jsonx.Int v) :: rest -> go ((k, v) :: acc) rest
        | (k, _) :: _ ->
          Error (Printf.sprintf "registry snapshot: %s %S is not an int" name k)
      in
      go [] kvs
  in
  match (ints "counters", ints "gauges", section "hists") with
  | Ok counters, Ok gauges, Ok hists -> Ok { counters; gauges; hists }
  | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e) -> e

(* Cumulative Prometheus buckets from the Hist.to_json document. *)
let hist_lines name j =
  let geti k =
    Option.value ~default:0 (Option.bind (Jsonx.member k j) Jsonx.to_int)
  in
  let buckets =
    match Jsonx.member "buckets" j with Some (Jsonx.List l) -> l | _ -> []
  in
  let cum = ref 0 in
  let blines =
    List.filter_map
      (fun b ->
        match (Jsonx.member "le" b, Jsonx.member "n" b) with
        | Some (Jsonx.Int le), Some (Jsonx.Int n) ->
          cum := !cum + n;
          Some (Printf.sprintf "darco_%s_bucket{le=\"%d\"} %d" name le !cum)
        | _ -> None)
      buckets
  in
  blines
  @ [
      Printf.sprintf "darco_%s_bucket{le=\"+Inf\"} %d" name (geti "count");
      Printf.sprintf "darco_%s_sum %d" name (geti "sum");
      Printf.sprintf "darco_%s_count %d" name (geti "count");
    ]

let exposition s =
  (* family -> (kind, series); a series keeps its lines in order, series
     within a family and families overall sort alphabetically *)
  let groups : (string, string * (string * string list) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let push kind (name, lines) =
    let fam = family name in
    let _, r =
      match Hashtbl.find_opt groups fam with
      | Some g -> g
      | None ->
        let g = (kind, ref []) in
        Hashtbl.replace groups fam g;
        g
    in
    r := (name, lines) :: !r
  in
  List.iter
    (fun (n, v) -> push "counter" (n, [ Printf.sprintf "darco_%s %d" n v ]))
    s.counters;
  List.iter
    (fun (n, v) -> push "gauge" (n, [ Printf.sprintf "darco_%s %d" n v ]))
    s.gauges;
  List.iter (fun (n, j) -> push "histogram" (n, hist_lines n j)) s.hists;
  let fams =
    Hashtbl.fold (fun f (k, r) acc -> (f, k, !r) :: acc) groups []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (f, kind, series) ->
      Buffer.add_string buf (Printf.sprintf "# TYPE darco_%s %s\n" f kind);
      List.iter
        (fun (_, lines) ->
          List.iter
            (fun l ->
              Buffer.add_string buf l;
              Buffer.add_char buf '\n')
            lines)
        (List.sort (fun (a, _) (b, _) -> compare a b) series))
    fams;
  Buffer.contents buf

let apply t =
  let c = counter t in
  let events = c "events_total"
  and guest = c "guest_insns_total"
  and host_app = c "host_app_insns_total"
  and overhead = c "overhead_cycles_total"
  and translations = c "translations_total"
  and rollbacks = c "rollbacks_total"
  and deopts = c "deopts_total"
  and syscalls = c "syscalls_total"
  and validations = c "validations_total"
  and chains_made = c "chains_made_total"
  and chains_followed = c "chains_followed_total"
  and wasted = c "wasted_host_insns_total"
  and flushes = c "code_cache_flushes_total"
  and pages = c "page_installs_total"
  and ibtc_misses = c "ibtc_misses_total"
  and ibtc_fills = c "ibtc_fills_total"
  and divergences = c "divergences_total"
  and worker_up = c "worker_up_total"
  and worker_lost = c "worker_lost_total"
  and sent = c "dispatch_sent_total"
  and done_ok = c "dispatch_done_total"
  and done_failed = c "dispatch_failed_total"
  and retries = c "dispatch_retries_total"
  and fallbacks = c "dispatch_fallbacks_total"
  and ckpt_pushes = c "ckpt_pushes_total"
  and ckpt_hits = c "ckpt_hits_total"
  and steals = c "steals_total"
  and submissions = c "submissions_total"
  and admitted = c "admitted_units_total"
  and artifact_hits = c "artifact_hits_total"
  and artifact_stores = c "artifact_stores_total"
  and evictions = c "store_evictions_total"
  and plan_rounds = c "plan_rounds_total"
  and plan_stops = c "plan_stops_total" in
  let straggler = gauge t "straggler_ratio_pct" in
  let h_ckpt = hist t "ckpt_push_bytes"
  and h_store = hist t "artifact_store_bytes"
  and h_sent = hist t "dispatch_sent_bytes" in
  (* per-worker gauges appear as workers do; cached so the steady state
     never re-enters the registry mutex *)
  let worker_gauges : (string, gauge) Hashtbl.t = Hashtbl.create 8 in
  let inflight w =
    match Hashtbl.find_opt worker_gauges w with
    | Some g -> g
    | None ->
      let g = gauge t (Printf.sprintf "dispatch_inflight{worker=%S}" w) in
      Hashtbl.replace worker_gauges w g;
      g
  in
  fun ~at:_ (ev : Event.t) ->
    inc events 1;
    match ev with
    | Init { cost } -> inc overhead cost
    | Clock_sync { retired } -> inc guest retired
    | Slice_start | Halt -> ()
    | Slice_end { overheads; _ } ->
      List.iter (fun (_, n) -> inc overhead n) overheads
    | Interp_block { insns; cost; _ } ->
      inc guest insns;
      inc overhead cost
    | Interp_step { cost; _ } | Interp_exec { cost; _ } ->
      inc guest 1;
      inc overhead cost
    | Bb_translated { cost; _ } | Sb_translated { cost; _ } ->
      inc translations 1;
      inc overhead cost
    | Region_exec
        { guest_bb; guest_sb; host_bb; host_sb; chains_followed = cf;
          wasted_host; _ } ->
      inc guest (guest_bb + guest_sb);
      inc host_app (host_bb + host_sb);
      inc chains_followed cf;
      inc wasted wasted_host
    | Chain_made _ -> inc chains_made 1
    | Ibtc_miss _ -> inc ibtc_misses 1
    | Ibtc_fill _ -> inc ibtc_fills 1
    | Rollback _ -> inc rollbacks 1
    | Deopt_rebuild _ -> inc deopts 1
    | Cache_flush _ -> inc flushes 1
    | Page_install _ -> inc pages 1
    | Syscall { cost; _ } ->
      inc syscalls 1;
      inc guest 1;
      inc overhead cost
    | Validation _ -> inc validations 1
    | Divergence _ -> inc divergences 1
    | Worker_up _ -> inc worker_up 1
    | Worker_lost { worker; _ } ->
      inc worker_lost 1;
      set (inflight worker) 0
    | Dispatch_sent { bytes; _ } ->
      inc sent 1;
      observe h_sent bytes
    | Dispatch_done { ok; _ } -> inc (if ok then done_ok else done_failed) 1
    | Dispatch_retry _ -> inc retries 1
    | Dispatch_fallback _ -> inc fallbacks 1
    | Ckpt_push { bytes; _ } ->
      inc ckpt_pushes 1;
      observe h_ckpt bytes
    | Ckpt_hit _ -> inc ckpt_hits 1
    | Steal _ -> inc steals 1
    | Dispatch_inflight { worker; in_flight } -> set (inflight worker) in_flight
    | Span_begin _ | Span_end _ -> ()
    | Submit _ -> inc submissions 1
    | Admit { units; _ } -> inc admitted units
    | Artifact_hit _ -> inc artifact_hits 1
    | Artifact_store { bytes; _ } ->
      inc artifact_stores 1;
      observe h_store bytes
    | Store_evict _ -> inc evictions 1
    | Plan_round _ -> inc plan_rounds 1
    | Plan_predict _ -> ()
    | Plan_stop _ -> inc plan_stops 1
    | Straggler { ratio_pct; _ } -> set straggler ratio_pct

let attach bus =
  let t = create () in
  Bus.attach bus ~name:"registry" (apply t);
  t

let reconciles t (s : Stats.t) =
  let v name =
    locked t (fun () ->
        match Hashtbl.find_opt t.cells name with
        | Some (C a) -> Atomic.get a
        | _ -> 0)
  in
  let check name got want =
    if got = want then Ok ()
    else
      Error (Printf.sprintf "%s: registry holds %d, stats hold %d" name got want)
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  check "guest instructions" (v "guest_insns_total") (Stats.guest_total s)
  >>= fun () ->
  check "host app instructions" (v "host_app_insns_total")
    (Stats.host_app_total s)
  >>= fun () ->
  check "overhead cycles" (v "overhead_cycles_total") (Stats.total_overhead s)
  >>= fun () ->
  check "translations" (v "translations_total")
    (s.bb_translations + s.sb_translations)
  >>= fun () ->
  check "rollbacks" (v "rollbacks_total")
    (s.assert_rollbacks + s.alias_rollbacks)
  >>= fun () ->
  check "deopt rebuilds" (v "deopts_total")
    (s.sb_rebuilds_noassert + s.sb_rebuilds_nomem)
  >>= fun () ->
  check "syscalls" (v "syscalls_total") s.syscalls >>= fun () ->
  check "validations" (v "validations_total") s.validations >>= fun () ->
  check "chains made" (v "chains_made_total") s.chains_made >>= fun () ->
  check "chains followed" (v "chains_followed_total") s.chains_followed
  >>= fun () ->
  check "wasted host" (v "wasted_host_insns_total") s.wasted_host >>= fun () ->
  check "cache flushes" (v "code_cache_flushes_total") s.code_cache_flushes
  >>= fun () ->
  check "page installs" (v "page_installs_total") s.page_requests >>= fun () ->
  check "ibtc misses" (v "ibtc_misses_total") s.ibtc_misses >>= fun () ->
  check "ibtc fills" (v "ibtc_fills_total") s.ibtc_fills
