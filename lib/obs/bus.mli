(** The event bus: the single channel through which the core publishes
    its lifecycle {!Event.t}s and its retired-host-instruction stream.

    Emission is a no-op when no sink is attached; hot call sites guard
    event construction behind {!active} so an unobserved run allocates
    nothing.  Sinks must be attached before the run starts (before
    [Controller.create] to capture initialization events); attaching
    mid-run is not supported.

    {b Domain story.}  Registration ({!attach}, {!on_retire}) is
    mutex-guarded; emission is lock-free — it reads one immutable snapshot
    of the sink array, so {!active}/{!emit} cost exactly what they did
    before OCaml 5 domains entered the runtime.  Sink {e handlers} are
    called on whichever domain emits.  The single-domain simulator keeps
    its plain mutable sinks ([Agg], [Prof], trace writers); a multi-domain
    producer must either serialize its own emission (what the [domains]
    sweep backend does, one mutex around its span events) or give each
    domain a private accumulator and {!Stats.merge}/{!Prof.merge} the
    results afterwards. *)

type sink = { name : string; handle : at:int -> Event.t -> unit }

type retire = Darco_host.Emulator.retire_info -> unit
(** A subscriber to the retired host application stream (e.g. the timing
    simulator's [Pipeline.step]). *)

type t

val create : unit -> t

val active : t -> bool
(** At least one event sink is attached.  Emitters check this before
    allocating an event, keeping the unobserved hot path regression-free. *)

val attach : t -> name:string -> (at:int -> Event.t -> unit) -> unit

val emit : t -> at:int -> Event.t -> unit
(** Deliver to every sink in attachment order.  [at] is the
    retired-guest-instruction clock of the publishing component. *)

val on_retire : t -> retire -> unit
(** Subscribe to per-retired-host-instruction records. *)

val retire_hook : t -> retire option
(** The composed retire subscription ([None] when nobody subscribed), in
    the shape the host emulator's [?on_retire] parameter expects. *)

val sink_names : t -> string list
