let hists_json hists =
  Jsonx.Obj (List.map (fun (name, h) -> (name, Hist.to_json h)) hists)

let to_json ?(hists = []) (s : Stats.t) : Jsonx.t =
  let im, bbm, sbm = Stats.mode_fractions s in
  Jsonx.Obj
    ((if hists = [] then [] else [ ("hists", hists_json hists) ])
    @ [
      ( "guest",
        Jsonx.Obj
          [
            ("total", Jsonx.Int (Stats.guest_total s));
            ("im", Jsonx.Int s.guest_im);
            ("bbm", Jsonx.Int s.guest_bbm);
            ("sbm", Jsonx.Int s.guest_sbm);
            ("im_fraction", Jsonx.Float im);
            ("bbm_fraction", Jsonx.Float bbm);
            ("sbm_fraction", Jsonx.Float sbm);
          ] );
      ( "host",
        Jsonx.Obj
          [
            ("total", Jsonx.Int (Stats.host_total s));
            ("app_total", Jsonx.Int (Stats.host_app_total s));
            ("app_bbm", Jsonx.Int s.host_app_bbm);
            ("app_sbm", Jsonx.Int s.host_app_sbm);
            ("wasted", Jsonx.Int s.wasted_host);
            ("emulation_cost_sbm", Jsonx.Float (Stats.emulation_cost_sbm s));
          ] );
      ( "overhead",
        Jsonx.Obj
          (("total", Jsonx.Int (Stats.total_overhead s))
          :: ("fraction", Jsonx.Float (Stats.overhead_fraction s))
          :: List.map
               (fun cat ->
                 (Stats.overhead_name cat, Jsonx.Int (Stats.overhead_of s cat)))
               Stats.all_overheads) );
      ( "translation",
        Jsonx.Obj
          [
            ("bb", Jsonx.Int s.bb_translations);
            ("sb", Jsonx.Int s.sb_translations);
            ("sb_rebuilds_noassert", Jsonx.Int s.sb_rebuilds_noassert);
            ("sb_rebuilds_nomem", Jsonx.Int s.sb_rebuilds_nomem);
            ("unrolled_superblocks", Jsonx.Int s.unrolled_superblocks);
            ("code_cache_flushes", Jsonx.Int s.code_cache_flushes);
          ] );
      ( "speculation",
        Jsonx.Obj
          [
            ("assert_rollbacks", Jsonx.Int s.assert_rollbacks);
            ("alias_rollbacks", Jsonx.Int s.alias_rollbacks);
          ] );
      ( "linking",
        Jsonx.Obj
          [
            ("chains_made", Jsonx.Int s.chains_made);
            ("chains_followed", Jsonx.Int s.chains_followed);
            ("ibtc_fills", Jsonx.Int s.ibtc_fills);
            ("ibtc_misses", Jsonx.Int s.ibtc_misses);
          ] );
      ( "system",
        Jsonx.Obj
          [
            ("page_requests", Jsonx.Int s.page_requests);
            ("syscalls", Jsonx.Int s.syscalls);
            ("validations", Jsonx.Int s.validations);
          ] );
      ( "startup_insns",
        match s.startup_insns with None -> Jsonx.Null | Some n -> Jsonx.Int n );
    ])

let to_string ?hists s = Jsonx.to_string (to_json ?hists s)

let write_file ?hists path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ?hists s);
      output_char oc '\n')
