type region = {
  r_pc : int;
  mutable r_guest : int;
  mutable r_host : int;
  mutable r_wasted : int;
  mutable r_overhead : int;
  mutable r_execs : int;
  mutable r_translations : int;
  mutable r_rollbacks : int;
  mutable r_deopts : int;
}

type t = { by_pc : (int, region) Hashtbl.t; una : region }

let fresh pc =
  {
    r_pc = pc;
    r_guest = 0;
    r_host = 0;
    r_wasted = 0;
    r_overhead = 0;
    r_execs = 0;
    r_translations = 0;
    r_rollbacks = 0;
    r_deopts = 0;
  }

let create () = { by_pc = Hashtbl.create 256; una = fresh (-1) }

let region t pc =
  match Hashtbl.find_opt t.by_pc pc with
  | Some r -> r
  | None ->
    let r = fresh pc in
    Hashtbl.add t.by_pc pc r;
    r

let apply t ~at:_ (ev : Event.t) =
  match ev with
  | Event.Init { cost } -> t.una.r_overhead <- t.una.r_overhead + cost
  | Event.Clock_sync { retired } -> t.una.r_guest <- t.una.r_guest + retired
  | Event.Slice_end { overheads; _ } ->
    List.iter (fun (_, n) -> t.una.r_overhead <- t.una.r_overhead + n) overheads
  | Event.Interp_block { pc; insns; cost } ->
    let r = region t pc in
    r.r_guest <- r.r_guest + insns;
    r.r_overhead <- r.r_overhead + cost
  | Event.Interp_step { pc; cost } ->
    let r = region t pc in
    r.r_guest <- r.r_guest + 1;
    r.r_overhead <- r.r_overhead + cost
  | Event.Interp_exec { pc; cost } ->
    (* the safety-net dispatch is an execution of the region's guest PC,
       not just anonymous interpreter time *)
    let r = region t pc in
    r.r_guest <- r.r_guest + 1;
    r.r_overhead <- r.r_overhead + cost;
    r.r_execs <- r.r_execs + 1
  | Event.Bb_translated { pc; cost; _ } | Event.Sb_translated { pc; cost; _ } ->
    let r = region t pc in
    r.r_translations <- r.r_translations + 1;
    r.r_overhead <- r.r_overhead + cost
  | Event.Region_exec { pc; guest_bb; guest_sb; host_bb; host_sb; wasted_host; _ }
    ->
    let r = region t pc in
    r.r_guest <- r.r_guest + guest_bb + guest_sb;
    r.r_host <- r.r_host + host_bb + host_sb;
    r.r_wasted <- r.r_wasted + wasted_host;
    r.r_execs <- r.r_execs + 1
  | Event.Rollback { pc; _ } ->
    let r = region t pc in
    r.r_rollbacks <- r.r_rollbacks + 1
  | Event.Deopt_rebuild { pc; _ } ->
    let r = region t pc in
    r.r_deopts <- r.r_deopts + 1
  | Event.Syscall { eip; cost } ->
    let r = region t eip in
    r.r_guest <- r.r_guest + 1;
    r.r_overhead <- r.r_overhead + cost
  | Event.Slice_start | Event.Chain_made _ | Event.Ibtc_miss _
  | Event.Ibtc_fill _ | Event.Cache_flush _ | Event.Page_install _
  | Event.Validation _ | Event.Divergence _ | Event.Halt | Event.Worker_up _
  | Event.Worker_lost _ | Event.Dispatch_sent _ | Event.Dispatch_done _
  | Event.Dispatch_retry _ | Event.Dispatch_fallback _ | Event.Ckpt_push _
  | Event.Ckpt_hit _ | Event.Steal _ | Event.Dispatch_inflight _
  | Event.Span_begin _ | Event.Span_end _ | Event.Submit _ | Event.Admit _
  | Event.Artifact_hit _ | Event.Artifact_store _ | Event.Store_evict _
  | Event.Plan_round _ | Event.Plan_predict _ | Event.Plan_stop _
  | Event.Straggler _ ->
    ()

let merge_region dst src =
  dst.r_guest <- dst.r_guest + src.r_guest;
  dst.r_host <- dst.r_host + src.r_host;
  dst.r_wasted <- dst.r_wasted + src.r_wasted;
  dst.r_overhead <- dst.r_overhead + src.r_overhead;
  dst.r_execs <- dst.r_execs + src.r_execs;
  dst.r_translations <- dst.r_translations + src.r_translations;
  dst.r_rollbacks <- dst.r_rollbacks + src.r_rollbacks;
  dst.r_deopts <- dst.r_deopts + src.r_deopts

let merge ~into src =
  Hashtbl.iter (fun pc r -> merge_region (region into pc) r) src.by_pc;
  merge_region into.una src.una

let attach bus =
  let t = create () in
  Bus.attach bus ~name:"profiler" (apply t);
  t

let regions t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.by_pc [ t.una ]

let heat r = r.r_host + r.r_overhead

let top t ~n =
  let rs =
    List.sort
      (fun a b ->
        match compare (heat b) (heat a) with 0 -> compare a.r_pc b.r_pc | c -> c)
      (regions t)
  in
  List.filteri (fun i _ -> i < n) rs

let totals t =
  List.fold_left
    (fun (g, h, w, o, rb, de, tr) r ->
      ( g + r.r_guest,
        h + r.r_host,
        w + r.r_wasted,
        o + r.r_overhead,
        rb + r.r_rollbacks,
        de + r.r_deopts,
        tr + r.r_translations ))
    (0, 0, 0, 0, 0, 0, 0) (regions t)

let reconciles t (s : Stats.t) =
  let g, h, w, o, rb, de, tr = totals t in
  let check name got want =
    if got = want then Ok ()
    else
      Error
        (Printf.sprintf "%s: profiler attributes %d, stats hold %d" name got
           want)
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  check "guest instructions" g (Stats.guest_total s) >>= fun () ->
  check "host app instructions" h (Stats.host_app_total s) >>= fun () ->
  check "wasted host" w s.Stats.wasted_host >>= fun () ->
  check "overhead cycles" o (Stats.total_overhead s) >>= fun () ->
  check "rollbacks" rb (s.Stats.assert_rollbacks + s.Stats.alias_rollbacks)
  >>= fun () ->
  check "deopt rebuilds" de
    (s.Stats.sb_rebuilds_noassert + s.Stats.sb_rebuilds_nomem)
  >>= fun () ->
  check "translations" tr (s.Stats.bb_translations + s.Stats.sb_translations)

let pc_label r = if r.r_pc < 0 then "(unattributed)" else Printf.sprintf "0x%06x" r.r_pc

let pp_table ?(n = 10) fmt t =
  let header =
    [ "region"; "guest"; "host"; "wasted"; "overhead"; "execs"; "xlate"; "rb"; "deopt" ]
  in
  let rows =
    List.map
      (fun r ->
        [
          pc_label r;
          string_of_int r.r_guest;
          string_of_int r.r_host;
          string_of_int r.r_wasted;
          string_of_int r.r_overhead;
          string_of_int r.r_execs;
          string_of_int r.r_translations;
          string_of_int r.r_rollbacks;
          string_of_int r.r_deopts;
        ])
      (top t ~n)
  in
  Format.pp_print_string fmt (Darco_util.Table.render ~header rows)

let region_json r =
  Jsonx.Obj
    [
      ("pc", Jsonx.Int r.r_pc);
      ("guest", Jsonx.Int r.r_guest);
      ("host", Jsonx.Int r.r_host);
      ("wasted", Jsonx.Int r.r_wasted);
      ("overhead", Jsonx.Int r.r_overhead);
      ("execs", Jsonx.Int r.r_execs);
      ("translations", Jsonx.Int r.r_translations);
      ("rollbacks", Jsonx.Int r.r_rollbacks);
      ("deopts", Jsonx.Int r.r_deopts);
    ]

let to_json ?n t =
  let n = match n with Some n -> n | None -> 1 + Hashtbl.length t.by_pc in
  let g, h, w, o, rb, de, tr = totals t in
  Jsonx.Obj
    [
      ("regions", Jsonx.List (List.map region_json (top t ~n)));
      ( "totals",
        Jsonx.Obj
          [
            ("guest", Jsonx.Int g);
            ("host", Jsonx.Int h);
            ("wasted", Jsonx.Int w);
            ("overhead", Jsonx.Int o);
            ("rollbacks", Jsonx.Int rb);
            ("deopts", Jsonx.Int de);
            ("translations", Jsonx.Int tr);
          ] );
    ]
