(** The flight recorder: a fixed-size ring of the most recent events,
    dumped as JSONL when something goes wrong.

    Unlike {!Trace.attach_file}, which streams {e every} event to disk,
    the recorder costs a bounded ring of memory and writes nothing at all
    on a healthy run — the right default for long sweeps where only the
    trail leading up to a failure matters.

    Dump triggers (automatic, from the sink itself): a [Divergence]
    event, and a failed work unit ([Dispatch_done] with [ok = false] —
    a worker's [FAIL] reply).  {!dump} can be called manually, e.g. from
    an uncaught-exception handler around a run.  Each dump rewrites
    [path] with the ring's current contents, oldest event first, one
    [Event.to_json] object per line; a later trigger overwrites an
    earlier one, so the file always holds the trail of the most recent
    incident. *)

type t

val attach : Bus.t -> capacity:int -> path:string -> t
(** Keep the last [capacity] events; dump them to [path] on a trigger.
    Raises [Invalid_argument] if [capacity < 1]. *)

val contents : t -> (int * Event.t) list
(** The ring right now, oldest first, each event with its [at] stamp. *)

val dump : t -> unit
(** Write the ring to the recorder's path now (also what triggers do). *)

val dumped : t -> bool
(** At least one dump has been written since attachment. *)
