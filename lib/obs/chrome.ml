type instant = {
  i_name : string;
  i_wall : int;
  i_args : (string * Jsonx.t) list;
}

(* Both lists accumulate in reverse emission order. *)
type t = { mutable spans : Span.t list; mutable instants : instant list }

let create () = { spans = []; instants = [] }

let instant t ~at name args =
  t.instants <- { i_name = name; i_wall = at; i_args = args } :: t.instants

let record t ~at (ev : Event.t) =
  match Span.of_event ev with
  | Some sp -> t.spans <- sp :: t.spans
  | None -> (
    (* dispatch markers become instants on the dispatcher's track; their
       [at] is already the monotonic wall-microsecond stamp *)
    match ev with
    | Event.Worker_up { worker } ->
      instant t ~at "worker_up" [ ("worker", Jsonx.String worker) ]
    | Event.Worker_lost { worker; reason } ->
      instant t ~at "worker_lost"
        [ ("worker", Jsonx.String worker); ("reason", Jsonx.String reason) ]
    | Event.Steal { unit_label; from_worker; to_worker } ->
      instant t ~at "steal"
        [
          ("unit", Jsonx.String unit_label);
          ("from", Jsonx.String from_worker);
          ("to", Jsonx.String to_worker);
        ]
    | Event.Ckpt_hit { worker; digest } ->
      instant t ~at "ckpt_hit"
        [ ("worker", Jsonx.String worker); ("digest", Jsonx.String digest) ]
    | Event.Ckpt_push { worker; digest; bytes } ->
      instant t ~at "ckpt_push"
        [
          ("worker", Jsonx.String worker);
          ("digest", Jsonx.String digest);
          ("bytes", Jsonx.Int bytes);
        ]
    | Event.Dispatch_retry { unit_label; attempt; delay } ->
      instant t ~at "dispatch_retry"
        [
          ("unit", Jsonx.String unit_label);
          ("attempt", Jsonx.Int attempt);
          ("delay", Jsonx.Float delay);
        ]
    | Event.Dispatch_fallback { reason } ->
      instant t ~at "dispatch_fallback" [ ("reason", Jsonx.String reason) ]
    (* planner decisions land on the same track, so a Perfetto timeline
       shows why each round's windows were chosen and when the early
       exit fired *)
    | Event.Plan_round { round; chosen; completed; mean; ci95 } ->
      instant t ~at "plan_round"
        [
          ("round", Jsonx.Int round);
          ("chosen", Jsonx.Int chosen);
          ("completed", Jsonx.Int completed);
          ("mean", Jsonx.Float mean);
          ("ci95", Jsonx.Float ci95);
        ]
    | Event.Plan_predict { offset; phase; ipc } ->
      instant t ~at "plan_predict"
        [
          ("offset", Jsonx.Int offset);
          ("phase", Jsonx.Int phase);
          ("ipc", Jsonx.Float ipc);
        ]
    | Event.Plan_stop { reason; windows; mean; ci95 } ->
      instant t ~at "plan_stop"
        [
          ("reason", Jsonx.String reason);
          ("windows", Jsonx.Int windows);
          ("mean", Jsonx.Float mean);
          ("ci95", Jsonx.Float ci95);
        ]
    | _ -> ())

let attach bus =
  let t = create () in
  Bus.attach bus ~name:"chrome" (record t);
  t

let dispatcher_host = "dispatcher"

let to_json t =
  let spans = List.rev t.spans and instants = List.rev t.instants in
  (* host -> pid, the dispatcher first when present *)
  let pids = Hashtbl.create 4 in
  let next = ref 0 in
  let pid_of host =
    match Hashtbl.find_opt pids host with
    | Some p -> p
    | None ->
      incr next;
      Hashtbl.add pids host !next;
      !next
  in
  if instants <> [] || List.exists (fun (s : Span.t) -> s.Span.host = dispatcher_host) spans
  then ignore (pid_of dispatcher_host);
  List.iter (fun (s : Span.t) -> ignore (pid_of s.Span.host)) spans;
  let base =
    List.fold_left
      (fun acc (s : Span.t) -> min acc s.Span.wall_us)
      (List.fold_left (fun acc i -> min acc i.i_wall) max_int instants)
      spans
  in
  let base = if base = max_int then 0 else base in
  (* (ts, tie-breaker seq, record); microsecond ties within one process
     order by that process's sequence numbers, keeping B/E nested *)
  let entries =
    List.map
      (fun (s : Span.t) ->
        let args =
          match s.Span.phase with
          | Span.B ->
            if s.Span.detail = "" then []
            else [ ("args", Jsonx.Obj [ ("detail", Jsonx.String s.Span.detail) ]) ]
          | Span.E -> [ ("args", Jsonx.Obj [ ("ok", Jsonx.Bool s.Span.ok) ]) ]
        in
        ( s.Span.wall_us - base,
          s.Span.seq,
          Jsonx.Obj
            ([
               ("name", Jsonx.String s.Span.span);
               ("cat", Jsonx.String "darco");
               ( "ph",
                 Jsonx.String
                   (match s.Span.phase with Span.B -> "B" | Span.E -> "E") );
               ("ts", Jsonx.Int (s.Span.wall_us - base));
               ("pid", Jsonx.Int (pid_of s.Span.host));
               ("tid", Jsonx.Int s.Span.corr);
             ]
            @ args) ))
      spans
    @ List.map
        (fun i ->
          ( i.i_wall - base,
            0,
            Jsonx.Obj
              [
                ("name", Jsonx.String i.i_name);
                ("cat", Jsonx.String "darco");
                ("ph", Jsonx.String "i");
                ("s", Jsonx.String "p");
                ("ts", Jsonx.Int (i.i_wall - base));
                ("pid", Jsonx.Int (pid_of dispatcher_host));
                ("tid", Jsonx.Int 0);
                ("args", Jsonx.Obj i.i_args);
              ] ))
        instants
  in
  let entries =
    List.stable_sort
      (fun (t1, s1, _) (t2, s2, _) ->
        match compare t1 t2 with 0 -> compare s1 s2 | c -> c)
      entries
  in
  let metadata =
    Hashtbl.fold
      (fun host pid acc ->
        Jsonx.Obj
          [
            ("name", Jsonx.String "process_name");
            ("ph", Jsonx.String "M");
            ("ts", Jsonx.Int 0);
            ("pid", Jsonx.Int pid);
            ("tid", Jsonx.Int 0);
            ("args", Jsonx.Obj [ ("name", Jsonx.String host) ]);
          ]
        :: acc)
      pids []
  in
  Jsonx.Obj
    [
      ( "traceEvents",
        Jsonx.List (metadata @ List.map (fun (_, _, j) -> j) entries) );
      ("displayTimeUnit", Jsonx.String "ms");
    ]

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Jsonx.to_string (to_json t));
      output_char oc '\n')

(* --- schema validation --------------------------------------------------- *)

let validate j =
  let ( >>= ) r f = match r with Ok v -> f v | Error _ as e -> e in
  (match Jsonx.member "traceEvents" j with
  | Some (Jsonx.List evs) -> Ok evs
  | Some _ -> Error "traceEvents is not a list"
  | None -> Error "document has no traceEvents field")
  >>= fun evs ->
  let str name ev = Option.bind (Jsonx.member name ev) Jsonx.to_str in
  let int name ev = Option.bind (Jsonx.member name ev) Jsonx.to_int in
  (* collect (pid, tid) -> [(ts, order, ph, name)] in document order *)
  let tracks = Hashtbl.create 16 in
  let rec check i = function
    | [] -> Ok ()
    | ev :: tl -> (
      match (str "name" ev, str "ph" ev) with
      | None, _ -> Error (Printf.sprintf "event %d lacks a name" i)
      | _, None -> Error (Printf.sprintf "event %d lacks a ph" i)
      | Some _, Some "M" -> check (i + 1) tl
      | Some name, Some ph -> (
        match (int "ts" ev, int "pid" ev, int "tid" ev) with
        | None, _, _ -> Error (Printf.sprintf "event %d (%s) lacks ts" i name)
        | _, None, _ -> Error (Printf.sprintf "event %d (%s) lacks pid" i name)
        | _, _, None -> Error (Printf.sprintf "event %d (%s) lacks tid" i name)
        | Some ts, Some pid, Some tid ->
          let key = (pid, tid) in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt tracks key)
          in
          Hashtbl.replace tracks key ((ts, i, ph, name) :: prev);
          check (i + 1) tl))
  in
  check 0 evs >>= fun () ->
  (* per track: time order (stable on document order), then LIFO B/E *)
  let result = ref (Ok ()) in
  Hashtbl.iter
    (fun (pid, tid) entries ->
      if !result = Ok () then begin
        let entries =
          List.stable_sort
            (fun (t1, i1, _, _) (t2, i2, _, _) ->
              match compare t1 t2 with 0 -> compare i1 i2 | c -> c)
            (List.rev entries)
        in
        let stack = ref [] in
        List.iter
          (fun (_, i, ph, name) ->
            if !result = Ok () then
              match ph with
              | "B" -> stack := name :: !stack
              | "E" -> (
                match !stack with
                | top :: rest when top = name -> stack := rest
                | top :: _ ->
                  result :=
                    Error
                      (Printf.sprintf
                         "event %d: E %S closes open span %S on pid %d tid %d"
                         i name top pid tid)
                | [] ->
                  result :=
                    Error
                      (Printf.sprintf
                         "event %d: E %S with no open span on pid %d tid %d" i
                         name pid tid))
              | _ -> ())
          entries;
        (match (!result, !stack) with
        | Ok (), open_ :: _ ->
          result :=
            Error
              (Printf.sprintf "span %S never closed on pid %d tid %d" open_
                 pid tid)
        | _ -> ())
      end)
    tracks;
  !result

let validate_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | text -> (
    match Jsonx.parse text with
    | exception Jsonx.Parse_error m -> Error ("not valid JSON: " ^ m)
    | j -> validate j)
