(** The wall-clock/sequence time base of the telemetry layer.

    Core simulation events keep the retired-guest-instruction clock; the
    distributed-dispatch lifecycle and span tracing need a notion of time
    that is meaningful {e across} machines.  Two devices provide it:

    - {!ticks}: a strictly monotonic wall-clock in microseconds, used as
      the [~at] stamp of dispatch-lifecycle events so a merged JSONL
      trace sorts into real-time order even when two events land in the
      same microsecond;
    - {!stamp}: a (wall-µs, per-process sequence) pair carried inside
      span events, so ties within one process still order deterministically
      while cross-machine comparison falls back to the wall clock.

    Both are {b domain-safe}: the monotonic floor and the sequence counter
    are [Atomic.t]s, so ticks and stamps handed out by concurrently
    running domains are still unique and ordered process-wide. *)

val wall_us : unit -> int
(** [Unix.gettimeofday] in integer microseconds. *)

val ticks : unit -> int
(** {!wall_us}, bumped past the last handed-out tick on a tie or clock
    step backwards — strictly monotonic and collision-free across every
    domain of the process (compare-and-set on the shared floor). *)

type stamp = { s_wall_us : int; s_seq : int }

val stamp : unit -> stamp
(** The current wall clock plus this process's next sequence number
    (the sequence strictly increases per call, atomically across
    domains). *)
