let wall_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* The monotonic floor is shared by every domain: ticks handed out
   concurrently must still be unique and increasing, so the bump is a
   compare-and-set loop — each successful install is owned by exactly one
   caller, and a raced install simply retries against the newer floor. *)
let last = Atomic.make 0

let rec ticks () =
  let t = wall_us () in
  let prev = Atomic.get last in
  let v = if t <= prev then prev + 1 else t in
  if Atomic.compare_and_set last prev v then v else ticks ()

type stamp = { s_wall_us : int; s_seq : int }

let seq = Atomic.make 0

let stamp () = { s_wall_us = wall_us (); s_seq = 1 + Atomic.fetch_and_add seq 1 }
