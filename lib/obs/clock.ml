let wall_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let last = ref 0

let ticks () =
  let t = wall_us () in
  let v = if t <= !last then !last + 1 else t in
  last := v;
  v

type stamp = { s_wall_us : int; s_seq : int }

let seq = ref 0

let stamp () =
  incr seq;
  { s_wall_us = wall_us (); s_seq = !seq }
