type overhead =
  | Ov_interp
  | Ov_bb_translate
  | Ov_sb_translate
  | Ov_prologue
  | Ov_chaining
  | Ov_cc_lookup
  | Ov_other

let overhead_index = function
  | Ov_interp -> 0
  | Ov_bb_translate -> 1
  | Ov_sb_translate -> 2
  | Ov_prologue -> 3
  | Ov_chaining -> 4
  | Ov_cc_lookup -> 5
  | Ov_other -> 6

let all_overheads =
  [
    Ov_interp;
    Ov_bb_translate;
    Ov_sb_translate;
    Ov_prologue;
    Ov_chaining;
    Ov_cc_lookup;
    Ov_other;
  ]

let overhead_name = function
  | Ov_interp -> "interpreter"
  | Ov_bb_translate -> "bb_translator"
  | Ov_sb_translate -> "sb_translator"
  | Ov_prologue -> "prologue"
  | Ov_chaining -> "chaining"
  | Ov_cc_lookup -> "cc_lookup"
  | Ov_other -> "other"

type t = {
  mutable guest_im : int;
  mutable guest_bbm : int;
  mutable guest_sbm : int;
  mutable host_app_bbm : int;
  mutable host_app_sbm : int;
  overhead : int array;
  mutable bb_translations : int;
  mutable sb_translations : int;
  mutable sb_rebuilds_noassert : int;
  mutable sb_rebuilds_nomem : int;
  mutable assert_rollbacks : int;
  mutable alias_rollbacks : int;
  mutable page_requests : int;
  mutable syscalls : int;
  mutable chains_made : int;
  mutable chains_followed : int;
  mutable ibtc_fills : int;
  mutable ibtc_misses : int;
  mutable code_cache_flushes : int;
  mutable wasted_host : int;
  mutable validations : int;
  mutable startup_insns : int option;
  mutable unrolled_superblocks : int;
}

let create () =
  {
    guest_im = 0;
    guest_bbm = 0;
    guest_sbm = 0;
    host_app_bbm = 0;
    host_app_sbm = 0;
    overhead = Array.make 7 0;
    bb_translations = 0;
    sb_translations = 0;
    sb_rebuilds_noassert = 0;
    sb_rebuilds_nomem = 0;
    assert_rollbacks = 0;
    alias_rollbacks = 0;
    page_requests = 0;
    syscalls = 0;
    chains_made = 0;
    chains_followed = 0;
    ibtc_fills = 0;
    ibtc_misses = 0;
    code_cache_flushes = 0;
    wasted_host = 0;
    validations = 0;
    startup_insns = None;
    unrolled_superblocks = 0;
  }

let charge t cat n = t.overhead.(overhead_index cat) <- t.overhead.(overhead_index cat) + n
let overhead_of t cat = t.overhead.(overhead_index cat)
let total_overhead t = Array.fold_left ( + ) 0 t.overhead
let guest_total t = t.guest_im + t.guest_bbm + t.guest_sbm
let host_app_total t = t.host_app_bbm + t.host_app_sbm
let host_total t = host_app_total t + total_overhead t

let note_sbm_start t =
  if t.startup_insns = None then t.startup_insns <- Some (guest_total t)

let mode_fractions t =
  let total = float_of_int (guest_total t) in
  if total = 0.0 then (0.0, 0.0, 0.0)
  else
    ( float_of_int t.guest_im /. total,
      float_of_int t.guest_bbm /. total,
      float_of_int t.guest_sbm /. total )

let emulation_cost_sbm t =
  if t.guest_sbm = 0 then 0.0
  else float_of_int t.host_app_sbm /. float_of_int t.guest_sbm

let overhead_fraction t =
  let total = float_of_int (host_total t) in
  if total = 0.0 then 0.0 else float_of_int (total_overhead t) /. total

let merge ~into:a b =
  a.guest_im <- a.guest_im + b.guest_im;
  a.guest_bbm <- a.guest_bbm + b.guest_bbm;
  a.guest_sbm <- a.guest_sbm + b.guest_sbm;
  a.host_app_bbm <- a.host_app_bbm + b.host_app_bbm;
  a.host_app_sbm <- a.host_app_sbm + b.host_app_sbm;
  Array.iteri (fun i n -> a.overhead.(i) <- a.overhead.(i) + n) b.overhead;
  a.bb_translations <- a.bb_translations + b.bb_translations;
  a.sb_translations <- a.sb_translations + b.sb_translations;
  a.sb_rebuilds_noassert <- a.sb_rebuilds_noassert + b.sb_rebuilds_noassert;
  a.sb_rebuilds_nomem <- a.sb_rebuilds_nomem + b.sb_rebuilds_nomem;
  a.assert_rollbacks <- a.assert_rollbacks + b.assert_rollbacks;
  a.alias_rollbacks <- a.alias_rollbacks + b.alias_rollbacks;
  a.page_requests <- a.page_requests + b.page_requests;
  a.syscalls <- a.syscalls + b.syscalls;
  a.chains_made <- a.chains_made + b.chains_made;
  a.chains_followed <- a.chains_followed + b.chains_followed;
  a.ibtc_fills <- a.ibtc_fills + b.ibtc_fills;
  a.ibtc_misses <- a.ibtc_misses + b.ibtc_misses;
  a.code_cache_flushes <- a.code_cache_flushes + b.code_cache_flushes;
  a.wasted_host <- a.wasted_host + b.wasted_host;
  a.validations <- a.validations + b.validations;
  (* startup is a "first time anywhere" mark: the earliest wins *)
  a.startup_insns <-
    (match (a.startup_insns, b.startup_insns) with
    | None, s | s, None -> s
    | Some x, Some y -> Some (min x y));
  a.unrolled_superblocks <- a.unrolled_superblocks + b.unrolled_superblocks

let equal a b =
  a.guest_im = b.guest_im && a.guest_bbm = b.guest_bbm && a.guest_sbm = b.guest_sbm
  && a.host_app_bbm = b.host_app_bbm
  && a.host_app_sbm = b.host_app_sbm
  && a.overhead = b.overhead
  && a.bb_translations = b.bb_translations
  && a.sb_translations = b.sb_translations
  && a.sb_rebuilds_noassert = b.sb_rebuilds_noassert
  && a.sb_rebuilds_nomem = b.sb_rebuilds_nomem
  && a.assert_rollbacks = b.assert_rollbacks
  && a.alias_rollbacks = b.alias_rollbacks
  && a.page_requests = b.page_requests
  && a.syscalls = b.syscalls
  && a.chains_made = b.chains_made
  && a.chains_followed = b.chains_followed
  && a.ibtc_fills = b.ibtc_fills
  && a.ibtc_misses = b.ibtc_misses
  && a.code_cache_flushes = b.code_cache_flushes
  && a.wasted_host = b.wasted_host
  && a.validations = b.validations
  && a.startup_insns = b.startup_insns
  && a.unrolled_superblocks = b.unrolled_superblocks

let pp_summary ppf t =
  let im, bbm, sbm = mode_fractions t in
  Format.fprintf ppf
    "@[<v>guest insns: %d (IM %.1f%% / BBM %.1f%% / SBM %.1f%%)@ \
     host app insns: %d (BBM %d, SBM %d)@ \
     TOL overhead: %d host insns (%.1f%% of host stream)@ \
     emulation cost in SBM: %.2f host/guest@ \
     translations: %d BB, %d SB (%d deopt, %d no-memspec); rollbacks: %d assert, %d alias@ \
     chaining: %d made, %d followed; IBTC: %d fills, %d misses@ \
     speculation waste: %d host insns; unrolled superblocks: %d@ \
     system: %d code-cache flushes, %d page requests, %d syscalls, %d validations@ \
     startup: %s guest insns before first SBM@]"
    (guest_total t) (100. *. im) (100. *. bbm) (100. *. sbm) (host_app_total t)
    t.host_app_bbm t.host_app_sbm (total_overhead t)
    (100. *. overhead_fraction t)
    (emulation_cost_sbm t) t.bb_translations t.sb_translations t.sb_rebuilds_noassert
    t.sb_rebuilds_nomem t.assert_rollbacks t.alias_rollbacks t.chains_made
    t.chains_followed t.ibtc_fills t.ibtc_misses t.wasted_host t.unrolled_superblocks
    t.code_cache_flushes t.page_requests t.syscalls t.validations
    (match t.startup_insns with None -> "n/a" | Some n -> string_of_int n)
