(** A minimal self-contained JSON representation, printer and parser
    (the toolchain image carries no JSON library; events and metrics
    snapshots only need this much). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact single-line rendering with full string escaping. *)

val parse : string -> t
(** Inverse of {!to_string} (raises {!Parse_error} on malformed input).
    Numbers without a fractional part parse as [Int]; [\u] escapes
    outside ASCII degrade to ['?']. *)

val member : string -> t -> t option
(** Object field lookup ([None] on non-objects and absent keys). *)

val to_int : t -> int option
val to_str : t -> string option
