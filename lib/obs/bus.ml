type sink = { name : string; handle : at:int -> Event.t -> unit }
type retire = Darco_host.Emulator.retire_info -> unit

type t = {
  mutable sinks : sink array;
  mutable retire_subs : retire list;
  mutable retire_hook : retire option;
  (* guards sink/subscription registration only: emission reads one
     immutable array snapshot and stays lock-free, so the unobserved hot
     path is exactly as cheap as before domains existed *)
  lock : Mutex.t;
}

let create () =
  { sinks = [||]; retire_subs = []; retire_hook = None; lock = Mutex.create () }

let active t = Array.length t.sinks > 0

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let attach t ~name handle =
  locked t (fun () ->
      t.sinks <- Array.append t.sinks [| { name; handle } |])

let emit t ~at ev =
  let sinks = t.sinks in
  for i = 0 to Array.length sinks - 1 do
    sinks.(i).handle ~at ev
  done

let on_retire t f =
  locked t (fun () ->
      t.retire_subs <- t.retire_subs @ [ f ];
      t.retire_hook <-
        (match t.retire_subs with
        | [] -> None
        | [ f ] -> Some f
        | fs -> Some (fun ri -> List.iter (fun g -> g ri) fs)))

let retire_hook t = t.retire_hook
let sink_names t = Array.to_list (Array.map (fun s -> s.name) t.sinks)
