(* The DARCO command-line interface: run workloads through the co-designed
   pipeline, optionally with the timing and power simulators, and inspect
   the software-layer statistics. *)

open Cmdliner

let list_cmd =
  let run () =
    List.iter
      (fun (e : Darco_workloads.Registry.entry) ->
        Printf.printf "%-16s %s\n" (Darco_workloads.Registry.suite_name e.suite) e.name)
      Darco_workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available workloads")
    Term.(const run $ const ())

let bench_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCH" ~doc:"Workload name (or unique substring)")

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Hot-phase iteration multiplier")

let timing_arg =
  Arg.(value & flag & info [ "timing" ] ~doc:"Enable the timing and power simulators")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate-checkpoints" ]
        ~doc:"Validate architectural state at every execution slice")

let max_insns_arg =
  Arg.(
    value
    & opt int max_int
    & info [ "max-insns" ] ~doc:"Stop after this many retired guest instructions")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic input seed")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.jsonl"
        ~doc:"Write the typed simulation event stream as JSON lines to $(docv)")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the final statistics as a JSON metrics snapshot to $(docv)")

let no_flag name doc = Arg.(value & flag & info [ name ] ~doc)

let config_term =
  let combine no_asserts no_memspec no_sched no_opt no_chain no_ibtc no_unroll bb_thr
      sb_thr =
    let c = Darco.Config.default in
    {
      c with
      use_asserts = not no_asserts;
      use_mem_speculation = not no_memspec;
      opt_schedule = not no_sched;
      opt_const_fold = not no_opt;
      opt_copy_prop = not no_opt;
      opt_cse = not no_opt;
      opt_dce = not no_opt;
      opt_rle = not no_opt;
      use_chaining = not no_chain;
      use_ibtc = not no_ibtc;
      unroll_factor = (if no_unroll then 1 else c.unroll_factor);
      bb_threshold = bb_thr;
      sb_threshold = sb_thr;
    }
  in
  Term.(
    const combine
    $ no_flag "no-asserts" "Disable assert conversion (side-exit superblocks)"
    $ no_flag "no-memspec" "Disable speculative memory reordering"
    $ no_flag "no-schedule" "Disable instruction scheduling"
    $ no_flag "no-opt" "Disable the classic optimization passes"
    $ no_flag "no-chaining" "Disable translation chaining"
    $ no_flag "no-ibtc" "Disable the indirect-branch translation cache"
    $ no_flag "no-unroll" "Disable loop unrolling"
    $ Arg.(value & opt int Darco.Config.default.bb_threshold & info [ "bb-threshold" ] ~doc:"IM->BBM promotion threshold")
    $ Arg.(value & opt int Darco.Config.default.sb_threshold & info [ "sb-threshold" ] ~doc:"BBM->SBM promotion threshold"))

let run_cmd =
  let run bench scale timing validate max_insns seed trace stats_json cfg =
    let entry = Darco_workloads.Registry.find bench in
    let program = entry.build ~scale () in
    Printf.printf "== %s (%s), %d static bytes ==\n%!" entry.name
      (Darco_workloads.Registry.suite_name entry.suite)
      (Darco_guest.Program.code_bytes program);
    (* Sinks attach before the controller exists so initialization events
       land in the trace too. *)
    let bus = Darco_obs.Bus.create () in
    let trace_oc = Option.map (Darco_obs.Trace.attach_file bus) trace in
    let ctl = Darco.Controller.create ~cfg ~bus ~seed program in
    ctl.validate_at_checkpoints <- validate;
    let pipe =
      if timing then begin
        let p = Darco_timing.Pipeline.create Darco_timing.Tconfig.default in
        Darco_timing.Pipeline.attach p bus;
        Some p
      end
      else None
    in
    let t0 = Unix.gettimeofday () in
    let result = Darco.Controller.run ~max_insns ctl in
    let dt = Unix.gettimeofday () -. t0 in
    Option.iter close_out trace_oc;
    Option.iter
      (fun path -> Darco_obs.Metrics.write_file path (Darco.Controller.stats ctl))
      stats_json;
    (match result with
    | `Done -> Printf.printf "completed"
    | `Limit -> Printf.printf "instruction limit reached"
    | `Diverged d ->
      Printf.printf "DIVERGED at %d retired insns:\n  %s" d.at_retired
        (String.concat "\n  " d.details));
    Printf.printf " in %.2fs (exit code %s)\n"
      dt
      (match Darco.Controller.exit_code ctl with
      | Some c -> string_of_int c
      | None -> "-");
    let st = Darco.Controller.stats ctl in
    Format.printf "%a@." Darco.Stats.pp_summary st;
    Printf.printf "guest speed: %.2f MIPS (functional%s)\n"
      (float_of_int (Darco.Stats.guest_total st) /. dt /. 1e6)
      (if timing then " + timing" else "");
    match pipe with
    | None -> ()
    | Some p ->
      Format.printf "--- timing ---@.%a@." Darco_timing.Pipeline.pp_summary
        (Darco_timing.Pipeline.summary p);
      let ev = Darco_timing.Pipeline.events p in
      let rep = Darco_power.Model.evaluate ev in
      Format.printf "--- power ---@.%a@.perf/W: %.1f MIPS/W@."
        Darco_power.Model.pp_report rep
        (Darco_power.Model.perf_per_watt ev rep)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one workload through the co-designed pipeline")
    Term.(
      const run $ bench_arg $ scale_arg $ timing_arg $ validate_arg $ max_insns_arg
      $ seed_arg $ trace_arg $ stats_json_arg $ config_term)

let suite_cmd =
  let run scale seed =
    let header =
      [ "benchmark"; "guest-insns"; "IM%"; "BBM%"; "SBM%"; "emul-cost"; "TOL%"; "status" ]
    in
    let rows =
      List.map
        (fun (e : Darco_workloads.Registry.entry) ->
          let ctl = Darco.Controller.create ~seed (e.build ~scale ()) in
          let status =
            match Darco.Controller.run ctl with
            | `Done -> "ok"
            | `Limit -> "limit"
            | `Diverged _ -> "DIVERGED"
          in
          let st = Darco.Controller.stats ctl in
          let im, bbm, sbm = Darco.Stats.mode_fractions st in
          [
            e.name;
            string_of_int (Darco.Stats.guest_total st);
            Printf.sprintf "%.1f" (100. *. im);
            Printf.sprintf "%.1f" (100. *. bbm);
            Printf.sprintf "%.1f" (100. *. sbm);
            Printf.sprintf "%.2f" (Darco.Stats.emulation_cost_sbm st);
            Printf.sprintf "%.1f" (100. *. Darco.Stats.overhead_fraction st);
            status;
          ])
        Darco_workloads.Registry.all
    in
    print_endline (Darco_util.Table.render ~header rows)
  in
  Cmd.v (Cmd.info "suite" ~doc:"Run every workload; print the summary table")
    Term.(const run $ scale_arg $ seed_arg)

(* --- monitoring / debugging tools ------------------------------------- *)

let disasm_cmd =
  let run bench scale limit =
    let entry = Darco_workloads.Registry.find bench in
    let program = entry.build ~scale () in
    Format.printf "%a@." Darco.Disasm.pp_listing
      (Darco.Disasm.disassemble program ~limit ())
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a workload's guest code")
    Term.(
      const run $ bench_arg $ scale_arg
      $ Arg.(value & opt int 200 & info [ "limit" ] ~doc:"Max instructions"))

let trace_cmd =
  let run bench scale limit seed =
    let entry = Darco_workloads.Registry.find bench in
    let program = entry.build ~scale () in
    Darco.Disasm.trace ~limit ~seed program (fun pc insn cpu ->
        Printf.printf "0x%06x: %-30s eax=%08x ecx=%08x flags=%s\n" pc
          (Darco_guest.Isa.to_string insn)
          (Darco_guest.Cpu.get cpu EAX)
          (Darco_guest.Cpu.get cpu ECX)
          (Darco_guest.Flags.to_string cpu.flags))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Trace guest execution on the authoritative emulator")
    Term.(
      const run $ bench_arg $ scale_arg
      $ Arg.(value & opt int 64 & info [ "limit" ] ~doc:"Instructions to trace")
      $ seed_arg)

let regions_cmd =
  let run bench scale max_insns seed =
    let entry = Darco_workloads.Registry.find bench in
    let ctl = Darco.Controller.create ~seed (entry.build ~scale ()) in
    ignore (Darco.Controller.run ~max_insns ctl);
    (* dump the hottest region the code cache currently holds *)
    Printf.printf "code cache: %d regions, %d host insns\n"
      (Darco.Codecache.region_count ctl.co.codecache)
      (Darco.Codecache.total_host_insns ctl.co.codecache);
    let shown = ref 0 in
    List.iter
      (fun (pc, _) ->
        if !shown < 3 then
          match Darco.Codecache.find ctl.co.codecache pc with
          | Some r when r.mode = `Super ->
            incr shown;
            Format.printf "%a@." Darco_host.Code.pp_region r
          | _ -> ())
      (Darco.Profile.histogram ctl.co.profile);
    if !shown = 0 then print_endline "(no superblocks formed in this window)"
  in
  Cmd.v
    (Cmd.info "regions" ~doc:"Run a bounded window and dump translated superblocks")
    Term.(
      const run $ bench_arg $ scale_arg
      $ Arg.(value & opt int 50_000 & info [ "max-insns" ] ~doc:"Window size")
      $ seed_arg)

let debug_cmd =
  let run bench scale seed fault =
    let entry = Darco_workloads.Registry.find bench in
    let inject : Darco.Config.fault =
      match fault with
      | Some "cse" -> Opt_drop_store
      | Some "sched" -> Sched_break_dep
      | Some other -> invalid_arg ("unknown fault: " ^ other)
      | None -> No_fault
    in
    let cfg = { Darco.Config.default with inject_fault = inject } in
    let report = Darco.Debug.investigate ~cfg ~seed (entry.build ~scale ()) in
    Format.printf "%a@." Darco.Debug.pp_report report
  in
  Cmd.v
    (Cmd.info "debug"
       ~doc:"Investigate a divergence (optionally with an injected bug)")
    Term.(
      const run $ bench_arg $ scale_arg $ seed_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "inject" ] ~doc:"Inject a bug: 'cse' or 'sched'"))

let speed_cmd =
  let run bench scale insns seed =
    let entry = Darco_workloads.Registry.find bench in
    let s = Darco_studies.Speed.measure ~insns (entry.build ~scale ()) ~seed in
    Format.printf "%a@." Darco_studies.Speed.pp s
  in
  Cmd.v (Cmd.info "speed" ~doc:"Measure emulation/simulation throughput")
    Term.(
      const run $ bench_arg $ scale_arg
      $ Arg.(value & opt int 300_000 & info [ "insns" ] ~doc:"Guest instructions")
      $ seed_arg)

let () =
  let info = Cmd.info "darco" ~doc:"DARCO co-designed processor simulation infrastructure" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; suite_cmd; disasm_cmd; trace_cmd; regions_cmd; debug_cmd; speed_cmd ]))
