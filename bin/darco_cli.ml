(* The DARCO command-line interface: run workloads through the co-designed
   pipeline, optionally with the timing and power simulators, inspect the
   software-layer statistics, and drive sampled simulation — locally or
   across a cluster of worker daemons. *)

open Cmdliner

let list_cmd =
  let run () =
    List.iter
      (fun (e : Darco_workloads.Registry.entry) ->
        Printf.printf "%-16s %s\n" (Darco_workloads.Registry.suite_name e.suite) e.name)
      Darco_workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available workloads")
    Term.(const run $ const ())

(* --- the shared flag-spec table ---------------------------------------- *)

(* One declaration per flag; every command assembles its interface from
   these rows instead of re-implementing --seed/--input/--trace/... with
   subtly different docs and defaults. *)
module Flag = struct
  let bench =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Workload name (or unique substring)")

  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Hot-phase iteration multiplier")

  let timing =
    Arg.(value & flag & info [ "timing" ] ~doc:"Enable the timing and power simulators")

  let max_insns =
    Arg.(
      value
      & opt int max_int
      & info [ "max-insns" ] ~doc:"Stop after this many retired guest instructions")

  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic input seed")

  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "input" ] ~docv:"STRING"
          ~doc:"Feed $(docv) to the guest's standard input (read syscalls)")

  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.jsonl"
          ~doc:"Write the typed simulation event stream as JSON lines to $(docv)")

  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Write the final statistics as a JSON metrics snapshot to $(docv)")

  (* The bundle almost every simulating command wants. *)
  type sim = {
    seed : int;
    input : string option;
    trace : string option;
    stats_json : string option;
  }

  let sim =
    Term.(
      const (fun seed input trace stats_json -> { seed; input; trace; stats_json })
      $ seed $ input $ trace $ stats_json)
end

let no_flag name doc = Arg.(value & flag & info [ name ] ~doc)

let engine_conv =
  let parse s =
    match Darco.Exec.engine_of_string s with
    | Some e -> Ok e
    | None ->
      Error (`Msg (Printf.sprintf "unknown engine %S (expected eval or threaded)" s))
  in
  Arg.conv (parse, fun fmt e -> Format.pp_print_string fmt (Darco.Exec.engine_name e))

let engine_arg =
  Arg.(
    value
    & opt engine_conv Darco.Config.default.engine
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Region execution engine: $(b,threaded) (direct-threaded closure \
           chains, the default) or $(b,eval) (the reference walker).  Both \
           are bit-identical; $(b,eval) is the deopt/diagnosis fallback.")

let config_term =
  let combine no_asserts no_memspec no_sched no_opt no_chain no_ibtc no_unroll bb_thr
      sb_thr engine =
    let c = Darco.Config.default in
    {
      c with
      engine;
      use_asserts = not no_asserts;
      use_mem_speculation = not no_memspec;
      opt_schedule = not no_sched;
      opt_const_fold = not no_opt;
      opt_copy_prop = not no_opt;
      opt_cse = not no_opt;
      opt_dce = not no_opt;
      opt_rle = not no_opt;
      use_chaining = not no_chain;
      use_ibtc = not no_ibtc;
      unroll_factor = (if no_unroll then 1 else c.unroll_factor);
      bb_threshold = bb_thr;
      sb_threshold = sb_thr;
    }
  in
  Term.(
    const combine
    $ no_flag "no-asserts" "Disable assert conversion (side-exit superblocks)"
    $ no_flag "no-memspec" "Disable speculative memory reordering"
    $ no_flag "no-schedule" "Disable instruction scheduling"
    $ no_flag "no-opt" "Disable the classic optimization passes"
    $ no_flag "no-chaining" "Disable translation chaining"
    $ no_flag "no-ibtc" "Disable the indirect-branch translation cache"
    $ no_flag "no-unroll" "Disable loop unrolling"
    $ Arg.(value & opt int Darco.Config.default.bb_threshold & info [ "bb-threshold" ] ~doc:"IM->BBM promotion threshold")
    $ Arg.(value & opt int Darco.Config.default.sb_threshold & info [ "sb-threshold" ] ~doc:"BBM->SBM promotion threshold")
    $ engine_arg)

(* --- shared run/report plumbing ---------------------------------------- *)

(* Run the controller with the trace sink closed (and the stats snapshot
   written) even when the run diverges or raises — otherwise buffered trail
   events are lost exactly when they matter most. *)
let timed_run ?max_insns ?(hists = []) ~trace_oc ~stats_json ctl =
  let t0 = Unix.gettimeofday () in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Option.iter close_out_noerr trace_oc;
        Option.iter
          (fun path ->
            Darco_obs.Metrics.write_file ~hists path (Darco.Controller.stats ctl))
          stats_json)
      (fun () -> Darco.Controller.run ?max_insns ctl)
  in
  (result, Unix.gettimeofday () -. t0)

(* Attach (and always close) the optional trace sink around [f]: anything
   between attachment and the run proper — snapshot restore, controller
   creation, checkpoint generation — can raise, and the channel must not
   leak when it does. *)
let with_trace bus trace f =
  let trace_oc = Option.map (Darco_obs.Trace.attach_file bus) trace in
  Fun.protect
    ~finally:(fun () -> Option.iter close_out_noerr trace_oc)
    (fun () -> f trace_oc)

let write_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Darco_obs.Jsonx.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s\n" path

let report_outcome ~dt ctl result =
  (match result with
  | `Done -> Printf.printf "completed"
  | `Limit -> Printf.printf "instruction limit reached"
  | `Diverged (d : Darco.Controller.divergence) ->
    Printf.printf "DIVERGED at %d retired insns:\n  %s" d.at_retired
      (String.concat "\n  " d.details));
  Printf.printf " in %.2fs (exit code %s)\n" dt
    (match Darco.Controller.exit_code ctl with
    | Some c -> string_of_int c
    | None -> "-");
  Format.printf "%a@." Darco.Stats.pp_summary (Darco.Controller.stats ctl)

let attach_timing bus =
  let p = Darco_timing.Pipeline.create Darco_timing.Tconfig.default in
  Darco_timing.Pipeline.attach p bus;
  p

let run_cmd =
  let run bench scale timing validate max_insns (sim : Flag.sim) profile
      profile_json flight flight_out cfg =
    let entry = Darco_workloads.Registry.find bench in
    let program = entry.build ~scale () in
    Printf.printf "== %s (%s), %d static bytes ==\n%!" entry.name
      (Darco_workloads.Registry.suite_name entry.suite)
      (Darco_guest.Program.code_bytes program);
    (* Sinks attach before the controller exists so initialization events
       land in the trace too. *)
    let bus = Darco_obs.Bus.create () in
    with_trace bus sim.trace @@ fun trace_oc ->
    let prof =
      if profile > 0 || profile_json <> None then Some (Darco_obs.Prof.attach bus)
      else None
    in
    let recorder =
      if flight > 0 then
        Some (Darco_obs.Recorder.attach bus ~capacity:flight ~path:flight_out)
      else None
    in
    let ctl =
      Darco.Controller.create ~cfg ~bus ?input:sim.input ~seed:sim.seed program
    in
    ctl.validate_at_checkpoints <- validate;
    let pipe = if timing then Some (attach_timing bus) else None in
    let lat_hist = Option.map Darco_timing.Pipeline.observe_latencies pipe in
    let hists =
      match lat_hist with
      | None -> []
      | Some h -> [ ("load_latency_cycles", h) ]
    in
    let result, dt =
      match timed_run ~max_insns ~hists ~trace_oc ~stats_json:sim.stats_json ctl with
      | r -> r
      | exception e ->
        (* the ring holds exactly the trail that led here *)
        Option.iter Darco_obs.Recorder.dump recorder;
        raise e
    in
    report_outcome ~dt ctl result;
    let st = Darco.Controller.stats ctl in
    Printf.printf "guest speed: %.2f MIPS (functional%s)\n"
      (float_of_int (Darco.Stats.guest_total st) /. dt /. 1e6)
      (if timing then " + timing" else "");
    (match pipe with
    | None -> ()
    | Some p ->
      Format.printf "--- timing ---@.%a@." Darco_timing.Pipeline.pp_summary
        (Darco_timing.Pipeline.summary p);
      Option.iter
        (fun h -> Format.printf "load latency: %a@." Darco_obs.Hist.pp h)
        lat_hist;
      let ev = Darco_timing.Pipeline.events p in
      let rep = Darco_power.Model.evaluate ev in
      Format.printf "--- power ---@.%a@.perf/W: %.1f MIPS/W@."
        Darco_power.Model.pp_report rep
        (Darco_power.Model.perf_per_watt ev rep));
    (match prof with
    | None -> ()
    | Some p ->
      (match Darco_obs.Prof.reconciles p st with
      | Ok () -> ()
      | Error e -> Printf.eprintf "WARNING: profiler does not reconcile: %s\n" e);
      if profile > 0 then
        Format.printf "--- hot regions ---@.%a@."
          (Darco_obs.Prof.pp_table ~n:profile)
          p;
      Option.iter (fun path -> write_json path (Darco_obs.Prof.to_json p)) profile_json);
    match recorder with
    | Some r when Darco_obs.Recorder.dumped r ->
      Printf.printf "flight recorder dumped to %s\n" flight_out
    | _ -> ()
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one workload through the co-designed pipeline")
    Term.(
      const run $ Flag.bench $ Flag.scale $ Flag.timing
      $ Arg.(
          value & flag
          & info [ "validate-checkpoints" ]
              ~doc:"Validate architectural state at every execution slice")
      $ Flag.max_insns $ Flag.sim
      $ Arg.(
          value & opt int 0
          & info [ "profile" ] ~docv:"N"
              ~doc:"Print the N hottest guest regions (host cost attribution)")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "profile-json" ] ~docv:"FILE"
              ~doc:"Write the full hot-region profile as JSON to $(docv)")
      $ Arg.(
          value & opt int 0
          & info [ "flight-recorder" ] ~docv:"N"
              ~doc:
                "Keep the last N events in memory; dump them as JSONL on a \
                 divergence or crash")
      $ Arg.(
          value
          & opt string "darco-flight.jsonl"
          & info [ "flight-recorder-out" ] ~docv:"FILE"
              ~doc:"Where --flight-recorder dumps its ring")
      $ config_term)

let suite_cmd =
  let run scale seed =
    let header =
      [ "benchmark"; "guest-insns"; "IM%"; "BBM%"; "SBM%"; "emul-cost"; "TOL%"; "status" ]
    in
    let rows =
      List.map
        (fun (e : Darco_workloads.Registry.entry) ->
          let ctl = Darco.Controller.create ~seed (e.build ~scale ()) in
          let status =
            match Darco.Controller.run ctl with
            | `Done -> "ok"
            | `Limit -> "limit"
            | `Diverged _ -> "DIVERGED"
          in
          let st = Darco.Controller.stats ctl in
          let im, bbm, sbm = Darco.Stats.mode_fractions st in
          [
            e.name;
            string_of_int (Darco.Stats.guest_total st);
            Printf.sprintf "%.1f" (100. *. im);
            Printf.sprintf "%.1f" (100. *. bbm);
            Printf.sprintf "%.1f" (100. *. sbm);
            Printf.sprintf "%.2f" (Darco.Stats.emulation_cost_sbm st);
            Printf.sprintf "%.1f" (100. *. Darco.Stats.overhead_fraction st);
            status;
          ])
        Darco_workloads.Registry.all
    in
    print_endline (Darco_util.Table.render ~header rows)
  in
  Cmd.v (Cmd.info "suite" ~doc:"Run every workload; print the summary table")
    Term.(const run $ Flag.scale $ Flag.seed)

(* --- monitoring / debugging tools ------------------------------------- *)

let disasm_cmd =
  let run bench scale limit =
    let entry = Darco_workloads.Registry.find bench in
    let program = entry.build ~scale () in
    Format.printf "%a@." Darco.Disasm.pp_listing
      (Darco.Disasm.disassemble program ~limit ())
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a workload's guest code")
    Term.(
      const run $ Flag.bench $ Flag.scale
      $ Arg.(value & opt int 200 & info [ "limit" ] ~doc:"Max instructions"))

let trace_cmd =
  let run bench scale limit seed =
    let entry = Darco_workloads.Registry.find bench in
    let program = entry.build ~scale () in
    Darco.Disasm.trace ~limit ~seed program (fun pc insn cpu ->
        Printf.printf "0x%06x: %-30s eax=%08x ecx=%08x flags=%s\n" pc
          (Darco_guest.Isa.to_string insn)
          (Darco_guest.Cpu.get cpu EAX)
          (Darco_guest.Cpu.get cpu ECX)
          (Darco_guest.Flags.to_string cpu.flags))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Trace guest execution on the authoritative emulator")
    Term.(
      const run $ Flag.bench $ Flag.scale
      $ Arg.(value & opt int 64 & info [ "limit" ] ~doc:"Instructions to trace")
      $ Flag.seed)

let regions_cmd =
  let run bench scale max_insns seed =
    let entry = Darco_workloads.Registry.find bench in
    let ctl = Darco.Controller.create ~seed (entry.build ~scale ()) in
    ignore (Darco.Controller.run ~max_insns ctl);
    (* dump the hottest region the code cache currently holds *)
    Printf.printf "code cache: %d regions, %d host insns\n"
      (Darco.Codecache.region_count ctl.co.codecache)
      (Darco.Codecache.total_host_insns ctl.co.codecache);
    let shown = ref 0 in
    List.iter
      (fun (pc, _) ->
        if !shown < 3 then
          match Darco.Codecache.find ctl.co.codecache pc with
          | Some r when r.mode = `Super ->
            incr shown;
            Format.printf "%a@." Darco_host.Code.pp_region r
          | _ -> ())
      (Darco.Profile.histogram ctl.co.profile);
    if !shown = 0 then print_endline "(no superblocks formed in this window)"
  in
  Cmd.v
    (Cmd.info "regions" ~doc:"Run a bounded window and dump translated superblocks")
    Term.(
      const run $ Flag.bench $ Flag.scale
      $ Arg.(value & opt int 50_000 & info [ "max-insns" ] ~doc:"Window size")
      $ Flag.seed)

let debug_cmd =
  let run bench scale seed fault =
    let entry = Darco_workloads.Registry.find bench in
    let inject : Darco.Config.fault =
      match fault with
      | Some "cse" -> Opt_drop_store
      | Some "sched" -> Sched_break_dep
      | Some other -> invalid_arg ("unknown fault: " ^ other)
      | None -> No_fault
    in
    let cfg = { Darco.Config.default with inject_fault = inject } in
    let report = Darco.Debug.investigate ~cfg ~seed (entry.build ~scale ()) in
    Format.printf "%a@." Darco.Debug.pp_report report
  in
  Cmd.v
    (Cmd.info "debug"
       ~doc:"Investigate a divergence (optionally with an injected bug)")
    Term.(
      const run $ Flag.bench $ Flag.scale $ Flag.seed
      $ Arg.(
          value
          & opt (some string) None
          & info [ "inject" ] ~doc:"Inject a bug: 'cse' or 'sched'"))

(* --- sampled simulation ------------------------------------------------ *)

module Snapshot = Darco_sampling.Snapshot
module Driver = Darco_sampling.Driver
module Sweep = Darco_sampling.Sweep
module Work = Darco_sampling.Work
module Report = Darco_sampling.Report
module Plan = Darco_sampling.Plan

let json_num j =
  match j with
  | Some (Darco_obs.Jsonx.Float f) -> Some f
  | Some (Darco_obs.Jsonx.Int i) -> Some (float_of_int i)
  | _ -> None

let checkpoint_cmd =
  let run bench scale (sim : Flag.sim) at out timing functional cfg =
    let entry = Darco_workloads.Registry.find bench in
    let program = entry.build ~scale () in
    let snap =
      if functional then begin
        let ir = Darco_guest.Interp_ref.boot ?input:sim.input ~seed:sim.seed program in
        Darco_guest.Interp_ref.run_until ir at;
        Snapshot.capture_reference ir
      end
      else begin
        let bus = Darco_obs.Bus.create () in
        with_trace bus sim.trace @@ fun trace_oc ->
        let pipe = if timing then Some (attach_timing bus) else None in
        let ctl =
          Darco.Controller.create ~cfg ~bus ?input:sim.input ~seed:sim.seed program
        in
        let result, _dt =
          timed_run ~max_insns:at ~trace_oc ~stats_json:sim.stats_json ctl
        in
        (match result with
        | `Limit | `Done -> ()
        | `Diverged d ->
          Printf.eprintf "DIVERGED at %d before the checkpoint was reached\n"
            d.at_retired;
          exit 1);
        Snapshot.capture ?pipeline:pipe ctl
      end
    in
    Snapshot.write_file out snap;
    Printf.printf "%s\n" (Darco_obs.Jsonx.to_string (Snapshot.manifest snap))
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Run a workload to a given instruction count and snapshot the \
          complete co-designed state to a file")
    Term.(
      const run $ Flag.bench $ Flag.scale $ Flag.sim
      $ Arg.(value & opt int 100_000 & info [ "at" ] ~doc:"Snapshot at (or just past) this many retired guest instructions")
      $ Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Snapshot file to write")
      $ Flag.timing
      $ Arg.(value & flag & info [ "functional" ] ~doc:"Capture only the x86 component (cheap fast-forward checkpoint)")
      $ config_term)

let resume_cmd =
  let run file max_insns (sim : Flag.sim) timing =
    match Snapshot.read_file file with
    | exception Darco_sampling.Buf.Corrupt msg ->
      Printf.eprintf "corrupt snapshot %s: %s\n" file msg;
      exit 1
    | snap ->
      Printf.printf "== resuming %s (%s, %d insns retired) ==\n%!" file
        (match Snapshot.kind snap with
        | Snapshot.Functional -> "functional"
        | Snapshot.Full -> "full")
        (Snapshot.retired snap);
      let bus = Darco_obs.Bus.create () in
      with_trace bus sim.trace @@ fun trace_oc ->
      let pipe =
        match Snapshot.restore_pipeline snap with
        | Some p ->
          Darco_timing.Pipeline.attach p bus;
          Some p
        | None -> if timing then Some (attach_timing bus) else None
      in
      let ctl = Snapshot.restore ~bus snap in
      let result, dt =
        timed_run ~max_insns ~trace_oc ~stats_json:sim.stats_json ctl
      in
      report_outcome ~dt ctl result;
      Option.iter
        (fun p ->
          Format.printf "--- timing ---@.%a@." Darco_timing.Pipeline.pp_summary
            (Darco_timing.Pipeline.summary p))
        pipe
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Restore a snapshot and continue the run (bit-identically for full snapshots)")
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"SNAPSHOT" ~doc:"Snapshot file (from darco checkpoint)")
      $ Flag.max_insns $ Flag.sim
      $ Arg.(value & flag & info [ "timing" ] ~doc:"Attach a cold timing pipeline if the snapshot carries none"))

let sample_cmd =
  let run bench scale (sim : Flag.sim) interval offsets nsamples horizon window
      warmup jobs backend_str dispatch_timeout dispatch_retries store_dir
      json_out chrome_out verify max_error engine plan_kind ci_target
      max_windows round_size =
    let entry = Darco_workloads.Registry.find bench in
    let program = entry.build ~scale () in
    let offsets =
      match offsets with
      | Some s ->
        List.map
          (fun tok ->
            match int_of_string_opt (String.trim tok) with
            | Some v -> v
            | None -> invalid_arg ("bad offset: " ^ tok))
          (String.split_on_char ',' s)
      | None -> List.init nsamples (fun i -> (i + 1) * horizon / (nsamples + 1))
    in
    let offsets = List.sort_uniq compare offsets in
    let horizon =
      List.fold_left (fun acc o -> max acc (o + window)) horizon offsets
    in
    let spec =
      match
        Darco_dispatch.spec_of_string ~jobs ~timeout:dispatch_timeout
          ~retries:dispatch_retries backend_str
      with
      | Ok s -> s
      | Error e ->
        Printf.eprintf "%s\n" e;
        exit 2
    in
    (* the dispatch lifecycle is observable through the ordinary trace sink,
       and the span timeline through the Chrome collector *)
    let bus = Darco_obs.Bus.create () in
    with_trace bus sim.trace @@ fun _trace_oc ->
    let chrome =
      Option.map (fun _ -> Darco_obs.Chrome.attach bus) chrome_out
    in
    (* sweep-shape distributions, fed straight off the bus *)
    let h_frame = Darco_obs.Hist.create () in
    let h_ckpt = Darco_obs.Hist.create () in
    let h_retry = Darco_obs.Hist.create () in
    let h_detail = Darco_obs.Hist.create () in
    (* detail time is the duration of each "running" span — measured where
       the window actually ran (worker-side stamps replay on this bus), so
       it works identically for the local and remote backends *)
    let running = Hashtbl.create 16 in
    Darco_obs.Bus.attach bus ~name:"sweep-hists" (fun ~at:_ ev ->
        match ev with
        | Darco_obs.Event.Dispatch_sent { bytes; _ } ->
          Darco_obs.Hist.add h_frame bytes
        | Darco_obs.Event.Ckpt_push { bytes; _ } -> Darco_obs.Hist.add h_ckpt bytes
        | Darco_obs.Event.Dispatch_retry { delay; _ } ->
          Darco_obs.Hist.add h_retry (int_of_float (delay *. 1000.))
        | Darco_obs.Event.Span_begin { span = "running"; corr; host; wall_us; _ }
          ->
          Hashtbl.replace running (host, corr) wall_us
        | Darco_obs.Event.Span_end { span = "running"; corr; host; wall_us; _ }
          -> (
          match Hashtbl.find_opt running (host, corr) with
          | Some t0 ->
            Hashtbl.remove running (host, corr);
            Darco_obs.Hist.add h_detail (wall_us - t0)
          | None -> ())
        | _ -> ());
    let store = Darco_sampling.Store.create ?dir:store_dir () in
    let backend = Darco_dispatch.backend ~bus ~fallback_jobs:jobs ~store spec in
    Printf.printf
      "== %s: functional fast-forward to %d, checkpoint every %d ==\n%!"
      entry.name horizon interval;
    let t0 = Unix.gettimeofday () in
    let checkpoints =
      Driver.functional_checkpoints ?input:sim.input ~seed:sim.seed ~interval
        ~horizon program
    in
    Printf.printf "%d checkpoints in %.2fs; %d detailed windows via %s\n%!"
      (List.length checkpoints)
      (Unix.gettimeofday () -. t0)
      (List.length offsets) backend.Sweep.Backend.name;
    let mk_work off =
      Work.of_window_stored ~store ~checkpoints
        ~label:(Printf.sprintf "%s@%d" entry.name off)
        ~offset:off ~window ~warmup
    in
    let plan_cfg =
      {
        Plan.kind = plan_kind;
        ci_target;
        max_windows;
        round_size;
        seed = Plan.default.Plan.seed;
      }
    in
    (* a fixed plan with no confidence target and no budget cannot deviate
       from the exhaustive one-shot sweep, so take the one-shot path (and
       its exact document bytes) rather than spinning the planner *)
    let degenerate =
      plan_kind = Plan.Fixed && ci_target <= 0.0 && max_windows <= 0
    in
    (* write the trace even when the sweep dies — a partial timeline of a
       failed sweep is the most useful trace of all *)
    Fun.protect
      ~finally:(fun () ->
        match (chrome, chrome_out) with
        | Some c, Some path ->
          Darco_obs.Chrome.write_file c path;
          Printf.printf "wrote %s\n" path
        | _ -> ())
    @@ fun () ->
    let rows, plan_summary =
      if degenerate then begin
        let works = List.map mk_work offsets in
        Printf.printf "%d distinct checkpoints referenced by %d windows\n%!"
          (Darco_sampling.Store.count store)
          (List.length works);
        (List.combine offsets (Sweep.run backend works), None)
      end
      else begin
        (* round-based planning: each round's completed IPCs feed the
           planner, which picks the next windows where the variance is *)
        let ix = Driver.index_of checkpoints in
        let phase_of off =
          Snapshot.guest_eip (Driver.nearest_ix ix off).Driver.snapshot
        in
        let planner = Plan.create ~bus plan_cfg ~candidates:offsets ~phase_of in
        let recorded = ref 0 in
        let next _round completed =
          let fresh = List.filteri (fun i _ -> i >= !recorded) completed in
          recorded := List.length completed;
          Plan.record planner
            (List.filter_map
               (fun ((w : Work.t), (r : Sweep.result)) ->
                 match r.Sweep.outcome with
                 | Sweep.Ok json ->
                   Option.map
                     (fun ipc -> (w.Work.offset, ipc))
                     (json_num (Darco_obs.Jsonx.member "ipc" json))
                 | Sweep.Failed _ -> None)
               fresh);
          List.map mk_work (Plan.next planner)
        in
        let pairs = Sweep.run_stream backend ~next in
        (match Plan.stopped planner with
        | Some reason ->
          Printf.printf "plan: stopped on %s after %d windows in %d rounds\n%!"
            (Plan.stop_reason reason) (List.length pairs)
            (Plan.rounds planner)
        | None -> ());
        let summary =
          {
            Report.plan_name =
              (match plan_kind with
              | Plan.Fixed -> "fixed"
              | Plan.Adaptive -> "adaptive");
            windows_used = List.length pairs;
            ci_target;
            ci_target_met = Plan.ci_target_met planner;
            rounds = Plan.rounds planner;
          }
        in
        ( List.map (fun ((w : Work.t), r) -> (w.Work.offset, r)) pairs,
          Some summary )
      end
    in
    (* offsets that actually ran, ascending — the verify loop below
       replays them on one sequential controller *)
    let offsets = List.sort compare (List.map fst rows) in
    (* optional verification: the same windows under uninterrupted detailed
       simulation (the authoritative answer sampling approximates) *)
    let full_ipcs =
      if not verify then []
      else begin
        Printf.printf "verifying against full detailed simulation...\n%!";
        let vbus = Darco_obs.Bus.create () in
        let pipe = attach_timing vbus in
        (* fine slices, so window edges match the sampled measurement *)
        let cfg = { Darco.Config.default with slice_fuel = 2_000; engine } in
        let ctl =
          Darco.Controller.create ~cfg ~bus:vbus ?input:sim.input ~seed:sim.seed
            program
        in
        List.map
          (fun off ->
            ignore (Darco.Controller.run ~max_insns:off ctl);
            let bi = Darco_timing.Pipeline.instructions pipe in
            let bc = Darco_timing.Pipeline.cycles pipe in
            ignore (Darco.Controller.run ~max_insns:(off + window) ctl);
            let di = Darco_timing.Pipeline.instructions pipe - bi in
            let dc = Darco_timing.Pipeline.cycles pipe - bc in
            (off, if dc = 0 then 0.0 else float_of_int di /. float_of_int dc))
          offsets
      end
    in
    (* per-row progress printing; the JSON document itself is assembled by
       Report.sweep_json, shared verbatim with the campaign service so a
       served sweep's DONE payload is byte-identical to this command's *)
    List.iter
      (fun (off, (r : Sweep.result)) ->
        match r.outcome with
        | Sweep.Failed reason -> Printf.printf "%-28s FAILED: %s\n" r.label reason
        | Sweep.Ok json -> (
          let ipc =
            Option.value ~default:0.0 (json_num (Darco_obs.Jsonx.member "ipc" json))
          in
          match List.assoc_opt off full_ipcs with
          | None -> Printf.printf "%-28s IPC %.3f\n" r.label ipc
          | Some full ->
            let err = Darco_util.Stats_math.relative_error ipc full in
            Printf.printf "%-28s IPC %.3f vs %.3f full (error %.2f%%)\n" r.label
              ipc full (100. *. err)))
      rows;
    let rep =
      Report.sweep_json ~benchmark:entry.name ~seed:sim.seed ~interval ~window
        ~warmup ~full_ipcs ?plan:plan_summary rows
    in
    (* the sweep's point estimate, with its SMARTS-style sampling error *)
    if rep.Report.n_ipc > 0 then
      Printf.printf "sweep IPC %.3f ± %.3f (95%% CI, stddev %.3f, n=%d)\n"
        rep.Report.ipc_mean rep.Report.ipc_ci95 rep.Report.ipc_stddev
        rep.Report.n_ipc;
    (* the same error-bar treatment for the power model's outputs *)
    if rep.Report.n_power > 0 then
      Printf.printf
        "sweep power %.4g ± %.2g W, EPI %.4g ± %.2g nJ, window energy %.4g ± \
         %.2g J (95%% CI, n=%d)\n"
        rep.Report.watts_mean rep.Report.watts_ci95 rep.Report.epi_nj_mean
        rep.Report.epi_nj_ci95 rep.Report.energy_j_mean rep.Report.energy_j_ci95
        rep.Report.n_power;
    Option.iter
      (fun e -> Printf.printf "average sampling error: %.2f%%\n" (100. *. e))
      rep.Report.avg_error;
    let hists =
      List.filter
        (fun (_, h) -> Darco_obs.Hist.count h > 0)
        [
          ("detail_us", h_detail);
          ("frame_bytes", h_frame);
          ("ckpt_push_bytes", h_ckpt);
          ("retry_delay_ms", h_retry);
        ]
    in
    List.iter
      (fun (name, h) ->
        Format.printf "%-16s %a@." name Darco_obs.Hist.pp h)
      hists;
    Option.iter (fun path -> write_json path rep.Report.doc) json_out;
    if rep.Report.failed then exit 1;
    match (rep.Report.avg_error, max_error) with
    | Some e, Some bound when e > bound ->
      Printf.eprintf "average sampling error %.2f%% exceeds bound %.2f%%\n"
        (100. *. e) (100. *. bound);
      exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:
         "Sampled simulation: functional fast-forward with periodic \
          checkpoints, then detailed measurement windows swept across an \
          execution backend — forked local workers, a shared-memory domain \
          pool, or remote worker daemons")
    Term.(
      const run $ Flag.bench $ Flag.scale $ Flag.sim
      $ Arg.(value & opt int 50_000 & info [ "interval" ] ~doc:"Guest instructions between functional checkpoints")
      $ Arg.(value & opt (some string) None & info [ "offsets" ] ~docv:"A,B,C" ~doc:"Explicit sample offsets (comma-separated)")
      $ Arg.(value & opt int 4 & info [ "samples" ] ~doc:"Number of evenly spaced samples (when --offsets is absent)")
      $ Arg.(value & opt int 400_000 & info [ "horizon" ] ~doc:"Span of guest execution to sample (when --offsets is absent)")
      $ Arg.(value & opt int 25_000 & info [ "window" ] ~doc:"Detailed measurement window length")
      $ Arg.(value & opt int 30_000 & info [ "warmup" ] ~doc:"Detailed warm-up before each window")
      $ Arg.(value & opt int 4 & info [ "jobs" ] ~doc:"Worker processes or domains (local/domains backends, remote fallback)")
      $ Arg.(value & opt string "local" & info [ "backend" ] ~docv:"SPEC" ~doc:"Execution backend: serial (in-process, sequential), local, local:JOBS (fork per unit), domains, domains:JOBS (shared-memory domain pool), or remote:HOST:PORT[,HOST:PORT...]")
      $ Arg.(value & opt float 60.0 & info [ "dispatch-timeout" ] ~docv:"SECONDS" ~doc:"Remote backend: per-work-unit deadline")
      $ Arg.(value & opt int 2 & info [ "dispatch-retries" ] ~docv:"N" ~doc:"Remote backend: re-dispatches per unit after a worker is lost")
      $ Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc:"Spill the sweep's content-addressed checkpoint store to $(docv)")
      $ Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the sweep results as JSON to $(docv)")
      $ Arg.(value & opt (some string) None & info [ "chrome-trace" ] ~docv:"FILE" ~doc:"Write the sweep's cross-machine span timeline as a Chrome trace-event JSON file (loadable in Perfetto)")
      $ Arg.(value & flag & info [ "verify" ] ~doc:"Also run full detailed simulation and report per-sample IPC error")
      $ Arg.(value & opt (some float) None & info [ "max-error" ] ~doc:"With --verify: exit non-zero if average error exceeds this fraction")
      $ engine_arg
      $ Arg.(value & opt (enum [ ("fixed", Plan.Fixed); ("adaptive", Plan.Adaptive) ]) Plan.Fixed & info [ "plan" ] ~docv:"KIND" ~doc:"Window planner: $(b,fixed) sweeps the offsets in order; $(b,adaptive) runs rounds, steering windows at the high-variance program phases and stopping once --ci-target is met")
      $ Arg.(value & opt float 0.0 & info [ "ci-target" ] ~docv:"FRACTION" ~doc:"Stop once the IPC CI95 half-width is within this fraction of the mean (e.g. 0.02 = ±2%); 0 disables early exit")
      $ Arg.(value & opt int 0 & info [ "max-windows" ] ~docv:"N" ~doc:"Total window budget for the planner; 0 = unlimited")
      $ Arg.(value & opt int 4 & info [ "round" ] ~docv:"N" ~doc:"Windows dispatched per planner round"))

let worker_cmd =
  let run listen quiet isolate jobs store_dir =
    if jobs < 1 then begin
      Printf.eprintf "--jobs must be at least 1\n";
      exit 2
    end;
    match Darco_dispatch.addr_of_string listen with
    | Error e ->
      Printf.eprintf "%s\n" e;
      exit 2
    | Ok { Darco_dispatch.host; port } ->
      Darco_dispatch.Worker.serve ~quiet ~isolate ~jobs ?store_dir ~host ~port
        ()
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run a sample-sweep worker daemon: accept work units (snapshot + \
          window parameters) over the dispatch TCP protocol, execute them \
          concurrently on a shared-memory domain pool (or in forked \
          children with $(b,--isolate)), and stream back per-sample JSON \
          results.  Digest-addressed units resolve through the daemon's \
          checkpoint store; each missing checkpoint is fetched from the \
          dispatcher once")
    Term.(
      const run
      $ Arg.(required & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT" ~doc:"Bind and serve on $(docv)")
      $ Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-connection log lines")
      $ Arg.(value & flag & info [ "isolate" ] ~doc:"Run each unit in a forked child instead of on the domain pool: a segfaulting or OOM-killed unit then loses only itself, at the price of per-unit fork overhead and copy-on-write page duplication")
      $ Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Work units to keep executing concurrently (advertised to the dispatcher)")
      $ Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc:"Spill received checkpoints to $(docv) so they survive daemon restarts"))

(* --- the campaign service ---------------------------------------------- *)

let parse_addr s =
  match Darco_dispatch.addr_of_string s with
  | Ok a -> a
  | Error e ->
    Printf.eprintf "%s\n" e;
    exit 2

let connect_flag =
  Arg.(
    value
    & opt string "127.0.0.1:9300"
    & info [ "connect" ] ~docv:"HOST:PORT" ~doc:"Campaign server address")

(* The sweep-shape flags shared by submit and fetch: same names, defaults
   and offset derivation as [sample], so a command line moves between the
   local and served worlds by swapping the verb. *)
let campaign_term =
  let mk bench scale seed input interval offsets nsamples horizon window
      warmup ci_target =
    let offsets =
      match offsets with
      | Some s ->
        List.map
          (fun tok ->
            match int_of_string_opt (String.trim tok) with
            | Some v -> v
            | None -> invalid_arg ("bad offset: " ^ tok))
          (String.split_on_char ',' s)
      | None -> List.init nsamples (fun i -> (i + 1) * horizon / (nsamples + 1))
    in
    Darco_serve.Campaign.normalize
      {
        Darco_serve.Campaign.bench;
        scale;
        seed;
        input;
        interval;
        horizon;
        offsets;
        window;
        warmup;
        ci_target =
          (match ci_target with Some c when c > 0.0 -> Some c | _ -> None);
      }
  in
  Term.(
    const mk $ Flag.bench $ Flag.scale $ Flag.seed $ Flag.input
    $ Arg.(value & opt int 50_000 & info [ "interval" ] ~doc:"Guest instructions between functional checkpoints")
    $ Arg.(value & opt (some string) None & info [ "offsets" ] ~docv:"A,B,C" ~doc:"Explicit sample offsets (comma-separated)")
    $ Arg.(value & opt int 4 & info [ "samples" ] ~doc:"Number of evenly spaced samples (when --offsets is absent)")
    $ Arg.(value & opt int 400_000 & info [ "horizon" ] ~doc:"Span of guest execution to sample (when --offsets is absent)")
    $ Arg.(value & opt int 25_000 & info [ "window" ] ~doc:"Detailed measurement window length")
    $ Arg.(value & opt int 30_000 & info [ "warmup" ] ~doc:"Detailed warm-up before each window")
    $ Arg.(value & opt (some float) None & info [ "ci-target" ] ~docv:"FRACTION" ~doc:"Adaptive early exit: let the server stop the sweep once the IPC CI95 half-width is within this fraction of the mean"))

let serve_cmd =
  let run listen library workers jobs credit dispatch_timeout dispatch_retries
      budget max_submissions metrics_file metrics_interval flight flight_out
      quiet trace =
    let addr = parse_addr listen in
    let workers =
      match workers with
      | None -> []
      | Some s ->
        List.map (fun p -> parse_addr (String.trim p)) (String.split_on_char ',' s)
    in
    let bus = Darco_obs.Bus.create () in
    with_trace bus trace @@ fun _trace_oc ->
    (* same crash discipline as `run`: the ring dumps itself on a failed
       campaign window (Dispatch_done ok=false) or divergence, and we
       dump it on the way out of a daemon crash *)
    let recorder =
      if flight > 0 then
        Some (Darco_obs.Recorder.attach bus ~capacity:flight ~path:flight_out)
      else None
    in
    (try
       Darco_serve.Serve.serve ~bus ~quiet ~workers ~jobs ~credit
         ~dispatch_timeout ~dispatch_retries ?max_bytes:budget ?max_submissions
         ?metrics_file ~metrics_interval ~library
         ~host:addr.Darco_dispatch.host ~port:addr.Darco_dispatch.port ()
     with e ->
       Option.iter Darco_obs.Recorder.dump recorder;
       raise e);
    match recorder with
    | Some r when Darco_obs.Recorder.dumped r ->
      Printf.printf "flight recorder dumped to %s\n" flight_out
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent campaign service: accept sweep submissions \
          from many clients over the dispatch TCP protocol, schedule them \
          fairly onto the worker fleet (or local forks), and keep every \
          checkpoint and window result in a crash-safe content-addressed \
          artifact library — a resubmitted sweep dispatches nothing and \
          returns byte-identical JSON")
    Term.(
      const run
      $ Arg.(value & opt string "127.0.0.1:9300" & info [ "listen" ] ~docv:"HOST:PORT" ~doc:"Bind and serve on $(docv)")
      $ Arg.(required & opt (some string) None & info [ "library" ] ~docv:"DIR" ~doc:"Artifact library directory (created if missing)")
      $ Arg.(value & opt (some string) None & info [ "workers" ] ~docv:"HOST:PORT,..." ~doc:"Dispatch work units to these worker daemons (default: fork locally)")
      $ Arg.(value & opt int 4 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Concurrent local fork workers (without --workers)")
      $ Arg.(value & opt int 4 & info [ "credit" ] ~docv:"N" ~doc:"Fair-share allowance: work units each submission may occupy per scheduling round")
      $ Arg.(value & opt float 60.0 & info [ "dispatch-timeout" ] ~docv:"SECONDS" ~doc:"Remote backend: per-work-unit deadline")
      $ Arg.(value & opt int 2 & info [ "dispatch-retries" ] ~docv:"N" ~doc:"Remote backend: re-dispatches per unit after a worker is lost")
      $ Arg.(value & opt (some int) None & info [ "library-budget" ] ~docv:"BYTES" ~doc:"LRU byte budget for the library's checkpoint store")
      $ Arg.(value & opt (some int) None & info [ "max-submissions" ] ~docv:"N" ~doc:"Exit after completing $(docv) submissions (default: serve forever)")
      $ Arg.(value & opt (some string) None & info [ "metrics-file" ] ~docv:"PATH" ~doc:"Periodically dump the live metrics registry as Prometheus-style exposition text to $(docv) (atomic write-then-rename)")
      $ Arg.(value & opt float 5.0 & info [ "metrics-interval" ] ~docv:"SECONDS" ~doc:"Seconds between --metrics-file dumps")
      $ Arg.(value & opt int 0 & info [ "flight-recorder" ] ~docv:"N" ~doc:"Keep the last N events in memory; dump them as JSONL on a failed campaign window, a divergence or a daemon crash")
      $ Arg.(value & opt string "darco-serve-flight.jsonl" & info [ "flight-recorder-out" ] ~docv:"FILE" ~doc:"Where --flight-recorder dumps its ring")
      $ Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-submission log lines")
      $ Flag.trace)

let submit_cmd =
  let run connect spec timeout json_out quiet =
    let addr = parse_addr connect in
    let on_artifact ~key ~json =
      if not quiet then
        if json = "" then Printf.printf "%-36s FAILED\n%!" key
        else Printf.printf "%-36s done (%d bytes)\n%!" key (String.length json)
    in
    match Darco_serve.Client.submit ~timeout ~on_artifact addr spec with
    | Error e ->
      Printf.eprintf "submit failed: %s\n" e;
      exit 1
    | Ok (stats, doc) ->
      let { Darco_serve.Client.done_ = _; total; hits; dispatched } = stats in
      Printf.printf "%d windows: %d hits, %d dispatched\n" total hits
        dispatched;
      (match json_out with
      | None ->
        print_string doc;
        print_newline ()
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc doc;
            output_char oc '\n');
        Printf.printf "wrote %s\n" path)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a sweep to a campaign server and wait for the result. \
          The returned JSON document is byte-identical to what $(b,sample \
          --json) writes for the same parameters — windows already in the \
          server's artifact library are served without dispatching any \
          work")
    Term.(
      const run $ connect_flag $ campaign_term
      $ Arg.(value & opt float 3600.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Give up after $(docv)")
      $ Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the sweep document to $(docv) (default: stdout)")
      $ Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-window progress lines"))

let status_cmd =
  let run connect =
    match Darco_serve.Client.status (parse_addr connect) with
    | Error e ->
      Printf.eprintf "status failed: %s\n" e;
      exit 1
    | Ok
        ( state,
          { Darco_serve.Client.done_; total; hits; dispatched },
          { Darco_serve.Client.uptime_s; version } ) ->
      Printf.printf
        "%s: %d/%d submissions done, %d window hits, %d units dispatched\n"
        state done_ total hits dispatched;
      if version = "" then
        (* a v4 daemon never fills the tail — that absence is the
           diagnosis *)
        Printf.printf "server: pre-0.10 build (no version in STAT)\n"
      else
        Printf.printf "server: darco %s, up %ds\n" version uptime_s
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Query a campaign server's service-wide counters")
    Term.(const run $ connect_flag)

let scrape_cmd =
  let run connect =
    match Darco_serve.Client.scrape (parse_addr connect) with
    | Error e ->
      Printf.eprintf "scrape failed: %s\n" e;
      exit 1
    | Ok json -> (
      match
        Darco_obs.Registry.of_json (Darco_obs.Jsonx.parse json)
      with
      | exception Darco_obs.Jsonx.Parse_error e ->
        Printf.eprintf "scrape returned unparseable JSON: %s\n" e;
        exit 1
      | Error e ->
        Printf.eprintf "scrape returned a malformed snapshot: %s\n" e;
        exit 1
      | Ok snap -> print_string (Darco_obs.Registry.exposition snap))
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:
         "Scrape a campaign server's live metrics registry (wire v5 METR) \
          and print it as Prometheus-style exposition text — byte-identical \
          to the server's $(b,--metrics-file) dump")
    Term.(const run $ connect_flag)

let top_cmd =
  let run connect once interval =
    let addr = parse_addr connect in
    let show () =
      match Darco_serve.Top.fetch addr with
      | Error e ->
        Printf.eprintf "top failed: %s\n" e;
        exit 1
      | Ok view -> print_string (Darco_serve.Top.render view)
    in
    if once then show ()
    else
      while true do
        (* clear screen + home, as top(1) does *)
        print_string "\027[2J\027[H";
        show ();
        flush stdout;
        Unix.sleepf interval
      done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a campaign server: per-campaign window progress \
          (with planner CI state), per-worker health and the library \
          hit-rate, refreshed every --interval seconds.  With --once, \
          print one snapshot and exit (for scripts and CI)")
    Term.(
      const run $ connect_flag
      $ Arg.(value & flag & info [ "once" ] ~doc:"Print one snapshot and exit")
      $ Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period"))

let fetch_cmd =
  let run connect spec offset json_out =
    match Darco_serve.Client.fetch (parse_addr connect) spec ~offset with
    | Error e ->
      Printf.eprintf "fetch failed: %s\n" e;
      exit 1
    | Ok None ->
      Printf.eprintf "no artifact for offset %d in the server's library\n"
        offset;
      exit 1
    | Ok (Some json) -> (
      match json_out with
      | None ->
        print_string json;
        print_newline ()
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc json;
            output_char oc '\n');
        Printf.printf "wrote %s\n" path)
  in
  Cmd.v
    (Cmd.info "fetch"
       ~doc:
         "Fetch one finished window of a campaign from a server's artifact \
          library without submitting any work")
    Term.(
      const run $ connect_flag $ campaign_term
      $ Arg.(required & opt (some int) None & info [ "offset" ] ~docv:"N" ~doc:"The window's start offset")
      $ Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the window JSON to $(docv) (default: stdout)"))

let validate_trace_cmd =
  let run file =
    match Darco_obs.Chrome.validate_file file with
    | Ok () -> Printf.printf "%s: valid trace-event JSON\n" file
    | Error e ->
      Printf.eprintf "%s: INVALID: %s\n" file e;
      exit 1
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:
         "Validate a Chrome trace-event JSON file (as written by sample \
          --chrome-trace): well-formed, required fields present, every span \
          begin matched by its end in nesting order")
    Term.(
      const run
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"TRACE.json" ~doc:"Trace file to check"))

let speed_cmd =
  let run bench scale insns seed engine =
    let entry = Darco_workloads.Registry.find bench in
    let cfg = { Darco.Config.default with engine } in
    let s = Darco_studies.Speed.measure ~cfg ~insns (entry.build ~scale ()) ~seed in
    Format.printf "%a@." Darco_studies.Speed.pp s
  in
  Cmd.v (Cmd.info "speed" ~doc:"Measure emulation/simulation throughput")
    Term.(
      const run $ Flag.bench $ Flag.scale
      $ Arg.(value & opt int 300_000 & info [ "insns" ] ~doc:"Guest instructions")
      $ Flag.seed $ engine_arg)

let () =
  let info = Cmd.info "darco" ~doc:"DARCO co-designed processor simulation infrastructure" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; suite_cmd; checkpoint_cmd; resume_cmd; sample_cmd;
            worker_cmd; serve_cmd; submit_cmd; status_cmd; fetch_cmd;
            scrape_cmd; top_cmd; validate_trace_cmd; disasm_cmd; trace_cmd;
            regions_cmd; debug_cmd; speed_cmd ]))
