open Darco_timing
module Model = Darco_power.Model
module Code = Darco_host.Code

let run_stream n insn_of =
  let p = Pipeline.create Tconfig.default in
  for i = 0 to n - 1 do
    Pipeline.step p
      {
        Darco_host.Emulator.host_pc = 0xC0000000 + (4 * i);
        insn = insn_of i;
        mem_access = None;
        branch = None;
      }
  done;
  Pipeline.events p

let test_report_consistency () =
  let e = run_stream 2000 (fun i -> Code.Li (20, i)) in
  let r = Model.evaluate e in
  Alcotest.(check (float 1e-12)) "total = dynamic + leakage" r.total_joules
    (r.dynamic_joules +. r.leakage_joules);
  Alcotest.(check bool) "positive energy" true (r.total_joules > 0.0);
  Alcotest.(check (float 1e-6)) "power = energy/time" r.avg_watts
    (r.total_joules /. r.seconds);
  Alcotest.(check bool) "EPI positive" true (r.epi_nj > 0.0)

let test_fp_costs_more_than_int () =
  let ei = run_stream 2000 (fun _ -> Code.Bin (Add, 20, 21, 22)) in
  let ef = run_stream 2000 (fun _ -> Code.Fbin (Fmul, 8, 9, 10)) in
  let ri = Model.evaluate ei and rf = Model.evaluate ef in
  Alcotest.(check bool) "FP dynamic energy higher" true
    (rf.dynamic_joules > ri.dynamic_joules)

let test_more_work_more_energy () =
  let e1 = run_stream 1000 (fun i -> Code.Li (20, i)) in
  let e2 = run_stream 4000 (fun i -> Code.Li (20, i)) in
  Alcotest.(check bool) "monotone" true
    ((Model.evaluate e2).total_joules > (Model.evaluate e1).total_joules)

let test_perf_per_watt () =
  let e = run_stream 3000 (fun i -> Code.Li (20, i)) in
  let r = Model.evaluate e in
  let ppw = Model.perf_per_watt e r in
  Alcotest.(check bool) "positive" true (ppw > 0.0);
  (* identity: MIPS/W * W * s = M-instructions *)
  let mips = float_of_int e.e_insns /. 1e6 /. r.seconds in
  Alcotest.(check (float 1e-6)) "definition" (mips /. r.avg_watts) ppw

let test_leakage_scales_with_time () =
  let coeffs = { Model.default_coefficients with leakage_watts = 1.0 } in
  let e_fast = run_stream 1000 (fun i -> Code.Li (20 + (i mod 8), i)) in
  let e_slow = run_stream 1000 (fun _ -> Code.Bini (Add, 20, 20, 1)) in
  let rf = Model.evaluate ~coeffs e_fast and rs = Model.evaluate ~coeffs e_slow in
  Alcotest.(check bool) "serial chain leaks more" true
    (rs.leakage_joules > rf.leakage_joules)

let () =
  Alcotest.run "power"
    [
      ( "model",
        [
          Alcotest.test_case "report consistency" `Quick test_report_consistency;
          Alcotest.test_case "fp > int" `Quick test_fp_costs_more_than_int;
          Alcotest.test_case "monotone in work" `Quick test_more_work_more_energy;
          Alcotest.test_case "perf/W" `Quick test_perf_per_watt;
          Alcotest.test_case "leakage vs time" `Quick test_leakage_scales_with_time;
        ] );
    ]
