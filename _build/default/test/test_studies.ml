(* The speed and warm-up studies, on reduced inputs. *)

let program = lazy ((Darco_workloads.Registry.find "462.libquantum").build ())

let test_speed_measure () =
  let s = Darco_studies.Speed.measure ~insns:60_000 (Lazy.force program) ~seed:1 in
  Alcotest.(check bool) "guest emulated > 0" true (s.guest_mips_emulated > 0.0);
  Alcotest.(check bool) "host emulated > 0" true (s.host_mips_emulated > 0.0);
  Alcotest.(check bool) "timing slower than functional" true
    (s.guest_mips_timing < s.guest_mips_emulated)

let test_warmup_study () =
  let report =
    Darco_studies.Warmup.run_study ~program:(Lazy.force program) ~seed:1
      ~sample_offsets:[ 200_000; 320_000 ] ~window:15_000
      ~baseline_warmup:150_000 ()
  in
  Alcotest.(check int) "two samples" 2 (List.length report.samples);
  Alcotest.(check bool) "error small" true (report.avg_error < 0.15);
  Alcotest.(check bool) "cost reduced" true (report.speedup > 1.0);
  List.iter
    (fun (s : Darco_studies.Warmup.sample_result) ->
      Alcotest.(check bool) "ipc positive" true (s.ipc_sampled > 0.0 && s.ipc_full > 0.0))
    report.samples

let test_scaled_thresholds_warm_faster () =
  (* with downscaled thresholds the same warm-up window reaches SBM much
     earlier: compare startup metrics *)
  let cfg = Darco.Config.default in
  let fast = { cfg with bb_threshold = 1; sb_threshold = 4 } in
  let run c =
    let ctl = Darco.Controller.create ~cfg:c ~seed:1 (Lazy.force program) in
    ignore (Darco.Controller.run ~max_insns:50_000 ctl);
    match (Darco.Controller.stats ctl).startup_insns with Some n -> n | None -> max_int
  in
  Alcotest.(check bool) "scaling accelerates TOL warm-up" true (run fast < run cfg)

let () =
  Alcotest.run "studies"
    [
      ( "speed",
        [ Alcotest.test_case "measurement" `Quick test_speed_measure ] );
      ( "warmup",
        [
          Alcotest.test_case "study" `Slow test_warmup_study;
          Alcotest.test_case "threshold scaling" `Quick test_scaled_thresholds_warm_faster;
        ] );
    ]
