open Darco_guest
open Darco

(* Whole-system differential validation: the co-designed component (TOL +
   host emulator) against the authoritative x86 component, with
   architectural AND memory state compared at every execution slice. *)

let run_validated ?(cfg = Config.quick) ?input ?max_insns program seed =
  let cfg = { cfg with slice_fuel = 2_000 } in
  let ctl = Controller.create ~cfg ?input ~seed program in
  ctl.validate_at_checkpoints <- true;
  ctl.validate_memory <- true;
  (Controller.run ?max_insns ctl, ctl)

let expect_done what (result, _ctl) =
  match result with
  | `Done -> ()
  | `Limit -> Alcotest.failf "%s: hit instruction limit" what
  | `Diverged d ->
    Alcotest.failf "%s: diverged at %d:\n%s" what d.Controller.at_retired
      (String.concat "\n" d.Controller.details)

let prop_random_programs =
  QCheck.Test.make ~name:"random structured programs validate end-to-end"
    ~count:60 QCheck.small_int (fun seed ->
      let program = Tgen.random_program ~seed ~chunks:6 () in
      match run_validated program seed with
      | `Done, _ -> true
      | `Limit, _ -> false
      | `Diverged d, _ ->
        QCheck.Test.fail_reportf "seed %d diverged at %d:\n%s" seed d.Controller.at_retired
          (String.concat "\n" d.Controller.details))

let prop_random_programs_default_thresholds =
  QCheck.Test.make ~name:"random programs validate with default thresholds"
    ~count:25 QCheck.small_int (fun seed ->
      let program = Tgen.random_program ~seed:(seed + 500) ~chunks:8 () in
      match run_validated ~cfg:Config.default program seed with
      | `Done, _ -> true
      | `Limit, _ -> false
      | `Diverged d, _ ->
        QCheck.Test.fail_reportf "seed %d diverged at %d:\n%s" seed d.Controller.at_retired
          (String.concat "\n" d.Controller.details))

let prop_outputs_match_reference =
  QCheck.Test.make ~name:"co-designed output = plain emulation output" ~count:30
    QCheck.small_int (fun seed ->
      let program = Tgen.random_program ~seed:(seed + 900) ~chunks:5 () in
      let plain = Interp_ref.boot ~seed:3 program in
      ignore (Interp_ref.run_to_halt plain);
      let result, ctl = run_validated program 3 in
      (match result with `Done -> () | _ -> QCheck.Test.fail_report "did not finish");
      Interp_ref.output plain = Controller.output ctl
      && plain.exit_code = Controller.exit_code ctl)

(* --- tiny code cache: mid-run flushes must stay correct ----------------- *)

let test_flush_stress () =
  (* a real workload with many regions, through a drastically undersized
     code cache: repeated full flushes must never affect correctness *)
  let cfg = { Config.default with code_cache_capacity = 2_000 } in
  let e = Darco_workloads.Registry.find "483.xalancbmk" in
  let result, ctl = run_validated ~cfg ~max_insns:60_000 (e.build ()) 42 in
  (match result with
  | `Diverged d ->
    Alcotest.failf "diverged at %d: %s" d.Controller.at_retired
      (String.concat ";" d.Controller.details)
  | `Done | `Limit -> ());
  Alcotest.(check bool) "flushes actually happened" true
    ((Controller.stats ctl).code_cache_flushes > 0);
  Alcotest.(check bool) "validations ran" true ((Controller.stats ctl).validations > 5)

(* --- speculation failure recovery --------------------------------------- *)

let test_assert_failure_recovery () =
  (* A branch that is heavily biased during training, then flips: the
     superblock assert fails and the TOL must recover and eventually
     rebuild without asserts. *)
  let a = Asm.create ~base:0x1000 () in
  (* for i in 2000 down to 1: if i > 400 then path A else path B *)
  Asm.insn a (Mov (Reg EAX, Imm 0));
  Asm.insn a (Mov (Reg ECX, Imm 2000));
  Asm.label a "head";
  Asm.insn a (Cmp (Reg ECX, Imm 400));
  Asm.jcc a LE "low";
  Asm.insn a (Alu (Add, Reg EAX, Imm 3));
  Asm.jmp a "next";
  Asm.label a "low";
  Asm.insn a (Alu (Add, Reg EAX, Imm 7));
  Asm.label a "next";
  Asm.insn a (Dec (Reg ECX));
  Asm.jcc a NE "head";
  Asm.insn a (Mov (Reg EBX, Reg EAX));
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let program = Asm.assemble a in
  let result, ctl = run_validated ~cfg:Config.quick program 1 in
  expect_done "biased-then-flipped branch" (result, ctl);
  let st = Controller.stats ctl in
  Alcotest.(check bool) "asserts rolled back" true (st.assert_rollbacks > 0);
  Alcotest.(check (option int)) "exact result"
    (Some ((1600 * 3) + (400 * 7)))
    (Controller.exit_code ctl)

let test_alias_failure_recovery () =
  (* genuine store-to-load aliasing through different address expressions *)
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EBX, Imm 0));
  Asm.insn a (Mov (Reg EBP, Imm 0x5000));
  Asm.insn a (Mov (Reg ECX, Imm 3000));
  Asm.label a "loop";
  Asm.insn a (Mov (Mem { base = None; index = None; disp = 0x5000 }, Reg ECX));
  Asm.insn a (Mov (Reg EAX, Mem { base = Some EBP; index = None; disp = 0 }));
  Asm.insn a (Alu (Add, Reg EBX, Reg EAX));
  Asm.insn a (Dec (Reg ECX));
  Asm.jcc a NE "loop";
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let program = Asm.assemble a in
  let result, ctl = run_validated ~cfg:Config.default program 1 in
  expect_done "aliasing loop" (result, ctl);
  ignore (Controller.stats ctl)

(* --- failure injection + debug toolchain -------------------------------- *)

let faulty_program () =
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EBX, Imm 0));
  Asm.insn a (Mov (Reg EBP, Imm 0x5000));
  Asm.insn a (Mov (Reg ECX, Imm 4000));
  Asm.label a "loop";
  Asm.insn a (Mov (Mem { base = None; index = None; disp = 0x5000 }, Reg ECX));
  Asm.insn a (Mov (Reg EAX, Mem { base = Some EBP; index = None; disp = 0 }));
  Asm.insn a (Alu (Add, Reg EBX, Reg EAX));
  Asm.insn a (Dec (Reg ECX));
  Asm.jcc a NE "loop";
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  Asm.assemble a

let test_debug_healthy () =
  let r = Debug.investigate ~seed:42 (faulty_program ()) in
  Alcotest.(check bool) "no divergence" false r.diverged

let test_debug_finds_cse_bug () =
  let cfg = { Config.default with inject_fault = Opt_drop_store } in
  let r = Debug.investigate ~cfg ~seed:42 (faulty_program ()) in
  Alcotest.(check bool) "diverged" true r.diverged;
  Alcotest.(check bool) "localized" true (r.first_divergence <> None);
  Alcotest.(check (option string)) "culprit"
    (Some "common-subexpression elimination") r.culprit

let test_debug_finds_sched_bug () =
  let cfg = { Config.default with inject_fault = Sched_break_dep } in
  let r = Debug.investigate ~cfg ~seed:42 (faulty_program ()) in
  Alcotest.(check bool) "diverged" true r.diverged;
  Alcotest.(check (option string)) "culprit" (Some "memory speculation") r.culprit

let test_validation_catches_injected_fault () =
  let cfg = { Config.quick with inject_fault = Opt_drop_store } in
  match run_validated ~cfg (faulty_program ()) 42 with
  | `Diverged _, _ -> ()
  | (`Done | `Limit), _ -> Alcotest.fail "the corrupted translation went unnoticed"

(* --- synchronization events --------------------------------------------- *)

let test_syscall_events_and_input () =
  (* read input, transform, write output *)
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EBX, Imm 0));
  Asm.insn a (Mov (Reg ECX, Imm 0x3000));
  Asm.insn a (Mov (Reg EDX, Imm 8));
  Asm.insn a (Mov (Reg EAX, Imm 3));
  Asm.insn a Syscall;
  (* uppercase -> lowercase-ish transform: add 1 to each byte *)
  Asm.insn a (Mov (Reg ESI, Imm 0));
  Asm.insn a (Mov (Reg ECX, Imm 8));
  Asm.label a "loop";
  Asm.insn a (Movx (W8, false, EAX, { base = Some ESI; index = None; disp = 0x3000 }));
  Asm.insn a (Inc (Reg EAX));
  Asm.insn a (Movw (W8, { base = Some ESI; index = None; disp = 0x3000 }, EAX));
  Asm.insn a (Inc (Reg ESI));
  Asm.insn a (Dec (Reg ECX));
  Asm.jcc a NE "loop";
  Asm.insn a (Mov (Reg EBX, Imm 1));
  Asm.insn a (Mov (Reg ECX, Imm 0x3000));
  Asm.insn a (Mov (Reg EDX, Imm 8));
  Asm.insn a (Mov (Reg EAX, Imm 4));
  Asm.insn a Syscall;
  Asm.insn a (Mov (Reg EBX, Imm 0));
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let program = Asm.assemble a in
  let result, ctl = run_validated ~input:"HALFWORD" program 5 in
  expect_done "io program" (result, ctl);
  Alcotest.(check string) "transformed output" "IBMGXPSE" (Controller.output ctl);
  Alcotest.(check bool) "syscalls serviced" true ((Controller.stats ctl).syscalls >= 3)

let test_page_requests_counted () =
  let program = Tgen.random_program ~seed:77 ~chunks:4 () in
  let result, ctl = run_validated program 77 in
  expect_done "pages" (result, ctl);
  Alcotest.(check bool) "data requests happened" true
    ((Controller.stats ctl).page_requests > 0)

let test_create_at_matches () =
  (* starting mid-program yields the same final state as from the start *)
  let program = Tgen.random_program ~seed:31 ~chunks:5 () in
  let full = Interp_ref.boot ~seed:2 program in
  ignore (Interp_ref.run_to_halt full);
  let ctl = Controller.create_at ~cfg:Config.quick ~seed:2 program ~start:5_000 in
  (match Controller.run ctl with
  | `Done -> ()
  | `Diverged d -> Alcotest.failf "diverged: %s" (String.concat ";" d.Controller.details)
  | `Limit -> Alcotest.fail "limit");
  Alcotest.(check (option int)) "same exit code" full.exit_code (Controller.exit_code ctl)

let test_limit_stops () =
  let program = Tgen.random_program ~seed:5 ~chunks:8 () in
  let cfg = { Config.quick with slice_fuel = 100 } in
  let ctl = Controller.create ~cfg ~seed:5 program in
  match Controller.run ~max_insns:1_000 ctl with
  | `Limit -> Alcotest.(check bool) "stopped promptly" true (Tol.retired ctl.co < 5_000)
  | `Done -> () (* tiny program; fine *)
  | `Diverged _ -> Alcotest.fail "diverged"

(* --- TOL statistics sanity ----------------------------------------------- *)

let test_stats_consistency () =
  let program = Tgen.random_program ~seed:123 ~chunks:8 () in
  let result, ctl = run_validated program 123 in
  expect_done "stats run" (result, ctl);
  let st = Controller.stats ctl in
  Alcotest.(check bool) "all modes used" true
    (st.guest_im > 0 && st.guest_bbm > 0);
  Alcotest.(check bool) "overhead positive" true (Stats.total_overhead st > 0);
  Alcotest.(check bool) "host app stream consistent" true
    (Stats.host_app_total st = st.host_app_bbm + st.host_app_sbm);
  let im, bbm, sbm = Stats.mode_fractions st in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0 (im +. bbm +. sbm)

let test_startup_metric () =
  let e = Darco_workloads.Registry.find "429.mcf" in
  let ctl = Controller.create ~seed:42 (e.build ()) in
  ignore (Controller.run ~max_insns:100_000 ctl);
  match (Controller.stats ctl).startup_insns with
  | Some n -> Alcotest.(check bool) "startup recorded" true (n > 0)
  | None -> Alcotest.fail "no SBM reached in 100k insns"

let () =
  Alcotest.run "system"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_random_programs;
          QCheck_alcotest.to_alcotest prop_random_programs_default_thresholds;
          QCheck_alcotest.to_alcotest prop_outputs_match_reference;
        ] );
      ( "speculation",
        [
          Alcotest.test_case "assert failure recovery" `Quick test_assert_failure_recovery;
          Alcotest.test_case "alias failure recovery" `Quick test_alias_failure_recovery;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "healthy" `Quick test_debug_healthy;
          Alcotest.test_case "validation catches fault" `Quick
            test_validation_catches_injected_fault;
          Alcotest.test_case "bisects to CSE" `Quick test_debug_finds_cse_bug;
          Alcotest.test_case "bisects to mem-speculation" `Quick test_debug_finds_sched_bug;
        ] );
      ( "events",
        [
          Alcotest.test_case "syscalls + input" `Quick test_syscall_events_and_input;
          Alcotest.test_case "page requests" `Quick test_page_requests_counted;
          Alcotest.test_case "create_at" `Quick test_create_at_matches;
          Alcotest.test_case "instruction limit" `Quick test_limit_stops;
        ] );
      ( "stress",
        [ Alcotest.test_case "code cache flushes" `Quick test_flush_stress ] );
      ( "stats",
        [
          Alcotest.test_case "consistency" `Quick test_stats_consistency;
          Alcotest.test_case "startup metric" `Quick test_startup_metric;
        ] );
    ]
