open Darco_guest
open Darco

(* Edge cases across the stack: page-straddling code, interpreter-only
   instructions inside hot loops, superblock formation limits, IBTC
   collisions, degenerate configurations. *)

let run_validated ?(cfg = Config.quick) ?input program seed =
  let cfg = { cfg with slice_fuel = 1_000 } in
  let ctl = Controller.create ~cfg ?input ~seed program in
  ctl.validate_at_checkpoints <- true;
  ctl.validate_memory <- true;
  match Controller.run ctl with
  | `Done -> ctl
  | `Limit -> Alcotest.fail "limit"
  | `Diverged d ->
    Alcotest.failf "diverged at %d: %s" d.Controller.at_retired
      (String.concat "; " d.Controller.details)

let test_code_straddles_pages () =
  (* place the hot loop so instructions cross the 0x2000 page boundary *)
  let a = Asm.create ~base:0x1FE0 () in
  Asm.insn a (Mov (Reg EAX, Imm 0));
  Asm.insn a (Mov (Reg ECX, Imm 300));
  Asm.label a "loop";
  Asm.insn a (Alu (Add, Reg EAX, Reg ECX));
  Asm.insn a (Alu (Xor, Reg EAX, Imm 0x5A5A));
  Asm.insn a (Dec (Reg ECX));
  Asm.jcc a NE "loop";
  Asm.insn a (Mov (Reg EBX, Reg EAX));
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let p = Asm.assemble a in
  let plain = Interp_ref.boot ~seed:1 p in
  ignore (Interp_ref.run_to_halt plain);
  let ctl = run_validated p 1 in
  Alcotest.(check (option int)) "same result" plain.exit_code (Controller.exit_code ctl)

let test_rep_inside_hot_loop () =
  (* a REP MOVS inside a hot loop: the block is split around the
     interpreter-only instruction; Exit_interp fires every iteration *)
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EBX, Imm 0));
  Asm.insn a (Mov (Reg EDX, Imm 200));
  Asm.label a "loop";
  Asm.insn a (Mov (Reg ESI, Imm 0x3000));
  Asm.insn a (Mov (Reg EDI, Imm 0x3400));
  Asm.insn a (Mov (Reg ECX, Imm 16));
  Asm.insn a (Str (Movs, W32, Rep));
  Asm.insn a (Mov (Reg EAX, Mem { base = None; index = None; disp = 0x3400 }));
  Asm.insn a (Alu (Add, Reg EBX, Reg EAX));
  Asm.insn a (Inc (Mem { base = None; index = None; disp = 0x3000 }));
  Asm.insn a (Dec (Reg EDX));
  Asm.jcc a NE "loop";
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let p = Asm.assemble a in
  let ctl = run_validated p 2 in
  let st = Controller.stats ctl in
  Alcotest.(check (option int)) "sum of 0..199 offset" (Some (200 * 199 / 2))
    (Controller.exit_code ctl);
  (* the REP instructions stayed in the interpreter *)
  Alcotest.(check bool) "IM share nontrivial" true (st.guest_im > 200)

let test_superblock_limits () =
  (* a long chain of fall-through blocks: the superblock must stop at the
     configured instruction budget *)
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EBX, Imm 0));
  Asm.insn a (Mov (Reg ECX, Imm 400));
  Asm.label a "loop";
  for _ = 1 to 120 do
    Asm.insn a (Alu (Add, Reg EBX, Imm 1))
  done;
  Asm.insn a (Dec (Reg ECX));
  Asm.jcc a NE "loop";
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let p = Asm.assemble a in
  let cfg = { Config.quick with sb_max_insns = 40; unroll_factor = 1 } in
  let ctl = run_validated ~cfg p 1 in
  Alcotest.(check (option int)) "computation right" (Some (400 * 120))
    (Controller.exit_code ctl)

let test_interp_only_configuration () =
  (* thresholds at infinity: everything interpreted, still correct *)
  let p = Tgen.random_program ~seed:8 ~chunks:4 () in
  let plain = Interp_ref.boot ~seed:4 p in
  ignore (Interp_ref.run_to_halt plain);
  let cfg = { Config.default with bb_threshold = max_int } in
  let ctl = run_validated ~cfg p 4 in
  let st = Controller.stats ctl in
  Alcotest.(check int) "nothing translated" 0 st.bb_translations;
  Alcotest.(check (option int)) "same exit" plain.exit_code (Controller.exit_code ctl)

let test_ibtc_collisions () =
  (* many indirect targets with a 4-entry IBTC: correctness with constant
     eviction *)
  let a = Asm.create ~base:0x1000 () in
  let n = 16 in
  let targets = List.init n (fun k -> Printf.sprintf "t%d" k) in
  Asm.insn a (Mov (Reg EBX, Imm 0));
  Asm.insn a (Mov (Reg EDX, Imm 600));
  Asm.label a "loop";
  Asm.insn a (Mov (Reg EAX, Reg EDX));
  Asm.insn a (Alu (And, Reg EAX, Imm (n - 1)));
  Asm.jmp_table a "tbl" EAX;
  Asm.align a 4;
  Asm.label a "tbl";
  List.iter (fun t -> Asm.dword_label a t) targets;
  List.iteri
    (fun k t ->
      Asm.label a t;
      Asm.insn a (Alu (Add, Reg EBX, Imm (k + 1)));
      Asm.jmp a "join")
    targets;
  Asm.label a "join";
  Asm.insn a (Dec (Reg EDX));
  Asm.jcc a NE "loop";
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let p = Asm.assemble a in
  let cfg = { Config.quick with ibtc_bits = 2 } in
  let ctl = run_validated ~cfg p 9 in
  let st = Controller.stats ctl in
  Alcotest.(check bool) "misses under collision" true (st.ibtc_misses > 0);
  let expected = ref 0 in
  for d = 1 to 600 do
    expected := !expected + (d land (n - 1)) + 1
  done;
  Alcotest.(check (option int)) "dispatch sums right" (Some !expected)
    (Controller.exit_code ctl)

let test_sub_one_counted_loop_unrolls () =
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EAX, Imm 0));
  Asm.insn a (Mov (Reg EDI, Imm 500));
  Asm.label a "loop";
  Asm.insn a (Alu (Add, Reg EAX, Reg EDI));
  Asm.insn a (Alu (Sub, Reg EDI, Imm 1));
  Asm.jcc a NE "loop";
  Asm.insn a (Mov (Reg EBX, Reg EAX));
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let p = Asm.assemble a in
  let ctl = run_validated p 1 in
  let st = Controller.stats ctl in
  Alcotest.(check bool) "unrolled" true (st.unrolled_superblocks > 0);
  Alcotest.(check (option int)) "sum" (Some (500 * 501 / 2)) (Controller.exit_code ctl)

let test_negative_displacement () =
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg ESI, Imm 0x3010));
  Asm.insn a (Mov (Mem { base = Some ESI; index = None; disp = -16 }, Imm 0x77));
  Asm.insn a (Mov (Reg EBX, Mem { base = None; index = None; disp = 0x3000 }));
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let ctl = run_validated (Asm.assemble a) 1 in
  Alcotest.(check (option int)) "negative disp addressing" (Some 0x77)
    (Controller.exit_code ctl)

let test_deep_recursion_stack () =
  let a = Asm.create ~base:0x1000 () in
  Asm.jmp a "main";
  Asm.label a "f";
  Asm.insn a (Test (Reg EAX, Reg EAX));
  Asm.jcc a E "leaf";
  Asm.insn a (Push (Reg EAX));
  Asm.insn a (Dec (Reg EAX));
  Asm.call a "f";
  Asm.insn a (Pop EDX);
  Asm.insn a (Alu (Add, Reg EAX, Reg EDX));
  Asm.insn a Ret;
  Asm.label a "leaf";
  Asm.insn a (Mov (Reg EAX, Imm 0));
  Asm.insn a Ret;
  Asm.label a "main";
  Asm.insn a (Mov (Reg EAX, Imm 1500));
  Asm.call a "f";
  Asm.insn a (Mov (Reg EBX, Reg EAX));
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let ctl = run_validated (Asm.assemble a) 1 in
  Alcotest.(check (option int)) "sum 1..1500" (Some (1500 * 1501 / 2))
    (Controller.exit_code ctl)

let test_read_into_fresh_page () =
  (* read() writes into a page the co-designed side has never touched *)
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EBX, Imm 0));
  Asm.insn a (Mov (Reg ECX, Imm 0x9000));
  Asm.insn a (Mov (Reg EDX, Imm 4));
  Asm.insn a (Mov (Reg EAX, Imm 3));
  Asm.insn a Syscall;
  Asm.insn a (Mov (Reg EBX, Mem { base = None; index = None; disp = 0x9000 }));
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let ctl = run_validated ~input:"ABCD" (Asm.assemble a) 1 in
  Alcotest.(check (option int)) "bytes landed" (Some 0x44434241)
    (Controller.exit_code ctl)

let test_timing_config_monotonicity () =
  (* a deeper IQ or more physical registers can only help *)
  let feed cfg =
    let p = Darco_timing.Pipeline.create cfg in
    let rng = Darco_util.Rng.create 3 in
    for i = 0 to 2000 do
      Darco_timing.Pipeline.step p
        {
          Darco_host.Emulator.host_pc = 0xC0000000 + (4 * i);
          insn = Darco_host.Code.Bini (Add, 20 + (i mod 6), 21 + (i mod 3), 1);
          mem_access =
            (if i mod 4 = 0 then Some (Darco_util.Rng.int rng 0x8000, `Load) else None);
          branch = None;
        }
    done;
    Darco_timing.Pipeline.cycles p
  in
  let base = Darco_timing.Tconfig.default in
  let tiny_iq = feed { base with iq_size = 2 } in
  let big_iq = feed base in
  Alcotest.(check bool) "starved IQ not faster" true (big_iq <= tiny_iq);
  let few_regs = feed { base with phys_regs = 4 } in
  Alcotest.(check bool) "register-starved not faster" true (feed base <= few_regs)

let () =
  Alcotest.run "edge"
    [
      ( "guest-edges",
        [
          Alcotest.test_case "code straddles pages" `Quick test_code_straddles_pages;
          Alcotest.test_case "rep inside hot loop" `Quick test_rep_inside_hot_loop;
          Alcotest.test_case "negative displacement" `Quick test_negative_displacement;
          Alcotest.test_case "deep recursion" `Quick test_deep_recursion_stack;
          Alcotest.test_case "read into fresh page" `Quick test_read_into_fresh_page;
        ] );
      ( "tol-edges",
        [
          Alcotest.test_case "superblock limits" `Quick test_superblock_limits;
          Alcotest.test_case "interpret-only config" `Quick test_interp_only_configuration;
          Alcotest.test_case "ibtc collisions" `Quick test_ibtc_collisions;
          Alcotest.test_case "sub-1 loop unrolls" `Quick test_sub_one_counted_loop_unrolls;
        ] );
      ( "timing-edges",
        [ Alcotest.test_case "config monotonicity" `Quick test_timing_config_monotonicity ] );
    ]
