module Rng = Darco_util.Rng
module SM = Darco_util.Stats_math
module Table = Darco_util.Table

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.int64 a = Rng.int64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  Alcotest.(check bool) "split differs" false (Rng.int64 a = Rng.int64 c)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_in_range =
  QCheck.Test.make ~name:"Rng.in_range inclusive" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, extra) ->
      let hi = lo + extra in
      let rng = Rng.create seed in
      let v = Rng.in_range rng lo hi in
      v >= lo && v <= hi)

let prop_float_unit =
  QCheck.Test.make ~name:"Rng.float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng in
      v >= 0.0 && v < 1.0)

let test_weighted () =
  let rng = Rng.create 5 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Rng.weighted rng [ (1.0, "a"); (9.0, "b") ] in
    Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
  done;
  let b = Hashtbl.find counts "b" in
  Alcotest.(check bool) "weights respected" true (b > 2400 && b < 2950)

let test_shuffle_permutation () =
  let rng = Rng.create 9 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_mean_geomean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (SM.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (SM.mean []);
  Alcotest.(check (float 1e-6)) "geomean" 2.0 (SM.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-6)) "geomean of 1,4" 2.0 (SM.geomean [ 1.0; 4.0 ])

let test_stddev () =
  Alcotest.(check (float 1e-9)) "constant" 0.0 (SM.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 1e-6)) "known" 2.0 (SM.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "self" 1.0 (SM.correlation xs xs);
  Alcotest.(check (float 1e-9)) "negated" (-1.0)
    (SM.correlation xs (Array.map (fun v -> -.v) xs));
  Alcotest.(check (float 1e-9)) "constant series" 0.0
    (SM.correlation xs [| 1.0; 1.0; 1.0; 1.0 |])

let test_relative_error () =
  Alcotest.(check (float 1e-9)) "10% high" 0.1 (SM.relative_error 1.1 1.0);
  Alcotest.(check (float 1e-9)) "10% low" 0.1 (SM.relative_error 0.9 1.0);
  Alcotest.(check (float 1e-9)) "zero ref" 0.0 (SM.relative_error 5.0 0.0)

let test_histogram_distance () =
  Alcotest.(check (float 1e-9)) "identical" 0.0
    (SM.histogram_distance [| 1.0; 2.0 |] [| 2.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "disjoint" 1.0
    (SM.histogram_distance [| 1.0; 0.0 |] [| 0.0; 1.0 |])

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ] in
  Alcotest.(check bool) "contains separator" true (String.length s > 0 && String.contains s '-');
  Alcotest.(check bool) "contains cells" true (String.length s >= String.length "a   bb")

let test_stacked_bars_total_width () =
  let s =
    Table.stacked_bars ~labels:[ "l1" ]
      ~series:[ ("x", [| 30.0 |]); ("y", [| 70.0 |]) ]
  in
  (* every bar line must be exactly 50 glyphs between the pipes *)
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         match String.index_opt line '|' with
         | Some i -> (
           match String.rindex_opt line '|' with
           | Some j -> Alcotest.(check int) "bar width" 50 (j - i - 1)
           | None -> ())
         | None -> ())

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_different_seeds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "weighted" `Quick test_weighted;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_int_in_bounds;
          QCheck_alcotest.to_alcotest prop_in_range;
          QCheck_alcotest.to_alcotest prop_float_unit;
        ] );
      ( "stats-math",
        [
          Alcotest.test_case "mean/geomean" `Quick test_mean_geomean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "correlation" `Quick test_correlation;
          Alcotest.test_case "relative error" `Quick test_relative_error;
          Alcotest.test_case "histogram distance" `Quick test_histogram_distance;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "stacked bars width" `Quick test_stacked_bars_total_width;
        ] );
    ]
