open Darco_timing
module Code = Darco_host.Code
module Emulator = Darco_host.Emulator

(* --- cache --------------------------------------------------------------- *)

let small_geom : Tconfig.cache_geom = { sets = 4; ways = 2; line = 64; latency = 2 }

let mk_cache ?(geom = small_geom) () =
  Cache.create ~name:"test" geom ~parent:(fun _ ~is_write:_ -> 100)

let test_cache_hit_miss () =
  let c = mk_cache () in
  Alcotest.(check int) "cold miss" 102 (Cache.access c 0x1000 ~is_write:false);
  Alcotest.(check int) "hit" 2 (Cache.access c 0x1000 ~is_write:false);
  Alcotest.(check int) "same line hit" 2 (Cache.access c 0x1020 ~is_write:false);
  Alcotest.(check int) "different line misses" 102 (Cache.access c 0x1040 ~is_write:false);
  let st = Cache.stats c in
  Alcotest.(check int) "accesses" 4 st.accesses;
  Alcotest.(check int) "misses" 2 st.misses

let test_cache_lru_eviction () =
  let c = mk_cache () in
  (* set 0 with 2 ways: three conflicting lines *)
  let addr k = k * small_geom.line * small_geom.sets in
  ignore (Cache.access c (addr 1) ~is_write:false);
  ignore (Cache.access c (addr 2) ~is_write:false);
  ignore (Cache.access c (addr 1) ~is_write:false);
  (* 2 is now LRU; 3 evicts it *)
  ignore (Cache.access c (addr 3) ~is_write:false);
  Alcotest.(check bool) "1 survives" true (Cache.contains c (addr 1));
  Alcotest.(check bool) "2 evicted" false (Cache.contains c (addr 2))

let test_cache_writeback () =
  let c = mk_cache () in
  let addr k = k * small_geom.line * small_geom.sets in
  ignore (Cache.access c (addr 1) ~is_write:true);
  ignore (Cache.access c (addr 2) ~is_write:false);
  ignore (Cache.access c (addr 3) ~is_write:false);
  Alcotest.(check int) "dirty eviction wrote back" 1 (Cache.stats c).writebacks

let test_cache_prefetch_fill () =
  let c = mk_cache () in
  Cache.prefetch c 0x4000;
  Alcotest.(check bool) "present" true (Cache.contains c 0x4000);
  Alcotest.(check int) "demand hit after prefetch" 2
    (Cache.access c 0x4000 ~is_write:false);
  Alcotest.(check int) "no demand miss counted" 0 (Cache.stats c).misses

(* --- tlb ------------------------------------------------------------------ *)

let test_tlb () =
  let t = Tlb.create { entries = 2; latency = 0 } ~parent:(fun _ -> 30) in
  Alcotest.(check int) "cold" 30 (Tlb.access t 0x1000);
  Alcotest.(check int) "hit" 0 (Tlb.access t 0x1abc);
  ignore (Tlb.access t 0x2000);
  ignore (Tlb.access t 0x3000);
  (* 0x1000 was LRU-evicted by the third page *)
  Alcotest.(check int) "evicted" 30 (Tlb.access t 0x1000);
  Alcotest.(check bool) "miss rate sane" true (Tlb.miss_rate t > 0.5)

(* --- branch predictor ------------------------------------------------------ *)

let test_predictor_learns_bias () =
  let p = Predictor.create Tconfig.default in
  let pc = 0x1000 in
  for _ = 1 to 100 do
    ignore (Predictor.observe p ~pc ~taken:true ~target:0x2000)
  done;
  let taken, target = Predictor.predict p ~pc in
  Alcotest.(check bool) "predicts taken" true taken;
  Alcotest.(check (option int)) "btb target" (Some 0x2000) target;
  Alcotest.(check bool) "high accuracy" true (Predictor.accuracy p > 0.9)

let test_predictor_alternating_pattern () =
  (* gshare with history should learn a strict alternation *)
  let p = Predictor.create Tconfig.default in
  let pc = 0x3000 in
  let mispredicts_late = ref 0 in
  for i = 1 to 400 do
    let taken = i mod 2 = 0 in
    match Predictor.observe p ~pc ~taken ~target:0x4000 with
    | `Mispredict when i > 200 -> incr mispredicts_late
    | _ -> ()
  done;
  Alcotest.(check bool) "pattern learned" true (!mispredicts_late < 20)

let test_predictor_btb_miss_counts () =
  let p = Predictor.create Tconfig.default in
  (* taken branch with no BTB entry: mispredict even if direction right *)
  for _ = 1 to 5 do
    ignore (Predictor.observe p ~pc:0x1000 ~taken:true ~target:0x2000)
  done;
  Alcotest.(check bool) "btb misses recorded" true ((Predictor.stats p).btb_misses >= 1)

(* --- prefetcher ------------------------------------------------------------ *)

let test_stride_prefetcher () =
  let dl1 = mk_cache ~geom:{ sets = 64; ways = 4; line = 64; latency = 2 } () in
  let pf = Prefetch.create Tconfig.default ~into:dl1 in
  (* constant stride of 256 bytes from one load PC *)
  for i = 0 to 9 do
    Prefetch.observe pf ~pc:0x1000 ~addr:(0x10000 + (i * 256))
  done;
  Alcotest.(check bool) "prefetches issued" true ((Prefetch.stats pf).issued > 0);
  (* the next strided line should already be resident *)
  Alcotest.(check bool) "next line resident" true (Cache.contains dl1 (0x10000 + (10 * 256)))

let test_prefetcher_ignores_random () =
  let dl1 = mk_cache () in
  let pf = Prefetch.create Tconfig.default ~into:dl1 in
  let rng = Darco_util.Rng.create 4 in
  for _ = 0 to 30 do
    Prefetch.observe pf ~pc:0x1000 ~addr:(Darco_util.Rng.int rng 0x100000)
  done;
  Alcotest.(check bool) "no stable stride, few prefetches" true
    ((Prefetch.stats pf).issued <= 4)

(* --- pipeline --------------------------------------------------------------- *)

let ri ?(pc = 0xC0000000) ?mem ?branch insn : Emulator.retire_info =
  { host_pc = pc; insn; mem_access = mem; branch }

let feed cfg stream =
  let p = Pipeline.create cfg in
  List.iter (Pipeline.step p) stream;
  p

let nop_stream n = List.init n (fun i -> ri ~pc:(0xC0000000 + (4 * i)) (Code.Li (20, i)))

let test_pipeline_width_bound () =
  let p = feed Tconfig.default (nop_stream 1000) in
  let s = Pipeline.summary p in
  Alcotest.(check bool) "IPC less than issue width" true
    (s.ipc <= float_of_int Tconfig.default.issue_width +. 0.001);
  Alcotest.(check int) "all retired" 1000 s.instructions;
  (* wider core must not be slower *)
  let pw = feed Tconfig.wide (nop_stream 1000) in
  Alcotest.(check bool) "wide >= narrow IPC" true
    ((Pipeline.summary pw).ipc >= s.ipc -. 0.001)

let test_pipeline_dependency_chain () =
  (* a serial dependency chain cannot exceed IPC 1 *)
  let chain = List.init 600 (fun i -> ri ~pc:(0xC0000000 + (4 * i)) (Code.Bini (Add, 20, 20, 1))) in
  let p = feed Tconfig.wide chain in
  Alcotest.(check bool) "chain serializes" true ((Pipeline.summary p).ipc <= 1.01);
  (* independent instructions on a wide core do better *)
  let par =
    List.init 600 (fun i -> ri ~pc:(0xC0000000 + (4 * i)) (Code.Bini (Add, 20 + (i mod 8), 21, 1)))
  in
  let p2 = feed Tconfig.wide par in
  Alcotest.(check bool) "parallel faster" true
    ((Pipeline.summary p2).ipc > (Pipeline.summary p).ipc)

let test_pipeline_memory_latency () =
  (* dependent loads with cache-hostile strides are slower than hits *)
  let loads stride =
    List.init 500 (fun i ->
        ri ~pc:0xC0000000
          ~mem:(0x10000 + (i * stride), `Load)
          (Code.Load (W32, false, 20, 21, 0)))
  in
  let hot = feed Tconfig.default (loads 0) in
  let cold = feed { Tconfig.default with prefetch = false } (loads 8192) in
  Alcotest.(check bool) "misses cost cycles" true
    (Pipeline.cycles cold > Pipeline.cycles hot);
  Alcotest.(check bool) "miss rates ordered" true
    ((Pipeline.summary cold).dl1_miss_rate > (Pipeline.summary hot).dl1_miss_rate)

let test_pipeline_mispredict_penalty () =
  let branchy taken_fn =
    List.init 800 (fun i ->
        ri ~pc:0xC0000000
          ~branch:(taken_fn i, 0xC0001000)
          (Code.B (Beq, 20, 21, 5)))
  in
  let predictable = feed Tconfig.default (branchy (fun _ -> true)) in
  (* adversarial: pseudo-random direction *)
  let rng = Darco_util.Rng.create 9 in
  let random = feed Tconfig.default (branchy (fun _ -> Darco_util.Rng.bool rng)) in
  Alcotest.(check bool) "mispredicts slow the core" true
    (Pipeline.cycles random > Pipeline.cycles predictable)

let test_pipeline_long_ops () =
  let sins =
    List.init 50 (fun _ -> ri (Code.Callrt_f (Rt_sin, 8, 9)))
  in
  let p = feed Tconfig.default sins in
  Alcotest.(check bool) "transcendentals occupy the unit" true
    (Pipeline.cycles p >= 50 * Code.rt_cost Rt_sin);
  Alcotest.(check int) "stream weight" (50 * Code.rt_cost Rt_sin) (Pipeline.instructions p)

let prop_pipeline_monotone_cycles =
  QCheck.Test.make ~name:"cycles grow monotonically with the stream" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Darco_util.Rng.create seed in
      let p = Pipeline.create Tconfig.default in
      let ok = ref true in
      let last = ref 0 in
      for i = 0 to 300 do
        let insn : Code.insn =
          match Darco_util.Rng.int rng 5 with
          | 0 -> Code.Li (20, i)
          | 1 -> Code.Bin (Add, 21, 20, 21)
          | 2 -> Code.Load (W32, false, 22, 21, 0)
          | 3 -> Code.Store (W32, 22, 21, 0)
          | _ -> Code.Fbin (Fmul, 8, 9, 10)
        in
        let mem =
          match insn with
          | Code.Load _ -> Some (Darco_util.Rng.int rng 0x40000, `Load)
          | Code.Store _ -> Some (Darco_util.Rng.int rng 0x40000, `Store)
          | _ -> None
        in
        Pipeline.step p (ri ?mem ~pc:(0xC0000000 + (4 * i)) insn);
        let c = Pipeline.cycles p in
        if c < !last then ok := false;
        last := c
      done;
      !ok)

let test_events_populated () =
  let p =
    feed Tconfig.default
      (List.init 100 (fun i ->
           ri ~pc:(0xC0000000 + (4 * i))
             ~mem:(0x5000 + (4 * i), `Load)
             (Code.Load (W32, false, 20, 21, 0))))
  in
  let e = Pipeline.events p in
  Alcotest.(check int) "mem reads" 100 e.e_mem_reads;
  Alcotest.(check bool) "cycles" true (e.e_cycles > 0);
  Alcotest.(check bool) "regfile activity" true (e.e_regfile_writes > 0)

let () =
  Alcotest.run "timing"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "writeback" `Quick test_cache_writeback;
          Alcotest.test_case "prefetch fill" `Quick test_cache_prefetch_fill;
        ] );
      ("tlb", [ Alcotest.test_case "two-level behaviour" `Quick test_tlb ]);
      ( "predictor",
        [
          Alcotest.test_case "learns bias" `Quick test_predictor_learns_bias;
          Alcotest.test_case "alternating pattern" `Quick test_predictor_alternating_pattern;
          Alcotest.test_case "btb misses" `Quick test_predictor_btb_miss_counts;
        ] );
      ( "prefetcher",
        [
          Alcotest.test_case "stride detection" `Quick test_stride_prefetcher;
          Alcotest.test_case "ignores random" `Quick test_prefetcher_ignores_random;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "width bound" `Quick test_pipeline_width_bound;
          Alcotest.test_case "dependency chain" `Quick test_pipeline_dependency_chain;
          Alcotest.test_case "memory latency" `Quick test_pipeline_memory_latency;
          Alcotest.test_case "mispredict penalty" `Quick test_pipeline_mispredict_penalty;
          Alcotest.test_case "long operations" `Quick test_pipeline_long_ops;
          Alcotest.test_case "events" `Quick test_events_populated;
          QCheck_alcotest.to_alcotest prop_pipeline_monotone_cycles;
        ] );
    ]
