(* Shared deterministic generators for the test suites: random guest
   instructions (straight-line subset for per-pass differential tests) and
   random structured guest programs (terminating by construction, for
   whole-system differential validation). *)

open Darco_guest
module Rng = Darco_util.Rng

(* Registers the random code may freely clobber.  EBX is reserved as the
   data-region base and EBP as a second pointer so that memory operands stay
   inside the data region. *)
let clobber_regs = [| Isa.EAX; Isa.ECX; Isa.EDX; Isa.ESI; Isa.EDI |]
let all_fregs = Isa.all_fregs
let data_base = 0x3000
let data_size = 2048

let reg rng = Rng.choose rng clobber_regs
let freg rng = Rng.choose rng all_fregs

let small_imm rng = Rng.in_range rng (-64) 8192

(* A memory operand guaranteed to land in the data region: EBX holds
   [data_base]; the index register is ANDed into range by the generator
   before use (callers emit the masking instruction). *)
let mem_operand rng : Isa.mem =
  { base = Some EBX; index = None; disp = Rng.int rng (data_size - 16) }

let operand rng : Isa.operand =
  match Rng.int rng 5 with
  | 0 | 1 -> Reg (reg rng)
  | 2 -> Imm (small_imm rng)
  | _ -> Mem (mem_operand rng)

let dst_operand rng : Isa.operand =
  if Rng.chance rng 0.7 then Reg (reg rng) else Mem (mem_operand rng)

let alu_op rng : Isa.alu_op =
  Rng.choose rng [| Isa.Add; Sub; Adc; Sbb; And; Or; Xor |]

let shift_op rng : Isa.shift_op = Rng.choose rng [| Isa.Shl; Shr; Sar; Rol; Ror |]
let cond rng = Rng.choose rng Isa.all_conds

(* One random straight-line (non-control) instruction. *)
let rec insn rng : Isa.insn =
  match Rng.int rng 24 with
  | 0 -> Mov (dst_operand rng, operand rng)
  | 1 -> Alu (alu_op rng, dst_operand rng, operand rng)
  | 2 -> Cmp (operand rng, operand rng)
  | 3 -> Test (operand rng, operand rng)
  | 4 -> Inc (dst_operand rng)
  | 5 -> Dec (dst_operand rng)
  | 6 -> Neg (dst_operand rng)
  | 7 -> Not (dst_operand rng)
  | 8 ->
    let count : Isa.operand =
      if Rng.bool rng then Imm (Rng.int rng 40) else Reg ECX
    in
    Shift (shift_op rng, dst_operand rng, count)
  | 9 -> if Rng.bool rng then Mul (Reg (reg rng)) else Imul (Reg (reg rng))
  | 10 -> Imul2 (reg rng, operand rng)
  | 11 -> if Rng.bool rng then Div (Reg (reg rng)) else Idiv (Reg (reg rng))
  | 12 -> Lea (reg rng, mem_operand rng)
  | 13 ->
    Movx
      ( Rng.choose rng [| Isa.W8; W16 |],
        Rng.bool rng,
        reg rng,
        mem_operand rng )
  | 14 -> Movw (Rng.choose rng [| Isa.W8; W16 |], mem_operand rng, reg rng)
  | 15 -> Cmov (cond rng, reg rng, operand rng)
  | 16 -> Setcc (cond rng, reg rng)
  | 17 -> Fld (freg rng, mem_operand rng)
  | 18 -> Fst (mem_operand rng, freg rng)
  | 19 -> (
    match Rng.int rng 5 with
    | 0 -> Fmov (freg rng, freg rng)
    | 1 -> Fldi (freg rng, Rng.float rng *. 8.0)
    | 2 ->
      Fbin (Rng.choose rng [| Isa.Fadd; Fsub; Fmul; Fdiv |], freg rng, freg rng)
    | 3 -> Fun_ (Rng.choose rng [| Isa.Fsqrt; Fsin; Fcos; Fabs; Fchs |], freg rng)
    | _ -> Fcmp (freg rng, freg rng))
  | 20 -> Fild (freg rng, reg rng)
  | 21 -> Fist (reg rng, freg rng)
  | 22 -> Nop
  | _ -> if Rng.bool rng then insn rng else Mov (Reg (reg rng), Imm (small_imm rng))

let insn_block rng n = List.init n (fun _ -> insn rng)

(* --- structured random programs for whole-system differential tests --- *)

let setup_pointers a =
  Asm.insn a (Mov (Reg EBX, Imm data_base));
  Asm.insn a (Mov (Reg EBP, Imm (data_base + 512)))

(* String ops need controlled pointers/counts; emit a safe harness. *)
let emit_string_op rng a =
  Asm.insn a (Mov (Reg ESI, Imm (data_base + Rng.int rng 256)));
  Asm.insn a (Mov (Reg EDI, Imm (data_base + 512 + Rng.int rng 256)));
  Asm.insn a (Mov (Reg ECX, Imm (Rng.int rng 24)));
  let kind = Rng.choose rng [| Isa.Movs; Stos; Lods; Scas; Cmps |] in
  let width = Rng.choose rng [| Isa.W8; W16; W32 |] in
  let rep =
    match kind with
    | Lods -> Isa.NoRep (* rep lods is pointless and slow *)
    | _ -> Rng.choose rng [| Isa.NoRep; Rep; Repe; Repne |]
  in
  Asm.insn a (Str (kind, width, rep))

let fresh_label =
  let n = ref 0 in
  fun stem ->
    incr n;
    Printf.sprintf "%s_%d" stem !n

(* Structured code: straight blocks, diamonds, counted loops, calls. *)
let rec emit_chunk rng a ~depth ~funcs =
  match Rng.int rng (if depth > 2 then 2 else 6) with
  | 0 | 1 -> List.iter (Asm.insn a) (insn_block rng (2 + Rng.int rng 8))
  | 2 ->
    (* if/else diamond on a random condition *)
    let other = fresh_label "else" in
    let join = fresh_label "join" in
    List.iter (Asm.insn a) (insn_block rng 2);
    Asm.jcc a (cond rng) other;
    List.iter (Asm.insn a) (insn_block rng (1 + Rng.int rng 4));
    Asm.jmp a join;
    Asm.label a other;
    List.iter (Asm.insn a) (insn_block rng (1 + Rng.int rng 4));
    Asm.label a join
  | 3 ->
    (* counted loop; the counter lives on the stack so the body can
       clobber every register *)
    let head = fresh_label "head" in
    let count = 2 + Rng.int rng 40 in
    Asm.insn a (Push (Imm count));
    Asm.label a head;
    emit_chunk rng a ~depth:(depth + 1) ~funcs;
    setup_pointers a;
    Asm.insn a (Pop ECX);
    Asm.insn a (Dec (Reg ECX));
    Asm.insn a (Push (Reg ECX));
    Asm.jcc a NE head;
    Asm.insn a (Pop ECX)
  | 4 when funcs <> [] ->
    let f = List.nth funcs (Rng.int rng (List.length funcs)) in
    Asm.call a f
  | _ -> emit_string_op rng a

let random_program ?(seed = 0) ?(chunks = 8) () =
  let rng = Rng.create (seed + 7777) in
  let a = Asm.create ~base:0x1000 () in
  Asm.jmp a "entry";
  (* a few callable leaf functions *)
  let funcs =
    List.init 3 (fun _ ->
        let name = fresh_label "fn" in
        Asm.label a name;
        List.iter (Asm.insn a) (insn_block rng (2 + Rng.int rng 6));
        setup_pointers a;
        Asm.insn a Ret;
        name)
  in
  Asm.label a "entry";
  setup_pointers a;
  for _ = 1 to chunks do
    emit_chunk rng a ~depth:0 ~funcs;
    setup_pointers a
  done;
  (* report a checksum then exit *)
  Asm.insn a (Mov (Reg EBX, Reg EAX));
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  Asm.assemble a

(* --- comparison helpers --- *)

let check_cpu_equal what (a : Cpu.t) (b : Cpu.t) =
  if not (Cpu.equal a b) then
    Alcotest.failf "%s: state differs:\n%s" what (String.concat "\n" (Cpu.diff a b))

let check_mem_equal what (a : Memory.t) (b : Memory.t) =
  let pages =
    List.sort_uniq compare (Memory.touched_pages a @ Memory.touched_pages b)
  in
  List.iter
    (fun idx ->
      if not (Memory.equal_page a b idx) then
        Alcotest.failf "%s: memory page 0x%x differs" what (Memory.page_base idx))
    pages
