test/test_tol.mli:
