test/test_system.ml: Alcotest Asm Config Controller Darco Darco_guest Darco_workloads Debug Interp_ref QCheck QCheck_alcotest Stats String Tgen Tol
