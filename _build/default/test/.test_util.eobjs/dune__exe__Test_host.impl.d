test/test_host.ml: Alcotest Array Bytes Code Cpu Darco_guest Darco_host Emulator Flagcalc Flags Isa Machine Memory QCheck QCheck_alcotest Regs Semantics
