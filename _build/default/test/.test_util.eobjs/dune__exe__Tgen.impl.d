test/tgen.ml: Alcotest Asm Cpu Darco_guest Darco_util Isa List Memory Printf String
