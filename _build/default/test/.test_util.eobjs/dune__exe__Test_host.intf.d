test/test_host.mli:
