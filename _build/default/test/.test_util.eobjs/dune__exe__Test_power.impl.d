test/test_power.ml: Alcotest Darco_host Darco_power Darco_timing Pipeline Tconfig
