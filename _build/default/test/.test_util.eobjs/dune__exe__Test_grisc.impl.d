test/test_grisc.ml: Alcotest Array Bytes Char Cpu Darco Darco_grisc Darco_guest Darco_host Darco_util Isa List Loader Memory QCheck QCheck_alcotest
