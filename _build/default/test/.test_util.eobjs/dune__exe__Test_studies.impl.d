test/test_studies.ml: Alcotest Darco Darco_studies Darco_workloads Lazy List
