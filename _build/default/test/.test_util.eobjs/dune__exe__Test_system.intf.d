test/test_system.mli:
