test/test_timing.mli:
