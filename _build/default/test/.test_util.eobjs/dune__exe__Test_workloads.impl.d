test/test_workloads.ml: Alcotest Asm Bytes Darco Darco_guest Darco_workloads Interp_ref List Program String
