test/test_studies.mli:
