test/test_util.ml: Alcotest Array Darco_util Hashtbl List Option QCheck QCheck_alcotest String
