test/test_grisc.mli:
