test/test_timing.ml: Alcotest Cache Darco_host Darco_timing Darco_util List Pipeline Predictor Prefetch QCheck QCheck_alcotest Tconfig Tlb
