test/test_edge.ml: Alcotest Asm Config Controller Darco Darco_guest Darco_host Darco_timing Darco_util Interp_ref List Printf String Tgen
