open Darco_guest
module Rng = Darco_util.Rng

(* --- semantics ---------------------------------------------------------- *)

let flags_t = Alcotest.testable (Fmt.of_to_string Flags.to_string) ( = )

let test_add_flags () =
  let res, f = Semantics.alu Add ~cf_in:false 0xFFFFFFFF 1 in
  Alcotest.(check int) "wraps" 0 res;
  Alcotest.(check bool) "CF" true (Flags.cf f);
  Alcotest.(check bool) "ZF" true (Flags.zf f);
  Alcotest.(check bool) "OF clear (unsigned carry only)" false (Flags.of_ f);
  let _, f = Semantics.alu Add ~cf_in:false 0x7FFFFFFF 1 in
  Alcotest.(check bool) "signed overflow sets OF" true (Flags.of_ f);
  Alcotest.(check bool) "no carry" false (Flags.cf f);
  Alcotest.(check bool) "SF set" true (Flags.sf f)

let test_sub_flags () =
  let res, f = Semantics.alu Sub ~cf_in:false 3 5 in
  Alcotest.(check int) "wraps" (Semantics.mask32 (-2)) res;
  Alcotest.(check bool) "borrow sets CF" true (Flags.cf f);
  Alcotest.(check bool) "SF" true (Flags.sf f);
  let _, f = Semantics.alu Sub ~cf_in:false 0x80000000 1 in
  Alcotest.(check bool) "INT_MIN - 1 overflows" true (Flags.of_ f)

let test_adc_sbb_chain () =
  (* 64-bit add via adc: 0xFFFFFFFF_FFFFFFFF + 1 = 0 carry-out *)
  let lo, f1 = Semantics.alu Add ~cf_in:false 0xFFFFFFFF 1 in
  let hi, f2 = Semantics.alu Adc ~cf_in:(Flags.cf f1) 0xFFFFFFFF 0 in
  Alcotest.(check int) "lo" 0 lo;
  Alcotest.(check int) "hi" 0 hi;
  Alcotest.(check bool) "carry out" true (Flags.cf f2);
  let lo, f1 = Semantics.alu Sub ~cf_in:false 0 1 in
  let hi, _ = Semantics.alu Sbb ~cf_in:(Flags.cf f1) 5 0 in
  Alcotest.(check int) "borrow lo" 0xFFFFFFFF lo;
  Alcotest.(check int) "borrow hi" 4 hi

let test_logic_flags () =
  let res, f = Semantics.alu And ~cf_in:true 0xF0F0 0x0F0F in
  Alcotest.(check int) "and" 0 res;
  Alcotest.(check bool) "ZF" true (Flags.zf f);
  Alcotest.(check bool) "CF cleared" false (Flags.cf f);
  Alcotest.(check bool) "OF cleared" false (Flags.of_ f)

let test_inc_dec_preserve_cf () =
  let flags = Flags.make ~cf:true ~zf:false ~sf:false ~of_:false in
  let res, f = Semantics.inc 0xFFFFFFFF ~flags in
  Alcotest.(check int) "inc wraps" 0 res;
  Alcotest.(check bool) "CF preserved" true (Flags.cf f);
  Alcotest.(check bool) "ZF set" true (Flags.zf f);
  let res, f = Semantics.dec 0 ~flags:0 in
  Alcotest.(check int) "dec wraps" 0xFFFFFFFF res;
  Alcotest.(check bool) "CF still clear" false (Flags.cf f)

let test_shift_semantics () =
  let v, f = Semantics.shift Shl 0x80000001 ~count:1 ~flags:0 in
  Alcotest.(check int) "shl" 2 v;
  Alcotest.(check bool) "CF from msb" true (Flags.cf f);
  let v, f0 = Semantics.shift Shr 0x3 ~count:1 ~flags:0 in
  Alcotest.(check int) "shr" 1 v;
  Alcotest.(check bool) "CF from lsb" true (Flags.cf f0);
  let v, _ = Semantics.shift Sar 0x80000000 ~count:4 ~flags:0 in
  Alcotest.(check int) "sar sign-fills" 0xF8000000 v;
  let v, _ = Semantics.shift Rol 0x80000001 ~count:1 ~flags:0 in
  Alcotest.(check int) "rol" 3 v;
  let v, _ = Semantics.shift Ror 0x1 ~count:1 ~flags:0 in
  Alcotest.(check int) "ror" 0x80000000 v;
  (* zero count leaves flags untouched *)
  let sentinel = Flags.make ~cf:true ~zf:true ~sf:true ~of_:true in
  let v, f = Semantics.shift Shl 123 ~count:0 ~flags:sentinel in
  Alcotest.(check int) "value unchanged" 123 v;
  Alcotest.check flags_t "flags unchanged" sentinel f;
  (* counts are masked to 5 bits *)
  let v, _ = Semantics.shift Shl 1 ~count:33 ~flags:0 in
  Alcotest.(check int) "count masked" 2 v

let test_mul () =
  let lo, hi, f = Semantics.mul_u 0xFFFFFFFF 0xFFFFFFFF in
  Alcotest.(check int) "lo" 1 lo;
  Alcotest.(check int) "hi" 0xFFFFFFFE hi;
  Alcotest.(check bool) "wide" true (Flags.cf f);
  let lo, hi, f = Semantics.mul_s 0xFFFFFFFF 3 in
  (* -1 * 3 = -3 *)
  Alcotest.(check int) "slo" 0xFFFFFFFD lo;
  Alcotest.(check int) "shi" 0xFFFFFFFF hi;
  Alcotest.(check bool) "fits" false (Flags.cf f);
  let lo, _, _ = Semantics.mul_u 123456 789 in
  Alcotest.(check int) "plain" (123456 * 789) lo

let test_div () =
  let q, r = Semantics.div_u ~hi:0 ~lo:100 7 in
  Alcotest.(check int) "q" 14 q;
  Alcotest.(check int) "r" 2 r;
  (* wide dividend *)
  let q, r = Semantics.div_u ~hi:1 ~lo:0 2 in
  Alcotest.(check int) "2^32/2" 0x80000000 q;
  Alcotest.(check int) "rem" 0 r;
  (* division by zero is defined, not trapping *)
  let q, r = Semantics.div_u ~hi:5 ~lo:77 0 in
  Alcotest.(check int) "q = all-ones" 0xFFFFFFFF q;
  Alcotest.(check int) "r = lo" 77 r;
  (* signed: -7 / 2 = -3 rem -1 *)
  let q, r = Semantics.div_s ~hi:0xFFFFFFFF ~lo:(Semantics.mask32 (-7)) 2 in
  Alcotest.(check int) "signed q" (Semantics.mask32 (-3)) q;
  Alcotest.(check int) "signed r" (Semantics.mask32 (-1)) r

let prop_div_identity =
  QCheck.Test.make ~name:"div: n = q*d + r, 0 <= r < d (unsigned, narrow)"
    ~count:500
    QCheck.(pair (int_bound 0x3FFFFFFF) (int_range 1 0xFFFF))
    (fun (n, d) ->
      let q, r = Semantics.div_u ~hi:0 ~lo:n d in
      (q * d) + r = n && r < d)

let prop_alu_matches_int64 =
  QCheck.Test.make ~name:"add/sub value matches an Int64 model" ~count:1000
    QCheck.(triple bool (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (is_add, a0, b0) ->
      let a = Semantics.mask32 (a0 * 17) and b = Semantics.mask32 (b0 * 29) in
      let res, _ =
        Semantics.alu (if is_add then Add else Sub) ~cf_in:false a b
      in
      let model =
        Int64.to_int
          (Int64.logand
             (if is_add then Int64.add (Int64.of_int a) (Int64.of_int b)
              else Int64.sub (Int64.of_int a) (Int64.of_int b))
             0xFFFFFFFFL)
      in
      res = model)

let test_sign_extend () =
  Alcotest.(check int) "byte" 0xFFFFFF80 (Semantics.sign_extend W8 0x80);
  Alcotest.(check int) "byte pos" 0x7F (Semantics.sign_extend W8 0x7F);
  Alcotest.(check int) "word" 0xFFFF8000 (Semantics.sign_extend W16 0x8000);
  Alcotest.(check int) "dword id" 0x12345678 (Semantics.sign_extend W32 0x12345678)

let test_f2i () =
  Alcotest.(check int) "trunc pos" 3 (Semantics.f2i 3.99);
  Alcotest.(check int) "trunc neg" (Semantics.mask32 (-3)) (Semantics.f2i (-3.99));
  Alcotest.(check int) "nan" 0x80000000 (Semantics.f2i Float.nan);
  Alcotest.(check int) "overflow" 0x80000000 (Semantics.f2i 1e30);
  Alcotest.(check int) "neg overflow" 0x80000000 (Semantics.f2i (-1e30))

let test_fcmp () =
  let f = Semantics.fcmp_flags 1.0 2.0 in
  Alcotest.(check bool) "below" true (Flags.eval_cond B f);
  let f = Semantics.fcmp_flags 2.0 2.0 in
  Alcotest.(check bool) "equal" true (Flags.eval_cond E f);
  let f = Semantics.fcmp_flags Float.nan 2.0 in
  Alcotest.(check bool) "unordered: CF and ZF" true (Flags.cf f && Flags.zf f)

(* --- flags / conditions -------------------------------------------------- *)

let test_eval_cond () =
  let f_eq = snd (Semantics.alu Sub ~cf_in:false 5 5) in
  let f_lt = snd (Semantics.alu Sub ~cf_in:false 3 5) in
  let f_gt = snd (Semantics.alu Sub ~cf_in:false 7 5) in
  let checks =
    [
      (Isa.E, f_eq, true); (Isa.E, f_lt, false);
      (Isa.NE, f_gt, true); (Isa.L, f_lt, true); (Isa.L, f_eq, false);
      (Isa.LE, f_eq, true); (Isa.G, f_gt, true); (Isa.GE, f_eq, true);
      (Isa.B, f_lt, true); (Isa.A, f_gt, true); (Isa.AE, f_eq, true);
      (Isa.BE, f_eq, true); (Isa.S, f_lt, true); (Isa.NS, f_gt, true);
    ]
  in
  List.iter
    (fun (c, f, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "cond %s" (Isa.to_string (Jcc (c, 0))))
        expect (Flags.eval_cond c f))
    checks

let prop_negate_cond =
  QCheck.Test.make ~name:"negate_cond inverts every condition" ~count:500
    QCheck.(pair (int_bound 13) (int_bound 15))
    (fun (ci, f) ->
      let c = Isa.all_conds.(ci) in
      Flags.eval_cond c f = not (Flags.eval_cond (Isa.negate_cond c) f))

(* --- codec -------------------------------------------------------------- *)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip of random instructions"
    ~count:2000 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed * 31 + 5) in
      let insn = Tgen.insn rng in
      let pc = 0x1000 + (Rng.int rng 0x1000 * 4) in
      let encoded = Codec.encode ~pc insn in
      let fetched i = Char.code (Bytes.get encoded (i - pc)) in
      let decoded, len = Codec.decode ~fetch:fetched ~pc in
      len = Bytes.length encoded && decoded = Codec.canonical insn)

let test_codec_control () =
  (* control transfers encode PC-relative: same insn at different PCs *)
  List.iter
    (fun insn ->
      List.iter
        (fun pc ->
          let b = Codec.encode ~pc insn in
          let decoded, len = Codec.decode ~fetch:(fun i -> Char.code (Bytes.get b (i - pc))) ~pc in
          Alcotest.(check int) "length" (Bytes.length b) len;
          Alcotest.(check bool) (Isa.to_string insn) true (decoded = insn))
        [ 0x1000; 0x7FFF; 0x123456 ])
    [
      Isa.Jmp 0x2000;
      Isa.Jcc (NE, 0x400);
      Isa.Call 0x999999;
      Isa.Ret;
      Isa.JmpInd (Reg EAX);
      Isa.Syscall;
      Isa.Halt;
      Isa.Str (Movs, W32, Rep);
    ]

let test_codec_bad_encoding () =
  Alcotest.check_raises "invalid opcode" (Codec.Bad_encoding 0) (fun () ->
      ignore (Codec.decode ~fetch:(fun _ -> 0xFF) ~pc:0))

let test_codec_variable_length () =
  let short = Codec.length (Mov (Reg EAX, Reg ECX)) in
  let long = Codec.length (Mov (Mem { base = Some EAX; index = Some (ECX, S4); disp = 100000 }, Imm 7)) in
  Alcotest.(check bool) "variable length" true (short < long);
  Alcotest.(check int) "one-byte nop" 1 (Codec.length Nop)

(* --- memory ------------------------------------------------------------- *)

let test_memory_rw () =
  let m = Memory.create `Auto_zero in
  Memory.write32 m 0x1000 0xDEADBEEF;
  Alcotest.(check int) "read32" 0xDEADBEEF (Memory.read32 m 0x1000);
  Alcotest.(check int) "read8" 0xEF (Memory.read8 m 0x1000);
  Alcotest.(check int) "read8 hi" 0xDE (Memory.read8 m 0x1003);
  Memory.write m W16 0x1000 0x1234;
  Alcotest.(check int) "merged" 0xDEAD1234 (Memory.read32 m 0x1000)

let test_memory_page_boundary () =
  let m = Memory.create `Auto_zero in
  let addr = 0x1FFE in
  Memory.write32 m addr 0xCAFEBABE;
  Alcotest.(check int) "straddling read" 0xCAFEBABE (Memory.read32 m addr);
  Alcotest.(check bool) "both pages exist" true
    (Memory.has_page m 1 && Memory.has_page m 2)

let test_memory_fault_policy () =
  let m = Memory.create `Fault in
  Alcotest.check_raises "faults" (Memory.Page_fault 5) (fun () ->
      ignore (Memory.read8 m (5 * 4096)));
  Memory.install_page m 5 (Bytes.make 4096 'x');
  Alcotest.(check int) "after install" (Char.code 'x') (Memory.read8 m (5 * 4096))

let test_memory_f64 () =
  let m = Memory.create `Auto_zero in
  Memory.write_f64 m 0x2000 3.14159;
  Alcotest.(check (float 0.0)) "roundtrip" 3.14159 (Memory.read_f64 m 0x2000);
  Memory.write_f64 m 0x2008 (-0.0);
  Alcotest.(check bool) "negative zero preserved" true
    (Int64.bits_of_float (Memory.read_f64 m 0x2008) = Int64.bits_of_float (-0.0))

let test_memory_equal_page () =
  let a = Memory.create `Auto_zero and b = Memory.create `Auto_zero in
  Memory.write32 a 0x1000 0;
  (* zero page in a, absent in b: equal *)
  Alcotest.(check bool) "absent = zero" true (Memory.equal_page a b 1);
  Memory.write32 a 0x1000 5;
  Alcotest.(check bool) "differs" false (Memory.equal_page a b 1)

(* --- cpu ---------------------------------------------------------------- *)

let test_cpu_ops () =
  let c = Cpu.create () in
  Cpu.set c EAX 0x1_2345_6789;
  Alcotest.(check int) "masked to 32 bits" 0x23456789 (Cpu.get c EAX);
  let d = Cpu.copy c in
  Alcotest.(check bool) "copy equal" true (Cpu.equal c d);
  Cpu.set d EBX 1;
  Alcotest.(check bool) "diverged" false (Cpu.equal c d);
  Alcotest.(check bool) "diff names ebx" true
    (List.exists (fun s -> String.length s >= 3 && String.sub s 0 3 = "ebx") (Cpu.diff c d))

(* --- step: targeted instruction semantics ------------------------------- *)

let exec_insns insns =
  let a = Asm.create ~base:0x1000 () in
  List.iter (Asm.insn a) insns;
  Asm.insn a Halt;
  let p = Asm.assemble a in
  let cpu, mem = Loader.boot p in
  let ic = Step.icache_create () in
  let rec go n =
    if n > 10000 then Alcotest.fail "did not halt";
    if not cpu.Cpu.halted then begin
      ignore (Step.step ic cpu mem);
      go (n + 1)
    end
  in
  go 0;
  (cpu, mem)

let test_step_push_pop () =
  let cpu, _ = exec_insns [ Mov (Reg EAX, Imm 77); Push (Reg EAX); Pop EDX ] in
  Alcotest.(check int) "popped" 77 (Cpu.get cpu EDX);
  Alcotest.(check int) "sp restored" Loader.stack_top (Cpu.get cpu ESP)

let test_step_pop_esp () =
  let cpu, _ = exec_insns [ Push (Imm 0x4242); Pop ESP ] in
  Alcotest.(check int) "pop esp = loaded value" 0x4242 (Cpu.get cpu ESP)

let test_step_call_ret () =
  let a = Asm.create ~base:0x1000 () in
  Asm.jmp a "main";
  Asm.label a "f";
  Asm.insn a (Mov (Reg EAX, Imm 9));
  Asm.insn a Ret;
  Asm.label a "main";
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.call a "f";
  Asm.insn a (Alu (Add, Reg EAX, Imm 100));
  Asm.insn a Halt;
  let p = Asm.assemble a in
  let r = Interp_ref.boot ~seed:0 p in
  ignore (Interp_ref.run_to_halt r);
  Alcotest.(check int) "call/ret flow" 109 (Cpu.get r.cpu EAX)

let test_step_string_rep_movs () =
  let cpu, mem =
    exec_insns
      [
        Mov (Mem { base = None; index = None; disp = 0x3000 }, Imm 0x11223344);
        Mov (Mem { base = None; index = None; disp = 0x3004 }, Imm 0x55667788);
        Mov (Reg ESI, Imm 0x3000);
        Mov (Reg EDI, Imm 0x3100);
        Mov (Reg ECX, Imm 8);
        Str (Movs, W8, Rep);
      ]
  in
  Alcotest.(check int) "copied lo" 0x11223344 (Memory.read32 mem 0x3100);
  Alcotest.(check int) "copied hi" 0x55667788 (Memory.read32 mem 0x3104);
  Alcotest.(check int) "ecx exhausted" 0 (Cpu.get cpu ECX);
  Alcotest.(check int) "esi advanced" 0x3008 (Cpu.get cpu ESI)

let test_step_repe_cmps () =
  let cpu, _ =
    exec_insns
      [
        Mov (Mem { base = None; index = None; disp = 0x3000 }, Imm 0xAAAA);
        Mov (Mem { base = None; index = None; disp = 0x3100 }, Imm 0xAAAB);
        Mov (Reg ESI, Imm 0x3000);
        Mov (Reg EDI, Imm 0x3100);
        Mov (Reg ECX, Imm 4);
        Str (Cmps, W8, Repe);
      ]
  in
  (* bytes 0: AA=AB? no: stops after first compare *)
  Alcotest.(check int) "stopped early" 3 (Cpu.get cpu ECX);
  Alcotest.(check bool) "ZF clear" false (Flags.zf cpu.flags)

let test_step_stos_scas () =
  let cpu, mem =
    exec_insns
      [
        Mov (Reg EAX, Imm 0x5A);
        Mov (Reg EDI, Imm 0x3000);
        Mov (Reg ECX, Imm 16);
        Str (Stos, W8, Rep);
        Mov (Reg EDI, Imm 0x3000);
        Mov (Reg ECX, Imm 32);
        Mov (Reg EAX, Imm 0x5A);
        Str (Scas, W8, Repe);
      ]
  in
  Alcotest.(check int) "filled" 0x5A5A5A5A (Memory.read32 mem 0x3000);
  (* scas runs until the zero byte after the 16 filled ones *)
  Alcotest.(check int) "stopped past fill" (0x3000 + 17) (Cpu.get cpu EDI)

let test_step_cmov_setcc () =
  let cpu, _ =
    exec_insns
      [
        Mov (Reg EAX, Imm 1);
        Mov (Reg EDX, Imm 99);
        Cmp (Reg EAX, Imm 5);
        Cmov (L, EAX, Reg EDX);
        Setcc (GE, ECX);
      ]
  in
  Alcotest.(check int) "cmov taken" 99 (Cpu.get cpu EAX);
  Alcotest.(check int) "setcc false" 0 (Cpu.get cpu ECX)

let test_step_fault_leaves_state () =
  (* a faulting instruction must not modify any state *)
  let m = Memory.create `Fault in
  Memory.install_page m 1 (Bytes.make 4096 '\000');
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EAX, Mem { base = None; index = None; disp = 0x800000 }));
  let p = Asm.assemble a in
  List.iter (fun (addr, b) -> Memory.blit_bytes m addr b) p.chunks;
  let cpu = Cpu.create () in
  cpu.eip <- 0x1000;
  Cpu.set cpu EAX 42;
  let snapshot = Cpu.copy cpu in
  let ic = Step.icache_create () in
  Alcotest.check_raises "fault" (Memory.Page_fault (0x800000 / 4096)) (fun () ->
      ignore (Step.step ic cpu m));
  Alcotest.(check bool) "state untouched" true (Cpu.equal snapshot cpu)

(* --- asm / loader / syscall --------------------------------------------- *)

let test_asm_duplicate_label () =
  let a = Asm.create () in
  Asm.label a "x";
  Alcotest.check_raises "dup" (Failure "Asm: duplicate label x") (fun () ->
      Asm.label a "x")

let test_asm_undefined_label () =
  let a = Asm.create () in
  Asm.jmp a "nowhere";
  Alcotest.check_raises "undef" (Failure "Asm: undefined label nowhere") (fun () ->
      ignore (Asm.assemble a))

let test_asm_layout () =
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a Nop;
  Asm.label a "after_nop";
  Asm.insn a Nop;
  let p = Asm.assemble a in
  Alcotest.(check int) "label address" 0x1001 (Program.symbol p "after_nop");
  Alcotest.(check int) "image size" 2 (Program.code_bytes p)

let test_syscall_write_and_exit () =
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Mem { base = None; index = None; disp = 0x3000 }, Imm 0x6F6C6568));
  (* "helo" *)
  Asm.insn a (Mov (Reg EBX, Imm 1));
  Asm.insn a (Mov (Reg ECX, Imm 0x3000));
  Asm.insn a (Mov (Reg EDX, Imm 4));
  Asm.insn a (Mov (Reg EAX, Imm 4));
  Asm.insn a Syscall;
  Asm.insn a (Mov (Reg EBX, Imm 33));
  Asm.insn a (Mov (Reg EAX, Imm 1));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let r = Interp_ref.boot ~seed:0 (Asm.assemble a) in
  ignore (Interp_ref.run_to_halt r);
  Alcotest.(check string) "output" "helo" (Interp_ref.output r);
  Alcotest.(check (option int)) "exit code" (Some 33) r.exit_code

let test_syscall_read () =
  let a = Asm.create ~base:0x1000 () in
  Asm.insn a (Mov (Reg EBX, Imm 0));
  Asm.insn a (Mov (Reg ECX, Imm 0x3000));
  Asm.insn a (Mov (Reg EDX, Imm 5));
  Asm.insn a (Mov (Reg EAX, Imm 3));
  Asm.insn a Syscall;
  Asm.insn a Halt;
  let r = Interp_ref.boot ~input:"abcdef" ~seed:0 (Asm.assemble a) in
  ignore (Interp_ref.run_to_halt r);
  Alcotest.(check int) "bytes read" 5 (Cpu.get r.cpu EAX);
  Alcotest.(check int) "buffer" (Char.code 'a') (Memory.read8 r.mem 0x3000);
  Alcotest.(check int) "buffer end" (Char.code 'e') (Memory.read8 r.mem 0x3004)

let test_run_until_counts () =
  let a = Asm.create ~base:0x1000 () in
  for _ = 1 to 10 do
    Asm.insn a Nop
  done;
  Asm.insn a Halt;
  let r = Interp_ref.boot ~seed:0 (Asm.assemble a) in
  Interp_ref.run_until r 4;
  Alcotest.(check int) "retired exactly" 4 r.retired;
  Alcotest.(check int) "eip advanced" 0x1004 r.cpu.eip

let () =
  Alcotest.run "guest"
    [
      ( "semantics",
        [
          Alcotest.test_case "add flags" `Quick test_add_flags;
          Alcotest.test_case "sub flags" `Quick test_sub_flags;
          Alcotest.test_case "adc/sbb chains" `Quick test_adc_sbb_chain;
          Alcotest.test_case "logic flags" `Quick test_logic_flags;
          Alcotest.test_case "inc/dec preserve CF" `Quick test_inc_dec_preserve_cf;
          Alcotest.test_case "shifts" `Quick test_shift_semantics;
          Alcotest.test_case "multiply" `Quick test_mul;
          Alcotest.test_case "divide" `Quick test_div;
          Alcotest.test_case "sign extension" `Quick test_sign_extend;
          Alcotest.test_case "float->int" `Quick test_f2i;
          Alcotest.test_case "fcmp" `Quick test_fcmp;
          QCheck_alcotest.to_alcotest prop_div_identity;
          QCheck_alcotest.to_alcotest prop_alu_matches_int64;
        ] );
      ( "conditions",
        [
          Alcotest.test_case "eval_cond table" `Quick test_eval_cond;
          QCheck_alcotest.to_alcotest prop_negate_cond;
        ] );
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          Alcotest.test_case "control transfers" `Quick test_codec_control;
          Alcotest.test_case "bad encoding" `Quick test_codec_bad_encoding;
          Alcotest.test_case "variable length" `Quick test_codec_variable_length;
        ] );
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "page boundary" `Quick test_memory_page_boundary;
          Alcotest.test_case "fault policy" `Quick test_memory_fault_policy;
          Alcotest.test_case "f64" `Quick test_memory_f64;
          Alcotest.test_case "equal_page" `Quick test_memory_equal_page;
        ] );
      ("cpu", [ Alcotest.test_case "get/set/copy/diff" `Quick test_cpu_ops ]);
      ( "step",
        [
          Alcotest.test_case "push/pop" `Quick test_step_push_pop;
          Alcotest.test_case "pop esp" `Quick test_step_pop_esp;
          Alcotest.test_case "call/ret" `Quick test_step_call_ret;
          Alcotest.test_case "rep movs" `Quick test_step_string_rep_movs;
          Alcotest.test_case "repe cmps" `Quick test_step_repe_cmps;
          Alcotest.test_case "stos/scas" `Quick test_step_stos_scas;
          Alcotest.test_case "cmov/setcc" `Quick test_step_cmov_setcc;
          Alcotest.test_case "fault atomicity" `Quick test_step_fault_leaves_state;
        ] );
      ( "asm-loader-syscall",
        [
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "layout" `Quick test_asm_layout;
          Alcotest.test_case "write + exit" `Quick test_syscall_write_and_exit;
          Alcotest.test_case "read input" `Quick test_syscall_read;
          Alcotest.test_case "run_until" `Quick test_run_until_counts;
        ] );
    ]
