module Registry = Darco_workloads.Registry
module B = Darco_workloads.Builder
open Darco_guest

(* Every synthetic benchmark must pass differential validation (checked at
   every 10k-instruction slice) on a bounded prefix, produce output, and
   exercise the pipeline. *)

let check_workload (e : Registry.entry) () =
  let cfg = { Darco.Config.default with slice_fuel = 10_000 } in
  let ctl = Darco.Controller.create ~cfg ~seed:42 (e.build ()) in
  ctl.validate_at_checkpoints <- true;
  (match Darco.Controller.run ~max_insns:120_000 ctl with
  | `Done | `Limit -> ()
  | `Diverged d ->
    Alcotest.failf "%s diverged at %d: %s" e.name d.Darco.Controller.at_retired
      (String.concat "; " d.Darco.Controller.details));
  let st = Darco.Controller.stats ctl in
  Alcotest.(check bool) "executed something" true (Darco.Stats.guest_total st > 5_000);
  Alcotest.(check bool) "translations happened" true (st.bb_translations > 0)

let workload_cases =
  List.map
    (fun (e : Registry.entry) -> Alcotest.test_case e.name `Quick (check_workload e))
    Registry.all

let test_registry_counts () =
  Alcotest.(check int) "11 SPECINT" 11 (List.length (Registry.by_suite Registry.Specint));
  Alcotest.(check int) "13 SPECFP" 13 (List.length (Registry.by_suite Registry.Specfp));
  Alcotest.(check int) "7 Physicsbench" 7
    (List.length (Registry.by_suite Registry.Physicsbench));
  Alcotest.(check int) "31 total" 31 (List.length Registry.all)

let test_registry_find () =
  Alcotest.(check string) "by substring" "429.mcf" (Registry.find "mcf").name;
  Alcotest.(check string) "exact" "470.lbm" (Registry.find "470.lbm").name;
  Alcotest.check_raises "ambiguous" Not_found (fun () -> ignore (Registry.find "4"));
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Registry.find "nonesuch"))

let test_deterministic_builds () =
  let p1 = (Registry.find "445.gobmk").build () in
  let p2 = (Registry.find "445.gobmk").build () in
  Alcotest.(check bool) "identical images" true
    (List.for_all2
       (fun (a1, b1) (a2, b2) -> a1 = a2 && Bytes.equal b1 b2)
       p1.Program.chunks p2.Program.chunks)

let test_scale_parameter () =
  let small = (Registry.find "429.mcf").build ~scale:1 () in
  let r1 = Interp_ref.boot ~seed:1 small in
  ignore (Interp_ref.run_to_halt r1);
  let big = (Registry.find "429.mcf").build ~scale:2 () in
  let r2 = Interp_ref.boot ~seed:1 big in
  ignore (Interp_ref.run_to_halt r2);
  Alcotest.(check bool) "scale grows dynamic length" true (r2.retired > r1.retired)

(* --- builder DSL ---------------------------------------------------------- *)

let run_builder b =
  let r = Interp_ref.boot ~seed:1 (B.assemble b) in
  ignore (Interp_ref.run_to_halt r);
  r

let test_builder_counted_loop () =
  let b = B.create ~seed:1 () in
  B.i b (Mov (Reg EAX, Imm 0));
  B.counted_loop b ~reg:ECX ~count:37 (fun () -> B.i b (Inc (Reg EAX)));
  B.exit_program b ~code:(Reg EAX);
  let r = run_builder b in
  Alcotest.(check (option int)) "loop count" (Some 37) r.exit_code

let test_builder_jump_table () =
  let b = B.create ~seed:2 () in
  let a = B.asm b in
  B.i b (Mov (Reg EAX, Imm 2));
  B.jump_table b "tbl" [ "t0"; "t1"; "t2" ];
  B.table_dispatch b ~table:"tbl" ~index:EAX;
  Asm.label a "t0";
  B.exit_program b ~code:(Imm 10);
  Asm.label a "t1";
  B.exit_program b ~code:(Imm 11);
  Asm.label a "t2";
  B.exit_program b ~code:(Imm 12);
  let r = run_builder b in
  Alcotest.(check (option int)) "dispatched to t2" (Some 12) r.exit_code

let test_builder_func_and_arrays () =
  let b = B.create ~seed:3 () in
  B.array32 b "arr" [| 5; 6; 7; 8 |];
  B.func b "sum4" (fun () ->
      B.i b (Mov (Reg EAX, Imm 0));
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:ECX ~count:4 (fun () ->
          B.load_arr b EDX "arr" ~index:(ESI, S4) ();
          B.i b (Alu (Add, Reg EAX, Reg EDX));
          B.i b (Inc (Reg ESI))));
  Asm.call (B.asm b) "sum4";
  B.exit_program b ~code:(Reg EAX);
  let r = run_builder b in
  Alcotest.(check (option int)) "sum" (Some 26) r.exit_code

let test_builder_print32 () =
  let b = B.create ~seed:4 () in
  B.print32 b (Imm 0x01020304);
  B.exit_program b ~code:(Imm 0);
  let r = run_builder b in
  Alcotest.(check string) "raw bytes LE" "\x04\x03\x02\x01" (Interp_ref.output r)

let () =
  Alcotest.run "workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "counts" `Quick test_registry_counts;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "deterministic" `Quick test_deterministic_builds;
          Alcotest.test_case "scale" `Quick test_scale_parameter;
        ] );
      ( "builder",
        [
          Alcotest.test_case "counted loop" `Quick test_builder_counted_loop;
          Alcotest.test_case "jump table" `Quick test_builder_jump_table;
          Alcotest.test_case "functions + arrays" `Quick test_builder_func_and_arrays;
          Alcotest.test_case "print32" `Quick test_builder_print32;
        ] );
      ("benchmarks", workload_cases);
    ]
