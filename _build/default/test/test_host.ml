open Darco_guest
open Darco_host

(* --- machine: store buffer, checkpoints, speculation -------------------- *)

let fresh_machine () =
  let mem = Memory.create `Auto_zero in
  (Machine.create mem, mem)

let test_gated_stores () =
  let m, mem = fresh_machine () in
  Machine.checkpoint m;
  Machine.store m W32 0x1000 0xAABBCCDD;
  Alcotest.(check int) "memory untouched before commit" 0 (Memory.read32 mem 0x1000);
  Alcotest.(check int) "buffer forwards" 0xAABBCCDD
    (Machine.load m W32 ~signed:false 0x1000);
  Machine.commit m;
  Alcotest.(check int) "committed" 0xAABBCCDD (Memory.read32 mem 0x1000)

let test_byte_merge_forwarding () =
  let m, _ = fresh_machine () in
  Machine.checkpoint m;
  Machine.store m W32 0x1000 0x11223344;
  Machine.store m W8 0x1001 0xFF;
  Alcotest.(check int) "partial overwrite visible" 0x1122FF44
    (Machine.load m W32 ~signed:false 0x1000)

let test_rollback_discards () =
  let m, mem = fresh_machine () in
  Machine.set m 20 123;
  Machine.checkpoint m;
  Machine.set m 20 456;
  Machine.store m W32 0x2000 99;
  Machine.rollback m;
  Alcotest.(check int) "register restored" 123 (Machine.get m 20);
  Alcotest.(check int) "store discarded" 0 (Memory.read32 mem 0x2000);
  Machine.commit m;
  Alcotest.(check int) "buffer empty after rollback" 0 (Memory.read32 mem 0x2000)

let test_alias_violation () =
  let m, _ = fresh_machine () in
  Machine.checkpoint m;
  ignore (Machine.load_spec m W32 ~signed:false 0x3000);
  Machine.store m W32 0x3004 1;
  Alcotest.check_raises "overlap" Machine.Alias_violation (fun () ->
      Machine.store m W8 0x3002 7)

let test_alias_cleared_on_commit () =
  let m, _ = fresh_machine () in
  Machine.checkpoint m;
  ignore (Machine.load_spec m W32 ~signed:false 0x3000);
  Machine.commit m;
  Machine.store m W32 0x3000 1;
  Alcotest.(check int) "in flight" 4 (Machine.in_flight_stores m)

let test_commit_page_fault_keeps_buffer () =
  let mem = Memory.create `Fault in
  let m = Machine.create mem in
  Machine.checkpoint m;
  Machine.store m W32 0x5000 42;
  Alcotest.check_raises "probe faults" (Memory.Page_fault 5) (fun () ->
      Machine.commit m);
  Memory.install_page mem 5 (Bytes.make Memory.page_size '\000');
  Machine.commit m;
  Alcotest.(check int) "committed after fault" 42 (Memory.read32 mem 0x5000)

let test_zero_register () =
  let m, _ = fresh_machine () in
  Machine.set m 0 999;
  Alcotest.(check int) "r0 ignores writes" 0 (Machine.get m 0)

let test_guest_mapping_roundtrip () =
  let m, _ = fresh_machine () in
  let cpu = Cpu.create () in
  Cpu.set cpu EAX 0x11;
  Cpu.set cpu EDI 0x77;
  cpu.flags <- Flags.make ~cf:true ~zf:false ~sf:true ~of_:false;
  Cpu.setf cpu F3 2.5;
  Machine.copy_guest_in m cpu;
  Alcotest.(check int) "eax in r1" 0x11 (Machine.get m (Regs.guest EAX));
  let cpu' = Cpu.create () in
  Machine.copy_guest_out m cpu';
  cpu'.eip <- cpu.eip;
  Alcotest.(check bool) "roundtrip" true (Cpu.equal cpu cpu')

(* --- flagcalc vs shared semantics ---------------------------------------- *)

let prop_flagcalc_add_sub =
  QCheck.Test.make ~name:"Mkfl add/sub matches Semantics.alu" ~count:1000
    QCheck.(triple bool (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))
    (fun (is_add, a0, b0) ->
      let a = Semantics.mask32 (a0 * 2654435761) in
      let b = Semantics.mask32 (b0 * 40503) in
      let kind : Code.flkind = if is_add then Fl_add else Fl_sub in
      let op : Isa.alu_op = if is_add then Add else Sub in
      Flagcalc.compute kind ~a ~b ~c:0 = snd (Semantics.alu op ~cf_in:false a b))

let prop_flagcalc_shift =
  QCheck.Test.make ~name:"Mkfl shifts match Semantics.shift" ~count:1000
    QCheck.(triple (int_bound 4) (int_bound 0xFFFFFF) (int_bound 40))
    (fun (k, v0, count) ->
      let v = Semantics.mask32 (v0 * 2654435761) in
      let kind : Code.flkind =
        match k with 0 -> Fl_shl | 1 -> Fl_shr | 2 -> Fl_sar | 3 -> Fl_rol | _ -> Fl_ror
      in
      let op : Isa.shift_op =
        match k with 0 -> Shl | 1 -> Shr | 2 -> Sar | 3 -> Rol | _ -> Ror
      in
      let incoming = 0b1010 in
      Flagcalc.compute kind ~a:v ~b:count ~c:incoming
      = snd (Semantics.shift op v ~count ~flags:incoming))

(* --- emulator: hand-built regions ---------------------------------------- *)

let mk_region ?(mode = `Super) ?(id = 0) ?(entry_pc = 0x1000) code : Code.region =
  {
    id;
    entry_pc;
    mode;
    base = 0xC0000000 + (id * 0x1000);
    code;
    incoming = [];
    invalidated = false;
  }

let exit_info ?(kind = Code.Exit_halt) ?(retired = 0) () : Code.exit_info =
  { exit_id = 0; kind; guest_retired = retired; chain = None; prefer_bb = false }

let run_region ?(fuel = 100000) m region =
  Emulator.run m ~resolve:(fun _ -> None) ~fuel region

let test_emulator_basic_alu () =
  let m, _ = fresh_machine () in
  let region =
    mk_region
      [|
        Code.Chk;
        Code.Li (20, 21);
        Code.Bini (Add, 21, 20, 21);
        Code.Bin (Mul, 22, 21, 20);
        Code.Commit 3;
        Code.Exit (exit_info ());
      |]
  in
  let res = run_region m region in
  Alcotest.(check int) "li+addi" 42 (Machine.get m 21);
  Alcotest.(check int) "mul" (42 * 21) (Machine.get m 22);
  Alcotest.(check int) "host retired" 6 res.host_retired;
  Alcotest.(check int) "guest credited to super" 3 res.guest_super;
  match res.stop with
  | Emulator.Stop_exit e -> Alcotest.(check bool) "halt exit" true (e.kind = Code.Exit_halt)
  | _ -> Alcotest.fail "expected exit"

let test_emulator_assert_rollback () =
  let m, mem = fresh_machine () in
  Machine.set m 20 5;
  let region =
    mk_region
      [|
        Code.Chk;
        Code.Li (21, 1);
        Code.Bin (Add, 20, 20, 21);
        Code.Store (W32, 20, 0, 0x4000);
        Code.Assert (Beq, 21, 0);
        Code.Commit 2;
        Code.Exit (exit_info ());
      |]
  in
  let res = run_region m region in
  (match res.stop with
  | Emulator.Stop_rollback (`Assert, r) -> Alcotest.(check int) "region id" 0 r.id
  | _ -> Alcotest.fail "expected rollback");
  Alcotest.(check int) "register rolled back" 5 (Machine.get m 20);
  Alcotest.(check int) "store never committed" 0 (Memory.read32 mem 0x4000);
  Alcotest.(check int) "no guest retired" 0 res.guest_super;
  Alcotest.(check bool) "wasted work counted" true (res.wasted_host > 0)

let test_emulator_chaining_and_fuel () =
  let m, _ = fresh_machine () in
  let b =
    mk_region ~id:2
      [|
        Code.Chk;
        Code.Bini (Add, 20, 20, 1);
        Code.Commit 1;
        Code.Exit (exit_info ~kind:(Code.Exit_direct 0x2000) ());
      |]
  in
  let exit_a = exit_info ~kind:(Code.Exit_direct 0x1000) () in
  let a = mk_region ~id:1 [| Code.Chk; Code.Commit 1; Code.Exit exit_a |] in
  exit_a.chain <- Some b;
  b.incoming <- [ exit_a ];
  let res = run_region m a in
  Alcotest.(check int) "chain followed" 1 res.chains_followed;
  Alcotest.(check int) "both retired" 2 (res.guest_super + res.guest_bb);
  (match res.stop with
  | Emulator.Stop_exit e ->
    Alcotest.(check bool) "stopped at B's exit" true (e.kind = Code.Exit_direct 0x2000)
  | _ -> Alcotest.fail "expected exit");
  let exit_loop = exit_info ~kind:(Code.Exit_direct 0x3000) () in
  let looper =
    mk_region ~id:3 ~entry_pc:0x3000 [| Code.Chk; Code.Commit 1; Code.Exit exit_loop |]
  in
  exit_loop.chain <- Some looper;
  let res = Emulator.run m ~resolve:(fun _ -> None) ~fuel:50 looper in
  match res.stop with
  | Emulator.Stop_fuel pc -> Alcotest.(check int) "fuel resumes at entry" 0x3000 pc
  | _ -> Alcotest.fail "expected fuel stop"

let test_emulator_invalidated_chain_not_followed () =
  let m, _ = fresh_machine () in
  let dead = mk_region ~id:9 [| Code.Chk; Code.Commit 0; Code.Exit (exit_info ()) |] in
  dead.invalidated <- true;
  let e = exit_info ~kind:(Code.Exit_direct 0x5000) () in
  e.chain <- Some dead;
  let a = mk_region ~id:8 [| Code.Chk; Code.Commit 1; Code.Exit e |] in
  let res = run_region m a in
  match res.stop with
  | Emulator.Stop_exit e' ->
    Alcotest.(check bool) "fell back to TOL" true (e'.kind = Code.Exit_direct 0x5000)
  | _ -> Alcotest.fail "expected exit"

let test_emulator_branches () =
  let m, _ = fresh_machine () in
  Machine.set m 20 7;
  let region =
    mk_region
      [|
        Code.Chk;
        Code.Li (21, 7);
        Code.B (Beq, 20, 21, 5);
        Code.Li (22, 666);
        Code.J 6;
        Code.Li (22, 42);
        Code.Commit 1;
        Code.Exit (exit_info ());
      |]
  in
  ignore (run_region m region);
  Alcotest.(check int) "took branch" 42 (Machine.get m 22)

let test_emulator_jr_resolution () =
  let m, _ = fresh_machine () in
  let target =
    mk_region ~id:5 ~entry_pc:0x7777
      [| Code.Chk; Code.Bini (Add, 22, 0, 55); Code.Commit 1; Code.Exit (exit_info ()) |]
  in
  let resolve addr = if addr = target.base then Some target else None in
  Machine.set m 20 target.base;
  Machine.set m 21 0x7777;
  let region = mk_region ~id:6 [| Code.Chk; Code.Commit 1; Code.Jr (20, 21) |] in
  let res = Emulator.run m ~resolve ~fuel:1000 region in
  Alcotest.(check int) "entered target" 55 (Machine.get m 22);
  Machine.set m 20 0xDEAD0000;
  let res2 = Emulator.run m ~resolve ~fuel:1000 region in
  (match res2.stop with
  | Emulator.Stop_indirect_miss pc -> Alcotest.(check int) "guest pc fallback" 0x7777 pc
  | _ -> Alcotest.fail "expected indirect miss");
  ignore res

let test_emulator_callrt_weight () =
  let m, _ = fresh_machine () in
  m.f.(8) <- 0.5;
  let region =
    mk_region
      [| Code.Chk; Code.Callrt_f (Rt_sin, 9, 8); Code.Commit 1; Code.Exit (exit_info ()) |]
  in
  let res = run_region m region in
  Alcotest.(check (float 1e-12)) "sin computed" (sin 0.5) m.f.(9);
  Alcotest.(check int) "stream weight includes rt cost"
    (3 + Code.rt_cost Rt_sin)
    res.host_retired

let test_emulator_isel_mkfl () =
  let m, _ = fresh_machine () in
  let region =
    mk_region
      [|
        Code.Chk;
        Code.Li (20, 3);
        Code.Li (21, 5);
        Code.Mkfl (Fl_sub, 22, 20, 21, 0);
        Code.Bini (And, 23, 22, 1);
        Code.Isel (24, 23, 20, 21);
        Code.Commit 1;
        Code.Exit (exit_info ());
      |]
  in
  ignore (run_region m region);
  Alcotest.(check int) "flags via mkfl"
    (snd (Semantics.alu Sub ~cf_in:false 3 5))
    (Machine.get m 22);
  Alcotest.(check int) "isel picked true side" 3 (Machine.get m 24)

let prop_emulator_binop_vs_semantics =
  QCheck.Test.make ~name:"host ALU = shared semantics" ~count:1000
    QCheck.(triple (int_bound 13) (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))
    (fun (opi, a0, b0) ->
      let ops : Code.binop array =
        [| Add; Sub; Mul; Mulhu; Mulhs; And; Or; Xor; Shl; Shr; Sar; Slt; Sltu; Seq |]
      in
      let op = ops.(opi) in
      let a = Semantics.mask32 (a0 * 48271) in
      let b = Semantics.mask32 (b0 * 69621) in
      let v = Emulator.eval_binop op a b in
      let expected =
        match op with
        | Add -> Semantics.mask32 (a + b)
        | Sub -> Semantics.mask32 (a - b)
        | Mul ->
          let lo, _, _ = Semantics.mul_u a b in
          lo
        | Mulhu ->
          let _, hi, _ = Semantics.mul_u a b in
          hi
        | Mulhs ->
          let _, hi, _ = Semantics.mul_s a b in
          hi
        | And -> a land b
        | Or -> a lor b
        | Xor -> a lxor b
        | Shl -> Semantics.mask32 (a lsl (b land 31))
        | Shr -> a lsr (b land 31)
        | Sar -> Semantics.mask32 (Semantics.signed a asr (b land 31))
        | Slt -> if Semantics.signed a < Semantics.signed b then 1 else 0
        | Sltu -> if a < b then 1 else 0
        | Seq -> if a = b then 1 else 0
        | Sne -> if a <> b then 1 else 0
      in
      v = expected)

let test_defs_uses_consistency () =
  let i = Code.Bin (Add, 20, 21, 22) in
  Alcotest.(check (list int)) "defs" [ 20 ] (Code.defs i);
  Alcotest.(check (list int)) "uses" [ 21; 22 ] (Code.uses i);
  let s = Code.Store (W32, 20, 21, 0) in
  Alcotest.(check (list int)) "store defs nothing" [] (Code.defs s);
  Alcotest.(check (list int)) "store uses" [ 20; 21 ] (Code.uses s);
  let z = Code.Bin (Add, 0, 0, 21) in
  Alcotest.(check (list int)) "r0 filtered from defs" [] (Code.defs z);
  Alcotest.(check (list int)) "r0 filtered from uses" [ 21 ] (Code.uses z);
  let f = Code.Fbin (Fadd, 8, 9, 10) in
  Alcotest.(check (list int)) "fdefs" [ 8 ] (Code.fdefs f);
  Alcotest.(check (list int)) "fuses" [ 9; 10 ] (Code.fuses f)

let () =
  Alcotest.run "host"
    [
      ( "machine",
        [
          Alcotest.test_case "gated stores" `Quick test_gated_stores;
          Alcotest.test_case "byte merge forwarding" `Quick test_byte_merge_forwarding;
          Alcotest.test_case "rollback" `Quick test_rollback_discards;
          Alcotest.test_case "alias violation" `Quick test_alias_violation;
          Alcotest.test_case "alias cleared on commit" `Quick test_alias_cleared_on_commit;
          Alcotest.test_case "commit fault keeps buffer" `Quick
            test_commit_page_fault_keeps_buffer;
          Alcotest.test_case "zero register" `Quick test_zero_register;
          Alcotest.test_case "guest mapping" `Quick test_guest_mapping_roundtrip;
        ] );
      ( "flagcalc",
        [
          QCheck_alcotest.to_alcotest prop_flagcalc_add_sub;
          QCheck_alcotest.to_alcotest prop_flagcalc_shift;
        ] );
      ( "emulator",
        [
          Alcotest.test_case "basic alu" `Quick test_emulator_basic_alu;
          Alcotest.test_case "assert rollback" `Quick test_emulator_assert_rollback;
          Alcotest.test_case "chaining + fuel" `Quick test_emulator_chaining_and_fuel;
          Alcotest.test_case "invalidated chain" `Quick
            test_emulator_invalidated_chain_not_followed;
          Alcotest.test_case "branches" `Quick test_emulator_branches;
          Alcotest.test_case "jr resolution" `Quick test_emulator_jr_resolution;
          Alcotest.test_case "runtime call weight" `Quick test_emulator_callrt_weight;
          Alcotest.test_case "isel + mkfl" `Quick test_emulator_isel_mkfl;
          QCheck_alcotest.to_alcotest prop_emulator_binop_vs_semantics;
          Alcotest.test_case "def/use sets" `Quick test_defs_uses_consistency;
        ] );
    ]
