open Darco_guest

let disassemble_at mem ~pc ~count =
  let ic = Step.icache_create () in
  let rec go pc n acc =
    if n = 0 then List.rev acc
    else
      match Step.fetch ic mem pc with
      | insn, len -> go (pc + len) (n - 1) ((pc, insn) :: acc)
      | exception (Codec.Bad_encoding _ | Memory.Page_fault _) -> List.rev acc
  in
  go pc count []

let disassemble program ?(limit = 100_000) () =
  let _, mem = Loader.boot program in
  disassemble_at mem ~pc:program.Program.entry ~count:limit

let trace ?(limit = max_int) ?input ~seed program callback =
  let r = Interp_ref.boot ?input ~seed program in
  let ic = Step.icache_create () in
  let steps = ref 0 in
  while (not r.cpu.Cpu.halted) && !steps < limit do
    incr steps;
    let pc = r.cpu.Cpu.eip in
    let insn, _ = Step.fetch ic r.mem pc in
    (match insn with
    | Isa.Syscall -> ignore (Interp_ref.service_syscall r)
    | _ -> Interp_ref.run_until r (r.retired + 1));
    callback pc insn r.cpu
  done

let pp_listing ppf listing =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (pc, insn) -> Format.fprintf ppf "0x%06x: %s@ " pc (Isa.to_string insn))
    listing;
  Format.fprintf ppf "@]"
