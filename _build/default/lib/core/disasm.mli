open Darco_guest

(** Monitoring tools: guest disassembly and execution tracing (part of the
    infrastructure's debug/monitoring toolchain). *)

val disassemble : Program.t -> ?limit:int -> unit -> (int * Isa.insn) list
(** Linear-sweep disassembly of a program image from its entry point
    (stops at undecodable bytes or after [limit] instructions). *)

val disassemble_at : Memory.t -> pc:int -> count:int -> (int * Isa.insn) list
(** Disassemble [count] instructions from a live memory image. *)

val trace :
  ?limit:int ->
  ?input:string ->
  seed:int ->
  Program.t ->
  (int -> Isa.insn -> Cpu.t -> unit) ->
  unit
(** Interpret the program on the reference emulator, invoking the callback
    with (pc, instruction, post-state) for every retired instruction. *)

val pp_listing : Format.formatter -> (int * Isa.insn) list -> unit
