open Darco_guest

(** The debug toolchain of §V-D.

    When a state validation fails, DARCO first pinpoints the basic block
    where the problem originated (by re-running with fine-grained
    validation), then traces back to the particular step that introduced the
    bug by bisecting over the plug-and-play pass toggles: the run is
    repeated with individual optimizations disabled until the divergence
    disappears, naming the culprit pass. *)

type report = {
  diverged : bool;
  first_divergence : (int * int * string list) option;
      (** (retired guest insns, guest PC, state differences) of the first
          divergent basic block *)
  culprit : string option;
      (** the pass whose disabling makes the run validate *)
  tried : (string * bool) list;  (** variant name, run validated? *)
}

val investigate : ?cfg:Config.t -> ?input:string -> seed:int -> Program.t -> report
(** Full investigation: fine-grained localization followed by pass
    bisection.  Cheap when the program does not diverge at all. *)

val pp_report : Format.formatter -> report -> unit
