(** Instruction scheduling.

    Builds the data-dependence graph of each straight-line segment (the
    paper's DDG phase) — value dependences, guest-state access ordering,
    memory-disambiguation edges — and list-schedules by critical path.

    Control speculation has already turned superblock-internal branches into
    asserts, so segments span multiple guest basic blocks and instructions
    move freely across the asserts.  Memory speculation: a "may alias"
    store→load edge is breakable; if the scheduler hoists the load above the
    store, the load becomes an [Isload], protected at run time by the alias
    table (a conflict rolls back to the checkpoint). *)

val run : Config.t -> Regionir.t -> Regionir.t

val latency : Ir.t -> int
(** The latency model used for critical-path priorities (also exercised by
    tests). *)
