open Darco_host

(** Linear-scan register allocation (the paper's stated algorithm).

    Virtual registers are mapped to the allocatable host pools of
    {!Darco_host.Regs}; when pressure exceeds the pools, the interval with
    the furthest end is spilled to an 8-byte slot in the region's TOL spill
    area.  Array-order live intervals are sound because region control is
    strictly forward (any execution visits a monotone subsequence of
    indices). *)

type loc = Phys of Code.reg | Slot of int

type t = {
  int_loc : loc array;   (** indexed by vreg *)
  f_loc : loc array;     (** indexed by vfreg; [Phys] holds an freg *)
  slot_count : int;
}

val allocate : Regionir.t -> t

val location : t -> Ir.vreg -> loc
val flocation : t -> Ir.vfreg -> loc
