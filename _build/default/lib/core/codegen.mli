open Darco_host

(** Code generation: lowers register-allocated region IR to host
    instructions, assembling the full region body the hardware executes:

    - checkpoint at entry;
    - for BBM regions, the profiling/promotion prologue (execution counter
      update and SBM-threshold check as inline host code);
    - the lowered body (spilled vregs get reload/writeback sequences around
      their uses via the reserved spill scratch registers);
    - exit paths: optional edge-counter update, [Commit] with the retired
      guest-instruction count, then either a chainable [Exit] or the inline
      IBTC probe sequence for indirect exits. *)

val lower :
  Config.t ->
  Regionir.t ->
  alloc:Regalloc.t ->
  spill_base:int ->
  ibtc_base:int ->
  Code.insn array * Code.exit_info list
(** Returns the host code and the exit records (for chaining management). *)
