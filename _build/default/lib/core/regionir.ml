type t = {
  entry_pc : int;
  mode : [ `Bb | `Super ];
  body : Ir.t array;
  prof : (int * int) option;
  guest_len : int;
}

let labels r =
  let marks = Array.make (Array.length r.body) false in
  Array.iter
    (function Ir.Ibr (_, _, _, t) -> marks.(t) <- true | _ -> ())
    r.body;
  marks

let check_forward_only r =
  let n = Array.length r.body in
  Array.iteri
    (fun i insn ->
      match insn with
      | Ir.Ibr (_, _, _, t) -> assert (t > i && t < n)
      | Ir.Iexit _ -> ()
      | _ -> assert (i + 1 < n) (* fallthrough must stay in range *))
    r.body;
  (* The last instruction must be an exit (nothing can fall off the end). *)
  match r.body.(n - 1) with Ir.Iexit _ -> () | _ -> assert false
