open Darco_guest
open Darco_host

type outcome = Exited of Ir.exit_spec * int | Assert_failed | Alias_failed

exception Alias_hit

let cmp_holds (c : Code.cmp) a b =
  match c with
  | Beq -> a = b
  | Bne -> a <> b
  | Blt -> Semantics.signed a < Semantics.signed b
  | Bge -> Semantics.signed a >= Semantics.signed b
  | Bltu -> a < b
  | Bgeu -> a >= b

let run (r : Regionir.t) (cpu : Cpu.t) mem =
  let max_reg acc insn = List.fold_left max acc insn in
  let nv =
    1
    + Array.fold_left (fun acc i -> max_reg acc (Ir.defs i @ Ir.uses i)) 0 r.body
  in
  let nf =
    1
    + Array.fold_left (fun acc i -> max_reg acc (Ir.fdefs i @ Ir.fuses i)) 0 r.body
  in
  let v = Array.make nv 0 in
  let f = Array.make nf 0.0 in
  (* Byte-level gated store buffer, like the host machine's: a failed
     assert leaves memory untouched. *)
  let sbuf : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let aliases : (int * int) list ref = ref [] in
  let store_byte addr value = Hashtbl.replace sbuf addr (value land 0xFF) in
  let load_byte addr =
    match Hashtbl.find_opt sbuf addr with Some b -> b | None -> Memory.read8 mem addr
  in
  let overlaps a la b lb = a < b + lb && b < a + la in
  let check_alias addr len =
    if List.exists (fun (a, l) -> overlaps a l addr len) !aliases then raise Alias_hit
  in
  let store w addr value =
    check_alias addr (Isa.width_bytes w);
    for k = 0 to Isa.width_bytes w - 1 do
      store_byte (addr + k) (value lsr (8 * k))
    done
  in
  let load w ~signed addr =
    let value = ref 0 in
    for k = Isa.width_bytes w - 1 downto 0 do
      value := (!value lsl 8) lor load_byte (addr + k)
    done;
    if signed then Semantics.sign_extend w !value else !value
  in
  let fstore addr x =
    check_alias addr 8;
    let bits = Int64.bits_of_float x in
    for k = 0 to 7 do
      store_byte (addr + k) (Int64.to_int (Int64.shift_right_logical bits (8 * k)))
    done
  in
  let fload addr =
    let bits = ref 0L in
    for k = 7 downto 0 do
      bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (load_byte (addr + k)))
    done;
    Int64.float_of_bits !bits
  in
  let rec exec i =
    match r.body.(i) with
    | Ir.Iget (d, gr) ->
      v.(d) <- Cpu.get cpu gr;
      exec (i + 1)
    | Ir.Iput (gr, s) ->
      Cpu.set cpu gr v.(s);
      exec (i + 1)
    | Ir.Igetf (d, gf) ->
      f.(d) <- Cpu.getf cpu gf;
      exec (i + 1)
    | Ir.Iputf (gf, s) ->
      Cpu.setf cpu gf f.(s);
      exec (i + 1)
    | Ir.Igetfl d ->
      v.(d) <- cpu.flags;
      exec (i + 1)
    | Ir.Iputfl s ->
      cpu.flags <- v.(s) land Flags.mask;
      exec (i + 1)
    | Ir.Ili (d, k) ->
      v.(d) <- Semantics.mask32 k;
      exec (i + 1)
    | Ir.Imov (d, s) ->
      v.(d) <- v.(s);
      exec (i + 1)
    | Ir.Ibin (op, d, a, b) ->
      v.(d) <- Emulator.eval_binop op v.(a) v.(b);
      exec (i + 1)
    | Ir.Ibini (op, d, a, k) ->
      v.(d) <- Emulator.eval_binop op v.(a) (Semantics.mask32 k);
      exec (i + 1)
    | Ir.Imkfl (kind, d, a, b, c) ->
      v.(d) <- Flagcalc.compute kind ~a:v.(a) ~b:v.(b) ~c:v.(c);
      exec (i + 1)
    | Ir.Iisel (d, c, a, b) ->
      v.(d) <- (if v.(c) <> 0 then v.(a) else v.(b));
      exec (i + 1)
    | Ir.Iload (w, sg, d, a, off) ->
      v.(d) <- load w ~signed:sg (Semantics.mask32 (v.(a) + off));
      exec (i + 1)
    | Ir.Isload (w, sg, d, a, off) ->
      let addr = Semantics.mask32 (v.(a) + off) in
      v.(d) <- load w ~signed:sg addr;
      aliases := (addr, Isa.width_bytes w) :: !aliases;
      exec (i + 1)
    | Ir.Istore (w, s, a, off) ->
      store w (Semantics.mask32 (v.(a) + off)) v.(s);
      exec (i + 1)
    | Ir.Ifli (d, x) ->
      f.(d) <- x;
      exec (i + 1)
    | Ir.Ifmov (d, s) ->
      f.(d) <- f.(s);
      exec (i + 1)
    | Ir.Ifbin (op, d, a, b) ->
      let g : Isa.fp_bin =
        match op with Fadd -> Fadd | Fsub -> Fsub | Fmul -> Fmul | Fdiv -> Fdiv
      in
      f.(d) <- Semantics.fp_bin g f.(a) f.(b);
      exec (i + 1)
    | Ir.Ifun (op, d, a) ->
      let g : Isa.fp_un = match op with Fsqrt -> Fsqrt | Fabs -> Fabs | Fneg -> Fchs in
      f.(d) <- Semantics.fp_un g f.(a);
      exec (i + 1)
    | Ir.Ifload (d, a, off) ->
      f.(d) <- fload (Semantics.mask32 (v.(a) + off));
      exec (i + 1)
    | Ir.Ifstore (s, a, off) ->
      fstore (Semantics.mask32 (v.(a) + off)) f.(s);
      exec (i + 1)
    | Ir.Ifcmp (d, a, b) ->
      v.(d) <- Semantics.fcmp_flags f.(a) f.(b);
      exec (i + 1)
    | Ir.Icvtif (d, a) ->
      f.(d) <- Semantics.i2f v.(a);
      exec (i + 1)
    | Ir.Icvtfi (d, a) ->
      v.(d) <- Semantics.f2i f.(a);
      exec (i + 1)
    | Ir.Irt_f (fn, d, a) ->
      let g : Isa.fp_un =
        match fn with Rt_sin -> Fsin | Rt_cos -> Fcos | _ -> assert false
      in
      f.(d) <- Semantics.fp_un g f.(a);
      exec (i + 1)
    | Ir.Irt_div { signed; q; r = rr; hi; lo; d } ->
      let qv, rv =
        if signed then Semantics.div_s ~hi:v.(hi) ~lo:v.(lo) v.(d)
        else Semantics.div_u ~hi:v.(hi) ~lo:v.(lo) v.(d)
      in
      v.(q) <- qv;
      v.(rr) <- rv;
      exec (i + 1)
    | Ir.Ibr (c, a, b, t) -> if cmp_holds c v.(a) v.(b) then exec t else exec (i + 1)
    | Ir.Iassert (c, a, b) -> if cmp_holds c v.(a) v.(b) then exec (i + 1) else Assert_failed
    | Ir.Iexit spec ->
      Hashtbl.iter (fun addr byte -> Memory.write8 mem addr byte) sbuf;
      let target =
        match spec.target with
        | Ir.Xdirect pc | Ir.Xsyscall pc | Ir.Xinterp pc -> pc
        | Ir.Xindirect s -> v.(s)
        | Ir.Xhalt -> -1
      in
      Exited (spec, target)
  in
  try exec 0 with Alias_hit -> Alias_failed
