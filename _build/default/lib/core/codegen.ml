open Darco_host


(* A growing buffer of host instructions. *)
type buf = { mutable arr : Code.insn array; mutable len : int }

let buf_create () = { arr = Array.make 64 Code.Nop; len = 0 }

let push b insn =
  if b.len = Array.length b.arr then begin
    let bigger = Array.make (2 * b.len) Code.Nop in
    Array.blit b.arr 0 bigger 0 b.len;
    b.arr <- bigger
  end;
  b.arr.(b.len) <- insn;
  b.len <- b.len + 1

let move rd rs = Code.Bini (Or, rd, rs, 0)

let lower (cfg : Config.t) (r : Regionir.t) ~(alloc : Regalloc.t) ~spill_base ~ibtc_base =
  let b = buf_create () in
  let exits = ref [] in
  let exit_id = ref 0 in
  let slot_addr s = spill_base + (8 * s) in
  (* Resolve an integer use: a physical register, or a reload into the
     next free spill scratch. *)
  let use_scratch = ref 0 in
  let take_scratch () =
    let r =
      match !use_scratch with
      | 0 -> Regs.spill_scratch0
      | 1 -> Regs.spill_scratch1
      | _ -> 15
    in
    incr use_scratch;
    assert (!use_scratch <= 3);
    r
  in
  let use v =
    match Regalloc.location alloc v with
    | Phys p -> p
    | Slot s ->
      let sc = take_scratch () in
      push b (Code.Load (W32, false, sc, Regs.zero, slot_addr s));
      sc
  in
  let fuse_scratch = ref 0 in
  let fuse v =
    match Regalloc.flocation alloc v with
    | Phys p -> p
    | Slot s ->
      let sc = if !fuse_scratch = 0 then Regs.fscratch0 else Regs.fscratch1 in
      incr fuse_scratch;
      assert (!fuse_scratch <= 2);
      push b (Code.Fload (sc, Regs.zero, slot_addr s));
      sc
  in
  (* Resolve a definition: returns the register to compute into and a
     writeback thunk to run after the instruction is emitted. *)
  let def_scratch = ref 0 in
  let def v =
    match Regalloc.location alloc v with
    | Phys p -> (p, fun () -> ())
    | Slot s ->
      let sc = if !def_scratch = 0 then Regs.spill_scratch0 else Regs.spill_scratch1 in
      incr def_scratch;
      (sc, fun () -> push b (Code.Store (W32, sc, Regs.zero, slot_addr s)))
  in
  let fdef v =
    match Regalloc.flocation alloc v with
    | Phys p -> (p, fun () -> ())
    | Slot s -> (Regs.fscratch0, fun () -> push b (Code.Fstore (Regs.fscratch0, Regs.zero, slot_addr s)))
  in
  let reset_scratches () =
    use_scratch := 0;
    fuse_scratch := 0;
    def_scratch := 0
  in
  let emit_counter_bump addr =
    push b (Code.Li (Regs.scratch0, addr));
    push b (Code.Load (W32, false, Regs.scratch1, Regs.scratch0, 0));
    push b (Code.Bini (Add, Regs.scratch1, Regs.scratch1, 1));
    push b (Code.Store (W32, Regs.scratch1, Regs.scratch0, 0))
  in
  let make_exit kind ~retired ~prefer_bb =
    let e =
      {
        Code.exit_id = !exit_id;
        kind;
        guest_retired = retired;
        chain = None;
        prefer_bb;
      }
    in
    incr exit_id;
    exits := e :: !exits;
    e
  in
  let emit_exit_path (spec : Ir.exit_spec) =
    (match spec.edge with None -> () | Some addr -> emit_counter_bump addr);
    push b (Code.Commit spec.retired);
    match spec.target with
    | Ir.Xdirect pc ->
      push b (Code.Exit (make_exit (Exit_direct pc) ~retired:spec.retired ~prefer_bb:spec.prefer_bb))
    | Ir.Xsyscall pc ->
      push b (Code.Exit (make_exit (Exit_syscall pc) ~retired:spec.retired ~prefer_bb:false))
    | Ir.Xinterp pc ->
      push b (Code.Exit (make_exit (Exit_interp pc) ~retired:spec.retired ~prefer_bb:false))
    | Ir.Xhalt ->
      push b (Code.Exit (make_exit Exit_halt ~retired:spec.retired ~prefer_bb:false))
    | Ir.Xindirect v ->
      let rt = use v in
      if cfg.use_ibtc then begin
        let mask = (1 lsl cfg.ibtc_bits) - 1 in
        push b (Code.Bini (And, Regs.scratch0, rt, mask));
        push b (Code.Bini (Shl, Regs.scratch0, Regs.scratch0, 3));
        push b (Code.Li (Regs.scratch1, ibtc_base));
        push b (Code.Bin (Add, Regs.scratch0, Regs.scratch0, Regs.scratch1));
        push b (Code.Load (W32, false, Regs.scratch1, Regs.scratch0, 0));
        (* On tag mismatch skip the two hit instructions. *)
        push b (Code.B (Bne, Regs.scratch1, rt, b.len + 3));
        push b (Code.Load (W32, false, Regs.scratch2, Regs.scratch0, 4));
        push b (Code.Jr (Regs.scratch2, rt))
      end;
      push b (Code.Exit (make_exit (Exit_indirect rt) ~retired:spec.retired ~prefer_bb:false))
  in
  (* --- prologue -------------------------------------------------------- *)
  push b Code.Chk;
  (match r.prof with
  | None -> ()
  | Some (ctr_addr, threshold) ->
    emit_counter_bump ctr_addr;
    push b (Code.Li (Regs.scratch2, threshold));
    (* continue with the body if count < threshold; otherwise request
       promotion *)
    push b (Code.B (Blt, Regs.scratch1, Regs.scratch2, b.len + 3));
    push b (Code.Commit 0);
    push b (Code.Exit (make_exit (Exit_promote r.entry_pc) ~retired:0 ~prefer_bb:false)));
  (* --- body ------------------------------------------------------------ *)
  let n = Array.length r.body in
  let ir2host = Array.make n (-1) in
  let fixups = ref [] in
  Array.iteri
    (fun i insn ->
      reset_scratches ();
      ir2host.(i) <- b.len;
      match (insn : Ir.t) with
      | Iget (v, gr) ->
        let rd, wb = def v in
        push b (move rd (Regs.guest gr));
        wb ()
      | Iput (gr, v) -> push b (move (Regs.guest gr) (use v))
      | Igetf (f, gf) ->
        let fd, wb = fdef f in
        push b (Code.Fmov (fd, Regs.guest_f gf));
        wb ()
      | Iputf (gf, f) -> push b (Code.Fmov (Regs.guest_f gf, fuse f))
      | Igetfl v ->
        let rd, wb = def v in
        push b (move rd Regs.flags);
        wb ()
      | Iputfl v -> push b (move Regs.flags (use v))
      | Ili (v, k) ->
        let rd, wb = def v in
        push b (Code.Li (rd, k));
        wb ()
      | Imov (d, s) ->
        let rs = use s in
        let rd, wb = def d in
        push b (move rd rs);
        wb ()
      | Ibin (op, d, a, bb) ->
        let ra = use a in
        let rb = use bb in
        let rd, wb = def d in
        push b (Code.Bin (op, rd, ra, rb));
        wb ()
      | Ibini (op, d, a, k) ->
        let ra = use a in
        let rd, wb = def d in
        push b (Code.Bini (op, rd, ra, k));
        wb ()
      | Imkfl (kind, d, a, bb, c) ->
        let ra = use a in
        let rb = use bb in
        let rc = use c in
        let rd, wb = def d in
        push b (Code.Mkfl (kind, rd, ra, rb, rc));
        wb ()
      | Iisel (d, c, a, bb) ->
        let rc = use c in
        let ra = use a in
        let rb = use bb in
        let rd, wb = def d in
        push b (Code.Isel (rd, rc, ra, rb));
        wb ()
      | Iload (w, sg, d, a, off) ->
        let ra = use a in
        let rd, wb = def d in
        push b (Code.Load (w, sg, rd, ra, off));
        wb ()
      | Isload (w, sg, d, a, off) ->
        let ra = use a in
        let rd, wb = def d in
        push b (Code.Sload (w, sg, rd, ra, off));
        wb ()
      | Istore (w, v, a, off) ->
        let rv = use v in
        let ra = use a in
        push b (Code.Store (w, rv, ra, off))
      | Ifli (f, x) ->
        let fd, wb = fdef f in
        push b (Code.Fli (fd, x));
        wb ()
      | Ifmov (d, s) ->
        let fs = fuse s in
        let fd, wb = fdef d in
        push b (Code.Fmov (fd, fs));
        wb ()
      | Ifbin (op, d, a, bb) ->
        let fa = fuse a in
        let fb = fuse bb in
        let fd, wb = fdef d in
        push b (Code.Fbin (op, fd, fa, fb));
        wb ()
      | Ifun (op, d, a) ->
        let fa = fuse a in
        let fd, wb = fdef d in
        push b (Code.Fun (op, fd, fa));
        wb ()
      | Ifload (f, a, off) ->
        let ra = use a in
        let fd, wb = fdef f in
        push b (Code.Fload (fd, ra, off));
        wb ()
      | Ifstore (f, a, off) ->
        let fv = fuse f in
        let ra = use a in
        push b (Code.Fstore (fv, ra, off))
      | Ifcmp (d, a, bb) ->
        let fa = fuse a in
        let fb = fuse bb in
        let rd, wb = def d in
        push b (Code.Fcmp (rd, fa, fb));
        wb ()
      | Icvtif (f, v) ->
        let rv = use v in
        let fd, wb = fdef f in
        push b (Code.Cvtif (fd, rv));
        wb ()
      | Icvtfi (v, f) ->
        let fa = fuse f in
        let rd, wb = def v in
        push b (Code.Cvtfi (rd, fa));
        wb ()
      | Irt_f (fn, d, s) ->
        let fs = fuse s in
        let fd, wb = fdef d in
        push b (Code.Callrt_f (fn, fd, fs));
        wb ()
      | Irt_div { signed; q; r = rr; hi; lo; d } ->
        let rhi = use hi in
        let rlo = use lo in
        let rd = use d in
        let rq, wbq = def q in
        let rrem, wbr = def rr in
        push b (Code.Callrt_div { signed; q = rq; r = rrem; hi = rhi; lo = rlo; d = rd });
        wbq ();
        wbr ()
      | Ibr (c, a, bb, t) ->
        let ra = use a in
        let rb = use bb in
        fixups := (b.len, t) :: !fixups;
        push b (Code.B (c, ra, rb, -1))
      | Iassert (c, a, bb) ->
        let ra = use a in
        let rb = use bb in
        push b (Code.Assert (c, ra, rb))
      | Iexit spec -> emit_exit_path spec)
    r.body;
  (* patch intra-region branch targets *)
  List.iter
    (fun (host_idx, ir_target) ->
      match b.arr.(host_idx) with
      | Code.B (c, ra, rb, -1) -> b.arr.(host_idx) <- Code.B (c, ra, rb, ir2host.(ir_target))
      | _ -> assert false)
    !fixups;
  (Array.sub b.arr 0 b.len, List.rev !exits)
