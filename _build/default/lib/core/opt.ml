open Darco_host

type value = Const of int | Copy of Ir.vreg

(* --- forward pass ------------------------------------------------------ *)

(* The environment maps a vreg to what is known about it within the current
   segment.  SSA means entries are never killed, but tables still reset at
   segment boundaries so that a value defined after a branch is never used
   by the stub the branch jumps to. *)

let commutative : Code.binop -> bool = function
  | Add | Mul | Mulhu | Mulhs | And | Or | Xor | Seq | Sne -> true
  | Sub | Shl | Shr | Sar | Slt | Sltu -> false

let forward (cfg : Config.t) (r : Regionir.t) =
  let body = Array.copy r.body in
  let n = Array.length body in
  let is_label = Regionir.labels r in
  let env : (Ir.vreg, value) Hashtbl.t = Hashtbl.create 64 in
  let cse : (Ir.t, Ir.vreg) Hashtbl.t = Hashtbl.create 64 in
  (* Memory value table for RLE/store forwarding: (base, off, width) ->
     value vreg, plus whether the entry came from a load or a store. *)
  let memtab : (Ir.vreg * int * Darco_guest.Isa.width, Ir.vreg) Hashtbl.t =
    Hashtbl.create 16
  in
  let reset () =
    Hashtbl.reset env;
    Hashtbl.reset cse;
    Hashtbl.reset memtab
  in
  let resolve v =
    match Hashtbl.find_opt env v with Some (Copy v') -> v' | _ -> v
  in
  let const_of v =
    match Hashtbl.find_opt env v with Some (Const n) -> Some n | _ -> None
  in
  let overlap off1 w1 off2 w2 =
    let open Darco_guest.Isa in
    off1 < off2 + width_bytes w2 && off2 < off1 + width_bytes w1
  in
  (* A store to (base, off, w) kills entries it may alias. *)
  let kill_may_alias base off w =
    let doomed =
      Hashtbl.fold
        (fun ((b, o, ww) as key) _ acc ->
          let disjoint = b = base && not (overlap off w o ww) in
          if disjoint then acc else key :: acc)
        memtab []
    in
    List.iter (Hashtbl.remove memtab) doomed
  in
  for i = 0 to n - 1 do
    if is_label.(i) then reset ();
    let insn = if cfg.opt_copy_prop then Ir.subst_uses resolve body.(i) else body.(i) in
    let insn =
      (* Constant folding / strength adjustments. *)
      if not cfg.opt_const_fold then insn
      else
        match insn with
        | Ir.Ibin (op, d, a, b) -> (
          match (const_of a, const_of b) with
          | Some ca, Some cb -> Ir.Ili (d, Emulator.eval_binop op ca cb)
          | _, Some cb -> Ir.Ibini (op, d, a, cb)
          | Some ca, None when commutative op -> Ir.Ibini (op, d, b, ca)
          | _ -> insn)
        | Ir.Ibini (op, d, a, k) -> (
          match const_of a with
          | Some ca -> Ir.Ili (d, Emulator.eval_binop op ca k)
          | None -> insn)
        | Ir.Imkfl (kind, d, a, b, c) -> (
          match (const_of a, const_of b, const_of c) with
          | Some ca, Some cb, Some cc ->
            Ir.Ili (d, Flagcalc.compute kind ~a:ca ~b:cb ~c:cc)
          | _ -> insn)
        | Ir.Iisel (d, c, a, b) -> (
          match const_of c with
          | Some 0 -> Ir.Imov (d, b)
          | Some _ -> Ir.Imov (d, a)
          | None -> insn)
        | _ -> insn
    in
    (* Redundant-load elimination / store forwarding (32-bit entries only;
       narrow accesses are left alone). *)
    let insn =
      if not cfg.opt_rle then insn
      else
        match insn with
        | Ir.Iload (Darco_guest.Isa.W32, _, d, a, off) -> (
          match Hashtbl.find_opt memtab (a, off, Darco_guest.Isa.W32) with
          | Some v -> Ir.Imov (d, v)
          | None ->
            Hashtbl.replace memtab (a, off, Darco_guest.Isa.W32) d;
            insn)
        | Ir.Istore (w, v, a, off) ->
          kill_may_alias a off w;
          if w = Darco_guest.Isa.W32 then Hashtbl.replace memtab (a, off, w) v;
          insn
        | Ir.Iload (w, _, _, _, _) | Ir.Isload (w, _, _, _, _) ->
          ignore w;
          insn
        | _ -> insn
    in
    (* CSE over pure value-producing instructions. *)
    let insn =
      if not cfg.opt_cse then insn
      else
        match insn with
        | Ir.Ili (d, _) | Ir.Ibin (_, d, _, _) | Ir.Ibini (_, d, _, _)
        | Ir.Imkfl (_, d, _, _, _) | Ir.Iisel (d, _, _, _) -> (
          let key = Ir.subst_uses (fun v -> v) insn in
          (* Normalize the def out of the key by rewriting it to 0. *)
          let keyed =
            match key with
            | Ir.Ili (_, k) -> Ir.Ili (0, k)
            | Ir.Ibin (op, _, a, b) -> Ir.Ibin (op, 0, a, b)
            | Ir.Ibini (op, _, a, k) -> Ir.Ibini (op, 0, a, k)
            | Ir.Imkfl (k, _, a, b, c) -> Ir.Imkfl (k, 0, a, b, c)
            | Ir.Iisel (_, c, a, b) -> Ir.Iisel (0, c, a, b)
            | _ -> assert false
          in
          match Hashtbl.find_opt cse keyed with
          | Some prev -> Ir.Imov (d, prev)
          | None ->
            Hashtbl.replace cse keyed d;
            insn)
        | _ -> insn
    in
    (* Update the value environment. *)
    (match insn with
    | Ir.Ili (d, k) -> Hashtbl.replace env d (Const k)
    | Ir.Imov (d, s) -> Hashtbl.replace env d (Copy (resolve s))
    | _ -> ());
    body.(i) <- insn
  done;
  { r with body }

(* --- backward pass: dead code elimination ------------------------------ *)

let dce (r : Regionir.t) =
  let body = r.body in
  let n = Array.length body in
  let live = Hashtbl.create 64 in
  let flive = Hashtbl.create 64 in
  let keep = Array.make n true in
  for i = n - 1 downto 0 do
    let insn = body.(i) in
    let needed =
      Ir.has_side_effect insn
      || List.exists (Hashtbl.mem live) (Ir.defs insn)
      || List.exists (Hashtbl.mem flive) (Ir.fdefs insn)
    in
    if needed then begin
      List.iter (fun v -> Hashtbl.replace live v ()) (Ir.uses insn);
      List.iter (fun v -> Hashtbl.replace flive v ()) (Ir.fuses insn)
    end
    else keep.(i) <- false
  done;
  (* Compact, remapping branch targets. *)
  let new_index = Array.make (n + 1) 0 in
  let count = ref 0 in
  for i = 0 to n - 1 do
    new_index.(i) <- !count;
    if keep.(i) then incr count
  done;
  new_index.(n) <- !count;
  let out = Array.make !count body.(n - 1) in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      out.(!j) <-
        (match body.(i) with
        | Ir.Ibr (c, a, b, t) -> Ir.Ibr (c, a, b, new_index.(t))
        | insn -> insn);
      incr j
    end
  done;
  { r with body = out }

(* Failure injection: a "bug in the CSE pass" that silently drops the first
   store of a superblock.  Only active when the pass itself is enabled, so
   the debug toolchain's pass bisection can finger it. *)
let inject_fault (cfg : Config.t) (r : Regionir.t) =
  match cfg.inject_fault with
  | Opt_drop_store when cfg.opt_cse && r.mode = `Super ->
    let first_store = ref (-1) in
    Array.iteri
      (fun i insn ->
        match insn with
        | Ir.Istore _ when !first_store < 0 -> first_store := i
        | _ -> ())
      r.body;
    if !first_store < 0 then r
    else begin
      let body = Array.copy r.body in
      (match body.(!first_store) with
      | Ir.Istore (_, v, _, _) -> body.(!first_store) <- Ir.Iassert (Beq, v, v)
      | _ -> ());
      { r with body }
    end
  | No_fault | Sched_break_dep | Opt_drop_store -> r

let run cfg r =
  let r = forward cfg r in
  let r = if cfg.Config.opt_dce then dce r else r in
  let r = inject_fault cfg r in
  Regionir.check_forward_only r;
  r
