open Darco_guest

type term =
  | Tjmp of int
  | Tjcc of Isa.cond * int * int
  | Tcall of int * int
  | Tcallind of Isa.operand * int
  | Tjmpind of Isa.operand
  | Tret
  | Tsyscall of int
  | Thalt
  | Tinterp of int
  | Tsplit of int

type t = {
  pc : int;
  body : (Isa.insn * int * int) list;
  term : term;
  term_len : int;
  insn_count : int;
}

let max_bb_insns = 512

let decode icache mem entry_pc =
  let rec scan pc acc count =
    let insn, len = Step.fetch icache mem pc in
    if Step.is_interp_only insn then
      (List.rev acc, Tinterp pc, 0, count)
    else if count >= max_bb_insns then (List.rev acc, Tsplit pc, 0, count)
    else begin
      let next = Semantics.mask32 (pc + len) in
      match insn with
      | Isa.Jmp t -> (List.rev acc, Tjmp t, len, count + 1)
      | Isa.Jcc (c, t) -> (List.rev acc, Tjcc (c, t, next), len, count + 1)
      | Isa.Call t -> (List.rev acc, Tcall (t, next), len, count + 1)
      | Isa.CallInd op -> (List.rev acc, Tcallind (op, next), len, count + 1)
      | Isa.JmpInd op -> (List.rev acc, Tjmpind op, len, count + 1)
      | Isa.Ret -> (List.rev acc, Tret, len, count + 1)
      | Isa.Syscall -> (List.rev acc, Tsyscall pc, len, count + 1)
      | Isa.Halt -> (List.rev acc, Thalt, len, count + 1)
      | _ -> scan next ((insn, pc, len) :: acc) (count + 1)
    end
  in
  let body, term, term_len, insn_count = scan entry_pc [] 0 in
  { pc = entry_pc; body; term; term_len; insn_count }

let next_pcs t =
  match t.term with
  | Tjmp x | Tcall (x, _) | Tsplit x -> [ x ]
  | Tjcc (_, a, b) -> [ a; b ]
  | Tcallind _ | Tjmpind _ | Tret | Tsyscall _ | Thalt | Tinterp _ -> []
