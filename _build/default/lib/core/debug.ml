open Darco_guest

type report = {
  diverged : bool;
  first_divergence : (int * int * string list) option;
  culprit : string option;
  tried : (string * bool) list;
}

let passes_with cfg ?input ~seed program =
  let ctl = Controller.create ~cfg ?input ~seed program in
  ctl.validate_at_checkpoints <- true;
  ctl.validate_memory <- true;
  match Controller.run ctl with `Done -> true | `Diverged _ | `Limit -> false

(* Disabling variants, ordered from the most aggressive/speculative
   features (the likeliest culprits) to the most basic. *)
let variants (cfg : Config.t) =
  [
    ("memory speculation", { cfg with use_mem_speculation = false });
    ("assert conversion", { cfg with use_asserts = false });
    ("instruction scheduling", { cfg with opt_schedule = false });
    ("common-subexpression elimination", { cfg with opt_cse = false });
    ("redundant-load elimination", { cfg with opt_rle = false });
    ( "constant folding/propagation",
      { cfg with opt_const_fold = false; opt_copy_prop = false } );
    ("dead-code elimination", { cfg with opt_dce = false });
    ("loop unrolling", { cfg with unroll_factor = 1 });
    ("chaining", { cfg with use_chaining = false });
    ("IBTC", { cfg with use_ibtc = false });
    ("superblock formation", { cfg with sb_threshold = max_int });
    ( "all translation (interpret everything)",
      { cfg with bb_threshold = max_int; sb_threshold = max_int } );
  ]

let investigate ?(cfg = Config.default) ?input ~seed program =
  (* Step 1: localize the first divergent basic block with fine-grained
     validation. *)
  let fine = { cfg with slice_fuel = 500 } in
  let ctl = Controller.create ~cfg:fine ?input ~seed program in
  ctl.validate_at_checkpoints <- true;
  ctl.validate_memory <- true;
  match Controller.run ctl with
  | `Done | `Limit -> { diverged = false; first_divergence = None; culprit = None; tried = [] }
  | `Diverged d ->
    let location = (d.at_retired, ctl.co.cpu.Cpu.eip, d.details) in
    (* Step 2: bisect over the pass toggles. *)
    let tried = ref [] in
    let culprit =
      List.find_map
        (fun (name, cfg') ->
          let ok = passes_with cfg' ?input ~seed program in
          tried := (name, ok) :: !tried;
          if ok then Some name else None)
        (variants cfg)
    in
    { diverged = true; first_divergence = Some location; culprit; tried = List.rev !tried }

let pp_report ppf r =
  if not r.diverged then Format.fprintf ppf "no divergence: all validations passed"
  else begin
    Format.fprintf ppf "@[<v>";
    (match r.first_divergence with
    | Some (retired, pc, details) ->
      Format.fprintf ppf
        "divergence first detected after %d retired guest instructions,@ \
         in the basic block around guest PC 0x%x:@ " retired pc;
      List.iter (fun d -> Format.fprintf ppf "  %s@ " d) details
    | None -> ());
    List.iter
      (fun (name, ok) ->
        Format.fprintf ppf "  retry without %-36s %s@ " name
          (if ok then "VALIDATES" else "still diverges"))
      r.tried;
    (match r.culprit with
    | Some name -> Format.fprintf ppf "=> culprit: the %s pass@]" name
    | None ->
      Format.fprintf ppf
        "=> no single pass toggle fixes it: suspect the base translator,@ \
         code generator or host emulator@]")
  end
