open Darco_guest

let step_bb (cfg : Config.t) (stats : Stats.t) profile icache cpu mem =
  let entry = cpu.Cpu.eip in
  let costs = cfg.costs in
  let finish_bb () =
    ignore (Profile.note_interp profile entry);
    Stats.charge stats Ov_interp costs.interp_profile_bb
  in
  let rec loop () =
    let r = Step.step icache cpu mem in
    match r.control with
    | Trap_syscall -> `Syscall
    | Trap_halt ->
      stats.guest_im <- stats.guest_im + 1;
      Stats.charge stats Ov_interp costs.interp_per_insn;
      finish_bb ();
      `Halt
    | Next ->
      stats.guest_im <- stats.guest_im + 1;
      Stats.charge stats Ov_interp costs.interp_per_insn;
      loop ()
    | Cond_branch _ | Uncond _ | Indirect _ ->
      stats.guest_im <- stats.guest_im + 1;
      Stats.charge stats Ov_interp costs.interp_per_insn;
      finish_bb ();
      `Next
  in
  loop ()

let step_one (cfg : Config.t) (stats : Stats.t) icache cpu mem =
  let r = Step.step icache cpu mem in
  (match r.control with
  | Trap_syscall | Trap_halt -> invalid_arg "Interp.step_one: trapping instruction"
  | Next | Cond_branch _ | Uncond _ | Indirect _ -> ());
  stats.guest_im <- stats.guest_im + 1;
  Stats.charge stats Ov_interp cfg.costs.interp_per_insn
