(** A translated region in IR form, before code generation. *)

type t = {
  entry_pc : int;
  mode : [ `Bb | `Super ];
  body : Ir.t array;              (** forward-only control; ends in exits *)
  prof : (int * int) option;
      (** BBM only: (execution-counter address, promotion threshold) for the
          profiling/promotion prologue *)
  guest_len : int;                (** guest instructions on the main path *)
}

val labels : t -> bool array
(** [labels r] marks the IR indices that are branch targets (segment
    starts). *)

val check_forward_only : t -> unit
(** Asserts the structural invariants the whole pipeline relies on: every
    branch targets a strictly later index, and every path ends in an
    [Iexit]. *)
