open Darco_host

type loc = Phys of Code.reg | Slot of int

type t = { int_loc : loc array; f_loc : loc array; slot_count : int }

type interval = { v : int; start : int; stop : int }

(* Live intervals in array order: def position to last use position. *)
let intervals body ~defs ~uses =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun i insn ->
      let note v =
        match Hashtbl.find_opt tbl v with
        | None -> Hashtbl.replace tbl v (i, i)
        | Some (s, _) -> Hashtbl.replace tbl v (s, i)
      in
      List.iter note (defs insn);
      List.iter note (uses insn))
    body;
  Hashtbl.fold (fun v (start, stop) acc -> { v; start; stop } :: acc) tbl []
  |> List.sort (fun a b -> compare (a.start, a.v) (b.start, b.v))

let linear_scan ivs ~pool ~loc_array ~next_slot =
  let free = Queue.create () in
  List.iter (fun r -> Queue.add r free) pool;
  (* active: (stop, v, reg), kept sorted by stop ascending *)
  let active = ref [] in
  let expire start =
    let expired, alive = List.partition (fun (stop, _, _) -> stop < start) !active in
    List.iter (fun (_, _, r) -> Queue.add r free) expired;
    active := alive
  in
  let insert_active entry =
    active := List.sort compare (entry :: !active)
  in
  let spill_slot () =
    let s = !next_slot in
    next_slot := s + 1;
    s
  in
  List.iter
    (fun iv ->
      expire iv.start;
      if Queue.is_empty free then begin
        (* Spill the interval ending furthest away. *)
        match List.rev !active with
        | (vstop, vv, vr) :: _ when vstop > iv.stop ->
          (* victim lives longer: give its register to the current one *)
          loc_array.(vv) <- Slot (spill_slot ());
          active := List.filter (fun (_, v, _) -> v <> vv) !active;
          loc_array.(iv.v) <- Phys vr;
          insert_active (iv.stop, iv.v, vr)
        | _ -> loc_array.(iv.v) <- Slot (spill_slot ())
      end
      else begin
        let r = Queue.pop free in
        loc_array.(iv.v) <- Phys r;
        insert_active (iv.stop, iv.v, r)
      end)
    ivs

let allocate (r : Regionir.t) =
  let body = r.body in
  let max_over f =
    Array.fold_left
      (fun acc insn -> List.fold_left max acc (f insn))
      (-1) body
  in
  let vmax = max (max_over Ir.defs) (max_over Ir.uses) in
  let fmax = max (max_over Ir.fdefs) (max_over Ir.fuses) in
  let int_loc = Array.make (vmax + 1) (Phys Regs.spill_scratch0) in
  let f_loc = Array.make (fmax + 1) (Phys Regs.fscratch0) in
  let next_slot = ref 0 in
  let int_pool =
    List.init (Regs.alloc_last - Regs.alloc_first + 1) (fun i -> Regs.alloc_first + i)
  in
  let f_pool =
    List.init (Regs.falloc_last - Regs.falloc_first + 1) (fun i -> Regs.falloc_first + i)
  in
  linear_scan (intervals body ~defs:Ir.defs ~uses:Ir.uses) ~pool:int_pool
    ~loc_array:int_loc ~next_slot;
  linear_scan (intervals body ~defs:Ir.fdefs ~uses:Ir.fuses) ~pool:f_pool
    ~loc_array:f_loc ~next_slot;
  { int_loc; f_loc; slot_count = !next_slot }

let location t v = t.int_loc.(v)
let flocation t f = t.f_loc.(f)
