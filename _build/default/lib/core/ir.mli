open Darco_guest
open Darco_host

(** The translation layer's intermediate representation.

    A three-address RISC-like code over an infinite pool of virtual
    registers, in SSA form by construction (the translator assigns each
    value a fresh vreg; there are no joins inside a region, so no phis are
    needed — see DESIGN.md).  Guest architectural state is accessed through
    explicit [Iget]/[Iput] (and FP/flags variants), which lower to moves
    between the allocator's registers and the fixed guest mapping of
    {!Darco_host.Regs}.

    A region's IR is a flat array; [Ibr] targets are indices into that
    array.  Control is acyclic and forward-only; loops are formed by a
    region exit chaining back to the region entry. *)

type vreg = int
type vfreg = int

type exit_target =
  | Xdirect of int       (** next guest PC statically known *)
  | Xindirect of vreg    (** guest PC in a vreg *)
  | Xsyscall of int      (** guest PC of the syscall instruction *)
  | Xinterp of int       (** guest PC of an interpreter-only instruction *)
  | Xhalt

type exit_spec = {
  target : exit_target;
  retired : int;        (** guest instructions completed on this path *)
  prefer_bb : bool;     (** chain only to a BB translation (unroll residue) *)
  edge : int option;    (** BBM edge-profiling counter address, if any *)
}

type t =
  | Iget of vreg * Isa.reg
  | Iput of Isa.reg * vreg
  | Igetf of vfreg * Isa.freg
  | Iputf of Isa.freg * vfreg
  | Igetfl of vreg           (** read the architectural packed flags *)
  | Iputfl of vreg
  | Ili of vreg * int
  | Imov of vreg * vreg
  | Ibin of Code.binop * vreg * vreg * vreg
  | Ibini of Code.binop * vreg * vreg * int
  | Imkfl of Code.flkind * vreg * vreg * vreg * vreg
  | Iisel of vreg * vreg * vreg * vreg   (** dst, cond, if-true, if-false *)
  | Iload of Isa.width * bool * vreg * vreg * int
  | Isload of Isa.width * bool * vreg * vreg * int
      (** speculatively hoisted load (alias-table protected) *)
  | Istore of Isa.width * vreg * vreg * int   (** value, base, disp *)
  | Ifli of vfreg * float
  | Ifmov of vfreg * vfreg
  | Ifbin of Code.fbinop * vfreg * vfreg * vfreg
  | Ifun of Code.funop * vfreg * vfreg
  | Ifload of vfreg * vreg * int
  | Ifstore of vfreg * vreg * int
  | Ifcmp of vreg * vfreg * vfreg
  | Icvtif of vfreg * vreg
  | Icvtfi of vreg * vfreg
  | Irt_f of Code.rt_fn * vfreg * vfreg
  | Irt_div of { signed : bool; q : vreg; r : vreg; hi : vreg; lo : vreg; d : vreg }
  | Ibr of Code.cmp * vreg * vreg * int   (** forward branch to an IR index *)
  | Iassert of Code.cmp * vreg * vreg
  | Iexit of exit_spec

val subst_uses : (vreg -> vreg) -> t -> t
(** Rewrite integer-vreg uses (definitions untouched). *)

val subst_fuses : (vfreg -> vfreg) -> t -> t

val defs : t -> vreg list
val uses : t -> vreg list
val fdefs : t -> vfreg list
val fuses : t -> vfreg list

val is_terminator : t -> bool
(** [Iexit] only; branches are internal. *)

val has_side_effect : t -> bool
(** Instructions DCE must keep regardless of liveness: stores, guest-state
    puts, branches, asserts, exits.  Loads are removable when dead: a dead
    load's only observable effect would be demand-paging a page whose
    contents are zero either way, which state validation treats as equal. *)

val pp : Format.formatter -> t -> unit
val pp_block : Format.formatter -> t array -> unit
