lib/core/ir_eval.ml: Array Code Cpu Darco_guest Darco_host Emulator Flagcalc Flags Hashtbl Int64 Ir Isa List Memory Regionir Semantics
