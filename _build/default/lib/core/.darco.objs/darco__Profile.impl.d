lib/core/profile.ml: Hashtbl List Option Tolmem
