lib/core/regalloc.mli: Code Darco_host Ir Regionir
