lib/core/ir_eval.mli: Cpu Darco_guest Ir Memory Regionir
