lib/core/codecache.ml: Array Code Codegen Config Darco_host Hashtbl List Option Regalloc Regionir Stats Tolmem
