lib/core/regiongen.mli: Config Darco_guest Memory Profile Regionir Step
