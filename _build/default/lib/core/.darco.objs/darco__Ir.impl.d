lib/core/ir.ml: Array Code Darco_guest Darco_host Format Isa Printf
