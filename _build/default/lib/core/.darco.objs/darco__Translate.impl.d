lib/core/translate.ml: Array Code Darco_guest Darco_host Flags Ir Isa List Regionir Semantics
