lib/core/controller.ml: Bytes Config Cpu Darco_guest Interp_ref List Loader Memory Printf Syscall Tol
