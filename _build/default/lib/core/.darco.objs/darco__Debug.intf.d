lib/core/debug.mli: Config Darco_guest Format Program
