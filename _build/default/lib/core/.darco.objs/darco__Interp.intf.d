lib/core/interp.mli: Config Cpu Darco_guest Memory Profile Stats Step
