lib/core/tol.mli: Bytes Codecache Config Cpu Darco_guest Darco_host Emulator Hashtbl Machine Memory Profile Stats Step Syscall Tolmem
