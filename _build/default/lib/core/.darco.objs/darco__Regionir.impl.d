lib/core/regionir.ml: Array Ir
