lib/core/regalloc.ml: Array Code Darco_host Hashtbl Ir List Queue Regionir Regs
