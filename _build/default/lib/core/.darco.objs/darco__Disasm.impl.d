lib/core/disasm.ml: Codec Cpu Darco_guest Format Interp_ref Isa List Loader Memory Program Step
