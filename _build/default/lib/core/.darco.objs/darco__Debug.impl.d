lib/core/debug.ml: Config Controller Cpu Darco_guest Format List
