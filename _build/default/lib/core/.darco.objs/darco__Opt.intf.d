lib/core/opt.mli: Config Regionir
