lib/core/config.mli:
