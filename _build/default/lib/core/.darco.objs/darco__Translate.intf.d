lib/core/translate.mli: Code Darco_guest Darco_host Ir Isa Regionir
