lib/core/tolmem.ml: Bytes Darco_guest Loader Memory
