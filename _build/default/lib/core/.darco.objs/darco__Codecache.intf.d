lib/core/codecache.mli: Code Config Darco_host Regionir Stats Tolmem
