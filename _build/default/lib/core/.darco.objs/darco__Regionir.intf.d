lib/core/regionir.mli: Ir
