lib/core/sched.mli: Config Ir Regionir
