lib/core/ir.mli: Code Darco_guest Darco_host Format Isa
