lib/core/controller.mli: Config Darco_guest Interp_ref Program Stats Tol
