lib/core/profile.mli: Tolmem
