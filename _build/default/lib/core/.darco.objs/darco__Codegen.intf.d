lib/core/codegen.mli: Code Config Darco_host Regalloc Regionir
