lib/core/config.ml:
