lib/core/stats.mli: Format
