lib/core/regiongen.ml: Config Darco_guest Gbb Ir Isa List Opt Profile Regionir Sched Translate
