lib/core/interp.ml: Config Cpu Darco_guest Profile Stats Step
