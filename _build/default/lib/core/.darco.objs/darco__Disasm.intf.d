lib/core/disasm.mli: Cpu Darco_guest Format Isa Memory Program
