lib/core/tol.ml: Code Codecache Config Cpu Darco_guest Darco_host Emulator Gbb Hashtbl Interp List Machine Memory Option Profile Regiongen Semantics Stats Step Syscall Tolmem
