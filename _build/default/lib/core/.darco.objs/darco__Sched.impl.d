lib/core/sched.ml: Array Config Darco_guest Darco_host Hashtbl Ir Isa List Regionir
