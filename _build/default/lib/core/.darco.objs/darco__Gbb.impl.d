lib/core/gbb.ml: Darco_guest Isa List Semantics Step
