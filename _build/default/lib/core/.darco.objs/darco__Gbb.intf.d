lib/core/gbb.mli: Darco_guest Isa Memory Step
