lib/core/codegen.ml: Array Code Config Darco_host Ir List Regalloc Regionir Regs
