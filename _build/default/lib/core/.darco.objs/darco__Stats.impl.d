lib/core/stats.ml: Array Format
