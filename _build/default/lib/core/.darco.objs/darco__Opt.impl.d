lib/core/opt.ml: Array Code Config Darco_guest Darco_host Emulator Flagcalc Hashtbl Ir List Regionir
