lib/core/tolmem.mli: Darco_guest Memory
