open Darco_guest

(** Region construction: BBM single-block translations and SBM superblock
    formation (biased-branch chaining, assert conversion, counted-loop
    unrolling), followed by the optimizer and scheduler pipelines. *)

val translate_bb :
  Config.t -> Profile.t -> Step.icache -> Memory.t -> int -> Regionir.t
(** BBM: translate the basic block at a guest PC, with the profiling
    prologue and edge-counter exit stubs, then the paper's "basic"
    optimizations (constant propagation + DCE; no CSE/RLE/scheduling). *)

type sb_result = { region : Regionir.t; unrolled : bool; bb_count : int }

val build_superblock :
  Config.t ->
  Profile.t ->
  Step.icache ->
  Memory.t ->
  head_pc:int ->
  use_asserts:bool ->
  use_mem_speculation:bool ->
  sb_result
(** SBM: form a superblock starting at [head_pc] following biased branch
    directions from the BBM edge counters, convert internal branches to
    asserts (or side exits when [use_asserts] is false), unroll counted
    single-block loops, and run the full optimization pipeline. *)
