(** The TOL optimizer: classic single-pass optimizations over region IR, as
    the paper describes — a forward pass (constant folding, constant
    propagation, copy propagation, common-subexpression elimination,
    redundant-load elimination and store forwarding) and a backward pass
    (dead-code elimination).

    Forward passes are segment-local: value tables reset at branch targets,
    preserving the dominance discipline of the forward-only control
    structure.  DCE is global (array-order liveness is a sound
    over-approximation under forward-only control).

    Passes are individually toggleable ({!Config}), which is both the
    paper's plug-and-play requirement and what the debug toolchain uses to
    pinpoint a miscompiling pass. *)

val forward : Config.t -> Regionir.t -> Regionir.t
val dce : Regionir.t -> Regionir.t
val run : Config.t -> Regionir.t -> Regionir.t
(** [forward] then [dce], honouring the config toggles. *)
