open Darco_guest

let translate_body ctx (bb : Gbb.t) =
  List.iter (fun (insn, pc, len) -> Translate.translate_insn ctx insn ~pc ~len) bb.body

(* Translate a block-final terminator into exit paths.  [edges] supplies the
   BBM edge-counter addresses for conditional terminators. *)
let emit_term ctx (term : Gbb.term) ~edges =
  let exit_ ?edge target = Translate.emit_exit ctx ?edge target in
  match term with
  | Gbb.Tjmp t ->
    Translate.add_retired ctx 1;
    exit_ (Ir.Xdirect t)
  | Gbb.Tjcc (c, taken, fall) -> (
    Translate.add_retired ctx 1;
    let ta, fa =
      match edges with Some (a, b) -> (Some a, Some b) | None -> (None, None)
    in
    match Translate.lower_cond ctx c with
    | Cconst true -> exit_ ?edge:ta (Ir.Xdirect taken)
    | Cconst false -> exit_ ?edge:fa (Ir.Xdirect fall)
    | Cfused _ as cl ->
      Translate.emit_branch_to_stub ctx cl (fun ctx ->
          Translate.emit_exit ctx ?edge:ta (Ir.Xdirect taken));
      exit_ ?edge:fa (Ir.Xdirect fall))
  | Gbb.Tcall (t, ret) ->
    Translate.add_retired ctx 1;
    Translate.translate_push_value ctx (Translate.li ctx ret);
    exit_ (Ir.Xdirect t)
  | Gbb.Tcallind (op, ret) ->
    Translate.add_retired ctx 1;
    let tv = Translate.eval_operand ctx op in
    Translate.translate_push_value ctx (Translate.li ctx ret);
    exit_ (Ir.Xindirect tv)
  | Gbb.Tjmpind op ->
    Translate.add_retired ctx 1;
    exit_ (Ir.Xindirect (Translate.eval_operand ctx op))
  | Gbb.Tret ->
    Translate.add_retired ctx 1;
    exit_ (Ir.Xindirect (Translate.translate_pop ctx))
  | Gbb.Tsyscall pc -> exit_ (Ir.Xsyscall pc)
  | Gbb.Thalt ->
    Translate.add_retired ctx 1;
    exit_ Ir.Xhalt
  | Gbb.Tinterp pc -> exit_ (Ir.Xinterp pc)
  | Gbb.Tsplit pc -> exit_ (Ir.Xdirect pc)

(* --- BBM ---------------------------------------------------------------- *)

let bb_opt_config (cfg : Config.t) =
  { cfg with opt_cse = false; opt_rle = false; opt_schedule = false }

let translate_bb (cfg : Config.t) profile icache mem pc =
  let bb = Gbb.decode icache mem pc in
  let ctx = Translate.create ~entry_pc:pc in
  translate_body ctx bb;
  let edges =
    match bb.term with Gbb.Tjcc _ -> Some (Profile.edge_counters profile pc) | _ -> None
  in
  emit_term ctx bb.term ~edges;
  let prof = Some (Profile.exec_counter profile pc, cfg.sb_threshold) in
  let rir = Translate.finalize ctx ~mode:`Bb ~prof in
  Opt.run (bb_opt_config cfg) rir

(* --- superblock formation ----------------------------------------------- *)

type sb_result = { region : Regionir.t; unrolled : bool; bb_count : int }

(* Does the instruction possibly write the given register?  Conservative
   (used only to validate the counted-loop unrolling guard). *)
let writes_reg (insn : Isa.insn) r =
  let dst = function Isa.Reg d -> d = r | Isa.Mem _ | Isa.Imm _ -> false in
  match insn with
  | Mov (d, _) | Alu (_, d, _) | Inc d | Dec d | Neg d | Not d | Shift (_, d, _) ->
    dst d
  | Movx (_, _, d, _) | Lea (d, _) | Imul2 (d, _) | Cmov (_, d, _) | Setcc (_, d)
  | Fist (d, _) ->
    d = r
  | Pop d -> d = r || r = ESP
  | Push _ -> r = ESP
  | Mul _ | Imul _ | Div _ | Idiv _ -> r = EAX || r = EDX
  | Str (k, _, _) -> (
    match k with
    | Movs | Cmps -> r = ESI || r = EDI
    | Stos | Scas -> r = EDI
    | Lods -> r = EAX || r = ESI)
  | Movw _ | Cmp _ | Test _ | Fld _ | Fst _ | Fmov _ | Fldi _ | Fbin _ | Fun_ _
  | Fcmp _ | Fild _ | Nop ->
    false
  | Jmp _ | JmpInd _ | Jcc _ | Call _ | CallInd _ | Ret | Syscall | Halt -> false

(* Detect the unrollable counted-loop shape: a single-block loop whose body
   ends with DEC r / SUB r,1 (r untouched earlier) and whose JNE continues
   to the head. *)
let counted_loop (bb : Gbb.t) =
  match bb.term with
  | Gbb.Tjcc (NE, taken, fall) when taken = bb.pc -> (
    match List.rev bb.body with
    | (last, _, _) :: rest -> (
      let counter =
        match last with
        | Isa.Dec (Reg r) -> Some r
        | Isa.Alu (Sub, Reg r, Imm 1) -> Some r
        | _ -> None
      in
      match counter with
      | Some r when not (List.exists (fun (i, _, _) -> writes_reg i r) rest) ->
        Some (r, fall)
      | _ -> None)
    | [] -> None)
  | _ -> None

type chosen = [ `Taken | `Fall ]

(* Follow biased branches from the head, within the configured limits. *)
let collect_chain (cfg : Config.t) profile icache mem head_pc =
  let rec go pc acc prob insns nbbs visited =
    let bb = Gbb.decode icache mem pc in
    let insns = insns + bb.Gbb.insn_count in
    let nbbs = nbbs + 1 in
    let stop () = List.rev ((bb, None) :: acc) in
    if nbbs >= cfg.sb_max_bbs || insns >= cfg.sb_max_insns then stop ()
    else
      match bb.Gbb.term with
      | Gbb.Tjcc (_, taken, fall) -> (
        match Profile.edge_counts profile pc with
        | None -> stop ()
        | Some (tc, fc) when tc + fc = 0 -> stop ()
        | Some (tc, fc) ->
          let total = float_of_int (tc + fc) in
          let bias_taken = float_of_int tc /. total in
          let dir, p, target =
            if bias_taken >= 0.5 then (`Taken, bias_taken, taken)
            else (`Fall, 1.0 -. bias_taken, fall)
          in
          if p < cfg.branch_bias || prob *. p < cfg.min_reach_prob then stop ()
          else if List.mem target visited then stop ()
          else
            go target ((bb, Some (dir : chosen)) :: acc) (prob *. p) insns nbbs
              (target :: visited))
      | Gbb.Tjmp t when not (List.mem t visited) ->
        go t ((bb, Some `Taken) :: acc) prob insns nbbs (t :: visited)
      | _ -> stop ()
  in
  go head_pc [] 1.0 0 0 [ head_pc ]

(* Emit the assert / side-exit for a followed conditional branch.  Returns
   false when the superblock must end here instead. *)
let speculate_branch ~use_asserts ctx c ~taken ~fall (dir : chosen) =
  Translate.add_retired ctx 1;
  let expect = dir = `Taken in
  if use_asserts then begin
    let cl = Translate.lower_cond ctx c in
    match Translate.emit_assert ctx cl ~expect with `Ok -> true | `Unsupported -> false
  end
  else begin
    (* Side-exit form: leave the region when the branch disagrees with the
       bias. *)
    let exit_cond = if expect then Isa.negate_cond c else c in
    let other_target = if expect then fall else taken in
    match Translate.lower_cond ctx exit_cond with
    | Cconst false -> true
    | Cconst true -> false
    | Cfused _ as cl ->
      Translate.emit_branch_to_stub ctx cl (fun ctx ->
          Translate.emit_exit ctx (Ir.Xdirect other_target));
      true
  end

(* The unrolled-loop region: guard, U inlined iterations (the guard proves
   the first U-1 continue checks), a real final branch, and the original
   (non-unrolled) loop body as the residual path — the paper's "unrolled
   version followed by the original loop" with its runtime check. *)
let build_unrolled (cfg : Config.t) (bb : Gbb.t) counter exit_pc =
  let head = bb.Gbb.pc in
  let u = cfg.unroll_factor in
  let ctx = Translate.create ~entry_pc:head in
  let cnt = Translate.get_reg ctx counter in
  let uv = Translate.li ctx u in
  let residual ctx =
    translate_body ctx bb;
    Translate.add_retired ctx 1;
    (match Translate.lower_cond ctx Isa.NE with
    | Cconst true -> Translate.emit_exit ctx (Ir.Xdirect head)
    | Cconst false -> Translate.emit_exit ctx (Ir.Xdirect exit_pc)
    | Cfused _ as cl ->
      Translate.emit_branch_to_stub ctx cl (fun ctx ->
          Translate.emit_exit ctx (Ir.Xdirect head));
      Translate.emit_exit ctx (Ir.Xdirect exit_pc))
  in
  (* counter < U (unsigned): run the original loop instead *)
  Translate.emit_branch_to_stub ctx (Cfused (Bltu, cnt, uv)) residual;
  for k = 1 to u do
    translate_body ctx bb;
    Translate.add_retired ctx 1;
    if k = u then
      match Translate.lower_cond ctx Isa.NE with
      | Cconst true -> Translate.emit_exit ctx (Ir.Xdirect head)
      | Cconst false -> Translate.emit_exit ctx (Ir.Xdirect exit_pc)
      | Cfused _ as cl ->
        Translate.emit_branch_to_stub ctx cl (fun ctx ->
            Translate.emit_exit ctx (Ir.Xdirect head));
        Translate.emit_exit ctx (Ir.Xdirect exit_pc)
  done;
  Translate.finalize ctx ~mode:`Super ~prof:None

let build_superblock (cfg : Config.t) profile icache mem ~head_pc ~use_asserts
    ~use_mem_speculation =
  let cfg = { cfg with use_mem_speculation } in
  let head_bb = Gbb.decode icache mem head_pc in
  let unroll_candidate =
    if cfg.unroll_factor > 1 && use_asserts then counted_loop head_bb else None
  in
  let rir, unrolled, bb_count =
    match unroll_candidate with
    | Some (counter, exit_pc) -> (build_unrolled cfg head_bb counter exit_pc, true, 1)
    | None ->
      let chain = collect_chain cfg profile icache mem head_pc in
      let ctx = Translate.create ~entry_pc:head_pc in
      let rec emit_chain = function
        | [] -> assert false
        | [ (bb, _) ] ->
          translate_body ctx bb;
          emit_term ctx bb.Gbb.term ~edges:None
        | (bb, followed) :: rest -> (
          translate_body ctx bb;
          match (bb.Gbb.term, followed) with
          | Gbb.Tjmp _, _ ->
            Translate.add_retired ctx 1;
            emit_chain rest
          | Gbb.Tjcc (c, taken, fall), Some dir ->
            if speculate_branch ~use_asserts ctx c ~taken ~fall dir then emit_chain rest
            else
              (* Could not speculate: end the superblock with both exits. *)
              emit_term ctx bb.Gbb.term ~edges:None
          | term, _ ->
            (* A non-followable terminator can only be last. *)
            emit_term ctx term ~edges:None)
      in
      emit_chain chain;
      (Translate.finalize ctx ~mode:`Super ~prof:None, false, List.length chain)
  in
  let rir = Opt.run cfg rir in
  let rir = Sched.run cfg rir in
  { region = rir; unrolled; bb_count }
