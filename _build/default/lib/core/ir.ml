open Darco_guest
open Darco_host

type vreg = int
type vfreg = int

type exit_target =
  | Xdirect of int
  | Xindirect of vreg
  | Xsyscall of int
  | Xinterp of int
  | Xhalt

type exit_spec = {
  target : exit_target;
  retired : int;
  prefer_bb : bool;
  edge : int option;
}

type t =
  | Iget of vreg * Isa.reg
  | Iput of Isa.reg * vreg
  | Igetf of vfreg * Isa.freg
  | Iputf of Isa.freg * vfreg
  | Igetfl of vreg
  | Iputfl of vreg
  | Ili of vreg * int
  | Imov of vreg * vreg
  | Ibin of Code.binop * vreg * vreg * vreg
  | Ibini of Code.binop * vreg * vreg * int
  | Imkfl of Code.flkind * vreg * vreg * vreg * vreg
  | Iisel of vreg * vreg * vreg * vreg
  | Iload of Isa.width * bool * vreg * vreg * int
  | Isload of Isa.width * bool * vreg * vreg * int
  | Istore of Isa.width * vreg * vreg * int
  | Ifli of vfreg * float
  | Ifmov of vfreg * vfreg
  | Ifbin of Code.fbinop * vfreg * vfreg * vfreg
  | Ifun of Code.funop * vfreg * vfreg
  | Ifload of vfreg * vreg * int
  | Ifstore of vfreg * vreg * int
  | Ifcmp of vreg * vfreg * vfreg
  | Icvtif of vfreg * vreg
  | Icvtfi of vreg * vfreg
  | Irt_f of Code.rt_fn * vfreg * vfreg
  | Irt_div of { signed : bool; q : vreg; r : vreg; hi : vreg; lo : vreg; d : vreg }
  | Ibr of Code.cmp * vreg * vreg * int
  | Iassert of Code.cmp * vreg * vreg
  | Iexit of exit_spec

let defs = function
  | Iget (v, _) | Igetfl v | Ili (v, _) | Imov (v, _) | Ibin (_, v, _, _)
  | Ibini (_, v, _, _) | Imkfl (_, v, _, _, _) | Iisel (v, _, _, _)
  | Iload (_, _, v, _, _) | Isload (_, _, v, _, _) | Ifcmp (v, _, _) | Icvtfi (v, _) ->
    [ v ]
  | Irt_div { q; r; _ } -> [ q; r ]
  | Iput _ | Igetf _ | Iputf _ | Iputfl _ | Istore _ | Ifli _ | Ifmov _ | Ifbin _
  | Ifun _ | Ifload _ | Ifstore _ | Icvtif _ | Irt_f _ | Ibr _ | Iassert _ | Iexit _ ->
    []

let uses = function
  | Iput (_, v) | Iputfl v | Imov (_, v) | Icvtif (_, v) -> [ v ]
  | Ibin (_, _, a, b) | Ibr (_, a, b, _) | Iassert (_, a, b) -> [ a; b ]
  | Ibini (_, _, a, _) | Iload (_, _, _, a, _) | Isload (_, _, _, a, _)
  | Ifload (_, a, _) ->
    [ a ]
  | Imkfl (_, _, a, b, c) -> [ a; b; c ]
  | Iisel (_, c, a, b) -> [ c; a; b ]
  | Istore (_, v, a, _) -> [ v; a ]
  | Ifstore (_, a, _) -> [ a ]
  | Irt_div { hi; lo; d; _ } -> [ hi; lo; d ]
  | Iexit { target = Xindirect v; _ } -> [ v ]
  | Iget _ | Igetf _ | Iputf _ | Igetfl _ | Ili _ | Ifli _ | Ifmov _ | Ifbin _ | Ifun _
  | Ifcmp _ | Icvtfi _ | Irt_f _
  | Iexit { target = Xdirect _ | Xsyscall _ | Xinterp _ | Xhalt; _ } ->
    []

let fdefs = function
  | Igetf (f, _) | Ifli (f, _) | Ifmov (f, _) | Ifbin (_, f, _, _) | Ifun (_, f, _)
  | Ifload (f, _, _) | Icvtif (f, _) | Irt_f (_, f, _) ->
    [ f ]
  | Iget _ | Iput _ | Iputf _ | Igetfl _ | Iputfl _ | Ili _ | Imov _ | Ibin _ | Ibini _
  | Imkfl _ | Iisel _ | Iload _ | Isload _ | Istore _ | Ifstore _ | Ifcmp _ | Icvtfi _
  | Irt_div _ | Ibr _ | Iassert _ | Iexit _ ->
    []

let fuses = function
  | Iputf (_, f) | Ifmov (_, f) | Ifun (_, _, f) | Ifstore (f, _, _) | Icvtfi (_, f)
  | Irt_f (_, _, f) ->
    [ f ]
  | Ifbin (_, _, a, b) | Ifcmp (_, a, b) -> [ a; b ]
  | Iget _ | Iput _ | Igetf _ | Igetfl _ | Iputfl _ | Ili _ | Imov _ | Ibin _ | Ibini _
  | Imkfl _ | Iisel _ | Iload _ | Isload _ | Istore _ | Ifli _ | Ifload _ | Icvtif _
  | Irt_div _ | Ibr _ | Iassert _ | Iexit _ ->
    []

let is_terminator = function Iexit _ -> true | _ -> false

let has_side_effect = function
  | Iput _ | Iputf _ | Iputfl _ | Istore _ | Ifstore _ | Ibr _ | Iassert _ | Iexit _ ->
    true
  | Iget _ | Igetf _ | Igetfl _ | Ili _ | Imov _ | Ibin _ | Ibini _ | Imkfl _ | Iisel _
  | Iload _ | Isload _ | Ifli _ | Ifmov _ | Ifbin _ | Ifun _ | Ifload _ | Ifcmp _
  | Icvtif _ | Icvtfi _ | Irt_f _ | Irt_div _ ->
    false

let subst_uses f = function
  | Iput (r, v) -> Iput (r, f v)
  | Iputfl v -> Iputfl (f v)
  | Imov (d, s) -> Imov (d, f s)
  | Icvtif (d, v) -> Icvtif (d, f v)
  | Ibin (op, d, a, b) -> Ibin (op, d, f a, f b)
  | Ibini (op, d, a, n) -> Ibini (op, d, f a, n)
  | Imkfl (k, d, a, b, c) -> Imkfl (k, d, f a, f b, f c)
  | Iisel (d, c, a, b) -> Iisel (d, f c, f a, f b)
  | Iload (w, s, d, a, off) -> Iload (w, s, d, f a, off)
  | Isload (w, s, d, a, off) -> Isload (w, s, d, f a, off)
  | Istore (w, v, a, off) -> Istore (w, f v, f a, off)
  | Ifload (fd, a, off) -> Ifload (fd, f a, off)
  | Ifstore (fv, a, off) -> Ifstore (fv, f a, off)
  | Irt_div { signed; q; r; hi; lo; d } ->
    Irt_div { signed; q; r; hi = f hi; lo = f lo; d = f d }
  | Ibr (c, a, b, t) -> Ibr (c, f a, f b, t)
  | Iassert (c, a, b) -> Iassert (c, f a, f b)
  | Iexit ({ target = Xindirect v; _ } as e) -> Iexit { e with target = Xindirect (f v) }
  | (Iget _ | Igetf _ | Iputf _ | Igetfl _ | Ili _ | Ifli _ | Ifmov _ | Ifbin _ | Ifun _
    | Ifcmp _ | Icvtfi _ | Irt_f _
    | Iexit { target = Xdirect _ | Xsyscall _ | Xinterp _ | Xhalt; _ }) as i ->
    i

let subst_fuses f = function
  | Iputf (gf, v) -> Iputf (gf, f v)
  | Ifmov (d, s) -> Ifmov (d, f s)
  | Ifbin (op, d, a, b) -> Ifbin (op, d, f a, f b)
  | Ifun (op, d, a) -> Ifun (op, d, f a)
  | Ifstore (fv, a, off) -> Ifstore (f fv, a, off)
  | Ifcmp (d, a, b) -> Ifcmp (d, f a, f b)
  | Icvtfi (d, v) -> Icvtfi (d, f v)
  | Irt_f (fn, d, s) -> Irt_f (fn, d, f s)
  | (Iget _ | Iput _ | Igetf _ | Igetfl _ | Iputfl _ | Ili _ | Imov _ | Ibin _ | Ibini _
    | Imkfl _ | Iisel _ | Iload _ | Isload _ | Istore _ | Ifli _ | Ifload _ | Icvtif _
    | Irt_div _ | Ibr _ | Iassert _ | Iexit _) as i ->
    i

let exit_target_to_string = function
  | Xdirect pc -> Printf.sprintf "direct 0x%x" pc
  | Xindirect v -> Printf.sprintf "indirect v%d" v
  | Xsyscall pc -> Printf.sprintf "syscall 0x%x" pc
  | Xinterp pc -> Printf.sprintf "interp 0x%x" pc
  | Xhalt -> "halt"

let to_string = function
  | Iget (v, r) -> Printf.sprintf "v%d <- guest.%s" v (Format.asprintf "%a" Isa.pp_reg r)
  | Iput (r, v) -> Printf.sprintf "guest.%s <- v%d" (Format.asprintf "%a" Isa.pp_reg r) v
  | Igetf (f, gf) -> Printf.sprintf "vf%d <- guest.f%d" f (Isa.freg_index gf)
  | Iputf (gf, f) -> Printf.sprintf "guest.f%d <- vf%d" (Isa.freg_index gf) f
  | Igetfl v -> Printf.sprintf "v%d <- guest.flags" v
  | Iputfl v -> Printf.sprintf "guest.flags <- v%d" v
  | Ili (v, n) -> Printf.sprintf "v%d <- 0x%x" v n
  | Imov (d, s) -> Printf.sprintf "v%d <- v%d" d s
  | Ibin (op, d, a, b) ->
    Printf.sprintf "v%d <- %s v%d, v%d" d (Code.binop_name op) a b
  | Ibini (op, d, a, n) ->
    Printf.sprintf "v%d <- %s v%d, %d" d (Code.binop_name op) a n
  | Imkfl (_, d, a, b, c) -> Printf.sprintf "v%d <- mkfl v%d, v%d, v%d" d a b c
  | Iisel (d, c, a, b) -> Printf.sprintf "v%d <- v%d ? v%d : v%d" d c a b
  | Iload (_, _, d, a, off) -> Printf.sprintf "v%d <- load [v%d%+d]" d a off
  | Isload (_, _, d, a, off) -> Printf.sprintf "v%d <- load.spec [v%d%+d]" d a off
  | Istore (_, v, a, off) -> Printf.sprintf "store [v%d%+d] <- v%d" a off v
  | Ifli (f, x) -> Printf.sprintf "vf%d <- %g" f x
  | Ifmov (d, s) -> Printf.sprintf "vf%d <- vf%d" d s
  | Ifbin (_, d, a, b) -> Printf.sprintf "vf%d <- fop vf%d, vf%d" d a b
  | Ifun (_, d, a) -> Printf.sprintf "vf%d <- funop vf%d" d a
  | Ifload (f, a, off) -> Printf.sprintf "vf%d <- fload [v%d%+d]" f a off
  | Ifstore (f, a, off) -> Printf.sprintf "fstore [v%d%+d] <- vf%d" a off f
  | Ifcmp (d, a, b) -> Printf.sprintf "v%d <- fcmp vf%d, vf%d" d a b
  | Icvtif (f, v) -> Printf.sprintf "vf%d <- cvt v%d" f v
  | Icvtfi (v, f) -> Printf.sprintf "v%d <- cvt vf%d" v f
  | Irt_f (_, d, s) -> Printf.sprintf "vf%d <- rt_f vf%d" d s
  | Irt_div { q; r; hi; lo; d; _ } ->
    Printf.sprintf "v%d, v%d <- div v%d:v%d / v%d" q r hi lo d
  | Ibr (_, a, b, t) -> Printf.sprintf "br v%d ? v%d -> @%d" a b t
  | Iassert (_, a, b) -> Printf.sprintf "assert v%d ? v%d" a b
  | Iexit e ->
    Printf.sprintf "exit %s (retired %d)" (exit_target_to_string e.target) e.retired

let pp ppf i = Format.pp_print_string ppf (to_string i)

let pp_block ppf block =
  Format.fprintf ppf "@[<v>";
  Array.iteri (fun i insn -> Format.fprintf ppf "@%d: %s@ " i (to_string insn)) block;
  Format.fprintf ppf "@]"
