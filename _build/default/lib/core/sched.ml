open Darco_guest

let latency : Ir.t -> int = function
  | Iload _ | Isload _ | Ifload _ -> 3
  | Ibin ((Mul | Mulhu | Mulhs), _, _, _) -> 3
  | Ifbin ((Fadd | Fsub | Fmul), _, _, _) -> 4
  | Ifbin (Fdiv, _, _, _) -> 12
  | Ifun (Fsqrt, _, _) -> 15
  | Irt_f (fn, _, _) -> Darco_host.Code.rt_cost fn
  | Irt_div _ -> 22
  | Icvtif _ | Icvtfi _ | Ifcmp _ -> 2
  | _ -> 1

type mem_ref = { base : Ir.vreg; off : int; len : int; is_store : bool }

let mem_ref_of : Ir.t -> mem_ref option = function
  | Iload (w, _, _, a, off) | Isload (w, _, _, a, off) ->
    Some { base = a; off; len = Isa.width_bytes w; is_store = false }
  | Istore (w, _, a, off) ->
    Some { base = a; off; len = Isa.width_bytes w; is_store = true }
  | Ifload (_, a, off) -> Some { base = a; off; len = 8; is_store = false }
  | Ifstore (_, a, off) -> Some { base = a; off; len = 8; is_store = true }
  | _ -> None

let may_alias m1 m2 =
  if m1.base = m2.base then m1.off < m2.off + m2.len && m2.off < m1.off + m1.len
  else true

(* Guest-state resource touched by an instruction, with access direction. *)
let guest_state : Ir.t -> (int * bool) option = function
  | Iget (_, r) -> Some (Isa.reg_index r, false)
  | Iput (r, _) -> Some (Isa.reg_index r, true)
  | Igetf (_, f) -> Some (8 + Isa.freg_index f, false)
  | Iputf (f, _) -> Some (8 + Isa.freg_index f, true)
  | Igetfl _ -> Some (16, false)
  | Iputfl _ -> Some (16, true)
  | _ -> None

(* Schedule one segment [s, e) whose terminator sits at [e] (exclusive of
   scheduling).  Returns the new order of original indices. *)
let schedule_segment cfg body s e =
  let n = e - s in
  if n <= 1 then Array.init n (fun i -> s + i)
  else begin
    let insn i = body.(s + i) in
    (* hard.(j) lists hard predecessors of j; soft.(i) lists breakable
       (store -> may-alias load) successors of i. *)
    let hard_preds = Array.make n [] in
    let succs = Array.make n [] in
    let soft_pairs = ref [] in
    let add_hard i j =
      hard_preds.(j) <- i :: hard_preds.(j);
      succs.(i) <- j :: succs.(i)
    in
    let def_site = Hashtbl.create 32 in
    let fdef_site = Hashtbl.create 32 in
    for i = 0 to n - 1 do
      (* value dependences *)
      List.iter
        (fun v ->
          match Hashtbl.find_opt def_site v with
          | Some d -> add_hard d i
          | None -> ())
        (Ir.uses (insn i));
      List.iter
        (fun v ->
          match Hashtbl.find_opt fdef_site v with
          | Some d -> add_hard d i
          | None -> ())
        (Ir.fuses (insn i));
      List.iter (fun v -> Hashtbl.replace def_site v i) (Ir.defs (insn i));
      List.iter (fun v -> Hashtbl.replace fdef_site v i) (Ir.fdefs (insn i))
    done;
    (* guest-state ordering and assert ordering *)
    let last_touch = Hashtbl.create 8 in
    let last_assert = ref None in
    for i = 0 to n - 1 do
      (match guest_state (insn i) with
      | Some (res, is_write) -> (
        (match Hashtbl.find_opt last_touch res with
        | Some (j, prev_write) -> if is_write || prev_write then add_hard j i
        | None -> ());
        Hashtbl.replace last_touch res (i, is_write))
      | None -> ());
      match insn i with
      | Ir.Iassert _ ->
        (match !last_assert with Some j -> add_hard j i | None -> ());
        last_assert := Some i
      | _ -> ()
    done;
    (* memory dependences *)
    let mems = ref [] in
    for i = 0 to n - 1 do
      match mem_ref_of (insn i) with
      | None -> ()
      | Some m ->
        List.iter
          (fun (j, mj) ->
            if may_alias m mj then
              if mj.is_store && not m.is_store then
                (* store -> later load: breakable under memory speculation *)
                if cfg.Config.use_mem_speculation then
                  soft_pairs := (j, i) :: !soft_pairs
                else add_hard j i
              else if mj.is_store || m.is_store then add_hard j i)
          !mems;
        mems := (i, m) :: !mems
    done;
    (* critical-path priorities *)
    let prio = Array.make n 0 in
    for i = n - 1 downto 0 do
      let succ_max = List.fold_left (fun acc j -> max acc prio.(j)) 0 succs.(i) in
      prio.(i) <- latency (insn i) + succ_max
    done;
    (* list scheduling *)
    let remaining_preds = Array.map List.length hard_preds in
    let scheduled = Array.make n false in
    let order = Array.make n (-1) in
    let pos = Array.make n (-1) in
    for slot = 0 to n - 1 do
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if (not scheduled.(i)) && remaining_preds.(i) = 0 then
          if !best = -1 || prio.(i) > prio.(!best) then best := i
      done;
      assert (!best >= 0);
      let i = !best in
      scheduled.(i) <- true;
      order.(slot) <- i;
      pos.(i) <- slot;
      List.iter (fun j -> remaining_preds.(j) <- remaining_preds.(j) - 1) succs.(i)
    done;
    (* Convert loads hoisted above a may-alias store into speculative
       loads.  The injectable scheduler bug skips the conversion, leaving
       the reordering unprotected. *)
    (match cfg.Config.inject_fault with
    | Sched_break_dep -> ()
    | No_fault | Opt_drop_store ->
      List.iter
        (fun (store_i, load_i) ->
          if pos.(load_i) < pos.(store_i) then
            body.(s + load_i) <-
              (match body.(s + load_i) with
              | Ir.Iload (w, sg, d, a, off) -> Ir.Isload (w, sg, d, a, off)
              | other -> other))
        !soft_pairs);
    Array.map (fun i -> s + i) order
  end

let run (cfg : Config.t) (r : Regionir.t) =
  if not cfg.opt_schedule then r
  else begin
    let body = Array.copy r.body in
    let n = Array.length body in
    let is_label = Regionir.labels r in
    (* Positions where a new segment starts. *)
    let starts i =
      i = 0 || is_label.(i)
      || match body.(i - 1) with Ir.Ibr _ | Ir.Iexit _ -> true | _ -> false
    in
    (* old index -> new index, for branch-target remapping *)
    let old2new = Array.make n (-1) in
    let out = Array.make n body.(0) in
    let outpos = ref 0 in
    let seg_start = ref 0 in
    let flush e_term =
      (* segment body [seg_start, e_term), terminator at e_term *)
      let order = schedule_segment cfg body !seg_start e_term in
      Array.iter
        (fun oi ->
          old2new.(oi) <- !outpos;
          out.(!outpos) <- body.(oi);
          incr outpos)
        order;
      old2new.(e_term) <- !outpos;
      out.(!outpos) <- body.(e_term);
      incr outpos
    in
    for i = 0 to n - 1 do
      if i > 0 && starts i then () (* handled when we hit the terminator *);
      match body.(i) with
      | Ir.Ibr _ | Ir.Iexit _ ->
        flush i;
        seg_start := i + 1
      | _ -> ()
    done;
    assert (!outpos = n);
    (* Remap branch targets.  Targets are segment starts, which keep their
       position (first instruction of a segment may have moved; the target
       must be the segment's first *new* position).  Since segments are
       contiguous and scheduling permutes only within a segment, the new
       index of a segment start is the minimum new index in that segment —
       which equals its old start because segments are emitted in order and
       densely.  Branch targets always point at old segment starts, and the
       new segment start position equals the old one. *)
    let remapped =
      Array.map
        (function
          | Ir.Ibr (c, a, b, t) ->
            assert (starts t);
            Ir.Ibr (c, a, b, t)
          | insn -> insn)
        out
    in
    let r = { r with body = remapped } in
    Regionir.check_forward_only r;
    r
  end
