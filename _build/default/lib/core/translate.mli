open Darco_guest
open Darco_host

(** The guest front-end: translates Gx86 instructions into IR within a
    region under construction.

    The builder keeps a per-region value cache (guest register -> vreg),
    marks dirty state to emit minimal [Iput]s at exits, and tracks the guest
    flags as a lazy thunk: flag-producing instructions record *how* to
    compute the flags; the computation is emitted only when a consumer needs
    it or when the (dirty) flags are architecturally live at a region exit —
    the paper's "write flags only if consumed" optimization, made
    exit-safe.  Conditional branches fuse with their producing compare
    whenever possible instead of materializing flags. *)

type ctx

val create : entry_pc:int -> ctx

val translate_insn : ctx -> Isa.insn -> pc:int -> len:int -> unit
(** Translate one non-control-transfer, non-interpreter-only instruction and
    count it as retired.  Raises [Invalid_argument] on control transfers
    (the region constructors handle those via the primitives below). *)

(** How a guest condition lowers at the current point. *)
type cond_lowering =
  | Cfused of Code.cmp * Ir.vreg * Ir.vreg  (** holds iff cmp(a,b) *)
  | Cconst of bool                          (** statically decided *)

val lower_cond : ctx -> Isa.cond -> cond_lowering
(** Fuses with the pending flag thunk when possible; otherwise materializes
    packed flags and extracts bits.  Emits any needed IR. *)

val cond_value : ctx -> Isa.cond -> Ir.vreg
(** The condition as a 0/1 value (SETcc / CMOV / unroll guards). *)

val count_retired : ctx -> int
val add_retired : ctx -> int -> unit

val emit_exit :
  ctx -> ?prefer_bb:bool -> ?edge:int -> Ir.exit_target -> unit
(** Emit dirty-state puts, flag materialization if architecturally needed,
    and the [Iexit]. *)

val emit_assert : ctx -> cond_lowering -> expect:bool -> [ `Ok | `Unsupported ]
(** Emit an assert that the condition evaluates to [expect] (superblock
    control speculation).  [`Unsupported] when the condition is statically
    false-biased (the caller should end the superblock instead). *)

val emit_branch_to_stub : ctx -> cond_lowering -> (ctx -> unit) -> unit
(** [emit_branch_to_stub ctx cl gen] emits a forward conditional branch
    taken when the condition holds; [gen] is run at finalization to emit the
    stub body with the value cache restored to this program point.  With
    [Cconst true] the stub becomes the fallthrough; with [Cconst false] no
    branch is emitted. *)

val translate_push_value : ctx -> Ir.vreg -> unit
(** Push a value onto the guest stack (shared by CALL translation). *)

val li : ctx -> int -> Ir.vreg
(** Constant materialization (cached within the current segment scope). *)

val get_reg : ctx -> Isa.reg -> Ir.vreg

val eval_operand : ctx -> Isa.operand -> Ir.vreg
(** Evaluate a guest operand (register / immediate / memory load). *)

val translate_pop : ctx -> Ir.vreg
(** Pop the top of the guest stack (RET translation). *)

val finalize : ctx -> mode:[ `Bb | `Super ] -> prof:(int * int) option -> Regionir.t
(** Resolve stubs and produce the region IR; checks structural invariants. *)

(** {2 Front-end construction kit}

    The primitives other guest-ISA front-ends build on (the paper's
    multiple-guest-ISA requirement): a new front-end only provides a decoder
    and per-instruction IR emission; everything from the optimizer to code
    generation is shared.  See {!Darco_grisc.Frontend} for a second
    front-end built this way. *)

val fresh_vreg : ctx -> Ir.vreg
val fresh_vfreg : ctx -> Ir.vfreg
val emit_ir : ctx -> Ir.t -> unit
(** Append a raw IR instruction (the emitter must respect SSA discipline). *)

val set_reg : ctx -> Isa.reg -> Ir.vreg -> unit
(** Bind a guest register slot to a new value (marks it dirty for the exit
    puts). *)
