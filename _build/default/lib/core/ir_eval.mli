open Darco_guest

(** A reference evaluator for region IR, independent of register allocation
    and code generation.

    Used by the test suite to check, pass by pass, that every optimization
    preserves semantics: the same region IR evaluated before and after a
    pass — and the generated host code — must leave identical guest state.
    Asserts evaluate like the hardware (a failing assert aborts the region
    with no state change: stores are buffered until exit). *)

type outcome =
  | Exited of Ir.exit_spec * int  (** resolved guest target PC *)
  | Assert_failed
  | Alias_failed
      (** a store overlapped a speculatively hoisted load (the alias
          protection table fired), exactly as the host hardware would *)

val run : Regionir.t -> Cpu.t -> Memory.t -> outcome
(** Evaluate the region against the given guest state (mutating it on
    successful exit, exactly like a checkpoint/commit execution). *)
