open Darco_guest

(** Guest basic blocks as the translator sees them: decoded from the
    co-designed component's memory image, ending at a control transfer or
    just before an interpreter-only instruction. *)

type term =
  | Tjmp of int
  | Tjcc of Isa.cond * int * int      (** condition, taken target, fallthrough *)
  | Tcall of int * int                (** target, return address *)
  | Tcallind of Isa.operand * int     (** operand, return address *)
  | Tjmpind of Isa.operand
  | Tret
  | Tsyscall of int                   (** PC of the syscall instruction *)
  | Thalt
  | Tinterp of int                    (** PC of the interpreter-only insn *)
  | Tsplit of int                     (** length cap reached; next PC *)

type t = {
  pc : int;
  body : (Isa.insn * int * int) list;  (** (insn, pc, len), terminator excluded *)
  term : term;
  term_len : int;    (** encoded length of the terminator (0 for Tinterp/Tsplit) *)
  insn_count : int;  (** body + terminator (terminator counts except
                         Tinterp/Tsplit) *)
}

val decode : Step.icache -> Memory.t -> int -> t
(** Decode the basic block starting at the given guest PC. *)

val next_pcs : t -> int list
(** Statically known successor PCs. *)
