open Darco_guest
open Darco_host

type flag_thunk =
  | Fl_known of Ir.vreg
  | Fl_op of Code.flkind * Ir.vreg * Ir.vreg * Ir.vreg

type snapshot = {
  s_reg : Ir.vreg option array;
  s_dirty : bool array;
  s_freg : Ir.vfreg option array;
  s_fdirty : bool array;
  s_flags : flag_thunk option;
  s_arch_fl : Ir.vreg option;
  s_retired : int;
  s_consts : (int * Ir.vreg) list;
}

type stub = { br_index : int; snap : snapshot; gen : ctx -> unit }

and ctx = {
  entry_pc : int;
  mutable arr : Ir.t array;
  mutable len : int;
  mutable vnext : int;
  mutable fnext : int;
  reg : Ir.vreg option array;
  dirty : bool array;
  freg : Ir.vfreg option array;
  fdirty : bool array;
  mutable flags : flag_thunk option;  (* None = architectural, untouched *)
  mutable arch_fl : Ir.vreg option;   (* cached Igetfl result *)
  mutable retired : int;
  mutable consts : (int * Ir.vreg) list;
  mutable stubs : stub list;          (* newest first *)
}

let create ~entry_pc =
  {
    entry_pc;
    arr = Array.make 64 (Ir.Iexit { target = Xhalt; retired = 0; prefer_bb = false; edge = None });
    len = 0;
    vnext = 0;
    fnext = 0;
    reg = Array.make 8 None;
    dirty = Array.make 8 false;
    freg = Array.make 8 None;
    fdirty = Array.make 8 false;
    flags = None;
    arch_fl = None;
    retired = 0;
    consts = [];
    stubs = [];
  }

let emit ctx insn =
  if ctx.len = Array.length ctx.arr then begin
    let bigger = Array.make (2 * ctx.len) insn in
    Array.blit ctx.arr 0 bigger 0 ctx.len;
    ctx.arr <- bigger
  end;
  ctx.arr.(ctx.len) <- insn;
  ctx.len <- ctx.len + 1

let fresh_v ctx =
  let v = ctx.vnext in
  ctx.vnext <- v + 1;
  v

let fresh_f ctx =
  let f = ctx.fnext in
  ctx.fnext <- f + 1;
  f

let snapshot ctx =
  {
    s_reg = Array.copy ctx.reg;
    s_dirty = Array.copy ctx.dirty;
    s_freg = Array.copy ctx.freg;
    s_fdirty = Array.copy ctx.fdirty;
    s_flags = ctx.flags;
    s_arch_fl = ctx.arch_fl;
    s_retired = ctx.retired;
    s_consts = ctx.consts;
  }

let restore ctx s =
  Array.blit s.s_reg 0 ctx.reg 0 8;
  Array.blit s.s_dirty 0 ctx.dirty 0 8;
  Array.blit s.s_freg 0 ctx.freg 0 8;
  Array.blit s.s_fdirty 0 ctx.fdirty 0 8;
  ctx.flags <- s.s_flags;
  ctx.arch_fl <- s.s_arch_fl;
  ctx.retired <- s.s_retired;
  ctx.consts <- s.s_consts

(* --- guest state cache ------------------------------------------------- *)

let get_reg ctx r =
  let i = Isa.reg_index r in
  match ctx.reg.(i) with
  | Some v -> v
  | None ->
    let v = fresh_v ctx in
    emit ctx (Ir.Iget (v, r));
    ctx.reg.(i) <- Some v;
    v

let set_reg ctx r v =
  let i = Isa.reg_index r in
  ctx.reg.(i) <- Some v;
  ctx.dirty.(i) <- true

let get_freg ctx f =
  let i = Isa.freg_index f in
  match ctx.freg.(i) with
  | Some v -> v
  | None ->
    let v = fresh_f ctx in
    emit ctx (Ir.Igetf (v, f));
    ctx.freg.(i) <- Some v;
    v

let set_freg ctx f v =
  let i = Isa.freg_index f in
  ctx.freg.(i) <- Some v;
  ctx.fdirty.(i) <- true

let li ctx n =
  let n = Semantics.mask32 n in
  match List.assoc_opt n ctx.consts with
  | Some v -> v
  | None ->
    let v = fresh_v ctx in
    emit ctx (Ir.Ili (v, n));
    ctx.consts <- (n, v) :: ctx.consts;
    v

(* --- flags ------------------------------------------------------------- *)

let arch_flags ctx =
  assert (ctx.flags = None);
  match ctx.arch_fl with
  | Some v -> v
  | None ->
    let v = fresh_v ctx in
    emit ctx (Ir.Igetfl v);
    ctx.arch_fl <- Some v;
    v

let materialize_flags ctx =
  match ctx.flags with
  | None -> arch_flags ctx
  | Some (Fl_known v) -> v
  | Some (Fl_op (k, a, b, c)) ->
    let d = fresh_v ctx in
    emit ctx (Ir.Imkfl (k, d, a, b, c));
    ctx.flags <- Some (Fl_known d);
    d

let set_thunk ctx k a b c = ctx.flags <- Some (Fl_op (k, a, b, c))

(* Current CF as a 0/1 value (ADC/SBB consumption). *)
let cf_value ctx =
  match ctx.flags with
  | Some (Fl_op (Fl_sub, a, b, _)) ->
    let t = fresh_v ctx in
    emit ctx (Ir.Ibin (Sltu, t, a, b));
    t
  | _ ->
    let v = materialize_flags ctx in
    let t = fresh_v ctx in
    emit ctx (Ir.Ibini (And, t, v, Flags.cf_bit));
    t

type cond_lowering =
  | Cfused of Code.cmp * Ir.vreg * Ir.vreg
  | Cconst of bool

let fuse_sub (c : Isa.cond) a b =
  match c with
  | E -> Some (Cfused (Beq, a, b))
  | NE -> Some (Cfused (Bne, a, b))
  | L -> Some (Cfused (Blt, a, b))
  | GE -> Some (Cfused (Bge, a, b))
  | LE -> Some (Cfused (Bge, b, a))
  | G -> Some (Cfused (Blt, b, a))
  | B -> Some (Cfused (Bltu, a, b))
  | AE -> Some (Cfused (Bgeu, a, b))
  | BE -> Some (Cfused (Bgeu, b, a))
  | A -> Some (Cfused (Bltu, b, a))
  | S | NS | O | NO -> None

let fuse_logic ctx (c : Isa.cond) r =
  let z () = li ctx 0 in
  match c with
  | E | BE -> Some (Cfused (Beq, r, z ()))
  | NE | A -> Some (Cfused (Bne, r, z ()))
  | S | L -> Some (Cfused (Blt, r, z ()))
  | NS | GE -> Some (Cfused (Bge, r, z ()))
  | G -> Some (Cfused (Blt, z (), r))
  | LE -> Some (Cfused (Bge, z (), r))
  | B | O -> Some (Cconst false)
  | AE | NO -> Some (Cconst true)

(* Fallback: extract bits from the packed flags. *)
let generic_cond ctx (c : Isa.cond) =
  let v = materialize_flags ctx in
  let z = li ctx 0 in
  let band mask =
    let t = fresh_v ctx in
    emit ctx (Ir.Ibini (And, t, v, mask));
    t
  in
  let sf_ne_of () =
    let u1 = fresh_v ctx in
    emit ctx (Ir.Ibini (Shr, u1, v, 2));
    let u2 = fresh_v ctx in
    emit ctx (Ir.Ibini (Shr, u2, v, 3));
    let u3 = fresh_v ctx in
    emit ctx (Ir.Ibin (Xor, u3, u1, u2));
    let t = fresh_v ctx in
    emit ctx (Ir.Ibini (And, t, u3, 1));
    t
  in
  (* (value, branch-if-nonzero?) *)
  let t, on_nonzero =
    match c with
    | E -> (band Flags.zf_bit, true)
    | NE -> (band Flags.zf_bit, false)
    | B -> (band Flags.cf_bit, true)
    | AE -> (band Flags.cf_bit, false)
    | S -> (band Flags.sf_bit, true)
    | NS -> (band Flags.sf_bit, false)
    | O -> (band Flags.of_bit, true)
    | NO -> (band Flags.of_bit, false)
    | BE -> (band (Flags.cf_bit lor Flags.zf_bit), true)
    | A -> (band (Flags.cf_bit lor Flags.zf_bit), false)
    | L -> (sf_ne_of (), true)
    | GE -> (sf_ne_of (), false)
    | LE ->
      let l = sf_ne_of () in
      let z1 = band Flags.zf_bit in
      let m = fresh_v ctx in
      emit ctx (Ir.Ibin (Or, m, l, z1));
      (m, true)
    | G ->
      let l = sf_ne_of () in
      let z1 = band Flags.zf_bit in
      let m = fresh_v ctx in
      emit ctx (Ir.Ibin (Or, m, l, z1));
      (m, false)
  in
  Cfused ((if on_nonzero then Bne else Beq), t, z)

(* INC/DEC record their result in the thunk's [b] slot; ZF/SF-only
   conditions fuse on it (OF-involved ones cannot: INC/DEC do set OF). *)
let fuse_incdec ctx (c : Isa.cond) res =
  match c with
  | E -> Some (Cfused (Beq, res, li ctx 0))
  | NE -> Some (Cfused (Bne, res, li ctx 0))
  | S -> Some (Cfused (Blt, res, li ctx 0))
  | NS -> Some (Cfused (Bge, res, li ctx 0))
  | L | GE | LE | G | B | AE | BE | A | O | NO -> None

let lower_cond ctx c =
  let fused =
    match ctx.flags with
    | Some (Fl_op (Fl_sub, a, b, _)) -> fuse_sub c a b
    | Some (Fl_op (Fl_logic, r, _, _)) -> fuse_logic ctx c r
    | Some (Fl_op ((Fl_inc | Fl_dec), _, res, _)) -> fuse_incdec ctx c res
    | _ -> None
  in
  match fused with Some cl -> cl | None -> generic_cond ctx c

let cond_value ctx c =
  match lower_cond ctx c with
  | Cconst b -> li ctx (if b then 1 else 0)
  | Cfused (cmp, a, b) -> (
    let direct op =
      let t = fresh_v ctx in
      emit ctx (Ir.Ibin (op, t, a, b));
      t
    in
    let inverted op =
      let t = direct op in
      let u = fresh_v ctx in
      emit ctx (Ir.Ibini (Xor, u, t, 1));
      u
    in
    match cmp with
    | Beq -> direct Seq
    | Bne -> direct Sne
    | Blt -> direct Slt
    | Bltu -> direct Sltu
    | Bge -> inverted Slt
    | Bgeu -> inverted Sltu)

(* --- addressing and operands ------------------------------------------ *)

let addr_of_mem ctx ({ base; index; disp } : Isa.mem) =
  let index_v =
    match index with
    | None -> None
    | Some (r, s) ->
      let iv = get_reg ctx r in
      let sf = Isa.scale_factor s in
      if sf = 1 then Some iv
      else begin
        let t = fresh_v ctx in
        emit ctx (Ir.Ibini (Shl, t, iv, match sf with 2 -> 1 | 4 -> 2 | _ -> 3));
        Some t
      end
  in
  match (base, index_v) with
  | None, None -> (li ctx 0, disp)
  | Some b, None -> (get_reg ctx b, disp)
  | None, Some iv -> (iv, disp)
  | Some b, Some iv ->
    let bv = get_reg ctx b in
    let t = fresh_v ctx in
    emit ctx (Ir.Ibin (Add, t, bv, iv));
    (t, disp)

let load_mem ctx w ~signed m =
  let a, off = addr_of_mem ctx m in
  let d = fresh_v ctx in
  emit ctx (Ir.Iload (w, signed, d, a, off));
  d

let eval ctx (o : Isa.operand) =
  match o with
  | Reg r -> get_reg ctx r
  | Imm n -> li ctx n
  | Mem m -> load_mem ctx W32 ~signed:false m

let store_opnd ctx (o : Isa.operand) v =
  match o with
  | Reg r -> set_reg ctx r v
  | Mem m ->
    let a, off = addr_of_mem ctx m in
    emit ctx (Ir.Istore (W32, v, a, off))
  | Imm _ -> invalid_arg "Translate: immediate destination"

(* Read-modify-write over a destination operand: computes the address once
   for memory destinations. *)
let rmw ctx (o : Isa.operand) f =
  match o with
  | Reg r ->
    let a = get_reg ctx r in
    let res = f a in
    set_reg ctx r res
  | Mem m ->
    let av, off = addr_of_mem ctx m in
    let a = fresh_v ctx in
    emit ctx (Ir.Iload (W32, false, a, av, off));
    let res = f a in
    emit ctx (Ir.Istore (W32, res, av, off))
  | Imm _ -> invalid_arg "Translate: immediate destination"

let translate_push_value ctx v =
  let sp = get_reg ctx ESP in
  let nsp = fresh_v ctx in
  emit ctx (Ir.Ibini (Sub, nsp, sp, 4));
  emit ctx (Ir.Istore (W32, v, nsp, 0));
  set_reg ctx ESP nsp

(* --- instruction bodies ------------------------------------------------ *)

let alu_result ctx (op : Isa.alu_op) a b =
  let bin o =
    let d = fresh_v ctx in
    emit ctx (Ir.Ibin (o, d, a, b));
    d
  in
  match op with
  | Add ->
    let d = bin Add in
    set_thunk ctx Fl_add a b a;
    d
  | Sub ->
    let d = bin Sub in
    set_thunk ctx Fl_sub a b a;
    d
  | Adc ->
    let cin = cf_value ctx in
    let t = bin Add in
    let d = fresh_v ctx in
    emit ctx (Ir.Ibin (Add, d, t, cin));
    set_thunk ctx Fl_adc a b cin;
    d
  | Sbb ->
    let cin = cf_value ctx in
    let t = bin Sub in
    let d = fresh_v ctx in
    emit ctx (Ir.Ibin (Sub, d, t, cin));
    set_thunk ctx Fl_sbb a b cin;
    d
  | And ->
    let d = bin And in
    set_thunk ctx Fl_logic d d d;
    d
  | Or ->
    let d = bin Or in
    set_thunk ctx Fl_logic d d d;
    d
  | Xor ->
    let d = bin Xor in
    set_thunk ctx Fl_logic d d d;
    d

let shift_kind (op : Isa.shift_op) : Code.flkind =
  match op with
  | Shl -> Fl_shl
  | Shr -> Fl_shr
  | Sar -> Fl_sar
  | Rol -> Fl_rol
  | Ror -> Fl_ror

let shift_static ctx op a n =
  let bini o k =
    let d = fresh_v ctx in
    emit ctx (Ir.Ibini (o, d, a, k));
    d
  in
  let rotate left =
    let t1 = bini (if left then Shl else Shr) n in
    let t2 = bini (if left then Shr else Shl) (32 - n) in
    let d = fresh_v ctx in
    emit ctx (Ir.Ibin (Or, d, t1, t2));
    d
  in
  match (op : Isa.shift_op) with
  | Shl -> bini Shl n
  | Shr -> bini Shr n
  | Sar -> bini Sar n
  | Rol -> rotate true
  | Ror -> rotate false

let shift_dynamic ctx op a cnt =
  let bin o b =
    let d = fresh_v ctx in
    emit ctx (Ir.Ibin (o, d, a, b));
    d
  in
  let rotate left =
    let t1 = bin (if left then Shl else Shr) cnt in
    let k32 = li ctx 32 in
    let inv = fresh_v ctx in
    emit ctx (Ir.Ibin (Sub, inv, k32, cnt));
    let t2 = bin (if left then Shr else Shl) inv in
    let d = fresh_v ctx in
    emit ctx (Ir.Ibin (Or, d, t1, t2));
    d
  in
  match (op : Isa.shift_op) with
  | Shl -> bin Shl cnt
  | Shr -> bin Shr cnt
  | Sar -> bin Sar cnt
  | Rol -> rotate true
  | Ror -> rotate false

let fbin_map : Isa.fp_bin -> Code.fbinop = function
  | Fadd -> Fadd
  | Fsub -> Fsub
  | Fmul -> Fmul
  | Fdiv -> Fdiv

let translate_insn ctx (insn : Isa.insn) ~pc ~len =
  ignore pc;
  ignore len;
  (match insn with
  | Nop -> ()
  | Mov (d, s) ->
    let v = eval ctx s in
    store_opnd ctx d v
  | Movx (w, signed, r, m) ->
    let v = load_mem ctx w ~signed m in
    set_reg ctx r v
  | Movw (w, m, r) ->
    let v = get_reg ctx r in
    let a, off = addr_of_mem ctx m in
    emit ctx (Ir.Istore (w, v, a, off))
  | Lea (r, m) ->
    let a, off = addr_of_mem ctx m in
    let res =
      if off = 0 then a
      else begin
        let t = fresh_v ctx in
        emit ctx (Ir.Ibini (Add, t, a, off));
        t
      end
    in
    set_reg ctx r res
  | Alu (op, d, s) ->
    let b = eval ctx s in
    rmw ctx d (fun a -> alu_result ctx op a b)
  | Cmp (d, s) ->
    let a = eval ctx d in
    let b = eval ctx s in
    set_thunk ctx Fl_sub a b a
  | Test (d, s) ->
    let a = eval ctx d in
    let b = eval ctx s in
    let t = fresh_v ctx in
    emit ctx (Ir.Ibin (And, t, a, b));
    set_thunk ctx Fl_logic t t t
  | Inc d ->
    rmw ctx d (fun a ->
        let old = materialize_flags ctx in
        let res = fresh_v ctx in
        emit ctx (Ir.Ibini (Add, res, a, 1));
        set_thunk ctx Fl_inc a res old;
        res)
  | Dec d ->
    rmw ctx d (fun a ->
        let old = materialize_flags ctx in
        let res = fresh_v ctx in
        emit ctx (Ir.Ibini (Sub, res, a, 1));
        set_thunk ctx Fl_dec a res old;
        res)
  | Neg d ->
    rmw ctx d (fun a ->
        let z = li ctx 0 in
        let res = fresh_v ctx in
        emit ctx (Ir.Ibin (Sub, res, z, a));
        set_thunk ctx Fl_neg a a a;
        res)
  | Not d ->
    rmw ctx d (fun a ->
        let res = fresh_v ctx in
        emit ctx (Ir.Ibini (Xor, res, a, 0xFFFFFFFF));
        res)
  | Shift (op, d, cnt) -> (
    match cnt with
    | Imm n0 ->
      let n = n0 land 31 in
      if n <> 0 then
        rmw ctx d (fun a ->
            let res = shift_static ctx op a n in
            let cv = li ctx n in
            set_thunk ctx (shift_kind op) a cv a;
            res)
    | (Reg _ | Mem _) as c ->
      rmw ctx d (fun a ->
          let old = materialize_flags ctx in
          let c0 = eval ctx c in
          let cv = fresh_v ctx in
          emit ctx (Ir.Ibini (And, cv, c0, 31));
          let res = shift_dynamic ctx op a cv in
          set_thunk ctx (shift_kind op) a cv old;
          res))
  | Mul s ->
    let a = get_reg ctx EAX in
    let b = eval ctx s in
    let lo = fresh_v ctx in
    emit ctx (Ir.Ibin (Mul, lo, a, b));
    let hi = fresh_v ctx in
    emit ctx (Ir.Ibin (Mulhu, hi, a, b));
    set_reg ctx EAX lo;
    set_reg ctx EDX hi;
    set_thunk ctx Fl_mulu a b a
  | Imul s ->
    let a = get_reg ctx EAX in
    let b = eval ctx s in
    let lo = fresh_v ctx in
    emit ctx (Ir.Ibin (Mul, lo, a, b));
    let hi = fresh_v ctx in
    emit ctx (Ir.Ibin (Mulhs, hi, a, b));
    set_reg ctx EAX lo;
    set_reg ctx EDX hi;
    set_thunk ctx Fl_muls a b a
  | Imul2 (r, s) ->
    let a = get_reg ctx r in
    let b = eval ctx s in
    let res = fresh_v ctx in
    emit ctx (Ir.Ibin (Mul, res, a, b));
    set_reg ctx r res;
    set_thunk ctx Fl_muls a b a
  | Div s | Idiv s ->
    let signed = match insn with Idiv _ -> true | _ -> false in
    let d = eval ctx s in
    let hi = get_reg ctx EDX in
    let lo = get_reg ctx EAX in
    let q = fresh_v ctx in
    let r = fresh_v ctx in
    emit ctx (Ir.Irt_div { signed; q; r; hi; lo; d });
    set_reg ctx EAX q;
    set_reg ctx EDX r
  | Push s ->
    let v = eval ctx s in
    translate_push_value ctx v
  | Pop r ->
    let sp = get_reg ctx ESP in
    let v = fresh_v ctx in
    emit ctx (Ir.Iload (W32, false, v, sp, 0));
    let nsp = fresh_v ctx in
    emit ctx (Ir.Ibini (Add, nsp, sp, 4));
    set_reg ctx ESP nsp;
    set_reg ctx r v
  | Cmov (c, r, s) ->
    let v = eval ctx s in
    let cv = cond_value ctx c in
    let old = get_reg ctx r in
    let res = fresh_v ctx in
    emit ctx (Ir.Iisel (res, cv, v, old));
    set_reg ctx r res
  | Setcc (c, r) ->
    let cv = cond_value ctx c in
    set_reg ctx r cv
  | Str (k, w, NoRep) -> begin
    let sz = Isa.width_bytes w in
    let advance r =
      let v = get_reg ctx r in
      let t = fresh_v ctx in
      emit ctx (Ir.Ibini (Add, t, v, sz));
      set_reg ctx r t
    in
    match k with
    | Movs ->
      let si = get_reg ctx ESI in
      let v = fresh_v ctx in
      emit ctx (Ir.Iload (w, false, v, si, 0));
      let di = get_reg ctx EDI in
      emit ctx (Ir.Istore (w, v, di, 0));
      advance ESI;
      advance EDI
    | Stos ->
      let v = get_reg ctx EAX in
      let di = get_reg ctx EDI in
      emit ctx (Ir.Istore (w, v, di, 0));
      advance EDI
    | Lods ->
      let si = get_reg ctx ESI in
      let v = fresh_v ctx in
      emit ctx (Ir.Iload (w, false, v, si, 0));
      set_reg ctx EAX v;
      advance ESI
    | Scas ->
      let di = get_reg ctx EDI in
      let mv = fresh_v ctx in
      emit ctx (Ir.Iload (w, false, mv, di, 0));
      let av0 = get_reg ctx EAX in
      let av =
        if w = Isa.W32 then av0
        else begin
          let t = fresh_v ctx in
          emit ctx (Ir.Ibini (And, t, av0, (1 lsl (8 * sz)) - 1));
          t
        end
      in
      set_thunk ctx Fl_sub av mv av;
      advance EDI
    | Cmps ->
      let si = get_reg ctx ESI in
      let a = fresh_v ctx in
      emit ctx (Ir.Iload (w, false, a, si, 0));
      let di = get_reg ctx EDI in
      let b = fresh_v ctx in
      emit ctx (Ir.Iload (w, false, b, di, 0));
      set_thunk ctx Fl_sub a b a;
      advance ESI;
      advance EDI
  end
  | Str (_, _, (Rep | Repe | Repne)) ->
    invalid_arg "Translate: REP string instructions are interpreter-only"
  | Fld (f, m) ->
    let a, off = addr_of_mem ctx m in
    let vf = fresh_f ctx in
    emit ctx (Ir.Ifload (vf, a, off));
    set_freg ctx f vf
  | Fst (m, f) ->
    let vf = get_freg ctx f in
    let a, off = addr_of_mem ctx m in
    emit ctx (Ir.Ifstore (vf, a, off))
  | Fmov (d, s) ->
    let vf = get_freg ctx s in
    set_freg ctx d vf
  | Fldi (f, x) ->
    let vf = fresh_f ctx in
    emit ctx (Ir.Ifli (vf, x));
    set_freg ctx f vf
  | Fbin (op, d, s) ->
    let a = get_freg ctx d in
    let b = get_freg ctx s in
    let r = fresh_f ctx in
    emit ctx (Ir.Ifbin (fbin_map op, r, a, b));
    set_freg ctx d r
  | Fun_ (op, f) ->
    let a = get_freg ctx f in
    let r = fresh_f ctx in
    (match op with
    | Fsqrt -> emit ctx (Ir.Ifun (Fsqrt, r, a))
    | Fabs -> emit ctx (Ir.Ifun (Fabs, r, a))
    | Fchs -> emit ctx (Ir.Ifun (Fneg, r, a))
    | Fsin -> emit ctx (Ir.Irt_f (Rt_sin, r, a))
    | Fcos -> emit ctx (Ir.Irt_f (Rt_cos, r, a)));
    set_freg ctx f r
  | Fcmp (a, b) ->
    let va = get_freg ctx a in
    let vb = get_freg ctx b in
    let d = fresh_v ctx in
    emit ctx (Ir.Ifcmp (d, va, vb));
    ctx.flags <- Some (Fl_known d)
  | Fild (f, r) ->
    let v = get_reg ctx r in
    let vf = fresh_f ctx in
    emit ctx (Ir.Icvtif (vf, v));
    set_freg ctx f vf
  | Fist (r, f) ->
    let vf = get_freg ctx f in
    let v = fresh_v ctx in
    emit ctx (Ir.Icvtfi (v, vf));
    set_reg ctx r v
  | Jmp _ | JmpInd _ | Jcc _ | Call _ | CallInd _ | Ret | Syscall | Halt ->
    invalid_arg "Translate: control transfers are handled by region builders");
  ctx.retired <- ctx.retired + 1

let eval_operand = eval

let translate_pop ctx =
  let sp = get_reg ctx ESP in
  let v = fresh_v ctx in
  emit ctx (Ir.Iload (W32, false, v, sp, 0));
  let nsp = fresh_v ctx in
  emit ctx (Ir.Ibini (Add, nsp, sp, 4));
  set_reg ctx ESP nsp;
  v

let fresh_vreg = fresh_v
let fresh_vfreg = fresh_f
let emit_ir = emit

let count_retired ctx = ctx.retired
let add_retired ctx n = ctx.retired <- ctx.retired + n

(* --- exits, asserts, stubs --------------------------------------------- *)

let emit_exit ctx ?(prefer_bb = false) ?edge target =
  Array.iter
    (fun r ->
      let i = Isa.reg_index r in
      if ctx.dirty.(i) then
        match ctx.reg.(i) with Some v -> emit ctx (Ir.Iput (r, v)) | None -> assert false)
    Isa.all_regs;
  Array.iter
    (fun f ->
      let i = Isa.freg_index f in
      if ctx.fdirty.(i) then
        match ctx.freg.(i) with
        | Some v -> emit ctx (Ir.Iputf (f, v))
        | None -> assert false)
    Isa.all_fregs;
  (match ctx.flags with
  | None -> ()
  | Some _ ->
    let v = materialize_flags ctx in
    emit ctx (Ir.Iputfl v));
  emit ctx (Ir.Iexit { target; retired = ctx.retired; prefer_bb; edge })

let emit_assert ctx cl ~expect =
  match (cl, expect) with
  | Cconst b, _ when b = expect -> `Ok
  | Cconst _, _ -> `Unsupported
  | Cfused (cmp, a, b), true ->
    emit ctx (Ir.Iassert (cmp, a, b));
    `Ok
  | Cfused (cmp, a, b), false ->
    let neg : Code.cmp =
      match cmp with
      | Beq -> Bne
      | Bne -> Beq
      | Blt -> Bge
      | Bge -> Blt
      | Bltu -> Bgeu
      | Bgeu -> Bltu
    in
    emit ctx (Ir.Iassert (neg, a, b));
    `Ok

let emit_branch_to_stub ctx cl gen =
  match cl with
  | Cconst false -> ()
  | Cconst true ->
    (* Unconditionally taken: the "stub" is simply the continuation. *)
    gen ctx
  | Cfused (cmp, a, b) ->
    let br_index = ctx.len in
    emit ctx (Ir.Ibr (cmp, a, b, -1));
    ctx.stubs <- { br_index; snap = snapshot ctx; gen } :: ctx.stubs

let finalize ctx ~mode ~prof =
  (* Process deferred stubs in FIFO order; stub generators may defer further
     stubs (unroll residue), which keeps control strictly forward. *)
  let rec drain () =
    match List.rev ctx.stubs with
    | [] -> ()
    | { br_index; snap; gen } :: _rest ->
      ctx.stubs <- List.filter (fun s -> s.br_index <> br_index) ctx.stubs;
      let target = ctx.len in
      (match ctx.arr.(br_index) with
      | Ir.Ibr (cmp, a, b, -1) -> ctx.arr.(br_index) <- Ir.Ibr (cmp, a, b, target)
      | _ -> assert false);
      restore ctx snap;
      gen ctx;
      drain ()
  in
  drain ();
  let body = Array.sub ctx.arr 0 ctx.len in
  let region =
    { Regionir.entry_pc = ctx.entry_pc; mode; body; prof; guest_len = ctx.retired }
  in
  Regionir.check_forward_only region;
  region
