lib/studies/speed.ml: Darco Darco_timing Format Unix
