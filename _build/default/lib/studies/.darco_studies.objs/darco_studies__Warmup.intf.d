lib/studies/warmup.mli: Darco Darco_guest Darco_timing Format Program
