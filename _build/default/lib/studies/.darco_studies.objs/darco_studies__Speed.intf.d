lib/studies/speed.mli: Darco Darco_guest Format Program
