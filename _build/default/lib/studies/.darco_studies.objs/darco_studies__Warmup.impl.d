lib/studies/warmup.ml: Array Darco Darco_timing Darco_util Format Hashtbl List Option Unix
