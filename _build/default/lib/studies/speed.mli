open Darco_guest

(** §VI-A DARCO speed: emulation/simulation throughput for the guest and
    host ISAs, with and without the timing simulator. *)

type t = {
  guest_mips_emulated : float;   (** guest insns/s, functional only *)
  guest_mips_timing : float;     (** guest insns/s with timing enabled *)
  host_mips_emulated : float;    (** host insns/s, functional only *)
  host_mips_timing : float;
}

val measure : ?cfg:Darco.Config.t -> ?insns:int -> Program.t -> seed:int -> t
(** Run the program (bounded by [insns] retired guest instructions) twice —
    functional and with the timing simulator attached — and report
    throughputs from wall-clock time. *)

val pp : Format.formatter -> t -> unit
