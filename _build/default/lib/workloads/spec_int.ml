open Darco_guest
module B = Builder
module Rng = Darco_util.Rng

(* Every kernel: EBX accumulates a checksum that is printed and returned,
   so differential validation also covers observable output. *)

let finish b =
  B.print32 b (Reg EBX);
  B.exit_program b ~code:(Reg EBX)

(* 400.perlbench: interpreter-style token hashing with jump-table opcode
   dispatch (indirect branches, small blocks). *)
let perlbench ?(scale = 1) () =
  let b = B.create ~seed:101 () in
  let rng = B.rng b in
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:1400;
  Scaffold.warm b ~blocks:50 ~iters:58;
  B.array8 b "text" (Array.init 4096 (fun _ -> Rng.int rng 256));
  let handlers = List.init 8 (fun k -> Printf.sprintf "h%d" k) in
  List.iteri
    (fun k h ->
      B.func b h (fun () ->
          B.i b (Alu (Add, Reg EBX, Imm ((k * 17) + 1)));
          if k mod 2 = 0 then B.i b (Shift (Rol, Reg EBX, Imm 3))
          else B.i b (Alu (Xor, Reg EBX, Imm (k * 0x1111)))))
    handlers;
  B.jump_table b "handlers" handlers;
  B.counted_loop b ~reg:EDI ~count:(9000 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Reg EDI));
      B.i b (Imul2 (ESI, Imm 13));
      B.i b (Alu (And, Reg ESI, Imm 0xFF8));
      B.i b (Mov (Reg EAX, Imm 0));
      B.counted_loop b ~reg:ECX ~count:8 (fun () ->
          B.load8_arr b EDX "text" ~index:(ESI, S1) ();
          B.i b (Imul2 (EAX, Imm 31));
          B.i b (Alu (Add, Reg EAX, Reg EDX));
          B.i b (Inc (Reg ESI)));
      B.i b (Alu (And, Reg EAX, Imm 7));
      Asm.insn_with (B.asm b) (fun resolve ->
          Isa.CallInd
            (Mem { base = None; index = Some (EAX, S4); disp = resolve "handlers" })));
  finish b;
  B.assemble b

(* 401.bzip2: run-length compression passes over byte buffers. *)
let bzip2 ?(scale = 1) () =
  let b = B.create ~seed:102 () in
  let rng = B.rng b in
  let input =
    let buf = ref [] and filled = ref 0 in
    while !filled < 2048 do
      let v = Rng.int rng 256 and len = 1 + Rng.int rng 6 in
      let len = min len (2048 - !filled) in
      for _ = 1 to len do
        buf := v :: !buf
      done;
      filled := !filled + len
    done;
    Array.of_list (List.rev !buf)
  in
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:1000;
  Scaffold.warm b ~blocks:40 ~iters:58;
  B.array8 b "input" input;
  B.zero_bytes b "output" 4608;
  B.func b "emit_pair" (fun () ->
      B.store8_arr b "output" ~index:(EBP, S1) EAX;
      B.i b (Inc (Reg EBP));
      B.store8_arr b "output" ~index:(EBP, S1) ECX;
      B.i b (Inc (Reg EBP)));
  B.counted_loop b ~reg:EDI ~count:(22 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.i b (Mov (Reg EBP, Imm 0));
      B.while_loop b
        ~cond:(fun stop ->
          B.i b (Cmp (Reg ESI, Imm 2048));
          Asm.jcc (B.asm b) GE stop)
        (fun () ->
          B.load8_arr b EAX "input" ~index:(ESI, S1) ();
          B.i b (Mov (Reg ECX, Imm 1));
          B.while_loop b
            ~cond:(fun stop ->
              B.i b (Mov (Reg EDX, Reg ESI));
              B.i b (Alu (Add, Reg EDX, Reg ECX));
              B.i b (Cmp (Reg EDX, Imm 2048));
              Asm.jcc (B.asm b) GE stop;
              B.load8_arr b EDX "input" ~index:(EDX, S1) ();
              B.i b (Cmp (Reg EDX, Reg EAX));
              Asm.jcc (B.asm b) NE stop;
              B.i b (Cmp (Reg ECX, Imm 255));
              Asm.jcc (B.asm b) GE stop)
            (fun () -> B.i b (Inc (Reg ECX)));
          Asm.call (B.asm b) "emit_pair";
          B.i b (Alu (Add, Reg ESI, Reg ECX)));
      B.i b (Alu (Add, Reg EBX, Reg EBP)));
  (* checksum the compressed stream once *)
  B.i b (Mov (Reg ESI, Imm 0));
  B.counted_loop b ~reg:ECX ~count:4608 (fun () ->
      B.load8_arr b EAX "output" ~index:(ESI, S1) ();
      B.i b (Alu (Add, Reg EBX, Reg EAX));
      B.i b (Inc (Reg ESI)));
  finish b;
  B.assemble b

(* 403.gcc: many small functions reached through an indirect call table;
   big static footprint, moderate reuse. *)
let gcc ?(scale = 1) () =
  let b = B.create ~seed:103 () in
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:2600;
  Scaffold.warm b ~blocks:30 ~iters:56;
  let nfuncs = 22 in
  let fnames = List.init nfuncs (fun k -> Printf.sprintf "fn%d" k) in
  List.iteri
    (fun k name ->
      B.func b name (fun () ->
          B.i b (Push (Reg ESI));
          B.i b (Push (Reg EDI));
          B.filler_ops b ~n:10;
          B.i b (Pop EDI);
          B.i b (Pop ESI);
          B.i b (Alu (Add, Reg EBX, Imm (k + 1)))))
    fnames;
  B.jump_table b "fns" fnames;
  B.counted_loop b ~reg:EDI ~count:(500 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:ECX ~count:nfuncs (fun () ->
          Asm.insn_with (B.asm b) (fun resolve ->
              Isa.CallInd (Mem { base = None; index = Some (ESI, S4); disp = resolve "fns" }));
          B.i b (Inc (Reg ESI))));
  finish b;
  B.assemble b

(* 429.mcf: pointer chasing over a permuted linked list (cache-hostile,
   tight dependent loads). *)
let mcf ?(scale = 1) () =
  let b = B.create ~seed:104 () in
  let rng = B.rng b in
  let n = 1024 in
  let perm = Array.init n (fun i -> i) in
  Rng.shuffle rng perm;
  (* next.(perm i) = perm ((i+1) mod n): one big cycle *)
  let node = Array.make (2 * n) 0 in
  for i = 0 to n - 1 do
    let this = perm.(i) and next = perm.((i + 1) mod n) in
    node.((2 * this) + 0) <- Rng.int rng 1000;
    node.((2 * this) + 1) <- 8 * next
  done;
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:900;
  Scaffold.warm b ~blocks:16 ~iters:58;
  B.array32 b "nodes" node;
  B.counted_loop b ~reg:EDI ~count:(70 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:ECX ~count:n (fun () ->
          B.load_arr b EAX "nodes" ~index:(ESI, S1) ();
          B.i b (Alu (Add, Reg EBX, Reg EAX));
          B.load_arr b ESI "nodes" ~index:(ESI, S1) ~off:4 ()));
  finish b;
  B.assemble b

(* 445.gobmk: board scanning with neighbour tests; data-dependent,
   poorly-biased branches. *)
let gobmk ?(scale = 1) () =
  let b = B.create ~seed:105 () in
  let rng = B.rng b in
  let board = Array.init 1024 (fun _ -> if Rng.chance rng 0.42 then 1 else 0) in
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:1100;
  Scaffold.warm b ~blocks:36 ~iters:58;
  B.array8 b "board" board;
  B.func b "neighbours" (fun () ->
      B.load8_arr b EDX "board" ~index:(ESI, S1) ~off:(-1) ();
      B.i b (Mov (Reg ECX, Reg EDX));
      B.load8_arr b EDX "board" ~index:(ESI, S1) ~off:1 ();
      B.i b (Alu (Add, Reg ECX, Reg EDX));
      B.load8_arr b EDX "board" ~index:(ESI, S1) ~off:(-32) ();
      B.i b (Alu (Add, Reg ECX, Reg EDX));
      B.load8_arr b EDX "board" ~index:(ESI, S1) ~off:32 ();
      B.i b (Alu (Add, Reg ECX, Reg EDX)));
  B.counted_loop b ~reg:EDI ~count:(50 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 33));
      B.counted_loop b ~reg:EBP ~count:950 (fun () ->
          let skip = B.fresh b "skip" in
          let low = B.fresh b "low" in
          B.load8_arr b EAX "board" ~index:(ESI, S1) ();
          B.i b (Test (Reg EAX, Reg EAX));
          Asm.jcc (B.asm b) E skip;
          Asm.call (B.asm b) "neighbours";
          B.i b (Cmp (Reg ECX, Imm 2));
          Asm.jcc (B.asm b) L low;
          B.i b (Alu (Add, Reg EBX, Reg ECX));
          Asm.label (B.asm b) low;
          B.i b (Alu (Add, Reg EBX, Imm 1));
          Asm.label (B.asm b) skip;
          B.i b (Inc (Reg ESI))));
  finish b;
  B.assemble b

(* 458.sjeng: recursive search, call/return dominated with bit mixing. *)
let sjeng ?(scale = 1) () =
  let b = B.create ~seed:106 () in
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:1000;
  Scaffold.warm b ~blocks:24 ~iters:58;
  B.func b "search" (fun () ->
      let deeper = B.fresh b "deeper" in
      let fin = B.fresh b "fin" in
      B.i b (Test (Reg EAX, Reg EAX));
      Asm.jcc (B.asm b) NE deeper;
      B.i b (Mov (Reg EAX, Imm 0x5A));
      Asm.jmp (B.asm b) fin;
      Asm.label (B.asm b) deeper;
      B.i b (Push (Reg EAX));
      B.i b (Dec (Reg EAX));
      Asm.call (B.asm b) "search";
      B.i b (Pop EDX);
      B.i b (Push (Reg EAX));
      B.i b (Mov (Reg EAX, Reg EDX));
      B.i b (Shift (Shr, Reg EAX, Imm 1));
      (let zero = B.fresh b "zero" in
       B.i b (Test (Reg EAX, Reg EAX));
       Asm.jcc (B.asm b) E zero;
       B.i b (Dec (Reg EAX));
       Asm.label (B.asm b) zero);
      Asm.call (B.asm b) "search";
      B.i b (Pop EDX);
      B.i b (Alu (Xor, Reg EAX, Reg EDX));
      B.i b (Imul2 (EAX, Imm 3));
      B.i b (Alu (And, Reg EAX, Imm 0xFFFF));
      Asm.label (B.asm b) fin);
  B.counted_loop b ~reg:EDI ~count:(130 * scale) (fun () ->
      B.i b (Mov (Reg EAX, Imm 16));
      Asm.call (B.asm b) "search";
      B.i b (Alu (Add, Reg EBX, Reg EAX)));
  finish b;
  B.assemble b

(* 462.libquantum: streaming gate application over a state vector —
   extremely regular, highly biased. *)
let libquantum ?(scale = 1) () =
  let b = B.create ~seed:107 () in
  let rng = B.rng b in
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:700;
  Scaffold.warm b ~blocks:20 ~iters:58;
  B.array32 b "state" (Array.init 4096 (fun _ -> Rng.int rng 0x7FFFFFFF));
  B.counted_loop b ~reg:EDI ~count:(14 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:ECX ~count:4096 (fun () ->
          let rare = B.fresh b "rare" in
          B.load_arr b EAX "state" ~index:(ESI, S4) ();
          B.i b (Alu (Xor, Reg EAX, Imm 0x2545F491));
          B.i b (Shift (Rol, Reg EAX, Imm 3));
          B.store_arr b "state" ~index:(ESI, S4) EAX;
          B.i b (Alu (And, Reg EAX, Imm 0xFF));
          Asm.jcc (B.asm b) NE rare;
          B.i b (Inc (Reg EBX));
          Asm.label (B.asm b) rare;
          B.i b (Inc (Reg ESI))));
  finish b;
  B.assemble b

(* 464.h264ref: sum of absolute differences over byte frames; mostly-biased
   sign branches. *)
let h264ref ?(scale = 1) () =
  let b = B.create ~seed:108 () in
  let rng = B.rng b in
  let base_frame = Array.init 4096 (fun _ -> 64 + Rng.int rng 128) in
  let noisy = Array.map (fun v -> min 255 (v + Rng.int rng 8)) base_frame in
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:1200;
  Scaffold.warm b ~blocks:34 ~iters:58;
  B.array8 b "ref" base_frame;
  B.array8 b "cur" noisy;
  B.counted_loop b ~reg:EDI ~count:(12 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:ECX ~count:4096 (fun () ->
          let pos = B.fresh b "pos" in
          B.load8_arr b EAX "cur" ~index:(ESI, S1) ();
          B.load8_arr b EDX "ref" ~index:(ESI, S1) ();
          B.i b (Alu (Sub, Reg EAX, Reg EDX));
          Asm.jcc (B.asm b) NS pos;
          B.i b (Neg (Reg EAX));
          Asm.label (B.asm b) pos;
          B.i b (Alu (Add, Reg EBX, Reg EAX));
          B.i b (Inc (Reg ESI))));
  finish b;
  B.assemble b

(* 471.omnetpp: discrete-event wheel; handlers dispatched indirectly keep
   scheduling future events. *)
let omnetpp ?(scale = 1) () =
  let b = B.create ~seed:109 () in
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:1300;
  Scaffold.warm b ~blocks:40 ~iters:58;
  let wheel = Array.init 64 (fun i -> if i mod 3 = 0 then i mod 4 else -1) in
  B.array32 b "wheel" wheel;
  let handlers = List.init 4 (fun k -> Printf.sprintf "ev%d" k) in
  List.iteri
    (fun k h ->
      B.func b h (fun () ->
          (* schedule a follow-up event of the next kind *)
          B.i b (Mov (Reg ECX, Reg ESI));
          B.i b (Alu (Add, Reg ECX, Imm ((k * 7) + 3)));
          B.i b (Alu (And, Reg ECX, Imm 63));
          B.i b (Mov (Reg EDX, Imm ((k + 1) land 3)));
          B.store_arr b "wheel" ~index:(ECX, S4) EDX;
          B.i b (Alu (Add, Reg EBX, Imm (k + 1)))))
    handlers;
  B.jump_table b "evtab" handlers;
  let join = B.fresh b "join" in
  B.counted_loop b ~reg:EDI ~count:(12000 * scale) (fun () ->
      let empty = B.fresh b "empty" in
      B.i b (Mov (Reg ESI, Reg EDI));
      B.i b (Alu (And, Reg ESI, Imm 63));
      B.load_arr b EAX "wheel" ~index:(ESI, S4) ();
      B.i b (Test (Reg EAX, Reg EAX));
      Asm.jcc (B.asm b) S empty;
      (* consume the event, dispatch its handler *)
      B.i b (Mov (Reg EDX, Imm 0xFFFFFFFF));
      B.store_arr b "wheel" ~index:(ESI, S4) EDX;
      Asm.insn_with (B.asm b) (fun resolve ->
          Isa.CallInd
            (Mem { base = None; index = Some (EAX, S4); disp = resolve "evtab" }));
      Asm.jmp (B.asm b) join;
      Asm.label (B.asm b) empty;
      B.i b (Inc (Reg EBX));
      Asm.label (B.asm b) join);
  finish b;
  B.assemble b

(* 473.astar: repeated relaxation over a grid with comparison-driven
   updates. *)
let astar ?(scale = 1) () =
  let b = B.create ~seed:110 () in
  let rng = B.rng b in
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:1000;
  Scaffold.warm b ~blocks:26 ~iters:58;
  let dist = Array.init 256 (fun i -> if i = 0 then 0 else 0x7FFF) in
  B.array32 b "dist" dist;
  B.array32 b "weight" (Array.init 256 (fun _ -> 1 + Rng.int rng 9));
  B.func b "relax" (fun () ->
      let no_update = B.fresh b "noupd" in
      B.load_arr b EAX "dist" ~index:(ESI, S4) ~off:(-4) ();
      B.load_arr b EDX "weight" ~index:(ESI, S4) ();
      B.i b (Alu (Add, Reg EAX, Reg EDX));
      B.load_arr b EDX "dist" ~index:(ESI, S4) ();
      B.i b (Cmp (Reg EAX, Reg EDX));
      Asm.jcc (B.asm b) GE no_update;
      B.store_arr b "dist" ~index:(ESI, S4) EAX;
      B.i b (Inc (Reg EBX));
      Asm.label (B.asm b) no_update);
  B.counted_loop b ~reg:EDI ~count:(120 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 1));
      B.counted_loop b ~reg:ECX ~count:255 (fun () ->
          Asm.call (B.asm b) "relax";
          B.i b (Inc (Reg ESI))));
  B.load_arr b EAX "dist" ~off:(255 * 4) ();
  B.i b (Alu (Add, Reg EBX, Reg EAX));
  finish b;
  B.assemble b

(* 483.xalancbmk: string-table matching with REP CMPS (the complex string
   instructions the software layer defers to the interpreter). *)
let xalancbmk ?(scale = 1) () =
  let b = B.create ~seed:111 () in
  let rng = B.rng b in
  B.i b (Mov (Reg EBX, Imm 0));
  Scaffold.cold b ~n:1200;
  Scaffold.warm b ~blocks:38 ~iters:58;
  let nstrings = 16 in
  let strings =
    Array.init nstrings (fun _ -> Array.init 16 (fun _ -> 32 + Rng.int rng 96))
  in
  Array.iteri (fun i s -> B.array8 b (Printf.sprintf "str%d" i) s) strings;
  (* one contiguous table copy for sequential scanning *)
  B.array8 b "table" (Array.concat (Array.to_list strings));
  let tags = List.init 4 (fun k -> Printf.sprintf "tag%d" k) in
  B.jump_table b "tags" tags;
  let join = B.fresh b "join" in
  B.counted_loop b ~reg:EDI ~count:(2500 * scale) (fun () ->
      (* query = strings[(EDI*5) mod 16] *)
      B.i b (Mov (Reg EAX, Reg EDI));
      B.i b (Imul2 (EAX, Imm 5));
      B.i b (Alu (And, Reg EAX, Imm 15));
      B.i b (Shift (Shl, Reg EAX, Imm 4));
      B.i b (Push (Reg EDI));
      (* scan the table for the query *)
      B.i b (Mov (Reg EBP, Imm 0));
      let found = B.fresh b "found" in
      (* per-entry comparison: first-word rejection, then the full REP CMPS
         (interpreter-resident) only on a prefix match.  EDX returns 0 on a
         match. *)
      B.func b "match_entry" (fun () ->
          let next = B.fresh b "next" in
          let fin = B.fresh b "fin" in
          B.addr_of b ESI "table";
          B.i b (Alu (Add, Reg ESI, Reg EAX));
          B.addr_of b EDI "table";
          B.i b (Mov (Reg EDX, Reg EBP));
          B.i b (Shift (Shl, Reg EDX, Imm 4));
          B.i b (Alu (Add, Reg EDI, Reg EDX));
          B.i b (Mov (Reg ECX, Mem { base = Some ESI; index = None; disp = 0 }));
          B.i b (Mov (Reg EDX, Mem { base = Some EDI; index = None; disp = 0 }));
          B.i b (Cmp (Reg ECX, Reg EDX));
          Asm.jcc (B.asm b) NE next;
          B.i b (Mov (Reg ECX, Imm 4));
          B.i b (Str (Cmps, W32, Repe));
          Asm.jcc (B.asm b) NE next;
          B.i b (Mov (Reg EDX, Imm 0));
          Asm.jmp (B.asm b) fin;
          Asm.label (B.asm b) next;
          B.i b (Mov (Reg EDX, Imm 1));
          Asm.label (B.asm b) fin);
      B.while_loop b
        ~cond:(fun stop ->
          B.i b (Cmp (Reg EBP, Imm nstrings));
          Asm.jcc (B.asm b) GE stop)
        (fun () ->
          Asm.call (B.asm b) "match_entry";
          B.i b (Test (Reg EDX, Reg EDX));
          Asm.jcc (B.asm b) E found;
          B.i b (Inc (Reg EBP)));
      Asm.label (B.asm b) found;
      B.i b (Alu (Add, Reg EBX, Reg EBP));
      B.i b (Mov (Reg EAX, Reg EBP));
      B.i b (Alu (And, Reg EAX, Imm 3));
      B.table_dispatch b ~table:"tags" ~index:EAX;
      List.iteri
        (fun k h ->
          Asm.label (B.asm b) h;
          B.i b (Alu (Add, Reg EBX, Imm ((k * 5) + 1)));
          Asm.jmp (B.asm b) join)
        tags;
      Asm.label (B.asm b) join;
      B.i b (Pop EDI));
  finish b;
  B.assemble b

let all =
  [
    ("400.perlbench", perlbench);
    ("401.bzip2", bzip2);
    ("403.gcc", gcc);
    ("429.mcf", mcf);
    ("445.gobmk", gobmk);
    ("458.sjeng", sjeng);
    ("462.libquantum", libquantum);
    ("464.h264ref", h264ref);
    ("471.omnetpp", omnetpp);
    ("473.astar", astar);
    ("483.xalancbmk", xalancbmk);
  ]
