open Darco_guest

(** SPECINT2006-like synthetic kernels: integer code with small basic
    blocks, frequent data-dependent branches, calls/returns, indirect jumps
    and string operations — each named after the benchmark whose
    characteristics it stands in for (see DESIGN.md on the substitution).

    [scale] multiplies the hot-phase iteration counts (default 1). *)

val perlbench : ?scale:int -> unit -> Program.t
(** String hashing + jump-table opcode dispatch (interpreter-like). *)

val bzip2 : ?scale:int -> unit -> Program.t
(** Run-length compression passes over byte buffers. *)

val gcc : ?scale:int -> unit -> Program.t
(** Many small functions, indirect calls, large static footprint. *)

val mcf : ?scale:int -> unit -> Program.t
(** Pointer-chasing over a permuted linked list. *)

val gobmk : ?scale:int -> unit -> Program.t
(** Board scans with neighbour tests (branchy). *)

val sjeng : ?scale:int -> unit -> Program.t
(** Recursive game-tree search with bit manipulation. *)

val libquantum : ?scale:int -> unit -> Program.t
(** Streaming gate application over a large state vector. *)

val h264ref : ?scale:int -> unit -> Program.t
(** Block SAD computation over byte frames. *)

val omnetpp : ?scale:int -> unit -> Program.t
(** Discrete-event wheel with indirect handler dispatch. *)

val astar : ?scale:int -> unit -> Program.t
(** Grid relaxation with open-set minimum scans. *)

val xalancbmk : ?scale:int -> unit -> Program.t
(** String-table matching with REP CMPS plus tag dispatch. *)

val all : (string * (?scale:int -> unit -> Program.t)) list
