open Darco_guest

(** Physicsbench-like synthetic kernels (Yeh et al., "Parallax").

    Characteristics from the paper's analysis: low dynamic-to-static
    instruction ratio (much code executed few times — [continuous],
    [periodic] and [ragdoll] extremely so, keeping large fractions of the
    stream in BBM), and heavy use of trigonometric functions that the host
    must emulate in software (raising emulation cost).

    Each kernel generates one distinct update function per simulated object
    and calls them all every simulation step. *)

val breakable : ?scale:int -> unit -> Program.t
val continuous : ?scale:int -> unit -> Program.t
val deformable : ?scale:int -> unit -> Program.t
val explosions : ?scale:int -> unit -> Program.t
val highspeed : ?scale:int -> unit -> Program.t
val periodic : ?scale:int -> unit -> Program.t
val ragdoll : ?scale:int -> unit -> Program.t

val all : (string * (?scale:int -> unit -> Program.t)) list
