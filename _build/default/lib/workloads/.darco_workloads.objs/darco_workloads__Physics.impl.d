lib/workloads/physics.ml: Array Asm Builder Darco_guest Darco_util Printf Scaffold
