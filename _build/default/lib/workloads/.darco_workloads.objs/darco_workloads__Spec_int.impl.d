lib/workloads/spec_int.ml: Array Asm Builder Darco_guest Darco_util Isa List Printf Scaffold
