lib/workloads/scaffold.mli: Builder
