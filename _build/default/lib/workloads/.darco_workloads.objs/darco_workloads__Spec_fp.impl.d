lib/workloads/spec_fp.ml: Array Asm Builder Darco_guest Darco_util Scaffold
