lib/workloads/builder.mli: Asm Darco_guest Darco_util Isa Program
