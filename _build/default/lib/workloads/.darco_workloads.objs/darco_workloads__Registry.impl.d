lib/workloads/registry.ml: Darco_guest List Physics Spec_fp Spec_int String
