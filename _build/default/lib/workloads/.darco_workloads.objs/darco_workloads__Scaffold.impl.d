lib/workloads/scaffold.ml: Builder
