lib/workloads/physics.mli: Darco_guest Program
