lib/workloads/spec_int.mli: Darco_guest Program
