lib/workloads/registry.mli: Darco_guest Program
