lib/workloads/spec_fp.mli: Darco_guest Program
