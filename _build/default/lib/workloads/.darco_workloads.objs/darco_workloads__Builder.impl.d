lib/workloads/builder.ml: Array Asm Bytes Char Darco_guest Darco_util Isa List Printf
