open Darco_guest
module B = Builder
module Rng = Darco_util.Rng

(* Physicsbench structure: a scene of simulated objects, each with its own
   generated update function (the low dynamic/static ratio), all of them
   calling a shared constraint-solver routine (the hot code).  Trigonometry
   appears both in the solver (raising SBM emulation cost, the paper's
   Physicsbench observation) and in the per-object bodies.

   [inner] controls how hot each object's own math is: the hot kernels
   (breakable/deformable/explosions/highspeed) run their bodies past the
   superblock threshold; the cold ones (continuous/periodic/ragdoll) keep
   the bodies BBM-resident, giving the large BBM fractions of Figure 4. *)

let make ~seed ~objects ~steps ~inner ~solver_iters ~trig ?(scale = 1) () =
  let b = B.create ~seed () in
  let rng = B.rng b in
  B.i b (Mov (Reg EBX, Imm 0));
  B.i b (Fldi (F7, 0.0));
  (* one-shot scene setup: interpreter-resident *)
  Scaffold.cold b ~n:1800;
  B.array_f64 b "state"
    (Array.init (4 * objects) (fun _ -> (Rng.float rng *. 2.0) -. 1.0));
  (* the shared constraint solver: hot, promoted to a superblock *)
  B.func b "solver" (fun () ->
      (* one angular correction per solve... *)
      B.i b (Fmov (F2, F1));
      B.i b (Fun_ (Fsin, F2));
      B.i b (Fbin (Fadd, F0, F2));
      B.counted_loop b ~reg:ECX ~count:solver_iters (fun () ->
          B.i b (Fbin (Fmul, F0, F1));
          B.i b (Fldi (F2, 0.75));
          B.i b (Fbin (Fmul, F0, F2));
          B.i b (Fbin (Fadd, F0, F1));
          B.i b (Fmov (F3, F0));
          B.i b (Fun_ (Fabs, F3));
          B.i b (Fldi (F4, 1.0));
          B.i b (Fbin (Fadd, F3, F4));
          B.i b (Fbin (Fdiv, F0, F3));
          B.i b (Fbin (Fadd, F7, F0))));
  let fname k = Printf.sprintf "obj%d" k in
  for k = 0 to objects - 1 do
    B.func b (fname k) (fun () ->
        let base = 32 * k in
        B.fload_arr b F0 "state" ~off:base ();
        B.fload_arr b F1 "state" ~off:(base + 8) ();
        let body () =
          B.filler_fp_ops b ~n:(6 + Rng.int rng 5) ~trig;
          B.i b (Fbin (Fadd, F0, F1));
          B.i b (Fldi (F2, 0.5));
          B.i b (Fbin (Fmul, F0, F2))
        in
        if inner > 1 then B.counted_loop b ~reg:EDX ~count:inner body else body ();
        B.fstore_arr b "state" ~off:base F0;
        B.fstore_arr b "state" ~off:(base + 8) F1;
        Asm.call (B.asm b) "solver")
  done;
  (* the simulation loop: every object stepped every frame *)
  B.counted_loop b ~reg:EDI ~count:(steps * scale) (fun () ->
      for k = 0 to objects - 1 do
        Asm.call (B.asm b) (fname k)
      done);
  B.i b (Fist (EBX, F7));
  B.i b (Alu (And, Reg EBX, Imm 0xFFFFFF));
  B.print32 b (Reg EBX);
  B.exit_program b ~code:(Reg EBX);
  B.assemble b

let breakable ?scale () =
  make ~seed:301 ~objects:56 ~steps:30 ~inner:18 ~solver_iters:4 ~trig:0.05 ?scale ()

let continuous ?scale () =
  make ~seed:302 ~objects:110 ~steps:40 ~inner:1 ~solver_iters:2 ~trig:0.05 ?scale ()

let deformable ?scale () =
  make ~seed:303 ~objects:72 ~steps:28 ~inner:16 ~solver_iters:4 ~trig:0.06 ?scale ()

let explosions ?scale () =
  make ~seed:304 ~objects:64 ~steps:32 ~inner:18 ~solver_iters:5 ~trig:0.05 ?scale ()

let highspeed ?scale () =
  make ~seed:305 ~objects:48 ~steps:36 ~inner:22 ~solver_iters:4 ~trig:0.05 ?scale ()

let periodic ?scale () =
  make ~seed:306 ~objects:150 ~steps:30 ~inner:1 ~solver_iters:2 ~trig:0.09 ?scale ()

let ragdoll ?scale () =
  make ~seed:307 ~objects:120 ~steps:38 ~inner:1 ~solver_iters:2 ~trig:0.05 ?scale ()

let all =
  [
    ("breakable", breakable);
    ("continuous", continuous);
    ("deformable", deformable);
    ("explosions", explosions);
    ("highspeed", highspeed);
    ("periodic", periodic);
    ("ragdoll", ragdoll);
  ]
