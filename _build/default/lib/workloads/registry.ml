type suite = Specint | Specfp | Physicsbench

type entry = {
  name : string;
  suite : suite;
  build : ?scale:int -> unit -> Darco_guest.Program.t;
}

let suite_name = function
  | Specint -> "SPECINT2006"
  | Specfp -> "SPECFP2006"
  | Physicsbench -> "Physicsbench"

let all =
  List.map (fun (name, build) -> { name; suite = Specint; build }) Spec_int.all
  @ List.map (fun (name, build) -> { name; suite = Specfp; build }) Spec_fp.all
  @ List.map (fun (name, build) -> { name; suite = Physicsbench; build }) Physics.all

let by_suite s = List.filter (fun e -> e.suite = s) all

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> (
    match List.filter (fun e -> contains_sub ~sub:name e.name) all with
    | [ e ] -> e
    | _ -> raise Not_found)

let names () = List.map (fun e -> e.name) all
