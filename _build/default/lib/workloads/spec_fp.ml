open Darco_guest
module B = Builder
module Rng = Darco_util.Rng

(* FP kernels accumulate their checksum in F7; the integer conversion is
   printed and returned so output comparison covers the FP datapath too. *)

let start b ~cold ~warm_blocks ~warm_iters ~trig =
  B.i b (Mov (Reg EBX, Imm 0));
  B.i b (Fldi (F7, 0.0));
  Scaffold.cold b ~n:cold;
  Scaffold.warm_fp b ~blocks:warm_blocks ~iters:warm_iters ~trig

let finish b =
  B.i b (Fist (EBX, F7));
  B.i b (Alu (And, Reg EBX, Imm 0xFFFFFF));
  B.print32 b (Reg EBX);
  B.exit_program b ~code:(Reg EBX)

let rand_f64 rng n lo hi =
  Array.init n (fun _ -> lo +. (Rng.float rng *. (hi -. lo)))

(* 410.bwaves: 1-D wave-equation stencil, ping-ponged between two grids. *)
let bwaves ?(scale = 1) () =
  let b = B.create ~seed:201 () in
  let rng = B.rng b in
  let n = 1024 in
  start b ~cold:900 ~warm_blocks:14 ~warm_iters:58 ~trig:0.0;
  B.array_f64 b "u" (rand_f64 rng n 0.0 1.0);
  B.array_f64 b "v" (Array.make n 0.0);
  B.i b (Fldi (F6, 0.12));
  let stencil src dst =
    B.i b (Mov (Reg ESI, Imm 8));
    B.counted_loop b ~reg:ECX ~count:(n - 2) (fun () ->
        B.fload_arr b F0 src ~index:(ESI, S1) ~off:(-8) ();
        B.fload_arr b F1 src ~index:(ESI, S1) ();
        B.fload_arr b F2 src ~index:(ESI, S1) ~off:8 ();
        B.i b (Fmov (F3, F1));
        B.i b (Fbin (Fadd, F3, F1));
        B.i b (Fmov (F4, F0));
        B.i b (Fbin (Fadd, F4, F2));
        B.i b (Fbin (Fsub, F4, F3));
        B.i b (Fbin (Fmul, F4, F6));
        B.i b (Fbin (Fadd, F4, F1));
        B.fstore_arr b dst ~index:(ESI, S1) F4;
        B.i b (Alu (Add, Reg ESI, Imm 8)))
  in
  B.counted_loop b ~reg:EDI ~count:(44 * scale) (fun () ->
      stencil "u" "v";
      stencil "v" "u");
  B.i b (Mov (Reg ESI, Imm 0));
  B.counted_loop b ~reg:ECX ~count:n (fun () ->
      B.fload_arr b F0 "u" ~index:(ESI, S1) ();
      B.i b (Fbin (Fadd, F7, F0));
      B.i b (Alu (Add, Reg ESI, Imm 8)));
  finish b;
  B.assemble b

(* 433.milc: streams of complex multiply-accumulates. *)
let milc ?(scale = 1) () =
  let b = B.create ~seed:202 () in
  let rng = B.rng b in
  start b ~cold:800 ~warm_blocks:14 ~warm_iters:58 ~trig:0.0;
  let n = 64 in
  B.array_f64 b "cx" (rand_f64 rng (2 * n) (-1.0) 1.0);
  B.counted_loop b ~reg:EDI ~count:(18000 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Reg EDI));
      B.i b (Alu (And, Reg ESI, Imm (n - 1)));
      B.i b (Shift (Shl, Reg ESI, Imm 4));
      B.fload_arr b F0 "cx" ~index:(ESI, S1) ();
      B.fload_arr b F1 "cx" ~index:(ESI, S1) ~off:8 ();
      B.fload_arr b F2 "cx" ~index:(ESI, S1) ~off:16 ();
      B.fload_arr b F3 "cx" ~index:(ESI, S1) ~off:24 ();
      B.i b (Fmov (F4, F0));
      B.i b (Fbin (Fmul, F4, F2));
      B.i b (Fmov (F5, F1));
      B.i b (Fbin (Fmul, F5, F3));
      B.i b (Fbin (Fsub, F4, F5));
      B.i b (Fmov (F5, F0));
      B.i b (Fbin (Fmul, F5, F3));
      B.i b (Fmov (F6, F1));
      B.i b (Fbin (Fmul, F6, F2));
      B.i b (Fbin (Fadd, F5, F6));
      B.i b (Fbin (Fmul, F4, F4));
      B.i b (Fbin (Fmul, F5, F5));
      B.i b (Fldi (F6, 1e-6));
      B.i b (Fbin (Fmul, F4, F6));
      B.i b (Fbin (Fmul, F5, F6));
      B.i b (Fbin (Fadd, F7, F4));
      B.i b (Fbin (Fadd, F7, F5)));
  finish b;
  B.assemble b

(* 434.zeusmp: 2-D 5-point stencil over a 32x32 grid. *)
let zeusmp ?(scale = 1) () =
  let b = B.create ~seed:203 () in
  let rng = B.rng b in
  start b ~cold:900 ~warm_blocks:14 ~warm_iters:58 ~trig:0.0;
  let dim = 32 in
  B.array_f64 b "g0" (rand_f64 rng (dim * dim) 0.0 4.0);
  B.array_f64 b "g1" (Array.make (dim * dim) 0.0);
  B.i b (Fldi (F6, 0.2));
  let row_bytes = 8 * dim in
  let sweep src dst =
    B.i b (Mov (Reg ESI, Imm (row_bytes + 8)));
    B.counted_loop b ~reg:EDX ~count:(dim - 2) (fun () ->
        B.i b (Push (Reg ESI));
        B.counted_loop b ~reg:ECX ~count:(dim - 2) (fun () ->
            B.fload_arr b F0 src ~index:(ESI, S1) ();
            B.fload_arr b F1 src ~index:(ESI, S1) ~off:(-8) ();
            B.i b (Fbin (Fadd, F0, F1));
            B.fload_arr b F1 src ~index:(ESI, S1) ~off:8 ();
            B.i b (Fbin (Fadd, F0, F1));
            B.fload_arr b F1 src ~index:(ESI, S1) ~off:(-row_bytes) ();
            B.i b (Fbin (Fadd, F0, F1));
            B.fload_arr b F1 src ~index:(ESI, S1) ~off:row_bytes ();
            B.i b (Fbin (Fadd, F0, F1));
            B.i b (Fbin (Fmul, F0, F6));
            B.fstore_arr b dst ~index:(ESI, S1) F0;
            B.i b (Alu (Add, Reg ESI, Imm 8)));
        B.i b (Pop ESI);
        B.i b (Alu (Add, Reg ESI, Imm row_bytes)))
  in
  B.counted_loop b ~reg:EDI ~count:(15 * scale) (fun () ->
      sweep "g0" "g1";
      sweep "g1" "g0");
  B.fload_arr b F0 "g0" ~off:(8 * ((dim * 16) + 16)) ();
  B.i b (Fbin (Fadd, F7, F0));
  finish b;
  B.assemble b

(* 435.gromacs: pairwise nonbonded forces with rsqrt-style inner math. *)
let gromacs ?(scale = 1) () =
  let b = B.create ~seed:204 () in
  let rng = B.rng b in
  start b ~cold:1000 ~warm_blocks:14 ~warm_iters:58 ~trig:0.0;
  let nparticles = 128 in
  let npairs = 512 in
  B.array_f64 b "px" (rand_f64 rng nparticles (-4.0) 4.0);
  B.array_f64 b "py" (rand_f64 rng nparticles (-4.0) 4.0);
  B.array_f64 b "pz" (rand_f64 rng nparticles (-4.0) 4.0);
  let pairs =
    Array.init (2 * npairs) (fun k ->
        if k mod 2 = 0 then 8 * Rng.int rng nparticles else 8 * Rng.int rng nparticles)
  in
  B.array32 b "pairs" pairs;
  B.counted_loop b ~reg:EDI ~count:(40 * scale) (fun () ->
      B.i b (Mov (Reg EBP, Imm 0));
      B.counted_loop b ~reg:EDX ~count:npairs (fun () ->
          B.load_arr b ESI "pairs" ~index:(EBP, S8) ();
          B.load_arr b ECX "pairs" ~index:(EBP, S8) ~off:4 ();
          let axis name =
            B.fload_arr b F0 name ~index:(ESI, S1) ();
            B.fload_arr b F1 name ~index:(ECX, S1) ();
            B.i b (Fbin (Fsub, F0, F1));
            B.i b (Fmov (F1, F0));
            B.i b (Fbin (Fmul, F1, F0))
          in
          axis "px";
          B.i b (Fmov (F2, F1));
          axis "py";
          B.i b (Fbin (Fadd, F2, F1));
          axis "pz";
          B.i b (Fbin (Fadd, F2, F1));
          B.i b (Fldi (F3, 0.01));
          B.i b (Fbin (Fadd, F2, F3));
          B.i b (Fun_ (Fsqrt, F2));
          B.i b (Fldi (F3, 1.0));
          B.i b (Fbin (Fdiv, F3, F2));
          B.i b (Fmov (F4, F3));
          B.i b (Fbin (Fmul, F4, F3));
          B.i b (Fbin (Fmul, F4, F3));
          B.i b (Fldi (F5, 1e-3));
          B.i b (Fbin (Fmul, F4, F5));
          B.i b (Fbin (Fadd, F7, F4));
          B.i b (Inc (Reg EBP))));
  finish b;
  B.assemble b

(* 436.cactusADM: very long straight-line update expressions (big basic
   blocks). *)
let cactusadm ?(scale = 1) () =
  let b = B.create ~seed:205 () in
  let rng = B.rng b in
  start b ~cold:1000 ~warm_blocks:14 ~warm_iters:58 ~trig:0.0;
  let n = 512 in
  B.array_f64 b "grid" (rand_f64 rng n 0.5 1.5);
  B.counted_loop b ~reg:EDI ~count:(34 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:ECX ~count:n (fun () ->
          B.fload_arr b F0 "grid" ~index:(ESI, S1) ();
          (* a long deterministic chain: one big block *)
          B.i b (Fmov (F1, F0));
          for k = 1 to 10 do
            B.i b (Fldi (F2, 0.5 +. (0.01 *. float_of_int k)));
            B.i b (Fbin (Fmul, F1, F2));
            B.i b (Fbin (Fadd, F1, F0));
            B.i b (Fldi (F3, 1.0 +. (0.001 *. float_of_int k)));
            B.i b (Fbin (Fdiv, F1, F3))
          done;
          B.fstore_arr b "grid" ~index:(ESI, S1) F1;
          B.i b (Fbin (Fadd, F7, F1));
          B.i b (Alu (Add, Reg ESI, Imm 8))));
  finish b;
  B.assemble b

(* 437.leslie3d: fused triad streams. *)
let leslie3d ?(scale = 1) () =
  let b = B.create ~seed:206 () in
  let rng = B.rng b in
  start b ~cold:900 ~warm_blocks:14 ~warm_iters:58 ~trig:0.0;
  let n = 2048 in
  B.array_f64 b "aa" (Array.make n 0.0);
  B.array_f64 b "bb" (rand_f64 rng n (-1.0) 1.0);
  B.array_f64 b "cc" (rand_f64 rng n (-1.0) 1.0);
  B.i b (Fldi (F6, 0.98));
  B.counted_loop b ~reg:EDI ~count:(26 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:ECX ~count:n (fun () ->
          B.fload_arr b F0 "bb" ~index:(ESI, S1) ();
          B.i b (Fbin (Fmul, F0, F6));
          B.fload_arr b F1 "cc" ~index:(ESI, S1) ();
          B.i b (Fbin (Fadd, F0, F1));
          B.fstore_arr b "aa" ~index:(ESI, S1) F0;
          B.i b (Alu (Add, Reg ESI, Imm 8)));
      B.fload_arr b F0 "aa" ~off:(8 * 100) ();
      B.i b (Fbin (Fadd, F7, F0)));
  finish b;
  B.assemble b

(* 444.namd: O(n^2) force accumulation over a particle set. *)
let namd ?(scale = 1) () =
  let b = B.create ~seed:207 () in
  let rng = B.rng b in
  start b ~cold:900 ~warm_blocks:14 ~warm_iters:58 ~trig:0.0;
  let n = 56 in
  B.array_f64 b "pos" (rand_f64 rng n (-2.0) 2.0);
  B.counted_loop b ~reg:EDI ~count:(17 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:EDX ~count:n (fun () ->
          B.fload_arr b F0 "pos" ~index:(ESI, S1) ();
          B.i b (Mov (Reg EBP, Imm 0));
          B.counted_loop b ~reg:ECX ~count:n (fun () ->
              B.fload_arr b F1 "pos" ~index:(EBP, S1) ();
              B.i b (Fbin (Fsub, F1, F0));
              B.i b (Fbin (Fmul, F1, F1));
              B.i b (Fldi (F2, 0.003));
              B.i b (Fbin (Fmul, F1, F2));
              B.i b (Fbin (Fadd, F7, F1));
              B.i b (Alu (Add, Reg EBP, Imm 8)));
          B.i b (Alu (Add, Reg ESI, Imm 8))));
  finish b;
  B.assemble b

(* 450.soplex: dot products plus comparison-driven pivot scans (mixed FP
   and branches). *)
let soplex ?(scale = 1) () =
  let b = B.create ~seed:208 () in
  let rng = B.rng b in
  start b ~cold:1000 ~warm_blocks:16 ~warm_iters:58 ~trig:0.0;
  let n = 1024 in
  B.array_f64 b "va" (rand_f64 rng n (-1.0) 1.0);
  B.array_f64 b "vb" (rand_f64 rng n (-1.0) 1.0);
  B.counted_loop b ~reg:EDI ~count:(38 * scale) (fun () ->
      (* dot product *)
      B.i b (Mov (Reg ESI, Imm 0));
      B.i b (Fldi (F0, 0.0));
      B.counted_loop b ~reg:ECX ~count:n (fun () ->
          B.fload_arr b F1 "va" ~index:(ESI, S1) ();
          B.fload_arr b F2 "vb" ~index:(ESI, S1) ();
          B.i b (Fbin (Fmul, F1, F2));
          B.i b (Fbin (Fadd, F0, F1));
          B.i b (Alu (Add, Reg ESI, Imm 8)));
      B.i b (Fbin (Fadd, F7, F0));
      (* pivot scan: argmax |v| with FP compares *)
      B.i b (Mov (Reg ESI, Imm 0));
      B.i b (Fldi (F3, 0.0));
      B.counted_loop b ~reg:ECX ~count:n (fun () ->
          let no = B.fresh b "no" in
          B.fload_arr b F1 "va" ~index:(ESI, S1) ();
          B.i b (Fun_ (Fabs, F1));
          B.i b (Fcmp (F1, F3));
          Asm.jcc (B.asm b) BE no;
          B.i b (Fmov (F3, F1));
          Asm.label (B.asm b) no;
          B.i b (Alu (Add, Reg ESI, Imm 8)));
      B.i b (Fbin (Fadd, F7, F3)));
  finish b;
  B.assemble b

(* 453.povray: ray-sphere intersection tests; discriminant branches plus a
   sprinkle of trigonometry. *)
let povray ?(scale = 1) () =
  let b = B.create ~seed:209 () in
  let rng = B.rng b in
  start b ~cold:1100 ~warm_blocks:16 ~warm_iters:58 ~trig:0.05;
  let n = 512 in
  B.array_f64 b "rays" (rand_f64 rng (2 * n) (-1.0) 1.0);
  B.counted_loop b ~reg:EDI ~count:(28 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:ECX ~count:n (fun () ->
          let miss = B.fresh b "miss" in
          let no_trig = B.fresh b "no_trig" in
          B.fload_arr b F0 "rays" ~index:(ESI, S1) ();
          B.fload_arr b F1 "rays" ~index:(ESI, S1) ~off:8 ();
          (* disc = b*b - 4ac with a=1, c from the second coordinate *)
          B.i b (Fmov (F2, F0));
          B.i b (Fbin (Fmul, F2, F0));
          B.i b (Fldi (F3, 4.0));
          B.i b (Fbin (Fmul, F3, F1));
          B.i b (Fbin (Fsub, F2, F3));
          B.i b (Fldi (F4, 0.0));
          B.i b (Fcmp (F2, F4));
          Asm.jcc (B.asm b) B miss;
          B.i b (Fun_ (Fsqrt, F2));
          B.i b (Fbin (Fadd, F7, F2));
          Asm.label (B.asm b) miss;
          (* every 16th ray: angular bookkeeping with sin *)
          B.i b (Mov (Reg EAX, Reg ECX));
          B.i b (Alu (And, Reg EAX, Imm 15));
          Asm.jcc (B.asm b) NE no_trig;
          B.i b (Fmov (F5, F0));
          B.i b (Fun_ (Fsin, F5));
          B.i b (Fbin (Fadd, F7, F5));
          Asm.label (B.asm b) no_trig;
          B.i b (Alu (Add, Reg ESI, Imm 16))));
  finish b;
  B.assemble b

(* 454.calculix: repeated forward-elimination sweeps (division-heavy). *)
let calculix ?(scale = 1) () =
  let b = B.create ~seed:210 () in
  let rng = B.rng b in
  start b ~cold:900 ~warm_blocks:14 ~warm_iters:58 ~trig:0.0;
  let dim = 16 in
  B.array_f64 b "mat" (rand_f64 rng (dim * dim) 1.0 2.0);
  let row = 8 * dim in
  B.counted_loop b ~reg:EDI ~count:(60 * scale) (fun () ->
      (* strengthen the diagonal to keep the elimination well-conditioned *)
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:ECX ~count:dim (fun () ->
          B.fload_arr b F0 "mat" ~index:(ESI, S1) ();
          B.i b (Fldi (F1, 2.5));
          B.i b (Fbin (Fadd, F0, F1));
          B.fstore_arr b "mat" ~index:(ESI, S1) F0;
          B.i b (Alu (Add, Reg ESI, Imm (row + 8))));
      (* elimination sweep below the first two pivots *)
      for k = 0 to 1 do
        let pivot_off = (k * row) + (k * 8) in
        B.i b (Mov (Reg ESI, Imm ((k + 1) * row)));
        B.counted_loop b ~reg:EDX ~count:(dim - k - 1) (fun () ->
            B.fload_arr b F0 "mat" ~index:(ESI, S1) ~off:(k * 8) ();
            B.fload_arr b F1 "mat" ~off:pivot_off ();
            B.i b (Fbin (Fdiv, F0, F1));
            B.i b (Mov (Reg EBP, Imm (k * 8)));
            B.counted_loop b ~reg:ECX ~count:(dim - k) (fun () ->
                B.fload_arr b F1 "mat" ~index:(EBP, S1) ~off:(k * row) ();
                B.i b (Fbin (Fmul, F1, F0));
                B.i b (Push (Reg ESI));
                B.i b (Alu (Add, Reg ESI, Reg EBP));
                B.fload_arr b F2 "mat" ~index:(ESI, S1) ();
                B.i b (Fbin (Fsub, F2, F1));
                B.fstore_arr b "mat" ~index:(ESI, S1) F2;
                B.i b (Pop ESI);
                B.i b (Alu (Add, Reg EBP, Imm 8)));
            B.i b (Fbin (Fadd, F7, F0));
            B.i b (Alu (Add, Reg ESI, Imm row)))
      done);
  finish b;
  B.assemble b

(* 459.GemsFDTD: interleaved E/H leapfrog updates. *)
let gemsfdtd ?(scale = 1) () =
  let b = B.create ~seed:211 () in
  let rng = B.rng b in
  start b ~cold:900 ~warm_blocks:14 ~warm_iters:58 ~trig:0.0;
  let n = 1024 in
  B.array_f64 b "ef" (rand_f64 rng n (-0.5) 0.5);
  B.array_f64 b "hf" (rand_f64 rng n (-0.5) 0.5);
  B.i b (Fldi (F6, 0.45));
  B.counted_loop b ~reg:EDI ~count:(34 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 8));
      B.counted_loop b ~reg:ECX ~count:(n - 2) (fun () ->
          B.fload_arr b F0 "hf" ~index:(ESI, S1) ();
          B.fload_arr b F1 "hf" ~index:(ESI, S1) ~off:(-8) ();
          B.i b (Fbin (Fsub, F0, F1));
          B.i b (Fbin (Fmul, F0, F6));
          B.fload_arr b F1 "ef" ~index:(ESI, S1) ();
          B.i b (Fbin (Fadd, F1, F0));
          B.fstore_arr b "ef" ~index:(ESI, S1) F1;
          B.i b (Alu (Add, Reg ESI, Imm 8)));
      B.i b (Mov (Reg ESI, Imm 8));
      B.counted_loop b ~reg:ECX ~count:(n - 2) (fun () ->
          B.fload_arr b F0 "ef" ~index:(ESI, S1) ~off:8 ();
          B.fload_arr b F1 "ef" ~index:(ESI, S1) ();
          B.i b (Fbin (Fsub, F0, F1));
          B.i b (Fbin (Fmul, F0, F6));
          B.fload_arr b F1 "hf" ~index:(ESI, S1) ();
          B.i b (Fbin (Fadd, F1, F0));
          B.fstore_arr b "hf" ~index:(ESI, S1) F1;
          B.i b (Alu (Add, Reg ESI, Imm 8))));
  B.fload_arr b F0 "ef" ~off:(8 * 31) ();
  B.i b (Fbin (Fadd, F7, F0));
  finish b;
  B.assemble b

(* 470.lbm: wide collision kernels — nine loads, relax, nine stores per
   cell. *)
let lbm ?(scale = 1) () =
  let b = B.create ~seed:212 () in
  let rng = B.rng b in
  start b ~cold:900 ~warm_blocks:14 ~warm_iters:58 ~trig:0.0;
  let cells = 256 in
  B.array_f64 b "f" (rand_f64 rng (9 * cells) 0.1 1.1);
  B.i b (Fldi (F6, 1.0 /. 9.0));
  B.i b (Fldi (F5, 0.6));
  B.counted_loop b ~reg:EDI ~count:(16 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.counted_loop b ~reg:ECX ~count:cells (fun () ->
          (* avg of the nine populations *)
          B.i b (Fldi (F0, 0.0));
          for k = 0 to 8 do
            B.fload_arr b F1 "f" ~index:(ESI, S1) ~off:(8 * k) ();
            B.i b (Fbin (Fadd, F0, F1))
          done;
          B.i b (Fbin (Fmul, F0, F6));
          for k = 0 to 8 do
            B.fload_arr b F1 "f" ~index:(ESI, S1) ~off:(8 * k) ();
            B.i b (Fmov (F2, F0));
            B.i b (Fbin (Fsub, F2, F1));
            B.i b (Fbin (Fmul, F2, F5));
            B.i b (Fbin (Fadd, F1, F2));
            B.fstore_arr b "f" ~index:(ESI, S1) ~off:(8 * k) F1
          done;
          B.i b (Fbin (Fadd, F7, F0));
          B.i b (Alu (Add, Reg ESI, Imm 72))));
  finish b;
  B.assemble b

(* 482.sphinx3: Gaussian log-likelihood scoring with best-score tracking. *)
let sphinx3 ?(scale = 1) () =
  let b = B.create ~seed:213 () in
  let rng = B.rng b in
  start b ~cold:1000 ~warm_blocks:16 ~warm_iters:58 ~trig:0.0;
  let frames = 128 in
  let dims = 16 in
  B.array_f64 b "feat" (rand_f64 rng (frames * dims) (-1.0) 1.0);
  B.array_f64 b "mean" (rand_f64 rng dims (-0.5) 0.5);
  B.array_f64 b "wvar" (rand_f64 rng dims 0.5 1.5);
  B.counted_loop b ~reg:EDI ~count:(24 * scale) (fun () ->
      B.i b (Mov (Reg ESI, Imm 0));
      B.i b (Fldi (F4, 1e9));
      B.counted_loop b ~reg:EDX ~count:frames (fun () ->
          B.i b (Fldi (F0, 0.0));
          B.i b (Mov (Reg EBP, Imm 0));
          B.counted_loop b ~reg:ECX ~count:dims (fun () ->
              B.i b (Push (Reg ESI));
              B.i b (Alu (Add, Reg ESI, Reg EBP));
              B.fload_arr b F1 "feat" ~index:(ESI, S1) ();
              B.i b (Pop ESI);
              B.fload_arr b F2 "mean" ~index:(EBP, S1) ();
              B.i b (Fbin (Fsub, F1, F2));
              B.i b (Fbin (Fmul, F1, F1));
              B.fload_arr b F2 "wvar" ~index:(EBP, S1) ();
              B.i b (Fbin (Fmul, F1, F2));
              B.i b (Fbin (Fadd, F0, F1));
              B.i b (Alu (Add, Reg EBP, Imm 8)));
          (* track the best (lowest) score *)
          let worse = B.fresh b "worse" in
          B.i b (Fcmp (F0, F4));
          Asm.jcc (B.asm b) AE worse;
          B.i b (Fmov (F4, F0));
          Asm.label (B.asm b) worse;
          B.i b (Alu (Add, Reg ESI, Imm (8 * dims))));
      B.i b (Fbin (Fadd, F7, F4)));
  finish b;
  B.assemble b

let all =
  [
    ("410.bwaves", bwaves);
    ("433.milc", milc);
    ("434.zeusmp", zeusmp);
    ("435.gromacs", gromacs);
    ("436.cactusADM", cactusadm);
    ("437.leslie3d", leslie3d);
    ("444.namd", namd);
    ("450.soplex", soplex);
    ("453.povray", povray);
    ("454.calculix", calculix);
    ("459.GemsFDTD", gemsfdtd);
    ("470.lbm", lbm);
    ("482.sphinx3", sphinx3);
  ]
