open Darco_guest

(** SPECFP2006-like synthetic kernels: floating-point loops with larger
    basic blocks, high dynamic-to-static instruction ratios, stencils,
    reductions and dense linear algebra.  [scale] multiplies hot iteration
    counts. *)

val bwaves : ?scale:int -> unit -> Program.t
(** 1-D wave stencil *)

val milc : ?scale:int -> unit -> Program.t
(** complex 2x2 products *)

val zeusmp : ?scale:int -> unit -> Program.t
(** 2-D 5-point stencil *)

val gromacs : ?scale:int -> unit -> Program.t
(** pairwise forces *)

val cactusadm : ?scale:int -> unit -> Program.t
(** long expression chains *)

val leslie3d : ?scale:int -> unit -> Program.t
(** fused triads *)

val namd : ?scale:int -> unit -> Program.t
(** n-body accumulation *)

val soplex : ?scale:int -> unit -> Program.t
(** dot products + pivots *)

val povray : ?scale:int -> unit -> Program.t
(** ray-sphere tests *)

val calculix : ?scale:int -> unit -> Program.t
(** elimination steps *)

val gemsfdtd : ?scale:int -> unit -> Program.t
(** leapfrog field update *)

val lbm : ?scale:int -> unit -> Program.t
(** collision kernel *)

val sphinx3 : ?scale:int -> unit -> Program.t
(** log-likelihood scan *)


val all : (string * (?scale:int -> unit -> Program.t)) list
