(** Shared execution-phase scaffolding for the synthetic benchmark kernels.

    The paper's Figure 4 behaviour is driven by how often each piece of
    static code executes: code seen fewer than the BB threshold stays
    interpreted (IM), code between the BB and superblock thresholds runs as
    basic-block translations (BBM), and hotter code is promoted to
    superblocks (SBM).  Kernels combine their algorithmic hot loops with
    [cold]/[warm] phases to reproduce each suite's characteristic
    dynamic-to-static instruction ratio. *)

val cold : Builder.t -> n:int -> unit
(** About [n] dynamic instructions of once-executed straight-line code
    (stays in IM). *)

val warm : Builder.t -> blocks:int -> iters:int -> unit
(** [blocks] distinct loop bodies each executed [iters] times (choose
    [iters] between the promotion thresholds for BBM-resident code).
    Clobbers EAX/EDX/ESI/EDI and EBP. *)

val warm_fp : Builder.t -> blocks:int -> iters:int -> trig:float -> unit
(** FP variant; also clobbers F0-F5. *)
