open Darco_guest
module Rng = Darco_util.Rng

type t = { a : Asm.t; rng : Rng.t; mutable next_label : int }

let create ?(base = 0x1000) ~seed () =
  { a = Asm.create ~base (); rng = Rng.create seed; next_label = 0 }

let asm t = t.a
let rng t = t.rng
let i t insn = Asm.insn t.a insn

let fresh t stem =
  t.next_label <- t.next_label + 1;
  Printf.sprintf "%s_%d" stem t.next_label

let counted_loop t ~reg ~count body =
  let head = fresh t "loop" in
  i t (Mov (Reg reg, Imm count));
  Asm.label t.a head;
  body ();
  i t (Dec (Reg reg));
  Asm.jcc t.a NE head

let while_loop t ~cond body =
  let head = fresh t "while" in
  let stop = fresh t "done" in
  Asm.label t.a head;
  cond stop;
  body ();
  Asm.jmp t.a head;
  Asm.label t.a stop

let func t name body =
  let skip = fresh t "skip" in
  Asm.jmp t.a skip;
  Asm.label t.a name;
  body ();
  i t Ret;
  Asm.label t.a skip

let jump_table t name targets =
  let skip = fresh t "skip" in
  Asm.jmp t.a skip;
  Asm.align t.a 4;
  Asm.label t.a name;
  List.iter (fun target -> Asm.dword_label t.a target) targets;
  Asm.label t.a skip

let table_dispatch t ~table ~index = Asm.jmp_table t.a table index

let mem_of resolve label index off : Isa.mem =
  { base = None; index; disp = resolve label + off }

let load_arr t dst label ?index ?(off = 0) () =
  Asm.insn_with t.a (fun resolve -> Isa.Mov (Reg dst, Mem (mem_of resolve label index off)))

let store_arr t label ?index ?(off = 0) src =
  Asm.insn_with t.a (fun resolve -> Isa.Mov (Mem (mem_of resolve label index off), Reg src))

let fload_arr t fdst label ?index ?(off = 0) () =
  Asm.insn_with t.a (fun resolve -> Isa.Fld (fdst, mem_of resolve label index off))

let fstore_arr t label ?index ?(off = 0) fsrc =
  Asm.insn_with t.a (fun resolve -> Isa.Fst (mem_of resolve label index off, fsrc))

let load8_arr t dst label ?index ?(off = 0) () =
  Asm.insn_with t.a (fun resolve ->
      Isa.Movx (W8, false, dst, mem_of resolve label index off))

let store8_arr t label ?index ?(off = 0) src =
  Asm.insn_with t.a (fun resolve -> Isa.Movw (W8, mem_of resolve label index off, src))

let addr_of t r label = Asm.mov_label t.a r label

let array32 t name values =
  let skip = fresh t "skip" in
  Asm.jmp t.a skip;
  Asm.align t.a 4;
  Asm.label t.a name;
  Array.iter (fun v -> Asm.dword t.a v) values;
  Asm.label t.a skip

let array8 t name values =
  let skip = fresh t "skip" in
  Asm.jmp t.a skip;
  Asm.label t.a name;
  Asm.bytes t.a (Bytes.init (Array.length values) (fun i -> Char.chr (values.(i) land 0xFF)));
  Asm.label t.a skip

let array_f64 t name values =
  let skip = fresh t "skip" in
  Asm.jmp t.a skip;
  Asm.align t.a 8;
  Asm.label t.a name;
  Array.iter (fun v -> Asm.f64 t.a v) values;
  Asm.label t.a skip

let zero_bytes t name n =
  let skip = fresh t "skip" in
  Asm.jmp t.a skip;
  Asm.align t.a 8;
  Asm.label t.a name;
  Asm.zeros t.a n;
  Asm.label t.a skip

(* Flag-clobbering integer filler over a limited register set, keeping
   values bounded so overflow semantics never matter for termination. *)
let filler_regs = [| Isa.EAX; Isa.EDX; Isa.ESI; Isa.EDI |]

let filler_ops t ~n =
  for _ = 1 to n do
    let r1 = Rng.choose t.rng filler_regs in
    let r2 = Rng.choose t.rng filler_regs in
    let insn : Isa.insn =
      match Rng.int t.rng 6 with
      | 0 -> Alu (Add, Reg r1, Reg r2)
      | 1 -> Alu (Xor, Reg r1, Reg r2)
      | 2 -> Alu (Sub, Reg r1, Imm (Rng.int t.rng 4096))
      | 3 -> Shift (Shl, Reg r1, Imm (Rng.in_range t.rng 1 5))
      | 4 -> Alu (And, Reg r1, Imm 0xFFFFF)
      | _ -> Imul2 (r1, Imm (Rng.in_range t.rng 3 17))
    in
    i t insn
  done

let filler_fregs = [| Isa.F0; Isa.F1; Isa.F2; Isa.F3; Isa.F4; Isa.F5 |]

let filler_fp_ops t ~n ~trig =
  for _ = 1 to n do
    let f1 = Rng.choose t.rng filler_fregs in
    let f2 = Rng.choose t.rng filler_fregs in
    if Rng.chance t.rng trig then
      i t (Fun_ ((if Rng.bool t.rng then Fsin else Fcos), f1))
    else
      let insn : Isa.insn =
        match Rng.int t.rng 4 with
        | 0 -> Fbin (Fadd, f1, f2)
        | 1 -> Fbin (Fmul, f1, f2)
        | 2 -> Fbin (Fsub, f1, f2)
        | _ -> Fun_ (Fabs, f1)
      in
      i t insn
  done

let exit_program t ~code =
  (match code with
  | Isa.Reg EBX -> ()
  | _ -> i t (Mov (Reg EBX, code)));
  i t (Mov (Reg EAX, Imm 1));
  i t Syscall;
  i t Halt

let scratch_buf = 0x0700_0000

let print32 t value =
  i t (Mov (Mem { base = None; index = None; disp = scratch_buf }, value));
  i t (Mov (Reg EBX, Imm 1));
  i t (Mov (Reg ECX, Imm scratch_buf));
  i t (Mov (Reg EDX, Imm 4));
  i t (Mov (Reg EAX, Imm 4));
  i t Syscall

let assemble ?entry t = Asm.assemble ?entry t.a
