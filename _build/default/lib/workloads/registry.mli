open Darco_guest

(** The benchmark registry: every synthetic kernel with its suite, in the
    paper's order. *)

type suite = Specint | Specfp | Physicsbench

type entry = {
  name : string;
  suite : suite;
  build : ?scale:int -> unit -> Program.t;
}

val suite_name : suite -> string
val all : entry list
val by_suite : suite -> entry list
val find : string -> entry
(** Lookup by exact name or by unique substring; raises [Not_found]. *)

val names : unit -> string list
