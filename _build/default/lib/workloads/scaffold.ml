

let cold b ~n =
  let chunk = 40 in
  let chunks = max 1 (n / chunk) in
  for _ = 1 to chunks do
    Builder.filler_ops b ~n:chunk
  done

let warm b ~blocks ~iters =
  for _ = 1 to blocks do
    Builder.counted_loop b ~reg:EBP ~count:iters (fun () -> Builder.filler_ops b ~n:12)
  done

let warm_fp b ~blocks ~iters ~trig =
  for _ = 1 to blocks do
    Builder.counted_loop b ~reg:EBP ~count:iters (fun () ->
        Builder.filler_fp_ops b ~n:10 ~trig;
        Builder.filler_ops b ~n:3)
  done
