open Darco_guest

(** Program-construction DSL over the assembler, used by the synthetic
    benchmark kernels.  Provides structured control flow (counted loops,
    call/ret functions, jump tables), data sections, and deterministic
    pseudo-random code generation for inflating static footprints (the
    Physicsbench-style low dynamic/static-ratio workloads). *)

type t

val create : ?base:int -> seed:int -> unit -> t
val asm : t -> Asm.t
val rng : t -> Darco_util.Rng.t

val i : t -> Isa.insn -> unit
(** Emit one instruction. *)

val fresh : t -> string -> string
(** A fresh label with the given stem. *)

val counted_loop : t -> reg:Isa.reg -> count:int -> (unit -> unit) -> unit
(** [counted_loop t ~reg ~count body]: [reg] counts down from [count];
    the body must preserve [reg]. *)

val while_loop : t -> cond:(string -> unit) -> (unit -> unit) -> unit
(** [while_loop t ~cond body]: [cond exit_label] emits code that jumps to
    [exit_label] to leave the loop. *)

val func : t -> string -> (unit -> unit) -> unit
(** Define a callable function (label + body + RET).  Emitted in place;
    execution falls around it via an internal jump. *)

val jump_table : t -> string -> string list -> unit
(** [jump_table t name targets] emits a table of code addresses; index with
    [JmpInd] on [Mem {base; index*4; disp = name}]. *)

val table_dispatch : t -> table:string -> index:Isa.reg -> unit
(** Indirect jump through a jump table using the (bounded) index register;
    the caller guarantees the index is in range. *)

val load_arr :
  t -> Isa.reg -> string -> ?index:Isa.reg * Isa.scale -> ?off:int -> unit -> unit
(** [load_arr t dst label ~index ~off ()]: dst <- \[label + index*scale + off\]. *)

val store_arr :
  t -> string -> ?index:Isa.reg * Isa.scale -> ?off:int -> Isa.reg -> unit

val fload_arr :
  t -> Isa.freg -> string -> ?index:Isa.reg * Isa.scale -> ?off:int -> unit -> unit

val fstore_arr :
  t -> string -> ?index:Isa.reg * Isa.scale -> ?off:int -> Isa.freg -> unit

val load8_arr :
  t -> Isa.reg -> string -> ?index:Isa.reg * Isa.scale -> ?off:int -> unit -> unit
(** Zero-extending byte load. *)

val store8_arr :
  t -> string -> ?index:Isa.reg * Isa.scale -> ?off:int -> Isa.reg -> unit

val addr_of : t -> Isa.reg -> string -> unit
(** Load a label's address into a register. *)

val array32 : t -> string -> int array -> unit
val array8 : t -> string -> int array -> unit
val array_f64 : t -> string -> float array -> unit
val zero_bytes : t -> string -> int -> unit
(** Data sections (emitted in place; jump around them). *)

val filler_ops : t -> n:int -> unit
(** [n] deterministic random register-to-register integer instructions
    (EAX/EDX/ESI/EDI only; flags clobbered). *)

val filler_fp_ops : t -> n:int -> trig:float -> unit
(** Random FP instructions over F0-F5; [trig] is the fraction of
    sin/cos. *)

val exit_program : t -> code:Isa.operand -> unit
(** exit(code) syscall followed by HALT. *)

val print32 : t -> Isa.operand -> unit
(** Write the 4 raw bytes of a value to fd 1 (uses a scratch buffer;
    clobbers EAX/EBX/ECX/EDX). *)

val assemble : ?entry:string -> t -> Program.t
