open Darco_guest

(** The co-designed register convention: how guest architectural state is
    direct-mapped onto host registers.

    At every region boundary (entry, exit, transition to/from the
    interpreter) guest state lives in these fixed host registers; inside an
    optimization region the register allocator is free to rename.  The
    direct mapping is one of the paper's emulation-cost optimizations: guest
    registers never have to be loaded/stored from a context block. *)

val zero : Code.reg
(** r0, hard-wired zero. *)

val guest : Isa.reg -> Code.reg
(** r1..r8 hold EAX..EDI. *)

val flags : Code.reg
(** r9 holds the packed guest flags ({!Darco_guest.Flags} layout). *)

val scratch0 : Code.reg
val scratch1 : Code.reg
val scratch2 : Code.reg
(** r10..r12: scratch registers reserved for inline service sequences
    (profiling stubs, IBTC probes); never allocated. *)

val spill_scratch0 : Code.reg
val spill_scratch1 : Code.reg
(** r13/r14: reserved for register-allocator spill reload sequences. *)

val alloc_first : Code.reg
val alloc_last : Code.reg
(** r16..r55: the allocatable pool for optimization regions. *)

val guest_f : Isa.freg -> Code.freg
(** f0..f7 hold the guest FP registers. *)

val falloc_first : Code.freg
val falloc_last : Code.freg
(** f8..f27: allocatable FP pool. *)

val fscratch0 : Code.freg
val fscratch1 : Code.freg
(** f28/f29: FP spill scratch. *)
