open Darco_guest

(** The host machine state, including the co-designed hardware support for
    speculation: an architectural register checkpoint, a gated store buffer
    (stores are invisible to memory until {!commit}), and an alias-protection
    table that detects conflicts between hoisted speculative loads and later
    stores. *)

type t = {
  r : int array;          (** 64 integer registers; r0 reads as zero *)
  f : float array;        (** 32 FP registers *)
  mem : Memory.t;         (** the co-designed component's emulated memory *)
  sbuf : (int, int) Hashtbl.t;          (** gated store buffer (byte level) *)
  mutable aliases : (int * int) list;   (** speculative-load protection table *)
  mutable ckpt_r : int array;
  mutable ckpt_f : float array;
}

exception Alias_violation
(** A gated store overlapped a speculatively hoisted load. *)

val create : Memory.t -> t

val get : t -> Code.reg -> int
val set : t -> Code.reg -> int -> unit
(** Values are canonicalized to 32 bits; writes to r0 are discarded. *)

val checkpoint : t -> unit
val rollback : t -> unit
(** Restore registers from the checkpoint and discard gated stores and the
    alias table.  Memory is untouched (no store ever reached it). *)

val commit : t -> unit
(** Drain the store buffer to memory.  Probes every destination page first,
    so {!Memory.Page_fault} leaves memory unmodified with the buffer intact
    (the caller then rolls back, services the fault and re-executes). *)

val in_flight_stores : t -> int
(** Gated stores not yet committed (testing/stats). *)

val load : t -> Isa.width -> signed:bool -> int -> int
(** Store-buffer-forwarding load. *)

val load_spec : t -> Isa.width -> signed:bool -> int -> int
(** As {!load}, additionally recording the range in the alias table. *)

val store : t -> Isa.width -> int -> int -> unit
(** Gated store; raises {!Alias_violation} on a conflict with a recorded
    speculative load. *)

val load_f64 : t -> int -> float
val store_f64 : t -> int -> float -> unit

val copy_guest_in : t -> Cpu.t -> unit
(** Prologue: place guest architectural state into the fixed mapping. *)

val copy_guest_out : t -> Cpu.t -> unit
(** Epilogue: read guest state back out of the fixed mapping (EIP and halt
    status are the caller's responsibility). *)
