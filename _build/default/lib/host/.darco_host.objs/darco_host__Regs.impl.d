lib/host/regs.ml: Darco_guest Isa
