lib/host/flagcalc.ml: Code Darco_guest Semantics
