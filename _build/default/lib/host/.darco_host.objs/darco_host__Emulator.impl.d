lib/host/emulator.ml: Array Code Darco_guest Flagcalc Isa Machine Memory Semantics
