lib/host/flagcalc.mli: Code
