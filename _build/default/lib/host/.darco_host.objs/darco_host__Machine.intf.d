lib/host/machine.mli: Code Cpu Darco_guest Hashtbl Isa Memory
