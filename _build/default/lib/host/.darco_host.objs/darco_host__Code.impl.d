lib/host/code.ml: Array Darco_guest Format Isa List Printf
