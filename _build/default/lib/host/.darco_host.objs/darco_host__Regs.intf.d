lib/host/regs.mli: Code Darco_guest Isa
