lib/host/machine.ml: Array Cpu Darco_guest Flags Hashtbl Int64 Isa List Memory Regs Semantics
