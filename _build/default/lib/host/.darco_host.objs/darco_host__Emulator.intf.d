lib/host/emulator.mli: Code Machine
