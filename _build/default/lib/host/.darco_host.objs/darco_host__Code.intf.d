lib/host/code.mli: Darco_guest Format Isa
