open Darco_guest

let compute (k : Code.flkind) ~a ~b ~c =
  let snd2 (_, f) = f in
  match k with
  | Fl_add -> snd2 (Semantics.alu Add ~cf_in:false a b)
  | Fl_adc -> snd2 (Semantics.alu Adc ~cf_in:(c <> 0) a b)
  | Fl_sub -> snd2 (Semantics.alu Sub ~cf_in:false a b)
  | Fl_sbb -> snd2 (Semantics.alu Sbb ~cf_in:(c <> 0) a b)
  | Fl_logic -> snd2 (Semantics.alu Or ~cf_in:false a 0)
  | Fl_shl -> snd2 (Semantics.shift Shl a ~count:b ~flags:c)
  | Fl_shr -> snd2 (Semantics.shift Shr a ~count:b ~flags:c)
  | Fl_sar -> snd2 (Semantics.shift Sar a ~count:b ~flags:c)
  | Fl_rol -> snd2 (Semantics.shift Rol a ~count:b ~flags:c)
  | Fl_ror -> snd2 (Semantics.shift Ror a ~count:b ~flags:c)
  | Fl_inc -> snd2 (Semantics.inc a ~flags:c)
  | Fl_dec -> snd2 (Semantics.dec a ~flags:c)
  | Fl_neg -> snd2 (Semantics.neg a)
  | Fl_mulu ->
    let _, _, f = Semantics.mul_u a b in
    f
  | Fl_muls ->
    let _, _, f = Semantics.mul_s a b in
    f
