(** Hrisc: the host ISA and executable code regions.

    A PowerPC-flavoured 3-operand RISC extended with the co-designed
    features the paper assumes of the hardware: architectural checkpoints
    with gated stores, [Assert] instructions for control speculation,
    speculative loads protected by an alias table, and patchable region
    exits used for translation chaining.

    Host code lives in the code cache as arrays of instructions; instruction
    [i] of a region is architecturally at host address [base + 4*i] (a fixed
    4-byte encoding), which is what the timing simulator's front-end
    fetches. *)

open Darco_guest

type reg = int
(** 0..63; r0 reads as zero and ignores writes. *)

type freg = int
(** 0..31 *)

type binop =
  | Add | Sub | Mul | Mulhu | Mulhs
  | And | Or | Xor
  | Shl | Shr | Sar
  | Slt | Sltu | Seq | Sne

type cmp = Beq | Bne | Blt | Bge | Bltu | Bgeu

type fbinop = Fadd | Fsub | Fmul | Fdiv
type funop = Fsqrt | Fabs | Fneg

(** Complex guest operations the host implements as software runtime
    services (the paper's trigonometric functions, plus 64/32 division). *)
type rt_fn = Rt_sin | Rt_cos | Rt_divu | Rt_divs

val rt_cost : rt_fn -> int
(** Host instructions consumed by one invocation of the service routine. *)

(** Guest flag-producing operation kinds, for the [Mkfl] flag-assist
    instruction.  Co-designed hosts add hardware support for the guest's
    condition codes (Transmeta's hardware x86 flags being the canonical
    example); [Mkfl] computes the packed guest flags of one guest ALU
    operation in a single host instruction. *)
type flkind =
  | Fl_add | Fl_adc | Fl_sub | Fl_sbb
  | Fl_logic
  | Fl_shl | Fl_shr | Fl_sar | Fl_rol | Fl_ror
  | Fl_inc | Fl_dec | Fl_neg
  | Fl_mulu | Fl_muls

(** Why control leaves a region. *)
type exit_kind =
  | Exit_direct of int    (** next guest PC, statically known; chainable *)
  | Exit_indirect of reg  (** guest PC in a host register (IBTC miss path) *)
  | Exit_syscall of int   (** guest PC of the syscall instruction *)
  | Exit_interp of int    (** guest PC of an interpreter-only instruction *)
  | Exit_promote of int   (** guest PC whose counter crossed the SB threshold *)
  | Exit_halt

type region = {
  id : int;
  entry_pc : int;                       (** guest PC this region translates *)
  mode : [ `Bb | `Super ];
  mutable base : int;                   (** host code address of insn 0 *)
  mutable code : insn array;
  mutable incoming : exit_info list;    (** exits chained to this region *)
  mutable invalidated : bool;
}

and exit_info = {
  exit_id : int;
  kind : exit_kind;
  guest_retired : int;  (** guest insns completed when this exit commits *)
  mutable chain : region option;  (** patched direct jump to another region *)
  prefer_bb : bool;     (** chain only to a [`Bb] translation (unroll residue) *)
}

and insn =
  | Nop
  | Li of reg * int                               (** rd <- imm32 *)
  | Bin of binop * reg * reg * reg
  | Bini of binop * reg * reg * int
  | Load of Isa.width * bool * reg * reg * int    (** signed?, rd, base, disp *)
  | Sload of Isa.width * bool * reg * reg * int   (** speculative (hoisted) *)
  | Store of Isa.width * reg * reg * int          (** value, base, disp *)
  | Fli of freg * float
  | Fmov of freg * freg
  | Fbin of fbinop * freg * freg * freg
  | Fun of funop * freg * freg
  | Fload of freg * reg * int                     (** f64 *)
  | Fstore of freg * reg * int
  | Fcmp of reg * freg * freg                     (** rd <- packed guest flags *)
  | Cvtif of freg * reg                           (** signed int -> f64 *)
  | Cvtfi of reg * freg                           (** f64 -> int, truncating *)
  | Mkfl of flkind * reg * reg * reg * reg
      (** rd <- packed guest flags of the guest op described by (a, b, c);
          c carries the carry-in, dynamic shift count's incoming flags, or
          the flags whose CF an INC/DEC must preserve *)
  | Isel of reg * reg * reg * reg                 (** rd <- rc<>0 ? ra : rb *)
  | Callrt_f of rt_fn * freg * freg               (** sin/cos: dst, src *)
  | Callrt_div of {
      signed : bool;
      q : reg;
      r : reg;
      hi : reg;
      lo : reg;
      d : reg;
    }
  | B of cmp * reg * reg * int                    (** intra-region, target index *)
  | J of int                                      (** intra-region jump *)
  | Jr of reg * reg                               (** host addr, guest-PC fallback *)
  | Assert of cmp * reg * reg                     (** rollback if cmp is false *)
  | Chk                                           (** checkpoint *)
  | Commit of int
      (** drain the gated store buffer to memory and credit that many guest
          instructions as retired; every exit path runs exactly one *)
  | Exit of exit_info                             (** leave region (post-commit) *)

val binop_name : binop -> string
val exit_of : insn -> exit_info option
val pp_insn : Format.formatter -> insn -> unit
val pp_region : Format.formatter -> region -> unit

val host_pc : region -> int -> int
(** Architectural host address of instruction [idx]. *)

val defs : insn -> reg list
val uses : insn -> reg list
val fdefs : insn -> freg list
val fuses : insn -> freg list
(** Register def/use sets (integer and float classes), used by the
    scheduler's dependence construction and by verification tests. *)
