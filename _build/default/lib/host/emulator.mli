(** The host ISA functional emulator.

    Executes translated regions out of the code cache, following chained
    exits and inline-IBTC indirect jumps without leaving "hardware", and
    returns to the software layer only when it must (unchained exit, IBTC
    miss, speculation failure, page fault, exhausted fuel).  This is the
    execution half of the paper's co-designed component. *)

val eval_binop : Code.binop -> int -> int -> int
(** Value semantics of the host ALU (exposed for constant folding in the
    optimizer and for the IR evaluator used in tests). *)

type retire_info = {
  host_pc : int;
  insn : Code.insn;
  mem_access : (int * [ `Load | `Store ]) option;  (** effective address *)
  branch : (bool * int) option;  (** taken?, target host PC *)
}
(** Per-retired-instruction record streamed to the timing simulator. *)

type stop =
  | Stop_exit of Code.exit_info          (** unchained exit: TOL dispatches *)
  | Stop_indirect_miss of int            (** IBTC missed; guest PC *)
  | Stop_rollback of [ `Assert | `Alias ] * Code.region
      (** speculation failure; registers restored to the checkpoint *)
  | Stop_fault of int * Code.region
      (** page fault (page index); state rolled back to the checkpoint *)
  | Stop_fuel of int                     (** fuel exhausted at a region entry;
                                             guest PC to resume at *)

type result = {
  stop : stop;
  host_retired : int;    (** host instructions executed (application stream) *)
  host_bb : int;         (** portion executed in [`Bb] regions *)
  host_super : int;      (** portion executed in [`Super] regions *)
  guest_bb : int;        (** guest insns retired from [`Bb] regions *)
  guest_super : int;     (** guest insns retired from [`Super] regions *)
  chains_followed : int;
  wasted_host : int;     (** host insns whose work was rolled back *)
}

val run :
  Machine.t ->
  resolve:(int -> Code.region option) ->
  ?fuel:int ->
  ?on_retire:(retire_info -> unit) ->
  Code.region ->
  result
(** [run m ~resolve region] enters [region] at instruction 0.  [resolve]
    maps a host code address to the region whose [base] it is (the inline
    IBTC stores region base addresses).  [fuel] bounds [host_retired]
    approximately (checked at region transfers). *)
