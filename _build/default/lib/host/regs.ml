open Darco_guest

let zero = 0
let guest r = 1 + Isa.reg_index r
let flags = 9
let scratch0 = 10
let scratch1 = 11
let scratch2 = 12
let spill_scratch0 = 13
let spill_scratch1 = 14
let alloc_first = 16
let alloc_last = 55
let guest_f f = Isa.freg_index f
let falloc_first = 8
let falloc_last = 27
let fscratch0 = 28
let fscratch1 = 29
