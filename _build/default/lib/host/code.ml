open Darco_guest

type reg = int
type freg = int

type binop =
  | Add | Sub | Mul | Mulhu | Mulhs
  | And | Or | Xor
  | Shl | Shr | Sar
  | Slt | Sltu | Seq | Sne

type cmp = Beq | Bne | Blt | Bge | Bltu | Bgeu
type fbinop = Fadd | Fsub | Fmul | Fdiv
type funop = Fsqrt | Fabs | Fneg
type rt_fn = Rt_sin | Rt_cos | Rt_divu | Rt_divs

(* The service-routine instruction counts stand in for the paper's software
   emulation of complex guest instructions: transcendentals dominate (the
   Physicsbench observation), division is cheaper. *)
let rt_cost = function Rt_sin -> 46 | Rt_cos -> 46 | Rt_divu -> 22 | Rt_divs -> 24

type flkind =
  | Fl_add | Fl_adc | Fl_sub | Fl_sbb
  | Fl_logic
  | Fl_shl | Fl_shr | Fl_sar | Fl_rol | Fl_ror
  | Fl_inc | Fl_dec | Fl_neg
  | Fl_mulu | Fl_muls

type exit_kind =
  | Exit_direct of int
  | Exit_indirect of reg
  | Exit_syscall of int
  | Exit_interp of int
  | Exit_promote of int
  | Exit_halt

type region = {
  id : int;
  entry_pc : int;
  mode : [ `Bb | `Super ];
  mutable base : int;
  mutable code : insn array;
  mutable incoming : exit_info list;
  mutable invalidated : bool;
}

and exit_info = {
  exit_id : int;
  kind : exit_kind;
  guest_retired : int;
  mutable chain : region option;
  prefer_bb : bool;
}

and insn =
  | Nop
  | Li of reg * int
  | Bin of binop * reg * reg * reg
  | Bini of binop * reg * reg * int
  | Load of Isa.width * bool * reg * reg * int
  | Sload of Isa.width * bool * reg * reg * int
  | Store of Isa.width * reg * reg * int
  | Fli of freg * float
  | Fmov of freg * freg
  | Fbin of fbinop * freg * freg * freg
  | Fun of funop * freg * freg
  | Fload of freg * reg * int
  | Fstore of freg * reg * int
  | Fcmp of reg * freg * freg
  | Cvtif of freg * reg
  | Cvtfi of reg * freg
  | Mkfl of flkind * reg * reg * reg * reg
  | Isel of reg * reg * reg * reg
  | Callrt_f of rt_fn * freg * freg
  | Callrt_div of { signed : bool; q : reg; r : reg; hi : reg; lo : reg; d : reg }
  | B of cmp * reg * reg * int
  | J of int
  | Jr of reg * reg
  | Assert of cmp * reg * reg
  | Chk
  | Commit of int
  | Exit of exit_info

let exit_of = function Exit e -> Some e | _ -> None
let host_pc region idx = region.base + (4 * idx)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Mulhu -> "mulhu" | Mulhs -> "mulhs"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar"
  | Slt -> "slt" | Sltu -> "sltu" | Seq -> "seq" | Sne -> "sne"

let cmp_name = function
  | Beq -> "eq" | Bne -> "ne" | Blt -> "lt" | Bge -> "ge" | Bltu -> "ltu" | Bgeu -> "geu"

let fbinop_name = function Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
let funop_name = function Fsqrt -> "fsqrt" | Fabs -> "fabs" | Fneg -> "fneg"
let rt_name = function Rt_sin -> "sin" | Rt_cos -> "cos" | Rt_divu -> "divu" | Rt_divs -> "divs"
let width_tag (w : Isa.width) = match w with W8 -> "b" | W16 -> "h" | W32 -> "w"

let flkind_name = function
  | Fl_add -> "add" | Fl_adc -> "adc" | Fl_sub -> "sub" | Fl_sbb -> "sbb"
  | Fl_logic -> "logic"
  | Fl_shl -> "shl" | Fl_shr -> "shr" | Fl_sar -> "sar" | Fl_rol -> "rol"
  | Fl_ror -> "ror"
  | Fl_inc -> "inc" | Fl_dec -> "dec" | Fl_neg -> "neg"
  | Fl_mulu -> "mulu" | Fl_muls -> "muls"

let exit_kind_to_string = function
  | Exit_direct pc -> Printf.sprintf "direct:0x%x" pc
  | Exit_indirect r -> Printf.sprintf "indirect:r%d" r
  | Exit_syscall pc -> Printf.sprintf "syscall:0x%x" pc
  | Exit_interp pc -> Printf.sprintf "interp:0x%x" pc
  | Exit_promote pc -> Printf.sprintf "promote:0x%x" pc
  | Exit_halt -> "halt"

let insn_to_string = function
  | Nop -> "nop"
  | Li (rd, v) -> Printf.sprintf "li r%d, 0x%x" rd v
  | Bin (op, rd, ra, rb) -> Printf.sprintf "%s r%d, r%d, r%d" (binop_name op) rd ra rb
  | Bini (op, rd, ra, v) -> Printf.sprintf "%si r%d, r%d, %d" (binop_name op) rd ra v
  | Load (w, s, rd, ra, d) ->
    Printf.sprintf "l%s%s r%d, [r%d%+d]" (width_tag w) (if s then "s" else "") rd ra d
  | Sload (w, s, rd, ra, d) ->
    Printf.sprintf "l%s%s.spec r%d, [r%d%+d]" (width_tag w) (if s then "s" else "") rd ra d
  | Store (w, rv, ra, d) -> Printf.sprintf "s%s r%d, [r%d%+d]" (width_tag w) rv ra d
  | Fli (fd, v) -> Printf.sprintf "fli f%d, %g" fd v
  | Fmov (fd, fs) -> Printf.sprintf "fmov f%d, f%d" fd fs
  | Fbin (op, fd, fa, fb) -> Printf.sprintf "%s f%d, f%d, f%d" (fbinop_name op) fd fa fb
  | Fun (op, fd, fa) -> Printf.sprintf "%s f%d, f%d" (funop_name op) fd fa
  | Fload (fd, ra, d) -> Printf.sprintf "lfd f%d, [r%d%+d]" fd ra d
  | Fstore (fv, ra, d) -> Printf.sprintf "sfd f%d, [r%d%+d]" fv ra d
  | Fcmp (rd, fa, fb) -> Printf.sprintf "fcmp r%d, f%d, f%d" rd fa fb
  | Cvtif (fd, ra) -> Printf.sprintf "cvtif f%d, r%d" fd ra
  | Cvtfi (rd, fa) -> Printf.sprintf "cvtfi r%d, f%d" rd fa
  | Mkfl (k, rd, a, b, c) ->
    Printf.sprintf "mkfl.%s r%d, r%d, r%d, r%d" (flkind_name k) rd a b c
  | Isel (rd, rc, ra, rb) -> Printf.sprintf "isel r%d, r%d ? r%d : r%d" rd rc ra rb
  | Callrt_f (fn, fd, fs) -> Printf.sprintf "call.%s f%d, f%d" (rt_name fn) fd fs
  | Callrt_div { signed; q; r; hi; lo; d } ->
    Printf.sprintf "call.div%s r%d, r%d, (r%d:r%d / r%d)" (if signed then "s" else "u") q r
      hi lo d
  | B (c, ra, rb, t) -> Printf.sprintf "b%s r%d, r%d, @%d" (cmp_name c) ra rb t
  | J t -> Printf.sprintf "j @%d" t
  | Jr (ra, rg) -> Printf.sprintf "jr r%d (guest r%d)" ra rg
  | Assert (c, ra, rb) -> Printf.sprintf "assert.%s r%d, r%d" (cmp_name c) ra rb
  | Chk -> "chk"
  | Commit n -> Printf.sprintf "commit (retire %d)" n
  | Exit e ->
    Printf.sprintf "exit %s (retired %d)%s" (exit_kind_to_string e.kind) e.guest_retired
      (match e.chain with None -> "" | Some r -> Printf.sprintf " -> region %d" r.id)

let pp_insn ppf i = Format.pp_print_string ppf (insn_to_string i)

let pp_region ppf r =
  Format.fprintf ppf "@[<v>region %d (%s) guest 0x%x, base 0x%x%s@ " r.id
    (match r.mode with `Bb -> "bb" | `Super -> "super")
    r.entry_pc r.base
    (if r.invalidated then " INVALIDATED" else "");
  Array.iteri (fun i insn -> Format.fprintf ppf "  @%d: %s@ " i (insn_to_string insn)) r.code;
  Format.fprintf ppf "@]"

(* r0 is hard-wired zero: it is never a real definition and reading it
   carries no dependence. *)
let strip = List.filter (fun r -> r <> 0)

let defs = function
  | Li (rd, _) | Bin (_, rd, _, _) | Bini (_, rd, _, _)
  | Load (_, _, rd, _, _) | Sload (_, _, rd, _, _)
  | Fcmp (rd, _, _) | Cvtfi (rd, _) | Mkfl (_, rd, _, _, _) | Isel (rd, _, _, _) ->
    strip [ rd ]
  | Callrt_div { q; r; _ } -> strip [ q; r ]
  | Nop | Store _ | Fli _ | Fmov _ | Fbin _ | Fun _ | Fload _ | Fstore _ | Cvtif _
  | Callrt_f _ | B _ | J _ | Jr _ | Assert _ | Chk | Commit _ | Exit _ ->
    []

let uses = function
  | Bin (_, _, ra, rb) | B (_, ra, rb, _) | Assert (_, ra, rb) -> strip [ ra; rb ]
  | Mkfl (_, _, ra, rb, rc) -> strip [ ra; rb; rc ]
  | Isel (_, rc, ra, rb) -> strip [ rc; ra; rb ]
  | Bini (_, _, ra, _) | Load (_, _, _, ra, _) | Sload (_, _, _, ra, _)
  | Fload (_, ra, _) | Cvtif (_, ra) ->
    strip [ ra ]
  | Store (_, rv, ra, _) -> strip [ rv; ra ]
  | Fstore (_, ra, _) -> strip [ ra ]
  | Jr (ra, rg) -> strip [ ra; rg ]
  | Callrt_div { hi; lo; d; _ } -> strip [ hi; lo; d ]
  | Exit e -> (match e.kind with Exit_indirect r -> strip [ r ] | _ -> [])
  | Nop | Li _ | Fli _ | Fmov _ | Fbin _ | Fun _ | Fcmp _ | Cvtfi _ | Callrt_f _ | J _
  | Chk | Commit _ ->
    []

let fdefs = function
  | Fli (fd, _) | Fmov (fd, _) | Fbin (_, fd, _, _) | Fun (_, fd, _) | Fload (fd, _, _)
  | Cvtif (fd, _) | Callrt_f (_, fd, _) ->
    [ fd ]
  | Nop | Li _ | Bin _ | Bini _ | Load _ | Sload _ | Store _ | Fstore _ | Fcmp _
  | Cvtfi _ | Mkfl _ | Isel _ | Callrt_div _ | B _ | J _ | Jr _ | Assert _ | Chk
  | Commit _ | Exit _ ->
    []

let fuses = function
  | Fmov (_, fs) | Fun (_, _, fs) | Cvtfi (_, fs) | Callrt_f (_, _, fs) -> [ fs ]
  | Fbin (_, _, fa, fb) | Fcmp (_, fa, fb) -> [ fa; fb ]
  | Fstore (fv, _, _) -> [ fv ]
  | Nop | Li _ | Bin _ | Bini _ | Load _ | Sload _ | Store _ | Fli _ | Fload _ | Cvtif _
  | Mkfl _ | Isel _ | Callrt_div _ | B _ | J _ | Jr _ | Assert _ | Chk | Commit _
  | Exit _ ->
    []
