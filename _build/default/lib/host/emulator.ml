open Darco_guest
open Code

type retire_info = {
  host_pc : int;
  insn : Code.insn;
  mem_access : (int * [ `Load | `Store ]) option;
  branch : (bool * int) option;
}

type stop =
  | Stop_exit of Code.exit_info
  | Stop_indirect_miss of int
  | Stop_rollback of [ `Assert | `Alias ] * Code.region
  | Stop_fault of int * Code.region
  | Stop_fuel of int

type result = {
  stop : stop;
  host_retired : int;
  host_bb : int;
  host_super : int;
  guest_bb : int;
  guest_super : int;
  chains_followed : int;
  wasted_host : int;
}

let cmp_holds (c : Code.cmp) a b =
  match c with
  | Beq -> a = b
  | Bne -> a <> b
  | Blt -> Semantics.signed a < Semantics.signed b
  | Bge -> Semantics.signed a >= Semantics.signed b
  | Bltu -> a < b
  | Bgeu -> a >= b

let eval_binop (op : Code.binop) a b =
  match op with
  | Add -> Semantics.mask32 (a + b)
  | Sub -> Semantics.mask32 (a - b)
  | Mul ->
    let lo, _, _ = Semantics.mul_u a b in
    lo
  | Mulhu ->
    let _, hi, _ = Semantics.mul_u a b in
    hi
  | Mulhs ->
    let _, hi, _ = Semantics.mul_s a b in
    hi
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> Semantics.mask32 (a lsl (b land 31))
  | Shr -> a lsr (b land 31)
  | Sar -> Semantics.mask32 (Semantics.signed a asr (b land 31))
  | Slt -> if Semantics.signed a < Semantics.signed b then 1 else 0
  | Sltu -> if a < b then 1 else 0
  | Seq -> if a = b then 1 else 0
  | Sne -> if a <> b then 1 else 0

exception Assert_failed

let run m ~resolve ?(fuel = max_int) ?on_retire entry_region =
  let host_retired = ref 0 in
  let host_bb = ref 0 in
  let host_super = ref 0 in
  let guest_bb = ref 0 in
  let guest_super = ref 0 in
  let chains = ref 0 in
  let wasted = ref 0 in
  let since_commit = ref 0 in
  let region = ref entry_region in
  let idx = ref 0 in
  let steps_here = ref 0 in
  let retire ?mem_access ?branch insn weight =
    host_retired := !host_retired + weight;
    (match !region.mode with
    | `Bb -> host_bb := !host_bb + weight
    | `Super -> host_super := !host_super + weight);
    since_commit := !since_commit + weight;
    match on_retire with
    | None -> ()
    | Some f -> f { host_pc = host_pc !region !idx; insn; mem_access; branch }
  in
  let transferred = ref false in
  let enter r =
    chains := !chains + 1;
    region := r;
    idx := 0;
    steps_here := 0;
    transferred := true
  in
  let finish stop =
    {
      stop;
      host_retired = !host_retired;
      host_bb = !host_bb;
      host_super = !host_super;
      guest_bb = !guest_bb;
      guest_super = !guest_super;
      chains_followed = !chains;
      wasted_host = !wasted;
    }
  in
  let rec exec () =
    let r = !region in
    let code = r.code in
    incr steps_here;
    (* Regions are acyclic by construction; a runaway count means a
       malformed region rather than guest behaviour. *)
    assert (!steps_here <= (100 * Array.length code) + 10_000);
    let i = !idx in
    let insn = code.(i) in
    let next = ref (i + 1) in
    let stop = ref None in
    transferred := false;
    (match insn with
    | Nop -> retire insn 1
    | Li (rd, v) ->
      Machine.set m rd v;
      retire insn 1
    | Bin (op, rd, ra, rb) ->
      Machine.set m rd (eval_binop op (Machine.get m ra) (Machine.get m rb));
      retire insn 1
    | Bini (op, rd, ra, imm) ->
      Machine.set m rd (eval_binop op (Machine.get m ra) (Semantics.mask32 imm));
      retire insn 1
    | Load (w, signed, rd, ra, d) ->
      let addr = Semantics.mask32 (Machine.get m ra + d) in
      Machine.set m rd (Machine.load m w ~signed addr);
      retire ~mem_access:(addr, `Load) insn 1
    | Sload (w, signed, rd, ra, d) ->
      let addr = Semantics.mask32 (Machine.get m ra + d) in
      Machine.set m rd (Machine.load_spec m w ~signed addr);
      retire ~mem_access:(addr, `Load) insn 1
    | Store (w, rv, ra, d) ->
      let addr = Semantics.mask32 (Machine.get m ra + d) in
      Machine.store m w addr (Machine.get m rv);
      retire ~mem_access:(addr, `Store) insn 1
    | Fli (fd, v) ->
      m.f.(fd) <- v;
      retire insn 1
    | Fmov (fd, fs) ->
      m.f.(fd) <- m.f.(fs);
      retire insn 1
    | Fbin (op, fd, fa, fb) ->
      let g : Isa.fp_bin =
        match op with Fadd -> Fadd | Fsub -> Fsub | Fmul -> Fmul | Fdiv -> Fdiv
      in
      m.f.(fd) <- Semantics.fp_bin g m.f.(fa) m.f.(fb);
      retire insn 1
    | Fun (op, fd, fa) ->
      let g : Isa.fp_un = match op with Fsqrt -> Fsqrt | Fabs -> Fabs | Fneg -> Fchs in
      m.f.(fd) <- Semantics.fp_un g m.f.(fa);
      retire insn 1
    | Fload (fd, ra, d) ->
      let addr = Semantics.mask32 (Machine.get m ra + d) in
      m.f.(fd) <- Machine.load_f64 m addr;
      retire ~mem_access:(addr, `Load) insn 1
    | Fstore (fv, ra, d) ->
      let addr = Semantics.mask32 (Machine.get m ra + d) in
      Machine.store_f64 m addr m.f.(fv);
      retire ~mem_access:(addr, `Store) insn 1
    | Fcmp (rd, fa, fb) ->
      Machine.set m rd (Semantics.fcmp_flags m.f.(fa) m.f.(fb));
      retire insn 1
    | Cvtif (fd, ra) ->
      m.f.(fd) <- Semantics.i2f (Machine.get m ra);
      retire insn 1
    | Cvtfi (rd, fa) ->
      Machine.set m rd (Semantics.f2i m.f.(fa));
      retire insn 1
    | Mkfl (k, rd, ra, rb, rc) ->
      Machine.set m rd
        (Flagcalc.compute k ~a:(Machine.get m ra) ~b:(Machine.get m rb)
           ~c:(Machine.get m rc));
      retire insn 1
    | Isel (rd, rc, ra, rb) ->
      Machine.set m rd
        (if Machine.get m rc <> 0 then Machine.get m ra else Machine.get m rb);
      retire insn 1
    | Callrt_f (fn, fd, fs) ->
      let g : Isa.fp_un = match fn with Rt_sin -> Fsin | Rt_cos -> Fcos | _ -> assert false in
      m.f.(fd) <- Semantics.fp_un g m.f.(fs);
      retire insn (rt_cost fn)
    | Callrt_div { signed; q; r = rr; hi; lo; d } ->
      let hi_v = Machine.get m hi and lo_v = Machine.get m lo and d_v = Machine.get m d in
      let fn = if signed then Rt_divs else Rt_divu in
      let qv, rv =
        if signed then Semantics.div_s ~hi:hi_v ~lo:lo_v d_v
        else Semantics.div_u ~hi:hi_v ~lo:lo_v d_v
      in
      Machine.set m q qv;
      Machine.set m rr rv;
      retire insn (rt_cost fn)
    | B (c, ra, rb, t) ->
      let taken = cmp_holds c (Machine.get m ra) (Machine.get m rb) in
      retire ~branch:(taken, host_pc r t) insn 1;
      if taken then next := t
    | J t ->
      retire ~branch:(true, host_pc r t) insn 1;
      next := t
    | Jr (ra, rg) -> begin
      let target = Machine.get m ra in
      retire ~branch:(true, target) insn 1;
      match resolve target with
      | Some r' when not r'.invalidated ->
        if !host_retired >= fuel then stop := Some (Stop_fuel r'.entry_pc) else enter r'
      | Some _ | None -> stop := Some (Stop_indirect_miss (Machine.get m rg))
    end
    | Assert (c, ra, rb) ->
      retire insn 1;
      if not (cmp_holds c (Machine.get m ra) (Machine.get m rb)) then raise Assert_failed
    | Chk ->
      Machine.checkpoint m;
      since_commit := 0;
      retire insn 1
    | Commit n ->
      Machine.commit m;
      (match r.mode with
      | `Bb -> guest_bb := !guest_bb + n
      | `Super -> guest_super := !guest_super + n);
      since_commit := 0;
      retire insn 1
    | Exit e -> begin
      let target = match e.chain with Some r' -> r'.base | None -> 0xE000_0000 in
      retire ~branch:(true, target) insn 1;
      match e.chain with
      | Some r' when not r'.invalidated ->
        if !host_retired >= fuel then stop := Some (Stop_fuel r'.entry_pc) else enter r'
      | Some _ | None -> stop := Some (Stop_exit e)
    end);
    match !stop with
    | Some s -> finish s
    | None ->
      if not !transferred then idx := !next;
      exec ()
  in
  try exec () with
  | Assert_failed ->
    wasted := !wasted + !since_commit;
    Machine.rollback m;
    finish (Stop_rollback (`Assert, !region))
  | Machine.Alias_violation ->
    wasted := !wasted + !since_commit;
    Machine.rollback m;
    finish (Stop_rollback (`Alias, !region))
  | Memory.Page_fault p ->
    wasted := !wasted + !since_commit;
    Machine.rollback m;
    finish (Stop_fault (p, !region))
