(** Semantics of the [Mkfl] guest-flag-assist instruction.

    Each kind computes the packed guest flags that the corresponding guest
    ALU operation would produce, by delegating to the shared
    {!Darco_guest.Semantics}.  (a, b, c) operand meanings:
    - add/adc/sub/sbb/mulu/muls: the two ALU operands; c = carry-in (0/1)
    - logic:                     a = the result value
    - shifts/rotates:            a = value, b = count, c = incoming flags
                                 (returned unchanged for a zero count)
    - inc/dec:                   a = value, c = incoming flags (CF preserved)
    - neg:                       a = value *)

val compute : Code.flkind -> a:int -> b:int -> c:int -> int
