(** Single-step guest execution, shared by the authoritative reference
    interpreter (the x86 component) and the TOL interpreter (IM).

    Page-fault safety: an instruction either completes fully or raises
    {!Memory.Page_fault} with no architectural state modified, so a faulting
    instruction can be transparently retried after the controller services
    the data request.  REP string instructions fault at iteration
    granularity, which is architecturally consistent (ESI/EDI/ECX always
    describe the remaining work, as on real x86). *)

type control =
  | Next
  | Cond_branch of { taken : bool; target : int }
      (** [target] is the taken-path target. *)
  | Uncond of int        (** direct jmp or call *)
  | Indirect of int      (** resolved target of ret / indirect jmp / call *)
  | Trap_syscall         (** EIP left pointing at the syscall instruction *)
  | Trap_halt

type result = { insn : Isa.insn; len : int; control : control }

type icache
(** Decode cache (guest address -> decoded instruction).  Self-modifying
    guest code is unsupported across the infrastructure. *)

val icache_create : unit -> icache
val fetch : icache -> Memory.t -> int -> Isa.insn * int
(** Decode (with caching) the instruction at the given guest address. *)

val step : icache -> Cpu.t -> Memory.t -> result
(** Execute one instruction at [cpu.eip], updating [cpu] and memory and
    advancing EIP (except for traps, which leave EIP at the trapping
    instruction; the caller advances by [len] after servicing). *)

val is_interp_only : Isa.insn -> bool
(** Instructions the TOL never includes in translations and always defers to
    the interpreter (the paper's "corner cases moved to the software
    layer"): REP-prefixed string instructions. *)
