let cf_bit = 1
let zf_bit = 2
let sf_bit = 4
let of_bit = 8
let mask = 15

let make ~cf ~zf ~sf ~of_ =
  (if cf then cf_bit else 0)
  lor (if zf then zf_bit else 0)
  lor (if sf then sf_bit else 0)
  lor if of_ then of_bit else 0

let cf f = f land cf_bit <> 0
let zf f = f land zf_bit <> 0
let sf f = f land sf_bit <> 0
let of_ f = f land of_bit <> 0

let eval_cond (c : Isa.cond) f =
  match c with
  | E -> zf f
  | NE -> not (zf f)
  | L -> sf f <> of_ f
  | GE -> sf f = of_ f
  | LE -> zf f || sf f <> of_ f
  | G -> (not (zf f)) && sf f = of_ f
  | B -> cf f
  | AE -> not (cf f)
  | BE -> cf f || zf f
  | A -> (not (cf f)) && not (zf f)
  | S -> sf f
  | NS -> not (sf f)
  | O -> of_ f
  | NO -> not (of_ f)

let to_string f =
  let parts =
    List.filter_map
      (fun (b, n) -> if b then Some n else None)
      [ (cf f, "CF"); (zf f, "ZF"); (sf f, "SF"); (of_ f, "OF") ]
  in
  "[" ^ String.concat " " parts ^ "]"
