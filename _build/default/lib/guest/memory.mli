(** Byte-addressable paged memory (4 KiB pages), little-endian.

    Two allocation policies mirror the two DARCO components:
    - the authoritative x86 component allocates zeroed pages on demand
      ([`Auto_zero]), as a real OS would;
    - the co-designed component raises {!Page_fault} on the first touch of a
      page ([`Fault]); the controller services the fault by copying the page
      from the authoritative memory (the paper's "data request"
      synchronization event). *)

type t

exception Page_fault of int
(** Carries the faulting page index. *)

val page_size : int
val create : [ `Auto_zero | `Fault ] -> t
val page_index : int -> int
val page_base : int -> int

val read : t -> Isa.width -> int -> int
(** Little-endian read of 1/2/4 bytes, zero-extended to a canonical 32-bit
    value.  May straddle a page boundary. *)

val write : t -> Isa.width -> int -> int -> unit

val read8 : t -> int -> int
val read32 : t -> int -> int
val write8 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit

val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit

val has_page : t -> int -> bool
val get_page : t -> int -> bytes
(** Raw page contents; faults/allocates according to policy. *)

val install_page : t -> int -> bytes -> unit
(** [install_page t idx data] copies [data] (page-sized) in as page [idx]. *)

val touched_pages : t -> int list
(** Sorted indices of all materialized pages. *)

val blit_bytes : t -> int -> bytes -> unit
(** [blit_bytes t addr b] writes the whole of [b] starting at [addr]
    (loader use). *)

val equal_page : t -> t -> int -> bool
(** Compare one page across two memories; an absent page equals a zero
    page. *)
