(** Gx86: the guest ISA.

    A 32-bit x86-flavoured CISC instruction set.  It keeps every property a
    co-designed translation layer has to contend with — two-operand
    destructive ALU forms with condition-code side effects, memory operands
    with base+index*scale+displacement addressing, variable-length binary
    encoding, push/pop and call/ret stack discipline, REP-prefixed string
    instructions, and x87-style floating point including transcendentals
    that the host must emulate in software.

    Divergences from real x86 (documented in DESIGN.md): flat 8-register FP
    file instead of the x87 stack, no parity/aux flags, no segmentation, no
    16-bit operand-size prefixes (8/16-bit accesses exist as widened
    loads/stores), string direction always ascending. *)

(** The eight general-purpose 32-bit registers. *)
type reg = EAX | ECX | EDX | EBX | ESP | EBP | ESI | EDI

(** The eight 64-bit floating-point registers. *)
type freg = F0 | F1 | F2 | F3 | F4 | F5 | F6 | F7

type scale = S1 | S2 | S4 | S8

(** A memory operand: [base + index*scale + disp]. *)
type mem = { base : reg option; index : (reg * scale) option; disp : int }

type operand = Reg of reg | Imm of int | Mem of mem

type width = W8 | W16 | W32

(** Two-operand ALU instructions; all set CF/ZF/SF/OF. *)
type alu_op = Add | Sub | Adc | Sbb | And | Or | Xor

type shift_op = Shl | Shr | Sar | Rol | Ror

type cond =
  | E | NE            (* ZF *)
  | L | LE | G | GE   (* signed *)
  | B | BE | A | AE   (* unsigned *)
  | S | NS            (* SF *)
  | O | NO            (* OF *)

type str_kind = Movs | Stos | Lods | Scas | Cmps

type rep = NoRep | Rep | Repe | Repne

type fp_bin = Fadd | Fsub | Fmul | Fdiv

(** [Fsin]/[Fcos] have no host-instruction equivalent and are emulated in
    software by the translation layer, as in the paper's Physicsbench
    analysis. *)
type fp_un = Fsqrt | Fsin | Fcos | Fabs | Fchs

type insn =
  | Nop
  | Mov of operand * operand               (** dst, src; not mem,mem *)
  | Movx of width * bool * reg * mem       (** movzx/movsx: width, signed *)
  | Movw of width * mem * reg              (** narrow store of low bits *)
  | Lea of reg * mem
  | Alu of alu_op * operand * operand      (** dst, src; not mem,mem *)
  | Cmp of operand * operand
  | Test of operand * operand
  | Inc of operand
  | Dec of operand
  | Neg of operand
  | Not of operand                         (** does not touch flags *)
  | Shift of shift_op * operand * operand  (** dst, count (Imm or Reg ECX) *)
  | Mul of operand                         (** EDX:EAX <- EAX * src, unsigned *)
  | Imul of operand                        (** EDX:EAX <- EAX * src, signed *)
  | Imul2 of reg * operand                 (** truncating two-operand form *)
  | Div of operand                         (** EAX,EDX <- EDX:EAX /,% src *)
  | Idiv of operand
  | Push of operand
  | Pop of reg
  | Jmp of int                             (** absolute guest address *)
  | JmpInd of operand
  | Jcc of cond * int
  | Call of int
  | CallInd of operand
  | Ret
  | Cmov of cond * reg * operand
  | Setcc of cond * reg
  | Str of str_kind * width * rep
  | Fld of freg * mem                      (** load f64 *)
  | Fst of mem * freg                      (** store f64 *)
  | Fmov of freg * freg
  | Fldi of freg * float
  | Fbin of fp_bin * freg * freg           (** dst <- dst op src *)
  | Fun_ of fp_un * freg
  | Fcmp of freg * freg                    (** sets ZF/CF as FCOMI *)
  | Fild of freg * reg                     (** int -> float *)
  | Fist of reg * freg                     (** float -> int, truncating *)
  | Syscall                                (** EAX = number; EBX/ECX/EDX args *)
  | Halt

val all_regs : reg array
val all_fregs : freg array
val all_conds : cond array

val reg_index : reg -> int
val reg_of_index : int -> reg
val freg_index : freg -> int
val freg_of_index : int -> freg
val scale_factor : scale -> int
val width_bytes : width -> int

val is_control : insn -> bool
(** True for instructions that terminate a basic block (branches, calls,
    returns, syscall, halt). *)

val negate_cond : cond -> cond

val pp_reg : Format.formatter -> reg -> unit
val pp_insn : Format.formatter -> insn -> unit
val to_string : insn -> string
