(** Pure value/flag semantics of Gx86, shared verbatim by the authoritative
    reference interpreter, the TOL interpreter, the IR evaluator and the
    host runtime services.  Sharing one definition is what makes the
    differential-validation machinery meaningful: any divergence between the
    components is a translation/optimization bug, never a semantics-fork
    artefact.

    32-bit values are represented as OCaml [int]s canonically in
    [\[0, 2{^32})]. *)

val mask32 : int -> int
val signed : int -> int
(** Reinterpret a canonical 32-bit value as a signed integer. *)

val truncate_width : Isa.width -> int -> int
val sign_extend : Isa.width -> int -> int
(** [sign_extend w v] sign-extends the low [w] bits of [v] to 32 bits
    (canonical representation). *)

val alu : Isa.alu_op -> cf_in:bool -> int -> int -> int * int
(** [alu op ~cf_in a b] returns [(result, flags)]. [cf_in] feeds ADC/SBB. *)

val inc : int -> flags:int -> int * int
val dec : int -> flags:int -> int * int
(** INC/DEC: as add/sub 1 but CF is preserved from [flags]. *)

val neg : int -> int * int
val not32 : int -> int

val shift : Isa.shift_op -> int -> count:int -> flags:int -> int * int
(** x86-style: count is masked to 5 bits; zero count leaves flags untouched.
    Simplifications vs. real x86 (deterministic, shared by all paths):
    rotates also set ZF/SF from the result; OF is 0 for SAR/ROR. *)

val mul_u : int -> int -> int * int * int
(** [(lo, hi, flags)] of the unsigned 64-bit product; CF=OF = hi <> 0. *)

val mul_s : int -> int -> int * int * int
(** Signed; CF=OF unless the product fits in 32 signed bits. *)

val imul2 : int -> int -> int * int
(** Truncating signed multiply, [(result, flags)]. *)

val div_u : hi:int -> lo:int -> int -> int * int
(** [(quotient, remainder)] of the unsigned 64/32 division, quotient
    truncated to 32 bits.  Division by zero is defined (not trapping):
    quotient [0xFFFFFFFF], remainder [lo].  Flags are unaffected by
    division. *)

val div_s : hi:int -> lo:int -> int -> int * int
(** Signed counterpart with the same deterministic conventions. *)

val fp_bin : Isa.fp_bin -> float -> float -> float
val fp_un : Isa.fp_un -> float -> float
val fcmp_flags : float -> float -> int
(** FCOMI-style: below sets CF, equal sets ZF, unordered sets CF+ZF. *)

val f2i : float -> int
(** Truncate toward zero; NaN and out-of-range map to [0x80000000] (the x86
    "integer indefinite"). *)

val i2f : int -> float
(** Signed interpretation. *)
