(** The authoritative guest interpreter — the execution core of the paper's
    "x86 component".  It runs the unmodified guest binary, owns the
    authoritative architectural and memory state, executes system calls, and
    can be asked to advance to an exact retired-instruction count so the
    controller can synchronize it with the co-designed component. *)

type t = {
  cpu : Cpu.t;
  mem : Memory.t;
  sys : Syscall.t;
  icache : Step.icache;
  mutable retired : int;         (** retired guest instructions *)
  mutable exit_code : int option;
  mutable last_effects : Syscall.effect list;
}

val boot : ?input:string -> seed:int -> Program.t -> t

val run_until : t -> int -> unit
(** [run_until t n] advances until exactly [n] guest instructions have
    retired (or the guest halts first).  System calls encountered on the way
    are executed in place; their effects are also stored in
    [last_effects]. *)

val run_to_halt : ?fuel:int -> t -> [ `Halted | `Fuel ]
(** Run the whole program standalone (plain emulation, no co-designed
    layer).  [fuel] bounds the retired-instruction count. *)

val service_syscall : t -> Syscall.effect list
(** The next instruction must be a syscall at the current EIP: execute it,
    advance past it, and return the effects for replication. *)

val output : t -> string
