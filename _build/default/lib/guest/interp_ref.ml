type t = {
  cpu : Cpu.t;
  mem : Memory.t;
  sys : Syscall.t;
  icache : Step.icache;
  mutable retired : int;
  mutable exit_code : int option;
  mutable last_effects : Syscall.effect list;
}

let boot ?input ~seed program =
  let cpu, mem = Loader.boot program in
  let sys = Syscall.create ?input ~seed ~brk:(Loader.initial_brk program) () in
  {
    cpu;
    mem;
    sys;
    icache = Step.icache_create ();
    retired = 0;
    exit_code = None;
    last_effects = [];
  }

let service_syscall t =
  let insn, len = Step.fetch t.icache t.mem t.cpu.Cpu.eip in
  assert (insn = Isa.Syscall);
  let effects = Syscall.execute t.sys t.cpu t.mem in
  t.last_effects <- effects;
  List.iter (function Syscall.Exit c -> t.exit_code <- Some c | _ -> ()) effects;
  t.cpu.eip <- Semantics.mask32 (t.cpu.eip + len);
  t.retired <- t.retired + 1;
  effects

let run_until t n =
  while t.retired < n && not t.cpu.Cpu.halted do
    let r = Step.step t.icache t.cpu t.mem in
    match r.control with
    | Trap_syscall -> ignore (service_syscall t)
    | Trap_halt -> t.retired <- t.retired + 1
    | Next | Cond_branch _ | Uncond _ | Indirect _ -> t.retired <- t.retired + 1
  done

let run_to_halt ?(fuel = max_int) t =
  while not t.cpu.Cpu.halted && t.retired < fuel do
    run_until t (min fuel (t.retired + 65536))
  done;
  if t.cpu.Cpu.halted then `Halted else `Fuel

let output t = Syscall.output t.sys
