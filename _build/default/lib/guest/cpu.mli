(** Guest architectural register state (everything except memory). *)

type t = {
  regs : int array;          (** 8 GPRs, canonical 32-bit values *)
  fregs : float array;       (** 8 FP registers *)
  mutable flags : int;       (** packed per {!Flags} *)
  mutable eip : int;
  mutable halted : bool;
}

val create : unit -> t
val get : t -> Isa.reg -> int
val set : t -> Isa.reg -> int -> unit
(** [set] canonicalizes to 32 bits. *)

val getf : t -> Isa.freg -> float
val setf : t -> Isa.freg -> float -> unit
val copy : t -> t
val assign : t -> t -> unit
(** [assign dst src] overwrites [dst] in place. *)

val equal : t -> t -> bool
(** Architectural equality; FP registers are compared bit-for-bit. *)

val diff : t -> t -> string list
(** Human-readable description of the differing state elements (for the
    debug toolchain). *)

val pp : Format.formatter -> t -> unit
