(** Variable-length binary encoding of Gx86 instructions (1 to ~14 bytes).

    Guest programs live in guest memory as encoded bytes; every interpreter
    fetch goes through {!decode}, exactly as in the original infrastructure
    where the software layer decodes raw x86.  Branch targets are encoded
    PC-relative, so [encode]/[decode] take the instruction's address.

    Immediates are canonicalized to unsigned 32-bit; memory displacements are
    encoded in 1 or 4 bytes depending on range (a realistic source of
    variable instruction length). *)

exception Bad_encoding of int
(** Raised by {!decode} on an invalid byte sequence, with the offending
    address. *)

val encode : pc:int -> Isa.insn -> Bytes.t
val length : Isa.insn -> int
(** Encoded length; independent of [pc] and of label resolution, which the
    assembler relies on for layout. *)

val decode : fetch:(int -> int) -> pc:int -> Isa.insn * int
(** [decode ~fetch ~pc] reads bytes via [fetch] starting at [pc] and returns
    the instruction and its encoded length. *)

val canonical : Isa.insn -> Isa.insn
(** The instruction as it would round-trip through encode/decode (immediates
    masked to 32 bits, float immediates unchanged). *)
