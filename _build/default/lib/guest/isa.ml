type reg = EAX | ECX | EDX | EBX | ESP | EBP | ESI | EDI
type freg = F0 | F1 | F2 | F3 | F4 | F5 | F6 | F7
type scale = S1 | S2 | S4 | S8
type mem = { base : reg option; index : (reg * scale) option; disp : int }
type operand = Reg of reg | Imm of int | Mem of mem
type width = W8 | W16 | W32
type alu_op = Add | Sub | Adc | Sbb | And | Or | Xor
type shift_op = Shl | Shr | Sar | Rol | Ror

type cond =
  | E | NE
  | L | LE | G | GE
  | B | BE | A | AE
  | S | NS
  | O | NO

type str_kind = Movs | Stos | Lods | Scas | Cmps
type rep = NoRep | Rep | Repe | Repne
type fp_bin = Fadd | Fsub | Fmul | Fdiv
type fp_un = Fsqrt | Fsin | Fcos | Fabs | Fchs

type insn =
  | Nop
  | Mov of operand * operand
  | Movx of width * bool * reg * mem
  | Movw of width * mem * reg
  | Lea of reg * mem
  | Alu of alu_op * operand * operand
  | Cmp of operand * operand
  | Test of operand * operand
  | Inc of operand
  | Dec of operand
  | Neg of operand
  | Not of operand
  | Shift of shift_op * operand * operand
  | Mul of operand
  | Imul of operand
  | Imul2 of reg * operand
  | Div of operand
  | Idiv of operand
  | Push of operand
  | Pop of reg
  | Jmp of int
  | JmpInd of operand
  | Jcc of cond * int
  | Call of int
  | CallInd of operand
  | Ret
  | Cmov of cond * reg * operand
  | Setcc of cond * reg
  | Str of str_kind * width * rep
  | Fld of freg * mem
  | Fst of mem * freg
  | Fmov of freg * freg
  | Fldi of freg * float
  | Fbin of fp_bin * freg * freg
  | Fun_ of fp_un * freg
  | Fcmp of freg * freg
  | Fild of freg * reg
  | Fist of reg * freg
  | Syscall
  | Halt

let all_regs = [| EAX; ECX; EDX; EBX; ESP; EBP; ESI; EDI |]
let all_fregs = [| F0; F1; F2; F3; F4; F5; F6; F7 |]

let all_conds = [| E; NE; L; LE; G; GE; B; BE; A; AE; S; NS; O; NO |]

let reg_index = function
  | EAX -> 0 | ECX -> 1 | EDX -> 2 | EBX -> 3
  | ESP -> 4 | EBP -> 5 | ESI -> 6 | EDI -> 7

let reg_of_index i = all_regs.(i)

let freg_index = function
  | F0 -> 0 | F1 -> 1 | F2 -> 2 | F3 -> 3
  | F4 -> 4 | F5 -> 5 | F6 -> 6 | F7 -> 7

let freg_of_index i = all_fregs.(i)
let scale_factor = function S1 -> 1 | S2 -> 2 | S4 -> 4 | S8 -> 8
let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4

let is_control = function
  | Jmp _ | JmpInd _ | Jcc _ | Call _ | CallInd _ | Ret | Syscall | Halt -> true
  | Nop | Mov _ | Movx _ | Movw _ | Lea _ | Alu _ | Cmp _ | Test _ | Inc _ | Dec _
  | Neg _ | Not _ | Shift _ | Mul _ | Imul _ | Imul2 _ | Div _ | Idiv _ | Push _
  | Pop _ | Cmov _ | Setcc _ | Str _ | Fld _ | Fst _ | Fmov _ | Fldi _ | Fbin _
  | Fun_ _ | Fcmp _ | Fild _ | Fist _ ->
    false

let negate_cond = function
  | E -> NE | NE -> E
  | L -> GE | GE -> L
  | LE -> G | G -> LE
  | B -> AE | AE -> B
  | BE -> A | A -> BE
  | S -> NS | NS -> S
  | O -> NO | NO -> O

let reg_name = function
  | EAX -> "eax" | ECX -> "ecx" | EDX -> "edx" | EBX -> "ebx"
  | ESP -> "esp" | EBP -> "ebp" | ESI -> "esi" | EDI -> "edi"

let pp_reg ppf r = Format.pp_print_string ppf (reg_name r)

let freg_name f = Printf.sprintf "f%d" (freg_index f)

let mem_to_string { base; index; disp } =
  let parts =
    (match base with None -> [] | Some r -> [ reg_name r ])
    @ (match index with
      | None -> []
      | Some (r, s) -> [ Printf.sprintf "%s*%d" (reg_name r) (scale_factor s) ])
    @ (if disp <> 0 || (base = None && index = None) then [ Printf.sprintf "%d" disp ] else [])
  in
  "[" ^ String.concat "+" parts ^ "]"

let operand_to_string = function
  | Reg r -> reg_name r
  | Imm n -> Printf.sprintf "$%d" n
  | Mem m -> mem_to_string m

let cond_name = function
  | E -> "e" | NE -> "ne" | L -> "l" | LE -> "le" | G -> "g" | GE -> "ge"
  | B -> "b" | BE -> "be" | A -> "a" | AE -> "ae" | S -> "s" | NS -> "ns"
  | O -> "o" | NO -> "no"

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Adc -> "adc" | Sbb -> "sbb"
  | And -> "and" | Or -> "or" | Xor -> "xor"

let shift_name = function
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar" | Rol -> "rol" | Ror -> "ror"

let width_name = function W8 -> "b" | W16 -> "w" | W32 -> "d"

let str_name = function
  | Movs -> "movs" | Stos -> "stos" | Lods -> "lods" | Scas -> "scas" | Cmps -> "cmps"

let rep_name = function NoRep -> "" | Rep -> "rep " | Repe -> "repe " | Repne -> "repne "

let fp_bin_name = function Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let fp_un_name = function
  | Fsqrt -> "fsqrt" | Fsin -> "fsin" | Fcos -> "fcos" | Fabs -> "fabs" | Fchs -> "fchs"

let to_string insn =
  let op = operand_to_string in
  match insn with
  | Nop -> "nop"
  | Mov (d, s) -> Printf.sprintf "mov %s, %s" (op d) (op s)
  | Movx (w, signed, r, m) ->
    Printf.sprintf "mov%cx%s %s, %s" (if signed then 's' else 'z') (width_name w)
      (reg_name r) (mem_to_string m)
  | Movw (w, m, r) -> Printf.sprintf "mov%s %s, %s" (width_name w) (mem_to_string m) (reg_name r)
  | Lea (r, m) -> Printf.sprintf "lea %s, %s" (reg_name r) (mem_to_string m)
  | Alu (o, d, s) -> Printf.sprintf "%s %s, %s" (alu_name o) (op d) (op s)
  | Cmp (a, b) -> Printf.sprintf "cmp %s, %s" (op a) (op b)
  | Test (a, b) -> Printf.sprintf "test %s, %s" (op a) (op b)
  | Inc d -> Printf.sprintf "inc %s" (op d)
  | Dec d -> Printf.sprintf "dec %s" (op d)
  | Neg d -> Printf.sprintf "neg %s" (op d)
  | Not d -> Printf.sprintf "not %s" (op d)
  | Shift (o, d, c) -> Printf.sprintf "%s %s, %s" (shift_name o) (op d) (op c)
  | Mul s -> Printf.sprintf "mul %s" (op s)
  | Imul s -> Printf.sprintf "imul %s" (op s)
  | Imul2 (r, s) -> Printf.sprintf "imul %s, %s" (reg_name r) (op s)
  | Div s -> Printf.sprintf "div %s" (op s)
  | Idiv s -> Printf.sprintf "idiv %s" (op s)
  | Push s -> Printf.sprintf "push %s" (op s)
  | Pop r -> Printf.sprintf "pop %s" (reg_name r)
  | Jmp t -> Printf.sprintf "jmp 0x%x" t
  | JmpInd s -> Printf.sprintf "jmp *%s" (op s)
  | Jcc (c, t) -> Printf.sprintf "j%s 0x%x" (cond_name c) t
  | Call t -> Printf.sprintf "call 0x%x" t
  | CallInd s -> Printf.sprintf "call *%s" (op s)
  | Ret -> "ret"
  | Cmov (c, r, s) -> Printf.sprintf "cmov%s %s, %s" (cond_name c) (reg_name r) (op s)
  | Setcc (c, r) -> Printf.sprintf "set%s %s" (cond_name c) (reg_name r)
  | Str (k, w, r) -> Printf.sprintf "%s%s%s" (rep_name r) (str_name k) (width_name w)
  | Fld (f, m) -> Printf.sprintf "fld %s, %s" (freg_name f) (mem_to_string m)
  | Fst (m, f) -> Printf.sprintf "fst %s, %s" (mem_to_string m) (freg_name f)
  | Fmov (d, s) -> Printf.sprintf "fmov %s, %s" (freg_name d) (freg_name s)
  | Fldi (f, v) -> Printf.sprintf "fldi %s, %g" (freg_name f) v
  | Fbin (o, d, s) -> Printf.sprintf "%s %s, %s" (fp_bin_name o) (freg_name d) (freg_name s)
  | Fun_ (o, f) -> Printf.sprintf "%s %s" (fp_un_name o) (freg_name f)
  | Fcmp (a, b) -> Printf.sprintf "fcmp %s, %s" (freg_name a) (freg_name b)
  | Fild (f, r) -> Printf.sprintf "fild %s, %s" (freg_name f) (reg_name r)
  | Fist (r, f) -> Printf.sprintf "fist %s, %s" (reg_name r) (freg_name f)
  | Syscall -> "syscall"
  | Halt -> "halt"

let pp_insn ppf i = Format.pp_print_string ppf (to_string i)
