(** A loadable guest program image. *)

type t = {
  entry : int;                      (** initial EIP *)
  chunks : (int * Bytes.t) list;    (** (load address, contents) *)
  symbols : (string * int) list;    (** label -> address *)
}

val image_end : t -> int
(** One past the highest loaded byte (the initial program break). *)

val symbol : t -> string -> int
(** Raises [Not_found] for unknown labels. *)

val code_bytes : t -> int
(** Total loaded bytes (static footprint). *)
