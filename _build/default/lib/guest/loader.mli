(** Boots a guest program into an authoritative machine state. *)

val stack_top : int
(** Initial ESP (stack grows down from here). *)

val tol_base : int
(** Start of the address range reserved for the co-designed software layer
    (spill slots, profiling counters, IBTC).  Guest programs must stay below
    this; state validation ignores pages at or above it. *)

val boot : Program.t -> Cpu.t * Memory.t
(** Fresh zero-filled (auto-allocating) memory with the image blitted in,
    EIP at the entry point and ESP at {!stack_top}. *)

val initial_brk : Program.t -> int
(** Page-aligned program break just past the image. *)
