type t = {
  regs : int array;
  fregs : float array;
  mutable flags : int;
  mutable eip : int;
  mutable halted : bool;
}

let create () =
  { regs = Array.make 8 0; fregs = Array.make 8 0.0; flags = 0; eip = 0; halted = false }

let get t r = t.regs.(Isa.reg_index r)
let set t r v = t.regs.(Isa.reg_index r) <- Semantics.mask32 v
let getf t f = t.fregs.(Isa.freg_index f)
let setf t f v = t.fregs.(Isa.freg_index f) <- v

let copy t =
  {
    regs = Array.copy t.regs;
    fregs = Array.copy t.fregs;
    flags = t.flags;
    eip = t.eip;
    halted = t.halted;
  }

let assign dst src =
  Array.blit src.regs 0 dst.regs 0 8;
  Array.blit src.fregs 0 dst.fregs 0 8;
  dst.flags <- src.flags;
  dst.eip <- src.eip;
  dst.halted <- src.halted

let float_bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal a b =
  a.regs = b.regs
  && Array.for_all2 float_bits_equal a.fregs b.fregs
  && a.flags = b.flags
  && a.eip = b.eip
  && a.halted = b.halted

let diff a b =
  let acc = ref [] in
  let note fmt = Printf.ksprintf (fun s -> acc := s :: !acc) fmt in
  Array.iter
    (fun r ->
      let va = get a r and vb = get b r in
      if va <> vb then
        note "%s: 0x%08x vs 0x%08x" (Format.asprintf "%a" Isa.pp_reg r) va vb)
    Isa.all_regs;
  Array.iter
    (fun f ->
      let va = getf a f and vb = getf b f in
      if not (float_bits_equal va vb) then
        note "f%d: %h vs %h" (Isa.freg_index f) va vb)
    Isa.all_fregs;
  if a.flags <> b.flags then
    note "flags: %s vs %s" (Flags.to_string a.flags) (Flags.to_string b.flags);
  if a.eip <> b.eip then note "eip: 0x%x vs 0x%x" a.eip b.eip;
  if a.halted <> b.halted then note "halted: %b vs %b" a.halted b.halted;
  List.rev !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun r -> Format.fprintf ppf "%a = 0x%08x@ " Isa.pp_reg r (get t r))
    Isa.all_regs;
  Format.fprintf ppf "flags = %s  eip = 0x%x  halted = %b@]" (Flags.to_string t.flags)
    t.eip t.halted
