let stack_top = 0x0800_0000
let tol_base = 0xF000_0000

let initial_brk p =
  let e = Program.image_end p in
  (e + Memory.page_size - 1) / Memory.page_size * Memory.page_size

let boot p =
  let mem = Memory.create `Auto_zero in
  List.iter (fun (addr, b) -> Memory.blit_bytes mem addr b) p.Program.chunks;
  let cpu = Cpu.create () in
  cpu.eip <- p.entry;
  Cpu.set cpu Isa.ESP stack_top;
  (cpu, mem)
