(** The guest EFLAGS register, packed as an integer bitfield.

    The packing is part of the co-designed contract: translated host code
    keeps the guest flags in a dedicated host register using exactly this
    layout, so the controller can compare architectural state bit-for-bit
    between the authoritative and the emulated machines. *)

(** Bit masks within the packed word: CF bit 0, ZF bit 1, SF bit 2,
    OF bit 3. *)

val cf_bit : int
val zf_bit : int
val sf_bit : int
val of_bit : int

val mask : int
(** All defined flag bits. *)

val make : cf:bool -> zf:bool -> sf:bool -> of_:bool -> int

val cf : int -> bool
val zf : int -> bool
val sf : int -> bool
val of_ : int -> bool

val eval_cond : Isa.cond -> int -> bool
(** [eval_cond c flags] decides a conditional branch exactly as x86 does
    over CF/ZF/SF/OF. *)

val to_string : int -> string
(** E.g. ["[CF ZF]"]. *)
