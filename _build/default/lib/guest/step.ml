open Isa

type control =
  | Next
  | Cond_branch of { taken : bool; target : int }
  | Uncond of int
  | Indirect of int
  | Trap_syscall
  | Trap_halt

type result = { insn : Isa.insn; len : int; control : control }
type icache = (int, Isa.insn * int) Hashtbl.t

let icache_create () : icache = Hashtbl.create 1024

let fetch (ic : icache) mem pc =
  match Hashtbl.find_opt ic pc with
  | Some r -> r
  | None ->
    let r = Codec.decode ~fetch:(fun a -> Memory.read8 mem a) ~pc in
    Hashtbl.replace ic pc r;
    r

let is_interp_only = function Str (_, _, (Rep | Repe | Repne)) -> true | _ -> false

let mem_addr cpu { base; index; disp } =
  let b = match base with None -> 0 | Some r -> Cpu.get cpu r in
  let i =
    match index with None -> 0 | Some (r, s) -> Cpu.get cpu r * scale_factor s
  in
  Semantics.mask32 (b + i + disp)

let read_operand cpu mem = function
  | Reg r -> Cpu.get cpu r
  | Imm n -> Semantics.mask32 n
  | Mem m -> Memory.read mem W32 (mem_addr cpu m)

(* Touch every page a write of [w] at [addr] will reach, so the write cannot
   fault halfway through. *)
let probe_write mem w addr =
  ignore (Memory.read8 mem addr);
  let last = addr + width_bytes w - 1 in
  if Memory.page_index last <> Memory.page_index addr then ignore (Memory.read8 mem last)

let write_operand cpu mem op v =
  match op with
  | Reg r -> Cpu.set cpu r v
  | Mem m -> Memory.write mem W32 (mem_addr cpu m) v
  | Imm _ -> invalid_arg "write_operand: immediate destination"

(* A read-modify-write destination: reading it first both fetches the value
   and probes the pages the write-back will touch. *)
let rmw cpu mem op f =
  let v = read_operand cpu mem op in
  match f v with
  | None -> ()
  | Some res ->
    (match op with
    | Reg r -> Cpu.set cpu r res
    | Mem m -> Memory.write mem W32 (mem_addr cpu m) res
    | Imm _ -> invalid_arg "rmw: immediate destination")

let push cpu mem v =
  let sp = Semantics.mask32 (Cpu.get cpu ESP - 4) in
  probe_write mem W32 sp;
  Memory.write mem W32 sp v;
  Cpu.set cpu ESP sp

let pop cpu mem =
  let sp = Cpu.get cpu ESP in
  let v = Memory.read mem W32 sp in
  Cpu.set cpu ESP (sp + 4);
  v

(* One iteration of a string instruction; [w] bytes, pointers ascend. *)
let string_once cpu mem kind w =
  let sz = width_bytes w in
  let esi = Cpu.get cpu ESI and edi = Cpu.get cpu EDI in
  match kind with
  | Movs ->
    let v = Memory.read mem w esi in
    probe_write mem w edi;
    Memory.write mem w edi v;
    Cpu.set cpu ESI (esi + sz);
    Cpu.set cpu EDI (edi + sz)
  | Stos ->
    probe_write mem w edi;
    Memory.write mem w edi (Semantics.truncate_width w (Cpu.get cpu EAX));
    Cpu.set cpu EDI (edi + sz)
  | Lods ->
    let v = Memory.read mem w esi in
    Cpu.set cpu EAX v;
    Cpu.set cpu ESI (esi + sz)
  | Scas ->
    let v = Memory.read mem w edi in
    let a = Semantics.truncate_width w (Cpu.get cpu EAX) in
    let _, f = Semantics.alu Sub ~cf_in:false a v in
    cpu.flags <- f;
    Cpu.set cpu EDI (edi + sz)
  | Cmps ->
    let a = Memory.read mem w esi in
    let b = Memory.read mem w edi in
    let _, f = Semantics.alu Sub ~cf_in:false a b in
    cpu.flags <- f;
    Cpu.set cpu ESI (esi + sz);
    Cpu.set cpu EDI (edi + sz)

let exec_string cpu mem kind w rep =
  match rep with
  | NoRep -> string_once cpu mem kind w
  | Rep | Repe | Repne ->
    let continue () =
      match rep with
      | Rep -> true
      | Repe -> Flags.zf cpu.flags
      | Repne -> not (Flags.zf cpu.flags)
      | NoRep -> assert false
    in
    let rec loop first =
      if Cpu.get cpu ECX <> 0 && (first || continue ()) then begin
        string_once cpu mem kind w;
        Cpu.set cpu ECX (Cpu.get cpu ECX - 1);
        loop false
      end
    in
    loop true

let exec cpu mem insn =
  let rd op = read_operand cpu mem op in
  let cf_in = Flags.cf cpu.flags in
  match insn with
  | Nop -> Next
  | Mov (d, s) ->
    let v = rd s in
    write_operand cpu mem d v;
    Next
  | Movx (w, signed, r, m) ->
    let v = Memory.read mem w (mem_addr cpu m) in
    Cpu.set cpu r (if signed then Semantics.sign_extend w v else v);
    Next
  | Movw (w, m, r) ->
    let addr = mem_addr cpu m in
    probe_write mem w addr;
    Memory.write mem w addr (Semantics.truncate_width w (Cpu.get cpu r));
    Next
  | Lea (r, m) ->
    Cpu.set cpu r (mem_addr cpu m);
    Next
  | Alu (op, d, s) ->
    let b = rd s in
    rmw cpu mem d (fun a ->
        let res, f = Semantics.alu op ~cf_in a b in
        cpu.flags <- f;
        Some res);
    Next
  | Cmp (d, s) ->
    let a = rd d and b = rd s in
    let _, f = Semantics.alu Sub ~cf_in:false a b in
    cpu.flags <- f;
    Next
  | Test (d, s) ->
    let a = rd d and b = rd s in
    let _, f = Semantics.alu And ~cf_in:false a b in
    cpu.flags <- f;
    Next
  | Inc d ->
    rmw cpu mem d (fun a ->
        let res, f = Semantics.inc a ~flags:cpu.flags in
        cpu.flags <- f;
        Some res);
    Next
  | Dec d ->
    rmw cpu mem d (fun a ->
        let res, f = Semantics.dec a ~flags:cpu.flags in
        cpu.flags <- f;
        Some res);
    Next
  | Neg d ->
    rmw cpu mem d (fun a ->
        let res, f = Semantics.neg a in
        cpu.flags <- f;
        Some res);
    Next
  | Not d ->
    rmw cpu mem d (fun a -> Some (Semantics.not32 a));
    Next
  | Shift (op, d, c) ->
    let count = rd c in
    rmw cpu mem d (fun a ->
        let res, f = Semantics.shift op a ~count ~flags:cpu.flags in
        cpu.flags <- f;
        Some res);
    Next
  | Mul s ->
    let lo, hi, f = Semantics.mul_u (Cpu.get cpu EAX) (rd s) in
    Cpu.set cpu EAX lo;
    Cpu.set cpu EDX hi;
    cpu.flags <- f;
    Next
  | Imul s ->
    let lo, hi, f = Semantics.mul_s (Cpu.get cpu EAX) (rd s) in
    Cpu.set cpu EAX lo;
    Cpu.set cpu EDX hi;
    cpu.flags <- f;
    Next
  | Imul2 (r, s) ->
    let res, f = Semantics.imul2 (Cpu.get cpu r) (rd s) in
    Cpu.set cpu r res;
    cpu.flags <- f;
    Next
  | Div s ->
    let q, r = Semantics.div_u ~hi:(Cpu.get cpu EDX) ~lo:(Cpu.get cpu EAX) (rd s) in
    Cpu.set cpu EAX q;
    Cpu.set cpu EDX r;
    Next
  | Idiv s ->
    let q, r = Semantics.div_s ~hi:(Cpu.get cpu EDX) ~lo:(Cpu.get cpu EAX) (rd s) in
    Cpu.set cpu EAX q;
    Cpu.set cpu EDX r;
    Next
  | Push s ->
    let v = rd s in
    push cpu mem v;
    Next
  | Pop r ->
    let v = pop cpu mem in
    Cpu.set cpu r v;
    Next
  | Jmp t -> Uncond t
  | JmpInd s -> Indirect (rd s)
  | Jcc (c, t) -> Cond_branch { taken = Flags.eval_cond c cpu.flags; target = t }
  | Call t ->
    push cpu mem (Semantics.mask32 (cpu.eip + Codec.length insn));
    Uncond t
  | CallInd s ->
    let target = rd s in
    push cpu mem (Semantics.mask32 (cpu.eip + Codec.length insn));
    Indirect target
  | Ret -> Indirect (pop cpu mem)
  | Cmov (c, r, s) ->
    let v = rd s in
    if Flags.eval_cond c cpu.flags then Cpu.set cpu r v;
    Next
  | Setcc (c, r) ->
    Cpu.set cpu r (if Flags.eval_cond c cpu.flags then 1 else 0);
    Next
  | Str (kind, w, rep) ->
    exec_string cpu mem kind w rep;
    Next
  | Fld (f, m) ->
    Cpu.setf cpu f (Memory.read_f64 mem (mem_addr cpu m));
    Next
  | Fst (m, f) ->
    let addr = mem_addr cpu m in
    ignore (Memory.read8 mem addr);
    ignore (Memory.read8 mem (addr + 7));
    Memory.write_f64 mem addr (Cpu.getf cpu f);
    Next
  | Fmov (d, s) ->
    Cpu.setf cpu d (Cpu.getf cpu s);
    Next
  | Fldi (f, v) ->
    Cpu.setf cpu f v;
    Next
  | Fbin (op, d, s) ->
    Cpu.setf cpu d (Semantics.fp_bin op (Cpu.getf cpu d) (Cpu.getf cpu s));
    Next
  | Fun_ (op, f) ->
    Cpu.setf cpu f (Semantics.fp_un op (Cpu.getf cpu f));
    Next
  | Fcmp (a, b) ->
    cpu.flags <- Semantics.fcmp_flags (Cpu.getf cpu a) (Cpu.getf cpu b);
    Next
  | Fild (f, r) ->
    Cpu.setf cpu f (Semantics.i2f (Cpu.get cpu r));
    Next
  | Fist (r, f) ->
    Cpu.set cpu r (Semantics.f2i (Cpu.getf cpu f));
    Next
  | Syscall -> Trap_syscall
  | Halt -> Trap_halt

let step ic cpu mem =
  let insn, len = fetch ic mem cpu.Cpu.eip in
  let control = exec cpu mem insn in
  (match control with
  | Next -> cpu.eip <- Semantics.mask32 (cpu.eip + len)
  | Cond_branch { taken; target } ->
    cpu.eip <- (if taken then target else Semantics.mask32 (cpu.eip + len))
  | Uncond t | Indirect t -> cpu.eip <- t
  | Trap_syscall -> ()
  | Trap_halt -> cpu.halted <- true);
  { insn; len; control }
