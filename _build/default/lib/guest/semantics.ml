let mask32 v = v land 0xFFFFFFFF
let bit31 v = v land 0x80000000 <> 0
let signed v = if bit31 v then v - 0x100000000 else v

let truncate_width (w : Isa.width) v =
  match w with W8 -> v land 0xFF | W16 -> v land 0xFFFF | W32 -> mask32 v

let sign_extend (w : Isa.width) v =
  match w with
  | W8 -> if v land 0x80 <> 0 then mask32 (v lor 0xFFFFFF00) else v land 0xFF
  | W16 -> if v land 0x8000 <> 0 then mask32 (v lor 0xFFFF0000) else v land 0xFFFF
  | W32 -> mask32 v

let zf_sf res = Flags.make ~cf:false ~zf:(res = 0) ~sf:(bit31 res) ~of_:false

let add_like a b cf_in =
  let full = a + b + cf_in in
  let res = mask32 full in
  let cf = full > 0xFFFFFFFF in
  let of_ = bit31 a = bit31 b && bit31 res <> bit31 a in
  (res, Flags.make ~cf ~zf:(res = 0) ~sf:(bit31 res) ~of_)

let sub_like a b cf_in =
  let full = a - b - cf_in in
  let res = mask32 full in
  let cf = full < 0 in
  let of_ = bit31 a <> bit31 b && bit31 res <> bit31 a in
  (res, Flags.make ~cf ~zf:(res = 0) ~sf:(bit31 res) ~of_)

let alu (op : Isa.alu_op) ~cf_in a b =
  let carry = if cf_in then 1 else 0 in
  match op with
  | Add -> add_like a b 0
  | Adc -> add_like a b carry
  | Sub -> sub_like a b 0
  | Sbb -> sub_like a b carry
  | And -> let r = a land b in (r, zf_sf r)
  | Or -> let r = a lor b in (r, zf_sf r)
  | Xor -> let r = a lxor b in (r, zf_sf r)

(* INC/DEC preserve CF: recompute the other flags and splice CF back in. *)
let keep_cf flags new_flags = new_flags land lnot Flags.cf_bit lor (flags land Flags.cf_bit)

let inc v ~flags =
  let res, f = add_like v 1 0 in
  (res, keep_cf flags f)

let dec v ~flags =
  let res, f = sub_like v 1 0 in
  (res, keep_cf flags f)

let neg v = sub_like 0 v 0
let not32 v = mask32 (lnot v)

let rotl32 v c = mask32 ((v lsl c) lor (v lsr (32 - c)))
let rotr32 v c = mask32 ((v lsr c) lor (v lsl (32 - c)))

let shift (op : Isa.shift_op) v ~count ~flags =
  let c = count land 31 in
  if c = 0 then (v, flags)
  else begin
    let res, cf, of_ =
      match op with
      | Shl ->
        let res = mask32 (v lsl c) in
        let cf = v land (1 lsl (32 - c)) <> 0 in
        (res, cf, bit31 res <> cf)
      | Shr ->
        let res = v lsr c in
        (res, v land (1 lsl (c - 1)) <> 0, bit31 v)
      | Sar ->
        let res = mask32 (signed v asr c) in
        (res, v land (1 lsl (c - 1)) <> 0, false)
      | Rol ->
        let res = rotl32 v c in
        let cf = res land 1 <> 0 in
        (res, cf, bit31 res <> cf)
      | Ror ->
        let res = rotr32 v c in
        (res, bit31 res, false)
    in
    (res, Flags.make ~cf ~zf:(res = 0) ~sf:(bit31 res) ~of_)
  end

let mul_u a b =
  let p = Int64.mul (Int64.of_int a) (Int64.of_int b) in
  let lo = mask32 (Int64.to_int (Int64.logand p 0xFFFFFFFFL)) in
  let hi = mask32 (Int64.to_int (Int64.shift_right_logical p 32)) in
  let wide = hi <> 0 in
  (lo, hi, Flags.make ~cf:wide ~zf:(lo = 0) ~sf:(bit31 lo) ~of_:wide)

let mul_s a b =
  let p = Int64.mul (Int64.of_int (signed a)) (Int64.of_int (signed b)) in
  let lo = mask32 (Int64.to_int (Int64.logand p 0xFFFFFFFFL)) in
  let hi = mask32 (Int64.to_int (Int64.shift_right_logical p 32)) in
  let wide = p <> Int64.of_int (signed lo) in
  (lo, hi, Flags.make ~cf:wide ~zf:(lo = 0) ~sf:(bit31 lo) ~of_:wide)

let imul2 a b =
  let lo, _, f = mul_s a b in
  (lo, f)

let div_u ~hi ~lo d =
  if d = 0 then (0xFFFFFFFF, lo)
  else begin
    let full =
      Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)
    in
    let d64 = Int64.of_int d in
    let q = Int64.unsigned_div full d64 and r = Int64.unsigned_rem full d64 in
    (mask32 (Int64.to_int q), mask32 (Int64.to_int r))
  end

let div_s ~hi ~lo d =
  if d = 0 then (0xFFFFFFFF, lo)
  else begin
    let full =
      Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)
    in
    let d64 = Int64.of_int (signed d) in
    let q = Int64.div full d64 and r = Int64.rem full d64 in
    (mask32 (Int64.to_int q), mask32 (Int64.to_int r))
  end

let fp_bin (op : Isa.fp_bin) a b =
  match op with Fadd -> a +. b | Fsub -> a -. b | Fmul -> a *. b | Fdiv -> a /. b

let fp_un (op : Isa.fp_un) a =
  match op with
  | Fsqrt -> sqrt a
  | Fsin -> sin a
  | Fcos -> cos a
  | Fabs -> abs_float a
  | Fchs -> -.a

let fcmp_flags a b =
  if Float.is_nan a || Float.is_nan b then
    Flags.make ~cf:true ~zf:true ~sf:false ~of_:false
  else if a < b then Flags.make ~cf:true ~zf:false ~sf:false ~of_:false
  else if a = b then Flags.make ~cf:false ~zf:true ~sf:false ~of_:false
  else Flags.make ~cf:false ~zf:false ~sf:false ~of_:false

let f2i x =
  if Float.is_nan x || x >= 2147483648.0 || x < -2147483648.0 then 0x80000000
  else mask32 (int_of_float x)

let i2f v = float_of_int (signed v)
