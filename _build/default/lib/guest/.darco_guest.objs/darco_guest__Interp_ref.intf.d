lib/guest/interp_ref.mli: Cpu Memory Program Step Syscall
