lib/guest/syscall.mli: Bytes Cpu Isa Memory
