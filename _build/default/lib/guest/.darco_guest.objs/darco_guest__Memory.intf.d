lib/guest/memory.mli: Isa
