lib/guest/isa.ml: Array Format Printf String
