lib/guest/semantics.mli: Isa
