lib/guest/program.mli: Bytes
