lib/guest/program.ml: Bytes List
