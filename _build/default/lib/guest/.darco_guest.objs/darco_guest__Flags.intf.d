lib/guest/flags.mli: Isa
