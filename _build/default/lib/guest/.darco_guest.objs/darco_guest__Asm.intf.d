lib/guest/asm.mli: Bytes Isa Program
