lib/guest/cpu.ml: Array Flags Format Int64 Isa List Printf Semantics
