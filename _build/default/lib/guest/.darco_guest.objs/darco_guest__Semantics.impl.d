lib/guest/semantics.ml: Flags Float Int64 Isa
