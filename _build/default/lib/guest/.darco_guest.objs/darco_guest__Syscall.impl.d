lib/guest/syscall.ml: Buffer Bytes Char Cpu Darco_util Int64 Isa Memory Semantics String
