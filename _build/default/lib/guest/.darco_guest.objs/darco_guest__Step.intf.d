lib/guest/step.mli: Cpu Isa Memory
