lib/guest/interp_ref.ml: Cpu Isa List Loader Memory Semantics Step Syscall
