lib/guest/loader.mli: Cpu Memory Program
