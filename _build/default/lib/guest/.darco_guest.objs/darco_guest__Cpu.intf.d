lib/guest/cpu.mli: Format Isa
