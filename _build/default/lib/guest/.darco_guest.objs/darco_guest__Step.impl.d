lib/guest/step.ml: Codec Cpu Flags Hashtbl Isa Memory Semantics
