lib/guest/memory.ml: Bytes Char Hashtbl Int64 Isa List Option
