lib/guest/asm.ml: Bytes Codec Hashtbl Int32 Int64 Isa List Program
