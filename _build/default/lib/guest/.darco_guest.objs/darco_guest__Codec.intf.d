lib/guest/codec.mli: Bytes Isa
